package music

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
)

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"unavailable", ErrUnavailable, true},
		{"lockstore contention", ErrContention, true},
		{"store CAS contention", store.ErrContention, true},
		{"not lock holder", ErrNotLockHolder, true},
		{"no longer lock holder", ErrNoLongerLockHolder, false},
		{"expired", ErrExpired, false},
		{"epoch fenced", ErrEpochFenced, false},
		{"wrapped epoch fenced", fmt.Errorf("criticalPut: %w", ErrEpochFenced), false},
		{"await timeout", errAwaitTimeout, false},
		{"unknown", errors.New("disk on fire"), false},

		// Wrapping is preserved end-to-end, so classification must see
		// through fmt.Errorf %w chains of any depth.
		{"wrapped unavailable", fmt.Errorf("put k: %w", ErrUnavailable), true},
		{"doubly wrapped contention", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrContention)), true},
		{"wrapped expired", fmt.Errorf("critical put: %w", ErrExpired), false},

		// Terminal outcomes dominate mixed errors: a dead lockRef cannot
		// be revived even if a transient failure rode along.
		{"joined terminal+transient", errors.Join(ErrNoLongerLockHolder, ErrUnavailable), false},
		{"joined expired+contention", errors.Join(ErrExpired, ErrContention), false},
		{"joined transient pair", errors.Join(ErrUnavailable, ErrContention), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsRetryable(tc.err); got != tc.want {
				t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	got := RetryPolicy{}.withDefaults()
	if got != DefaultRetryPolicy {
		t.Errorf("zero policy withDefaults = %+v, want DefaultRetryPolicy %+v", got, DefaultRetryPolicy)
	}

	// Partial policies keep what was set and fill only the zero fields.
	partial := RetryPolicy{Attempts: 2, MaxBackoff: 10 * time.Second}.withDefaults()
	if partial.Attempts != 2 || partial.MaxBackoff != 10*time.Second {
		t.Errorf("withDefaults overwrote explicit fields: %+v", partial)
	}
	if partial.BaseBackoff != DefaultRetryPolicy.BaseBackoff || partial.FailoverAwait != DefaultRetryPolicy.FailoverAwait {
		t.Errorf("withDefaults left zero fields unfilled: %+v", partial)
	}

	// NoRetry means one attempt; the remaining knobs are irrelevant but
	// must not default Attempts back up.
	if NoRetry.withDefaults().Attempts != 1 {
		t.Errorf("NoRetry.withDefaults().Attempts = %d, want 1", NoRetry.withDefaults().Attempts)
	}
}

func TestFailoverClientSiteOrder(t *testing.T) {
	c := newTestCluster(t, WithSeed(1))
	cl := c.FailoverClient("ncalifornia")
	if cl.HomeSite() != "ncalifornia" || cl.Site() != "ncalifornia" {
		t.Errorf("home/site = %q/%q, want ncalifornia", cl.HomeSite(), cl.Site())
	}
	want := []string{"ohio", "oregon"}
	if len(cl.failover) != len(want) {
		t.Fatalf("failover sites = %v, want %v", cl.failover, want)
	}
	for i, s := range want {
		if cl.failover[i] != s {
			t.Fatalf("failover sites = %v, want %v", cl.failover, want)
		}
	}
}

func TestClientPanicsOnUnknownFailoverSite(t *testing.T) {
	c := newTestCluster(t, WithSeed(1))
	defer func() {
		if recover() == nil {
			t.Error("unknown failover site did not panic")
		}
	}()
	c.Client("ohio", WithFailoverSites("atlantis"))
}
