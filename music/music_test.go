package music

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	c, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestRunCriticalIncrement(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		for i := 0; i < 3; i++ {
			err := cl.RunCritical("ctr", func(cs *CriticalSection) error {
				v, err := cs.Get()
				if err != nil {
					return err
				}
				n := 0
				if v != nil {
					n, _ = strconv.Atoi(string(v))
				}
				return cs.Put([]byte(strconv.Itoa(n + 1)))
			})
			if err != nil {
				t.Errorf("RunCritical %d: %v", i, err)
			}
		}
		got, err := cl.Get("ctr")
		if err != nil || string(got) != "3" {
			t.Errorf("final counter = (%q, %v), want 3", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExplicitLockAPI(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ncalifornia")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := cl.AwaitLock("k", ref, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		if err := cl.CriticalPut("k", ref, []byte("v")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		got, err := cl.CriticalGet("k", ref)
		if err != nil || string(got) != "v" {
			t.Fatalf("CriticalGet = (%q, %v)", got, err)
		}
		if err := cl.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestContendedCountersFromAllSites(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		done := make(chan error, 6) // plain channel is fine: sends never block
		for i := 0; i < 6; i++ {
			site := c.Sites()[i%3]
			c.Go(func() {
				cl := c.Client(site)
				done <- cl.RunCritical("ctr", func(cs *CriticalSection) error {
					v, err := cs.Get()
					if err != nil {
						return err
					}
					n := 0
					if v != nil {
						n, _ = strconv.Atoi(string(v))
					}
					return cs.Put([]byte(strconv.Itoa(n + 1)))
				})
			})
		}
		// Wait for all clients by polling the buffered channel length in
		// virtual time (channel receives would stall the simulator).
		deadline := c.Now() + 10*time.Minute
		for len(done) < 6 {
			if c.Now() > deadline {
				t.Fatal("clients did not finish")
			}
			c.Sleep(50 * time.Millisecond)
		}
		for i := 0; i < 6; i++ {
			if err := <-done; err != nil {
				t.Fatalf("client error: %v", err)
			}
		}
		got, err := c.Client("ohio").Get("ctr")
		if err != nil || string(got) != "6" {
			t.Fatalf("final counter = (%q, %v), want 6", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAwaitLockTimeout(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		ref1, _ := cl.CreateLockRef("k")
		if err := cl.AwaitLock("k", ref1, 0); err != nil {
			t.Fatalf("first AwaitLock: %v", err)
		}
		cl2 := c.Client("oregon")
		ref2, _ := cl2.CreateLockRef("k")
		err := cl2.AwaitLock("k", ref2, 2*time.Second)
		if !ErrAwaitTimeout(err) {
			t.Fatalf("err = %v, want await timeout", err)
		}
		_ = cl2.RemoveLockRef("k", ref2)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunCriticalMultiLexicographicOrder(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		err := cl.RunCriticalMulti([]string{"zeta", "alpha"}, func(cs map[string]*CriticalSection) error {
			if len(cs) != 2 {
				return fmt.Errorf("sections = %d", len(cs))
			}
			if err := cs["alpha"].Put([]byte("a")); err != nil {
				return err
			}
			return cs["zeta"].Put([]byte("z"))
		})
		if err != nil {
			t.Fatalf("RunCriticalMulti: %v", err)
		}
		a, _ := cl.Get("alpha")
		z, _ := cl.Get("zeta")
		if string(a) != "a" || string(z) != "z" {
			t.Fatalf("values = %q, %q", a, z)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFailureInjectionPreemption(t *testing.T) {
	c := newTestCluster(t, WithT(500*time.Millisecond))
	err := c.Run(func() {
		cl1 := c.Client("ohio")
		ref1, _ := cl1.CreateLockRef("k")
		if err := cl1.AwaitLock("k", ref1, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		if err := cl1.CriticalPut("k", ref1, []byte("before-crash")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		// The holder's whole site goes dark; a client elsewhere takes over
		// after the T-expiry reaping kicks in.
		c.CrashSite("ohio")
		cl2 := c.Client("oregon")
		err := cl2.RunCritical("k", func(cs *CriticalSection) error {
			v, err := cs.Get()
			if err != nil {
				return err
			}
			if string(v) != "before-crash" {
				return fmt.Errorf("lost latest state: %q", v)
			}
			return cs.Put([]byte("after-failover"))
		})
		if err != nil {
			t.Fatalf("failover critical section: %v", err)
		}
		c.RestartSite("ohio")
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPartitionedMinoritySiteCannotWrite(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		ref, _ := cl.CreateLockRef("k")
		if err := cl.AwaitLock("k", ref, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		err := cl.CriticalPut("k", ref, []byte("x"))
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("minority put err = %v, want ErrUnavailable", err)
		}
		c.Heal()
		if err := cl.CriticalPut("k", ref, []byte("x")); err != nil {
			t.Fatalf("put after heal: %v", err)
		}
		_ = cl.ReleaseLock("k", ref)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestModeLWTCluster(t *testing.T) {
	c := newTestCluster(t, WithMode(ModeLWT))
	err := c.Run(func() {
		cl := c.Client("ohio")
		err := cl.RunCritical("k", func(cs *CriticalSection) error {
			return cs.Put([]byte("mscp"))
		})
		if err != nil {
			t.Fatalf("MSCP RunCritical: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRealTimeCluster(t *testing.T) {
	c := newTestCluster(t, WithProfile(ProfileLocal), WithRealTime())
	defer c.Close()
	cl := c.Client("site-a")
	err := cl.RunCritical("k", func(cs *CriticalSection) error {
		return cs.Put([]byte("live"))
	})
	if err != nil {
		t.Fatalf("real-time RunCritical: %v", err)
	}
	got, err := cl.Get("k")
	if err != nil || string(got) != "live" {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
}

func TestUnknownProfileRejected(t *testing.T) {
	if _, err := New(WithProfile("mars")); err == nil {
		t.Fatal("New with unknown profile succeeded")
	}
}

func TestUnknownSitePanics(t *testing.T) {
	c := newTestCluster(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown site")
		}
	}()
	c.Client("atlantis")
}

func TestSitesListedInProfileOrder(t *testing.T) {
	c := newTestCluster(t)
	want := []string{"ohio", "ncalifornia", "oregon"}
	got := c.Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
}

func TestRunCriticalReleasesLockOnCallbackError(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		boom := errors.New("boom")
		if err := cl.RunCritical("k", func(cs *CriticalSection) error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
		// The lock must be free for the next section.
		if err := cl.RunCritical("k", func(cs *CriticalSection) error { return nil }); err != nil {
			t.Fatalf("follow-up section: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
