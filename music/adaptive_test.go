package music

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestSiteLeaseServesPlainGets: under WithHolderLeases a certified grant
// issues the granting *site* a lease, so any client routed there — not just
// the holder's session — serves plain Gets locally, fresh with the section's
// own writes, for the lease window. The lease is revoked at release.
func TestSiteLeaseServesPlainGets(t *testing.T) {
	c := newTestCluster(t, WithSeed(7), WithObservability(), WithHolderLeases())
	serveCount := func() int64 {
		return c.Obs().Metrics().Counter("music_lease_reads_total",
			obs.Labels{"site": "ohio", "outcome": "serve"}).Value()
	}
	err := c.Run(func() {
		holder := c.Client("ohio")
		reader := c.Client("ohio") // a different client, same site
		if err := holder.RunCritical("acct", func(cs *CriticalSection) error {
			if err := cs.Put([]byte("v1")); err != nil {
				return err
			}
			v, err := reader.Get("acct")
			if err != nil {
				return err
			}
			if string(v) != "v1" {
				return fmt.Errorf("site-lease Get = %q, want v1", v)
			}
			// Section writes fold into the lease value immediately.
			if err := cs.Put([]byte("v2")); err != nil {
				return err
			}
			v, err = reader.Get("acct")
			if err != nil {
				return err
			}
			if string(v) != "v2" {
				return fmt.Errorf("site-lease Get after second put = %q, want v2", v)
			}
			return nil
		}); err != nil {
			t.Fatalf("RunCritical: %v", err)
		}
		inSection := serveCount()
		if inSection < 2 {
			t.Errorf("music_lease_reads_total{site=ohio,outcome=serve} = %v, want >= 2", inSection)
		}
		// Release revoked the lease: a post-section Get takes the ordinary
		// eventual path and the serve counter stays put.
		if _, err := reader.Get("acct"); err != nil {
			t.Fatalf("post-release Get: %v", err)
		}
		if after := serveCount(); after != inSection {
			t.Errorf("lease served after release: counter %v -> %v", inSection, after)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAdaptiveFlipUnderStaleness: with MutationStaleReads every adaptive weak
// read is served one write behind. The consistency monitor must detect the
// staleness, flip the site to QUORUM at the trip threshold, and accrue zero
// violations after the flip — the acceptance proof that the fallback
// restores consistency.
func TestAdaptiveFlipUnderStaleness(t *testing.T) {
	c := newTestCluster(t, WithSeed(11), WithAdaptiveReads(),
		WithProtocolMutation(MutationStaleReads))
	err := c.Run(func() {
		cl := c.Client("ohio")
		mon := c.Monitor()
		if mon == nil {
			t.Fatal("Monitor() = nil with WithAdaptiveReads")
		}
		for i := 0; i < 8; i++ {
			val := []byte(fmt.Sprintf("v%d", i))
			if err := cl.RunCritical("acct", func(cs *CriticalSection) error {
				if err := cs.Put(val); err != nil {
					return err
				}
				wasFlipped := mon.Flipped("ohio")
				v, err := cs.Get()
				if err != nil {
					return err
				}
				// Pre-flip weak reads may legitimately trail one write under
				// the mutation (including the read that trips the flip);
				// reads issued after the flip must be exact quorum reads.
				if wasFlipped && string(v) != string(val) {
					return fmt.Errorf("post-flip Get = %q, want %q", v, val)
				}
				return nil
			}); err != nil {
				t.Fatalf("section %d: %v", i, err)
			}
		}
		if !mon.Flipped("ohio") {
			t.Fatal("monitor never flipped ohio to QUORUM under injected staleness")
		}
		if v := mon.Violations("ohio"); v == 0 {
			t.Error("monitor flipped with zero recorded violations")
		}
		if pf := mon.PostFlipViolations("ohio"); pf != 0 {
			t.Errorf("post-flip violations = %d, want 0", pf)
		}
		var found bool
		for _, st := range mon.Snapshot() {
			if st.Site == "ohio" {
				found = true
				if st.Level != "quorum" {
					t.Errorf("snapshot level = %q, want quorum", st.Level)
				}
			}
		}
		if !found {
			t.Error("snapshot missing site ohio")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAdaptiveCleanStaysWeak: without injected staleness the monitor never
// trips — adaptive mode keeps serving at ONE and records no violations.
func TestAdaptiveCleanStaysWeak(t *testing.T) {
	c := newTestCluster(t, WithSeed(13), WithAdaptiveReads())
	err := c.Run(func() {
		cl := c.Client("ohio")
		for i := 0; i < 6; i++ {
			val := []byte(fmt.Sprintf("v%d", i))
			if err := cl.RunCritical("acct", func(cs *CriticalSection) error {
				if err := cs.Put(val); err != nil {
					return err
				}
				v, err := cs.Get()
				if err != nil {
					return err
				}
				if string(v) != string(val) {
					return fmt.Errorf("Get = %q, want %q", v, val)
				}
				return nil
			}); err != nil {
				t.Fatalf("section %d: %v", i, err)
			}
		}
		mon := c.Monitor()
		if mon.Flipped("ohio") {
			t.Error("monitor flipped ohio on a clean run")
		}
		if v := mon.Violations("ohio"); v != 0 {
			t.Errorf("violations = %d on a clean run, want 0", v)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
