// Package music is the public API of this MUSIC reproduction: a replicated
// multi-site key-value store exposing critical sections over geo-distributed
// state with entry-consistency-under-failures (ECF) semantics, after
// "MUSIC: Multi-Site Critical Sections over Geo-Distributed State"
// (Balasubramanian et al., ICDCS 2020).
//
// A Cluster bundles the full deployment of Fig 1 — a multi-site network,
// a Cassandra-like replicated data/lock store, and one MUSIC replica per
// site. Clients bind to a site's replica and run critical sections:
//
//	c, _ := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime())
//	defer c.Close()
//	cl := c.Client(c.Sites()[0])
//	err := cl.RunCritical("counter", func(cs *music.CriticalSection) error {
//	    v, _ := cs.Get()
//	    return cs.Put(append(v, '+'))
//	})
//
// By default a cluster runs on a deterministic virtual-time simulator (use
// Cluster.Run to enter it); WithRealTime switches to the wall clock so the
// same protocol code serves live traffic (see cmd/musicd).
package music

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/lockstore"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/transport"
)

// LockRef is a per-key unique, increasing lock reference, good for one
// critical section (Table I).
type LockRef int64

// Mode selects how critical puts reach the data store.
type Mode = core.Mode

// Critical-put modes.
const (
	// ModeQuorum is MUSIC proper: critical puts are quorum writes.
	ModeQuorum = core.ModeQuorum
	// ModeLWT is the paper's MSCP baseline: critical puts use Paxos LWTs.
	ModeLWT = core.ModeLWT
)

// Errors surfaced by critical operations. Retry guidance follows §III-A and
// is encoded by IsRetryable: ErrNotLockHolder, ErrUnavailable and
// ErrContention are retryable (the latter two possibly at another site);
// ErrNoLongerLockHolder and ErrExpired mean the lockRef is dead and a new
// critical section is needed.
var (
	ErrNoLongerLockHolder = core.ErrNoLongerLockHolder
	ErrNotLockHolder      = core.ErrNotLockHolder
	ErrExpired            = core.ErrExpired
	ErrUnavailable        = core.ErrUnavailable
	// ErrContention means a lock-store CAS loop lost against competing
	// clients for its whole retry budget (Zipfian hot keys); backing off
	// and retrying — or enqueueing via another site — usually succeeds.
	ErrContention = lockstore.ErrContention
	// ErrEpochFenced means a live-membership epoch change moved the key's
	// placement while the section ran (or a failover site was asked to
	// adopt a grant for a key it no longer hosts). The lockRef is dead —
	// the fencing replica force-released it so the next holder
	// synchronizes — but the failure is retryable at section granularity:
	// re-run the critical section and it will be granted under the new
	// placement (see IsEpochFenced).
	ErrEpochFenced = core.ErrEpochFenced
)

// Named latency profiles (Table II plus a fast local one for live demos).
const (
	Profile11    = "11"
	ProfileIUs   = "IUs"
	ProfileIUsEu = "IUsEu"
	ProfileLocal = "local"
)

// options collects cluster construction parameters.
type options struct {
	profile      *simnet.Profile
	nodesPerSite int
	rf           int
	t            time.Duration
	mode         Mode
	realTime     bool
	seed         int64
	observer     func(op core.Op, d time.Duration)
	obs          bool
	obsOptions   obs.Options
	digestReads  bool
	history      bool
	mutation     core.Mutation
	shards       int
	dynamic      bool
	spares       []string
	leases       bool
	leaseTTL     time.Duration
	leaseSkew    time.Duration
	adaptive     bool
	tripCount    int
	tripWindow   int
}

// Option configures New.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithProfile selects a named latency profile (Profile11, ProfileIUs,
// ProfileIUsEu, ProfileLocal). The default is ProfileIUs.
func WithProfile(name string) Option {
	return optionFunc(func(o *options) {
		switch name {
		case Profile11:
			o.profile = simnet.Profile11
		case ProfileIUs:
			o.profile = simnet.ProfileIUs
		case ProfileIUsEu:
			o.profile = simnet.ProfileIUsEu
		case ProfileLocal:
			o.profile = simnet.ProfileLocal
		default:
			o.profile = nil
		}
	})
}

// WithSimnetProfile runs the cluster on a caller-built latency profile —
// benches that model fabrics the named profiles don't cover (e.g. a 500µs
// metro ring) construct one with simnet.NewProfile and pass it here.
func WithSimnetProfile(p *simnet.Profile) Option {
	return optionFunc(func(o *options) { o.profile = p })
}

// WithNodesPerSite sets how many store nodes each site runs (default 1).
func WithNodesPerSite(n int) Option {
	return optionFunc(func(o *options) { o.nodesPerSite = n })
}

// WithRF sets the replication factor (default 3, one copy per site).
func WithRF(n int) Option {
	return optionFunc(func(o *options) { o.rf = n })
}

// WithShards partitions each site's MUSIC plane into n shards routed by
// store.ShardOf(key, n): each shard gets its own lock/grant state, its own
// store coordinator (shard i coordinates through the site's i-th node,
// wrapping round when the site has fewer nodes), and its own striped slice
// of every replica's row engine. Cross-shard critical sections stay correct
// through RunCriticalMulti's canonical key order. Default 1.
func WithShards(n int) Option {
	return optionFunc(func(o *options) { o.shards = n })
}

// WithT bounds the duration of a critical section (default 1 minute).
func WithT(t time.Duration) Option {
	return optionFunc(func(o *options) { o.t = t })
}

// WithMode selects ModeQuorum (MUSIC, default) or ModeLWT (MSCP).
func WithMode(m Mode) Option {
	return optionFunc(func(o *options) { o.mode = m })
}

// WithRealTime runs the cluster on the wall clock instead of the
// deterministic virtual-time simulator.
func WithRealTime() Option {
	return optionFunc(func(o *options) { o.realTime = true })
}

// WithSeed seeds the simulator for reproducible schedules (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// WithObservability turns on the cluster's metrics registry and causal
// tracer (internal/obs): every layer from the network up through the MUSIC
// core records counters, latency histograms and — inside traced operations —
// spans. Off by default; the disabled path is free.
func WithObservability() Option {
	return optionFunc(func(o *options) { o.obs = true })
}

// WithDigestReads makes the back-end store serve quorum reads Cassandra's
// way: full data from the nearest replica, digests from the rest, falling
// back to full reads plus repair on mismatch. Cuts quorum-read bandwidth
// and per-KB CPU without changing read semantics.
func WithDigestReads() Option {
	return optionFunc(func(o *options) { o.digestReads = true })
}

// WithObservabilityOptions is WithObservability with explicit tuning.
func WithObservabilityOptions(opts obs.Options) Option {
	return optionFunc(func(o *options) { o.obs = true; o.obsOptions = opts })
}

// WithHistory turns on operation-history recording: every acquire, release,
// forced release, critical put/get/delete, synchronize, failover and
// quorum-level store operation is logged with virtual-time intervals and
// lockRef identity. Read the history with Cluster.History and validate it
// with internal/history's ECF and linearizability checkers. Off by default;
// the disabled path performs zero allocations.
func WithHistory() Option {
	return optionFunc(func(o *options) { o.history = true })
}

// WithHolderLeases turns on site-scoped holder leases: when a site's
// replica certifies a grant, the whole site acquires a clock-skew-bounded
// lease on the key, and any client routed there — not just the lockholder's
// session — serves Get locally for the lease window. Every lease read runs
// the full CriticalCheck guard, and leases are revoked on release, forced
// release, and epoch fencing (see DESIGN.md "Adaptive consistency").
func WithHolderLeases() Option {
	return optionFunc(func(o *options) { o.leases = true })
}

// WithLeaseTTL tunes the holder-lease window and the clock-skew bound it
// must absorb (defaults 2s / 250ms; the effective window is clamped to
// T − 2·skew). Implies WithHolderLeases.
func WithLeaseTTL(ttl, skew time.Duration) Option {
	return optionFunc(func(o *options) { o.leases = true; o.leaseTTL, o.leaseSkew = ttl, skew })
}

// WithAdaptiveReads serves critical gets at ONE consistency by default while
// a live consistency monitor — an online incremental checker over the same
// recorded op history — watches for staleness violations and flips the site
// back to QUORUM reads when the violation rate trips. Detected violations
// also trigger asynchronous quorum repair reads of the affected key.
// Implies WithHistory (the monitor consumes the recorded op stream).
func WithAdaptiveReads() Option {
	return optionFunc(func(o *options) { o.adaptive = true; o.history = true })
}

// WithAdaptiveTrip tunes the monitor's flip threshold: the site flips to
// QUORUM once count violations land within a sliding window of window weak
// reads (defaults 3 / 200). Implies WithAdaptiveReads.
func WithAdaptiveTrip(count, window int) Option {
	return optionFunc(func(o *options) {
		o.adaptive, o.history = true, true
		o.tripCount, o.tripWindow = count, window
	})
}

// Mutation is a deliberate protocol bug injected under test (see the
// Mutation* constants); it exists so the history checkers can prove they
// detect real ECF violations. Never enable one outside a test.
type Mutation = core.Mutation

// Protocol mutations for checker validation.
const (
	// MutationNone runs the correct protocol (default).
	MutationNone = core.MutationNone
	// MutationSkipSynchronize skips the §IV-B grant-time data-store
	// synchronization after a forced release, letting a preempted holder's
	// surviving writes leak into the next critical section.
	MutationSkipSynchronize = core.MutationSkipSynchronize
	// MutationFrozenElapsed stamps every critical write of a section with
	// v2s(ref, 0), breaking write ordering inside the lockRef's window.
	MutationFrozenElapsed = core.MutationFrozenElapsed
	// MutationStaleReads serves every adaptive weak read one write behind —
	// deterministic injected staleness for monitor validation.
	MutationStaleReads = core.MutationStaleReads
)

// WithProtocolMutation injects a deliberate protocol bug for checker
// validation (tests only).
func WithProtocolMutation(m Mutation) Option {
	return optionFunc(func(o *options) { o.mutation = m })
}

// Cluster is a full MUSIC deployment: network, back-end store, and one
// MUSIC replica per site.
type Cluster struct {
	rt       sim.Runtime
	virtual  *sim.Virtual        // nil in real-time mode
	tr       transport.Transport // the message plane everything runs over
	net      *simnet.Network     // non-nil only when tr is a simnet (fault injection)
	st       *store.Cluster
	sites    []string
	replicas map[string]*core.Replica
	obs      *obs.Obs          // nil unless WithObservability
	history  *history.Recorder // nil unless WithHistory
	monitor  *history.Monitor  // nil unless adaptive reads are on

	// Live membership (nil / zero on fixed-membership clusters).
	memView *membership.View // the epoch-versioned site set this cluster follows
	memLog  *membership.Log  // the config log, owned when built by New
	memRF   int              // replication factor epochs are applied with
	memSite string           // site name stamped on recorded epoch events
	propose func(membership.Change) (membership.Membership, error)
}

// New builds a cluster. With the default virtual-time mode, issue all
// operations inside Cluster.Run.
func New(opts ...Option) (*Cluster, error) {
	o := options{
		profile:      simnet.ProfileIUs,
		nodesPerSite: 1,
		rf:           3,
		seed:         1,
		mode:         ModeQuorum,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.profile == nil {
		return nil, errors.New("music: unknown latency profile")
	}
	if len(o.spares) > 0 {
		o.profile = o.profile.Extend(o.profile.Name()+"+spares", o.spares...)
	}

	var rt sim.Runtime
	var virtual *sim.Virtual
	if o.realTime {
		rt = sim.NewReal(o.seed)
	} else {
		virtual = sim.New(o.seed)
		rt = virtual
	}
	var ob *obs.Obs
	if o.obs {
		ob = obs.New(rt, o.obsOptions)
	}
	var rec *history.Recorder
	if o.history {
		rec = history.New(rt)
	}
	var mon *history.Monitor
	// repairRep resolves a site to its replica for the monitor's repair
	// hook; it is assigned once the replicas exist, before any op can run.
	var repairRep func(site string) *core.Replica
	if o.adaptive {
		mon = history.NewMonitor(history.MonitorConfig{
			TripCount: o.tripCount,
			Window:    o.tripWindow,
			OnViolation: func(site, key string) {
				if repairRep == nil {
					return
				}
				if rep := repairRep(site); rep != nil {
					// Repair asynchronously: a quorum read re-converges the
					// stale replica through the store's read-repair path.
					rt.Go(func() { _ = rep.RepairRead(key) })
				}
			},
		})
		rec.Attach(mon)
	}
	net := simnet.New(rt, simnet.Config{
		Profile:      o.profile,
		NodesPerSite: o.nodesPerSite,
		Seed:         o.seed,
		Obs:          ob,
	})
	if o.shards <= 0 {
		o.shards = 1
	}
	// Dynamic clusters carve the initial membership out of the non-spare
	// sites; spares run store/replica services from boot but join later.
	var initial membership.Membership
	var spareNodes []transport.NodeID
	if o.dynamic {
		spare := make(map[string]bool, len(o.spares))
		for _, s := range o.spares {
			spare[s] = true
		}
		var mems []membership.Member
		for _, site := range o.profile.Sites() {
			for _, id := range net.NodesInSite(site) {
				if spare[site] {
					spareNodes = append(spareNodes, id)
					continue
				}
				mems = append(mems, membership.Member{ID: id, Site: site})
			}
		}
		initial = membership.New(mems)
	}
	st := store.New(net, store.Config{
		RF: o.rf, DigestReads: o.digestReads, History: rec, Shards: o.shards,
		Members: memberNodes(initial),
	})

	c := &Cluster{
		rt:       rt,
		virtual:  virtual,
		tr:       net,
		net:      net,
		st:       st,
		sites:    o.profile.Sites(),
		replicas: make(map[string]*core.Replica, len(o.profile.Sites())),
		obs:      ob,
		history:  rec,
		monitor:  mon,
	}
	repairRep = func(site string) *core.Replica { return c.replicas[site] }
	for _, site := range c.sites {
		// Shard i coordinates through the site's i-th node (wrapping when
		// the site has fewer nodes than shards), so with NodesPerSite ≥
		// shards each shard drives its own simnet executor.
		nodes := net.NodesInSite(site)
		clients := make([]*store.Client, o.shards)
		for i := range clients {
			clients[i] = st.Client(nodes[i%len(nodes)])
		}
		c.replicas[site] = core.NewReplicaSharded(clients, core.Config{
			T:             o.t,
			Mode:          o.mode,
			Observer:      o.observer,
			History:       rec,
			Mutation:      o.mutation,
			Leases:        o.leases,
			LeaseTTL:      o.leaseTTL,
			LeaseSkew:     o.leaseSkew,
			AdaptiveReads: o.adaptive,
			Monitor:       mon,
		})
	}
	if o.dynamic {
		memLog, err := membership.NewLog(membership.LogConfig{
			Transport: net,
			Group:     initial.NodeIDs(),
			Serve:     spareNodes,
			Initial:   initial,
		})
		if err != nil {
			return nil, err
		}
		c.memLog = memLog
		c.attachMembership(memLog.View(), o.rf, initial.Members[0].Site)
	}
	return c, nil
}

// TransportConfig parameterizes NewOverTransport.
type TransportConfig struct {
	// RF is the store replication factor (default 3).
	RF int
	// T bounds the duration of a critical section (default 1 minute).
	T time.Duration
	// Mode selects ModeQuorum (default) or ModeLWT critical puts.
	Mode Mode
	// Shards partitions each site's MUSIC plane by store.ShardOf (see
	// WithShards). Shard i coordinates through the site's i-th local node,
	// wrapping round when the process hosts fewer nodes. Default 1.
	Shards int
	// DigestReads enables the store's digest quorum-read path.
	DigestReads bool
	// LocalNodes lists the transport nodes this process hosts store
	// replicas for. Empty means all nodes (single-process deployment).
	LocalNodes []transport.NodeID
	// ReplicaSites names the sites to run a MUSIC replica for, each
	// coordinated through that site's first local node. Empty defaults to
	// the sites of LocalNodes.
	ReplicaSites []string
	// Obs supplies the observability sink shared with the transport (nil
	// disables metrics and tracing).
	Obs *obs.Obs
	// History, when set, records every protocol operation for the ECF /
	// linearizability checkers. Pass one shared recorder to every cluster of
	// a multi-deployment test and the merged timeline checks as one history.
	History *history.Recorder
	// Leases turns on site-scoped holder leases (see WithHolderLeases);
	// LeaseTTL and LeaseSkew tune the window (0 keeps the 2s/250ms defaults).
	Leases    bool
	LeaseTTL  time.Duration
	LeaseSkew time.Duration
	// AdaptiveReads serves critical gets at ONE while Monitor judges the
	// site safe (see WithAdaptiveReads). The caller owns the monitor — build
	// it with history.NewMonitor and attach it to the shared History recorder
	// so one monitor watches the whole multi-process deployment.
	AdaptiveReads bool
	Monitor       *history.Monitor
	// Membership, when set, switches placement to epoch-versioned live
	// membership driven by this view: the cluster fast-forwards to the
	// view's current epoch and re-applies placement on every later one. The
	// caller owns the view's feed — cmd/musicd feeds it from a config log
	// (group members) or a poller (joiners). Nil keeps fixed membership.
	Membership *membership.View
	// Propose, when set alongside Membership, is how this deployment drives
	// reconfiguration: JoinSite / RetireSite / ReplaceSite submit their
	// change through it. A config-group process proposes through its local
	// log peer; a joiner forwards with membership.ProposeRemote. Nil makes
	// reconfiguration calls fail with ErrNotReplicated (follow-only).
	Propose func(membership.Change) (membership.Membership, error)
}

// NewOverTransport builds a MUSIC deployment over an externally constructed
// transport — the multi-process path: each musicd process brings its own
// TCP transport (internal/nettrans), hosts the store replica for its node,
// and runs the MUSIC replica for its site, while the ring spans every node
// in the peer set. The same call works over a simnet for tests. The caller
// owns fault injection; Close closes the transport.
func NewOverTransport(tr transport.Transport, cfg TransportConfig) (*Cluster, error) {
	if cfg.RF == 0 {
		cfg.RF = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	var members []store.RingNode
	if cfg.Membership != nil {
		members = memberNodes(cfg.Membership.Current())
	}
	st := store.New(tr, store.Config{
		RF:          cfg.RF,
		DigestReads: cfg.DigestReads,
		LocalNodes:  cfg.LocalNodes,
		History:     cfg.History,
		Shards:      cfg.Shards,
		Members:     members,
	})
	local := cfg.LocalNodes
	if len(local) == 0 {
		local = tr.Nodes()
	}
	sites := cfg.ReplicaSites
	if len(sites) == 0 {
		seen := make(map[string]bool)
		for _, id := range local {
			if s := tr.SiteOf(id); !seen[s] {
				seen[s] = true
				sites = append(sites, s)
			}
		}
	}
	c := &Cluster{
		rt:       tr.Runtime(),
		tr:       tr,
		st:       st,
		replicas: make(map[string]*core.Replica, len(sites)),
		obs:      cfg.Obs,
		history:  cfg.History,
	}
	if v, ok := c.rt.(*sim.Virtual); ok {
		c.virtual = v
	}
	if net, ok := tr.(*simnet.Network); ok {
		c.net = net
	}
	// Sites, in cluster order: every site the transport knows about.
	seen := make(map[string]bool)
	for _, id := range tr.Nodes() {
		if s := tr.SiteOf(id); !seen[s] {
			seen[s] = true
			c.sites = append(c.sites, s)
		}
	}
	for _, site := range sites {
		var siteNodes []transport.NodeID
		for _, id := range local {
			if tr.SiteOf(id) == site {
				siteNodes = append(siteNodes, id)
			}
		}
		if len(siteNodes) == 0 {
			return nil, fmt.Errorf("music: no local node in site %q", site)
		}
		clients := make([]*store.Client, cfg.Shards)
		for i := range clients {
			clients[i] = st.Client(siteNodes[i%len(siteNodes)])
		}
		c.replicas[site] = core.NewReplicaSharded(clients, core.Config{
			T:             cfg.T,
			Mode:          cfg.Mode,
			History:       cfg.History,
			Leases:        cfg.Leases,
			LeaseTTL:      cfg.LeaseTTL,
			LeaseSkew:     cfg.LeaseSkew,
			AdaptiveReads: cfg.AdaptiveReads,
			Monitor:       cfg.Monitor,
		})
	}
	c.monitor = cfg.Monitor
	if cfg.Membership != nil {
		c.propose = cfg.Propose
		c.attachMembership(cfg.Membership, cfg.RF, sites[0])
	}
	return c, nil
}

// Replica returns the MUSIC core replica for a site this cluster hosts —
// the handle cmd/musicd serves its REST API from. It panics on a site this
// deployment has no replica for.
func (c *Cluster) Replica(site string) *core.Replica {
	rep, ok := c.replicas[site]
	if !ok {
		panic(fmt.Sprintf("music: no replica for site %q", site))
	}
	return rep
}

// Sites returns the cluster's site names.
func (c *Cluster) Sites() []string { return append([]string(nil), c.sites...) }

// Obs returns the cluster's observability bundle — nil unless the cluster
// was built WithObservability. Use Obs().Tracer() to root traces around
// critical sections and Obs().Metrics() to read counters and histograms.
func (c *Cluster) Obs() *obs.Obs { return c.obs }

// History returns the cluster's operation-history recorder — nil unless the
// cluster was built WithHistory. Feed History().Ops() to history.Check to
// validate the run against the ECF contract.
func (c *Cluster) History() *history.Recorder { return c.history }

// Monitor returns the cluster's live consistency monitor — nil unless
// adaptive reads are on. Snapshot it for each site's current read level and
// violation counters.
func (c *Cluster) Monitor() *history.Monitor { return c.monitor }

// Client returns a client bound to the MUSIC replica at the named site.
// Options tune its transient-failure handling; by default it retries
// retryable errors under DefaultRetryPolicy at that one site and never
// fails over.
func (c *Cluster) Client(site string, opts ...ClientOption) *Client {
	rep, ok := c.replicas[site]
	if !ok {
		panic(fmt.Sprintf("music: unknown site %q", site))
	}
	cl := &Client{c: c, home: site, site: site, rep: rep}
	for _, opt := range opts {
		opt.applyClient(cl)
	}
	for _, s := range cl.failover {
		if _, ok := c.replicas[s]; !ok {
			panic(fmt.Sprintf("music: unknown failover site %q", s))
		}
	}
	return cl
}

// FailoverClient returns a client homed at the named site that fails over
// to every other site of the cluster, in profile order, when the current
// site keeps failing transiently — the full §III-A "retry at another MUSIC
// replica" behavior. On a dynamic cluster the candidate set follows the
// live membership instead: sites that retire drop out of rotation, sites
// that join become eligible, and a client bound to a site the membership
// drops re-binds on its next operation.
func (c *Cluster) FailoverClient(site string, opts ...ClientOption) *Client {
	var others []string
	for _, s := range c.sites {
		if s != site {
			others = append(others, s)
		}
	}
	cl := c.Client(site, append([]ClientOption{WithFailoverSites(others...)}, opts...)...)
	cl.dynamic = c.memView != nil
	return cl
}

// tracer returns the cluster tracer (nil when observability is off).
func (c *Cluster) tracer() *obs.Tracer { return c.obs.Tracer() }

// Run executes fn inside the cluster's virtual-time simulation and drives
// it to completion; in real-time mode it simply calls fn. All operations on
// a virtual-time cluster must happen inside Run.
func (c *Cluster) Run(fn func()) error {
	if c.virtual == nil {
		fn()
		return nil
	}
	return c.virtual.Run(fn)
}

// Now returns the cluster clock (virtual or wall, as configured).
func (c *Cluster) Now() time.Duration { return c.rt.Now() }

// Sleep pauses the calling task on the cluster clock.
func (c *Cluster) Sleep(d time.Duration) { c.rt.Sleep(d) }

// Go spawns fn as a concurrent task on the cluster's runtime.
func (c *Cluster) Go(fn func()) { c.rt.Go(fn) }

// Close releases transport resources (listeners, connections, executors);
// virtual clusters need no cleanup.
func (c *Cluster) Close() { c.tr.Close() }

// PartitionSites splits the cluster's sites into isolated groups (fault
// injection for tests and demos). Panics on a transport without fault
// modeling (the real TCP plane — partition it by killing processes).
func (c *Cluster) PartitionSites(groups ...[]string) { c.net.PartitionSites(groups...) }

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.Heal() }

// CrashSite takes every node in a site down.
func (c *Cluster) CrashSite(site string) {
	for _, id := range c.net.NodesInSite(site) {
		c.net.Crash(id)
	}
}

// RestartSite brings a crashed site back.
func (c *Cluster) RestartSite(site string) {
	for _, id := range c.net.NodesInSite(site) {
		c.net.Restart(id)
	}
}

// SetLossRate drops each inter-node message independently with probability
// p (0 restores reliable delivery). Panics on a transport without fault
// modeling, like PartitionSites.
func (c *Cluster) SetLossRate(p float64) { c.net.SetLossRate(p) }

// Virtual returns the cluster's virtual-time simulator — nil in real-time
// mode. The chaos explorer uses it to bound schedules (SetDeadline) and
// randomize task interleavings (SetScheduleShuffle).
func (c *Cluster) Virtual() *sim.Virtual { return c.virtual }
