package music

import (
	"errors"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the session layer of the critical-section fast path: the
// per-held-lock state that lets a holder exploit its own exclusivity.
// While a lockRef is first in the queue, nobody else may write the key, so
// (a) the value piggybacked on the grant's synchFlag quorum read — or read
// by the section's first quorum Get — can serve later Gets from memory, and
// (b) writes need not be acked before the *next* write issues, only before
// the lock is released. Every fast-path operation still runs the same local
// guard (core.Replica.CriticalCheck) as a quorum-backed critical op, and
// any guard failure invalidates the cache; DESIGN.md states the ECF
// soundness argument.

// WritePolicy selects how a critical section's writes reach the data store.
type WritePolicy int

const (
	// WriteSync issues every Put/Delete as a synchronous quorum write
	// before returning — the paper-faithful default.
	WriteSync WritePolicy = iota
	// WritePipelined issues each write's quorum round immediately but
	// asynchronously, overlapping the WAN round trips of consecutive
	// writes; all acks are awaited at flush, before the lock is released.
	WritePipelined
	// WriteBuffered coalesces writes client-side — last write wins — and
	// issues a single quorum write at flush. The buffer lives in the
	// client, so it survives a cross-site failover and flushes at the new
	// site.
	WriteBuffered
)

// String names the policy for spans and benchmark tables.
func (p WritePolicy) String() string {
	switch p {
	case WritePipelined:
		return "pipelined"
	case WriteBuffered:
		return "buffered"
	default:
		return "sync"
	}
}

// WithWritePolicy selects the client's critical-section write policy
// (WriteSync unless set).
func WithWritePolicy(p WritePolicy) ClientOption {
	return clientOptionFunc(func(cl *Client) { cl.writePolicy = p })
}

// WithHolderCache enables holder-cached reads: sections serve Get from a
// per-section cache seeded by the grant-time quorum read and refreshed by
// every quorum-backed operation, at the cost of a local guard instead of a
// WAN round trip. Off by default.
func WithHolderCache() ClientOption {
	return clientOptionFunc(func(cl *Client) { cl.holderCache = true })
}

// CriticalSection is the handle passed to RunCritical callbacks: the
// session state of one held lock. Besides delegating critical operations
// to its client it carries the fast-path state — the holder cache
// (WithHolderCache) and the write-behind buffer of the Pipelined and
// Buffered policies (WithWritePolicy).
type CriticalSection struct {
	cl  *Client
	key string
	ref LockRef

	policy WritePolicy

	// Holder cache: when valid, value/present mirror the key's true value
	// as of this section's last quorum-backed observation.
	cacheOn      bool
	cacheValid   bool
	cachePresent bool
	cacheValue   []byte

	// Write-behind state: the section's latest write — the one the next
	// lockholder must observe, so it must be acked before release — plus,
	// under Pipelined, the handles of in-flight quorum writes.
	wbHave    bool // some write happened this section
	wbDirty   bool // Buffered: latest write not yet issued to the store
	wbDeleted bool
	wbValue   []byte
	pending   []*store.PendingPut
	lastPut   *store.PendingPut
}

// newSection builds the session state for a freshly acquired lock, seeding
// the holder cache from the grant's piggybacked quorum read.
func (cl *Client) newSection(key string, ref LockRef, seed core.ValueSeed) *CriticalSection {
	cs := &CriticalSection{
		cl:      cl,
		key:     key,
		ref:     ref,
		policy:  cl.writePolicy,
		cacheOn: cl.holderCache,
	}
	if cs.cacheOn && seed.Valid {
		cs.setCache(seed.Value, seed.Present)
	}
	return cs
}

// Ref returns the section's lock reference.
func (cs *CriticalSection) Ref() LockRef { return cs.ref }

// guard runs the local holder check once against the bound replica.
func (cs *CriticalSection) guard() error {
	rep, _ := cs.cl.bound()
	return rep.CriticalCheck(cs.key, int64(cs.ref))
}

// guardRetry is guard under the client's full retry + failover budget.
func (cs *CriticalSection) guardRetry() error {
	return cs.cl.withRetry("criticalCheck", cs.key, cs.ref, true, func(rep *core.Replica) error {
		return rep.CriticalCheck(cs.key, int64(cs.ref))
	})
}

func (cs *CriticalSection) setCache(v []byte, present bool) {
	if !cs.cacheOn {
		return
	}
	cs.cacheValid, cs.cachePresent, cs.cacheValue = true, present, v
}

// invalidate drops the holder cache; any failed guard or critical op calls
// it, so a section never serves cached state past an error.
func (cs *CriticalSection) invalidate() {
	cs.cacheValid, cs.cachePresent, cs.cacheValue = false, false, nil
}

// beginEcho opens a history record for a session-served read (holder cache
// or write-behind buffer). The note names the source so the ECF checker's
// echo rule — cached values must trace to the grant seed or the section's
// own writes — applies instead of the quorum-freshness rule.
func (cs *CriticalSection) beginEcho(source string) *history.Call {
	_, site := cs.cl.bound()
	return cs.cl.c.history.Begin(site, history.KindGet, cs.key, int64(cs.ref)).Note(source)
}

// Get reads the key's true value. With write-behind pending it returns the
// section's own latest write; with a valid holder cache it returns the
// cached value; either way the read is gated by the same local holder
// guard as a quorum-backed critical op. Otherwise — or when the guard
// fails transiently — it falls back to a quorum CriticalGet.
func (cs *CriticalSection) Get() ([]byte, error) {
	if cs.wbHave {
		// Read-your-writes under write-behind: the buffered/in-flight value
		// is the key's true value, whatever the store's replicas say.
		hc := cs.beginEcho("buffer")
		if err := cs.guardRetry(); err != nil {
			cs.invalidate()
			hc.End(err)
			return nil, err
		}
		if cs.wbDeleted {
			hc.Value(nil, false).End(nil)
			return nil, nil
		}
		hc.Value(cs.wbValue, true).End(nil)
		return append([]byte(nil), cs.wbValue...), nil
	}
	if cs.cacheOn && cs.cacheValid {
		hc := cs.beginEcho("cache")
		err := cs.guard()
		if err == nil {
			cs.cl.counter("music_cs_cache_hits_total", obs.Labels{"site": cs.cl.Site()})
			hc.Value(cs.cacheValue, cs.cachePresent).End(nil)
			if !cs.cachePresent {
				return nil, nil
			}
			return append([]byte(nil), cs.cacheValue...), nil
		}
		// The cached value was never served: abandon the echo record and let
		// the quorum read below log the operation instead.
		cs.invalidate()
		if !IsRetryable(err) {
			return nil, err
		}
		// Transient guard failure: fall through to the quorum read, which
		// carries the retry + failover budget.
	}
	v, err := cs.cl.CriticalGet(cs.key, cs.ref)
	if err != nil {
		cs.invalidate()
		return nil, err
	}
	cs.setCache(v, v != nil)
	return v, nil
}

// Put writes the key's value under the section's write policy.
func (cs *CriticalSection) Put(v []byte) error { return cs.write(v, false) }

// Delete removes the key's value under the section's write policy.
func (cs *CriticalSection) Delete() error { return cs.write(nil, true) }

func (cs *CriticalSection) write(v []byte, deleted bool) error {
	switch cs.policy {
	case WriteBuffered:
		if err := cs.guardRetry(); err != nil {
			cs.invalidate()
			return err
		}
		cs.wbHave, cs.wbDirty, cs.wbValue, cs.wbDeleted = true, true, v, deleted
		cs.setCache(v, !deleted)
		return nil

	case WritePipelined:
		var h *store.PendingPut
		err := cs.cl.withRetry("criticalPut", cs.key, cs.ref, true, func(rep *core.Replica) error {
			var issueErr error
			if deleted {
				h, issueErr = rep.CriticalDeleteAsync(cs.key, int64(cs.ref))
			} else {
				h, issueErr = rep.CriticalPutAsync(cs.key, int64(cs.ref), v)
			}
			return issueErr
		})
		if err != nil {
			cs.invalidate()
			return err
		}
		cs.pending = append(cs.pending, h)
		cs.lastPut = h
		cs.wbHave, cs.wbValue, cs.wbDeleted = true, v, deleted
		cs.setCache(v, !deleted)
		return nil

	default: // WriteSync
		var err error
		if deleted {
			err = cs.cl.CriticalDelete(cs.key, cs.ref)
		} else {
			err = cs.cl.CriticalPut(cs.key, cs.ref, v)
		}
		if err != nil {
			cs.invalidate()
			return err
		}
		cs.setCache(v, !deleted)
		return nil
	}
}

// Flush drives the section's write-behind writes to their quorum acks.
// RunCritical/RunCriticalMulti call it before releasing the lock — ECF
// demands the final value be acked before the dequeue lets the next holder
// in — and holders may call it mid-section as a durability point. Only the
// section's *latest* write is re-driven on failure: any earlier write is
// dominated by the final value's higher v2s timestamp, so its loss is
// unobservable once the final write lands.
func (cs *CriticalSection) Flush() (err error) {
	if cs.policy == WriteSync || !cs.wbHave {
		return nil
	}
	if !cs.wbDirty && len(cs.pending) == 0 {
		return nil
	}
	sp := cs.cl.c.tracer().Child("music.cs.flush")
	sp.Annotate("policy", cs.policy.String())
	sp.Annotatef("lockref", "%s/%d", cs.key, cs.ref)
	defer func() { sp.EndErr(err) }()

	redrive := cs.wbDirty // Buffered: the coalesced write still to issue
	if cs.policy == WritePipelined {
		sp.Annotatef("pending", "%d", len(cs.pending))
		for _, h := range cs.pending {
			if werr := h.Wait(); werr != nil && h == cs.lastPut {
				redrive = true
			}
		}
		cs.pending, cs.lastPut = nil, nil
		if redrive {
			cs.cl.counter("music_cs_flush_redrives_total", obs.Labels{"site": cs.cl.Site()})
		}
	}
	if !redrive {
		return nil
	}
	// Re-drive the final write synchronously with the client's full retry +
	// failover budget; its fresh guard re-stamps the value with a later
	// elapsed time, so it dominates every earlier (even partially landed)
	// write of this section.
	if cs.wbDeleted {
		err = cs.cl.CriticalDelete(cs.key, cs.ref)
	} else {
		err = cs.cl.CriticalPut(cs.key, cs.ref, cs.wbValue)
	}
	if err != nil {
		cs.invalidate()
		return err
	}
	cs.wbDirty = false
	return nil
}

// RunCritical runs fn inside a critical section over key: it creates a lock
// reference, awaits the lock, invokes fn, flushes any write-behind state,
// and releases the lock (Listing 1 packaged up). The lock is released even
// when fn fails; when the flush or release fail too, the errors are joined
// so a stuck lock or an unacked final write is never invisible.
func (cl *Client) RunCritical(key string, fn func(cs *CriticalSection) error) error {
	ref, err := cl.CreateLockRef(key)
	if err != nil {
		return err
	}
	seed, err := cl.awaitLockSeeded(key, ref, 0)
	if err != nil {
		// Never granted: evict our reference so it cannot become an orphan.
		_ = cl.RemoveLockRef(key, ref)
		return err
	}
	cs := cl.newSection(key, ref, seed)
	fnErr := fn(cs)
	// The flush precedes the dequeue: the next holder's grant-time quorum
	// read must observe this section's final value (ECF).
	flushErr := cs.Flush()
	relErr := cl.ReleaseLock(key, ref)
	if flushErr != nil || relErr != nil {
		return errors.Join(fnErr, flushErr, relErr)
	}
	return fnErr
}

// RunCriticalMulti runs fn holding the locks of every key in keys,
// acquiring them in lexicographic order — the deadlock-avoidance rule the
// paper prescribes for multi-key critical sections (§III-A). Duplicate keys
// collapse to one lock: fn receives one section per distinct key.
func (cl *Client) RunCriticalMulti(keys []string, fn func(cs map[string]*CriticalSection) error) error {
	ordered := append([]string(nil), keys...)
	sort.Strings(ordered)
	// Dedupe after sorting: a repeated key would enqueue a second lockRef
	// behind our own first one and deadlock waiting for it.
	ordered = slices.Compact(ordered)

	held := make(map[string]*CriticalSection, len(ordered))
	release := func() error {
		// Flush and release in reverse acquisition order; each section's
		// write-behind state lands before its own lock is handed on.
		var errs []error
		for i := len(ordered) - 1; i >= 0; i-- {
			if cs, ok := held[ordered[i]]; ok {
				if err := cs.Flush(); err != nil {
					errs = append(errs, err)
				}
				if err := cl.ReleaseLock(ordered[i], cs.ref); err != nil {
					errs = append(errs, err)
				}
			}
		}
		return errors.Join(errs...)
	}
	for _, key := range ordered {
		ref, err := cl.CreateLockRef(key)
		if err != nil {
			return errors.Join(err, release())
		}
		seed, err := cl.awaitLockSeeded(key, ref, 0)
		if err != nil {
			_ = cl.RemoveLockRef(key, ref)
			return errors.Join(err, release())
		}
		held[key] = cl.newSection(key, ref, seed)
	}
	fnErr := fn(held)
	if relErr := release(); relErr != nil {
		return errors.Join(fnErr, relErr)
	}
	return fnErr
}
