package music

import (
	"fmt"
	"testing"
	"time"
)

// TestMultiKeyNoDeadlockOppositeOrders has two clients repeatedly taking
// the same pair of locks, requested in opposite orders. The lexicographic
// acquisition rule (§III-A) must prevent deadlock and keep both keys'
// updates atomic with respect to each other.
func TestMultiKeyNoDeadlockOppositeOrders(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		done := make(chan error, 2)
		orders := [][]string{{"a", "b"}, {"b", "a"}}
		for i := 0; i < 2; i++ {
			i := i
			site := c.Sites()[i]
			c.Go(func() {
				cl := c.Client(site)
				var err error
				for round := 0; round < 3 && err == nil; round++ {
					err = cl.RunCriticalMulti(orders[i], func(cs map[string]*CriticalSection) error {
						// Write matching values to both keys; any interleaving
						// of the two clients would break the pairing.
						tag := []byte(fmt.Sprintf("c%d-r%d", i, round))
						if err := cs["a"].Put(tag); err != nil {
							return err
						}
						return cs["b"].Put(tag)
					})
				}
				done <- err
			})
		}
		deadline := c.Now() + 20*time.Minute
		for len(done) < 2 {
			if c.Now() > deadline {
				t.Fatal("multi-key clients deadlocked")
			}
			c.Sleep(100 * time.Millisecond)
		}
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Fatalf("client error: %v", err)
			}
		}
		cl := c.Client("ohio")
		a, errA := cl.Get("a")
		b, errB := cl.Get("b")
		if errA != nil || errB != nil || string(a) != string(b) {
			t.Fatalf("keys diverged after paired sections: a=%q (%v) b=%q (%v)", a, errA, b, errB)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestMultiKeyReleasesEverythingOnFailure checks that a failed multi-key
// acquisition leaves no lock held.
func TestMultiKeyReleasesEverythingOnFailure(t *testing.T) {
	c := newTestCluster(t)
	err := c.Run(func() {
		cl := c.Client("ohio")
		boom := fmt.Errorf("boom")
		if err := cl.RunCriticalMulti([]string{"x", "y"}, func(cs map[string]*CriticalSection) error {
			return boom
		}); err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
		// Both locks are immediately available again.
		if err := cl.RunCriticalMulti([]string{"x", "y"}, func(cs map[string]*CriticalSection) error {
			return nil
		}); err != nil {
			t.Fatalf("relock after failure: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
