package music

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/store"
)

// faultWindow mirrors explore.Window (that package imports music, so it
// can't be used from here without a cycle).
type faultWindow struct {
	At  time.Duration
	For time.Duration
}

// drawWindows draws n non-overlapping fault windows at the given scale —
// the same shape explore.Windows generates for the chaos explorer.
func drawWindows(rng *rand.Rand, n int, scale time.Duration) []faultWindow {
	ms := func(lo, hi time.Duration) time.Duration {
		loMs, hiMs := int(lo/time.Millisecond), int(hi/time.Millisecond)
		return time.Duration(loMs+rng.Intn(hiMs-loMs)) * time.Millisecond
	}
	wins := make([]faultWindow, 0, n)
	at := ms(scale, 4*scale)
	for i := 0; i < n; i++ {
		w := faultWindow{At: at, For: ms(3*scale/2, 13*scale/2)}
		wins = append(wins, w)
		at += w.For + ms(scale, 4*scale)
	}
	return wins
}

// crossShardPairs returns key pairs whose two members land in different
// shards of an n-shard plane — the sections that exercise the only
// cross-shard coordination path, RunCriticalMulti's canonical key order.
func crossShardPairs(n, want int) [][]string {
	var pairs [][]string
	for i := 0; len(pairs) < want; i++ {
		a := fmt.Sprintf("xs-%d-a", i)
		b := fmt.Sprintf("xs-%d-b", i)
		if store.ShardOf(a, n) != store.ShardOf(b, n) {
			pairs = append(pairs, []string{a, b})
		}
	}
	return pairs
}

// TestCrossShardSectionsUnderFaultWindows drives multi-key critical
// sections spanning shards of a 4-shard plane while seeded fault windows
// (partitions and message loss) open and heal, then
// checks the recorded history against the ECF contract. Cross-shard
// atomicity has no dedicated machinery — it rides on lexicographic
// acquisition across per-shard lock queues — so this is the test that the
// sharded plane kept RunCriticalMulti's guarantees under churn.
func TestCrossShardSectionsUnderFaultWindows(t *testing.T) {
	const shards = 4
	seeds := []int64{31, 32, 33}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t,
				WithShards(shards), WithNodesPerSite(shards),
				WithHistory(), WithSeed(seed))
			rng := rand.New(rand.NewSource(seed))
			wins := drawWindows(rng, 2+rng.Intn(2), 100*time.Millisecond)
			pairs := crossShardPairs(shards, 4)
			sites := c.Sites()

			err := c.Run(func() {
				// Fault driver: each window picks a partition or a lossy
				// network, holds it for its span, then heals.
				c.Go(func() {
					elapsed := time.Duration(0)
					for wi, w := range wins {
						c.Sleep(w.At - elapsed)
						if wi%2 == 0 {
							cut := sites[rng.Intn(len(sites))]
							var rest []string
							for _, s := range sites {
								if s != cut {
									rest = append(rest, s)
								}
							}
							c.PartitionSites([]string{cut}, rest)
						} else {
							c.SetLossRate(0.15)
						}
						c.Sleep(w.For)
						c.Heal()
						c.SetLossRate(0)
						elapsed = w.At + w.For
					}
				})

				const clients = 3
				done := make(chan struct{}, clients)
				for ci := 0; ci < clients; ci++ {
					ci := ci
					cl := c.Client(sites[ci%len(sites)])
					c.Go(func() {
						defer func() { done <- struct{}{} }()
						for round := 0; round < 6; round++ {
							pair := pairs[(ci+round)%len(pairs)]
							val := []byte(fmt.Sprintf("c%d-r%d", ci, round))
							// Section errors under open fault windows are the
							// faults doing their job; the checker judges what
							// the protocol admitted.
							_ = cl.RunCriticalMulti(pair, func(cs map[string]*CriticalSection) error {
								for _, k := range pair {
									if _, err := cs[k].Get(); err != nil {
										return err
									}
									if err := cs[k].Put(val); err != nil {
										return err
									}
								}
								return nil
							})
							c.Sleep(50 * time.Millisecond)
						}
					})
				}
				deadline := c.Now() + time.Hour
				for got := 0; got < clients; {
					select {
					case <-done:
						got++
					default:
						if c.Now() > deadline {
							t.Fatal("cross-shard clients wedged under fault windows")
						}
						c.Sleep(10 * time.Millisecond)
					}
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			ops := c.History().Ops()
			if len(ops) == 0 {
				t.Fatal("empty history — the workload recorded nothing")
			}
			res := history.Check(ops, history.CheckOptions{})
			for _, v := range res.Violations {
				t.Errorf("ECF violation: %s", v)
			}
		})
	}
}
