package music

import (
	"fmt"

	"repro/internal/membership"
	"repro/internal/store"
	"repro/internal/transport"
)

// Live membership: a dynamic cluster replicates its site set through an
// epoch-versioned config log (internal/membership over internal/raft) and
// recomputes placement per epoch on the consistent-hash ring. Sites can
// join, retire, or be replaced without stopping traffic — in-flight
// critical sections whose keys move are preempted by core's epoch fence
// (ErrEpochFenced, retryable at section granularity) and everything else
// keeps running. Fixed-membership clusters are untouched: they never build
// a config log and their placement stays the historical modulo walk.

// WithDynamicMembership switches the cluster to epoch-versioned live
// membership: placement moves to the consistent-hash ring, a config log is
// replicated across the initial sites, and Cluster.JoinSite / RetireSite /
// ReplaceSite reconfigure the running cluster. See WithSpareSites for
// provisioning the sites a later join brings in.
func WithDynamicMembership() Option {
	return optionFunc(func(o *options) { o.dynamic = true })
}

// WithSpareSites extends the latency profile with extra sites that start
// *outside* the initial membership: their nodes run store and MUSIC
// replicas from boot (refusing critical sections while unjoined) so a
// later JoinSite or ReplaceSite can bring them in without new processes.
// Each spare gets the profile's worst inter-site RTT to every other site.
// Implies WithDynamicMembership.
func WithSpareSites(sites ...string) Option {
	return optionFunc(func(o *options) {
		o.dynamic = true
		o.spares = append(o.spares, sites...)
	})
}

// memberNodes converts a membership into ring nodes (store.RingNode is an
// alias of placement.Node, so the result feeds ApplyMembership, EpochEvent
// and store.Config.Members alike).
func memberNodes(m membership.Membership) []store.RingNode {
	out := make([]store.RingNode, 0, len(m.Members))
	for _, mem := range m.Members {
		out = append(out, store.RingNode{ID: mem.ID, Site: mem.Site})
	}
	return out
}

// attachMembership binds a membership view to the cluster: placement
// fast-forwards to the view's epoch, every later epoch is applied to the
// store and recorded as a history epoch event, and clients with dynamic
// failover start resolving candidate sites from the live membership. site
// names this deployment in the recorded epoch events (each process of a
// multi-process cluster logs epochs as it applies them; identical
// re-announcements are the checker's normal case).
func (c *Cluster) attachMembership(view *membership.View, rf int, site string) {
	c.memView, c.memRF, c.memSite = view, rf, site
	cur := view.Current()
	c.st.ApplyMembership(cur.Epoch, memberNodes(cur))
	c.history.EpochEvent(site, cur.Epoch, rf, memberNodes(cur))
	view.Subscribe(func(m membership.Membership) {
		c.st.ApplyMembership(m.Epoch, memberNodes(m))
		c.history.EpochEvent(c.memSite, m.Epoch, c.memRF, memberNodes(m))
	})
}

// Membership returns the current epoch-versioned membership. The zero
// Membership (epoch 0) means the cluster runs fixed membership.
func (c *Cluster) Membership() membership.Membership {
	if c.memView == nil {
		return membership.Membership{}
	}
	return c.memView.Current()
}

// MembershipView exposes the live membership view (nil on fixed-membership
// clusters) for layers that subscribe themselves, like cmd/musicd.
func (c *Cluster) MembershipView() *membership.View { return c.memView }

// Epoch returns the placement epoch the store currently follows (always 1
// on fixed-membership clusters).
func (c *Cluster) Epoch() int64 { return c.st.Epoch() }

// siteMembers lists a site's transport nodes as arriving members. On a
// transport that knows peer addresses (the TCP plane) each member carries
// its dialable address, so processes learning the new epoch can AddPeer.
func (c *Cluster) siteMembers(site string) ([]membership.Member, error) {
	var nodes []transport.NodeID
	for _, id := range c.tr.Nodes() {
		if c.tr.SiteOf(id) == site {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("music: unknown site %q", site)
	}
	ar, _ := c.tr.(transport.AddrReporter)
	add := make([]membership.Member, 0, len(nodes))
	for _, id := range nodes {
		mem := membership.Member{ID: id, Site: site}
		if ar != nil {
			mem.Addr = ar.AddrOf(id)
		}
		add = append(add, mem)
	}
	return add, nil
}

// JoinSite adds a provisioned spare site to the membership: the change is
// replicated through the config log, every subscriber recomputes placement
// for the new epoch, and the joining site's nodes bulk-pull the rows the
// new ring assigns them (state transfer). Sections on keys that moved are
// epoch-fenced; everything else is undisturbed.
func (c *Cluster) JoinSite(site string) (membership.Membership, error) {
	add, err := c.siteMembers(site)
	if err != nil {
		return membership.Membership{}, err
	}
	return c.reconfigure(membership.Change{Op: membership.OpJoin, Add: add}, site)
}

// RetireSite removes a site from the membership (planned decommission).
// The retired site's replicas refuse further critical sections and its
// in-flight holders are preempted; clients with dynamic failover re-bind
// to a surviving site.
func (c *Cluster) RetireSite(site string) (membership.Membership, error) {
	return c.reconfigure(membership.Change{Op: membership.OpRetire, Site: site}, site)
}

// ReplaceSite swaps a (typically crashed) site for a provisioned spare in
// one epoch — the recovery path when a site is lost rather than drained.
func (c *Cluster) ReplaceSite(site, with string) (membership.Membership, error) {
	add, err := c.siteMembers(with)
	if err != nil {
		return membership.Membership{}, err
	}
	return c.reconfigure(membership.Change{Op: membership.OpReplace, Site: site, Add: add}, site)
}

// reconfigure proposes one membership change and then runs state transfer
// so nodes whose key ranges widened catch up. The proposal is issued from
// a member node outside the affected site — the affected site may be
// crashed or partitioned (the replace-under-partition case) and a crashed
// node cannot drive RPCs. Transfer errors are not fatal: any new quorum
// intersects the old one on at least one replica (bounded movement), so
// read repair converges the remaining rows behind the scenes.
func (c *Cluster) reconfigure(ch membership.Change, affected string) (membership.Membership, error) {
	var (
		m   membership.Membership
		err error
	)
	switch {
	case c.propose != nil:
		// Multi-process: the deployment supplied its own propose path
		// (local log peer, or ProposeRemote through a serving member).
		m, err = c.propose(ch)
	case c.memLog != nil:
		m, err = c.memLog.Propose(c.proposer(affected), ch)
	default:
		return membership.Membership{}, membership.ErrNotReplicated
	}
	if err != nil {
		return m, err
	}
	_, _ = c.st.SyncLocal(nil)
	return m, nil
}

// SyncLocal bulk-pulls into this deployment's local store replicas every row
// the current placement assigns them — the catch-up step a process runs
// after a crash-restart (before serving) or after joining a cluster whose
// data predates it. Per-peer errors are tolerated; read repair converges the
// remainder. It returns the number of rows that changed.
func (c *Cluster) SyncLocal() (int, error) { return c.st.SyncLocal(nil) }

// proposer picks a member node outside the affected site to drive a
// proposal from.
func (c *Cluster) proposer(affected string) transport.NodeID {
	cur := c.memView.Current()
	for _, mem := range cur.Members {
		if mem.Site != affected {
			return mem.ID
		}
	}
	if len(cur.Members) > 0 {
		return cur.Members[0].ID
	}
	return c.tr.Nodes()[0]
}
