// Package recipes builds higher-level coordination structures on MUSIC
// critical sections — the "atomic data structures as needed" the paper
// positions against Atomix's fixed menu (§II): a replicated atomic counter,
// a compare-and-set register, a FIFO queue, a map, and Chubby-style leader
// election with lease renewal. Each recipe is a thin, lock-per-structure
// layer over the public music API, inheriting ECF: operations act on the
// latest state, exactly one client mutates a structure at a time, and a
// holder that dies mid-operation is preempted without corrupting the
// structure.
package recipes

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/music"
)

// Counter is a geo-replicated atomic counter.
type Counter struct {
	cl  *music.Client
	key string
}

// NewCounter binds a counter to a key.
func NewCounter(cl *music.Client, key string) *Counter {
	return &Counter{cl: cl, key: "recipes/counter/" + key}
}

// Add atomically adds delta and returns the new value.
func (c *Counter) Add(delta int64) (int64, error) {
	var out int64
	err := c.cl.RunCritical(c.key, func(cs *music.CriticalSection) error {
		raw, err := cs.Get()
		if err != nil {
			return err
		}
		cur := decodeInt(raw)
		out = cur + delta
		return cs.Put(encodeInt(out))
	})
	return out, err
}

// Get reads the counter without locks (may be slightly stale).
func (c *Counter) Get() (int64, error) {
	raw, err := c.cl.Get(c.key)
	if err != nil {
		return 0, err
	}
	return decodeInt(raw), nil
}

// Register is an atomic compare-and-set register.
type Register struct {
	cl  *music.Client
	key string
}

// NewRegister binds a register to a key.
func NewRegister(cl *music.Client, key string) *Register {
	return &Register{cl: cl, key: "recipes/register/" + key}
}

// Set unconditionally stores value.
func (r *Register) Set(value []byte) error {
	return r.cl.RunCritical(r.key, func(cs *music.CriticalSection) error {
		return cs.Put(value)
	})
}

// Get reads the latest value under the lock (never stale).
func (r *Register) Get() ([]byte, error) {
	var out []byte
	err := r.cl.RunCritical(r.key, func(cs *music.CriticalSection) error {
		v, err := cs.Get()
		out = v
		return err
	})
	return out, err
}

// CompareAndSet atomically replaces expect with value; it reports whether
// the swap happened and returns the value observed.
func (r *Register) CompareAndSet(expect, value []byte) (bool, []byte, error) {
	var (
		swapped  bool
		observed []byte
	)
	err := r.cl.RunCritical(r.key, func(cs *music.CriticalSection) error {
		cur, err := cs.Get()
		if err != nil {
			return err
		}
		observed = cur
		if string(cur) != string(expect) {
			return nil
		}
		swapped = true
		return cs.Put(value)
	})
	return swapped, observed, err
}

// Queue is a replicated FIFO queue. The whole queue lives under one key, so
// it suits coordination payloads (task handles, tokens), not bulk data.
type Queue struct {
	cl  *music.Client
	key string
}

// NewQueue binds a queue to a key.
func NewQueue(cl *music.Client, key string) *Queue {
	return &Queue{cl: cl, key: "recipes/queue/" + key}
}

// ErrEmpty is returned by Pop on an empty queue.
var ErrEmpty = errors.New("recipes: queue empty")

// Push appends item.
func (q *Queue) Push(item []byte) error {
	return q.cl.RunCritical(q.key, func(cs *music.CriticalSection) error {
		items, err := loadStrings(cs)
		if err != nil {
			return err
		}
		items = append(items, string(item))
		return storeStrings(cs, items)
	})
}

// Pop removes and returns the head, or ErrEmpty.
func (q *Queue) Pop() ([]byte, error) {
	var out []byte
	err := q.cl.RunCritical(q.key, func(cs *music.CriticalSection) error {
		items, err := loadStrings(cs)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return ErrEmpty
		}
		out = []byte(items[0])
		return storeStrings(cs, items[1:])
	})
	return out, err
}

// Len returns the queue length (locked, exact).
func (q *Queue) Len() (int, error) {
	n := 0
	err := q.cl.RunCritical(q.key, func(cs *music.CriticalSection) error {
		items, err := loadStrings(cs)
		if err != nil {
			return err
		}
		n = len(items)
		return nil
	})
	return n, err
}

// Map is a small replicated map under a single lock (atomic multi-entry
// updates via Update).
type Map struct {
	cl  *music.Client
	key string
}

// NewMap binds a map to a key.
func NewMap(cl *music.Client, key string) *Map {
	return &Map{cl: cl, key: "recipes/map/" + key}
}

// Update runs fn over the current contents and stores the result
// atomically. fn receives a private copy it may mutate and return.
func (m *Map) Update(fn func(map[string]string) (map[string]string, error)) error {
	return m.cl.RunCritical(m.key, func(cs *music.CriticalSection) error {
		raw, err := cs.Get()
		if err != nil {
			return err
		}
		cur := make(map[string]string)
		if raw != nil {
			if err := json.Unmarshal(raw, &cur); err != nil {
				return fmt.Errorf("recipes: corrupt map: %w", err)
			}
		}
		next, err := fn(cur)
		if err != nil {
			return err
		}
		out, err := json.Marshal(next)
		if err != nil {
			return err
		}
		return cs.Put(out)
	})
}

// Snapshot returns the latest contents under the lock.
func (m *Map) Snapshot() (map[string]string, error) {
	var snap map[string]string
	err := m.cl.RunCritical(m.key, func(cs *music.CriticalSection) error {
		raw, err := cs.Get()
		if err != nil {
			return err
		}
		snap = make(map[string]string)
		if raw != nil {
			return json.Unmarshal(raw, &snap)
		}
		return nil
	})
	return snap, err
}

// Election is Chubby-style leader election with leases: candidates campaign
// for a named role; the winner holds the MUSIC lock and periodically
// re-validates it. When the leader dies, its critical section expires (T)
// and a successor is elected via MUSIC's expiry reaping — the paper's
// coarse-grain locking service use case (§II), built in a few lines.
type Election struct {
	cl   *music.Client
	key  string
	name string

	ref    music.LockRef
	leader bool
}

// NewElection creates a candidate named name for the given role.
func NewElection(cl *music.Client, role, name string) *Election {
	return &Election{cl: cl, key: "recipes/election/" + role, name: name}
}

// Campaign blocks until this candidate becomes leader or the timeout
// passes (zero = wait forever).
func (e *Election) Campaign(timeout time.Duration) error {
	ref, err := e.cl.CreateLockRef(e.key)
	if err != nil {
		return err
	}
	if err := e.cl.AwaitLock(e.key, ref, timeout); err != nil {
		_ = e.cl.RemoveLockRef(e.key, ref)
		return err
	}
	e.ref, e.leader = ref, true
	// Publish the leader's identity for observers (lock-free read).
	return e.cl.CriticalPut(e.key, ref, []byte(e.name))
}

// Validate confirms this candidate still leads (its lock is intact). A
// deposed leader learns it here, like a Chubby lease check.
func (e *Election) Validate() bool {
	if !e.leader {
		return false
	}
	ok, err := e.cl.AcquireLock(e.key, e.ref)
	if err != nil || !ok {
		e.leader = false
	}
	return e.leader
}

// Resign steps down voluntarily.
func (e *Election) Resign() error {
	if !e.leader {
		return nil
	}
	e.leader = false
	return e.cl.ReleaseLock(e.key, e.ref)
}

// Leader returns the published leader name (lock-free; may briefly lag).
func (e *Election) Leader() (string, error) {
	raw, err := e.cl.Get(e.key)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// Shared encoding helpers.

func encodeInt(v int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

func decodeInt(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func loadStrings(cs *music.CriticalSection) ([]string, error) {
	raw, err := cs.Get()
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, nil
	}
	var items []string
	if err := json.Unmarshal(raw, &items); err != nil {
		return nil, fmt.Errorf("recipes: corrupt queue: %w", err)
	}
	return items, nil
}

func storeStrings(cs *music.CriticalSection, items []string) error {
	raw, err := json.Marshal(items)
	if err != nil {
		return err
	}
	return cs.Put(raw)
}
