package recipes

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/music"
)

func cluster(t *testing.T, opts ...music.Option) *music.Cluster {
	t.Helper()
	c, err := music.New(opts...)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return c
}

func TestCounterConcurrentAdds(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		done := make(chan error, 6)
		for i := 0; i < 6; i++ {
			site := c.Sites()[i%3]
			c.Go(func() {
				ctr := NewCounter(c.Client(site), "hits")
				_, err := ctr.Add(1)
				done <- err
			})
		}
		deadline := c.Now() + 10*time.Minute
		for len(done) < 6 {
			if c.Now() > deadline {
				t.Fatal("adders stuck")
			}
			c.Sleep(50 * time.Millisecond)
		}
		for i := 0; i < 6; i++ {
			if err := <-done; err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		got, err := NewCounter(c.Client("ohio"), "hits").Get()
		if err != nil || got != 6 {
			t.Fatalf("counter = (%d, %v), want 6", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCounterNegativeDelta(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		ctr := NewCounter(c.Client("ohio"), "x")
		if v, err := ctr.Add(10); err != nil || v != 10 {
			t.Fatalf("Add(10) = (%d, %v)", v, err)
		}
		if v, err := ctr.Add(-3); err != nil || v != 7 {
			t.Fatalf("Add(-3) = (%d, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRegisterCompareAndSet(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		reg := NewRegister(c.Client("ohio"), "cfg")
		if err := reg.Set([]byte("v1")); err != nil {
			t.Fatalf("Set: %v", err)
		}
		ok, observed, err := reg.CompareAndSet([]byte("v1"), []byte("v2"))
		if err != nil || !ok || string(observed) != "v1" {
			t.Fatalf("CAS v1->v2 = (%v, %q, %v)", ok, observed, err)
		}
		ok, observed, err = reg.CompareAndSet([]byte("v1"), []byte("v3"))
		if err != nil || ok || string(observed) != "v2" {
			t.Fatalf("stale CAS = (%v, %q, %v)", ok, observed, err)
		}
		got, err := reg.Get()
		if err != nil || string(got) != "v2" {
			t.Fatalf("Get = (%q, %v)", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueFIFOAcrossSites(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		q := NewQueue(c.Client("ohio"), "tasks")
		for i := 0; i < 4; i++ {
			if err := q.Push([]byte(fmt.Sprintf("t%d", i))); err != nil {
				t.Fatalf("Push %d: %v", i, err)
			}
		}
		if n, err := q.Len(); err != nil || n != 4 {
			t.Fatalf("Len = (%d, %v)", n, err)
		}
		// Pops from another site observe the same order.
		q2 := NewQueue(c.Client("oregon"), "tasks")
		for i := 0; i < 4; i++ {
			item, err := q2.Pop()
			if err != nil || string(item) != fmt.Sprintf("t%d", i) {
				t.Fatalf("Pop %d = (%q, %v)", i, item, err)
			}
		}
		if _, err := q2.Pop(); !errors.Is(err, ErrEmpty) {
			t.Fatalf("empty Pop err = %v, want ErrEmpty", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueConcurrentPopsNoDuplicates(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		q := NewQueue(c.Client("ohio"), "work")
		const items = 6
		for i := 0; i < items; i++ {
			if err := q.Push([]byte(fmt.Sprintf("job-%d", i))); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		results := make(chan string, items)
		for w := 0; w < 3; w++ {
			site := c.Sites()[w]
			c.Go(func() {
				wq := NewQueue(c.Client(site), "work")
				for {
					item, err := wq.Pop()
					if errors.Is(err, ErrEmpty) {
						return
					}
					if err != nil {
						t.Errorf("Pop: %v", err)
						return
					}
					results <- string(item)
				}
			})
		}
		deadline := c.Now() + 10*time.Minute
		for len(results) < items {
			if c.Now() > deadline {
				t.Fatalf("only %d/%d items popped", len(results), items)
			}
			c.Sleep(50 * time.Millisecond)
		}
		seen := make(map[string]bool)
		for i := 0; i < items; i++ {
			it := <-results
			if seen[it] {
				t.Fatalf("item %q popped twice", it)
			}
			seen[it] = true
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMapAtomicMultiEntryUpdate(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		m := NewMap(c.Client("ncalifornia"), "roles")
		err := m.Update(func(cur map[string]string) (map[string]string, error) {
			cur["alice"] = "admin"
			cur["bob"] = "viewer"
			return cur, nil
		})
		if err != nil {
			t.Fatalf("Update: %v", err)
		}
		snap, err := NewMap(c.Client("oregon"), "roles").Snapshot()
		if err != nil || snap["alice"] != "admin" || snap["bob"] != "viewer" {
			t.Fatalf("Snapshot = (%v, %v)", snap, err)
		}
		// A failing update leaves the map untouched.
		boom := errors.New("boom")
		if err := m.Update(func(cur map[string]string) (map[string]string, error) {
			return nil, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
		snap, _ = m.Snapshot()
		if snap["alice"] != "admin" {
			t.Fatalf("map changed by failed update: %v", snap)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestElectionSingleLeaderAndFailover(t *testing.T) {
	c := cluster(t, music.WithT(2*time.Second))
	err := c.Run(func() {
		e1 := NewElection(c.Client("ohio"), "scheduler", "cand-1")
		e2 := NewElection(c.Client("oregon"), "scheduler", "cand-2")

		if err := e1.Campaign(0); err != nil {
			t.Fatalf("campaign 1: %v", err)
		}
		if !e1.Validate() {
			t.Fatal("fresh leader fails validation")
		}
		// The second candidate cannot win while the first's lease (T) is
		// live — campaigning shorter than T times out.
		if err := e2.Campaign(1500 * time.Millisecond); !music.ErrAwaitTimeout(err) {
			t.Fatalf("campaign 2 err = %v, want timeout", err)
		}
		if !e1.Validate() {
			t.Fatal("leader lost lease while renewing within T")
		}
		if name, err := e2.Leader(); err != nil || name != "cand-1" {
			t.Fatalf("Leader = (%q, %v), want cand-1", name, err)
		}

		// Leader dies silently; its lease (T) expires, the successor wins.
		if err := e2.Campaign(0); err != nil {
			t.Fatalf("failover campaign: %v", err)
		}
		if e1.Validate() {
			t.Fatal("deposed leader still validates")
		}
		c.Sleep(time.Second)
		if name, err := e2.Leader(); err != nil || name != "cand-2" {
			t.Fatalf("Leader after failover = (%q, %v)", name, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestElectionResign(t *testing.T) {
	c := cluster(t)
	err := c.Run(func() {
		e1 := NewElection(c.Client("ohio"), "role", "one")
		e2 := NewElection(c.Client("ncalifornia"), "role", "two")
		if err := e1.Campaign(0); err != nil {
			t.Fatalf("campaign: %v", err)
		}
		if err := e1.Resign(); err != nil {
			t.Fatalf("resign: %v", err)
		}
		if e1.Validate() {
			t.Fatal("resigned leader validates")
		}
		if err := e2.Campaign(0); err != nil {
			t.Fatalf("campaign after resign: %v", err)
		}
		if err := e2.Resign(); err != nil {
			t.Fatalf("resign 2: %v", err)
		}
		// Resigning twice is a no-op.
		if err := e2.Resign(); err != nil {
			t.Fatalf("double resign: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
