package music

import (
	"errors"
	"time"

	"repro/internal/store"
)

// IsRetryable classifies an error from any MUSIC operation per the paper's
// §III-A failure semantics ("the client should retry, possibly at another
// MUSIC replica"):
//
//   - Transient, retryable: ErrUnavailable (too few back-end replicas
//     responded), ErrContention (a CAS loop exhausted its retries against
//     competing clients), and ErrNotLockHolder (the lockRef is not first in
//     the locally peeked queue yet — the lock store replica may simply be
//     behind, which another poll or another site resolves).
//   - Terminal: ErrNoLongerLockHolder (the lockRef was released or forcibly
//     preempted), ErrExpired (the critical section overran its T bound),
//     and ErrEpochFenced (a membership change moved the key's placement
//     mid-section). All mean the lockRef is dead; the client must start a
//     new critical section. AwaitLock timeouts are likewise terminal.
//
// Wrapping is preserved end-to-end (every layer uses %w), so classification
// works on errors returned from any depth of the stack.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	// Terminal outcomes dominate: a dead lockRef cannot be revived by
	// retrying, no matter what else went wrong around it.
	if errors.Is(err, ErrNoLongerLockHolder) || errors.Is(err, ErrExpired) ||
		errors.Is(err, ErrEpochFenced) || errors.Is(err, errAwaitTimeout) {
		return false
	}
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, ErrContention) ||
		errors.Is(err, store.ErrContention) ||
		errors.Is(err, ErrNotLockHolder)
}

// IsEpochFenced reports whether err is a live-membership epoch fence: the
// lockRef is dead, but re-running the whole critical section under the new
// epoch's placement is expected to succeed. Section-level drivers (workload
// loops, the soak harness) treat it as a section retry, not a failure.
func IsEpochFenced(err error) bool { return errors.Is(err, ErrEpochFenced) }

// RetryPolicy bounds how a Client re-drives operations that fail with
// retryable errors (IsRetryable). Backoff doubles from BaseBackoff up to
// MaxBackoff with ±50% jitter drawn from the cluster's deterministic
// runtime RNG, so simulated schedules stay reproducible.
type RetryPolicy struct {
	// Attempts is the per-site attempt budget (first try included) before
	// the client gives up or fails over. Defaults to 4; 1 disables retries.
	Attempts int
	// BaseBackoff is the delay before the first retry. Defaults to 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling backoff. Defaults to 2s.
	MaxBackoff time.Duration
	// FailoverAwait bounds the re-driven lock acquisition at a failover
	// site before the interrupted critical operation is retried there.
	// Defaults to 30s.
	FailoverAwait time.Duration
}

// DefaultRetryPolicy is the policy clients use unless WithRetry overrides it.
var DefaultRetryPolicy = RetryPolicy{
	Attempts:      4,
	BaseBackoff:   25 * time.Millisecond,
	MaxBackoff:    2 * time.Second,
	FailoverAwait: 30 * time.Second,
}

// NoRetry restores the fail-on-first-error behavior (one attempt, no
// backoff). Failover, if configured, still applies after that attempt.
var NoRetry = RetryPolicy{Attempts: 1}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryPolicy.Attempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryPolicy.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	if p.FailoverAwait <= 0 {
		p.FailoverAwait = DefaultRetryPolicy.FailoverAwait
	}
	return p
}
