package music

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPartitionBetweenAwaitAndCriticalPutAbortsWithoutFailover documents
// the degraded behavior the acceptance criterion pins on a client with no
// failover sites: its site is partitioned between AwaitLock and
// CriticalPut, so the put aborts with ErrUnavailable once the (bounded)
// local retry budget is spent.
func TestPartitionBetweenAwaitAndCriticalPutAbortsWithoutFailover(t *testing.T) {
	c := newTestCluster(t, WithSeed(7))
	err := c.Run(func() {
		cl := c.Client("ohio")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := cl.AwaitLock("k", ref, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		if err := cl.CriticalPut("k", ref, []byte("v")); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("partitioned put err = %v, want ErrUnavailable", err)
		}
		c.Heal()
		_ = cl.ReleaseLock("k", ref)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFailoverPartitionBetweenAwaitAndCriticalPut is the PR's acceptance
// scenario: the client's site is partitioned between AwaitLock and
// CriticalPut; with failover enabled the put re-drives the same lockRef at
// another site's replica and the critical section completes with the
// correct final value, with the retries and the failover visible as
// music_retry_total / music_failover_total and as trace annotations.
func TestFailoverPartitionBetweenAwaitAndCriticalPut(t *testing.T) {
	c := newTestCluster(t, WithSeed(7), WithObservability())
	err := c.Run(func() {
		root := c.Obs().Tracer().StartRoot("test.failover")
		cl := c.FailoverClient("ohio")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := cl.AwaitLock("k", ref, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		if err := cl.CriticalPut("k", ref, []byte("survived")); err != nil {
			t.Fatalf("CriticalPut with failover: %v", err)
		}
		if got := cl.Site(); got != "ncalifornia" {
			t.Errorf("client re-bound to %q, want ncalifornia (first failover site)", got)
		}
		if err := cl.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock after failover: %v", err)
		}
		root.End()

		m := c.Obs().Metrics()
		if n := m.Counter("music_retry_total", obs.Labels{"op": "criticalPut", "site": "ohio"}).Value(); n == 0 {
			t.Error("music_retry_total{op=criticalPut,site=ohio} = 0, want > 0")
		}
		if n := m.Counter("music_failover_total", obs.Labels{"from": "ohio", "to": "ncalifornia"}).Value(); n == 0 {
			t.Error("music_failover_total{from=ohio,to=ncalifornia} = 0, want > 0")
		}
		failoverSpans := false
		for _, st := range c.Obs().Tracer().StatsByName() {
			if st.Name == "music.failover" && st.Count > 0 {
				failoverSpans = true
			}
		}
		if !failoverSpans {
			t.Error("no music.failover spans recorded")
		}

		c.Heal()
		// The value written through the failover site is the true value.
		c.Sleep(2 * time.Second)
		got, err := c.Client("oregon").RunCriticalRead("k")
		if err != nil {
			t.Fatalf("verify read: %v", err)
		}
		if string(got) != "survived" {
			t.Errorf("final value = %q, want survived", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFailoverResumesLastAcknowledgedPut partitions the client's site in
// the middle of a critical section: the failover replica must serve the
// last acknowledged put as the current value, and the section's post-
// failover write must be the final value after heal (run under -race via
// scripts/check.sh).
func TestFailoverResumesLastAcknowledgedPut(t *testing.T) {
	c := newTestCluster(t, WithSeed(11))
	err := c.Run(func() {
		cl := c.FailoverClient("ohio")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := cl.AwaitLock("k", ref, 0); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		if err := cl.CriticalPut("k", ref, []byte("acked")); err != nil {
			t.Fatalf("first CriticalPut: %v", err)
		}
		c.Sleep(time.Second) // let the grant cell replicate
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})

		v, err := cl.CriticalGet("k", ref)
		if err != nil {
			t.Fatalf("CriticalGet with failover: %v", err)
		}
		if string(v) != "acked" {
			t.Fatalf("failover read %q, want acked (last acknowledged put)", v)
		}
		if err := cl.CriticalPut("k", ref, []byte("post-failover")); err != nil {
			t.Fatalf("post-failover CriticalPut: %v", err)
		}
		if err := cl.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}

		c.Heal()
		c.Sleep(2 * time.Second)
		got, err := c.Client("oregon").RunCriticalRead("k")
		if err != nil {
			t.Fatalf("verify read: %v", err)
		}
		if string(got) != "post-failover" {
			t.Errorf("final value = %q, want post-failover", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAwaitLockSurvivesTransientUnavailable pins the AwaitLock bugfix: a
// transient ErrUnavailable during the grant's synchFlag quorum read counts
// as "not yet", so the wait keeps polling and succeeds once the partition
// heals, instead of aborting on the first error.
func TestAwaitLockSurvivesTransientUnavailable(t *testing.T) {
	c := newTestCluster(t, WithSeed(3))
	err := c.Run(func() {
		cl := c.Client("ohio")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		c.Sleep(time.Second) // enqueue replicates everywhere
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		c.Go(func() {
			c.Sleep(5 * time.Second)
			c.Heal()
		})
		// The grant-path quorum read fails while partitioned; AwaitLock
		// must ride it out and grant after the heal.
		if err := cl.AwaitLock("k", ref, 2*time.Minute); err != nil {
			t.Fatalf("AwaitLock across transient partition: %v", err)
		}
		if err := cl.CriticalPut("k", ref, []byte("granted")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := cl.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestAwaitLockFailsOverDuringPartition checks the AwaitLock failover path
// itself: with the home site partitioned indefinitely, a failover client's
// wait re-binds to a majority-side replica and grants there.
func TestAwaitLockFailsOverDuringPartition(t *testing.T) {
	c := newTestCluster(t, WithSeed(5))
	err := c.Run(func() {
		cl := c.FailoverClient("ohio")
		ref, err := cl.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		c.Sleep(time.Second)
		c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		if err := cl.AwaitLock("k", ref, 5*time.Minute); err != nil {
			t.Fatalf("AwaitLock with failover: %v", err)
		}
		if got := cl.Site(); got == "ohio" {
			t.Errorf("client still bound to partitioned home site after grant")
		}
		if err := cl.CriticalPut("k", ref, []byte("v")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := cl.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
		c.Heal()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRunCriticalJoinsReleaseError pins the RunCritical bugfix: when both
// the callback and the release fail, the caller sees both errors instead of
// the release failure being swallowed.
func TestRunCriticalJoinsReleaseError(t *testing.T) {
	c := newTestCluster(t, WithSeed(9))
	err := c.Run(func() {
		cl := c.Client("ohio", WithRetry(NoRetry))
		boom := errors.New("boom")
		err := cl.RunCritical("k", func(cs *CriticalSection) error {
			// Cut our own site off so the trailing ReleaseLock (an LWT)
			// cannot reach a quorum either.
			c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
			return boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("err = %v, want wrapped callback error", err)
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("err = %v, want joined ErrUnavailable release failure", err)
		}
		c.Heal()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// RunCriticalRead is a test helper: one full critical section that just
// reads the key's true value.
func (cl *Client) RunCriticalRead(key string) ([]byte, error) {
	var v []byte
	err := cl.RunCritical(key, func(cs *CriticalSection) error {
		got, err := cs.Get()
		v = got
		return err
	})
	return v, err
}
