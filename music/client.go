package music

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// Client issues MUSIC operations through one site's replica (Table I).
type Client struct {
	c    *Cluster
	rep  *core.Replica
	site string
}

// CreateLockRef enqueues a new per-key unique increasing lock reference,
// good for one critical section.
func (cl *Client) CreateLockRef(key string) (LockRef, error) {
	ref, err := cl.rep.CreateLockRef(key)
	return LockRef(ref), err
}

// AcquireLock reports whether ref now holds key's lock; false with nil
// error means "not yet" — poll again, with backoff.
func (cl *Client) AcquireLock(key string, ref LockRef) (bool, error) {
	return cl.rep.AcquireLock(key, int64(ref))
}

// AwaitLock polls AcquireLock with exponential backoff until the lock is
// granted, the timeout expires, or the lockRef dies. A zero timeout waits
// indefinitely.
func (cl *Client) AwaitLock(key string, ref LockRef, timeout time.Duration) error {
	rt := cl.c.rt
	deadline := rt.Now() + timeout
	backoff := time.Millisecond
	for {
		ok, err := cl.rep.AcquireLock(key, int64(ref))
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if timeout > 0 && rt.Now() >= deadline {
			return fmt.Errorf("music: lock %s/%d: %w", key, ref, errAwaitTimeout)
		}
		rt.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// ErrAwaitTimeout is returned by AwaitLock when the timeout expires first.
var errAwaitTimeout = errors.New("await timeout")

// ErrAwaitTimeout reports whether err is an AwaitLock timeout.
func ErrAwaitTimeout(err error) bool { return errors.Is(err, errAwaitTimeout) }

// CriticalPut writes the latest value of key for the current lockholder.
func (cl *Client) CriticalPut(key string, ref LockRef, value []byte) error {
	return cl.rep.CriticalPut(key, int64(ref), value)
}

// CriticalGet reads the true value of key for the current lockholder.
func (cl *Client) CriticalGet(key string, ref LockRef) ([]byte, error) {
	return cl.rep.CriticalGet(key, int64(ref))
}

// CriticalDelete removes key's value for the current lockholder.
func (cl *Client) CriticalDelete(key string, ref LockRef) error {
	return cl.rep.CriticalDelete(key, int64(ref))
}

// ReleaseLock removes ref from the queue and releases the lock.
func (cl *Client) ReleaseLock(key string, ref LockRef) error {
	return cl.rep.ReleaseLock(key, int64(ref))
}

// ForcedRelease preempts a (presumed failed) lockholder, marking the key
// for synchronization before the next grant (§IV-B; used by ownership-
// stealing services like the Portal, §VII-b).
func (cl *Client) ForcedRelease(key string, ref LockRef) error {
	return cl.rep.ForcedRelease(key, int64(ref))
}

// RemoveLockRef evicts a lockRef that failed to win the lock (the homing
// workers' removeLockReference, §VII-a).
func (cl *Client) RemoveLockRef(key string, ref LockRef) error {
	return cl.rep.ReleaseLock(key, int64(ref))
}

// Put writes key without locks at eventual consistency (no ECF guarantees).
func (cl *Client) Put(key string, value []byte) error { return cl.rep.Put(key, value) }

// Get reads key without locks; possibly stale.
func (cl *Client) Get(key string) ([]byte, error) { return cl.rep.Get(key) }

// GetAllKeys lists keys with a live value, eventually consistent.
func (cl *Client) GetAllKeys() ([]string, error) { return cl.rep.GetAllKeys() }

// Remove permanently retires a key.
func (cl *Client) Remove(key string) error { return cl.rep.Remove(key) }

// Site returns the site this client operates from.
func (cl *Client) Site() string { return cl.site }

// Cluster returns the cluster this client is bound to (for observability
// and fault-injection plumbing).
func (cl *Client) Cluster() *Cluster { return cl.c }

// CriticalSection is the handle passed to RunCritical callbacks.
type CriticalSection struct {
	cl  *Client
	key string
	ref LockRef
}

// Ref returns the section's lock reference.
func (cs *CriticalSection) Ref() LockRef { return cs.ref }

// Get reads the key's true value.
func (cs *CriticalSection) Get() ([]byte, error) { return cs.cl.CriticalGet(cs.key, cs.ref) }

// Put writes the key's value.
func (cs *CriticalSection) Put(v []byte) error { return cs.cl.CriticalPut(cs.key, cs.ref, v) }

// Delete removes the key's value.
func (cs *CriticalSection) Delete() error { return cs.cl.CriticalDelete(cs.key, cs.ref) }

// RunCritical runs fn inside a critical section over key: it creates a lock
// reference, awaits the lock, invokes fn, and releases the lock (Listing 1
// packaged up). The lock is released even when fn fails; fn's error is
// returned.
func (cl *Client) RunCritical(key string, fn func(cs *CriticalSection) error) error {
	ref, err := cl.CreateLockRef(key)
	if err != nil {
		return err
	}
	if err := cl.AwaitLock(key, ref, 0); err != nil {
		// Never granted: evict our reference so it cannot become an orphan.
		_ = cl.RemoveLockRef(key, ref)
		return err
	}
	fnErr := fn(&CriticalSection{cl: cl, key: key, ref: ref})
	if relErr := cl.ReleaseLock(key, ref); fnErr == nil && relErr != nil {
		return relErr
	}
	return fnErr
}

// RunCriticalMulti runs fn holding the locks of every key in keys,
// acquiring them in lexicographic order — the deadlock-avoidance rule the
// paper prescribes for multi-key critical sections (§III-A). fn receives a
// section per key, in the caller's original key order.
func (cl *Client) RunCriticalMulti(keys []string, fn func(cs map[string]*CriticalSection) error) error {
	ordered := append([]string(nil), keys...)
	sort.Strings(ordered)

	held := make(map[string]*CriticalSection, len(ordered))
	release := func() {
		// Release in reverse acquisition order.
		for i := len(ordered) - 1; i >= 0; i-- {
			if cs, ok := held[ordered[i]]; ok {
				_ = cl.ReleaseLock(ordered[i], cs.ref)
			}
		}
	}
	for _, key := range ordered {
		ref, err := cl.CreateLockRef(key)
		if err != nil {
			release()
			return err
		}
		if err := cl.AwaitLock(key, ref, 0); err != nil {
			_ = cl.RemoveLockRef(key, ref)
			release()
			return err
		}
		held[key] = &CriticalSection{cl: cl, key: key, ref: ref}
	}
	fnErr := fn(held)
	release()
	return fnErr
}
