package music

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs"
)

// Client issues MUSIC operations through one site's replica (Table I).
//
// Operations that fail with transient errors (IsRetryable) are re-driven
// under the client's RetryPolicy; when failover sites are configured
// (WithFailoverSites, or Cluster.FailoverClient) and a site's attempt
// budget runs out, the client re-binds to the next candidate site's replica
// and — for lock-guarded operations — re-drives the acquisition of the same
// lockRef there before retrying, the §III-A "retry, possibly at another
// MUSIC replica" path. Every retry and failover decision is counted
// (music_retry_total, music_failover_total) and traced when the cluster
// runs WithObservability.
type Client struct {
	c        *Cluster
	home     string
	retry    RetryPolicy
	failover []string // candidate sites tried in order; nil = no failover
	dynamic  bool     // resolve candidates from the live membership instead

	// Critical-section fast path (see session.go): write-behind policy and
	// holder-cached reads, both off by default (paper-faithful behavior).
	writePolicy WritePolicy
	holderCache bool

	mu   sync.Mutex
	site string // currently bound site (== home until a failover re-binds)
	rep  *core.Replica
}

// ClientOption configures a Client at construction.
type ClientOption interface {
	applyClient(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) applyClient(cl *Client) { f(cl) }

// WithRetry sets the client's retry policy (DefaultRetryPolicy otherwise;
// NoRetry restores fail-on-first-error).
func WithRetry(p RetryPolicy) ClientOption {
	return clientOptionFunc(func(cl *Client) { cl.retry = p })
}

// WithFailoverSites names the sites, in preference order, that the client
// may re-bind to when its current site's attempt budget is exhausted on a
// retryable error. Unknown site names panic, like Cluster.Client.
func WithFailoverSites(sites ...string) ClientOption {
	return clientOptionFunc(func(cl *Client) {
		cl.failover = append([]string(nil), sites...)
	})
}

// bound returns the currently bound replica and site.
func (cl *Client) bound() (*core.Replica, string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.rep, cl.site
}

// rebind switches the client to another site's replica and returns it.
func (cl *Client) rebind(site string) *core.Replica {
	rep := cl.c.replicas[site]
	cl.mu.Lock()
	cl.site, cl.rep = site, rep
	cl.mu.Unlock()
	return rep
}

// nextSite picks the first failover candidate not yet tried this operation.
// Dynamic clients resolve candidates from the live membership at decision
// time — a retired site drops out of rotation, a joined site becomes
// eligible — instead of the list frozen at construction.
func (cl *Client) nextSite(tried map[string]bool) (string, bool) {
	if cl.dynamic {
		for _, s := range cl.c.memView.Current().Sites() {
			if !tried[s] {
				if _, ok := cl.c.replicas[s]; ok {
					return s, true
				}
			}
		}
		return "", false
	}
	for _, s := range cl.failover {
		if !tried[s] {
			return s, true
		}
	}
	return "", false
}

// ensureMemberSite re-binds a dynamic client whose bound site has left the
// membership (retired or replaced — or a spare site not yet joined). Every
// section at such a site is epoch-fenced outright, so burning the retry
// budget there before failing over is pure wasted time.
func (cl *Client) ensureMemberSite(opName, key string, ref LockRef) {
	if !cl.dynamic {
		return
	}
	m := cl.c.memView.Current()
	_, site := cl.bound()
	if m.HasSite(site) {
		return
	}
	for _, s := range m.Sites() {
		if _, ok := cl.c.replicas[s]; ok {
			cl.noteFailover(opName, key, ref, site, s, ErrEpochFenced)
			cl.rebind(s)
			return
		}
	}
}

// counter bumps a client-layer metric (no-op without observability).
func (cl *Client) counter(name string, labels obs.Labels) {
	if o := cl.c.obs; o != nil {
		o.Metrics().Counter(name, labels).Inc()
	}
}

// noteRetry records one backoff-and-retry decision.
func (cl *Client) noteRetry(op, site string, err error) {
	cl.counter("music_retry_total", obs.Labels{"op": op, "site": site})
	sp := cl.c.tracer().Child("music.retry")
	sp.Annotate("op", op)
	sp.Annotate("site", site)
	sp.Annotate("cause", err.Error())
	sp.End()
}

// noteFailover records one cross-site failover decision.
func (cl *Client) noteFailover(op, key string, ref LockRef, from, to string, err error) {
	cl.counter("music_failover_total", obs.Labels{"from": from, "to": to})
	cl.c.history.Event(from, history.KindFailover, key, int64(ref), op+" "+from+"->"+to)
	sp := cl.c.tracer().Child("music.failover")
	sp.Annotate("op", op)
	sp.Annotate("from", from)
	sp.Annotate("to", to)
	sp.Annotate("cause", err.Error())
	sp.End()
}

// sleepBackoff sleeps the current backoff with ±50% jitter and doubles it
// up to the policy cap. Jitter comes from the runtime RNG, so virtual-time
// schedules remain deterministic per seed.
func (cl *Client) sleepBackoff(backoff *time.Duration, pol RetryPolicy) {
	d := *backoff
	half := d / 2
	if half > 0 {
		d = half + time.Duration(cl.c.rt.Rand().Int63n(int64(d)-int64(half)+1))
	}
	cl.c.rt.Sleep(d)
	if *backoff < pol.MaxBackoff {
		*backoff *= 2
		if *backoff > pol.MaxBackoff {
			*backoff = pol.MaxBackoff
		}
	}
}

// withRetry drives op to completion under the client's retry policy:
// bounded, jittered retries against the bound replica on retryable errors,
// then — when failover sites remain — a re-bind to the next site, a
// re-driven acquisition of ref there (for lock-guarded ops), and a fresh
// attempt budget. Terminal errors and exhausted budgets return the last
// error observed.
func (cl *Client) withRetry(opName, key string, ref LockRef, reacquire bool, op func(rep *core.Replica) error) error {
	pol := cl.retry.withDefaults()
	var tried map[string]bool
	var lastErr error
	for {
		cl.ensureMemberSite(opName, key, ref)
		rep, site := cl.bound()
		backoff := pol.BaseBackoff
		for attempt := 1; ; attempt++ {
			err := op(rep)
			if err == nil {
				return nil
			}
			if !IsRetryable(err) {
				return err
			}
			lastErr = err
			if attempt >= pol.Attempts {
				break
			}
			cl.noteRetry(opName, site, err)
			cl.sleepBackoff(&backoff, pol)
		}
		if tried == nil {
			tried = make(map[string]bool, len(cl.failover)+1)
		}
		tried[site] = true
		next, ok := cl.nextSite(tried)
		if !ok {
			return lastErr
		}
		cl.noteFailover(opName, key, ref, site, next, lastErr)
		rep = cl.rebind(next)
		if reacquire {
			// Re-drive the interrupted acquisition at the new site with the
			// same lockRef: the new replica re-grants (synchronizing if a
			// preemption left the flag set) or times out, after which the
			// critical op itself is retried there.
			if err := cl.awaitAt(rep, key, ref, pol.FailoverAwait); err != nil {
				if !IsRetryable(err) && !ErrAwaitTimeout(err) {
					return err
				}
				lastErr = err
			}
		}
	}
}

// CreateLockRef enqueues a new per-key unique increasing lock reference,
// good for one critical section. A failover mid-enqueue can leave an orphan
// reference behind at the first site; orphans are reaped by the replicas'
// OrphanTimeout sweep (§IV-B a), so this only delays contenders, never
// blocks them.
func (cl *Client) CreateLockRef(key string) (LockRef, error) {
	var ref LockRef
	err := cl.withRetry("createLockRef", key, 0, false, func(rep *core.Replica) error {
		r, err := rep.CreateLockRef(key)
		if err == nil {
			ref = LockRef(r)
		}
		return err
	})
	return ref, err
}

// AcquireLock reports whether ref now holds key's lock; false with nil
// error means "not yet" — poll again, with backoff. Single attempt, no
// retries: polling is the caller's loop (use AwaitLock for the packaged
// version).
func (cl *Client) AcquireLock(key string, ref LockRef) (bool, error) {
	rep, _ := cl.bound()
	return rep.AcquireLock(key, int64(ref))
}

// AwaitLock polls AcquireLock with exponential backoff until the lock is
// granted, the timeout expires, or the lockRef dies. A zero timeout waits
// indefinitely. Retryable errors (a transient ErrUnavailable during the
// synchFlag quorum read, say) count as "not yet": the poll continues until
// the deadline, failing over to another site's replica — same lockRef —
// after the per-site attempt budget is spent on consecutive errors.
func (cl *Client) AwaitLock(key string, ref LockRef, timeout time.Duration) error {
	_, err := cl.awaitLockSeeded(key, ref, timeout)
	return err
}

// awaitLockSeeded is AwaitLock capturing the ValueSeed piggybacked on the
// granting acquire's quorum read (empty on idempotent re-acquires and on
// failover grant adoption).
func (cl *Client) awaitLockSeeded(key string, ref LockRef, timeout time.Duration) (core.ValueSeed, error) {
	rt := cl.c.rt
	pol := cl.retry.withDefaults()
	deadline := rt.Now() + timeout
	backoff := time.Millisecond
	consecutive := 0
	var tried map[string]bool
	for {
		cl.ensureMemberSite("acquireLock", key, ref)
		rep, site := cl.bound()
		ok, seed, err := rep.AcquireLockSeeded(key, int64(ref))
		switch {
		case err != nil && !IsRetryable(err):
			return core.ValueSeed{}, err
		case err != nil:
			// Transient failure: treat as "not yet" (§III-A), and fail over
			// once this site has burned its attempt budget back-to-back.
			consecutive++
			cl.noteRetry("acquireLock", site, err)
			if consecutive >= pol.Attempts {
				if tried == nil {
					tried = make(map[string]bool, len(cl.failover)+1)
				}
				tried[site] = true
				if next, found := cl.nextSite(tried); found {
					cl.noteFailover("acquireLock", key, ref, site, next, err)
					cl.rebind(next)
					consecutive = 0
				}
			}
		case ok:
			return seed, nil
		default:
			consecutive = 0
		}
		if timeout > 0 && rt.Now() >= deadline {
			return core.ValueSeed{}, fmt.Errorf("music: lock %s/%d: %w", key, ref, errAwaitTimeout)
		}
		rt.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// awaitAt is AwaitLock pinned to one replica (the failover re-drive): it
// never re-binds, and transient errors just keep the poll going.
func (cl *Client) awaitAt(rep *core.Replica, key string, ref LockRef, timeout time.Duration) error {
	rt := cl.c.rt
	deadline := rt.Now() + timeout
	backoff := time.Millisecond
	for {
		ok, err := rep.AcquireLock(key, int64(ref))
		if err != nil && !IsRetryable(err) {
			return err
		}
		if ok {
			return nil
		}
		if timeout > 0 && rt.Now() >= deadline {
			return fmt.Errorf("music: lock %s/%d: %w", key, ref, errAwaitTimeout)
		}
		rt.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// ErrAwaitTimeout is returned by AwaitLock when the timeout expires first.
var errAwaitTimeout = errors.New("await timeout")

// ErrAwaitTimeout reports whether err is an AwaitLock timeout.
func ErrAwaitTimeout(err error) bool { return errors.Is(err, errAwaitTimeout) }

// CriticalPut writes the latest value of key for the current lockholder.
func (cl *Client) CriticalPut(key string, ref LockRef, value []byte) error {
	return cl.withRetry("criticalPut", key, ref, true, func(rep *core.Replica) error {
		return rep.CriticalPut(key, int64(ref), value)
	})
}

// CriticalGet reads the true value of key for the current lockholder.
func (cl *Client) CriticalGet(key string, ref LockRef) ([]byte, error) {
	var value []byte
	err := cl.withRetry("criticalGet", key, ref, true, func(rep *core.Replica) error {
		v, err := rep.CriticalGet(key, int64(ref))
		if err == nil {
			value = v
		}
		return err
	})
	return value, err
}

// CriticalDelete removes key's value for the current lockholder.
func (cl *Client) CriticalDelete(key string, ref LockRef) error {
	return cl.withRetry("criticalDelete", key, ref, true, func(rep *core.Replica) error {
		return rep.CriticalDelete(key, int64(ref))
	})
}

// ReleaseLock removes ref from the queue and releases the lock.
func (cl *Client) ReleaseLock(key string, ref LockRef) error {
	return cl.withRetry("releaseLock", key, ref, false, func(rep *core.Replica) error {
		return rep.ReleaseLock(key, int64(ref))
	})
}

// ForcedRelease preempts a (presumed failed) lockholder, marking the key
// for synchronization before the next grant (§IV-B; used by ownership-
// stealing services like the Portal, §VII-b).
func (cl *Client) ForcedRelease(key string, ref LockRef) error {
	return cl.withRetry("forcedRelease", key, ref, false, func(rep *core.Replica) error {
		return rep.ForcedRelease(key, int64(ref))
	})
}

// RemoveLockRef evicts a lockRef that failed to win the lock (the homing
// workers' removeLockReference, §VII-a).
func (cl *Client) RemoveLockRef(key string, ref LockRef) error {
	return cl.ReleaseLock(key, ref)
}

// Put writes key without locks at eventual consistency (no ECF guarantees).
func (cl *Client) Put(key string, value []byte) error {
	return cl.withRetry("put", key, 0, false, func(rep *core.Replica) error {
		return rep.Put(key, value)
	})
}

// Get reads key without locks; possibly stale.
func (cl *Client) Get(key string) ([]byte, error) {
	var value []byte
	err := cl.withRetry("get", key, 0, false, func(rep *core.Replica) error {
		v, err := rep.Get(key)
		if err == nil {
			value = v
		}
		return err
	})
	return value, err
}

// GetAllKeys lists keys with a live value, eventually consistent.
func (cl *Client) GetAllKeys() ([]string, error) {
	var keys []string
	err := cl.withRetry("getAllKeys", "", 0, false, func(rep *core.Replica) error {
		k, err := rep.GetAllKeys()
		if err == nil {
			keys = k
		}
		return err
	})
	return keys, err
}

// Remove permanently retires a key.
func (cl *Client) Remove(key string) error {
	return cl.withRetry("remove", key, 0, false, func(rep *core.Replica) error {
		return rep.Remove(key)
	})
}

// Site returns the site this client currently operates from (the home site
// until a failover re-binds it).
func (cl *Client) Site() string {
	_, site := cl.bound()
	return site
}

// HomeSite returns the site this client was constructed at.
func (cl *Client) HomeSite() string { return cl.home }

// Cluster returns the cluster this client is bound to (for observability
// and fault-injection plumbing).
func (cl *Client) Cluster() *Cluster { return cl.c }
