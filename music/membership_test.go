package music

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/membership"
)

// TestLiveMembershipReconfiguration walks a dynamic cluster through the
// full reconfiguration lifecycle on one deterministic schedule — a site
// joins during a held section, the lockholder's site retires, a crashed
// site is replaced — while a critical-section workload keeps running at
// every phase. The recorded history must pass every ECF checker including
// the epoch rules.
func TestLiveMembershipReconfiguration(t *testing.T) {
	c, err := New(
		WithSpareSites("site-d", "site-e"),
		WithHistory(),
		WithT(30*time.Second),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	keys := []string{"acct-0", "acct-1", "acct-2", "acct-3", "acct-4", "acct-5"}

	// phase runs one section per key from the given client, tagging values
	// with the phase name. Epoch fences are retried (the section re-runs
	// under the new placement); anything else fails the test.
	phase := func(cl *Client, tag string) {
		for _, key := range keys {
			for attempt := 0; ; attempt++ {
				err := cl.RunCritical(key, func(cs *CriticalSection) error {
					if _, err := cs.Get(); err != nil {
						return err
					}
					return cs.Put([]byte(tag))
				})
				if err == nil {
					break
				}
				if !IsEpochFenced(err) || attempt > 5 {
					t.Errorf("phase %s key %s: %v", tag, key, err)
					break
				}
				c.Sleep(100 * time.Millisecond)
			}
		}
	}

	runErr := c.Run(func() {
		if got := c.Epoch(); got != 1 {
			t.Errorf("initial epoch = %d, want 1", got)
		}
		m := c.Membership()
		if len(m.Sites()) != 3 || m.HasSite("site-d") || m.HasSite("site-e") {
			t.Errorf("initial membership = %v, want the 3 non-spare sites", m.Sites())
		}
		clOhio := c.FailoverClient("ohio")
		clNcal := c.FailoverClient("ncalifornia")
		clOregon := c.FailoverClient("oregon")

		// A spare site refuses sections until it joins.
		if err := c.Client("site-d").RunCritical("early", func(cs *CriticalSection) error { return nil }); !IsEpochFenced(err) {
			t.Errorf("section at unjoined spare site: err=%v, want ErrEpochFenced", err)
		}

		phase(clOhio, "A")

		// Join during a held section: the holder either sails through (key
		// unmoved by the epoch) or is fenced and re-runs — both are legal,
		// and the history checker certifies whichever happened.
		ref, err := clOregon.CreateLockRef("span-key")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := clOregon.AwaitLock("span-key", ref, time.Minute); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		if err := clOregon.CriticalPut("span-key", ref, []byte("pre-join")); err != nil {
			t.Fatalf("CriticalPut pre-join: %v", err)
		}
		m2, err := c.JoinSite("site-d")
		if err != nil {
			t.Fatalf("JoinSite: %v", err)
		}
		if m2.Epoch != 2 || !m2.HasSite("site-d") {
			t.Fatalf("post-join membership = %+v, want epoch 2 with site-d", m2)
		}
		if err := clOregon.CriticalPut("span-key", ref, []byte("post-join")); err != nil {
			if !IsEpochFenced(err) {
				t.Fatalf("CriticalPut post-join: %v", err)
			}
		} else if err := clOregon.ReleaseLock("span-key", ref); err != nil {
			t.Errorf("ReleaseLock: %v", err)
		}

		clD := c.FailoverClient("site-d")
		phase(clD, "B")

		// Retire the lockholder's site: a section held at ohio is preempted
		// by the epoch fence, and ohio's client re-binds off the retired
		// site on its next operation.
		ref, err = clOhio.CreateLockRef("retire-key")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		if err := clOhio.AwaitLock("retire-key", ref, time.Minute); err != nil {
			t.Fatalf("AwaitLock: %v", err)
		}
		m3, err := c.RetireSite("ohio")
		if err != nil {
			t.Fatalf("RetireSite: %v", err)
		}
		if m3.Epoch != 3 || m3.HasSite("ohio") {
			t.Fatalf("post-retire membership = %+v, want epoch 3 without ohio", m3)
		}
		if err := clOhio.CriticalPut("retire-key", ref, []byte("zombie")); !IsEpochFenced(err) {
			t.Errorf("holder at retired site: err=%v, want ErrEpochFenced", err)
		}
		phase(clOhio, "C")
		if s := clOhio.Site(); s == "ohio" {
			t.Errorf("client still bound to retired site %q", s)
		}

		// Replace a crashed site: ncalifornia dies, site-e takes its place.
		c.CrashSite("ncalifornia")
		var m4 membership.Membership
		for attempt := 0; ; attempt++ {
			m4, err = c.ReplaceSite("ncalifornia", "site-e")
			if err == nil {
				break
			}
			if attempt > 10 {
				t.Fatalf("ReplaceSite: %v", err)
			}
			c.Sleep(2 * time.Second)
		}
		if m4.Epoch != 4 || m4.HasSite("ncalifornia") || !m4.HasSite("site-e") {
			t.Fatalf("post-replace membership = %+v, want epoch 4 with site-e for ncalifornia", m4)
		}
		phase(clNcal, "D") // re-binds off the dead site via live failover
		phase(c.FailoverClient("site-e"), "E")

		// Data continuity: every key ends at the last phase's tag, readable
		// through a surviving site.
		for _, key := range keys {
			if err := clOregon.RunCritical(key, func(cs *CriticalSection) error {
				v, err := cs.Get()
				if err != nil {
					return err
				}
				if string(v) != "E" {
					return fmt.Errorf("key %s = %q, want %q", key, v, "E")
				}
				return nil
			}); err != nil {
				t.Errorf("final read %s: %v", key, err)
			}
		}
		if got := c.Epoch(); got != 4 {
			t.Errorf("final epoch = %d, want 4", got)
		}
	})
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}

	ops := c.History().Ops()
	if len(ops) == 0 {
		t.Fatal("empty history")
	}
	epochs := 0
	for _, o := range ops {
		if o.Kind == history.KindEpoch {
			epochs++
		}
	}
	if epochs < 4 {
		t.Errorf("history records %d epoch events, want >= 4", epochs)
	}
	res := history.Check(ops, history.CheckOptions{})
	for _, v := range res.Violations {
		t.Errorf("ECF violation: %s", v)
	}
}
