package music

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sessionFaultSeeds returns the fault-campaign seed set for the session
// layer: MUSIC_FAULT_SEEDS (comma-separated, how scripts/check.sh pins the
// campaign) or a fixed default, trimmed under -short.
func sessionFaultSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("MUSIC_FAULT_SEEDS"); env != "" {
		var seeds []int64
		for _, part := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("MUSIC_FAULT_SEEDS: bad seed %q: %v", part, err)
			}
			seeds = append(seeds, s)
		}
		return seeds
	}
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	return seeds
}

// timeSection runs one RunCritical over key and returns its duration.
func timeSection(t *testing.T, c *Cluster, cl *Client, key string, fn func(cs *CriticalSection) error) time.Duration {
	t.Helper()
	start := c.Now()
	if err := cl.RunCritical(key, fn); err != nil {
		t.Fatalf("RunCritical(%s): %v", key, err)
	}
	return c.Now() - start
}

// TestHolderCacheServesGets is the grant-piggyback + holder-cache fast path:
// a section's Gets are served from the value fetched by the grant-time
// synchFlag quorum read, saving one full WAN quorum round trip per Get while
// returning the same value the quorum path would.
func TestHolderCacheServesGets(t *testing.T) {
	c := newTestCluster(t, WithSeed(7), WithObservability())
	err := c.Run(func() {
		seeder := c.Client("ohio")
		for _, key := range []string{"base", "fast"} {
			if err := seeder.RunCritical(key, func(cs *CriticalSection) error {
				return cs.Put([]byte("v1"))
			}); err != nil {
				t.Fatalf("seed %s: %v", key, err)
			}
		}
		twoGets := func(cs *CriticalSection) error {
			for i := 0; i < 2; i++ {
				v, err := cs.Get()
				if err != nil {
					return err
				}
				if string(v) != "v1" {
					return fmt.Errorf("Get = %q, want v1", v)
				}
			}
			return nil
		}
		base := timeSection(t, c, seeder, "base", twoGets)
		cached := timeSection(t, c, c.Client("ohio", WithHolderCache()), "fast", twoGets)

		// Both Gets hit the cache (the first is seeded by the grant's
		// piggybacked read), so the cached section must be about two IUs WAN
		// quorum round trips (~54ms each) faster than the quorum-read section.
		if saved := base - cached; saved < 80*time.Millisecond {
			t.Errorf("cached section saved %v over %v baseline, want >= 80ms (two quorum RTTs)", saved, base)
		}
		hits := c.Obs().Metrics().Counter("music_cs_cache_hits_total", obs.Labels{"site": "ohio"}).Value()
		if hits < 2 {
			t.Errorf("music_cs_cache_hits_total{site=ohio} = %v, want >= 2", hits)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestPipelinedOverlapsWriteRoundTrips: under WritePipelined the quorum
// round trips of a section's consecutive writes overlap, with all acks
// awaited at the pre-release flush.
func TestPipelinedOverlapsWriteRoundTrips(t *testing.T) {
	c := newTestCluster(t, WithSeed(7))
	err := c.Run(func() {
		fourPuts := func(cs *CriticalSection) error {
			for i := 0; i < 4; i++ {
				if err := cs.Put([]byte(strconv.Itoa(i))); err != nil {
					return err
				}
			}
			return nil
		}
		base := timeSection(t, c, c.Client("ohio"), "sync", fourPuts)
		piped := timeSection(t, c, c.Client("ohio", WithWritePolicy(WritePipelined)), "piped", fourPuts)

		// Four serialized quorum writes collapse to roughly one write round
		// trip visible at flush: at least two RTTs (~108ms) must disappear.
		if saved := base - piped; saved < 100*time.Millisecond {
			t.Errorf("pipelined section saved %v over %v baseline, want >= 100ms", saved, base)
		}
		for _, key := range []string{"sync", "piped"} {
			got, err := c.Client("oregon").RunCriticalRead(key)
			if err != nil || string(got) != "3" {
				t.Errorf("final %s = (%q, %v), want 3 (last write wins)", key, got, err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestBufferedCoalescesWrites: under WriteBuffered a section's writes
// coalesce client-side into the single quorum write the flush issues.
func TestBufferedCoalescesWrites(t *testing.T) {
	c := newTestCluster(t, WithSeed(7))
	err := c.Run(func() {
		threePuts := func(cs *CriticalSection) error {
			for _, v := range []string{"a", "b", "final"} {
				if err := cs.Put([]byte(v)); err != nil {
					return err
				}
			}
			return nil
		}
		base := timeSection(t, c, c.Client("ohio"), "sync", threePuts)
		buffered := timeSection(t, c, c.Client("ohio", WithWritePolicy(WriteBuffered)), "buf", threePuts)

		// Three quorum writes become one: two RTTs (~108ms) must disappear.
		if saved := base - buffered; saved < 100*time.Millisecond {
			t.Errorf("buffered section saved %v over %v baseline, want >= 100ms", saved, base)
		}
		got, err := c.Client("oregon").RunCriticalRead("buf")
		if err != nil || string(got) != "final" {
			t.Errorf("final value = (%q, %v), want final", got, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRunCriticalMultiDuplicateKeys pins the duplicate-key fix: repeated
// keys collapse to one lock instead of the second lockRef queuing behind the
// first and deadlocking the multi-key acquisition.
func TestRunCriticalMultiDuplicateKeys(t *testing.T) {
	c := newTestCluster(t, WithSeed(7))
	err := c.Run(func() {
		cl := c.Client("ohio")
		err := cl.RunCriticalMulti([]string{"a", "a", "b", "a"}, func(cs map[string]*CriticalSection) error {
			if len(cs) != 2 {
				return fmt.Errorf("sections = %d, want 2 (one per distinct key)", len(cs))
			}
			if err := cs["a"].Put([]byte("va")); err != nil {
				return err
			}
			return cs["b"].Put([]byte("vb"))
		})
		if err != nil {
			t.Fatalf("RunCriticalMulti with duplicate keys: %v", err)
		}
		a, _ := cl.Get("a")
		b, _ := cl.Get("b")
		if string(a) != "va" || string(b) != "vb" {
			t.Fatalf("values = %q, %q, want va, vb", a, b)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSessionFaultForcedReleaseInvalidatesCache: a forced release preempts
// the holder; its cached reads must fail the local guard and surface the
// preemption instead of serving the stale cached value.
func TestSessionFaultForcedReleaseInvalidatesCache(t *testing.T) {
	for _, seed := range sessionFaultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t, WithSeed(seed))
			err := c.Run(func() {
				cl := c.Client("ohio", WithHolderCache())
				ref, err := cl.CreateLockRef("k")
				if err != nil {
					t.Fatalf("CreateLockRef: %v", err)
				}
				seedv, err := cl.awaitLockSeeded("k", ref, 0)
				if err != nil {
					t.Fatalf("awaitLockSeeded: %v", err)
				}
				cs := cl.newSection("k", ref, seedv)
				if err := cs.Put([]byte("mine")); err != nil {
					t.Fatalf("Put: %v", err)
				}
				if v, err := cs.Get(); err != nil || string(v) != "mine" {
					t.Fatalf("warm Get = (%q, %v)", v, err)
				}

				// A client elsewhere steals the lock and becomes the holder.
				thief := c.Client("oregon")
				if err := thief.ForcedRelease("k", ref); err != nil {
					t.Fatalf("ForcedRelease: %v", err)
				}
				ref2, _ := thief.CreateLockRef("k")
				if err := thief.AwaitLock("k", ref2, 0); err != nil {
					t.Fatalf("thief AwaitLock: %v", err)
				}
				c.Sleep(2 * time.Second) // dequeue replicates to ohio's peek

				v, err := cs.Get()
				if err == nil {
					t.Fatalf("preempted Get returned %q, want error", v)
				}
				if !errors.Is(err, ErrNoLongerLockHolder) {
					t.Fatalf("preempted Get err = %v, want ErrNoLongerLockHolder", err)
				}
				_ = thief.ReleaseLock("k", ref2)
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestSessionFaultExpiryInvalidatesCache: past the T bound the guard on a
// cached read self-preempts with ErrExpired, never serving cached state from
// an expired section.
func TestSessionFaultExpiryInvalidatesCache(t *testing.T) {
	for _, seed := range sessionFaultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t, WithSeed(seed), WithT(500*time.Millisecond))
			err := c.Run(func() {
				cl := c.Client("ohio", WithHolderCache())
				ref, err := cl.CreateLockRef("k")
				if err != nil {
					t.Fatalf("CreateLockRef: %v", err)
				}
				seedv, err := cl.awaitLockSeeded("k", ref, 0)
				if err != nil {
					t.Fatalf("awaitLockSeeded: %v", err)
				}
				cs := cl.newSection("k", ref, seedv)
				if _, err := cs.Get(); err != nil {
					t.Fatalf("warm Get: %v", err)
				}
				c.Sleep(time.Second) // overrun T
				if v, err := cs.Get(); !errors.Is(err, ErrExpired) {
					t.Fatalf("expired Get = (%q, %v), want ErrExpired", v, err)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestSessionFaultFailoverCarriesBufferedWrite: the write-behind buffer
// lives in the client, so when the holder's site is cut off between the
// buffered Put and the flush, the flush re-drives the same lockRef at a
// failover site and lands the buffered value there.
func TestSessionFaultFailoverCarriesBufferedWrite(t *testing.T) {
	for _, seed := range sessionFaultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t, WithSeed(seed))
			err := c.Run(func() {
				cl := c.FailoverClient("ohio", WithWritePolicy(WriteBuffered))
				ref, err := cl.CreateLockRef("k")
				if err != nil {
					t.Fatalf("CreateLockRef: %v", err)
				}
				seedv, err := cl.awaitLockSeeded("k", ref, 0)
				if err != nil {
					t.Fatalf("awaitLockSeeded: %v", err)
				}
				cs := cl.newSection("k", ref, seedv)
				if err := cs.Put([]byte("buffered-survivor")); err != nil {
					t.Fatalf("buffered Put: %v", err)
				}
				c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
				if err := cs.Flush(); err != nil {
					t.Fatalf("Flush across partition: %v", err)
				}
				if got := cl.Site(); got == "ohio" {
					t.Error("flush succeeded without leaving the partitioned site")
				}
				if err := cl.ReleaseLock("k", ref); err != nil {
					t.Fatalf("ReleaseLock: %v", err)
				}
				c.Heal()
				c.Sleep(2 * time.Second)
				got, err := c.Client("oregon").RunCriticalRead("k")
				if err != nil || string(got) != "buffered-survivor" {
					t.Errorf("final value = (%q, %v), want buffered-survivor", got, err)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestSessionFaultPipelinedFlushRedrives: a pipelined write whose async
// quorum round is cut off by a partition fails at flush; the flush re-drives
// the section's final value synchronously — at a failover site — before the
// lock is released, so the next holder still observes it (ECF).
func TestSessionFaultPipelinedFlushRedrives(t *testing.T) {
	for _, seed := range sessionFaultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t, WithSeed(seed), WithObservability())
			err := c.Run(func() {
				cl := c.FailoverClient("ohio", WithWritePolicy(WritePipelined))
				ref, err := cl.CreateLockRef("k")
				if err != nil {
					t.Fatalf("CreateLockRef: %v", err)
				}
				seedv, err := cl.awaitLockSeeded("k", ref, 0)
				if err != nil {
					t.Fatalf("awaitLockSeeded: %v", err)
				}
				cs := cl.newSection("k", ref, seedv)
				c.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
				// The issue is a local guard, so it succeeds; the write's
				// quorum round trip is what the partition kills.
				if err := cs.Put([]byte("redriven")); err != nil {
					t.Fatalf("pipelined Put: %v", err)
				}
				if err := cs.Flush(); err != nil {
					t.Fatalf("Flush across partition: %v", err)
				}
				redrives := c.Obs().Metrics().Counter("music_cs_flush_redrives_total", obs.Labels{"site": "ohio"}).Value()
				if redrives == 0 {
					t.Error("music_cs_flush_redrives_total{site=ohio} = 0, want > 0")
				}
				if err := cl.ReleaseLock("k", ref); err != nil {
					t.Fatalf("ReleaseLock: %v", err)
				}
				c.Heal()
				c.Sleep(2 * time.Second)
				got, err := c.Client("oregon").RunCriticalRead("k")
				if err != nil || string(got) != "redriven" {
					t.Errorf("final value = (%q, %v), want redriven", got, err)
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}
