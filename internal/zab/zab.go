// Package zab implements a ZooKeeper-style leader-based atomic broadcast
// (after "A simple totally ordered broadcast protocol", Reed & Junqueira):
// all writes funnel through a stable leader, which assigns them increasing
// zxids, replicates them to followers, and commits each once a quorum has
// acknowledged it — in strict zxid order. Proposals pipeline (many can be
// in flight) but the leader's CPU and egress NIC are shared bottlenecks,
// which is precisely the queueing behaviour the paper credits for
// ZooKeeper's throughput collapse at large batch and data sizes (§VIII-c).
//
// The znode data model lives above this in internal/zk.
package zab

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Service names.
const (
	svcForward = "zab.forward"
	svcPropose = "zab.propose"
	svcCommit  = "zab.commit"
)

// ErrUnavailable means the leader could not assemble a quorum in time.
var ErrUnavailable = errors.New("zab: quorum unavailable")

// Txn is one totally ordered transaction delivered to the state machine.
type Txn struct {
	Zxid uint64
	Data any
	Size int
}

func (t Txn) WireSize() int { return t.Size + 16 }

// Apply is invoked on every server, in zxid order, once a txn commits.
type Apply func(server simnet.NodeID, txn Txn)

// CostModel sets per-message CPU costs plus the transaction-log fsync that
// ZooKeeper performs for every proposal before acknowledging it. The fsync
// is a serial per-server disk resource: proposals queue behind each other,
// which caps the ensemble's write throughput independently of CPU and
// network — the paper's "queueing effects of consensus writes" (§VIII-c).
type CostModel struct {
	LeaderPropose time.Duration // leader work per proposal
	FollowerAck   time.Duration // follower work per proposal
	ServerRead    time.Duration // local read work
	PerKB         time.Duration
	FsyncBase     time.Duration // txn-log fsync per proposal
	FsyncPerKB    time.Duration // txn-log write time per payload KiB
}

func defaultCosts() CostModel {
	return CostModel{
		LeaderPropose: 260 * time.Microsecond,
		FollowerAck:   110 * time.Microsecond,
		ServerRead:    90 * time.Microsecond,
		PerKB:         1500 * time.Nanosecond,
		FsyncBase:     330 * time.Microsecond,
		FsyncPerKB:    5 * time.Microsecond, // ~200 MB/s sequential log
	}
}

// Config describes a broadcast group.
type Config struct {
	// Nodes lists the participating network nodes; the first is the
	// initial (stable) leader, matching the paper's observation of a
	// stable ZooKeeper leader throughout its runs.
	Nodes []simnet.NodeID
	// Apply receives committed txns on every server.
	Apply Apply
	// Timeout bounds each replication round.
	Timeout time.Duration
	// Costs overrides CPU costs; zero fields keep defaults.
	Costs CostModel
}

// Cluster is a Zab broadcast group.
type Cluster struct {
	net     *simnet.Network
	cfg     Config
	servers map[simnet.NodeID]*server
	leader  simnet.NodeID
}

type server struct {
	c    *Cluster
	id   simnet.NodeID
	node *simnet.Node

	mu        sync.Mutex
	lastZxid  uint64         // leader: last assigned
	acks      map[uint64]int // leader: proposal → ack count
	waiters   map[uint64]*sim.Promise[struct{}]
	committed uint64 // leader: highest committed (commits are in order)

	applied  uint64         // all servers: highest applied zxid
	pending  map[uint64]Txn // all servers: accepted, not yet committed here
	diskBusy time.Duration  // txn-log serialization point
}

// fsync models the per-proposal transaction-log sync: a serial disk whose
// queue the calling task waits in.
func (s *server) fsync(size int) {
	costs := s.c.cfg.Costs
	if costs.FsyncBase <= 0 {
		return
	}
	rt := s.c.net.Runtime()
	sp := s.c.net.Tracer().Child("zab.fsync")
	defer sp.End()
	dur := costs.FsyncBase + time.Duration(float64(costs.FsyncPerKB)*float64(size)/1024)
	s.mu.Lock()
	start := rt.Now()
	if s.diskBusy > start {
		start = s.diskBusy
	}
	s.diskBusy = start + dur
	wait := s.diskBusy - rt.Now()
	s.mu.Unlock()
	rt.Sleep(wait)
}

// New builds a Zab group over the given nodes.
func New(net *simnet.Network, cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = net.Nodes()
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = net.Config().RPCTimeout
	}
	d := defaultCosts()
	if cfg.Costs.LeaderPropose == 0 {
		cfg.Costs.LeaderPropose = d.LeaderPropose
	}
	if cfg.Costs.FollowerAck == 0 {
		cfg.Costs.FollowerAck = d.FollowerAck
	}
	if cfg.Costs.ServerRead == 0 {
		cfg.Costs.ServerRead = d.ServerRead
	}
	if cfg.Costs.PerKB == 0 {
		cfg.Costs.PerKB = d.PerKB
	}
	if cfg.Costs.FsyncBase == 0 {
		cfg.Costs.FsyncBase = d.FsyncBase // negative disables
	}
	if cfg.Costs.FsyncPerKB == 0 {
		cfg.Costs.FsyncPerKB = d.FsyncPerKB
	}

	c := &Cluster{
		net:     net,
		cfg:     cfg,
		servers: make(map[simnet.NodeID]*server, len(cfg.Nodes)),
		leader:  cfg.Nodes[0],
	}
	for _, id := range cfg.Nodes {
		s := &server{
			c:       c,
			id:      id,
			node:    net.Node(id),
			acks:    make(map[uint64]int),
			waiters: make(map[uint64]*sim.Promise[struct{}]),
			pending: make(map[uint64]Txn),
		}
		c.servers[id] = s
		s.node.HandleWithCost(svcForward, s.handleForward, cfg.Costs.LeaderPropose, cfg.Costs.PerKB)
		s.node.HandleWithCost(svcPropose, s.handlePropose, cfg.Costs.FollowerAck, cfg.Costs.PerKB)
		s.node.HandleWithCost(svcCommit, s.handleCommit, cfg.Costs.FollowerAck/2, 0)
	}
	return c, nil
}

// Leader returns the current leader node.
func (c *Cluster) Leader() simnet.NodeID { return c.leader }

// Nodes returns the group members.
func (c *Cluster) Nodes() []simnet.NodeID { return append([]simnet.NodeID(nil), c.cfg.Nodes...) }

// forwardMsg wraps a client write forwarded to the leader.
type forwardMsg struct {
	Data any
	Size int
}

func (m forwardMsg) WireSize() int { return m.Size + 16 }

type ackMsg struct {
	Zxid uint64
	OK   bool
}

type commitMsg struct {
	Zxid uint64
}

// Submit totally orders data through the group from the given member and
// returns once the transaction has committed. size is the payload size in
// bytes (for bandwidth modeling).
func (c *Cluster) Submit(from simnet.NodeID, data any, size int) (zxid uint64, err error) {
	sp := c.net.Tracer().Child("zab.submit")
	sp.Annotatef("leader", "n%d", c.leader)
	defer func() { sp.EndErr(err) }()
	if from == c.leader {
		return c.servers[c.leader].broadcast(data, size)
	}
	resp, err := c.net.CallTimeout(from, c.leader, svcForward, forwardMsg{Data: data, Size: size}, c.cfg.Timeout)
	if err != nil {
		return 0, fmt.Errorf("zab submit: %w", err)
	}
	return resp.(uint64), nil
}

// handleForward runs at the leader: broadcast on behalf of a follower.
func (s *server) handleForward(from simnet.NodeID, req any) (any, error) {
	m := req.(forwardMsg)
	return s.broadcast(m.Data, m.Size)
}

// broadcast assigns the next zxid, replicates to followers, and waits for
// the in-order commit of the new transaction.
func (s *server) broadcast(data any, size int) (uint64, error) {
	rt := s.c.net.Runtime()
	bc := s.c.net.Tracer().Child("zab.broadcast")

	// The leader logs and fsyncs the proposal before acking it itself.
	s.fsync(size)

	s.mu.Lock()
	s.lastZxid++
	zxid := s.lastZxid
	txn := Txn{Zxid: zxid, Data: data, Size: size}
	s.acks[zxid] = 1 // self
	done := sim.NewPromise[struct{}](rt)
	s.waiters[zxid] = done
	s.pending[zxid] = txn
	s.mu.Unlock()

	// Replicate to followers; acks drive the in-order commit cursor.
	for _, id := range s.c.cfg.Nodes {
		if id == s.id {
			continue
		}
		id := id
		rt.Go(func() {
			resp, err := s.c.net.CallTimeout(s.id, id, svcPropose, txn, s.c.cfg.Timeout)
			if err != nil {
				return
			}
			if ack, ok := resp.(ackMsg); ok && ack.OK {
				s.recordAck(ack.Zxid)
			}
		})
	}

	bc.Annotatef("zxid", "%d", zxid)
	if _, err := done.AwaitTimeout(s.c.cfg.Timeout); err != nil {
		bc.EndErr(err)
		return 0, fmt.Errorf("zab zxid %d: %w", zxid, ErrUnavailable)
	}
	bc.End()
	return zxid, nil
}

// recordAck counts a follower ack and advances the commit cursor through
// every consecutive quorum-acked proposal (commits are strictly ordered).
func (s *server) recordAck(zxid uint64) {
	quorum := len(s.c.cfg.Nodes)/2 + 1

	s.mu.Lock()
	s.acks[zxid]++
	var toCommit []uint64
	for {
		next := s.committed + 1
		if s.acks[next] < quorum {
			break
		}
		s.committed = next
		delete(s.acks, next)
		toCommit = append(toCommit, next)
	}
	s.mu.Unlock()

	for _, z := range toCommit {
		s.commitLocal(z)
		for _, id := range s.c.cfg.Nodes {
			if id != s.id {
				s.c.net.Send(s.id, id, svcCommit, commitMsg{Zxid: z})
			}
		}
		s.mu.Lock()
		w := s.waiters[z]
		delete(s.waiters, z)
		s.mu.Unlock()
		if w != nil {
			w.Resolve(struct{}{})
		}
	}
}

// handlePropose runs at followers: log + fsync the proposal, then ack.
func (s *server) handlePropose(from simnet.NodeID, req any) (any, error) {
	txn := req.(Txn)
	s.fsync(txn.Size)
	s.mu.Lock()
	s.pending[txn.Zxid] = txn
	s.mu.Unlock()
	return ackMsg{Zxid: txn.Zxid, OK: true}, nil
}

// handleCommit runs at followers: deliver in order.
func (s *server) handleCommit(from simnet.NodeID, req any) (any, error) {
	s.commitLocal(req.(commitMsg).Zxid)
	return nil, nil
}

// commitLocal applies every pending txn up to zxid, strictly in order.
func (s *server) commitLocal(zxid uint64) {
	var ready []Txn
	s.mu.Lock()
	if zxid > s.applied {
		for z := s.applied + 1; z <= zxid; z++ {
			txn, ok := s.pending[z]
			if !ok {
				// A gap: an earlier proposal never reached this follower.
				// Deliver what we have once the gap fills (commit of a
				// later zxid re-triggers this path).
				break
			}
			ready = append(ready, txn)
			delete(s.pending, z)
			s.applied = z
		}
	}
	s.mu.Unlock()

	if s.c.cfg.Apply != nil {
		sort.Slice(ready, func(i, j int) bool { return ready[i].Zxid < ready[j].Zxid })
		for _, txn := range ready {
			s.c.cfg.Apply(s.id, txn)
		}
	}
}

// Applied returns the highest zxid applied at a server (for tests).
func (c *Cluster) Applied(id simnet.NodeID) uint64 {
	s := c.servers[id]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// ReadWork charges a local read's CPU at the given server (used by the zk
// layer for sequentially consistent local reads).
func (c *Cluster) ReadWork(id simnet.NodeID) {
	c.net.Node(id).Work(c.cfg.Costs.ServerRead)
}
