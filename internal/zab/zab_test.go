package zab

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// recorder gathers applied txns per server.
type recorder struct {
	mu      sync.Mutex
	applied map[simnet.NodeID][]uint64
}

func (r *recorder) apply(id simnet.NodeID, txn Txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applied[id] = append(r.applied[id], txn.Zxid)
}

func (r *recorder) seq(id simnet.NodeID) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.applied[id]...)
}

func fixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder)) {
	t.Helper()
	rt := sim.New(4)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	rec := &recorder{applied: make(map[simnet.NodeID][]uint64)}
	c, err := New(net, Config{Apply: rec.apply})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Run(func() { fn(rt, net, c, rec) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSubmitCommitsInOrder(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		for i := 0; i < 5; i++ {
			zxid, err := c.Submit(0, i, 10)
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			if zxid != uint64(i+1) {
				t.Fatalf("zxid = %d, want %d", zxid, i+1)
			}
		}
		rt.Sleep(2 * time.Second)
		for _, id := range net.Nodes() {
			got := rec.seq(id)
			if len(got) != 5 {
				t.Fatalf("server %d applied %d, want 5", id, len(got))
			}
			for i, z := range got {
				if z != uint64(i+1) {
					t.Fatalf("server %d applied out of order: %v", id, got)
				}
			}
		}
	})
}

func TestFollowerSubmitForwardsToLeader(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		if c.Leader() != 0 {
			t.Fatalf("leader = %d, want 0", c.Leader())
		}
		start := rt.Now()
		if _, err := c.Submit(2, "x", 10); err != nil {
			t.Fatalf("Submit via follower: %v", err)
		}
		followerLat := rt.Now() - start

		start = rt.Now()
		if _, err := c.Submit(0, "y", 10); err != nil {
			t.Fatalf("Submit via leader: %v", err)
		}
		leaderLat := rt.Now() - start
		if followerLat <= leaderLat {
			t.Fatalf("follower submit %v not slower than leader submit %v", followerLat, leaderLat)
		}
	})
}

func TestConcurrentSubmitsPipelineAndStayOrdered(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		done := sim.NewMailbox[error](rt)
		const n = 30
		start := rt.Now()
		for i := 0; i < n; i++ {
			from := simnet.NodeID(i % 3)
			rt.Go(func() {
				_, err := c.Submit(from, "data", 10)
				done.Send(err)
			})
		}
		for i := 0; i < n; i++ {
			if err, recvErr := done.RecvTimeout(time.Minute); recvErr != nil || err != nil {
				t.Fatalf("submit %d: %v / %v", i, err, recvErr)
			}
		}
		elapsed := rt.Now() - start
		// Pipelined: far below n sequential round trips.
		if elapsed > 2*time.Second {
			t.Fatalf("30 submits took %v, want pipelined ≪ 30 RTTs", elapsed)
		}
		rt.Sleep(2 * time.Second)
		// Every server applies the identical zxid sequence.
		ref := rec.seq(0)
		if len(ref) != n {
			t.Fatalf("leader applied %d, want %d", len(ref), n)
		}
		for _, id := range net.Nodes()[1:] {
			got := rec.seq(id)
			if len(got) != len(ref) {
				t.Fatalf("server %d applied %d, want %d", id, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("server %d order differs at %d", id, i)
				}
			}
		}
	})
}

func TestSubmitFailsWithoutQuorum(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		net.Crash(1)
		net.Crash(2)
		if _, err := c.Submit(0, "x", 10); err == nil {
			t.Fatal("submit succeeded without a follower quorum")
		}
	})
}

func TestFsyncSerializesLargeProposals(t *testing.T) {
	// With per-proposal txn-log fsync, many concurrent large submissions
	// queue behind the leader's disk: throughput caps near 1/fsync.
	rt := sim.New(4)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	c, err := New(net, Config{Costs: CostModel{FsyncBase: 2 * time.Millisecond}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Run(func() {
		done := sim.NewMailbox[error](rt)
		const n = 100
		start := rt.Now()
		for i := 0; i < n; i++ {
			rt.Go(func() {
				_, err := c.Submit(0, "x", 10)
				done.Send(err)
			})
		}
		for i := 0; i < n; i++ {
			if err, recvErr := done.RecvTimeout(2 * time.Minute); recvErr != nil || err != nil {
				t.Fatalf("submit: %v / %v", err, recvErr)
			}
		}
		elapsed := rt.Now() - start
		// 100 proposals × 2ms serialized fsync ≈ 200ms lower bound.
		if elapsed < 200*time.Millisecond {
			t.Fatalf("100 submits with 2ms fsync took %v, want ≥200ms", elapsed)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAppliedTracksCommits(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		if got := c.Applied(0); got != 0 {
			t.Fatalf("initial applied = %d", got)
		}
		if _, err := c.Submit(0, "x", 10); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if got := c.Applied(0); got != 1 {
			t.Fatalf("applied = %d, want 1", got)
		}
	})
}
