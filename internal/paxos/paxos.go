// Package paxos implements the single-decree Paxos state machines behind
// the store's light-weight transactions (LWTs), mirroring Cassandra's
// compare-and-set protocol: a proposer drives prepare → read → propose →
// commit rounds (four quorum round trips) against per-key acceptor state
// kept at each replica.
//
// The package is transport-agnostic: the Acceptor type is a pure state
// machine over message values, and the coordinator-side round logic lives
// in internal/store where the network is available.
package paxos

import (
	"fmt"
)

// Ballot is a Paxos ballot number: a logical counter with the proposing
// node as tiebreaker. The zero Ballot is "none" and precedes all others.
type Ballot struct {
	Counter uint64
	Node    int32
}

// IsZero reports whether b is the "none" ballot.
func (b Ballot) IsZero() bool { return b.Counter == 0 && b.Node == 0 }

// Compare returns -1, 0 or +1 as b is before, equal to, or after o.
func (b Ballot) Compare(o Ballot) int {
	switch {
	case b.Counter < o.Counter:
		return -1
	case b.Counter > o.Counter:
		return 1
	case b.Node < o.Node:
		return -1
	case b.Node > o.Node:
		return 1
	default:
		return 0
	}
}

// Less reports whether b precedes o.
func (b Ballot) Less(o Ballot) bool { return b.Compare(o) < 0 }

// String formats the ballot for logs and test failures.
func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Counter, b.Node) }

// Acceptor is the per-key Paxos state stored at a replica. It survives
// crashes (the store treats it as durable, like Cassandra's system.paxos
// table). The zero value is ready to use.
type Acceptor struct {
	// Promised is the highest ballot this acceptor has promised.
	Promised Ballot
	// Accepted/AcceptedValue is the in-progress proposal, if any.
	Accepted      Ballot
	AcceptedValue any
	// Committed is the most recently committed ballot.
	Committed Ballot
}

// PrepareResponse answers a prepare round.
type PrepareResponse struct {
	// Promised reports whether the acceptor promised the ballot. When
	// false, Promised was refused because of a higher promise (see
	// RefusedBy).
	OK        bool
	RefusedBy Ballot
	// InProgress carries a previously accepted but not yet committed
	// proposal that the proposer must complete first.
	InProgress      Ballot
	InProgressValue any
	// Committed is the acceptor's most recently committed ballot, letting
	// the proposer discard stale in-progress proposals.
	Committed Ballot
}

// HandlePrepare processes a prepare for ballot b.
func (a *Acceptor) HandlePrepare(b Ballot) PrepareResponse {
	if b.Compare(a.Promised) <= 0 {
		return PrepareResponse{OK: false, RefusedBy: a.Promised, Committed: a.Committed}
	}
	a.Promised = b
	resp := PrepareResponse{OK: true, Committed: a.Committed}
	if !a.Accepted.IsZero() && a.Accepted.Compare(a.Committed) > 0 {
		resp.InProgress = a.Accepted
		resp.InProgressValue = a.AcceptedValue
	}
	return resp
}

// HandlePropose processes an accept request for (b, v); it reports whether
// the proposal was accepted.
func (a *Acceptor) HandlePropose(b Ballot, v any) bool {
	if b.Compare(a.Promised) < 0 {
		return false
	}
	a.Promised = b
	a.Accepted = b
	a.AcceptedValue = v
	return true
}

// HandleCommit finalizes ballot b. It returns true when the commit is news
// to this acceptor (b is newer than anything committed before), in which
// case the caller applies the committed mutation to storage. Commits are
// idempotent.
func (a *Acceptor) HandleCommit(b Ballot) bool {
	if b.Compare(a.Committed) <= 0 {
		return false
	}
	a.Committed = b
	if a.Accepted.Compare(b) <= 0 {
		a.Accepted = Ballot{}
		a.AcceptedValue = nil
	}
	return true
}
