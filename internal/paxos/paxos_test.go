package paxos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBallotCompare(t *testing.T) {
	tests := []struct {
		a, b Ballot
		want int
	}{
		{Ballot{}, Ballot{}, 0},
		{Ballot{}, Ballot{1, 0}, -1},
		{Ballot{1, 0}, Ballot{}, 1},
		{Ballot{1, 1}, Ballot{1, 2}, -1},
		{Ballot{2, 0}, Ballot{1, 9}, 1},
		{Ballot{5, 3}, Ballot{5, 3}, 0},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.a.Less(tt.b); got != (tt.want < 0) {
			t.Errorf("Less(%v, %v) = %v", tt.a, tt.b, got)
		}
	}
}

func TestBallotCompareAntisymmetric(t *testing.T) {
	f := func(c1 uint64, n1 int32, c2 uint64, n2 int32) bool {
		a, b := Ballot{c1, n1}, Ballot{c2, n2}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBallotIsZero(t *testing.T) {
	if !(Ballot{}).IsZero() {
		t.Error("zero ballot not IsZero")
	}
	if (Ballot{1, 0}).IsZero() || (Ballot{0, 1}).IsZero() {
		t.Error("nonzero ballot reported IsZero")
	}
}

func TestAcceptorPromiseOrdering(t *testing.T) {
	var a Acceptor
	if resp := a.HandlePrepare(Ballot{5, 1}); !resp.OK {
		t.Fatal("fresh prepare refused")
	}
	// Lower and equal ballots must be refused.
	if resp := a.HandlePrepare(Ballot{4, 9}); resp.OK {
		t.Error("lower prepare accepted")
	} else if resp.RefusedBy != (Ballot{5, 1}) {
		t.Errorf("RefusedBy = %v, want 5.1", resp.RefusedBy)
	}
	if resp := a.HandlePrepare(Ballot{5, 1}); resp.OK {
		t.Error("equal prepare accepted")
	}
	// Higher ballots supersede.
	if resp := a.HandlePrepare(Ballot{6, 0}); !resp.OK {
		t.Error("higher prepare refused")
	}
}

func TestAcceptorProposeRequiresPromise(t *testing.T) {
	var a Acceptor
	a.HandlePrepare(Ballot{10, 0})
	if a.HandlePropose(Ballot{9, 0}, "v") {
		t.Error("propose below promise accepted")
	}
	if !a.HandlePropose(Ballot{10, 0}, "v") {
		t.Error("propose at promise refused")
	}
	// A propose at a higher ballot implies the promise.
	if !a.HandlePropose(Ballot{11, 0}, "w") {
		t.Error("higher propose refused")
	}
	if a.Promised != (Ballot{11, 0}) {
		t.Errorf("Promised = %v, want 11.0", a.Promised)
	}
}

func TestAcceptorInProgressSurfacedOnPrepare(t *testing.T) {
	var a Acceptor
	a.HandlePrepare(Ballot{3, 0})
	a.HandlePropose(Ballot{3, 0}, "pending")

	resp := a.HandlePrepare(Ballot{4, 0})
	if !resp.OK {
		t.Fatal("prepare refused")
	}
	if resp.InProgress != (Ballot{3, 0}) || resp.InProgressValue != "pending" {
		t.Errorf("in-progress = (%v, %v), want (3.0, pending)", resp.InProgress, resp.InProgressValue)
	}
}

func TestAcceptorCommitClearsInProgress(t *testing.T) {
	var a Acceptor
	a.HandlePrepare(Ballot{3, 0})
	a.HandlePropose(Ballot{3, 0}, "v")
	if !a.HandleCommit(Ballot{3, 0}) {
		t.Fatal("first commit not news")
	}
	if a.HandleCommit(Ballot{3, 0}) {
		t.Error("duplicate commit reported as news")
	}
	if a.HandleCommit(Ballot{2, 0}) {
		t.Error("stale commit reported as news")
	}
	resp := a.HandlePrepare(Ballot{4, 0})
	if !resp.InProgress.IsZero() {
		t.Errorf("in-progress survives commit: %v", resp.InProgress)
	}
	if resp.Committed != (Ballot{3, 0}) {
		t.Errorf("Committed = %v, want 3.0", resp.Committed)
	}
}

func TestAcceptorCommitDoesNotClearNewerAccepted(t *testing.T) {
	var a Acceptor
	a.HandlePrepare(Ballot{3, 0})
	a.HandlePropose(Ballot{3, 0}, "old")
	a.HandlePropose(Ballot{5, 0}, "new")
	a.HandleCommit(Ballot{3, 0})
	resp := a.HandlePrepare(Ballot{6, 0})
	if resp.InProgress != (Ballot{5, 0}) || resp.InProgressValue != "new" {
		t.Errorf("in-progress = (%v, %v), want (5.0, new)", resp.InProgress, resp.InProgressValue)
	}
}

// TestSingleDecreeSafety runs randomized interleavings of two proposers over
// three acceptors and checks the classic Paxos safety property: once a value
// is chosen (accepted by a majority at some ballot), every higher-ballot
// proposal that reaches acceptance carries the same value — provided the
// proposers follow the protocol (adopt the in-progress value from prepare
// responses).
func TestSingleDecreeSafety(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		acceptors := []*Acceptor{{}, {}, {}}

		type proposal struct {
			ballot Ballot
			value  string
		}
		var accepted []proposal // every (ballot, value) majority-accepted

		// Each proposer runs one full round against a random quorum.
		runProposer := func(node int32, counter uint64, myValue string) {
			b := Ballot{Counter: counter, Node: node}
			quorum := rng.Perm(3)[:2]

			value := myValue
			var highest Ballot
			oks := 0
			for _, ai := range quorum {
				resp := acceptors[ai].HandlePrepare(b)
				if !resp.OK {
					continue
				}
				oks++
				if !resp.InProgress.IsZero() && highest.Less(resp.InProgress) {
					highest = resp.InProgress
					value = resp.InProgressValue.(string)
				}
			}
			if oks < 2 {
				return
			}
			acks := 0
			for _, ai := range quorum {
				if acceptors[ai].HandlePropose(b, value) {
					acks++
				}
			}
			if acks >= 2 {
				accepted = append(accepted, proposal{b, value})
			}
		}

		counters := rng.Perm(10)
		for i := 0; i < 6; i++ {
			runProposer(int32(i%2), uint64(counters[i]+1), []string{"A", "B"}[i%2])
		}

		// Safety: all majority-accepted proposals at or above the first
		// chosen ballot must agree with the chosen value.
		if len(accepted) > 1 {
			first := accepted[0]
			for _, p := range accepted[1:] {
				if p.ballot.Compare(first.ballot) >= 0 && p.value != first.value {
					t.Fatalf("seed %d: chosen %q at %v, later chose %q at %v",
						seed, first.value, first.ballot, p.value, p.ballot)
				}
			}
		}
	}
}
