// Package model is an explicit-state model checker for MUSIC's ECF
// semantics — this repository's analogue of the paper's Alloy verification
// (§V). It exhaustively enumerates the reachable states of a fine-grained
// event model (clients crossing critical sections, lock-queue operations,
// forced releases, crashes, quorum writes that linger as pending pairs) and
// checks the paper's invariants in every state:
//
//   - Critical-Section Invariant: when the lockholding client is Critical
//     or Getting, the data store is defined as the true value (§IV-A);
//   - Latest-State Property: a criticalGet reply delivered to the
//     lockholder carries the true value (§III-A);
//   - SynchFlag Invariant: a released lockRef at or above the true
//     timestamp's lockRef implies the synchFlag is set (§IV-B);
//   - lock-queue sanity: distinct increasing refs, grants only at the head.
//
// The back-end stores follow §V-C: the lock store is atomic (sequentially
// consistent); the data store is only a set of attempted write pairs split
// into pending and succeeded, with the true pair the one with the highest
// timestamp, and "defined" meaning the true pair succeeded. Quorum reads
// return the true pair only when the store was continuously defined.
//
// Checker options deliberately re-introduce the bugs MUSIC's design guards
// against (skipping synchronization; dropping the δ timestamp), and the
// tests confirm the checker catches them — evidence it has teeth.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// pc is a client's program counter.
type pc int

// Client states; Putting and Getting match the paper's state names.
const (
	pcIdle pc = iota + 1
	pcHasRef
	pcCritical
	pcPutting
	pcGetting
	pcDone
	pcCrashed
)

func (p pc) String() string {
	return [...]string{"?", "Idle", "HasRef", "Critical", "Putting", "Getting", "Done", "Crashed"}[p]
}

// ts is the vector timestamp of a data-store write: lockRef-major, then a
// per-section sequence number; Forced marks the δ stamp of a forced
// release, sitting above every sequence number of its ref (§IV-B).
type ts struct {
	Ref    int
	Seq    int
	Forced bool
}

// less orders timestamps; δ beats any seq of the same ref.
func (a ts) less(b ts) bool {
	if a.Ref != b.Ref {
		return a.Ref < b.Ref
	}
	if a.Forced != b.Forced {
		return b.Forced
	}
	return a.Seq < b.Seq
}

// write is one attempted data-store write pair (§V-C).
type write struct {
	TS        ts
	Val       int
	Succeeded bool
}

// client is one modeled client.
type client struct {
	PC      pc
	Ref     int
	OpsLeft int
	Seq     int // next write sequence within its critical section
	Granted bool
	// getOK tracks "store continuously defined since the get request".
	GetOK bool
}

// state is one global system state. It must be deeply copied on branch.
type state struct {
	Guard   int
	Queue   []int
	Writes  []write
	Flag    bool
	FlagTS  ts
	Clients []client
	NextVal int
}

// Options bounds and mutates the exploration.
type Options struct {
	// Clients is the number of concurrent clients (default 2).
	Clients int
	// OpsPerCS is how many critical operations each client performs
	// (default 2). Each op nondeterministically becomes a put or a get.
	OpsPerCS int
	// MaxStates aborts exploration beyond this many distinct states
	// (default 2,000,000).
	MaxStates int
	// Crashes enables client crash events.
	Crashes bool
	// ForcedRelease enables spontaneous forced release of the queue head
	// (modeling failure detection, including false detection).
	ForcedRelease bool

	// Bug injections (the checker must catch these):
	// SkipSync grants locks without checking/clearing the synchFlag.
	SkipSync bool
	// NoDelta stamps forced-release synchFlag writes with a plain (ref, 0)
	// timestamp instead of the δ stamp, losing the race against the same
	// ref's flag reset.
	NoDelta bool
}

func (o Options) withDefaults() Options {
	if o.Clients == 0 {
		o.Clients = 2
	}
	if o.OpsPerCS == 0 {
		o.OpsPerCS = 2
	}
	if o.MaxStates == 0 {
		o.MaxStates = 2_000_000
	}
	return o
}

// Result reports an exploration.
type Result struct {
	States     int
	Violations []string
	Truncated  bool // hit MaxStates
	// Stuck counts reachable states with no enabled transition while some
	// client still wants to make progress — e.g. a crashed lockholder
	// blocking everyone when forced release is disabled. The paper's
	// liveness argument (§V-B) rests on failure detection making such
	// states recoverable, and the checker shows exactly that: Stuck > 0
	// without ForcedRelease, Stuck == 0 with it.
	Stuck int
}

// Check explores all reachable states under opts and returns any invariant
// violations (deduplicated, capped at 10).
func Check(opts Options) Result {
	opts = opts.withDefaults()
	init := &state{Clients: make([]client, opts.Clients)}
	for i := range init.Clients {
		init.Clients[i] = client{PC: pcIdle, OpsLeft: opts.OpsPerCS}
	}

	seen := map[string]bool{encode(init): true}
	queue := []*state{init}
	res := Result{}
	report := func(s *state, msg string) {
		if len(res.Violations) < 10 {
			v := msg + " in " + encode(s)
			for _, existing := range res.Violations {
				if existing == v {
					return
				}
			}
			res.Violations = append(res.Violations, v)
		}
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > opts.MaxStates {
			res.Truncated = true
			break
		}

		checkInvariants(s, report)

		succ := successors(s, opts, report)
		if wantsProgress(s) {
			// A live client can always crash, so crash transitions do not
			// count as progress when deciding whether a state is stuck.
			noCrash := opts
			noCrash.Crashes = false
			if len(successors(s, noCrash, func(*state, string) {})) == 0 {
				res.Stuck++
			}
		}
		for _, next := range succ {
			key := encode(next)
			if !seen[key] {
				seen[key] = true
				queue = append(queue, next)
			}
		}
	}
	return res
}

// trueWrite returns the write pair with the highest timestamp; ok is false
// before any write exists (the initial "no value" is treated as defined).
func trueWrite(s *state) (write, bool) {
	var best write
	found := false
	for _, w := range s.Writes {
		if !found || best.TS.less(w.TS) {
			best = w
			found = true
		}
	}
	return best, found
}

// defined reports whether the data store is defined as the true value.
func defined(s *state) bool {
	w, ok := trueWrite(s)
	return !ok || w.Succeeded
}

func head(s *state) (int, bool) {
	if len(s.Queue) == 0 {
		return 0, false
	}
	return s.Queue[0], true
}

func inQueue(s *state, ref int) bool {
	for _, r := range s.Queue {
		if r == ref {
			return true
		}
	}
	return false
}

// checkInvariants validates the paper's invariants in state s.
func checkInvariants(s *state, report func(*state, string)) {
	h, hasHead := head(s)

	// Lock-queue sanity: increasing distinct refs, bounded by the guard.
	for i, r := range s.Queue {
		if r > s.Guard || (i > 0 && r <= s.Queue[i-1]) {
			report(s, fmt.Sprintf("queue corrupt: %v guard %d", s.Queue, s.Guard))
		}
	}

	for ci := range s.Clients {
		c := &s.Clients[ci]
		// Grants only at the head.
		if c.Granted && c.PC != pcDone && c.PC != pcCrashed && inQueue(s, c.Ref) && (!hasHead || h != c.Ref) {
			report(s, fmt.Sprintf("client %d granted but ref %d not head", ci, c.Ref))
		}
		// Critical-Section Invariant (§IV-A): the lockholding client in
		// Critical or Getting implies the store is defined as true value.
		isHolder := hasHead && c.Ref == h && c.Granted
		if isHolder && (c.PC == pcCritical || c.PC == pcGetting) && !defined(s) {
			report(s, fmt.Sprintf("critical-section invariant: holder %d in %v with undefined store", ci, c.PC))
		}
	}

	// SynchFlag Invariant (§IV-B): a past (forcibly released) lockRef at or
	// above the true timestamp's ref implies the synchFlag is set —
	// required for live preempted clients (which may still issue critical
	// puts) and for crashed clients whose writes linger as pending traces.
	tw, ok := trueWrite(s)
	if ok && !s.Flag {
		for ci := range s.Clients {
			c := &s.Clients[ci]
			if c.Ref == 0 || inQueue(s, c.Ref) || c.Ref < tw.TS.Ref {
				continue
			}
			needsFlag := false
			switch c.PC {
			case pcHasRef, pcCritical, pcPutting, pcGetting:
				needsFlag = true
			case pcCrashed:
				needsFlag = hasPendingTrace(s, c.Ref)
			}
			if needsFlag {
				report(s, fmt.Sprintf("synchflag invariant: released ref %d ≥ true ref %d with flag clear (client %d %v)", c.Ref, tw.TS.Ref, ci, c.PC))
			}
		}
	}
}

// successors enumerates every enabled transition of s.
func successors(s *state, opts Options, report func(*state, string)) []*state {
	var out []*state
	// emit finalizes a successor: whenever the store is (or becomes)
	// undefined, every in-flight get loses its "continuously defined"
	// property (§V-C).
	emit := func(n *state) {
		if !defined(n) {
			for i := range n.Clients {
				if n.Clients[i].PC == pcGetting {
					n.Clients[i].GetOK = false
				}
			}
		}
		out = append(out, n)
	}

	h, hasHead := head(s)

	for ci := range s.Clients {
		c := s.Clients[ci]
		switch c.PC {
		case pcIdle:
			// createLockRef: atomic guard increment + enqueue.
			n := clone(s)
			n.Guard++
			n.Queue = append(n.Queue, n.Guard)
			n.Clients[ci].Ref = n.Guard
			n.Clients[ci].PC = pcHasRef
			emit(n)

		case pcHasRef:
			if c.Ref != 0 && !inQueue(s, c.Ref) {
				// The ref was forcibly released before it was ever granted;
				// the client's next acquireLock answers
				// youAreNoLongerLockHolder and it abandons the section
				// (§III-A).
				n := clone(s)
				n.Clients[ci].PC = pcDone
				emit(n)
				break
			}
			if hasHead && h == c.Ref {
				if s.Flag && !opts.SkipSync {
					// acquireLock with synchronization: quorum read the
					// value, rewrite it under the new ref, reset the flag.
					// If the store is undefined, the read nondeterministically
					// returns the pending true pair or the latest succeeded
					// pair — both commits are modeled (§III-A's refinement).
					for _, val := range syncReadChoices(s) {
						n := clone(s)
						n.Writes = append(n.Writes, write{TS: ts{Ref: c.Ref, Seq: 0}, Val: val, Succeeded: true})
						reset := ts{Ref: c.Ref, Seq: 1}
						if n.FlagTS.less(reset) {
							n.Flag = false
							n.FlagTS = reset
						}
						n.Clients[ci].PC = pcCritical
						n.Clients[ci].Granted = true
						n.Clients[ci].Seq = 2
						emit(n)
					}
				} else {
					// Plain grant (flag clear, or the SkipSync bug).
					n := clone(s)
					n.Clients[ci].PC = pcCritical
					n.Clients[ci].Granted = true
					n.Clients[ci].Seq = 2
					emit(n)
				}
			}

		case pcCritical:
			if c.OpsLeft > 0 {
				// criticalPut issue: MUSIC's local-peek guard may be stale,
				// so a preempted client's put can still be issued — the
				// timestamp mechanism must render it harmless.
				n := clone(s)
				n.NextVal++
				n.Writes = append(n.Writes, write{TS: ts{Ref: c.Ref, Seq: c.Seq}, Val: n.NextVal})
				n.Clients[ci].PC = pcPutting
				emit(n)

				// criticalGet issue.
				g := clone(s)
				g.Clients[ci].PC = pcGetting
				g.Clients[ci].GetOK = defined(s)
				emit(g)
			} else {
				// releaseLock.
				n := clone(s)
				n.Queue = removeRef(n.Queue, c.Ref)
				n.Clients[ci].PC = pcDone
				emit(n)
			}

		case pcPutting:
			// Ack arrives: the write reached a quorum.
			n := clone(s)
			for wi := range n.Writes {
				if n.Writes[wi].TS == (ts{Ref: c.Ref, Seq: c.Seq}) {
					n.Writes[wi].Succeeded = true
				}
			}
			n.Clients[ci].PC = pcCritical
			n.Clients[ci].Seq++
			n.Clients[ci].OpsLeft--
			emit(n)

			// Ack lost: the pair lingers pending forever and the client
			// must abandon the key (§III-A). Its lockRef stays queued until
			// a forced release reaps it; the abandoned write is a "trace"
			// in the paper's sense, so we model the client as crashed.
			l := clone(s)
			l.Clients[ci].PC = pcCrashed
			emit(l)

		case pcGetting:
			// Reply arrives. With the store continuously defined, the reply
			// is the true value — assert the Latest-State Property. An
			// interrupted-definedness reply only happens to non-holders
			// (their MUSIC replica would reject them eventually); a holder
			// with GetOK lost means the CS invariant was already violated.
			n := clone(s)
			isHolder := hasHead && h == c.Ref && c.Granted
			if isHolder && !n.Clients[ci].GetOK {
				report(s, fmt.Sprintf("latest-state: holder %d get reply with interrupted definedness", ci))
			}
			n.Clients[ci].PC = pcCritical
			n.Clients[ci].OpsLeft--
			emit(n)
		}

		// Crash: a client can fail in any live state.
		if opts.Crashes && c.PC != pcDone && c.PC != pcCrashed && c.PC != pcIdle {
			n := clone(s)
			n.Clients[ci].PC = pcCrashed
			emit(n)
		}
	}

	// forcedRelease of the head (timeout-based failure detection — true or
	// false; time is not modeled, so it may fire at any moment).
	if opts.ForcedRelease && hasHead {
		n := clone(s)
		stamp := ts{Ref: h, Forced: true}
		if opts.NoDelta {
			stamp = ts{Ref: h, Seq: 0}
		}
		if n.FlagTS.less(stamp) {
			n.Flag = true
			n.FlagTS = stamp
		}
		n.Queue = removeRef(n.Queue, h)
		emit(n)
	}

	return out
}

// syncReadChoices lists the values the synchronization read may return: the
// true pair's value, plus (when undefined) the latest succeeded pair's —
// "the read may or may not catch the updated value" (§IV-B).
func syncReadChoices(s *state) []int {
	tw, ok := trueWrite(s)
	if !ok {
		return []int{0} // no value ever written: rewrite the empty value
	}
	choices := []int{tw.Val}
	if !tw.Succeeded {
		best, found := write{}, false
		for _, w := range s.Writes {
			if w.Succeeded && (!found || best.TS.less(w.TS)) {
				best = w
				found = true
			}
		}
		old := 0
		if found {
			old = best.Val
		}
		if old != tw.Val {
			choices = append(choices, old)
		}
	}
	return choices
}

// wantsProgress reports whether some client still has work it would do if
// it could (it is neither Done nor Crashed).
func wantsProgress(s *state) bool {
	for _, c := range s.Clients {
		if c.PC != pcDone && c.PC != pcCrashed {
			return true
		}
	}
	return false
}

// hasPendingTrace reports whether ref has an attempted write still pending.
func hasPendingTrace(s *state, ref int) bool {
	for _, w := range s.Writes {
		if w.TS.Ref == ref && !w.Succeeded {
			return true
		}
	}
	return false
}

func removeRef(queue []int, ref int) []int {
	out := queue[:0:0]
	for _, r := range queue {
		if r != ref {
			out = append(out, r)
		}
	}
	return out
}

func clone(s *state) *state {
	n := &state{
		Guard:   s.Guard,
		Queue:   append([]int(nil), s.Queue...),
		Writes:  append([]write(nil), s.Writes...),
		Flag:    s.Flag,
		FlagTS:  s.FlagTS,
		Clients: append([]client(nil), s.Clients...),
		NextVal: s.NextVal,
	}
	return n
}

// encode canonicalizes a state for deduplication and reporting.
func encode(s *state) string {
	var b strings.Builder
	fmt.Fprintf(&b, "g%d q%v f%v@%v n%d w[", s.Guard, s.Queue, s.Flag, s.FlagTS, s.NextVal)
	ws := append([]write(nil), s.Writes...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].TS.less(ws[j].TS) })
	for _, w := range ws {
		fmt.Fprintf(&b, "(%v=%d,%v)", w.TS, w.Val, w.Succeeded)
	}
	b.WriteString("] c[")
	for _, c := range s.Clients {
		fmt.Fprintf(&b, "(%v r%d o%d s%d g%v k%v)", c.PC, c.Ref, c.OpsLeft, c.Seq, c.Granted, c.GetOK)
	}
	b.WriteString("]")
	return b.String()
}
