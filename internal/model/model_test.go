package model

import (
	"strings"
	"testing"
)

func TestFailureFreeScenariosClean(t *testing.T) {
	res := Check(Options{Clients: 2, OpsPerCS: 2})
	if len(res.Violations) != 0 {
		t.Fatalf("violations in failure-free model:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
	if res.States < 100 {
		t.Fatalf("suspiciously small state space: %d", res.States)
	}
	t.Logf("failure-free: %d states", res.States)
}

func TestCrashesOnlyClean(t *testing.T) {
	res := Check(Options{Clients: 2, OpsPerCS: 2, Crashes: true})
	if len(res.Violations) != 0 {
		t.Fatalf("violations with crashes:\n%s", strings.Join(res.Violations, "\n"))
	}
	t.Logf("crashes: %d states", res.States)
}

func TestForcedReleaseOnlyClean(t *testing.T) {
	res := Check(Options{Clients: 2, OpsPerCS: 2, ForcedRelease: true})
	if len(res.Violations) != 0 {
		t.Fatalf("violations with forced release (false detection):\n%s", strings.Join(res.Violations, "\n"))
	}
	t.Logf("forced release: %d states", res.States)
}

func TestFullFailureModelClean(t *testing.T) {
	// The paper's headline claim: ECF holds despite crashes AND imperfect
	// failure detection (forced release may fire on live clients).
	res := Check(Options{Clients: 2, OpsPerCS: 2, Crashes: true, ForcedRelease: true})
	if len(res.Violations) != 0 {
		t.Fatalf("ECF violations under full failure model:\n%s", strings.Join(res.Violations, "\n"))
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise MaxStates")
	}
	t.Logf("full failure model: %d states", res.States)
}

func TestThreeClientsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res := Check(Options{Clients: 3, OpsPerCS: 1, Crashes: true, ForcedRelease: true, MaxStates: 4_000_000})
	if len(res.Violations) != 0 {
		t.Fatalf("ECF violations with 3 clients:\n%s", strings.Join(res.Violations, "\n"))
	}
	t.Logf("3 clients: %d states (truncated=%v)", res.States, res.Truncated)
}

func TestCheckerCatchesSkippedSynchronization(t *testing.T) {
	// Bug injection: granting locks without consulting the synchFlag must
	// break the Critical-Section or Latest-State invariant — proof the
	// checker can actually find the class of bug MUSIC's design prevents.
	res := Check(Options{Clients: 2, OpsPerCS: 2, Crashes: true, ForcedRelease: true, SkipSync: true})
	if len(res.Violations) == 0 {
		t.Fatal("checker missed the skipped-synchronization bug")
	}
	t.Logf("found: %s", res.Violations[0])
}

func TestCheckerCatchesMissingDelta(t *testing.T) {
	// Bug injection: forcedRelease stamping the synchFlag without the δ
	// offset loses the race against the same lockRef's flag reset (§IV-B),
	// so a later lockholder can skip a required synchronization.
	res := Check(Options{Clients: 2, OpsPerCS: 2, Crashes: true, ForcedRelease: true, NoDelta: true})
	if len(res.Violations) == 0 {
		t.Fatal("checker missed the missing-δ bug")
	}
	t.Logf("found: %s", res.Violations[0])
}

func TestTimestampOrdering(t *testing.T) {
	tests := []struct {
		a, b ts
		want bool
	}{
		{ts{Ref: 1, Seq: 5}, ts{Ref: 2, Seq: 0}, true},
		{ts{Ref: 2, Seq: 0}, ts{Ref: 1, Seq: 5}, false},
		{ts{Ref: 1, Seq: 0}, ts{Ref: 1, Seq: 1}, true},
		{ts{Ref: 1, Seq: 99}, ts{Ref: 1, Forced: true}, true}, // δ beats any seq
		{ts{Ref: 1, Forced: true}, ts{Ref: 2, Seq: 0}, true},  // δ below next ref
		{ts{Ref: 1, Forced: true}, ts{Ref: 1, Forced: true}, false},
	}
	for i, tt := range tests {
		if got := tt.a.less(tt.b); got != tt.want {
			t.Errorf("case %d: %v.less(%v) = %v, want %v", i, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDefinedSemantics(t *testing.T) {
	s := &state{}
	if !defined(s) {
		t.Fatal("empty store must be defined")
	}
	s.Writes = append(s.Writes, write{TS: ts{Ref: 1, Seq: 2}, Val: 1, Succeeded: true})
	if !defined(s) {
		t.Fatal("succeeded true pair must define the store")
	}
	s.Writes = append(s.Writes, write{TS: ts{Ref: 1, Seq: 3}, Val: 2})
	if defined(s) {
		t.Fatal("pending true pair must undefine the store")
	}
	tw, ok := trueWrite(s)
	if !ok || tw.Val != 2 {
		t.Fatalf("true pair = (%+v, %v), want pending val 2", tw, ok)
	}
}

func TestSingleClientStateSpaceIsSmallAndClean(t *testing.T) {
	res := Check(Options{Clients: 1, OpsPerCS: 3, Crashes: true, ForcedRelease: true})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.States < 10 || res.States > 100000 {
		t.Fatalf("states = %d", res.States)
	}
}

func TestLivenessRequiresForcedRelease(t *testing.T) {
	// The paper's liveness argument (§V-B) rests on timing out failed
	// lockholders: without forced release, a crashed holder wedges every
	// waiting client forever; with it, no reachable state is stuck.
	without := Check(Options{Clients: 2, OpsPerCS: 1, Crashes: true})
	if without.Stuck == 0 {
		t.Fatal("no stuck states with crashes but no forced release — the checker lost its liveness signal")
	}
	with := Check(Options{Clients: 2, OpsPerCS: 1, Crashes: true, ForcedRelease: true})
	if with.Stuck != 0 {
		t.Fatalf("%d stuck states despite forced release", with.Stuck)
	}
}
