// Package history records operation histories of MUSIC clusters and checks
// them against the paper's correctness contract: entry consistency under
// failures (ECF, §III). Every lock-protocol and data operation — acquires,
// releases, forced releases, critical puts/gets, synchronize rewrites,
// failovers — is logged with invocation/response virtual timestamps, its
// lockRef identity, and (for writes) the v2s stamp it carried, producing a
// replayable history that the checkers in ecf.go and linearize.go validate
// mechanically instead of by hand-picked assertions.
//
// Like internal/obs, the package is nil-safe by design: a nil *Recorder
// turns every method into a no-op, so the instrumented protocol paths carry
// no conditionals and no allocations when history recording is disabled
// (the default). history_test.go proves the zero-allocation claim.
package history

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/placement"
	"repro/internal/sim"
)

// Kind identifies the operation an Op records.
type Kind uint8

// Operation kinds. Store-level kinds record the raw quorum traffic beneath
// the MUSIC ops; the checkers consume the core- and session-level kinds.
const (
	// KindAcquire is a successful lock grant observed by a replica (the
	// moment a client becomes lockholder). Synchronized marks grants that
	// ran the §IV-B data-store synchronization.
	KindAcquire Kind = iota + 1
	// KindRelease is a voluntary dequeue by the lockholder.
	KindRelease
	// KindForcedRelease is a preemption: the δ-stamped synchFlag mark plus
	// the dequeue (§IV-B). Only effective preemptions are recorded; the
	// "previously released" no-op path is not an event.
	KindForcedRelease
	// KindPut is a critical put (value write under the lock), stamped TS.
	KindPut
	// KindDelete is a critical delete (tombstone under the lock).
	KindDelete
	// KindGet is a critical get: the value a lockholder observed. Session
	// cache- and buffer-served reads record the same kind — they claim the
	// same ECF guarantee as a quorum read and are checked identically.
	KindGet
	// KindSync is the grant-time synchronize rewrite: the quorum-read value
	// re-stamped with the new lockholder's v2s(ref, 0).
	KindSync
	// KindEventualPut / KindEventualGet are the no-ECF plain operations
	// (§VI); recorded for completeness, ignored by the checkers.
	KindEventualPut
	KindEventualGet
	// KindFailover is a client re-binding to another site mid-operation
	// (§III-A); Site is the old site, Note the new one.
	KindFailover
	// KindStorePut / KindStoreGet are raw data-store quorum operations
	// beneath the MUSIC table (diagnostics; not checked).
	KindStorePut
	KindStoreGet
	// KindEpoch is a membership epoch change becoming visible at a site:
	// Epoch is the new epoch and Note carries the member set it placed
	// ("rf=3 members=site:id,..."), from which the epoch checker re-derives
	// placement. Appended after the store kinds so every earlier kind keeps
	// its historical numeric value (pinned repro artifacts render ids).
	KindEpoch
	// KindMonitor is a consistency-monitor point event: a detected staleness
	// violation ("staleness") or a site flipping its adaptive read level
	// ("flip one->quorum"). Appended after KindEpoch for the same numeric-
	// stability reason.
	KindMonitor
)

// Notes attached to ops by the adaptive read plane. The checkers and the
// online monitor classify gets by these, so core and the checker must agree
// on the exact strings.
const (
	// NoteWeak marks a critical get served at ONE consistency under adaptive
	// reads — checked by the adaptive rules, judged online by the Monitor.
	NoteWeak = "one"
	// NoteLease marks a critical get served locally from the site's holder
	// lease — checked by the lease rules and the full freshness rule.
	NoteLease = "lease"
	// NoteStaleness is the KindMonitor event recording a detected weak-read
	// staleness violation.
	NoteStaleness = "staleness"
	// NoteFlip is the KindMonitor event recording a site flipping its
	// adaptive read level from ONE to QUORUM.
	NoteFlip = "flip one->quorum"
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindAcquire:
		return "acquire"
	case KindRelease:
		return "release"
	case KindForcedRelease:
		return "forcedRelease"
	case KindPut:
		return "criticalPut"
	case KindDelete:
		return "criticalDelete"
	case KindGet:
		return "criticalGet"
	case KindSync:
		return "synchronize"
	case KindEventualPut:
		return "put"
	case KindEventualGet:
		return "get"
	case KindFailover:
		return "failover"
	case KindStorePut:
		return "store.put"
	case KindStoreGet:
		return "store.get"
	case KindEpoch:
		return "epoch"
	case KindMonitor:
		return "monitor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one recorded operation: a [Inv, Resp] interval in virtual (or wall)
// time, the lockRef it ran under, and its outcome.
type Op struct {
	ID   uint64 // completion order, 1-based
	Site string // replica site the operation ran at
	Kind Kind
	Key  string
	Ref  int64 // lockRef identity; 0 for unlocked ops

	Inv  time.Duration // invocation time
	Resp time.Duration // response time

	Value   []byte // value written or observed
	Present bool   // value exists (false: absent/tombstone)
	TS      int64  // v2s stamp carried by writes; 0 when unstamped

	// Synchronized marks a KindAcquire grant that performed the §IV-B
	// data-store synchronization before admitting the holder.
	Synchronized bool

	// Epoch is the membership epoch current at this site when the op was
	// invoked; 0 on fixed-membership clusters (no epoch events recorded),
	// where the epoch checker is inert.
	Epoch int64

	Note string // free-form detail (failover target, cache source, …)
	Err  string // empty on success
}

// Failed reports whether the operation returned an error.
func (o Op) Failed() bool { return o.Err != "" }

// String renders the op as one history line.
func (o Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-4d %12v..%-12v %-7s %-13s %s/%d", o.ID, o.Inv, o.Resp, o.Site, o.Kind, o.Key, o.Ref)
	switch o.Kind {
	case KindPut, KindDelete, KindGet, KindSync, KindEventualPut, KindEventualGet:
		if o.Present {
			fmt.Fprintf(&b, " value=%q", o.Value)
		} else {
			b.WriteString(" value=<absent>")
		}
	}
	if o.TS != 0 {
		fmt.Fprintf(&b, " ts=%d", o.TS)
	}
	if o.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", o.Epoch)
	}
	if o.Kind == KindAcquire {
		fmt.Fprintf(&b, " synchronized=%t", o.Synchronized)
	}
	if o.Note != "" {
		fmt.Fprintf(&b, " note=%s", o.Note)
	}
	if o.Err != "" {
		fmt.Fprintf(&b, " err=%q", o.Err)
	}
	return b.String()
}

// Recorder accumulates a history. All methods are safe from any task, and
// every method on a nil *Recorder is a no-op.
type Recorder struct {
	rt sim.Runtime

	// epoch is the membership epoch ops are stamped with at Begin. It stays
	// 0 (no stamp) until the first EpochEvent, so fixed-membership clusters
	// record byte-identical histories with or without this feature.
	epoch atomic.Int64

	// mon, when attached, observes every completed op online — the live
	// consistency monitor behind adaptive reads. Nil (one atomic load per
	// End) on every recorder that never called Attach.
	mon atomic.Pointer[Monitor]

	mu   sync.Mutex
	ops  []Op
	next uint64
}

// Attach connects an online consistency monitor: every op appended from now
// on (except the monitor's own KindMonitor events) is fed to m.observe after
// the recorder's lock is released.
func (r *Recorder) Attach(m *Monitor) {
	if r == nil || m == nil {
		return
	}
	m.rec = r
	r.mon.Store(m)
}

// Monitor returns the attached consistency monitor, or nil.
func (r *Recorder) Monitor() *Monitor {
	if r == nil {
		return nil
	}
	return r.mon.Load()
}

// New builds an enabled recorder clocked by rt.
func New(rt sim.Runtime) *Recorder { return &Recorder{rt: rt} }

// Enabled reports whether recording is on (false for the nil recorder).
func (r *Recorder) Enabled() bool { return r != nil }

// Call is one in-flight operation being recorded; obtained from Begin,
// finished with End. All methods on a nil *Call are no-ops.
type Call struct {
	r  *Recorder
	op Op
}

// Begin opens an operation record at the current time. On a nil recorder it
// returns nil (and the entire call chain costs nothing).
func (r *Recorder) Begin(site string, kind Kind, key string, ref int64) *Call {
	if r == nil {
		return nil
	}
	return &Call{r: r, op: Op{Site: site, Kind: kind, Key: key, Ref: ref, Inv: r.rt.Now(), Epoch: r.epoch.Load()}}
}

// Value records the value written or observed. The bytes are copied.
func (c *Call) Value(v []byte, present bool) *Call {
	if c == nil {
		return nil
	}
	if v != nil {
		v = append([]byte(nil), v...)
	}
	c.op.Value, c.op.Present = v, present
	return c
}

// TS records the v2s stamp a write carried.
func (c *Call) TS(ts int64) *Call {
	if c == nil {
		return nil
	}
	c.op.TS = ts
	return c
}

// EpochNow re-stamps the op with the epoch current at the time of the call
// rather than at Begin. Acquires use it on success: a contended acquire can
// wait in the queue across an epoch change and only be granted after it, and
// the epoch the grant was certified under — the one the epoch-span rule must
// judge the section by — is the one at grant time, not at enqueue time.
func (c *Call) EpochNow() *Call {
	if c == nil {
		return nil
	}
	c.op.Epoch = c.r.epoch.Load()
	return c
}

// Synchronized marks a grant that ran the data-store synchronization.
func (c *Call) Synchronized(ok bool) *Call {
	if c == nil {
		return nil
	}
	c.op.Synchronized = ok
	return c
}

// Note attaches free-form detail.
func (c *Call) Note(note string) *Call {
	if c == nil {
		return nil
	}
	c.op.Note = note
	return c
}

// End closes the record with the operation's outcome and appends it to the
// history. Ops are numbered in completion order.
func (c *Call) End(err error) {
	if c == nil {
		return
	}
	c.op.Resp = c.r.rt.Now()
	if err != nil {
		c.op.Err = err.Error()
	}
	c.r.mu.Lock()
	c.r.next++
	c.op.ID = c.r.next
	c.r.ops = append(c.r.ops, c.op)
	c.r.mu.Unlock()
	if m := c.r.mon.Load(); m != nil {
		m.observe(c.op)
	}
}

// Event records an instantaneous operation (failover decisions and other
// point events).
func (r *Recorder) Event(site string, kind Kind, key string, ref int64, note string) {
	if r == nil {
		return
	}
	now := r.rt.Now()
	op := Op{
		Site: site, Kind: kind, Key: key, Ref: ref,
		Inv: now, Resp: now, Note: note, Epoch: r.epoch.Load(),
	}
	r.mu.Lock()
	r.next++
	op.ID = r.next
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	if m := r.mon.Load(); m != nil && kind != KindMonitor {
		m.observe(op)
	}
}

// EpochEvent records a membership epoch becoming visible at site and makes
// epoch the stamp of every subsequently begun op. The member set (and the
// rf it was applied with) is encoded into the op's Note so the epoch
// checker can re-derive each epoch's placement from the history alone.
func (r *Recorder) EpochEvent(site string, epoch int64, rf int, members []placement.Node) {
	if r == nil {
		return
	}
	r.epoch.Store(epoch)
	now := r.rt.Now()
	r.mu.Lock()
	r.next++
	r.ops = append(r.ops, Op{
		ID: r.next, Site: site, Kind: KindEpoch,
		Inv: now, Resp: now, Epoch: epoch, Note: encodeEpochNote(rf, members),
	})
	r.mu.Unlock()
}

// Ops returns a copy of the recorded history in completion order.
func (r *Recorder) Ops() []Op {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Len returns the number of recorded ops.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Reset discards the history (between explorer schedules reusing a world).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ops, r.next = nil, 0
	r.mu.Unlock()
}

// Render formats a slice of ops as an aligned multi-line history, one op
// per line, in completion order — the form violations embed in repro files.
func Render(ops []Op) string {
	var b strings.Builder
	for _, o := range ops {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}
