package history

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	rt := sim.New(1)
	rec := New(rt)
	if !rec.Enabled() {
		t.Fatal("recorder should be enabled")
	}
	err := rt.Run(func() {
		c := rec.Begin("site-a", KindPut, "k", 3).Value([]byte("v"), true).TS(42)
		rt.Sleep(5 * time.Millisecond)
		c.End(nil)
		c2 := rec.Begin("site-b", KindGet, "k", 3)
		rt.Sleep(time.Millisecond)
		c2.Value(nil, false).End(errors.New("boom"))
		rec.Event("site-a", KindFailover, "k", 3, "site-a->site-b")
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) != 3 || rec.Len() != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	put := ops[0]
	if put.ID != 1 || put.Kind != KindPut || put.Site != "site-a" || put.Key != "k" || put.Ref != 3 {
		t.Fatalf("bad put op: %+v", put)
	}
	if put.Inv != 0 || put.Resp != 5*time.Millisecond || string(put.Value) != "v" || !put.Present || put.TS != 42 || put.Failed() {
		t.Fatalf("bad put op: %+v", put)
	}
	get := ops[1]
	if !get.Failed() || get.Err != "boom" || get.Present || get.Inv != 5*time.Millisecond || get.Resp != 6*time.Millisecond {
		t.Fatalf("bad get op: %+v", get)
	}
	ev := ops[2]
	if ev.Kind != KindFailover || ev.Inv != ev.Resp || ev.Note != "site-a->site-b" {
		t.Fatalf("bad event op: %+v", ev)
	}

	// The recorder copies value bytes at record time.
	rt2 := sim.New(2)
	rec2 := New(rt2)
	if err := rt2.Run(func() {
		buf := []byte("orig")
		rec2.Begin("s", KindPut, "k", 1).Value(buf, true).End(nil)
		copy(buf, "XXXX")
	}); err != nil {
		t.Fatal(err)
	}
	if got := string(rec2.Ops()[0].Value); got != "orig" {
		t.Fatalf("value aliased caller buffer: %q", got)
	}

	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("reset should clear ops")
	}
}

// TestNilRecorderZeroAlloc proves the disabled-recorder contract: the whole
// record chain on a nil *Recorder performs zero allocations, like a nil
// *obs.Obs.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	v := []byte("payload")
	allocs := testing.AllocsPerRun(100, func() {
		c := rec.Begin("site-a", KindPut, "key", 7)
		c.Value(v, true).TS(99).Synchronized(true).Note("n")
		c.End(nil)
		rec.Event("site-a", KindFailover, "key", 7, "x")
		_ = rec.Ops()
		_ = rec.Len()
		rec.Reset()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per op, want 0", allocs)
	}
}

func TestRenderAndStrings(t *testing.T) {
	ops := finish([]Op{
		withValue(mk(KindPut, 1, 10*us, 20*us), "a", 1010),
		mk(KindRelease, 1, 30*us, 40*us),
	})
	out := Render(ops)
	if !strings.Contains(out, "criticalPut") || !strings.Contains(out, `value="a"`) || !strings.Contains(out, "ts=1010") {
		t.Fatalf("render missing fields:\n%s", out)
	}
	for k := KindAcquire; k <= KindEpoch; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	fr := mk(KindForcedRelease, 2, 0, us)
	fr.Err = "nope"
	if s := fr.String(); !strings.Contains(s, `err="nope"`) {
		t.Fatalf("failed op render: %s", s)
	}
}
