package history

import (
	"strings"
	"testing"
)

// Broken-history fixtures for the lease and adaptive-read rules: each rule
// gets one deliberately violating history (the checker must name it) and one
// correct-protocol variant (the rule must stay quiet).

func noted(o Op, note string) Op {
	o.Note = note
	return o
}

// leaseSection is a clean lease-mode section: grant at site-a, a write, a
// lease-served read of the section's own value, release.
func leaseSection() []Op {
	return []Op{
		mk(KindAcquire, 1, 0, 10*us),
		withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)),
		noted(withValue(mk(KindGet, 1, 40*us, 50*us), "a", 0), NoteLease),
		mk(KindRelease, 1, 60*us, 70*us),
	}
}

func TestECFLeaseClean(t *testing.T) {
	ops := finish(leaseSection())
	if res := Check(ops, CheckOptions{}); !res.Ok() {
		t.Fatalf("clean lease history flagged: [%s]", rules(res.Violations))
	}
}

// TestECFLeaseOrder: a lease-served read at a site that never certified a
// grant of the lockRef read outside any lease window.
func TestECFLeaseOrder(t *testing.T) {
	ops := leaseSection()
	stray := noted(withValue(mk(KindGet, 1, 42*us, 52*us), "a", 0), NoteLease)
	stray.Site = "site-b" // no grant of ref 1 ever certified here
	ops = finish(append(ops, stray))
	got := rules(CheckECF(ops))
	if !strings.Contains(got, "lease-order") {
		t.Fatalf("foreign-site lease read not flagged: [%s]", got)
	}
}

// TestECFLeaseWindow: lease reads that begin after the section's release —
// voluntary or forced — completed are use-after-revoke.
func TestECFLeaseWindow(t *testing.T) {
	late := noted(withValue(mk(KindGet, 1, 80*us, 90*us), "a", 0), NoteLease)
	ops := finish(append(leaseSection(), late))
	vs := CheckECF(ops)
	if got := rules(vs); !strings.Contains(got, "lease-window") {
		t.Fatalf("post-release lease read not flagged: [%s]", got)
	}
	// The violation names the read and the release that revoked the lease.
	for _, v := range vs {
		if v.Rule == "lease-window" {
			if len(v.Ops) != 2 || v.Ops[0].Kind != KindGet || v.Ops[1].Kind != KindRelease {
				t.Fatalf("lease-window ops: %+v", v.Ops)
			}
		}
	}

	// Forced-release variant: preemption revokes the lease the same way.
	fr := mk(KindForcedRelease, 1, 60*us, 70*us)
	fr.TS = tsForced(1)
	g2 := mk(KindAcquire, 2, 75*us, 95*us)
	g2.Synchronized = true
	lateForced := noted(withValue(mk(KindGet, 1, 100*us, 110*us), "a", 0), NoteLease)
	forcedOps := finish([]Op{
		mk(KindAcquire, 1, 0, 10*us),
		withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)),
		fr, g2, lateForced,
	})
	if got := rules(CheckECF(forcedOps)); !strings.Contains(got, "lease-window") {
		t.Fatalf("post-preemption lease read not flagged: [%s]", got)
	}
}

// TestECFLeaseEpoch: a lease serving across an epoch change is certified only
// if the key's replica set did not move — the epoch-span bar applied to the
// lease window.
func TestECFLeaseEpoch(t *testing.T) {
	moved, unmoved := epochKeys(t)
	section := func(key string) []Op {
		return finish([]Op{
			epochEv("ohio", 1, epochMembers1, 0),
			at(mk(KindAcquire, 1, 5*us, 10*us), "ohio", key, 1),
			at(withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)), "ohio", key, 1),
			epochEv("ohio", 2, epochMembers2, 40*us),
			at(noted(withValue(mk(KindGet, 1, 50*us, 60*us), "a", 0), NoteLease), "ohio", key, 2),
			at(mk(KindRelease, 1, 70*us, 80*us), "ohio", key, 2),
		})
	}
	if got := rules(CheckECF(section(unmoved))); strings.Contains(got, "lease-epoch") {
		t.Fatalf("unmoved-key cross-epoch lease read flagged: [%s]", got)
	}
	if got := rules(CheckECF(section(moved))); !strings.Contains(got, "lease-epoch") {
		t.Fatalf("moved-key cross-epoch lease read not flagged: [%s]", got)
	}
}

// TestECFMonitorCoverage: an attributably stale weak read is exempt from
// strict freshness but must be matched by a monitor staleness event at its
// site; an unmatched one means the online monitor missed a violation the
// offline checker can prove.
func TestECFMonitorCoverage(t *testing.T) {
	base := []Op{
		mk(KindAcquire, 1, 0, 10*us),
		withValue(mk(KindPut, 1, 20*us, 30*us), "v1", ts(1, 20)),
		mk(KindRelease, 1, 40*us, 50*us),
		mk(KindAcquire, 2, 60*us, 70*us),
		withValue(mk(KindPut, 2, 80*us, 90*us), "v2", ts(2, 10)),
		// Weak read one write behind: v1 completed, v2 completed and newer.
		noted(withValue(mk(KindGet, 2, 100*us, 110*us), "v1", 0), NoteWeak),
	}
	vs := CheckECF(finish(append([]Op(nil), base...)))
	got := rules(vs)
	if !strings.Contains(got, "monitor-coverage") {
		t.Fatalf("uncovered stale weak read not flagged: [%s]", got)
	}
	if strings.Contains(got, "freshness") {
		t.Fatalf("weak read wrongly held to strict freshness: [%s]", got)
	}

	// The same history with the monitor's staleness event is certified.
	ev := Op{Kind: KindMonitor, Site: "site-a", Key: "k", Ref: 2,
		Inv: 110 * us, Resp: 110 * us, Note: NoteStaleness}
	covered := finish(append(append([]Op(nil), base...), ev))
	if got := rules(CheckECF(covered)); got != "" {
		t.Fatalf("covered stale weak read flagged: [%s]", got)
	}

	// A weak read of the freshest value needs no coverage at all.
	fresh := append([]Op(nil), base...)
	fresh[5] = noted(withValue(mk(KindGet, 2, 100*us, 110*us), "v2", 0), NoteWeak)
	if got := rules(CheckECF(finish(fresh))); got != "" {
		t.Fatalf("fresh weak read flagged: [%s]", got)
	}
}
