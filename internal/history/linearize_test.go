package history

import (
	"testing"
	"time"
)

// lin runs the WGL search on a single-key op slice.
func lin(t *testing.T, ops []Op) ([]Violation, bool) {
	t.Helper()
	kh := partition(finish(ops))["k"]
	if kh == nil {
		t.Fatal("no ops for key k")
	}
	return linearizeKey(kh, 0)
}

func TestLinearizeSequential(t *testing.T) {
	vs, decided := lin(t, []Op{
		withValue(mk(KindPut, 1, 0, 10*us), "a", ts(1, 0)),
		withValue(mk(KindGet, 1, 20*us, 30*us), "a", 0),
		withValue(mk(KindPut, 1, 40*us, 50*us), "b", ts(1, 40)),
		withValue(mk(KindGet, 1, 60*us, 70*us), "b", 0),
	})
	if len(vs) != 0 || !decided {
		t.Fatalf("sequential history not linearizable: %v", vs)
	}
}

func TestLinearizeStaleRead(t *testing.T) {
	// Read of "a" strictly after write "b" completed: no linearization.
	vs, decided := lin(t, []Op{
		withValue(mk(KindPut, 1, 0, 10*us), "a", ts(1, 0)),
		withValue(mk(KindPut, 1, 20*us, 30*us), "b", ts(1, 20)),
		withValue(mk(KindGet, 1, 40*us, 50*us), "a", 0),
	})
	if !decided {
		t.Fatal("tiny history hit budget")
	}
	if len(vs) != 1 || vs[0].Rule != "linearizability" {
		t.Fatalf("stale read not flagged: %v", vs)
	}
	if len(vs[0].Ops) == 0 {
		t.Fatal("violation carries no ops")
	}
}

func TestLinearizeConcurrentWrites(t *testing.T) {
	// Two overlapping writes: either order is a valid linearization, so
	// reads may observe them in either sequence.
	vs, _ := lin(t, []Op{
		withValue(mk(KindPut, 1, 0, 100*us), "a", ts(1, 0)),
		withValue(mk(KindPut, 1, 0, 100*us), "b", ts(1, 1)),
		withValue(mk(KindGet, 1, 40*us, 50*us), "b", 0),
		withValue(mk(KindGet, 1, 120*us, 130*us), "b", 0),
	})
	if len(vs) != 0 {
		t.Fatalf("valid concurrent-write history flagged: %v", vs)
	}
}

func TestLinearizeFailedWriteSettlesLate(t *testing.T) {
	// A timed-out write may take effect long after its response — reading
	// it later is linearizable (the op's interval extends to infinity)...
	ok := []Op{
		withValue(mk(KindPut, 1, 0, 10*us), "a", ts(1, 0)),
		failed(withValue(mk(KindPut, 1, 20*us, 30*us), "b", ts(1, 20)), "store: timeout"),
		withValue(mk(KindGet, 1, 100*us, 110*us), "b", 0),
	}
	if vs, _ := lin(t, ok); len(vs) != 0 {
		t.Fatalf("late-settling failed write flagged: %v", vs)
	}
	// ...but it cannot explain a read of an older value after a newer one
	// was observed.
	bad := append(ok, withValue(mk(KindGet, 1, 120*us, 130*us), "a", 0))
	if vs, _ := lin(t, bad); len(vs) != 1 {
		t.Fatalf("a-after-b read not flagged: %v", vs)
	}
}

func TestLinearizeStaleWriteSkippable(t *testing.T) {
	// A write issued after its lockRef's forced release is committed but
	// masked by the next grant's synchronize; the search may skip it.
	fr := mk(KindForcedRelease, 1, 15*us, 20*us)
	fr.TS = tsForced(1)
	ops := []Op{
		withValue(mk(KindPut, 1, 0, 10*us), "a", ts(1, 0)),
		fr,
		withValue(mk(KindSync, 2, 22*us, 28*us), "a", ts(2, 0)),
		withValue(mk(KindPut, 1, 30*us, 40*us), "c", ts(1, 30)), // stale-issued, nobody reads it
		withValue(mk(KindGet, 2, 50*us, 60*us), "a", 0),
	}
	vs, decided := lin(t, ops)
	if len(vs) != 0 || !decided {
		t.Fatalf("masked stale write not skippable: %v", vs)
	}
}

func TestLinearizeBudget(t *testing.T) {
	// An adversarial all-concurrent history with an unsatisfiable read
	// forces the search to exhaust a tiny budget and report undecided.
	var ops []Op
	for i := 0; i < 16; i++ {
		ops = append(ops, withValue(mk(KindPut, 1, 0, 1000*us), string(rune('a'+i)), ts(1, int64(i))))
	}
	ops = append(ops, withValue(mk(KindGet, 1, 2000*us, 2100*us), "zzz", 0))
	kh := partition(finish(ops))["k"]
	if _, decided := linearizeKey(kh, 500); decided {
		t.Fatal("expected budget exhaustion on adversarial history")
	}
}

func TestLinearizeDeleteTombstone(t *testing.T) {
	del := mk(KindDelete, 1, 20*us, 30*us)
	del.TS = ts(1, 20)
	vs, _ := lin(t, []Op{
		withValue(mk(KindPut, 1, 0, 10*us), "a", ts(1, 0)),
		del,
		mk(KindGet, 1, 40*us, 50*us), // reads absent
	})
	if len(vs) != 0 {
		t.Fatalf("delete/absent-read history flagged: %v", vs)
	}
	_ = time.Microsecond
}
