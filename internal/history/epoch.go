package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/placement"
	"repro/internal/transport"
)

// The epoch checker extends the ECF contract to live membership (epoch-
// versioned reconfiguration): critical sections must be *certified* across
// epoch changes. Ops are stamped with the membership epoch current at their
// invocation — except successful acquires, which stamp at response, the
// moment the grant is certified — and each epoch change is a KindEpoch
// event whose Note records
// the member set it placed, so the checker re-derives every epoch's
// placement itself (via package placement) instead of trusting the store
// under test. Rules, over the whole history:
//
//   - epoch-conflict: two sites must never disagree on what an epoch means —
//     every KindEpoch event for epoch e carries the same rf and member set
//     (the config log is a single serial order).
//   - epoch-mono: per site, epoch stamps are non-decreasing in invocation
//     order; a site regressing to an older epoch would re-admit placements
//     the cluster has moved past.
//   - epoch-member: a successful grant or critical-data op stamped with
//     epoch e must run at a site that e's member set still includes — a
//     retired site continuing to serve sections is a reconfiguration leak.
//     Releases (voluntary and forced) are exempt: they are exactly the
//     cleanup a fenced site performs while draining its last holders.
//   - epoch-span: a section granted under epoch N may complete ops under a
//     later epoch M only if N's and M's placements agree on the key's
//     replica set (the silent-adoption case). If the key moved, the op had
//     to fail retryably (the epoch fence); a *successful* cross-epoch op on
//     a moved key means a section ran against two different replica sets —
//     its reads and writes may have quorums that do not intersect, the
//     signature reconfiguration violation.
//
// Histories with no KindEpoch events (fixed-membership clusters) stamp every
// op with epoch 0 and all four rules are inert.

// encodeEpochNote renders an epoch's placement inputs into the one-line
// Note format parseEpochNote reads back: "rf=3 members=ohio:0,oregon:2".
func encodeEpochNote(rf int, members []placement.Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rf=%d members=", rf)
	for i, m := range members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(m.Site)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(m.ID)))
	}
	return b.String()
}

// parseEpochNote inverts encodeEpochNote. ok is false on any malformation
// (a hand-edited repro file); the checker then skips placement-dependent
// rules for that epoch rather than guessing.
func parseEpochNote(note string) (rf int, members []placement.Node, ok bool) {
	rest, found := strings.CutPrefix(note, "rf=")
	if !found {
		return 0, nil, false
	}
	rfStr, memStr, found := strings.Cut(rest, " members=")
	if !found {
		return 0, nil, false
	}
	rf, err := strconv.Atoi(rfStr)
	if err != nil || rf <= 0 {
		return 0, nil, false
	}
	for _, part := range strings.Split(memStr, ",") {
		if part == "" {
			continue
		}
		site, idStr, found := strings.Cut(part, ":")
		if !found || site == "" {
			return 0, nil, false
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return 0, nil, false
		}
		members = append(members, placement.Node{ID: transport.NodeID(id), Site: site})
	}
	return rf, members, len(members) > 0
}

// epochInfo is one epoch's recorded placement inputs plus its lazily built
// ring.
type epochInfo struct {
	op      Op // first KindEpoch event announcing this epoch
	rf      int
	members []placement.Node
	ring    *placement.Ring
}

func (e *epochInfo) placement() *placement.Ring {
	if e.ring == nil {
		e.ring = placement.New(e.members, e.rf)
	}
	return e.ring
}

// hasSite reports whether the epoch's member set includes site.
func (e *epochInfo) hasSite(site string) bool {
	for _, m := range e.members {
		if m.Site == site {
			return true
		}
	}
	return false
}

func sameMembers(a, b []placement.Node) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]placement.Node(nil), a...)
	bs := append([]placement.Node(nil), b...)
	less := func(s []placement.Node) func(i, j int) bool {
		return func(i, j int) bool { return s[i].ID < s[j].ID }
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sameReplicas(a, b []transport.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, id := range a {
		found := false
		for _, x := range b {
			if x == id {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// epochTable collects the epoch table from KindEpoch events, flagging
// announcements that disagree on what an epoch means. Shared by checkEpochs
// and the per-key lease-epoch rule.
func epochTable(ops []Op) (epochs map[int64]*epochInfo, conflicts []Violation) {
	epochs = make(map[int64]*epochInfo)
	for _, o := range ops {
		if o.Kind != KindEpoch || o.Failed() {
			continue
		}
		rf, members, ok := parseEpochNote(o.Note)
		if !ok {
			continue
		}
		if prev, dup := epochs[o.Epoch]; dup {
			if prev.rf != rf || !sameMembers(prev.members, members) {
				conflicts = append(conflicts, Violation{
					Rule:   "epoch-conflict",
					Detail: fmt.Sprintf("epoch %d announced with two different member sets", o.Epoch),
					Ops:    []Op{o, prev.op},
				})
			}
			continue
		}
		epochs[o.Epoch] = &epochInfo{op: o, rf: rf, members: members}
	}
	return epochs, conflicts
}

// checkEpochs runs the four epoch rules over a full history.
func checkEpochs(ops []Op) []Violation {
	epochs, vs := epochTable(ops)
	any := false
	for _, o := range ops {
		if o.Epoch != 0 {
			any = true
			break
		}
	}
	if !any {
		return vs // fixed-membership history: rules inert
	}

	// epoch-mono: per site, stamps non-decreasing in stamp order. Most ops
	// stamp their epoch at invocation; acquires stamp at response (the
	// grant is certified when it is issued, and a contended acquire can
	// queue across an epoch change), so each op is ordered by the moment
	// its stamp was taken.
	stampAt := func(o Op) time.Duration {
		if o.Kind == KindAcquire {
			return o.Resp
		}
		return o.Inv
	}
	bySite := make(map[string][]Op)
	for _, o := range ops {
		if o.Epoch != 0 {
			bySite[o.Site] = append(bySite[o.Site], o)
		}
	}
	sites := make([]string, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		sos := bySite[s]
		sort.Slice(sos, func(i, j int) bool {
			if stampAt(sos[i]) != stampAt(sos[j]) {
				return stampAt(sos[i]) < stampAt(sos[j])
			}
			return sos[i].ID < sos[j].ID
		})
		for i := 1; i < len(sos); i++ {
			if sos[i].Epoch < sos[i-1].Epoch {
				vs = append(vs, Violation{
					Rule: "epoch-mono",
					Key:  sos[i].Key,
					Detail: fmt.Sprintf("site %s regressed from epoch %d to epoch %d",
						s, sos[i-1].Epoch, sos[i].Epoch),
					Ops: []Op{sos[i], sos[i-1]},
				})
				break // one violation per site names the first regression
			}
		}
	}

	// epoch-member: sections only run at sites the epoch still includes.
	for _, o := range ops {
		if o.Epoch == 0 || o.Failed() {
			continue
		}
		switch o.Kind {
		case KindAcquire, KindPut, KindDelete, KindGet, KindSync:
		default:
			continue
		}
		info := epochs[o.Epoch]
		if info == nil || info.hasSite(o.Site) {
			continue
		}
		vs = append(vs, Violation{
			Rule: "epoch-member",
			Key:  o.Key,
			Detail: fmt.Sprintf("site %s served %s under epoch %d, which retired it",
				o.Site, o.Kind, o.Epoch),
			Ops: []Op{o, info.op},
		})
	}

	// epoch-span: certify sections that span an epoch change. The grant
	// epoch is the earliest successful acquire per (key, ref).
	type section struct {
		key string
		ref int64
	}
	grantEpoch := make(map[section]Op)
	for _, o := range ops {
		if o.Kind != KindAcquire || o.Failed() || o.Epoch == 0 {
			continue
		}
		s := section{o.Key, o.Ref}
		if g, ok := grantEpoch[s]; !ok || o.Resp < g.Resp {
			grantEpoch[s] = o
		}
	}
	for _, o := range ops {
		if o.Failed() || o.Epoch == 0 {
			continue
		}
		switch o.Kind {
		case KindPut, KindDelete, KindGet, KindSync:
		default:
			continue
		}
		g, ok := grantEpoch[section{o.Key, o.Ref}]
		if !ok || o.Epoch == g.Epoch {
			continue
		}
		from, to := epochs[g.Epoch], epochs[o.Epoch]
		if from == nil || to == nil {
			continue // unknown epoch: cannot re-derive placement, stay silent
		}
		if sameReplicas(from.placement().ReplicasFor(o.Key), to.placement().ReplicasFor(o.Key)) {
			continue // silent adoption: the key's replica set is unchanged
		}
		vs = append(vs, Violation{
			Rule: "epoch-span",
			Key:  o.Key,
			Detail: fmt.Sprintf("lockRef %d was granted under epoch %d but completed %s under epoch %d, which moved the key's replicas",
				o.Ref, g.Epoch, o.Kind, o.Epoch),
			Ops: []Op{o, g},
		})
	}
	return vs
}
