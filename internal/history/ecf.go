package history

import (
	"bytes"
	"fmt"
	"sort"
	"time"
)

// The ECF checker validates the paper's §III contract directly on a recorded
// history, per key:
//
//   - freshness: every successful critical get returns the latest committed
//     value — the max-v2s successful write that responded before the read was
//     invoked — or a value whose visibility is genuinely ambiguous in real
//     time (a concurrent write, or a timed-out write that may still settle).
//     A timed-out or stale-issued write whose lockRef was forcibly released
//     before the reader's grant is *dead*: the grant-time synchronize
//     re-stamps the surviving value above the old ref's v2s window, so the
//     dead write can never win a quorum merge again. Reading one is the
//     signature ECF violation (a stale lockRef's write becoming visible).
//   - ts-order: a lockRef's committed writes carry strictly increasing v2s
//     stamps in issue order; two different values at one stamp would make
//     the last-writer-wins merge order-ambiguous.
//   - ref-window: v2s sequencing stays monotone across failover — every
//     stamp of lockRef r (writes, synchronize, the forced-release δ mark)
//     is below every stamp of any later lockRef r' > r.
//   - sync-skip: a grant that follows a forced release with no grant in
//     between must have performed the data-store synchronization (§IV-B);
//     the δ-stamped synchFlag is still set and only synchronize clears it.
//   - release-ack: a voluntary release must not be invoked while a critical
//     write of the same lockRef is still in flight (flush-before-release).
//   - grant-order: first grants happen in lockRef order — the lock queue is
//     FIFO over refs, so a fresh grant of a higher ref strictly after a
//     fresh grant of a lower one.
//   - echo: session reads served from the holder cache or write buffer must
//     echo a value that belongs to the section — the grant seed or one of
//     the section's own writes — never another lockRef's value.
//   - lease-order: a lease-served read (Note "lease") must follow, at the
//     same site, a certified grant of its lockRef — the site lease is issued
//     by the grant, so a lease read with no prior local grant read outside
//     any live lease window.
//   - lease-window: no lease-served read after the section ended — a
//     voluntary release or an effective forced release of the lockRef that
//     completed before the read began revoked the lease.
//   - lease-epoch: a lease-served read stamped with a later epoch than its
//     grant is certified only if the key's replica set is unchanged between
//     the two epochs (same silent-adoption bar as epoch-span); a moved key
//     means the lease outlived its placement fence.
//   - monitor-coverage: adaptive weak reads (Note "one") are exempt from
//     strict freshness — serving at ONE is the point — but every weak read
//     that is *attributably stale* (its value matches a write that completed
//     before the read began while a strictly newer write had also completed,
//     both within the monitor's recent-write ring) must be matched by a
//     KindMonitor staleness event at the same site: the online monitor may
//     never miss a violation the offline checker can prove.
//
// Stale lockRefs *can* commit quorum writes in a correct run (the holder
// check reads an eventually-consistent local lock view), so "stale lockRefs
// never commit writes" is checked as observability: such writes are excluded
// from the committed set and any read returning one is a freshness
// violation. See DESIGN.md "History checking" for the soundness argument.

// Violation is one checker finding: the rule broken, the key, the offending
// ops (primary first), and a human-readable detail line.
type Violation struct {
	Rule   string
	Key    string
	Detail string
	Ops    []Op
}

// String renders the violation with its offending ops, one per line.
func (v Violation) String() string {
	s := fmt.Sprintf("ECF violation [%s] key %q: %s", v.Rule, v.Key, v.Detail)
	for _, o := range v.Ops {
		s += "\n  " + o.String()
	}
	return s
}

// Result summarizes one full history check.
type Result struct {
	Violations []Violation
	Keys       int      // keys with critical activity examined
	Ops        int      // ops consumed
	Skipped    []string // keys skipped (mixed eventual/critical traffic)
	Unbounded  []string // keys whose WGL search exceeded the node budget
}

// Ok reports a clean, fully-decided check.
func (r Result) Ok() bool { return len(r.Violations) == 0 && len(r.Unbounded) == 0 }

// CheckOptions tunes Check.
type CheckOptions struct {
	// SkipLinearize disables the per-key WGL search (the deterministic ECF
	// rules still run).
	SkipLinearize bool
	// WGLBudget caps the states explored per key; 0 means a default that
	// decides every lock-sequential history instantly.
	WGLBudget int
}

// Check runs the ECF rules and (unless disabled) the WGL linearizability
// search over a recorded history.
func Check(ops []Op, opt CheckOptions) Result {
	res := Result{Ops: len(ops)}
	// Global rules first: the epoch checker certifies membership changes
	// across the whole history (see epoch.go) before the per-key ECF rules.
	res.Violations = append(res.Violations, checkEpochs(ops)...)
	epochs, _ := epochTable(ops) // conflicts already reported by checkEpochs
	keys := partition(ops)
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		kh := keys[name]
		kh.epochs = epochs
		res.Keys++
		if kh.mixed {
			res.Skipped = append(res.Skipped, name)
			continue
		}
		res.Violations = append(res.Violations, kh.checkECF()...)
		if !opt.SkipLinearize {
			v, decided := linearizeKey(kh, opt.WGLBudget)
			res.Violations = append(res.Violations, v...)
			if !decided {
				res.Unbounded = append(res.Unbounded, name)
			}
		}
	}
	return res
}

// CheckECF runs only the deterministic ECF rules (no WGL search).
func CheckECF(ops []Op) []Violation {
	return Check(ops, CheckOptions{SkipLinearize: true}).Violations
}

// keyHistory is the per-key slice of a history, pre-sorted for the rules.
type keyHistory struct {
	key       string
	grants    []Op                    // successful acquires, by Resp
	first     map[int64]Op            // earliest successful grant per ref
	forced    map[int64]time.Duration // earliest effective forced release per ref
	forcedOps []Op                    // effective forced releases, by Resp
	writes    []Op                    // successful puts/deletes/syncs, stamped
	failed    []Op                    // failed stamped writes (may still settle)
	gets      []Op                    // successful critical gets
	releases  []Op                    // successful voluntary releases
	staleness []Op                    // monitor staleness events, by Resp
	mixed     bool                    // key also saw successful eventual puts
	epochs    map[int64]*epochInfo    // shared epoch table (lease-epoch rule)
}

// echoNote reports whether a get was served by the session layer from its
// holder cache or write buffer rather than a quorum read.
func echoNote(note string) bool { return note == "cache" || note == "buffer" }

func partition(ops []Op) map[string]*keyHistory {
	keys := make(map[string]*keyHistory)
	at := func(key string) *keyHistory {
		kh := keys[key]
		if kh == nil {
			kh = &keyHistory{key: key, first: make(map[int64]Op), forced: make(map[int64]time.Duration)}
			keys[key] = kh
		}
		return kh
	}
	for _, o := range ops {
		switch o.Kind {
		case KindAcquire:
			if !o.Failed() {
				kh := at(o.Key)
				kh.grants = append(kh.grants, o)
				if f, ok := kh.first[o.Ref]; !ok || o.Resp < f.Resp {
					kh.first[o.Ref] = o
				}
			}
		case KindRelease:
			if !o.Failed() {
				at(o.Key).releases = append(at(o.Key).releases, o)
			}
		case KindForcedRelease:
			if !o.Failed() {
				kh := at(o.Key)
				kh.forcedOps = append(kh.forcedOps, o)
				if f, ok := kh.forced[o.Ref]; !ok || o.Resp < f {
					kh.forced[o.Ref] = o.Resp
				}
			}
		case KindPut, KindDelete, KindSync:
			kh := at(o.Key)
			switch {
			case !o.Failed():
				kh.writes = append(kh.writes, o)
			case o.TS != 0:
				// Stamped failure: the quorum write was issued and may
				// still settle on a minority or via hinted handoff.
				// Unstamped failures never reached the store.
				kh.failed = append(kh.failed, o)
			}
		case KindGet:
			if !o.Failed() {
				at(o.Key).gets = append(at(o.Key).gets, o)
			}
		case KindEventualPut:
			if !o.Failed() {
				at(o.Key).mixed = true
			}
		case KindMonitor:
			if !o.Failed() && o.Note == NoteStaleness {
				at(o.Key).staleness = append(at(o.Key).staleness, o)
			}
		}
	}
	for _, kh := range keys {
		sort.Slice(kh.grants, func(i, j int) bool { return kh.grants[i].Resp < kh.grants[j].Resp })
		sort.Slice(kh.forcedOps, func(i, j int) bool { return kh.forcedOps[i].Resp < kh.forcedOps[j].Resp })
		sort.Slice(kh.staleness, func(i, j int) bool { return kh.staleness[i].Resp < kh.staleness[j].Resp })
		sort.Slice(kh.writes, func(i, j int) bool {
			a, b := kh.writes[i], kh.writes[j]
			if a.Inv != b.Inv {
				return a.Inv < b.Inv
			}
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			return a.ID < b.ID
		})
	}
	return keys
}

// staleIssued reports a write issued after its own lockRef was forcibly
// released: the next grant's synchronize outranks it, so under a correct
// protocol it is committed-but-masked.
func (kh *keyHistory) staleIssued(w Op) bool {
	f, ok := kh.forced[w.Ref]
	return ok && f <= w.Inv
}

// deadFor reports whether write w can no longer become visible to reader
// ref r: w's lockRef was forcibly released before r's grant completed, so
// the intervening synchronize re-stamped the surviving value above w.TS.
func (kh *keyHistory) deadFor(w Op, r int64) bool {
	if w.Ref == r {
		return false
	}
	grant, haveGrant := kh.first[r]
	if !haveGrant {
		return false
	}
	f, ok := kh.forced[w.Ref]
	return ok && f <= grant.Resp
}

func sameValue(aVal []byte, aPresent bool, bVal []byte, bPresent bool) bool {
	if aPresent != bPresent {
		return false
	}
	return !aPresent || bytes.Equal(aVal, bVal)
}

// wins mirrors store.Cell.wins: higher stamp wins; on a tie a tombstone
// beats a value and the lexically larger value beats the smaller.
func wins(a, b Op) bool {
	if a.TS != b.TS {
		return a.TS > b.TS
	}
	if a.Present != b.Present {
		return !a.Present
	}
	return bytes.Compare(a.Value, b.Value) > 0
}

func (kh *keyHistory) checkECF() []Violation {
	var vs []Violation
	vs = append(vs, kh.checkFreshness()...)
	vs = append(vs, kh.checkTSOrder()...)
	vs = append(vs, kh.checkRefWindows()...)
	vs = append(vs, kh.checkSyncSkip()...)
	vs = append(vs, kh.checkReleaseAck()...)
	vs = append(vs, kh.checkGrantOrder()...)
	vs = append(vs, kh.checkLease()...)
	vs = append(vs, kh.checkAdaptive()...)
	return vs
}

// checkFreshness is the core ECF rule: each quorum-backed critical get must
// return the latest committed value or a genuinely ambiguous one.
func (kh *keyHistory) checkFreshness() []Violation {
	var vs []Violation
	for _, g := range kh.gets {
		if echoNote(g.Note) {
			if v := kh.checkEcho(g); v != nil {
				vs = append(vs, *v)
			}
			continue
		}
		if g.Note == NoteWeak {
			continue // adaptive ONE read: judged by checkAdaptive instead
		}
		// The latest committed write: max v2s among successful writes that
		// responded before the read began, excluding committed-but-masked
		// stale-issued writes by other lockRefs.
		var mandatory Op
		haveMandatory := false
		for _, w := range kh.writes {
			if w.Resp > g.Inv {
				continue
			}
			if w.Ref != g.Ref && kh.staleIssued(w) {
				continue
			}
			if !haveMandatory || wins(w, mandatory) {
				mandatory, haveMandatory = w, true
			}
		}
		mandatoryPresent := haveMandatory && mandatory.Present
		if sameValue(g.Value, g.Present, mandatory.Value, mandatoryPresent) {
			continue
		}
		// Not the mandatory value: acceptable only if some higher-stamped
		// write is concurrent with the read, or timed out and not yet dead.
		acceptable := false
		for _, w := range kh.writes {
			if w.TS <= mandatory.TS && haveMandatory {
				continue
			}
			overlaps := w.Inv <= g.Resp && w.Resp > g.Inv
			masked := w.Ref != g.Ref && kh.staleIssued(w)
			if (overlaps || (masked && !kh.deadFor(w, g.Ref))) &&
				w.Inv <= g.Resp && sameValue(g.Value, g.Present, w.Value, w.Present) {
				acceptable = true
				break
			}
		}
		if !acceptable {
			for _, w := range kh.failed {
				if haveMandatory && w.TS <= mandatory.TS {
					continue
				}
				if w.Inv <= g.Resp && !kh.deadFor(w, g.Ref) &&
					sameValue(g.Value, g.Present, w.Value, w.Present) {
					acceptable = true
					break
				}
			}
		}
		if !acceptable {
			ops := []Op{g}
			if haveMandatory {
				ops = append(ops, mandatory)
			}
			ops = append(ops, kh.explainStale(g)...)
			vs = append(vs, Violation{
				Rule: "freshness",
				Key:  kh.key,
				Detail: fmt.Sprintf("critical get by lockRef %d returned %s; latest committed is %s",
					g.Ref, renderValue(g.Value, g.Present), renderValue(mandatory.Value, haveMandatory && mandatory.Present)),
				Ops: ops,
			})
		}
	}
	return vs
}

// explainStale finds the dead writes whose value the get echoed, so the
// violation shows *which* stale lockRef leaked through.
func (kh *keyHistory) explainStale(g Op) []Op {
	var ops []Op
	for _, w := range append(append([]Op(nil), kh.writes...), kh.failed...) {
		if kh.deadFor(w, g.Ref) && sameValue(g.Value, g.Present, w.Value, w.Present) {
			ops = append(ops, w)
			if f, ok := kh.forced[w.Ref]; ok {
				for _, fo := range kh.forcedOps {
					if fo.Ref == w.Ref && fo.Resp == f {
						ops = append(ops, fo)
						break
					}
				}
			}
		}
	}
	return ops
}

// checkEcho validates cache/buffer-served session reads: the value must
// belong to the section — the grant seed, one of the lockRef's own writes, or
// an earlier successful non-echo read of the same section (the session cache
// refreshes from in-section quorum reads; that prior read was itself
// freshness-checked, so echoing it is sound).
func (kh *keyHistory) checkEcho(g Op) *Violation {
	for _, gr := range kh.grants {
		if gr.Ref == g.Ref && sameValue(g.Value, g.Present, gr.Value, gr.Present) {
			return nil
		}
	}
	own := append(append([]Op(nil), kh.writes...), kh.failed...)
	for _, w := range own {
		if w.Ref == g.Ref && sameValue(g.Value, g.Present, w.Value, w.Present) {
			return nil
		}
	}
	for _, prior := range kh.gets {
		if prior.Ref == g.Ref && prior.ID != g.ID && !echoNote(prior.Note) &&
			!prior.Failed() && prior.Resp <= g.Inv &&
			sameValue(g.Value, g.Present, prior.Value, prior.Present) {
			return nil
		}
	}
	return &Violation{
		Rule: "echo",
		Key:  kh.key,
		Detail: fmt.Sprintf("%s-served read by lockRef %d returned %s, which is neither the grant seed, one of the section's own writes, nor an earlier read of the section",
			g.Note, g.Ref, renderValue(g.Value, g.Present)),
		Ops: []Op{g},
	}
}

// checkTSOrder: per lockRef, committed writes carry strictly increasing v2s
// stamps in issue order (equal stamps with different values are ambiguous
// under last-writer-wins and always a bug — e.g. a frozen elapsed clock).
func (kh *keyHistory) checkTSOrder() []Violation {
	var vs []Violation
	perRef := make(map[int64][]Op)
	for _, w := range kh.writes {
		if kh.staleIssued(w) {
			continue // stale writes legitimately stamp below the δ mark
		}
		perRef[w.Ref] = append(perRef[w.Ref], w)
	}
	for _, ws := range perRef {
		for i := 1; i < len(ws); i++ {
			a, b := ws[i-1], ws[i]
			if b.TS < a.TS {
				vs = append(vs, Violation{
					Rule:   "ts-order",
					Key:    kh.key,
					Detail: fmt.Sprintf("lockRef %d issued a later write with a smaller v2s stamp (%d after %d)", b.Ref, b.TS, a.TS),
					Ops:    []Op{b, a},
				})
			} else if b.TS == a.TS && !sameValue(a.Value, a.Present, b.Value, b.Present) {
				vs = append(vs, Violation{
					Rule:   "ts-order",
					Key:    kh.key,
					Detail: fmt.Sprintf("lockRef %d committed two different values at one v2s stamp %d; merge order is ambiguous", b.Ref, b.TS),
					Ops:    []Op{b, a},
				})
			}
		}
	}
	return vs
}

// checkRefWindows: every stamp of lockRef r sits below every stamp of any
// higher lockRef — the v2s window property that keeps sequencing monotone
// across failover and preemption.
func (kh *keyHistory) checkRefWindows() []Violation {
	type window struct{ min, max Op }
	wins := make(map[int64]*window)
	note := func(o Op) {
		if o.TS == 0 {
			return
		}
		w := wins[o.Ref]
		if w == nil {
			wins[o.Ref] = &window{min: o, max: o}
			return
		}
		if o.TS < w.min.TS {
			w.min = o
		}
		if o.TS > w.max.TS {
			w.max = o
		}
	}
	for _, o := range kh.writes {
		note(o)
	}
	for _, o := range kh.failed {
		note(o)
	}
	for _, o := range kh.forcedOps {
		note(o)
	}
	refs := make([]int64, 0, len(wins))
	for r := range wins {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	var vs []Violation
	for i := 1; i < len(refs); i++ {
		lo, hi := wins[refs[i-1]], wins[refs[i]]
		if lo.max.TS >= hi.min.TS {
			vs = append(vs, Violation{
				Rule: "ref-window",
				Key:  kh.key,
				Detail: fmt.Sprintf("lockRef %d stamped %d, at or above lockRef %d's stamp %d — v2s windows overlap",
					refs[i-1], lo.max.TS, refs[i], hi.min.TS),
				Ops: []Op{lo.max, hi.min},
			})
		}
	}
	return vs
}

// checkSyncSkip: the first grant after a forced release must have run the
// data-store synchronization — the δ mark is still set and nothing else
// clears it.
func (kh *keyHistory) checkSyncSkip() []Violation {
	firsts := make([]Op, 0, len(kh.first))
	for _, g := range kh.first {
		firsts = append(firsts, g)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i].Resp < firsts[j].Resp })
	// Concurrent preemptors may each record a forced release of the same ref;
	// the store treats those as one preemption (the duplicate's δ mark carries
	// the same v2sForced stamp and loses the LWW merge against any later clean
	// mark), so only the earliest release per ref creates an obligation.
	forced := make([]Op, 0, len(kh.forced))
	seen := make(map[int64]bool, len(kh.forced))
	for _, fo := range kh.forcedOps {
		if !seen[fo.Ref] {
			seen[fo.Ref] = true
			forced = append(forced, fo)
		}
	}
	var vs []Violation
	for i, g := range firsts {
		var f Op
		haveF := false
		for _, fo := range forced {
			if fo.Resp < g.Inv {
				f, haveF = fo, true
			}
		}
		if !haveF {
			continue
		}
		// An acquire spans enqueue (Inv) → grant (Resp), and the synchFlag
		// matters at grant time: any grant that lands after the forced
		// release and before g's own grant instant carries (and discharges)
		// the synchronization obligation, even if g was already enqueued
		// while it happened.
		intervening := false
		for _, h := range firsts[:i] {
			if h.Resp > f.Resp && h.Resp < g.Resp {
				intervening = true
				break
			}
		}
		if intervening || g.Synchronized {
			continue
		}
		vs = append(vs, Violation{
			Rule: "sync-skip",
			Key:  kh.key,
			Detail: fmt.Sprintf("grant of lockRef %d followed the forced release of lockRef %d without synchronizing the data store",
				g.Ref, f.Ref),
			Ops: []Op{g, f},
		})
	}
	return vs
}

// checkReleaseAck: no voluntary release while a critical write of the same
// lockRef is still in flight (write-behind must flush before release).
func (kh *keyHistory) checkReleaseAck() []Violation {
	var vs []Violation
	for _, rel := range kh.releases {
		for _, w := range kh.writes {
			if w.Kind == KindSync || w.Ref != rel.Ref {
				continue
			}
			if w.Inv < rel.Inv && w.Resp > rel.Inv {
				vs = append(vs, Violation{
					Rule:   "release-ack",
					Key:    kh.key,
					Detail: fmt.Sprintf("lockRef %d released while its critical write was still unacknowledged", rel.Ref),
					Ops:    []Op{rel, w},
				})
			}
		}
	}
	return vs
}

// checkGrantOrder: the lock queue is FIFO over refs, so fresh grants land
// in strictly increasing lockRef order.
func (kh *keyHistory) checkGrantOrder() []Violation {
	firsts := make([]Op, 0, len(kh.first))
	for _, g := range kh.first {
		firsts = append(firsts, g)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i].Resp < firsts[j].Resp })
	var vs []Violation
	for i := 1; i < len(firsts); i++ {
		if firsts[i].Ref <= firsts[i-1].Ref {
			vs = append(vs, Violation{
				Rule: "grant-order",
				Key:  kh.key,
				Detail: fmt.Sprintf("lockRef %d first granted after lockRef %d despite the FIFO queue",
					firsts[i].Ref, firsts[i-1].Ref),
				Ops: []Op{firsts[i], firsts[i-1]},
			})
		}
	}
	return vs
}

// checkLease certifies lease-served reads (Note "lease"): the site lease is
// issued by a certified grant at that site and dies with the section, so a
// lease read must follow a local grant of its lockRef (lease-order), precede
// any release of it (lease-window), and — across an epoch change — serve
// only if the key's replica set did not move (lease-epoch). Freshness is
// checked separately: lease reads stay in checkFreshness.
func (kh *keyHistory) checkLease() []Violation {
	var vs []Violation
	for _, g := range kh.gets {
		if g.Note != NoteLease {
			continue
		}
		// lease-order: a certified grant of this ref at the reading site,
		// completed before the read began.
		var grant Op
		haveGrant := false
		for _, gr := range kh.grants {
			if gr.Ref == g.Ref && gr.Site == g.Site && gr.Resp <= g.Inv {
				if !haveGrant || gr.Resp < grant.Resp {
					grant, haveGrant = gr, true
				}
			}
		}
		if !haveGrant {
			vs = append(vs, Violation{
				Rule: "lease-order",
				Key:  kh.key,
				Detail: fmt.Sprintf("site %s lease-served a read of lockRef %d with no prior certified grant at that site",
					g.Site, g.Ref),
				Ops: []Op{g},
			})
			continue
		}
		// lease-window: the section's release (voluntary or forced) revokes
		// the lease; a lease read that began after one is a use-after-free.
		closed := false
		for _, rel := range kh.releases {
			if rel.Ref == g.Ref && rel.Resp <= g.Inv {
				vs = append(vs, Violation{
					Rule: "lease-window",
					Key:  kh.key,
					Detail: fmt.Sprintf("lease-served read of lockRef %d began after the section's voluntary release completed",
						g.Ref),
					Ops: []Op{g, rel},
				})
				closed = true
				break
			}
		}
		if !closed {
			for _, fo := range kh.forcedOps {
				if fo.Ref == g.Ref && fo.Resp <= g.Inv {
					vs = append(vs, Violation{
						Rule: "lease-window",
						Key:  kh.key,
						Detail: fmt.Sprintf("lease-served read of lockRef %d began after its forced release completed",
							g.Ref),
						Ops: []Op{g, fo},
					})
					closed = true
					break
				}
			}
		}
		if closed {
			continue
		}
		// lease-epoch: same silent-adoption bar as epoch-span — a lease may
		// outlive an epoch change only if the key's replica set is unchanged.
		if g.Epoch != 0 && grant.Epoch != 0 && g.Epoch != grant.Epoch && kh.epochs != nil {
			from, to := kh.epochs[grant.Epoch], kh.epochs[g.Epoch]
			if from != nil && to != nil &&
				!sameReplicas(from.placement().ReplicasFor(kh.key), to.placement().ReplicasFor(kh.key)) {
				vs = append(vs, Violation{
					Rule: "lease-epoch",
					Key:  kh.key,
					Detail: fmt.Sprintf("lease granted under epoch %d served a read under epoch %d, which moved the key's replicas",
						grant.Epoch, g.Epoch),
					Ops: []Op{g, grant},
				})
			}
		}
	}
	return vs
}

// monitorRing mirrors MonitorConfig.Writes' default: the per-key ring of
// recent writes the online monitor can attribute a stale value to. The
// offline coverage rule only holds the monitor to staleness it could have
// seen — a value older than the ring is beyond an online checker's model.
const monitorRing = 8

// checkAdaptive is the monitor-coverage rule: every adaptive weak read that
// is attributably stale — by the same judgment the online monitor applies —
// must be matched (one to one, in completion order) by a KindMonitor
// staleness event at the same site. Inert on histories with no weak reads.
func (kh *keyHistory) checkAdaptive() []Violation {
	var weak []Op
	for _, g := range kh.gets {
		if g.Note == NoteWeak {
			weak = append(weak, g)
		}
	}
	if len(weak) == 0 {
		return nil
	}
	sort.Slice(weak, func(i, j int) bool { return weak[i].Resp < weak[j].Resp })
	used := make([]bool, len(kh.staleness))
	var vs []Violation
	for _, g := range weak {
		if !kh.weakStale(g) {
			continue
		}
		covered := false
		for i, e := range kh.staleness {
			if used[i] || e.Site != g.Site || e.Resp < g.Resp {
				continue
			}
			used[i], covered = true, true
			break
		}
		if !covered {
			vs = append(vs, Violation{
				Rule: "monitor-coverage",
				Key:  kh.key,
				Detail: fmt.Sprintf("weak read at site %s was attributably stale but the consistency monitor recorded no staleness event for it",
					g.Site),
				Ops: []Op{g},
			})
		}
	}
	return vs
}

// weakStale mirrors Monitor.observeWeakRead offline: the read's value matches
// a write that completed before the read began while a strictly newer write
// had also completed — and nothing concurrent or unsettled could explain the
// value. Attribution is limited to the last monitorRing completed writes,
// matching the online model.
func (kh *keyHistory) weakStale(g Op) bool {
	var max Op
	haveMax := false
	var done []Op // writes completed before the read began, in completion order
	for _, w := range kh.writes {
		if w.Resp > g.Inv {
			continue
		}
		done = append(done, w)
		if !haveMax || wins(w, max) {
			max, haveMax = w, true
		}
	}
	if !haveMax || sameValue(g.Value, g.Present, max.Value, max.Present) {
		return false
	}
	// A concurrent or unsettled write matching the value explains the read.
	for _, w := range kh.writes {
		if w.Inv <= g.Resp && w.Resp > g.Inv && sameValue(g.Value, g.Present, w.Value, w.Present) {
			return false
		}
	}
	for _, w := range kh.failed {
		if w.Inv <= g.Resp && sameValue(g.Value, g.Present, w.Value, w.Present) {
			return false
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Resp < done[j].Resp })
	if len(done) > monitorRing {
		done = done[len(done)-monitorRing:]
	}
	for _, w := range done {
		if w.TS < max.TS && sameValue(g.Value, g.Present, w.Value, w.Present) {
			return true
		}
	}
	return false
}

func renderValue(v []byte, present bool) string {
	if !present {
		return "<absent>"
	}
	return fmt.Sprintf("%q", v)
}
