package history

import (
	"sort"
	"sync"
	"time"
)

// Monitor is the online consistency monitor behind adaptive reads (per
// Nguyen/Charapko/Kulkarni/Demirbas: serve weak reads by default, watch the
// op stream for staleness, fall back to strong reads when violations trip a
// rate threshold). It consumes the same recorded ops the offline ECF checker
// does — attached to a Recorder, it observes each op as it completes — and
// keeps an incremental model: per key, the committed-max write (by v2s
// stamp) plus a short ring of recent writes; per site, a sliding window of
// weak-read outcomes.
//
// A weak read (a KindGet that served at ONE consistency, Note "one") is a
// staleness violation when it is *attributably stale*: its value matches a
// tracked write that completed before the read began while a strictly newer
// write had also completed before the read began — the local replica served
// state it provably should have moved past. Reads matching the committed-max
// write, reads overlapping an in-flight write (either may legitimately be
// observed), and reads whose value the monitor cannot attribute at all (a
// write still in flight that the monitor has not seen complete) are not
// violations — an online monitor only ever sees completed ops, and flagging
// unattributable values would flip sites on every pipelined write. The
// offline ECF checker still certifies the full history after the fact.
//
// Once a site's violation count within its window reaches TripCount the site
// flips to QUORUM reads. The flip is sticky: adaptive mode trades the WAN
// round-trip for monitored optimism, and once optimism is observed failing
// the site stays at quorum for the rest of its run. Every violation and
// every flip is recorded back into the history as a KindMonitor event, which
// the ECF monitor-coverage rule uses to certify that no stale weak read went
// undetected.
//
// All methods are safe from any task, and every method on a nil *Monitor is
// a no-op (reads report weak=false so callers without a monitor never serve
// weak reads by accident).
type Monitor struct {
	cfg MonitorConfig
	rec *Recorder // set by Recorder.Attach; receives KindMonitor events

	mu    sync.Mutex
	keys  map[string]*monKeyState
	sites map[string]*monSiteState
}

// MonitorConfig tunes the monitor's trip threshold.
type MonitorConfig struct {
	// TripCount is the number of in-window staleness violations that flips a
	// site from ONE to QUORUM reads. Default 3.
	TripCount int
	// Window is the sliding window of weak reads (per site) the violation
	// rate is judged over. Default 200.
	Window int
	// Writes is the per-key ring of recent writes a weak read may match
	// without being called stale. Default 8.
	Writes int
	// OnViolation, when set, is called (outside the monitor's lock) for each
	// detected staleness violation — the repair hook: adaptive mode wires it
	// to an async quorum read of the key, driving read repair.
	OnViolation func(site, key string)
	// OnFlip, when set, is called (outside the monitor's lock) when a site
	// flips to QUORUM.
	OnFlip func(site string)
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.TripCount <= 0 {
		c.TripCount = 3
	}
	if c.Window <= 0 {
		c.Window = 200
	}
	if c.Writes <= 0 {
		c.Writes = 8
	}
	return c
}

// monWrite is one tracked recent write.
type monWrite struct {
	ts      int64
	value   []byte
	present bool
	resp    time.Duration
}

// monKeyState is the monitor's model of one key: the committed-max write and
// a bounded ring of recent writes.
type monKeyState struct {
	max    monWrite
	writes []monWrite // ring, cfg.Writes long
	next   int
}

// monSiteState is one site's adaptive-read standing.
type monSiteState struct {
	weakReads  int   // total weak reads observed
	violSeqs   []int // weakReads sequence numbers of in-window violations
	violations int   // total violations (pre- and post-flip)
	postFlip   int   // violations observed after the flip
	flipped    bool  // sticky: site reads at QUORUM from now on
	flipAt     time.Duration
}

// NewMonitor builds a consistency monitor. Attach it to a recorder with
// Recorder.Attach; until then it observes nothing.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{
		cfg:   cfg.withDefaults(),
		keys:  make(map[string]*monKeyState),
		sites: make(map[string]*monSiteState),
	}
}

// Weak reports whether site may currently serve reads at ONE consistency.
// False on a nil monitor: no monitor, no weak reads.
func (m *Monitor) Weak(site string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sites[site]
	return s == nil || !s.flipped
}

// Flipped reports whether site has tripped to QUORUM reads.
func (m *Monitor) Flipped(site string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sites[site]
	return s != nil && s.flipped
}

// Violations returns site's total detected staleness violations.
func (m *Monitor) Violations(site string) int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sites[site]
	if s == nil {
		return 0
	}
	return s.violations
}

// PostFlipViolations returns the violations site accrued after flipping to
// QUORUM — the acceptance signal that the fallback actually restored
// consistency (0 when the flip worked).
func (m *Monitor) PostFlipViolations(site string) int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sites[site]
	if s == nil {
		return 0
	}
	return s.postFlip
}

// SiteStatus is one site's row in a monitor snapshot.
type SiteStatus struct {
	Site       string `json:"site"`
	Level      string `json:"level"` // "one" or "quorum"
	WeakReads  int    `json:"weak_reads"`
	Violations int    `json:"violations"`
	PostFlip   int    `json:"post_flip_violations"`
}

// Snapshot returns every observed site's standing, sorted by site name.
func (m *Monitor) Snapshot() []SiteStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]SiteStatus, 0, len(m.sites))
	for name, s := range m.sites {
		level := "one"
		if s.flipped {
			level = "quorum"
		}
		out = append(out, SiteStatus{
			Site: name, Level: level,
			WeakReads: s.weakReads, Violations: s.violations, PostFlip: s.postFlip,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// observe feeds one completed op into the model. Called by the recorder
// after its own lock is released (lock order: monitor.mu then recorder.mu,
// because emitting a KindMonitor event re-enters the recorder).
func (m *Monitor) observe(op Op) {
	if op.Failed() {
		return
	}
	switch op.Kind {
	case KindPut, KindDelete, KindSync:
		if op.TS == 0 {
			return
		}
		m.mu.Lock()
		m.observeWrite(op)
		m.mu.Unlock()
	case KindGet:
		if op.Note != NoteWeak {
			return
		}
		m.mu.Lock()
		stale, tripped := m.observeWeakRead(op)
		rec := m.rec
		m.mu.Unlock()
		// Events and callbacks run outside the lock: the recorder takes its
		// own lock, and the repair hook issues store reads.
		if stale {
			rec.Event(op.Site, KindMonitor, op.Key, op.Ref, NoteStaleness)
			if m.cfg.OnViolation != nil {
				m.cfg.OnViolation(op.Site, op.Key)
			}
		}
		if tripped {
			rec.Event(op.Site, KindMonitor, op.Key, 0, NoteFlip)
			if m.cfg.OnFlip != nil {
				m.cfg.OnFlip(op.Site)
			}
		}
	}
}

func (m *Monitor) observeWrite(op Op) {
	ks := m.keys[op.Key]
	if ks == nil {
		ks = &monKeyState{writes: make([]monWrite, 0, m.cfg.Writes)}
		m.keys[op.Key] = ks
	}
	w := monWrite{ts: op.TS, value: op.Value, present: op.Present, resp: op.Resp}
	if w.ts >= ks.max.ts {
		ks.max = w
	}
	if len(ks.writes) < m.cfg.Writes {
		ks.writes = append(ks.writes, w)
	} else {
		ks.writes[ks.next] = w
		ks.next = (ks.next + 1) % m.cfg.Writes
	}
}

// observeWeakRead judges one weak read and returns whether it was stale and
// whether that staleness tripped the site's flip. Caller holds m.mu.
func (m *Monitor) observeWeakRead(op Op) (stale, tripped bool) {
	s := m.sites[op.Site]
	if s == nil {
		s = &monSiteState{}
		m.sites[op.Site] = s
	}
	s.weakReads++

	ks := m.keys[op.Key]
	if ks == nil || ks.max.ts == 0 {
		return false, false // no committed write observed yet: cannot judge
	}
	if matchesWrite(op, ks.max) {
		return false, false
	}
	if ks.max.resp > op.Inv {
		return false, false // newest write concurrent with the read: old value fine
	}
	// The read missed the committed-max write. Stale only if the value is
	// attributable to an older completed write; an unmatched value belongs to
	// a write the monitor has not seen complete yet.
	attributed := false
	for _, w := range ks.writes {
		if !matchesWrite(op, w) {
			continue
		}
		if w.resp > op.Inv {
			return false, false // concurrent write: either value is legitimate
		}
		if w.ts < ks.max.ts {
			attributed = true
		}
	}
	if !attributed {
		return false, false
	}

	s.violations++
	if s.flipped {
		s.postFlip++
		return true, false
	}
	// Sliding-window rate: keep only violations within the last Window weak
	// reads, trip when they reach TripCount.
	s.violSeqs = append(s.violSeqs, s.weakReads)
	floor := s.weakReads - m.cfg.Window
	for len(s.violSeqs) > 0 && s.violSeqs[0] <= floor {
		s.violSeqs = s.violSeqs[1:]
	}
	if len(s.violSeqs) >= m.cfg.TripCount {
		s.flipped = true
		s.flipAt = op.Resp
		s.violSeqs = nil
		return true, true
	}
	return true, false
}

// matchesWrite reports whether a read observed exactly the state write w
// committed (same presence; same bytes when present).
func matchesWrite(read Op, w monWrite) bool {
	if read.Present != w.present {
		return false
	}
	return !read.Present || string(read.Value) == string(w.value)
}
