package history

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/sim"
)

// Epoch-checker fixtures: a 3-site member set growing by site-d, mirroring
// the live-membership campaign topologies.
var (
	epochMembers1 = []placement.Node{{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"}, {ID: 2, Site: "oregon"}}
	epochMembers2 = append(append([]placement.Node(nil), epochMembers1...), placement.Node{ID: 3, Site: "site-d"})
)

// epochEv builds the KindEpoch event announcing epoch e with the given
// member set at time at.
func epochEv(site string, e int64, members []placement.Node, at time.Duration) Op {
	return Op{Kind: KindEpoch, Site: site, Epoch: e, Inv: at, Resp: at, Note: encodeEpochNote(3, members)}
}

// epochKeys finds one key whose replica set moves in the 1→2 growth and one
// whose placement is untouched.
func epochKeys(t *testing.T) (moved, unmoved string) {
	t.Helper()
	r1, r2 := placement.New(epochMembers1, 3), placement.New(epochMembers2, 3)
	for i := 0; i < 10000 && (moved == "" || unmoved == ""); i++ {
		k := fmt.Sprintf("ek-%d", i)
		if sameReplicas(r1.ReplicasFor(k), r2.ReplicasFor(k)) {
			if unmoved == "" {
				unmoved = k
			}
		} else if moved == "" {
			moved = k
		}
	}
	if moved == "" || unmoved == "" {
		t.Fatalf("no moved/unmoved key pair (moved=%q unmoved=%q)", moved, unmoved)
	}
	return moved, unmoved
}

// at stamps an op with site, key and epoch — the epoch rules read those
// three; mk's defaults cover the rest.
func at(o Op, site, key string, epoch int64) Op {
	o.Site, o.Key, o.Epoch = site, key, epoch
	return o
}

func TestEpochNoteRoundTrip(t *testing.T) {
	note := encodeEpochNote(3, epochMembers2)
	rf, members, ok := parseEpochNote(note)
	if !ok || rf != 3 || !sameMembers(members, epochMembers2) {
		t.Fatalf("round trip failed: ok=%v rf=%d members=%v from %q", ok, rf, members, note)
	}
	for _, bad := range []string{"", "rf=3", "rf=x members=a:1", "rf=3 members=", "rf=3 members=a", "rf=3 members=a:z"} {
		if _, _, ok := parseEpochNote(bad); ok {
			t.Errorf("parseEpochNote(%q) accepted malformed note", bad)
		}
	}
}

// TestEpochSpanCertified: a section on an unmoved key sails across the
// epoch change (silent adoption); the same shape on a moved key is the
// signature reconfiguration violation.
func TestEpochSpanCertified(t *testing.T) {
	moved, unmoved := epochKeys(t)
	section := func(key string) []Op {
		return finish([]Op{
			epochEv("ohio", 1, epochMembers1, 0),
			at(mk(KindAcquire, 1, 5*us, 10*us), "ohio", key, 1),
			at(withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)), "ohio", key, 1),
			epochEv("ohio", 2, epochMembers2, 40*us),
			at(withValue(mk(KindPut, 1, 50*us, 60*us), "b", ts(1, 50)), "ohio", key, 2),
			at(mk(KindRelease, 1, 70*us, 80*us), "ohio", key, 2),
		})
	}
	if got := rules(checkEpochs(section(unmoved))); got != "" {
		t.Fatalf("unmoved-key cross-epoch section flagged: [%s]", got)
	}
	vs := checkEpochs(section(moved))
	if got := rules(vs); !strings.Contains(got, "epoch-span") {
		t.Fatalf("moved-key cross-epoch section not flagged: [%s]", got)
	}
	// The violation names the offending op and the grant it betrays.
	if len(vs[0].Ops) != 2 || vs[0].Ops[0].Kind != KindPut || vs[0].Ops[1].Kind != KindAcquire {
		t.Fatalf("epoch-span violation ops: %+v", vs[0].Ops)
	}
}

// TestEpochMemberRetiredSite: epoch 2 retires oregon; oregon continuing to
// serve critical ops stamped with epoch 2 is flagged.
func TestEpochMemberRetiredSite(t *testing.T) {
	shrunk := []placement.Node{{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"}}
	ops := finish([]Op{
		epochEv("ohio", 1, epochMembers1, 0),
		epochEv("ohio", 2, shrunk, 10*us),
		at(mk(KindAcquire, 1, 20*us, 30*us), "oregon", "k", 2),
	})
	if got := rules(checkEpochs(ops)); !strings.Contains(got, "epoch-member") {
		t.Fatalf("retired site serving a grant not flagged: [%s]", got)
	}
	// The same grant at a surviving site is clean.
	ok := finish([]Op{
		epochEv("ohio", 1, epochMembers1, 0),
		epochEv("ohio", 2, shrunk, 10*us),
		at(mk(KindAcquire, 1, 20*us, 30*us), "ohio", "k", 2),
	})
	if got := rules(checkEpochs(ok)); got != "" {
		t.Fatalf("surviving site flagged: [%s]", got)
	}
}

// TestEpochMonoRegression: a site stamping a later-invoked op with an older
// epoch regressed its membership view.
func TestEpochMonoRegression(t *testing.T) {
	ops := finish([]Op{
		epochEv("ohio", 1, epochMembers1, 0),
		epochEv("ohio", 2, epochMembers2, 10*us),
		at(mk(KindAcquire, 1, 20*us, 30*us), "ohio", "k", 2),
		at(withValue(mk(KindPut, 1, 40*us, 50*us), "a", ts(1, 40)), "ohio", "k", 1), // regressed stamp
	})
	if got := rules(checkEpochs(ops)); !strings.Contains(got, "epoch-mono") {
		t.Fatalf("epoch regression not flagged: [%s]", got)
	}
}

// TestEpochConflict: two sites announcing different member sets for one
// epoch means the config log forked.
func TestEpochConflict(t *testing.T) {
	ops := finish([]Op{
		epochEv("ohio", 2, epochMembers2, 0),
		epochEv("oregon", 2, epochMembers1, 5*us),
	})
	if got := rules(checkEpochs(ops)); !strings.Contains(got, "epoch-conflict") {
		t.Fatalf("forked epoch announcement not flagged: [%s]", got)
	}
	// Identical re-announcements (each site logs the epoch as it applies
	// it) are the normal case, not a conflict.
	ok := finish([]Op{
		epochEv("ohio", 2, epochMembers2, 0),
		epochEv("oregon", 2, epochMembers2, 5*us),
	})
	if got := rules(checkEpochs(ok)); got != "" {
		t.Fatalf("duplicate identical announcement flagged: [%s]", got)
	}
}

// TestEpochInertWithoutEvents: fixed-membership histories (every op stamped
// 0) bypass all epoch rules, and Check wires the checker in.
func TestEpochInertWithoutEvents(t *testing.T) {
	ops := finish([]Op{
		mk(KindAcquire, 1, 0, 10*us),
		withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)),
		mk(KindRelease, 1, 40*us, 50*us),
	})
	if got := rules(checkEpochs(ops)); got != "" {
		t.Fatalf("static history flagged by epoch rules: [%s]", got)
	}
	moved, _ := epochKeys(t)
	bad := finish([]Op{
		epochEv("ohio", 1, epochMembers1, 0),
		at(mk(KindAcquire, 1, 5*us, 10*us), "ohio", moved, 1),
		epochEv("ohio", 2, epochMembers2, 20*us),
		at(withValue(mk(KindPut, 1, 30*us, 40*us), "b", ts(1, 30)), "ohio", moved, 2),
	})
	res := Check(bad, CheckOptions{})
	if got := rules(res.Violations); !strings.Contains(got, "epoch-span") {
		t.Fatalf("Check did not run the epoch rules: [%s]", got)
	}
}

// TestRecorderEpochStamping: EpochEvent flips the stamp applied to every
// subsequently begun op and records the member set for the checker.
func TestRecorderEpochStamping(t *testing.T) {
	rt := sim.New(1)
	rec := New(rt)
	if err := rt.Run(func() {
		rec.Begin("ohio", KindAcquire, "k", 1).End(nil) // before any epoch: stamp 0
		rec.EpochEvent("ohio", 2, 3, epochMembers2)
		rec.Begin("ohio", KindPut, "k", 1).End(nil)
	}); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	if ops[0].Epoch != 0 || ops[1].Epoch != 2 || ops[2].Epoch != 2 {
		t.Fatalf("epoch stamps = %d,%d,%d, want 0,2,2", ops[0].Epoch, ops[1].Epoch, ops[2].Epoch)
	}
	if ops[1].Kind != KindEpoch {
		t.Fatalf("EpochEvent kind = %v", ops[1].Kind)
	}
	if rf, members, ok := parseEpochNote(ops[1].Note); !ok || rf != 3 || !sameMembers(members, epochMembers2) {
		t.Fatalf("EpochEvent note %q did not round-trip", ops[1].Note)
	}
	if s := ops[2].String(); !strings.Contains(s, "epoch=2") {
		t.Fatalf("op render missing epoch stamp: %s", s)
	}
}
