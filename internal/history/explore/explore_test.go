package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/music"
)

// exploreSeeds returns the exploration batch's seed set: MUSIC_EXPLORE_SEEDS
// (a comma-separated list, how scripts/check.sh and the CI history-explore
// job pin the batch) or a fixed default, trimmed under -short.
func exploreSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("MUSIC_EXPLORE_SEEDS"); env != "" {
		var seeds []int64
		for _, part := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("MUSIC_EXPLORE_SEEDS: bad seed %q: %v", part, err)
			}
			seeds = append(seeds, s)
		}
		return seeds
	}
	seeds := make([]int64, 20)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if testing.Short() {
		seeds = seeds[:5]
	}
	return seeds
}

// TestExplorePinnedSeeds is the deterministic exploration batch: every
// pinned schedule must complete inside its virtual-time budget with a
// history the ECF + linearizability checkers accept. A failure here means
// either a protocol regression or a checker regression; the repro rendering
// in the failure message is self-contained either way. With
// MUSIC_EXPLORE_REPRO_DIR set, each violation's minimized repro is also
// written there — the nightly CI job uploads that directory as an artifact.
func TestExplorePinnedSeeds(t *testing.T) {
	seeds := exploreSeeds(t)
	reproDir := os.Getenv("MUSIC_EXPLORE_REPRO_DIR")
	classes := make(map[FaultKind]bool)
	for _, out := range Explore(seeds) {
		for k := range out.Script.Classes() {
			classes[k] = true
		}
		if out.Violating() {
			_, mout := Minimize(out.Script)
			repro := mout.Repro()
			if reproDir != "" {
				path := filepath.Join(reproDir, fmt.Sprintf("repro-seed-%d.txt", out.Script.Seed))
				if err := os.WriteFile(path, []byte(repro), 0o644); err != nil {
					t.Errorf("writing repro: %v", err)
				}
			}
			t.Errorf("seed %d violating:\n%s", out.Script.Seed, repro)
		}
	}
	if os.Getenv("MUSIC_EXPLORE_SEEDS") == "" && !testing.Short() && len(classes) < 4 {
		t.Errorf("default pinned batch covers %d fault classes (%v), want all 4", len(classes), classes)
	}
}

// TestExploreCampaign runs a 500-seed randomized campaign — the acceptance
// bar for the explorer: every schedule checks clean and the generator's
// draw covers all four fault classes.
func TestExploreCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("500-seed campaign skipped under -short")
	}
	classes := make(map[FaultKind]int)
	violating := 0
	for seed := int64(1); seed <= 500; seed++ {
		s := Generate(seed)
		for k := range s.Classes() {
			classes[k]++
		}
		if out := Run(s); out.Violating() {
			violating++
			if violating <= 3 {
				t.Errorf("seed %d violating: runErr=%v violations=%v", seed, out.RunErr, out.Result.Violations)
			}
		}
	}
	if violating > 0 {
		t.Errorf("%d/500 schedules violating", violating)
	}
	for _, k := range []FaultKind{FaultCrash, FaultPartition, FaultLoss, FaultSkew} {
		if classes[k] == 0 {
			t.Errorf("fault class %s never drawn across 500 seeds", k)
		}
	}
	t.Logf("campaign class coverage: %v", classes)
}

// TestExploreDetectsInjectedViolations validates the checker end to end:
// running the same schedule with a deliberately broken protocol (the
// core-layer mutations) must surface the specific ECF rule the mutation
// breaks, and the unmutated run of that schedule must stay clean.
func TestExploreDetectsInjectedViolations(t *testing.T) {
	// Seed 14 draws a skew window, so the forced-release + synchronize-on-
	// next-grant path is exercised; both mutations are observable on it.
	base := Generate(14)
	if !base.Classes()[FaultSkew] {
		t.Fatalf("seed 14 no longer draws a skew window; pick a new pinned seed")
	}
	if out := Run(base); out.Violating() {
		t.Fatalf("unmutated seed 14 violating:\n%s", out.Repro())
	}

	cases := []struct {
		name     string
		mutation music.Mutation
		rule     string
	}{
		{"skipSynchronize", music.MutationSkipSynchronize, "sync-skip"},
		{"frozenElapsed", music.MutationFrozenElapsed, "ts-order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Mutation = tc.mutation
			out := Run(s)
			if !out.Violating() {
				t.Fatalf("mutation %v on seed 14 not detected", tc.mutation)
			}
			found := false
			for _, v := range out.Result.Violations {
				if v.Rule == tc.rule {
					found = true
					if len(v.Ops) == 0 {
						t.Errorf("violation %s reported without offending ops", v.Rule)
					}
				}
			}
			if !found {
				t.Errorf("mutation %v: rule %q not among violations %v", tc.mutation, tc.rule, out.Result.Violations)
			}
		})
	}
}

// TestMinimizeRepro shrinks a violating schedule and checks the reduced
// script still violates and renders a self-contained repro.
func TestMinimizeRepro(t *testing.T) {
	s := Generate(14)
	s.Mutation = music.MutationSkipSynchronize
	min, out := Minimize(s)
	if !out.Violating() {
		t.Fatalf("minimized script no longer violating")
	}
	if len(min.Faults) > len(s.Faults) || len(min.Clients) > len(s.Clients) {
		t.Errorf("minimize grew the script: %d faults / %d clients (was %d / %d)",
			len(min.Faults), len(min.Clients), len(s.Faults), len(s.Clients))
	}
	repro := out.Repro()
	for _, want := range []string{"explore repro: seed=14", "fault script:", "clients:", "violation:", "history:"} {
		if !strings.Contains(repro, want) {
			t.Errorf("repro missing %q:\n%s", want, repro)
		}
	}
}
