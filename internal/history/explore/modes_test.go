package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
)

// exploreModes returns the read modes the mode campaign covers:
// MUSIC_EXPLORE_MODES (comma-separated, how scripts/check.sh and the nightly
// CI job pin the batch) or both adaptive read planes by default.
func exploreModes(t *testing.T) []string {
	t.Helper()
	if env := os.Getenv("MUSIC_EXPLORE_MODES"); env != "" {
		var modes []string
		for _, part := range strings.Split(env, ",") {
			m := strings.TrimSpace(part)
			if m != "lease" && m != "adaptive" {
				t.Fatalf("MUSIC_EXPLORE_MODES: unknown mode %q", m)
			}
			modes = append(modes, m)
		}
		return modes
	}
	return []string{"lease", "adaptive"}
}

// TestExploreModesPinnedSeeds re-runs the pinned exploration batch with the
// adaptive read plane on — site-scoped holder leases, then monitored ONE
// reads — so the lease-order/lease-window/lease-epoch and monitor-coverage
// ECF rules are certified against real fault schedules, not just fixtures.
// The batch must also actually exercise the new read paths: at least one
// lease-served and one weak read must appear across the default seeds.
func TestExploreModesPinnedSeeds(t *testing.T) {
	modes := exploreModes(t)
	seeds := exploreSeeds(t)
	pinnedDefault := os.Getenv("MUSIC_EXPLORE_SEEDS") == ""
	if pinnedDefault && len(seeds) > 12 {
		seeds = seeds[:12]
	}
	reproDir := os.Getenv("MUSIC_EXPLORE_REPRO_DIR")
	served := map[string]int{}
	for _, mode := range modes {
		note := history.NoteLease
		if mode == "adaptive" {
			note = history.NoteWeak
		}
		for _, seed := range seeds {
			out := Run(GenerateMode(seed, mode))
			for _, op := range out.Ops {
				if op.Kind == history.KindGet && !op.Failed() && op.Note == note {
					served[mode]++
				}
			}
			if out.Violating() {
				_, mout := Minimize(out.Script)
				repro := mout.Repro()
				if reproDir != "" {
					path := filepath.Join(reproDir, fmt.Sprintf("repro-%s-seed-%d.txt", mode, seed))
					if err := os.WriteFile(path, []byte(repro), 0o644); err != nil {
						t.Errorf("writing repro: %v", err)
					}
				}
				t.Errorf("mode %s seed %d violating:\n%s", mode, seed, repro)
			}
		}
	}
	if pinnedDefault && !testing.Short() {
		for _, mode := range modes {
			if served[mode] == 0 {
				t.Errorf("mode %s: no %s-path reads across the pinned batch — the mode ran inert", mode, mode)
			}
		}
	}
	t.Logf("mode-path reads: %v", served)
}
