package explore

import (
	"fmt"
	"strings"

	"repro/internal/history"
)

// Minimize shrinks a violating script by greedy delta-debugging: repeatedly
// try dropping one fault event, one whole client, or one section, keeping
// any reduction that still violates. Schedules are deterministic, so every
// candidate is a faithful replay; the returned outcome is the minimized
// script's. A non-violating script is returned unchanged.
func Minimize(s Script) (Script, Outcome) {
	out := Run(s)
	if !out.Violating() {
		return s, out
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(s.Faults); i++ {
			cand := s
			cand.Faults = dropIndex(s.Faults, i)
			if o := Run(cand); o.Violating() {
				s, out, changed = cand, o, true
				break
			}
		}
		if changed {
			continue
		}
		for i := 0; i < len(s.Membership); i++ {
			cand := s
			cand.Membership = dropIndex(s.Membership, i)
			if o := Run(cand); o.Violating() {
				s, out, changed = cand, o, true
				break
			}
		}
		if changed {
			continue
		}
		for i := 0; i < len(s.Clients); i++ {
			cand := s
			cand.Clients = dropIndex(s.Clients, i)
			if o := Run(cand); o.Violating() {
				s, out, changed = cand, o, true
				break
			}
		}
		if changed {
			continue
		}
	clients:
		for ci := range s.Clients {
			for si := 0; si < len(s.Clients[ci].Sections); si++ {
				cand := s
				cand.Clients = append([]ClientPlan(nil), s.Clients...)
				cand.Clients[ci].Sections = dropIndex(s.Clients[ci].Sections, si)
				if o := Run(cand); o.Violating() {
					s, out, changed = cand, o, true
					break clients
				}
			}
		}
	}
	return s, out
}

func dropIndex[T any](xs []T, i int) []T {
	out := make([]T, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// Repro renders a violating outcome as a self-contained reproduction: the
// seed and cluster shape, the fault script, the client plans, the checker
// verdicts, the full history, and the span trees of the failing run. Replay
// it by rebuilding the script from the seed (Generate) or from the printed
// plan, and calling Run.
func (o Outcome) Repro() string {
	s := o.Script
	var b strings.Builder
	fmt.Fprintf(&b, "explore repro: seed=%d profile=%s T=%v policy=%s cache=%t mutation=%v\n",
		s.Seed, s.Profile, s.T, s.Policy, s.HolderCache, s.Mutation)
	b.WriteString("fault script:\n")
	if len(s.Faults) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if len(s.Spares) > 0 {
		fmt.Fprintf(&b, "spares: %v\nmembership script:\n", s.Spares)
		for _, ev := range s.Membership {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	b.WriteString("clients:\n")
	for ci, plan := range s.Clients {
		fmt.Fprintf(&b, "  c%d @%s:", ci, plan.Home)
		for _, sec := range plan.Sections {
			switch {
			case sec.Delete:
				fmt.Fprintf(&b, " [%s +%v delete]", sec.Key, sec.PreDelay)
			case sec.Value == "":
				fmt.Fprintf(&b, " [%s +%v get]", sec.Key, sec.PreDelay)
			case sec.Value2 != "":
				fmt.Fprintf(&b, " [%s +%v put %q,%q]", sec.Key, sec.PreDelay, sec.Value, sec.Value2)
			default:
				fmt.Fprintf(&b, " [%s +%v put %q]", sec.Key, sec.PreDelay, sec.Value)
			}
		}
		b.WriteByte('\n')
	}
	if o.RunErr != nil {
		fmt.Fprintf(&b, "run error: %v\n", o.RunErr)
	}
	for _, v := range o.Result.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	if len(o.Result.Unbounded) > 0 {
		fmt.Fprintf(&b, "undecided keys (WGL budget): %v\n", o.Result.Unbounded)
	}
	b.WriteString("history:\n")
	b.WriteString(history.Render(o.Ops))
	if o.Traces != "" {
		b.WriteString("spans:\n")
		b.WriteString(o.Traces)
	}
	return b.String()
}
