// Package explore drives the deterministic MUSIC simulator through
// randomized fault schedules and checks every resulting operation history
// against the paper's ECF contract (internal/history). A Script — generated
// from a seed before the run, so every decision is replayable — composes
// faults from four classes (site crash/restart, site partition/heal,
// message loss, clock-skewed expiry) against concurrent multi-site clients
// running critical sections. Run executes the script with history recording
// on, then hands the history to history.Check; a violating script is shrunk
// by Minimize (drop fault events, clients, sections while the violation
// persists) and rendered by Outcome.Repro as a self-contained reproduction:
// the seed, the fault script, the checker verdicts, the full history, and
// the internal/obs span trees of the failing sections.
package explore

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/music"
)

// FaultKind names one of the explorer's fault classes.
type FaultKind string

// The four fault classes every campaign draws from.
const (
	// FaultCrash takes every node of a site down, then restarts it.
	FaultCrash FaultKind = "crash"
	// FaultPartition isolates site group A from group B, then heals.
	FaultPartition FaultKind = "partition"
	// FaultLoss drops each message independently with probability Rate.
	FaultLoss FaultKind = "loss"
	// FaultSkew models a holder whose clock runs slow: sections started
	// during the window dwell past the T bound, driving the expiry +
	// forced-release + synchronize-on-next-grant path.
	FaultSkew FaultKind = "skew"
)

// FaultEvent is one timed fault window: the fault is injected at At and
// healed at At+For. Generate emits non-overlapping windows so events
// minimize independently.
type FaultEvent struct {
	At   time.Duration
	For  time.Duration
	Kind FaultKind
	Site string   // FaultCrash: the site taken down
	A, B []string // FaultPartition: the two site groups
	Rate float64  // FaultLoss: per-message drop probability
}

// String renders the event as one fault-script line.
func (f FaultEvent) String() string {
	detail := ""
	switch f.Kind {
	case FaultCrash:
		detail = " site=" + f.Site
	case FaultPartition:
		detail = fmt.Sprintf(" groups=%v|%v", f.A, f.B)
	case FaultLoss:
		detail = fmt.Sprintf(" rate=%.3f", f.Rate)
	}
	return fmt.Sprintf("%-9s at=%-8v for=%-8v%s", f.Kind, f.At, f.For, detail)
}

// SectionPlan is one critical section a client will run: get, optional
// write(s), get. All choices are made at generation time so a schedule is
// fully determined by its Script.
type SectionPlan struct {
	Key      string
	PreDelay time.Duration // think time before opening the section
	Value    string        // value to put ("" with !Delete: read-only section)
	Value2   string        // optional second put (distinct v2s stamps)
	Delete   bool          // tombstone instead of put
}

// ClientPlan is one client's home site and section sequence.
type ClientPlan struct {
	Home     string
	Sections []SectionPlan
}

// Script is a fully deterministic exploration schedule: the simulator seed,
// the cluster shape, the client workload, and the fault script.
type Script struct {
	Seed        int64
	Profile     string
	T           time.Duration // critical-section bound
	Deadline    time.Duration // virtual-time budget; exceeding it is a liveness failure
	Policy      music.WritePolicy
	HolderCache bool
	Mutation    music.Mutation // injected protocol bug (checker validation only)
	// ReadMode selects the adaptive read plane: "" is the legacy quorum read
	// path (every Generate script, byte-identical replay), "lease" turns on
	// site-scoped holder leases, "adaptive" serves critical gets at ONE under
	// the consistency monitor. Either mode also spawns plain-Get reader tasks
	// so non-holder clients exercise the site-lease serve path.
	ReadMode string
	Keys     []string
	Clients  []ClientPlan
	Faults   []FaultEvent
	// Spares and Membership turn the script into a live-membership churn
	// schedule: the cluster starts dynamic with the spare sites provisioned
	// but unjoined, and each MembershipEvent reconfigures it mid-workload.
	// Both empty (every Generate script) leaves the cluster static and the
	// run byte-identical to the pre-churn explorer.
	Spares     []string
	Membership []MembershipEvent
}

// Classes returns the set of fault classes the script exercises.
func (s Script) Classes() map[FaultKind]bool {
	m := make(map[FaultKind]bool, 4)
	for _, f := range s.Faults {
		m[f.Kind] = true
	}
	return m
}

// Window is one non-overlapping fault window: inject at At, heal at At+For.
type Window struct {
	At  time.Duration
	For time.Duration
}

// Windows draws n non-overlapping fault windows from rng at the given time
// scale: the first opens within [scale, 4·scale), each lasts
// [1.5·scale, 6.5·scale), and consecutive windows are separated by
// [scale, 4·scale). Non-overlap is what lets a schedule's events heal
// independently and minimize one at a time. Generate uses scale=100ms on
// virtual time; internal/chaosnet reuses the same generator at a tighter
// wall-clock scale for the real TCP plane.
func Windows(rng *rand.Rand, n int, scale time.Duration) []Window {
	ms := func(lo, hi time.Duration) time.Duration {
		loMs, hiMs := int(lo/time.Millisecond), int(hi/time.Millisecond)
		return time.Duration(loMs+rng.Intn(hiMs-loMs)) * time.Millisecond
	}
	wins := make([]Window, 0, n)
	at := ms(scale, 4*scale)
	for i := 0; i < n; i++ {
		w := Window{At: at, For: ms(3*scale/2, 13*scale/2)}
		wins = append(wins, w)
		at += w.For + ms(scale, 4*scale)
	}
	return wins
}

// Generate derives a Script from a seed: 2-3 clients spread across the
// profile's sites running 2-3 sections each over 1-2 keys, under 1-3
// non-overlapping fault windows drawn from the four classes. A script with
// a skew window runs with a short T so in-section dwell actually expires
// the holder; all other scripts keep T comfortably above section length.
func Generate(seed int64) Script {
	rng := rand.New(rand.NewSource(seed))
	sites := simnet.ProfileIUs.Sites()
	s := Script{
		Seed:     seed,
		Profile:  music.ProfileIUs,
		T:        30 * time.Second,
		Deadline: 2 * time.Minute,
		Policy:   []music.WritePolicy{music.WriteSync, music.WritePipelined, music.WriteBuffered}[rng.Intn(3)],
	}
	s.HolderCache = rng.Intn(2) == 1
	for i := 0; i < 1+rng.Intn(2); i++ {
		s.Keys = append(s.Keys, fmt.Sprintf("key-%c", 'a'+i))
	}

	wins := Windows(rng, 1+rng.Intn(3), 100*time.Millisecond)
	skew := false
	for _, w := range wins {
		f := FaultEvent{At: w.At, For: w.For}
		switch rng.Intn(4) {
		case 0:
			f.Kind, f.Site = FaultCrash, sites[rng.Intn(len(sites))]
		case 1:
			f.Kind = FaultPartition
			iso := rng.Intn(len(sites))
			for j, site := range sites {
				if j == iso {
					f.A = append(f.A, site)
				} else {
					f.B = append(f.B, site)
				}
			}
		case 2:
			f.Kind, f.Rate = FaultLoss, 0.02+0.08*rng.Float64()
		default:
			f.Kind, skew = FaultSkew, true
		}
		s.Faults = append(s.Faults, f)
	}
	if skew {
		s.T = 400 * time.Millisecond
	}

	nClients := 2 + rng.Intn(2)
	for ci := 0; ci < nClients; ci++ {
		plan := ClientPlan{Home: sites[ci%len(sites)]}
		for si := 0; si < 2+rng.Intn(2); si++ {
			sec := SectionPlan{
				Key:      s.Keys[rng.Intn(len(s.Keys))],
				PreDelay: time.Duration(rng.Intn(400)) * time.Millisecond,
				Value:    fmt.Sprintf("c%d-s%d", ci, si),
			}
			switch rng.Intn(6) {
			case 0:
				sec.Value = "" // read-only section
			case 1:
				sec.Value2 = sec.Value + "-b" // two writes, two v2s stamps
			case 2:
				sec.Delete = true
			}
			plan.Sections = append(plan.Sections, sec)
		}
		s.Clients = append(s.Clients, plan)
	}
	return s
}

// Outcome is one executed schedule: the script, the recorded history, the
// checker verdict, and any simulator-level failure (a deadline overrun is a
// liveness violation — some operation never completed).
type Outcome struct {
	Script Script
	Ops    []history.Op
	Result history.Result
	RunErr error
	Traces string // span trees of the run, captured only for violating outcomes
}

// Violating reports whether the schedule failed: an ECF/linearizability
// violation or a run that never finished inside its virtual-time budget.
func (o Outcome) Violating() bool {
	return o.RunErr != nil || len(o.Result.Violations) > 0
}

// Run executes the script on a fresh simulated cluster with history
// recording (and observability, for repro span trees) enabled, then checks
// the recorded history.
func Run(s Script) Outcome {
	opts := []music.Option{
		music.WithProfile(s.Profile),
		music.WithSeed(s.Seed),
		music.WithT(s.T),
		music.WithHistory(),
		music.WithObservability(),
		music.WithProtocolMutation(s.Mutation),
	}
	switch s.ReadMode {
	case "lease":
		opts = append(opts, music.WithHolderLeases())
	case "adaptive":
		opts = append(opts, music.WithAdaptiveReads())
	}
	if len(s.Spares) > 0 {
		opts = append(opts, music.WithSpareSites(s.Spares...))
	}
	c, err := music.New(opts...)
	if err != nil {
		return Outcome{Script: s, RunErr: err}
	}
	defer c.Close()
	v := c.Virtual()
	deadline := s.Deadline
	if deadline == 0 {
		deadline = 2 * time.Minute
	}
	v.SetDeadline(deadline)
	v.SetScheduleShuffle(true)

	runErr := c.Run(func() {
		// The fault driver: one task per window, inject at At, heal at
		// At+For. Windows don't overlap, so heals never clobber each other.
		skewActive := false
		for _, f := range s.Faults {
			f := f
			c.Go(func() {
				c.Sleep(f.At)
				switch f.Kind {
				case FaultCrash:
					c.CrashSite(f.Site)
				case FaultPartition:
					c.PartitionSites(f.A, f.B)
				case FaultLoss:
					c.SetLossRate(f.Rate)
				case FaultSkew:
					skewActive = true
				}
				c.Sleep(f.For)
				switch f.Kind {
				case FaultCrash:
					c.RestartSite(f.Site)
				case FaultPartition:
					c.Heal()
				case FaultLoss:
					c.SetLossRate(0)
				case FaultSkew:
					skewActive = false
				}
			})
		}

		// The membership driver: one task per event. Reconfiguration RPCs
		// legitimately fail while faults are live (the proposer may be cut
		// off), so each event retries through its window; whatever epoch
		// sequence actually materializes, the history checkers certify it.
		for _, ev := range s.Membership {
			ev := ev
			c.Go(func() {
				c.Sleep(ev.At)
				for attempt := 0; attempt < 60; attempt++ {
					var err error
					switch ev.Op {
					case "join":
						_, err = c.JoinSite(ev.Site)
					case "retire":
						_, err = c.RetireSite(ev.Site)
					case "replace":
						_, err = c.ReplaceSite(ev.Site, ev.With)
					}
					if err == nil {
						return
					}
					c.Sleep(500 * time.Millisecond)
				}
			})
		}

		// Plain-Get readers (adaptive read plane only): one task per
		// site × key, so clients that never hold the lock read through the
		// site lease while sections are open and through the eventual path
		// otherwise. Bounded iteration keeps every run terminating.
		if s.ReadMode != "" {
			for _, site := range c.Sites() {
				for _, key := range s.Keys {
					rcl := c.Client(site)
					key := key
					c.Go(func() {
						for i := 0; i < 40; i++ {
							_, _ = rcl.Get(key)
							c.Sleep(75 * time.Millisecond)
						}
					})
				}
			}
		}

		done := sim.NewMailbox[struct{}](v)
		for ci, plan := range s.Clients {
			ci, plan := ci, plan
			copts := []music.ClientOption{music.WithWritePolicy(s.Policy)}
			if s.HolderCache {
				copts = append(copts, music.WithHolderCache())
			}
			cl := c.FailoverClient(plan.Home, copts...)
			c.Go(func() {
				defer done.Send(struct{}{})
				for si, sec := range plan.Sections {
					c.Sleep(sec.PreDelay)
					sp := c.Obs().Tracer().StartRoot(fmt.Sprintf("explore.section c%d s%d", ci, si))
					err := cl.RunCritical(sec.Key, func(cs *music.CriticalSection) error {
						if _, err := cs.Get(); err != nil {
							return err
						}
						if skewActive {
							// The slow-clock holder: dwell past the T bound
							// so contenders preempt it mid-section.
							c.Sleep(s.T + s.T/2)
						}
						switch {
						case sec.Delete:
							if err := cs.Delete(); err != nil {
								return err
							}
						case sec.Value != "":
							if err := cs.Put([]byte(sec.Value)); err != nil {
								return err
							}
						}
						if sec.Value2 != "" {
							if err := cs.Put([]byte(sec.Value2)); err != nil {
								return err
							}
						}
						_, err := cs.Get()
						return err
					})
					// Section errors (expiry, exhausted retries) are normal
					// under faults; the history records what really happened.
					sp.EndErr(err)
				}
			})
		}
		for range s.Clients {
			if _, err := done.RecvTimeout(deadline); err != nil {
				return
			}
		}
	})

	out := Outcome{
		Script: s,
		Ops:    c.History().Ops(),
		RunErr: runErr,
	}
	out.Result = history.Check(out.Ops, history.CheckOptions{})
	if out.Violating() {
		out.Traces = captureTraces(c)
	}
	return out
}

// GenerateMode derives the mode variant of seed's schedule: the same faults
// and workload as Generate(seed), with the adaptive read plane enabled.
func GenerateMode(seed int64, mode string) Script {
	s := Generate(seed)
	s.ReadMode = mode
	return s
}

// Explore generates and runs one schedule per seed — the campaign loop
// behind the pinned CI batch, the nightly randomized batch, and
// `musicbench -exp explore`.
func Explore(seeds []int64) []Outcome {
	outs := make([]Outcome, 0, len(seeds))
	for _, seed := range seeds {
		outs = append(outs, Run(Generate(seed)))
	}
	return outs
}

// captureTraces renders the most recent span trees for a violating run.
func captureTraces(c *music.Cluster) string {
	tr := c.Obs().Tracer()
	var b strings.Builder
	for _, id := range tr.TraceIDs(8) {
		tr.WriteTree(&b, id)
	}
	return b.String()
}
