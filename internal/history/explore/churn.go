package explore

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simnet"
	"repro/music"
)

// MembershipEvent is one timed reconfiguration in a churn script: at At, the
// driver proposes the change and retries until it commits (reconfiguration
// RPCs legitimately fail while a concurrent fault window is open).
type MembershipEvent struct {
	At   time.Duration
	Op   string // "join", "retire", or "replace"
	Site string // the site joining, retiring, or being replaced
	With string // replace only: the spare taking Site's place
}

// String renders the event as one membership-script line.
func (e MembershipEvent) String() string {
	detail := " site=" + e.Site
	if e.Op == "replace" {
		detail += " with=" + e.With
	}
	return fmt.Sprintf("%-9s at=%-8v%s", e.Op, e.At, detail)
}

// ChurnClasses returns the set of reconfiguration ops the script exercises.
func (s Script) ChurnClasses() map[string]bool {
	m := make(map[string]bool, 3)
	for _, ev := range s.Membership {
		m[ev.Op] = true
	}
	return m
}

// GenerateChurn derives a live-membership churn Script from a seed. It is a
// separate generator from Generate so the pinned fault-exploration seeds stay
// byte-stable. Every script starts the three-site cluster with two spare
// sites provisioned and draws one of the three reconfiguration scenarios the
// membership design must survive:
//
//   - join-during-section: a spare joins while clients hold sections whose
//     keys the new epoch may move;
//   - retire-of-lockholder-site: a spare joins early, then the home site of
//     the busiest client retires while that client is mid-section, driving
//     the epoch fence + failover re-bind path;
//   - replace-under-partition: one site is partitioned off (or crashed) and
//     replaced by a spare while the fault window is still open.
//
// A third of the seeds also draw a background message-loss window, so
// reconfiguration is exercised over a lossy config log.
func GenerateChurn(seed int64) Script {
	rng := rand.New(rand.NewSource(seed))
	sites := simnet.ProfileIUs.Sites()
	s := Script{
		Seed:     seed,
		Profile:  music.ProfileIUs,
		T:        30 * time.Second,
		Deadline: 3 * time.Minute,
		Policy:   []music.WritePolicy{music.WriteSync, music.WritePipelined, music.WriteBuffered}[rng.Intn(3)],
		Spares:   []string{"site-d", "site-e"},
	}
	s.HolderCache = rng.Intn(2) == 1
	for i := 0; i < 1+rng.Intn(2); i++ {
		s.Keys = append(s.Keys, fmt.Sprintf("key-%c", 'a'+i))
	}

	victim := sites[rng.Intn(len(sites))]
	switch rng.Intn(3) {
	case 0: // join-during-section
		s.Membership = []MembershipEvent{
			{At: time.Duration(400+rng.Intn(400)) * time.Millisecond, Op: "join", Site: "site-d"},
		}
	case 1: // retire-of-lockholder-site (join first so three sites remain)
		join := time.Duration(200+rng.Intn(200)) * time.Millisecond
		s.Membership = []MembershipEvent{
			{At: join, Op: "join", Site: "site-d"},
			{At: join + time.Duration(400+rng.Intn(400))*time.Millisecond, Op: "retire", Site: victim},
		}
	default: // replace-under-partition
		w := Windows(rng, 1, 200*time.Millisecond)[0]
		f := FaultEvent{At: w.At, For: w.For}
		if rng.Intn(2) == 0 {
			f.Kind = FaultPartition
			for _, site := range sites {
				if site == victim {
					f.A = append(f.A, site)
				} else {
					f.B = append(f.B, site)
				}
			}
		} else {
			f.Kind, f.Site = FaultCrash, victim
		}
		s.Faults = append(s.Faults, f)
		s.Membership = []MembershipEvent{
			{At: f.At + f.For/4, Op: "replace", Site: victim, With: "site-d"},
		}
	}
	if rng.Intn(3) == 0 {
		last := s.Membership[len(s.Membership)-1].At
		s.Faults = append(s.Faults, FaultEvent{
			At:   last + time.Duration(500+rng.Intn(500))*time.Millisecond,
			For:  time.Duration(300+rng.Intn(500)) * time.Millisecond,
			Kind: FaultLoss,
			Rate: 0.02 + 0.06*rng.Float64(),
		})
	}

	// Clients: the first is homed at the victim site with sections long
	// enough in think-time spread to straddle the reconfigurations; the rest
	// spread across the remaining sites.
	nClients := 2 + rng.Intn(2)
	for ci := 0; ci < nClients; ci++ {
		home := victim
		if ci > 0 {
			others := make([]string, 0, len(sites)-1)
			for _, site := range sites {
				if site != victim {
					others = append(others, site)
				}
			}
			home = others[(ci-1)%len(others)]
		}
		plan := ClientPlan{Home: home}
		for si := 0; si < 3+rng.Intn(2); si++ {
			sec := SectionPlan{
				Key:      s.Keys[rng.Intn(len(s.Keys))],
				PreDelay: time.Duration(rng.Intn(700)) * time.Millisecond,
				Value:    fmt.Sprintf("c%d-s%d", ci, si),
			}
			switch rng.Intn(6) {
			case 0:
				sec.Value = ""
			case 1:
				sec.Value2 = sec.Value + "-b"
			case 2:
				sec.Delete = true
			}
			plan.Sections = append(plan.Sections, sec)
		}
		s.Clients = append(s.Clients, plan)
	}
	return s
}

// ExploreChurn generates and runs one churn schedule per seed — the campaign
// loop behind the pinned membership-churn CI batch and its nightly
// fresh-seed counterpart.
func ExploreChurn(seeds []int64) []Outcome {
	outs := make([]Outcome, 0, len(seeds))
	for _, seed := range seeds {
		outs = append(outs, Run(GenerateChurn(seed)))
	}
	return outs
}
