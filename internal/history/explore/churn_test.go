package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// memberSeeds returns the membership-churn batch's seed set:
// MUSIC_MEMBER_SEEDS (comma-separated, how scripts/check.sh and the nightly
// CI job pin or randomize the batch) or a fixed default, trimmed under
// -short.
func memberSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("MUSIC_MEMBER_SEEDS"); env != "" {
		var seeds []int64
		for _, part := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("MUSIC_MEMBER_SEEDS: bad seed %q: %v", part, err)
			}
			seeds = append(seeds, s)
		}
		return seeds
	}
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	if testing.Short() {
		seeds = seeds[:4]
	}
	return seeds
}

// TestChurnPinnedSeeds is the deterministic membership-churn batch: every
// pinned schedule reconfigures a live dynamic cluster mid-workload and must
// complete inside its virtual-time budget with a history all ECF checkers —
// including the epoch rules — accept. With MUSIC_EXPLORE_REPRO_DIR set, each
// violation's minimized repro is written there for the CI artifact upload.
func TestChurnPinnedSeeds(t *testing.T) {
	seeds := memberSeeds(t)
	reproDir := os.Getenv("MUSIC_EXPLORE_REPRO_DIR")
	classes := make(map[string]bool)
	for _, out := range ExploreChurn(seeds) {
		for k := range out.Script.ChurnClasses() {
			classes[k] = true
		}
		if out.Violating() {
			_, mout := Minimize(out.Script)
			repro := mout.Repro()
			if reproDir != "" {
				path := filepath.Join(reproDir, fmt.Sprintf("repro-churn-seed-%d.txt", out.Script.Seed))
				if err := os.WriteFile(path, []byte(repro), 0o644); err != nil {
					t.Errorf("writing repro: %v", err)
				}
			}
			t.Errorf("churn seed %d violating:\n%s", out.Script.Seed, repro)
		}
	}
	if os.Getenv("MUSIC_MEMBER_SEEDS") == "" && !testing.Short() && len(classes) < 3 {
		t.Errorf("default pinned churn batch covers ops %v, want join, retire, and replace", classes)
	}
}

// TestGenerateChurnDeterministic pins the generator contract behind seed
// replay: the same seed must yield an identical script, and churn scripts
// must not perturb the byte-stable classic generator.
func TestGenerateChurnDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, b := GenerateChurn(seed), GenerateChurn(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if len(a.Spares) == 0 || len(a.Membership) == 0 {
			t.Fatalf("seed %d churn script has no spares/membership: %+v", seed, a)
		}
	}
	if g := Generate(1); len(g.Spares) != 0 || len(g.Membership) != 0 {
		t.Fatalf("classic Generate grew churn fields: %+v", g)
	}
}

// TestGenerateChurnScenarioCoverage checks the generator's draw reaches all
// three mandated reconfiguration scenarios across a modest seed range, and
// that replace events always ride inside an open fault window.
func TestGenerateChurnScenarioCoverage(t *testing.T) {
	classes := make(map[string]int)
	for seed := int64(1); seed <= 60; seed++ {
		s := GenerateChurn(seed)
		for k := range s.ChurnClasses() {
			classes[k]++
		}
		for _, ev := range s.Membership {
			if ev.Op != "replace" {
				continue
			}
			inWindow := false
			for _, f := range s.Faults {
				if (f.Kind == FaultPartition || f.Kind == FaultCrash) && ev.At >= f.At && ev.At < f.At+f.For {
					inWindow = true
				}
			}
			if !inWindow {
				t.Errorf("seed %d: replace at %v outside any crash/partition window", seed, ev.At)
			}
		}
	}
	for _, op := range []string{"join", "retire", "replace"} {
		if classes[op] == 0 {
			t.Errorf("op %s never drawn across 60 seeds", op)
		}
	}
	t.Logf("churn scenario coverage: %v", classes)
}
