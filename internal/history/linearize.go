package history

import (
	"math"
	"sort"
	"time"
)

// linearize.go is a from-scratch Wing & Gong-style linearizability checker
// for the per-key register induced by a MUSIC history. Each key is checked
// independently (locks serialize per key, so histories decompose).
//
// The model:
//
//   - required ops: successful critical gets (quorum-backed; session echo
//     reads are excluded — the ECF "echo" rule checks them — and so are
//     adaptive weak reads, which the "monitor-coverage" rule judges)
//     and successful, non-stale critical writes including grant-time
//     synchronize rewrites. Every required op must appear in the
//     linearization, at a point inside its [Inv, Resp] interval.
//   - optional ops: stamped-but-failed writes (the quorum write was issued
//     and may settle at any later time — response extends to infinity) and
//     stale-issued successful writes (committed but masked by the next
//     grant's higher-stamped synchronize; under a correct protocol nobody
//     observes them). Optional ops may be skipped, or linearized inside
//     their (possibly unbounded) interval if some read did observe them.
//
// The search is the classic interval-order DFS: repeatedly pick a minimal
// op — one invoked before every other undone *required* op responds —
// apply it to the register, and recurse; memoize failed (done-set,
// register-state) pairs. Histories produced by a working lock are almost
// sequential, so the search is effectively linear; the node budget only
// exists to bound adversarial histories.

const defaultWGLBudget = 1 << 20

// wglOp is one searchable op: a read or write of a value id.
type wglOp struct {
	op       Op
	isWrite  bool
	val      int // value id written or observed
	optional bool
	resp     time.Duration // op.Resp, or +inf for failed writes
}

// linearizeKey checks one key's history; returns violations and whether the
// search was decided within budget.
func linearizeKey(kh *keyHistory, budget int) ([]Violation, bool) {
	if budget <= 0 {
		budget = defaultWGLBudget
	}
	values := map[string]int{} // "" (absent) is id 0
	valueID := func(v []byte, present bool) int {
		if !present {
			return 0
		}
		key := "v" + string(v)
		id, ok := values[key]
		if !ok {
			id = len(values) + 1
			values[key] = id
		}
		return id
	}

	var ops []wglOp
	for _, w := range kh.writes {
		ops = append(ops, wglOp{
			op: w, isWrite: true, val: valueID(w.Value, w.Present),
			optional: w.Kind != KindSync && kh.staleIssued(w),
			resp:     w.Resp,
		})
	}
	for _, w := range kh.failed {
		ops = append(ops, wglOp{
			op: w, isWrite: true, val: valueID(w.Value, w.Present),
			optional: true, resp: time.Duration(math.MaxInt64),
		})
	}
	for _, g := range kh.gets {
		if echoNote(g.Note) {
			continue
		}
		if g.Note == NoteWeak {
			// Adaptive ONE read: exempt from strict freshness by design (the
			// monitor-coverage rule judges it), so it cannot anchor the
			// register search either — a legitimately stale weak read would
			// otherwise make a correct history non-linearizable.
			continue
		}
		ops = append(ops, wglOp{op: g, val: valueID(g.Value, g.Present), resp: g.Resp})
	}
	if len(ops) == 0 {
		return nil, true
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].op.Inv != ops[j].op.Inv {
			return ops[i].op.Inv < ops[j].op.Inv
		}
		return ops[i].op.ID < ops[j].op.ID
	})

	s := &wglSearch{ops: ops, budget: budget, memo: make(map[string]struct{})}
	done := make([]uint64, (len(ops)+63)/64)
	if s.search(done, len(ops), 0) {
		return nil, true
	}
	if s.budget <= 0 {
		return nil, false
	}
	required := make([]Op, 0, len(ops))
	for _, o := range ops {
		if !o.optional {
			required = append(required, o.op)
		}
	}
	const maxShown = 48
	if len(required) > maxShown {
		required = required[len(required)-maxShown:]
	}
	return []Violation{{
		Rule:   "linearizability",
		Key:    kh.key,
		Detail: "no linearization of the key's critical reads and writes exists",
		Ops:    required,
	}}, true
}

type wglSearch struct {
	ops    []wglOp
	budget int
	memo   map[string]struct{}
}

func (s *wglSearch) search(done []uint64, undone int, reg int) bool {
	if undone == 0 {
		return true
	}
	// Required completion: all non-optional ops must be done.
	allOptional := true
	for i, o := range s.ops {
		if done[i/64]&(1<<(i%64)) == 0 && !o.optional {
			allOptional = false
			break
		}
	}
	if allOptional {
		return true
	}
	s.budget--
	if s.budget <= 0 {
		return false
	}
	key := memoKey(done, reg)
	if _, seen := s.memo[key]; seen {
		return false
	}

	// minResp over undone required ops bounds which op may linearize next.
	minResp := time.Duration(math.MaxInt64)
	for i, o := range s.ops {
		if done[i/64]&(1<<(i%64)) == 0 && !o.optional && o.resp < minResp {
			minResp = o.resp
		}
	}
	for i, o := range s.ops {
		if done[i/64]&(1<<(i%64)) != 0 {
			continue
		}
		if o.op.Inv >= minResp && o.resp != minResp {
			continue // some undone required op responded before o began
		}
		if !o.isWrite && o.val != reg {
			continue // a read observing a different value cannot go here
		}
		next := reg
		if o.isWrite {
			next = o.val
		}
		done[i/64] |= 1 << (i % 64)
		// Choosing o skips every undone optional op that already responded
		// before o's invocation — it can never linearize after o. The skip
		// is handled implicitly: optional ops impose no minResp bound and
		// the completion test ignores them.
		ok := s.search(done, undone-1, next)
		done[i/64] &^= 1 << (i % 64)
		if ok {
			return true
		}
		if s.budget <= 0 {
			return false
		}
	}
	s.memo[key] = struct{}{}
	return false
}

func memoKey(done []uint64, reg int) string {
	b := make([]byte, 0, len(done)*8+4)
	for _, w := range done {
		for k := 0; k < 8; k++ {
			b = append(b, byte(w>>(8*k)))
		}
	}
	b = append(b, byte(reg), byte(reg>>8), byte(reg>>16), byte(reg>>24))
	return string(b)
}
