package history

import (
	"strings"
	"testing"
	"time"
)

const us = time.Microsecond

// mk builds a successful op on key "k" with the given interval.
func mk(kind Kind, ref int64, inv, resp time.Duration) Op {
	return Op{Kind: kind, Key: "k", Ref: ref, Site: "site-a", Inv: inv, Resp: resp}
}

func withValue(o Op, v string, ts int64) Op {
	o.Value, o.Present, o.TS = []byte(v), true, ts
	return o
}

func failed(o Op, msg string) Op {
	o.Err = msg
	return o
}

// finish numbers ops in slice order, mirroring Recorder completion ids.
func finish(ops []Op) []Op {
	for i := range ops {
		ops[i].ID = uint64(i + 1)
	}
	return ops
}

// ts models v2s stamps for tests: lockRef windows of 1000 with the forced
// δ mark at the window top.
func ts(ref int64, elapsed int64) int64 { return 1000*ref + elapsed }
func tsForced(ref int64) int64          { return 1000*ref + 999 }

func rules(vs []Violation) string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Rule)
	}
	return strings.Join(names, ",")
}

// TestECFCleanHistory: a correct two-section run (grant, synchronize, writes,
// reads, clean release, next grant) produces no violations.
func TestECFCleanHistory(t *testing.T) {
	g1 := mk(KindAcquire, 1, 0, 10*us)
	g1.Synchronized = true
	sync1 := mk(KindSync, 1, 2*us, 8*us)
	sync1.TS = ts(1, 0) // rewrote the absent initial value
	ops := finish([]Op{
		g1,
		sync1,
		withValue(mk(KindPut, 1, 20*us, 30*us), "a", ts(1, 20)),
		withValue(mk(KindGet, 1, 40*us, 50*us), "a", 0),
		mk(KindRelease, 1, 60*us, 70*us),
		withValue(mk(KindAcquire, 2, 80*us, 90*us), "a", 0), // seeded grant, flag clean
		withValue(mk(KindGet, 2, 100*us, 110*us), "a", 0),
		withValue(mk(KindPut, 2, 120*us, 130*us), "b", ts(2, 40)),
		withValue(mk(KindGet, 2, 140*us, 150*us), "b", 0),
		mk(KindRelease, 2, 160*us, 170*us),
	})
	res := Check(ops, CheckOptions{})
	if !res.Ok() {
		t.Fatalf("clean history flagged: %s\n%s", rules(res.Violations), Render(ops))
	}
	if res.Keys != 1 || res.Ops != len(ops) {
		t.Fatalf("bad accounting: %+v", res)
	}
}

// TestECFStaleLockRefWriteSurviving is the checker's own regression test: a
// deliberately broken history in which a preempted lockRef's timed-out write
// resurfaces inside the next critical section (the grant skipped
// synchronize), and the checker must name the offending ops.
func TestECFStaleLockRefWriteSurviving(t *testing.T) {
	g1 := mk(KindAcquire, 1, 0, 5*us)
	putA := withValue(mk(KindPut, 1, 10*us, 20*us), "v1", ts(1, 10))
	putB := failed(withValue(mk(KindPut, 1, 30*us, 45*us), "v2", ts(1, 30)), "store: timeout")
	fr := mk(KindForcedRelease, 1, 100*us, 110*us)
	fr.TS = tsForced(1)
	g2 := withValue(mk(KindAcquire, 2, 120*us, 140*us), "v1", 0)
	g2.Synchronized = false // the injected protocol mutation: no synchronize
	getOK := withValue(mk(KindGet, 2, 150*us, 160*us), "v1", 0)
	getBad := withValue(mk(KindGet, 2, 200*us, 210*us), "v2", 0) // stale write leaked
	ops := finish([]Op{g1, putA, putB, fr, g2, getOK, getBad})
	putB, fr, getBad = ops[2], ops[3], ops[6] // finish assigned the ids

	res := Check(ops, CheckOptions{})
	var fresh, syncSkip *Violation
	for i := range res.Violations {
		switch res.Violations[i].Rule {
		case "freshness":
			fresh = &res.Violations[i]
		case "sync-skip":
			syncSkip = &res.Violations[i]
		}
	}
	if fresh == nil {
		t.Fatalf("stale-lockRef write surviving not flagged as freshness violation; got [%s]", rules(res.Violations))
	}
	if syncSkip == nil {
		t.Fatalf("skipped synchronize after forced release not flagged; got [%s]", rules(res.Violations))
	}
	// The violation must carry the offending ops: the read, the dead write
	// it echoed, and the forced release that killed it.
	has := func(v *Violation, id uint64) bool {
		for _, o := range v.Ops {
			if o.ID == id {
				return true
			}
		}
		return false
	}
	if !has(fresh, getBad.ID) || !has(fresh, putB.ID) || !has(fresh, fr.ID) {
		t.Fatalf("freshness violation missing offending ops:\n%s", fresh)
	}
	if !strings.Contains(fresh.String(), "freshness") || !strings.Contains(fresh.String(), `"v2"`) {
		t.Fatalf("violation render: %s", fresh)
	}

	// The same history with the synchronize performed (and the value
	// re-stamped into lockRef 2's window) is clean except that reading v2
	// would still be stale; reading v1 passes.
	sync2 := withValue(mk(KindSync, 2, 125*us, 135*us), "v1", ts(2, 0))
	g2ok := g2
	g2ok.Synchronized = true
	fixed := finish([]Op{g1, putA, putB, fr, g2ok, sync2, getOK, getOK})
	if res := Check(fixed, CheckOptions{}); !res.Ok() {
		t.Fatalf("correct-protocol history flagged: %s", rules(res.Violations))
	}
}

// TestECFSyncSkipDuplicateForcedRelease: two sites concurrently preempting
// the same ref record two forced releases, but the store treats them as one
// preemption — only the earliest creates a synchronize obligation. The
// duplicate completing *after* ref 2's synchronized grant must not impose a
// fresh obligation on ref 3 (the false positive the explorer surfaced).
func TestECFSyncSkipDuplicateForcedRelease(t *testing.T) {
	g1 := mk(KindAcquire, 1, 0, 5*us)
	fr1 := mk(KindForcedRelease, 1, 50*us, 60*us)
	fr1.TS = tsForced(1)
	g2 := mk(KindAcquire, 2, 70*us, 90*us)
	g2.Synchronized = true                            // discharges the obligation
	fr1dup := mk(KindForcedRelease, 1, 55*us, 100*us) // straggling duplicate
	fr1dup.Site = "site-b"
	fr1dup.TS = tsForced(1)
	rel2 := mk(KindRelease, 2, 110*us, 120*us)
	g3 := mk(KindAcquire, 3, 130*us, 150*us) // legitimately unsynchronized

	ops := finish([]Op{g1, fr1, g2, fr1dup, rel2, g3})
	if res := Check(ops, CheckOptions{}); !res.Ok() {
		t.Fatalf("duplicate forced release imposed a second obligation: %s", rules(res.Violations))
	}

	// Control: with ref 2's grant unsynchronized the single obligation is
	// unmet and must still be flagged.
	g2bad := g2
	g2bad.Synchronized = false
	broken := finish([]Op{g1, fr1, g2bad, fr1dup, rel2, g3})
	res := Check(broken, CheckOptions{})
	if !strings.Contains(rules(res.Violations), "sync-skip") {
		t.Fatalf("unsynchronized first grant after forced release not flagged; got [%s]", rules(res.Violations))
	}
}

// TestECFFreshnessAmbiguity: concurrent and timed-out-but-not-dead writes
// are acceptable read results — no false positives.
func TestECFFreshnessAmbiguity(t *testing.T) {
	t.Run("overlapping write", func(t *testing.T) {
		ops := finish([]Op{
			mk(KindAcquire, 1, 0, 5*us),
			withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(1, 10)),
			withValue(mk(KindPut, 1, 30*us, 60*us), "b", ts(1, 30)), // concurrent with the read
			withValue(mk(KindGet, 1, 40*us, 50*us), "b", 0),
		})
		if res := Check(ops, CheckOptions{}); !res.Ok() {
			t.Fatalf("overlapping write read flagged: %s", rules(res.Violations))
		}
	})
	t.Run("timed-out write without preemption", func(t *testing.T) {
		// The write timed out but its lockRef was never forcibly released:
		// hinted handoff may still deliver it, so reading it is legal.
		ops := finish([]Op{
			mk(KindAcquire, 1, 0, 5*us),
			withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(1, 10)),
			failed(withValue(mk(KindPut, 1, 30*us, 45*us), "b", ts(1, 30)), "store: timeout"),
			withValue(mk(KindGet, 1, 100*us, 110*us), "b", 0),
		})
		if res := Check(ops, CheckOptions{}); !res.Ok() {
			t.Fatalf("surviving timed-out write flagged: %s", rules(res.Violations))
		}
	})
}

func TestECFTSOrder(t *testing.T) {
	t.Run("decreasing stamp", func(t *testing.T) {
		ops := finish([]Op{
			withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(1, 50)),
			withValue(mk(KindPut, 1, 30*us, 40*us), "b", ts(1, 10)),
		})
		if got := rules(CheckECF(ops)); !strings.Contains(got, "ts-order") {
			t.Fatalf("decreasing v2s not flagged: [%s]", got)
		}
	})
	t.Run("frozen stamp", func(t *testing.T) {
		ops := finish([]Op{
			withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(1, 0)),
			withValue(mk(KindPut, 1, 30*us, 40*us), "b", ts(1, 0)), // frozen elapsed clock
		})
		if got := rules(CheckECF(ops)); !strings.Contains(got, "ts-order") {
			t.Fatalf("frozen v2s not flagged: [%s]", got)
		}
	})
	t.Run("redriven same value", func(t *testing.T) {
		ops := finish([]Op{
			withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(1, 10)),
			withValue(mk(KindPut, 1, 30*us, 40*us), "a", ts(1, 10)), // idempotent redrive
		})
		if got := rules(CheckECF(ops)); got != "" {
			t.Fatalf("same-value same-stamp redrive flagged: [%s]", got)
		}
	})
}

func TestECFRefWindow(t *testing.T) {
	ops := finish([]Op{
		withValue(mk(KindPut, 1, 10*us, 20*us), "a", ts(2, 5)), // ref 1 stamped inside ref 2's window
		withValue(mk(KindPut, 2, 30*us, 40*us), "b", ts(2, 0)),
	})
	if got := rules(CheckECF(ops)); !strings.Contains(got, "ref-window") {
		t.Fatalf("window overlap not flagged: [%s]", got)
	}
}

func TestECFReleaseAck(t *testing.T) {
	ops := finish([]Op{
		withValue(mk(KindPut, 1, 10*us, 50*us), "a", ts(1, 10)),
		mk(KindRelease, 1, 30*us, 40*us), // released mid-write
	})
	if got := rules(CheckECF(ops)); !strings.Contains(got, "release-ack") {
		t.Fatalf("release during in-flight write not flagged: [%s]", got)
	}
}

func TestECFGrantOrder(t *testing.T) {
	ops := finish([]Op{
		mk(KindAcquire, 2, 0, 10*us),
		mk(KindAcquire, 1, 20*us, 30*us), // lower ref first-granted later
	})
	if got := rules(CheckECF(ops)); !strings.Contains(got, "grant-order") {
		t.Fatalf("out-of-order grants not flagged: [%s]", got)
	}
}

func TestECFEcho(t *testing.T) {
	g := withValue(mk(KindAcquire, 1, 0, 5*us), "seed", 0)
	put := withValue(mk(KindPut, 1, 10*us, 20*us), "mine", ts(1, 10))
	okSeed := withValue(mk(KindGet, 1, 6*us, 6*us), "seed", 0)
	okSeed.Note = "cache"
	okOwn := withValue(mk(KindGet, 1, 30*us, 30*us), "mine", 0)
	okOwn.Note = "buffer"
	bad := withValue(mk(KindGet, 1, 40*us, 40*us), "alien", 0)
	bad.Note = "cache"

	clean := finish([]Op{g, put, okSeed, okOwn})
	if got := rules(CheckECF(clean)); got != "" {
		t.Fatalf("legal echo reads flagged: [%s]", got)
	}
	broken := finish([]Op{g, put, okSeed, bad})
	vs := CheckECF(broken)
	if got := rules(vs); !strings.Contains(got, "echo") {
		t.Fatalf("foreign cached value not flagged: [%s]", got)
	}
}

func TestECFMixedKeySkipped(t *testing.T) {
	ops := finish([]Op{
		withValue(mk(KindEventualPut, 0, 0, 10*us), "e", 77),
		withValue(mk(KindGet, 1, 20*us, 30*us), "e", 0),
	})
	res := Check(ops, CheckOptions{})
	if len(res.Skipped) != 1 || res.Skipped[0] != "k" {
		t.Fatalf("mixed eventual/critical key not skipped: %+v", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("skipped key still checked: %s", rules(res.Violations))
	}
}
