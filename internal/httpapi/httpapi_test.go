package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/music"
)

// harness spins up a live (real-time, local-profile) cluster behind an
// httptest server.
func harness(t *testing.T) (*httptest.Server, *music.Cluster) {
	t.Helper()
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime())
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(New(c.Client("site-a")))
	t.Cleanup(srv.Close)
	return srv, c
}

func do(t *testing.T, method, url string, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(b)
}

// lockViaAPI drives the full REST lock flow and returns the lockRef.
func lockViaAPI(t *testing.T, base, key string) int64 {
	t.Helper()
	resp, body := do(t, "POST", base+"/v1/locks/"+key, "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create lock: %d %s", resp.StatusCode, body)
	}
	var created struct {
		LockRef int64 `json:"lockRef"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := 0; i < 200; i++ {
		resp, body = do(t, "GET", fmt.Sprintf("%s/v1/locks/%s/%d", base, key, created.LockRef), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acquire: %d %s", resp.StatusCode, body)
		}
		var acq struct {
			Holder bool `json:"holder"`
		}
		if err := json.Unmarshal([]byte(body), &acq); err != nil {
			t.Fatalf("decode acquire: %v", err)
		}
		if acq.Holder {
			return created.LockRef
		}
	}
	t.Fatal("never acquired")
	return 0
}

func TestFullCriticalSectionOverREST(t *testing.T) {
	srv, _ := harness(t)
	ref := lockViaAPI(t, srv.URL, "k")

	resp, body := do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "hello")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("criticalPut: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "")
	if resp.StatusCode != http.StatusOK || body != "hello" {
		t.Fatalf("criticalGet = %d %q", resp.StatusCode, body)
	}
	resp, body = do(t, "DELETE", fmt.Sprintf("%s/v1/locks/k/%d", srv.URL, ref), "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release: %d %s", resp.StatusCode, body)
	}
}

func TestEventualPutGetAndKeys(t *testing.T) {
	srv, _ := harness(t)
	resp, body := do(t, "PUT", srv.URL+"/v1/keys/plain", "v1")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", srv.URL+"/v1/keys/plain", "")
	if resp.StatusCode != http.StatusOK || body != "v1" {
		t.Fatalf("get = %d %q", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", srv.URL+"/v1/keys", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "plain") {
		t.Fatalf("keys = %d %s", resp.StatusCode, body)
	}
}

func TestGetMissingKeyIs404(t *testing.T) {
	srv, _ := harness(t)
	resp, _ := do(t, "GET", srv.URL+"/v1/keys/nothing", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestNonHolderPutIs412(t *testing.T) {
	srv, _ := harness(t)
	_ = lockViaAPI(t, srv.URL, "k")
	// A second lockRef exists but is not the holder.
	resp, body := do(t, "POST", srv.URL+"/v1/locks/k", "")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create 2nd ref: %d", resp.StatusCode)
	}
	var created struct {
		LockRef int64 `json:"lockRef"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}
	resp, _ = do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, created.LockRef), "x")
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("non-holder put = %d, want 412", resp.StatusCode)
	}
}

func TestPreemptedHolderIs409(t *testing.T) {
	srv, _ := harness(t)
	ref := lockViaAPI(t, srv.URL, "k")
	// Another MUSIC replica force-releases the lock.
	resp, body := do(t, "DELETE", fmt.Sprintf("%s/v1/locks/k/%d?forced=1", srv.URL, ref), "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("forced release: %d %s", resp.StatusCode, body)
	}
	ref2 := lockViaAPI(t, srv.URL, "k")
	if ref2 == ref {
		t.Fatal("same ref reissued")
	}
	resp, _ = do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "stale")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("preempted put = %d, want 409", resp.StatusCode)
	}
}

func TestCriticalDelete(t *testing.T) {
	srv, _ := harness(t)
	ref := lockViaAPI(t, srv.URL, "k")
	do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "v")
	resp, body := do(t, "DELETE", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	resp, _ = do(t, "GET", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", resp.StatusCode)
	}
}

func TestBadInputs(t *testing.T) {
	srv, _ := harness(t)
	resp, _ := do(t, "GET", srv.URL+"/v1/locks/k/notanumber", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ref = %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", srv.URL+"/v1/keys/k", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete without ref = %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, "GET", srv.URL+"/v1/keys/k?lockRef=0", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero ref = %d, want 400", resp.StatusCode)
	}
}

func TestHealth(t *testing.T) {
	srv, _ := harness(t)
	resp, body := do(t, "GET", srv.URL+"/v1/health", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "site-a") {
		t.Fatalf("health = %d %s", resp.StatusCode, body)
	}
}

// obsHarness is harness with the observability subsystem enabled.
func obsHarness(t *testing.T) (*httptest.Server, *music.Cluster) {
	t.Helper()
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime(),
		music.WithObservability())
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(New(c.Client("site-a")))
	t.Cleanup(srv.Close)
	return srv, c
}

func TestObservabilityDisabledIs404(t *testing.T) {
	srv, _ := harness(t)
	for _, path := range []string{"/metrics", "/traces"} {
		resp, body := do(t, "GET", srv.URL+path, "")
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "observability disabled") {
			t.Fatalf("GET %s = %d %s, want 404 observability disabled", path, resp.StatusCode, body)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	srv, _ := obsHarness(t)
	ref := lockViaAPI(t, srv.URL, "k")
	if resp, body := do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "v"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("criticalPut: %d %s", resp.StatusCode, body)
	}
	resp, body := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"simnet_rpc_latency_count{",
		`music_op_latency_count{op="criticalPut",site="site-a"}`,
		"store_put_latency_count{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	srv, c := obsHarness(t)

	// Root a trace around a full critical section driven through the
	// cluster client (same goroutine, so spans nest under the root).
	tr := c.Obs().Tracer()
	root := tr.StartRoot("test.cs")
	cl := c.Client("site-a")
	if err := cl.RunCritical("tk", func(cs *music.CriticalSection) error {
		return cs.Put([]byte("v"))
	}); err != nil {
		t.Fatalf("RunCritical: %v", err)
	}
	root.End()

	resp, body := do(t, "GET", srv.URL+"/traces", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces = %d %s", resp.StatusCode, body)
	}
	var listing struct {
		Traces []struct {
			Trace uint64          `json:"trace"`
			Spans json.RawMessage `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("decode traces: %v\n%s", err, body)
	}
	if len(listing.Traces) == 0 {
		t.Fatalf("no traces listed: %s", body)
	}

	// Fetch the rooted trace by id; its tree must contain the MUSIC ops.
	resp, body = do(t, "GET", fmt.Sprintf("%s/traces?id=%d", srv.URL, uint64(root.Trace)), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces?id = %d %s", resp.StatusCode, body)
	}
	for _, want := range []string{"test.cs", "music.createLockRef", "music.criticalPut", "music.releaseLock"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace %d missing span %q:\n%s", root.Trace, want, body)
		}
	}

	if resp, _ := do(t, "GET", srv.URL+"/traces?id=zzz", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id = %d, want 400", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/traces?limit=-1", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
}

func TestConsistencyDisabledIs404(t *testing.T) {
	srv, _ := harness(t)
	resp, body := do(t, "GET", srv.URL+"/v1/consistency", "")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "adaptive reads disabled") {
		t.Fatalf("consistency = %d %s, want 404 adaptive reads disabled", resp.StatusCode, body)
	}
}

func TestConsistencyEndpoint(t *testing.T) {
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime(),
		music.WithAdaptiveReads())
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(New(c.Client("site-a")))
	t.Cleanup(srv.Close)

	// No weak reads yet: the monitor has observed no site.
	resp, body := do(t, "GET", srv.URL+"/v1/consistency", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("consistency = %d %s", resp.StatusCode, body)
	}

	// One critical get inside a held section is one weak read at site-a.
	ref := lockViaAPI(t, srv.URL, "k")
	if resp, body := do(t, "PUT", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), "v"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("criticalPut: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, "GET", fmt.Sprintf("%s/v1/keys/k?lockRef=%d", srv.URL, ref), ""); resp.StatusCode != http.StatusOK || body != "v" {
		t.Fatalf("criticalGet = %d %q, want 200 v", resp.StatusCode, body)
	}

	resp, body = do(t, "GET", srv.URL+"/v1/consistency", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("consistency = %d %s", resp.StatusCode, body)
	}
	var got struct {
		Sites []struct {
			Site      string `json:"site"`
			Level     string `json:"level"`
			WeakReads int    `json:"weak_reads"`
		} `json:"sites"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	if len(got.Sites) != 1 || got.Sites[0].Site != "site-a" || got.Sites[0].Level != "one" || got.Sites[0].WeakReads < 1 {
		t.Fatalf("consistency body = %s, want site-a at level one with >=1 weak read", body)
	}
}
