package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/music"
)

// shardedHarness runs a 2-shard cluster behind NewSharded with one client
// per shard, the wiring cmd/musicd uses for -shards deployments.
func shardedHarness(t *testing.T, shards int) (*httptest.Server, *music.Cluster) {
	t.Helper()
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime(),
		music.WithShards(shards), music.WithNodesPerSite(shards))
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Close)
	cls := make([]*music.Client, shards)
	for i := range cls {
		cls[i] = c.Client("site-a")
	}
	srv := httptest.NewServer(NewSharded(cls))
	t.Cleanup(srv.Close)
	return srv, c
}

// keysCoveringShards returns one key per shard, so a routing bug (every
// request landing on cls[0]) cannot hide behind shard-0-only traffic.
func keysCoveringShards(t *testing.T, shards int) []string {
	t.Helper()
	keys := make([]string, shards)
	found := 0
	for i := 0; found < shards && i < 10_000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s := store.ShardOf(k, shards); keys[s] == "" {
			keys[s] = k
			found++
		}
	}
	if found < shards {
		t.Fatalf("could not find keys covering %d shards", shards)
	}
	return keys
}

func TestShardedRoutingServesEveryShard(t *testing.T) {
	const shards = 2
	srv, _ := shardedHarness(t, shards)

	// A full critical section on a key of each shard: the per-shard client
	// must carry the whole lock lifecycle, not just reads.
	for i, key := range keysCoveringShards(t, shards) {
		ref := lockViaAPI(t, srv.URL, key)
		val := fmt.Sprintf("shard-%d-value", i)
		resp, body := do(t, "PUT", fmt.Sprintf("%s/v1/keys/%s?lockRef=%d", srv.URL, key, ref), val)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("criticalPut %s: %d %s", key, resp.StatusCode, body)
		}
		resp, body = do(t, "GET", fmt.Sprintf("%s/v1/keys/%s?lockRef=%d", srv.URL, key, ref), "")
		if resp.StatusCode != http.StatusOK || body != val {
			t.Fatalf("criticalGet %s = %d %q, want %q", key, resp.StatusCode, body, val)
		}
		resp, body = do(t, "DELETE", fmt.Sprintf("%s/v1/locks/%s/%d", srv.URL, key, ref), "")
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("release %s: %d %s", key, resp.StatusCode, body)
		}
	}

	// The keyless listing (served by cls[0]) still sees keys of every shard:
	// sharding splits coordination, not the data plane.
	resp, body := do(t, "GET", srv.URL+"/v1/keys", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keys = %d %s", resp.StatusCode, body)
	}
	for _, key := range keysCoveringShards(t, shards) {
		if !strings.Contains(body, key) {
			t.Errorf("key listing missing %s: %s", key, body)
		}
	}
}

func TestNewShardedPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(nil) did not panic")
		}
	}()
	NewSharded(nil)
}

func decodeMembership(t *testing.T, body string) membershipBody {
	t.Helper()
	var m membershipBody
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("decode membership: %v\n%s", err, body)
	}
	return m
}

func TestMembershipEndpointsOnStaticCluster(t *testing.T) {
	srv, _ := harness(t)

	// A fixed-membership cluster reports epoch 0 (membership not managed).
	resp, body := do(t, "GET", srv.URL+"/v1/membership", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET membership = %d %s", resp.StatusCode, body)
	}
	if m := decodeMembership(t, body); m.Epoch != 0 || len(m.Members) != 0 {
		t.Fatalf("static cluster membership = %+v, want epoch 0 and no members", m)
	}

	// Reconfiguring it is a 409: there is no config log to replicate through.
	resp, body = do(t, "POST", srv.URL+"/v1/admin/membership", `{"op":"retire","site":"site-b"}`)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(body, "no config log") {
		t.Fatalf("POST on static cluster = %d %s, want 409 no config log", resp.StatusCode, body)
	}
}

func TestMembershipEndpointBadRequests(t *testing.T) {
	srv, _ := harness(t)
	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"op":"explode","site":"site-a"}`, "unknown action"},
		{`{"op":"join"}`, "missing site"},
		{`{"op":"replace","site":"site-a"}`, `needs \"with\"`},
		{`not json`, "bad body"},
	} {
		resp, body := do(t, "POST", srv.URL+"/v1/admin/membership", tc.body)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, tc.want) {
			t.Errorf("POST %s = %d %s, want 400 %s", tc.body, resp.StatusCode, body, tc.want)
		}
	}
}

// TestMembershipEndpointReconfigures drives join, retire and replace through
// the admin endpoint against a live dynamic cluster and watches the epoch
// advance.
func TestMembershipEndpointReconfigures(t *testing.T) {
	c, err := music.New(music.WithProfile(music.ProfileLocal), music.WithRealTime(),
		music.WithSpareSites("site-d"))
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(New(c.Client("site-a")))
	t.Cleanup(srv.Close)

	resp, body := do(t, "GET", srv.URL+"/v1/membership", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET membership = %d %s", resp.StatusCode, body)
	}
	if m := decodeMembership(t, body); m.Epoch != 1 {
		t.Fatalf("initial epoch = %d, want 1", m.Epoch)
	}

	post := func(reqBody string, wantEpoch int64, wantSites, wantGone []string) {
		t.Helper()
		resp, body := do(t, "POST", srv.URL+"/v1/admin/membership", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d %s", reqBody, resp.StatusCode, body)
		}
		m := decodeMembership(t, body)
		if m.Epoch != wantEpoch {
			t.Fatalf("POST %s: epoch = %d, want %d", reqBody, m.Epoch, wantEpoch)
		}
		sites := strings.Join(m.Sites, " ")
		for _, s := range wantSites {
			if !strings.Contains(sites, s) {
				t.Fatalf("POST %s: sites %v missing %s", reqBody, m.Sites, s)
			}
		}
		for _, s := range wantGone {
			if strings.Contains(sites, s) {
				t.Fatalf("POST %s: sites %v still contain %s", reqBody, m.Sites, s)
			}
		}
	}

	post(`{"op":"join","site":"site-d"}`, 2, []string{"site-d"}, nil)

	// Joining a site twice is a 409, not a second epoch.
	resp, body = do(t, "POST", srv.URL+"/v1/admin/membership", `{"op":"join","site":"site-d"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double join = %d %s, want 409", resp.StatusCode, body)
	}

	post(`{"op":"retire","site":"site-d"}`, 3, nil, []string{"site-d"})
	post(`{"op":"replace","site":"site-a","with":"site-d"}`, 4, []string{"site-d"}, []string{"site-a"})

	resp, body = do(t, "GET", srv.URL+"/v1/membership", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET membership = %d %s", resp.StatusCode, body)
	}
	if m := decodeMembership(t, body); m.Epoch != 4 {
		t.Fatalf("final epoch = %d, want 4", m.Epoch)
	}
}
