// Package httpapi exposes MUSIC's Table I operations as the REST web
// service of the paper's production deployment (Fig 1): clients talk HTTP
// to a nearby MUSIC replica, which drives the back-end stores.
//
//	POST   /v1/locks/{key}                 → {"lockRef": n}        createLockRef
//	GET    /v1/locks/{key}/{ref}           → {"holder": bool}      acquireLock (one poll)
//	DELETE /v1/locks/{key}/{ref}           → 204                   releaseLock
//	DELETE /v1/locks/{key}/{ref}?forced=1  → 204                   forcedRelease
//	PUT    /v1/keys/{key}?lockRef={ref}    body = value            criticalPut
//	GET    /v1/keys/{key}?lockRef={ref}    → value bytes           criticalGet
//	DELETE /v1/keys/{key}?lockRef={ref}    → 204                   criticalDelete
//	PUT    /v1/keys/{key}                  body = value            put (eventual)
//	GET    /v1/keys/{key}                  → value bytes           get (eventual)
//	GET    /v1/keys                        → {"keys": [...]}       getAllKeys
//
// When the cluster was built music.WithObservability, two more endpoints
// expose the internal/obs subsystem (404 otherwise):
//
//	GET    /metrics                        text exposition of every counter,
//	                                       gauge and histogram
//	GET    /traces?limit=N                 → {"traces": [...]}     recent span trees
//	GET    /traces?id=T                    → {"traces": [...]}     one trace by id
//
// When the cluster records operation histories (music.WithHistory, or the
// TransportConfig.History recorder musicd -history wires up), one more
// endpoint exports them for offline ECF checking (404 otherwise):
//
//	GET    /v1/history                     → {"site": s, "ops": [...]}
//
// When the cluster serves adaptive reads (music.WithAdaptiveReads, or
// musicd -adaptive), the live consistency monitor's per-site standing is
// exported (404 otherwise):
//
//	GET    /v1/consistency                 → {"sites": [{"site": s,
//	                                          "level": "one"|"quorum",
//	                                          "weak_reads": n,
//	                                          "violations": n,
//	                                          "post_flip_violations": n}]}
//
// Live membership (epoch 0 = fixed build-time membership; reconfiguration
// requires a dynamic cluster — music.WithSpareSites / musicd -join):
//
//	GET    /v1/membership                  → {"epoch": n, "sites": [...], "members": [...]}
//	POST   /v1/admin/membership            {"op": "join"|"retire"|"replace",
//	                                        "site": s, "with": spare}
//	                                       → the new epoch's membership
//
// Requests for different keys route to per-shard clients by store.ShardOf
// (NewSharded), so a sharded site's HTTP front end drives every shard
// concurrently instead of funneling through one client.
//
// ECF errors map to HTTP statuses: 409 Conflict for
// "youAreNoLongerLockHolder" / expired sections (dead lockRef, give up),
// 412 Precondition Failed for "not (yet) the lock holder" (retry), and
// 503 Service Unavailable when a back-end quorum is unreachable (retry,
// possibly at another site).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/history"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/music"
)

// Server handles the REST API for one site's MUSIC clients — one per plane
// shard, so concurrent HTTP requests for different shards never serialize
// on one client's binding state.
type Server struct {
	cls []*music.Client
	mux *http.ServeMux
}

// New builds a server around a single client (the unsharded deployment).
func New(cl *music.Client) *Server { return NewSharded([]*music.Client{cl}) }

// NewSharded builds a server that routes each keyed request to the client
// owning the key's plane shard (store.ShardOf over len(cls) — pass one
// client per shard, in shard order, all bound to the same site). Keyless
// endpoints (health, key listing, membership, diagnostics) use cls[0].
func NewSharded(cls []*music.Client) *Server {
	if len(cls) == 0 {
		panic("httpapi: NewSharded with no clients")
	}
	s := &Server{cls: cls, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/locks/{key}", s.createLockRef)
	s.mux.HandleFunc("GET /v1/locks/{key}/{ref}", s.acquireLock)
	s.mux.HandleFunc("DELETE /v1/locks/{key}/{ref}", s.releaseLock)
	s.mux.HandleFunc("PUT /v1/keys/{key}", s.putKey)
	s.mux.HandleFunc("GET /v1/keys/{key}", s.getKey)
	s.mux.HandleFunc("DELETE /v1/keys/{key}", s.deleteKey)
	s.mux.HandleFunc("GET /v1/keys", s.allKeys)
	s.mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "site": s.cls[0].Site()})
	})
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /traces", s.traces)
	s.mux.HandleFunc("GET /v1/history", s.history)
	s.mux.HandleFunc("GET /v1/consistency", s.consistency)
	s.mux.HandleFunc("GET /v1/membership", s.getMembership)
	s.mux.HandleFunc("POST /v1/admin/membership", s.postMembership)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// clientFor routes key to the client owning its plane shard — the same
// store.ShardOf walk core uses, so the HTTP layer lands each request on the
// client already bound to the shard's coordinator.
func (s *Server) clientFor(key string) *music.Client {
	if len(s.cls) == 1 {
		return s.cls[0]
	}
	return s.cls[store.ShardOf(key, len(s.cls))]
}

func (s *Server) createLockRef(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ref, err := s.clientFor(key).CreateLockRef(key)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"lockRef": int64(ref)})
}

func (s *Server) acquireLock(w http.ResponseWriter, r *http.Request) {
	ref, ok := parseRef(w, r.PathValue("ref"))
	if !ok {
		return
	}
	key := r.PathValue("key")
	holder, err := s.clientFor(key).AcquireLock(key, ref)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"holder": holder})
}

func (s *Server) releaseLock(w http.ResponseWriter, r *http.Request) {
	ref, ok := parseRef(w, r.PathValue("ref"))
	if !ok {
		return
	}
	key := r.PathValue("key")
	cl := s.clientFor(key)
	var err error
	if r.URL.Query().Get("forced") != "" {
		err = cl.ForcedRelease(key, ref)
	} else {
		err = cl.ReleaseLock(key, ref)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) putKey(w http.ResponseWriter, r *http.Request) {
	value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad body: "+err.Error()))
		return
	}
	key := r.PathValue("key")
	if refStr := r.URL.Query().Get("lockRef"); refStr != "" {
		ref, ok := parseRef(w, refStr)
		if !ok {
			return
		}
		err = s.clientFor(key).CriticalPut(key, ref, value)
	} else {
		err = s.clientFor(key).Put(key, value)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) getKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var (
		value []byte
		err   error
	)
	if refStr := r.URL.Query().Get("lockRef"); refStr != "" {
		ref, ok := parseRef(w, refStr)
		if !ok {
			return
		}
		value, err = s.clientFor(key).CriticalGet(key, ref)
	} else {
		value, err = s.clientFor(key).Get(key)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	if value == nil {
		writeJSON(w, http.StatusNotFound, errBody("no value"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(value)
}

func (s *Server) deleteKey(w http.ResponseWriter, r *http.Request) {
	refStr := r.URL.Query().Get("lockRef")
	if refStr == "" {
		writeJSON(w, http.StatusBadRequest, errBody("deletes require a lockRef"))
		return
	}
	ref, ok := parseRef(w, refStr)
	if !ok {
		return
	}
	key := r.PathValue("key")
	if err := s.clientFor(key).CriticalDelete(key, ref); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) allKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.cls[0].GetAllKeys()
	if err != nil {
		writeErr(w, err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"keys": keys})
}

// metrics serves the cluster's metric registry in text exposition format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	o := s.cls[0].Cluster().Obs()
	if o == nil {
		writeJSON(w, http.StatusNotFound, errBody("observability disabled (build the cluster WithObservability)"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	o.Metrics().WriteText(w)
}

// traceBody is one trace of the /traces response.
type traceBody struct {
	Trace uint64         `json:"trace"`
	Spans []obs.SpanJSON `json:"spans"`
}

// traces serves recent span trees from the tracer's ring buffer, most
// recent last; ?id= selects one trace, ?limit= caps the listing (default 16).
func (s *Server) traces(w http.ResponseWriter, r *http.Request) {
	o := s.cls[0].Cluster().Obs()
	if o == nil {
		writeJSON(w, http.StatusNotFound, errBody("observability disabled (build the cluster WithObservability)"))
		return
	}
	tr := o.Tracer()
	var ids []obs.TraceID
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("bad trace id %q", idStr)))
			return
		}
		ids = []obs.TraceID{obs.TraceID(id)}
	} else {
		limit := 16
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 {
				writeJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("bad limit %q", ls)))
				return
			}
			limit = n
		}
		ids = tr.TraceIDs(limit)
	}
	out := make([]traceBody, 0, len(ids))
	for _, id := range ids {
		out = append(out, traceBody{Trace: uint64(id), Spans: tr.TraceJSON(id)})
	}
	writeJSON(w, http.StatusOK, map[string][]traceBody{"traces": out})
}

// history exports this process's recorded operation history. A checker
// harness fetches every site's ops, merges them by response time, and runs
// internal/history.Check over the combined timeline.
func (s *Server) history(w http.ResponseWriter, r *http.Request) {
	rec := s.cls[0].Cluster().History()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errBody("history recording disabled (music.WithHistory, or musicd -history)"))
		return
	}
	ops := rec.Ops()
	if ops == nil {
		ops = []history.Op{} // a site with no ops yet serves [], not null
	}
	writeJSON(w, http.StatusOK, map[string]any{"site": s.cls[0].Site(), "ops": ops})
}

// consistency serves the live adaptive-consistency monitor: every observed
// site's read level ("one" while the monitor judges it safe, "quorum" once
// staleness violations tripped it), with its weak-read and violation
// counters. Operators watch this to see a site flip in production.
func (s *Server) consistency(w http.ResponseWriter, r *http.Request) {
	mon := s.cls[0].Cluster().Monitor()
	if mon == nil {
		writeJSON(w, http.StatusNotFound, errBody("adaptive reads disabled (music.WithAdaptiveReads, or musicd -adaptive)"))
		return
	}
	sites := mon.Snapshot()
	if sites == nil {
		sites = []history.SiteStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sites": sites})
}

// membershipBody is the JSON rendering of an epoch-versioned membership.
type membershipBody struct {
	Epoch   int64        `json:"epoch"`
	Sites   []string     `json:"sites"`
	Members []memberBody `json:"members"`
}

type memberBody struct {
	ID   int64  `json:"id"`
	Site string `json:"site"`
	Addr string `json:"addr,omitempty"`
}

func renderMembership(m membership.Membership) membershipBody {
	body := membershipBody{Epoch: m.Epoch, Sites: m.Sites(), Members: []memberBody{}}
	if body.Sites == nil {
		body.Sites = []string{}
	}
	for _, mem := range m.Members {
		body.Members = append(body.Members, memberBody{ID: int64(mem.ID), Site: mem.Site, Addr: mem.Addr})
	}
	return body
}

// getMembership serves the current epoch-versioned membership. Epoch 0
// means the cluster runs fixed (build-time) membership.
func (s *Server) getMembership(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, renderMembership(s.cls[0].Cluster().Membership()))
}

// postMembership drives one reconfiguration: {"op": "join"|"retire"|
// "replace", "site": s, "with": spare}. The change replicates through the
// config log; the response is the membership the new epoch installed.
func (s *Server) postMembership(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Op   string `json:"op"`
		Site string `json:"site"`
		With string `json:"with"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad body: "+err.Error()))
		return
	}
	op, err := membership.ParseOp(body.Op)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	if body.Site == "" {
		writeJSON(w, http.StatusBadRequest, errBody("missing site"))
		return
	}
	c := s.cls[0].Cluster()
	var m membership.Membership
	switch op {
	case membership.OpJoin:
		m, err = c.JoinSite(body.Site)
	case membership.OpRetire:
		m, err = c.RetireSite(body.Site)
	case membership.OpReplace:
		if body.With == "" {
			writeJSON(w, http.StatusBadRequest, errBody(`replace needs "with": the spare site taking over`))
			return
		}
		m, err = c.ReplaceSite(body.Site, body.With)
	}
	if err != nil {
		switch {
		case errors.Is(err, membership.ErrNotReplicated),
			errors.Is(err, membership.ErrUnknownSite),
			errors.Is(err, membership.ErrSiteExists),
			errors.Is(err, membership.ErrBadChange),
			errors.Is(err, membership.ErrTooFewSites):
			writeJSON(w, http.StatusConflict, errBody(err.Error()))
		default:
			// A failed propose (config-log quorum unreachable) is retryable.
			writeJSON(w, http.StatusServiceUnavailable, errBody(err.Error()))
		}
		return
	}
	writeJSON(w, http.StatusOK, renderMembership(m))
}

func parseRef(w http.ResponseWriter, s string) (music.LockRef, bool) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		writeJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("bad lockRef %q", s)))
		return 0, false
	}
	return music.LockRef(n), true
}

func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, music.ErrNoLongerLockHolder), errors.Is(err, music.ErrExpired),
		errors.Is(err, music.ErrEpochFenced):
		// Epoch-fenced sections are dead at lockRef granularity but retryable
		// as a whole: open a new section (possibly at another site) and it
		// runs under the new placement.
		writeJSON(w, http.StatusConflict, errBody(err.Error()))
	case errors.Is(err, music.ErrNotLockHolder):
		writeJSON(w, http.StatusPreconditionFailed, errBody(err.Error()))
	case errors.Is(err, music.ErrUnavailable):
		writeJSON(w, http.StatusServiceUnavailable, errBody(err.Error()))
	default:
		writeJSON(w, http.StatusInternalServerError, errBody(err.Error()))
	}
}

func errBody(msg string) map[string]string { return map[string]string{"error": msg} }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
