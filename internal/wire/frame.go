package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameOverhead is the per-frame byte cost on a stream: the u32 length
// prefix. Transports add their own headers (routing, request ids) inside
// the frame.
const FrameOverhead = 4

// MaxFrame bounds a frame body read off a stream; a peer announcing more is
// treated as corrupt rather than allocated for. 64 MiB comfortably covers
// the 16 MiB REST body cap plus headers.
const MaxFrame = 64 << 20

// WriteFrame writes one length-prefixed frame: [u32 len][body].
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [FrameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// AppendFrame appends a length-prefixed frame to dst and returns it —
// WriteFrame for callers batching a header and body into one socket write.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// ReadFrame reads one frame written by WriteFrame. io.EOF surfaces
// unchanged at a clean frame boundary so stream loops can terminate.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto is ReadFrame reusing buf's capacity for the frame body: the
// result aliases buf when it fits and is freshly allocated otherwise. Stream
// loops feed each call's result back in as the next call's buf, so a
// long-lived connection settles at zero allocations per frame (the length
// header is staged in buf too, keeping even it off the heap). The returned
// slice is only valid until the next reuse.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < FrameOverhead {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:FrameOverhead]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds cap %d", n, MaxFrame)
	}
	var body []byte
	if int(n) <= cap(buf) {
		body = buf[:n]
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return body, nil
}
