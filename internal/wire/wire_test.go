package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// testMsg exercises every Encoder/Decoder primitive.
type testMsg struct {
	A   uint8
	B   bool
	C   uint16
	D   uint32
	E   uint64
	F   int32
	G   int64
	S   string
	Raw []byte
}

func init() {
	Register(990, "wire.testMsg",
		func(e *Encoder, v testMsg) {
			e.Uint8(v.A)
			e.Bool(v.B)
			e.Uint16(v.C)
			e.Uint32(v.D)
			e.Uint64(v.E)
			e.Int32(v.F)
			e.Int64(v.G)
			e.String(v.S)
			e.RawBytes(v.Raw)
		},
		func(d *Decoder) testMsg {
			return testMsg{
				A:   d.Uint8(),
				B:   d.Bool(),
				C:   d.Uint16(),
				D:   d.Uint32(),
				E:   d.Uint64(),
				F:   d.Int32(),
				G:   d.Int64(),
				S:   d.String(),
				Raw: d.RawBytes(),
			}
		})
	RegisterError(990, errTestSentinel)
}

var errTestSentinel = errors.New("wire_test: sentinel")

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	data, err := Marshal(msg)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", msg, err)
	}
	if size, ok := Size(msg); !ok || size != len(data) {
		t.Fatalf("Size(%#v) = %d,%t; marshaled %d bytes", msg, size, ok, len(data))
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%#v bytes=%x): %v", msg, data, err)
	}
	return out
}

// TestRoundTripProperty fuzzes random messages through Marshal/Unmarshal
// and requires exact reconstruction, including nil-vs-empty byte slices.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func() []byte {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return []byte{}
		default:
			b := make([]byte, rng.Intn(300))
			rng.Read(b)
			return b
		}
	}
	for i := 0; i < 500; i++ {
		in := testMsg{
			A:   uint8(rng.Uint32()),
			B:   rng.Intn(2) == 0,
			C:   uint16(rng.Uint32()),
			D:   rng.Uint32(),
			E:   rng.Uint64(),
			F:   int32(rng.Uint32()),
			G:   int64(rng.Uint64()),
			S:   string(randBytes()),
			Raw: randBytes(),
		}
		out := roundTrip(t, in).(testMsg)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
		}
		if (in.Raw == nil) != (out.Raw == nil) {
			t.Fatalf("nil-ness lost: in nil=%t out nil=%t", in.Raw == nil, out.Raw == nil)
		}
	}
}

func TestBasicTypesAndNil(t *testing.T) {
	if got := roundTrip(t, "hello"); got != "hello" {
		t.Fatalf("string round trip: %v", got)
	}
	if got := roundTrip(t, []byte{1, 2, 3}); !bytes.Equal(got.([]byte), []byte{1, 2, 3}) {
		t.Fatalf("bytes round trip: %v", got)
	}
	if got := roundTrip(t, int64(-42)); got != int64(-42) {
		t.Fatalf("int64 round trip: %v", got)
	}
	if got := roundTrip(t, nil); got != nil {
		t.Fatalf("nil round trip: %v", got)
	}
}

func TestMarshalUnregistered(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := Marshal(unregistered{1}); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("want ErrUnregistered, got %v", err)
	}
	if Registered(unregistered{}) {
		t.Fatal("Registered(unregistered) = true")
	}
	if !Registered(nil) || !Registered("s") {
		t.Fatal("nil and string should be registered")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	data, err := Marshal(testMsg{S: "abc", Raw: []byte{9}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("Unmarshal of %d/%d bytes succeeded", cut, len(data))
		}
	}
	// Trailing garbage is rejected.
	if _, err := Unmarshal(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("Unmarshal with trailing byte succeeded")
	}
	// Unknown type id is rejected.
	if _, err := Unmarshal([]byte{0xEE, 0xEE, 1, 2}); err == nil {
		t.Fatal("Unmarshal with unknown id succeeded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadFrame of %d/%d bytes succeeded", cut, len(full))
		}
	}
}

func TestAppendFrame(t *testing.T) {
	b := AppendFrame(nil, []byte("xy"))
	got, err := ReadFrame(bytes.NewReader(b))
	if err != nil || string(got) != "xy" {
		t.Fatalf("AppendFrame round trip: %q %v", got, err)
	}
}

// TestReadFrameInto pins the buffer-reuse contract: a result that fits
// aliases the caller's buffer, a bigger frame gets a fresh allocation, and
// either way the bytes round-trip.
func TestReadFrameInto(t *testing.T) {
	small := bytes.Repeat([]byte{0x11}, 64)
	big := bytes.Repeat([]byte{0x22}, 4096)
	var stream bytes.Buffer
	for _, b := range [][]byte{small, big, small} {
		if err := WriteFrame(&stream, b); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 0, 128)
	got, err := ReadFrameInto(&stream, buf)
	if err != nil || !bytes.Equal(got, small) {
		t.Fatalf("small frame: %v (len %d)", err, len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Error("small frame did not reuse the caller's buffer")
	}
	got2, err := ReadFrameInto(&stream, got)
	if err != nil || !bytes.Equal(got2, big) {
		t.Fatalf("big frame: %v (len %d)", err, len(got2))
	}
	if cap(got2) < len(big) {
		t.Fatalf("big frame buffer cap %d < %d", cap(got2), len(big))
	}
	// Feeding the grown buffer back reuses it for the next small frame.
	got3, err := ReadFrameInto(&stream, got2)
	if err != nil || !bytes.Equal(got3, small) {
		t.Fatalf("third frame: %v", err)
	}
	if &got3[0] != &got2[:1][0] {
		t.Error("third frame did not reuse the grown buffer")
	}
	// nil buf works (ReadFrame's path).
	var one bytes.Buffer
	if err := WriteFrame(&one, small); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFrameInto(&one, nil); err != nil || !bytes.Equal(got, small) {
		t.Fatalf("nil-buf read: %v", err)
	}
}

// TestEncoderPool exercises GetEncoder/PutEncoder: a pooled encoder comes
// back empty, and oversized buffers are not retained.
func TestEncoderPool(t *testing.T) {
	e := GetEncoder()
	e.String("hello")
	if e.Len() != len("hello")+4 {
		t.Fatalf("Len = %d", e.Len())
	}
	PutEncoder(e)
	e2 := GetEncoder()
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: Len = %d", e2.Len())
	}
	// An encoder that grew past the retention cap is dropped, not pooled.
	e2.RawBytes(make([]byte, maxPooledBuf+1))
	PutEncoder(e2)
	if e2.buf != nil {
		t.Fatal("oversized buffer retained in the pool")
	}
}

// TestMarshalTo checks that in-place marshaling produces exactly Marshal's
// bytes appended to the encoder.
func TestMarshalTo(t *testing.T) {
	msg := testMsg{A: 7, S: "svc", Raw: []byte{1, 2, 3}}
	want, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var e Encoder
	e.Uint32(0xDEADBEEF) // pre-existing content must be preserved
	if err := MarshalTo(&e, msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Bytes()[4:], want) {
		t.Fatalf("MarshalTo bytes diverge from Marshal:\n got %x\nwant %x", e.Bytes()[4:], want)
	}
	type unregistered struct{ X int }
	if err := MarshalTo(&e, unregistered{1}); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("want ErrUnregistered, got %v", err)
	}
}

// TestEncoderPatching covers the back-patch primitives the framed hot path
// uses: reserve a length slot, write, fix it up, and truncate on error.
func TestEncoderPatching(t *testing.T) {
	var e Encoder
	e.Uint8(9)
	off := e.Len()
	e.Uint32(0) // placeholder
	e.String("body")
	e.FixUint32(off, uint32(e.Len()-off-4))
	d := Decoder{buf: e.Bytes()}
	if d.Uint8() != 9 {
		t.Fatal("prefix byte lost")
	}
	if n := d.Uint32(); int(n) != len("body")+4 {
		t.Fatalf("patched length = %d", n)
	}
	if d.String() != "body" {
		t.Fatal("body lost")
	}
	mark := e.Len()
	e.String("tentative")
	e.Truncate(mark)
	if e.Len() != mark {
		t.Fatalf("Truncate: Len = %d want %d", e.Len(), mark)
	}
}

// TestRawBytesView checks the zero-copy payload view: same bytes as
// RawBytes, aliasing the decode buffer, with nil preserved.
func TestRawBytesView(t *testing.T) {
	var e Encoder
	e.RawBytes([]byte{5, 6, 7})
	e.RawBytes(nil)
	buf := e.Bytes()
	d := DecoderFor(buf)
	v := d.RawBytesView()
	if !bytes.Equal(v, []byte{5, 6, 7}) {
		t.Fatalf("view = %x", v)
	}
	if &v[0] != &buf[4] {
		t.Error("RawBytesView copied instead of aliasing")
	}
	if nv := d.RawBytesView(); nv != nil {
		t.Fatalf("nil raw bytes decoded as %x", nv)
	}
	if d.Err() != nil || d.off != len(buf) {
		t.Fatalf("decoder state after views: err=%v consumed=%d/%d", d.Err(), d.off, len(buf))
	}
}

func TestErrorCodes(t *testing.T) {
	cases := []error{
		errTestSentinel,
		errors.New("free-form failure"),
		&sentinelError{msg: "wrapped: " + errTestSentinel.Error(), sentinel: errTestSentinel},
	}
	for _, in := range cases {
		var e Encoder
		EncodeError(&e, in)
		d := Decoder{buf: e.Bytes()}
		out := DecodeError(&d)
		if out.Error() != in.Error() {
			t.Fatalf("message lost: in %q out %q", in, out)
		}
		if errors.Is(in, errTestSentinel) != errors.Is(out, errTestSentinel) {
			t.Fatalf("sentinel identity lost for %q", in)
		}
	}
}
