package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// testMsg exercises every Encoder/Decoder primitive.
type testMsg struct {
	A   uint8
	B   bool
	C   uint16
	D   uint32
	E   uint64
	F   int32
	G   int64
	S   string
	Raw []byte
}

func init() {
	Register(990, "wire.testMsg",
		func(e *Encoder, v testMsg) {
			e.Uint8(v.A)
			e.Bool(v.B)
			e.Uint16(v.C)
			e.Uint32(v.D)
			e.Uint64(v.E)
			e.Int32(v.F)
			e.Int64(v.G)
			e.String(v.S)
			e.RawBytes(v.Raw)
		},
		func(d *Decoder) testMsg {
			return testMsg{
				A:   d.Uint8(),
				B:   d.Bool(),
				C:   d.Uint16(),
				D:   d.Uint32(),
				E:   d.Uint64(),
				F:   d.Int32(),
				G:   d.Int64(),
				S:   d.String(),
				Raw: d.RawBytes(),
			}
		})
	RegisterError(990, errTestSentinel)
}

var errTestSentinel = errors.New("wire_test: sentinel")

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	data, err := Marshal(msg)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", msg, err)
	}
	if size, ok := Size(msg); !ok || size != len(data) {
		t.Fatalf("Size(%#v) = %d,%t; marshaled %d bytes", msg, size, ok, len(data))
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%#v bytes=%x): %v", msg, data, err)
	}
	return out
}

// TestRoundTripProperty fuzzes random messages through Marshal/Unmarshal
// and requires exact reconstruction, including nil-vs-empty byte slices.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func() []byte {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return []byte{}
		default:
			b := make([]byte, rng.Intn(300))
			rng.Read(b)
			return b
		}
	}
	for i := 0; i < 500; i++ {
		in := testMsg{
			A:   uint8(rng.Uint32()),
			B:   rng.Intn(2) == 0,
			C:   uint16(rng.Uint32()),
			D:   rng.Uint32(),
			E:   rng.Uint64(),
			F:   int32(rng.Uint32()),
			G:   int64(rng.Uint64()),
			S:   string(randBytes()),
			Raw: randBytes(),
		}
		out := roundTrip(t, in).(testMsg)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
		}
		if (in.Raw == nil) != (out.Raw == nil) {
			t.Fatalf("nil-ness lost: in nil=%t out nil=%t", in.Raw == nil, out.Raw == nil)
		}
	}
}

func TestBasicTypesAndNil(t *testing.T) {
	if got := roundTrip(t, "hello"); got != "hello" {
		t.Fatalf("string round trip: %v", got)
	}
	if got := roundTrip(t, []byte{1, 2, 3}); !bytes.Equal(got.([]byte), []byte{1, 2, 3}) {
		t.Fatalf("bytes round trip: %v", got)
	}
	if got := roundTrip(t, int64(-42)); got != int64(-42) {
		t.Fatalf("int64 round trip: %v", got)
	}
	if got := roundTrip(t, nil); got != nil {
		t.Fatalf("nil round trip: %v", got)
	}
}

func TestMarshalUnregistered(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := Marshal(unregistered{1}); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("want ErrUnregistered, got %v", err)
	}
	if Registered(unregistered{}) {
		t.Fatal("Registered(unregistered) = true")
	}
	if !Registered(nil) || !Registered("s") {
		t.Fatal("nil and string should be registered")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	data, err := Marshal(testMsg{S: "abc", Raw: []byte{9}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("Unmarshal of %d/%d bytes succeeded", cut, len(data))
		}
	}
	// Trailing garbage is rejected.
	if _, err := Unmarshal(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("Unmarshal with trailing byte succeeded")
	}
	// Unknown type id is rejected.
	if _, err := Unmarshal([]byte{0xEE, 0xEE, 1, 2}); err == nil {
		t.Fatal("Unmarshal with unknown id succeeded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadFrame of %d/%d bytes succeeded", cut, len(full))
		}
	}
}

func TestAppendFrame(t *testing.T) {
	b := AppendFrame(nil, []byte("xy"))
	got, err := ReadFrame(bytes.NewReader(b))
	if err != nil || string(got) != "xy" {
		t.Fatalf("AppendFrame round trip: %q %v", got, err)
	}
}

func TestErrorCodes(t *testing.T) {
	cases := []error{
		errTestSentinel,
		errors.New("free-form failure"),
		&sentinelError{msg: "wrapped: " + errTestSentinel.Error(), sentinel: errTestSentinel},
	}
	for _, in := range cases {
		var e Encoder
		EncodeError(&e, in)
		d := Decoder{buf: e.Bytes()}
		out := DecodeError(&d)
		if out.Error() != in.Error() {
			t.Fatalf("message lost: in %q out %q", in, out)
		}
		if errors.Is(in, errTestSentinel) != errors.Is(out, errTestSentinel) {
			t.Fatalf("sentinel identity lost for %q", in)
		}
	}
}
