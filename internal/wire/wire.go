// Package wire gives every RPC payload in the system an explicit binary
// encoding. Each message type registers a codec (a stable 16-bit type id
// plus encode/decode functions over stdlib encoding/binary primitives) in a
// process-global registry; Marshal and Unmarshal then move any registered
// value to and from a self-describing byte string.
//
// The encoding is the system's single source of truth for message size: the
// simulated network charges its NIC/bandwidth model with exact encoded byte
// counts, and the TCP transport writes the same bytes onto real sockets, so
// a byte modeled in simulation is a byte spent in production.
//
// Layout: every marshaled payload is [u16 type id][body]; the zero id is a
// nil payload and has no body. On a stream, payloads travel inside
// length-prefixed frames (WriteFrame / ReadFrame). All integers are
// big-endian.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
)

// Reserved type-id ranges. Collisions panic at registration, but keeping
// ranges disjoint by package makes ids stable as codecs are added.
//
//	0           nil payload
//	1–15        wire: basic types (string, []byte, int64)
//	16–47       internal/store (rows, Paxos rounds, scans, digests, transfer)
//	48–55       internal/raft (votes, appends, proposals)
//	56–63       internal/membership (config log, fetch/propose)
//	64–79       internal/crdb (replicated transaction commands)
//	900–999     test and conformance payloads
const (
	idNil    = 0
	idString = 1
	idBytes  = 2
	idInt64  = 3
)

// ErrUnregistered is returned by Marshal for a value whose dynamic type has
// no registered codec.
var ErrUnregistered = errors.New("wire: unregistered message type")

type codec struct {
	id   uint16
	name string
	enc  func(*Encoder, any)
	dec  func(*Decoder) any
}

var (
	regMu  sync.RWMutex
	byID   = make(map[uint16]*codec)
	byType = make(map[reflect.Type]*codec)
)

// Register installs the codec for message type T under the given id. It
// panics on a duplicate id or type — codecs are wired up in package init
// functions, so a collision is a programming error.
func Register[T any](id uint16, name string, enc func(*Encoder, T), dec func(*Decoder) T) {
	var zero T
	rt := reflect.TypeOf(zero)
	if rt == nil {
		panic("wire: cannot register interface type")
	}
	c := &codec{
		id:   id,
		name: name,
		enc:  func(e *Encoder, v any) { enc(e, v.(T)) },
		dec:  func(d *Decoder) any { return dec(d) },
	}
	regMu.Lock()
	defer regMu.Unlock()
	if id == idNil {
		panic("wire: type id 0 is reserved for nil")
	}
	if prev, ok := byID[id]; ok {
		panic(fmt.Sprintf("wire: type id %d already registered to %s", id, prev.name))
	}
	if prev, ok := byType[rt]; ok {
		panic(fmt.Sprintf("wire: type %v already registered as %s", rt, prev.name))
	}
	byID[id] = c
	byType[rt] = c
}

func lookupType(msg any) (*codec, bool) {
	if msg == nil {
		return nil, false
	}
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byType[reflect.TypeOf(msg)]
	return c, ok
}

func lookupID(id uint16) (*codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byID[id]
	return c, ok
}

// Registered reports whether msg's dynamic type has a codec (nil counts:
// the nil payload always encodes).
func Registered(msg any) bool {
	if msg == nil {
		return true
	}
	_, ok := lookupType(msg)
	return ok
}

// Marshal encodes msg as [u16 type id][body]. A nil msg encodes to the
// 2-byte nil payload.
func Marshal(msg any) ([]byte, error) {
	var e Encoder
	if msg == nil {
		e.Uint16(idNil)
		return e.buf, nil
	}
	c, ok := lookupType(msg)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnregistered, msg)
	}
	e.Uint16(c.id)
	c.enc(&e, msg)
	return e.buf, nil
}

// Unmarshal decodes a payload produced by Marshal. Trailing bytes are an
// error: a codec must consume exactly what its encoder produced.
func Unmarshal(data []byte) (any, error) {
	d := Decoder{buf: data}
	id := d.Uint16()
	if d.err != nil {
		return nil, fmt.Errorf("wire: truncated payload: %w", d.err)
	}
	if id == idNil {
		if len(d.buf) != d.off {
			return nil, fmt.Errorf("wire: %d trailing bytes after nil payload", len(d.buf)-d.off)
		}
		return nil, nil
	}
	c, ok := lookupID(id)
	if !ok {
		return nil, fmt.Errorf("wire: unknown type id %d", id)
	}
	v := c.dec(&d)
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", c.name, d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wire: decode %s: %d trailing bytes", c.name, len(d.buf)-d.off)
	}
	return v, nil
}

// MarshalTo appends msg's [u16 type id][body] encoding to e — Marshal for
// callers assembling a larger frame in one (typically pooled) buffer, so the
// payload needs no intermediate allocation before it joins its headers.
func MarshalTo(e *Encoder, msg any) error {
	if msg == nil {
		e.Uint16(idNil)
		return nil
	}
	c, ok := lookupType(msg)
	if !ok {
		return fmt.Errorf("%w: %T", ErrUnregistered, msg)
	}
	e.Uint16(c.id)
	c.enc(e, msg)
	return nil
}

// Size returns the exact marshaled size of msg in bytes; ok is false when
// msg's type has no codec.
func Size(msg any) (int, bool) {
	if msg == nil {
		return 2, true
	}
	c, ok := lookupType(msg)
	if !ok {
		return 0, false
	}
	var e Encoder
	e.Uint16(c.id)
	c.enc(&e, msg)
	return len(e.buf), true
}

// TypeNames lists registered codec names by id (diagnostics and audits).
func TypeNames() map[uint16]string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make(map[uint16]string, len(byID))
	for id, c := range byID {
		out[id] = c.name
	}
	return out
}

// Encoder appends big-endian primitives to a growing buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far — an offset callers record
// before a section they will length-patch with FixUint32.
func (e *Encoder) Len() int { return len(e.buf) }

// Truncate shortens the buffer to n bytes, keeping capacity, so a caller can
// undo a partially appended section (say, a payload whose codec failed
// mid-encode) and append something else instead.
func (e *Encoder) Truncate(n int) { e.buf = e.buf[:n] }

// FixUint32 overwrites the four bytes at off with v — for back-patching a
// length prefix once the section it describes has been appended.
func (e *Encoder) FixUint32(off int, v uint32) {
	binary.BigEndian.PutUint32(e.buf[off:off+4], v)
}

// maxPooledBuf caps the capacity an encoder carries back into the pool; a
// one-off multi-megabyte payload must not pin its buffer forever.
const maxPooledBuf = 1 << 20

var encPool sync.Pool

// GetEncoder returns a pooled encoder, emptied but with its previous
// capacity retained — the hot-path alternative to a fresh Encoder per frame.
// Pair with PutEncoder once the encoded bytes have been consumed.
func GetEncoder() *Encoder {
	if v := encPool.Get(); v != nil {
		e := v.(*Encoder)
		e.buf = e.buf[:0]
		return e
	}
	return new(Encoder)
}

// PutEncoder returns e to the pool. The caller must not touch e or its
// Bytes afterwards.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// Uint8 appends one byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint16 appends a big-endian uint16.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// Uint32 appends a big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int32 appends a big-endian int32.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Int64 appends a big-endian int64.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// nilLen marks a nil byte slice in a length prefix, distinguishing it from
// an empty one (message semantics sometimes hang on the difference, e.g. a
// CAS condition requiring absence).
const nilLen = math.MaxUint32

// RawBytes appends a length-prefixed byte string, preserving nil-ness.
func (e *Encoder) RawBytes(b []byte) {
	if b == nil {
		e.Uint32(nilLen)
		return
	}
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder consumes big-endian primitives from a buffer. The first error
// sticks: every later read returns zero values, and Unmarshal surfaces the
// sticky error, so codecs read fields unconditionally without checking.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps data for decoding — for transports parsing their own
// frame headers outside Marshal/Unmarshal.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// DecoderFor is NewDecoder by value: hot paths declare the decoder as a
// local so it stays off the heap.
func DecoderFor(data []byte) Decoder { return Decoder{buf: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 reads a big-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int32 reads a big-endian int32.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Int64 reads a big-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// RawBytes reads a length-prefixed byte string (a copy; the decode buffer
// is not retained), preserving nil-ness.
func (d *Decoder) RawBytes() []byte {
	n := d.Uint32()
	if d.err != nil || n == nilLen {
		return nil
	}
	b := d.take(int(n))
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RawBytesView is RawBytes without the copy: the returned slice aliases the
// decode buffer, so it is only valid until the buffer is reused. Transports
// use it to hand a frame's payload straight to Unmarshal (whose codecs copy
// whatever they keep) without an intermediate allocation.
func (d *Decoder) RawBytesView() []byte {
	n := d.Uint32()
	if d.err != nil || n == nilLen {
		return nil
	}
	return d.take(int(n))
}

// StringView reads a length-prefixed string as a byte view aliasing the
// decode buffer — String without the allocation, for consumers that only
// key a map lookup or compare before the buffer is reused.
func (d *Decoder) StringView() []byte {
	n := d.Uint32()
	if d.err != nil || n == nilLen {
		d.fail()
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil || n == nilLen {
		d.fail()
		return ""
	}
	return string(d.take(int(n)))
}

func init() {
	Register(idString, "string",
		func(e *Encoder, v string) { e.String(v) },
		func(d *Decoder) string { return d.String() })
	Register(idBytes, "bytes",
		func(e *Encoder, v []byte) { e.RawBytes(v) },
		func(d *Decoder) []byte { return d.RawBytes() })
	Register(idInt64, "int64",
		func(e *Encoder, v int64) { e.Int64(v) },
		func(d *Decoder) int64 { return d.Int64() })
}

// Error codes registered for cross-process error taxonomy (see errors.go).
var (
	errMu        sync.RWMutex
	errSentinels []errSentinel
	errByCode    = make(map[uint16]error)
)

type errSentinel struct {
	code uint16
	err  error
}

// RegisterError associates a sentinel error with a stable code so that
// errors.Is keeps working across a process boundary. Like Register, meant
// for package init; duplicate codes panic.
func RegisterError(code uint16, sentinel error) {
	if code == 0 {
		panic("wire: error code 0 is reserved for plain errors")
	}
	errMu.Lock()
	defer errMu.Unlock()
	if prev, ok := errByCode[code]; ok {
		panic(fmt.Sprintf("wire: error code %d already registered to %q", code, prev))
	}
	errByCode[code] = sentinel
	errSentinels = append(errSentinels, errSentinel{code, sentinel})
	sort.Slice(errSentinels, func(i, j int) bool { return errSentinels[i].code < errSentinels[j].code })
}

// EncodeError appends err as [u16 code][string message]; code 0 carries
// errors with no registered sentinel in their chain.
func EncodeError(e *Encoder, err error) {
	var code uint16
	errMu.RLock()
	for _, s := range errSentinels {
		if errors.Is(err, s.err) {
			code = s.code
			break
		}
	}
	errMu.RUnlock()
	e.Uint16(code)
	e.String(err.Error())
}

// DecodeError reverses EncodeError. A known code decodes to an error whose
// chain includes the registered sentinel and whose message is preserved.
func DecodeError(d *Decoder) error {
	code := d.Uint16()
	msg := d.String()
	if d.err != nil {
		return d.err
	}
	if code == 0 {
		return errors.New(msg)
	}
	errMu.RLock()
	sentinel, ok := errByCode[code]
	errMu.RUnlock()
	if !ok {
		return errors.New(msg)
	}
	if msg == sentinel.Error() {
		return sentinel
	}
	return &sentinelError{msg: msg, sentinel: sentinel}
}

// sentinelError is a decoded error carrying both the remote message and the
// sentinel identity.
type sentinelError struct {
	msg      string
	sentinel error
}

func (e *sentinelError) Error() string { return e.msg }
func (e *sentinelError) Unwrap() error { return e.sentinel }
