package wire_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/paxos"
	"repro/internal/store"
	"repro/internal/wire"
)

// corpusValues is the fuzz seed corpus: one exemplar per registered codec
// family reachable from this package's importers — the wire basics plus
// internal/store's public payload types (importing store also registers its
// unexported RPC codecs, widening what the fuzzer can mutate into).
func corpusValues() []any {
	return []any{
		nil,
		"a-key",
		[]byte{0x00, 0xff, 0x7f},
		int64(-1),
		store.Cell{Value: []byte("v"), TS: 42, Deleted: false},
		store.Cell{Value: nil, TS: 7, Deleted: true},
		store.Row{"value": {Value: []byte("x"), TS: 1}, "flag": {TS: 2, Deleted: true}},
		store.Cond{Col: "lockRef", Want: []byte("3")},
		store.Cond{Col: "absent", Want: nil},
		paxos.Ballot{Counter: 9, Node: 2},
	}
}

// FuzzUnmarshal hammers the payload decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode stably — a double
// round-trip (decode, encode, decode, encode) has to converge on identical
// bytes, or the simulated network and the TCP transport would disagree
// about message sizes for the same value.
func FuzzUnmarshal(f *testing.F) {
	for _, v := range corpusValues() {
		data, err := wire.Marshal(v)
		if err != nil {
			f.Fatalf("corpus value %T: %v", v, err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wire.Unmarshal(data)
		if err != nil {
			return // rejected input; only panics are bugs here
		}
		enc1, err := wire.Marshal(v)
		if err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", v, err)
		}
		v2, err := wire.Unmarshal(enc1)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", v, err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip changed value: %#v -> %#v", v, v2)
		}
		enc2, err := wire.Marshal(v2)
		if err != nil {
			t.Fatalf("second re-encode of %T: %v", v2, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("unstable encoding for %T:\n first %x\nsecond %x", v, enc1, enc2)
		}
	})
}

// FuzzReadFrame hammers the stream framer: arbitrary bytes must never
// panic or over-allocate (the MaxFrame cap), every frame it parses must
// re-frame to bytes that parse back identically, and a frame we write
// ourselves must always read back.
func FuzzReadFrame(f *testing.F) {
	for _, v := range corpusValues() {
		payload, err := wire.Marshal(v)
		if err != nil {
			f.Fatalf("corpus value %T: %v", v, err)
		}
		f.Add(wire.AppendFrame(nil, payload))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			body, err := wire.ReadFrame(r)
			if err != nil {
				if err != io.EOF && r.Len() == len(data) {
					// Nothing consumed and not a clean EOF: the error must
					// be the header's, and a reread must agree.
					if _, err2 := wire.ReadFrame(bytes.NewReader(data)); err2 == nil {
						t.Fatalf("ReadFrame flip-flopped on %x: %v then nil", data, err)
					}
				}
				return
			}
			var buf bytes.Buffer
			if werr := wire.WriteFrame(&buf, body); werr != nil {
				t.Fatalf("WriteFrame(%d bytes): %v", len(body), werr)
			}
			back, rerr := wire.ReadFrame(&buf)
			if rerr != nil {
				t.Fatalf("re-read of written frame: %v", rerr)
			}
			if !bytes.Equal(body, back) {
				t.Fatalf("frame round trip changed body: %x -> %x", body, back)
			}
		}
	})
}
