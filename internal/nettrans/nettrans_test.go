package nettrans_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// TestConcurrentCallsMultiplex drives many concurrent calls over the single
// per-peer connection; request-id multiplexing must route every reply to its
// own caller.
func TestConcurrentCallsMultiplex(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	c.Transport(1).Handle(1, "echo", func(from transport.NodeID, req any) (any, error) {
		return req, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			resp, err := c.Transport(0).Call(0, 1, "echo", conformance.Msg{Tag: want})
			if err != nil {
				errs <- err
				return
			}
			if got := resp.(conformance.Msg).Tag; got != want {
				errs <- fmt.Errorf("reply %q for request %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLargePayload moves a multi-megabyte body through the frame layer both
// ways.
func TestLargePayload(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	c.Transport(1).Handle(1, "big", func(from transport.NodeID, req any) (any, error) {
		return req, nil
	})
	body := make([]byte, 4<<20)
	for i := range body {
		body[i] = byte(i)
	}
	resp, err := c.Transport(0).Call(0, 1, "big", conformance.Msg{Tag: "big", Body: body})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := resp.(conformance.Msg).Body; !bytes.Equal(got, body) {
		t.Fatalf("large payload corrupted: %d bytes back, want %d", len(got), len(body))
	}
}

// TestReconnectAfterPeerRestart kills a peer process (its transport) and
// brings a new one up on the same address; the survivor's next calls must
// redial through backoff and succeed without rebuilding the Transport.
func TestReconnectAfterPeerRestart(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	c.Transport(1).Handle(1, "gen", func(from transport.NodeID, req any) (any, error) {
		return conformance.Msg{Tag: "gen1"}, nil
	})
	resp, err := c.Transport(0).Call(0, 1, "gen", conformance.Msg{})
	if err != nil || resp.(conformance.Msg).Tag != "gen1" {
		t.Fatalf("pre-restart call: %v %v", resp, err)
	}

	addr := c.ts[1].Addr()
	peers := []nettrans.Peer{
		{ID: 0, Site: "east", Addr: c.ts[0].Addr()},
		{ID: 1, Site: "east", Addr: addr},
	}
	c.ts[1].Close()
	if _, err := c.Transport(0).CallTimeout(0, 1, "gen", conformance.Msg{}, 200*time.Millisecond); err == nil {
		t.Fatal("call to a dead peer succeeded")
	}

	// Restart: a fresh transport on the same address, like a respawned
	// process. Binding can race the dying listener, so retry briefly.
	var reborn *nettrans.Transport
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err := net.Listen("tcp", addr)
		if err == nil {
			reborn, err = nettrans.New(sim.NewReal(2), nettrans.Config{Self: 1, Peers: peers, Listener: lis})
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.ts[1] = reborn
	reborn.Handle(1, "gen", func(from transport.NodeID, req any) (any, error) {
		return conformance.Msg{Tag: "gen2"}, nil
	})

	// The survivor redials through backoff; allow a few rounds.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Transport(0).CallTimeout(0, 1, "gen", conformance.Msg{}, 500*time.Millisecond)
		if err == nil {
			if got := resp.(conformance.Msg).Tag; got != "gen2" {
				t.Fatalf("post-restart reply %q, want gen2", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDeadPeerFailsFast checks that a call to an unreachable peer maps the
// dial failure to ErrTimeout (the uniform unreachability error) rather than
// leaking net.OpError to protocol code.
func TestDeadPeerFailsFast(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	c.ts[1].Close()
	start := time.Now()
	_, err := c.Transport(0).CallTimeout(0, 1, "any", conformance.Msg{}, 2*time.Second)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A refused dial must fail fast, not burn the whole RPC timeout.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dead-peer call took %v", elapsed)
	}
}

// TestSelfCallLoopback verifies a node calling itself round-trips through
// the codecs (copy semantics) without touching the socket.
func TestSelfCallLoopback(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	sent := []byte{5, 6}
	c.Transport(0).Handle(0, "self", func(from transport.NodeID, req any) (any, error) {
		m := req.(conformance.Msg)
		m.Body[0] = 9
		return m, nil
	})
	resp, err := c.Transport(0).Call(0, 0, "self", conformance.Msg{Body: sent})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if sent[0] != 5 {
		t.Fatalf("loopback handler mutated the caller's slice: %v", sent)
	}
	if got := resp.(conformance.Msg).Body; !bytes.Equal(got, []byte{9, 6}) {
		t.Fatalf("reply body = %v", got)
	}
}

// TestDialHookAndBackoffConfig exercises the Config knobs: a custom Dial
// hook sees the full Peer and can refuse connections, and the redial
// backoff honors the configured floor/ceiling so a briefly refused peer is
// re-probed on the tightened schedule instead of the 2s default ceiling.
func TestDialHookAndBackoffConfig(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []nettrans.Peer{
		{ID: 0, Site: "east", Addr: lis0.Addr().String()},
		{ID: 1, Site: "west", Addr: lis1.Addr().String()},
	}

	var mu sync.Mutex
	var dials []nettrans.Peer
	refusals := 3
	dial := func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		dials = append(dials, peer)
		refuse := len(dials) <= refusals
		mu.Unlock()
		if refuse {
			return nil, errors.New("injected dial refusal")
		}
		return net.DialTimeout("tcp", peer.Addr, timeout)
	}

	t0, err := nettrans.New(sim.NewReal(1), nettrans.Config{
		Self: 0, Peers: peers, Listener: lis0,
		RPCTimeout:   time.Second,
		BackoffFloor: 5 * time.Millisecond,
		BackoffCeil:  20 * time.Millisecond,
		Dial:         dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := nettrans.New(sim.NewReal(2), nettrans.Config{Self: 1, Peers: peers, Listener: lis1})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t1.Handle(1, "echo", func(from transport.NodeID, req any) (any, error) { return req, nil })

	// With floor 5ms / ceiling 20ms the three refusals cost at most ~45ms of
	// backoff; with the default bounds they would cost ~350ms. Bound the
	// whole retry loop well under the default to prove the knobs took.
	start := time.Now()
	deadline := start.Add(2 * time.Second)
	for {
		_, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{Tag: "hi"}, 250*time.Millisecond)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("call never succeeded through the dial hook: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("reconnect took %v; backoff bounds not honored", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dials) < refusals+1 {
		t.Fatalf("dial hook called %d times, want at least %d", len(dials), refusals+1)
	}
	for _, p := range dials {
		if p.ID != 1 || p.Site != "west" || p.Addr != peers[1].Addr {
			t.Fatalf("dial hook saw peer %+v, want %+v", p, peers[1])
		}
	}
}

// TestInboundChurnBounded churns many short-lived inbound connections — the
// reconnect pattern chaosnet's reset faults produce — and asserts the
// accept-side tracking drops each one as it dies. The old code appended
// every accepted conn to a slice and never removed closed ones, so this
// count grew without bound.
func TestInboundChurnBounded(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()
	c.Transport(1).Handle(1, "echo", func(from transport.NodeID, req any) (any, error) {
		return req, nil
	})
	// One legitimate live connection: node 0 calling node 1.
	if _, err := c.Transport(0).Call(0, 1, "echo", conformance.Msg{Tag: "pre"}); err != nil {
		t.Fatalf("Call: %v", err)
	}

	addr := c.ts[1].Addr()
	const churn = 40
	for i := 0; i < churn; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("churn dial %d: %v", i, err)
		}
		if i%2 == 0 {
			// Half the churn dies mid-frame, like a chaosnet reset.
			_, _ = conn.Write([]byte{0, 0, 0})
		}
		_ = conn.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := c.ts[1].InboundConns(); n <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inbound tracking leaked: %d conns tracked after %d churned reconnects, want ≤1",
				c.ts[1].InboundConns(), churn)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The transport must still serve after the churn.
	if _, err := c.Transport(0).Call(0, 1, "echo", conformance.Msg{Tag: "post"}); err != nil {
		t.Fatalf("post-churn Call: %v", err)
	}
}

// TestBlackholedPeerDialsSingleFlight drives concurrent calls at a peer
// whose dial hangs for the full DialTimeout (a black-holed address). The
// dial must be single-flight and outside the frame-write critical section:
// every caller returns within about one DialTimeout. The old code held
// pc.mu across the dial, so N concurrent calls serialized into N×DialTimeout.
func TestBlackholedPeerDialsSingleFlight(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []nettrans.Peer{
		{ID: 0, Site: "east", Addr: lis0.Addr().String()},
		{ID: 1, Site: "west", Addr: "192.0.2.1:9"}, // TEST-NET, never reachable
	}
	const dialTimeout = 300 * time.Millisecond
	var dials atomic.Int32
	t0, err := nettrans.New(sim.NewReal(1), nettrans.Config{
		Self: 0, Peers: peers, Listener: lis0,
		DialTimeout: dialTimeout,
		Dial: func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			time.Sleep(timeout) // black hole: no SYN-ACK until the timeout
			return nil, errors.New("dial black-holed")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	const callers = 8
	start := time.Now()
	elapsed := make(chan time.Duration, callers)
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := t0.CallTimeout(0, 1, "any", conformance.Msg{Tag: "q"}, 5*time.Second)
			elapsed <- time.Since(start)
			errs <- err
		}()
	}
	wg.Wait()
	close(elapsed)
	close(errs)
	for err := range errs {
		if !errors.Is(err, transport.ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	}
	for d := range elapsed {
		// One shared dial plus scheduling slack — nowhere near callers×DialTimeout.
		if d > 2*dialTimeout {
			t.Errorf("caller took %v, want ≈%v (head-of-line blocked?)", d, dialTimeout)
		}
	}
	if n := dials.Load(); n > 2 {
		t.Errorf("dial attempted %d times for %d concurrent callers, want single-flight", n, callers)
	}
}

// BenchmarkLoopbackCall measures one full RPC over real TCP loopback —
// frame encode, socket write, server decode+dispatch, reply encode, socket
// write back, reply match — the end-to-end floor the lock-path latencies
// build on.
func BenchmarkLoopbackCall(b *testing.B) {
	c := newCluster(b, 2)
	defer c.Close()
	c.Transport(1).Handle(1, "echo", func(from transport.NodeID, req any) (any, error) {
		return req, nil
	})
	msg := conformance.Msg{Tag: "bench", Body: make([]byte, 256)}
	if _, err := c.Transport(0).Call(0, 1, "echo", msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transport(0).Call(0, 1, "echo", msg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTopology checks the peer-set-derived topology accessors.
func TestTopology(t *testing.T) {
	c := newCluster(t, 4)
	defer c.Close()
	tr := c.Transport(0)
	if got := tr.Nodes(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Nodes() = %v", got)
	}
	if tr.SiteOf(2) != "west" {
		t.Fatalf("SiteOf(2) = %q", tr.SiteOf(2))
	}
	if got := tr.NodesInSite("east"); len(got) != 2 {
		t.Fatalf("NodesInSite(east) = %v", got)
	}
}
