package nettrans

import (
	"bytes"
	"runtime/debug"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// The frame hot path is pooled and single-buffer by design; these tests pin
// the allocation budget so a regression (a dropped pool, an intermediate
// payload buffer, a fresh Encoder per frame) fails the gate instead of
// silently re-inflating the TCP plane. GC is disabled while counting so a
// collection cannot empty the pools mid-run and charge the refill to us.

// allocMsg is this package's hot-path test payload (test id range 900–999).
type allocMsg struct {
	Tag  string
	Body []byte
}

func init() {
	wire.Register(920, "nettrans.allocMsg",
		func(e *wire.Encoder, v allocMsg) {
			e.String(v.Tag)
			e.RawBytes(v.Body)
		},
		func(d *wire.Decoder) allocMsg {
			return allocMsg{Tag: d.String(), Body: d.RawBytes()}
		})
}

// buildCallFrame encodes one call frame the way CallTimeout does.
func buildCallFrame(tb testing.TB, msg any) []byte {
	tb.Helper()
	fr := wire.GetEncoder()
	defer wire.PutEncoder(fr)
	if err := appendCallFrame(fr, kindCall, 7, 1, "svc.echo", msg); err != nil {
		tb.Fatalf("appendCallFrame: %v", err)
	}
	return append([]byte(nil), fr.Bytes()...)
}

// TestAllocCeilingCallFrame: encoding a call frame — pooled buffer, payload
// marshaled in place, both length prefixes back-patched — must not allocate.
func TestAllocCeilingCallFrame(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts; alloc counts are nondeterministic")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var msg any = allocMsg{Tag: "alloc", Body: make([]byte, 256)}
	for i := 0; i < 8; i++ { // warm the encoder pool to steady-state capacity
		buildCallFrame(t, msg)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fr := wire.GetEncoder()
		if err := appendCallFrame(fr, kindCall, 7, 1, "svc.echo", msg); err != nil {
			t.Errorf("appendCallFrame: %v", err)
		}
		wire.PutEncoder(fr)
	})
	if allocs > 0 {
		t.Fatalf("frame encode path allocated %.2f/op, want 0", allocs)
	}
}

// TestAllocCeilingReadFrame: the decode path — frame read into a reused
// buffer, header parsed, payload viewed without copying — may allocate at
// most once per frame (the svc string the handler map is keyed by).
func TestAllocCeilingReadFrame(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts; alloc counts are nondeterministic")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	msg := allocMsg{Tag: "alloc", Body: make([]byte, 256)}
	frame := buildCallFrame(t, msg)
	r := bytes.NewReader(frame)
	var buf []byte
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		body, err := wire.ReadFrameInto(r, buf)
		if err != nil {
			t.Errorf("ReadFrameInto: %v", err)
			return
		}
		buf = body
		d := wire.DecoderFor(body)
		if kind := d.Uint8(); kind != kindCall {
			t.Errorf("kind = %d", kind)
		}
		_ = d.Uint64()                          // reqID
		_ = transport.NodeID(int32(d.Uint32())) // from
		if svc := d.String(); svc != "svc.echo" {
			t.Errorf("svc = %q", svc)
		}
		if payload := d.RawBytesView(); len(payload) == 0 || d.Err() != nil {
			t.Errorf("payload view: len %d, err %v", len(payload), d.Err())
		}
	})
	if allocs > 1 {
		t.Fatalf("frame decode path allocated %.2f/op, want ≤1", allocs)
	}
}

// BenchmarkCallFrame measures the encode hot path: one pooled buffer, one
// payload marshal in place, zero allocations.
func BenchmarkCallFrame(b *testing.B) {
	var msg any = allocMsg{Tag: "bench", Body: make([]byte, 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr := wire.GetEncoder()
		if err := appendCallFrame(fr, kindCall, uint64(i), 1, "svc.echo", msg); err != nil {
			b.Fatal(err)
		}
		wire.PutEncoder(fr)
	}
}

// BenchmarkReadFrame measures the decode hot path: frame into a reused
// buffer, header parse, zero-copy payload view.
func BenchmarkReadFrame(b *testing.B) {
	frame := buildCallFrame(b, allocMsg{Tag: "bench", Body: make([]byte, 256)})
	r := bytes.NewReader(frame)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		body, err := wire.ReadFrameInto(r, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = body
		d := wire.DecoderFor(body)
		_ = d.Uint8()
		_ = d.Uint64()
		_ = d.Uint32()
		_ = d.String()
		_ = d.RawBytesView()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// BenchmarkRoundTrip measures a full in-memory frame cycle: encode a call,
// decode it, unmarshal the payload, encode the reply, decode that — the
// codec work one RPC costs on top of its two socket writes.
func BenchmarkRoundTrip(b *testing.B) {
	var msg any = allocMsg{Tag: "bench", Body: make([]byte, 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		call := wire.GetEncoder()
		if err := appendCallFrame(call, kindCall, uint64(i), 1, "svc.echo", msg); err != nil {
			b.Fatal(err)
		}
		d := wire.DecoderFor(call.Bytes()[4:]) // body after the frame length prefix
		_ = d.Uint8()
		id := d.Uint64()
		_ = d.Uint32()
		_ = d.String()
		req, err := wire.Unmarshal(d.RawBytesView())
		if err != nil {
			b.Fatal(err)
		}
		reply := wire.GetEncoder()
		if err := appendReplyFrame(reply, id, req, nil); err != nil {
			b.Fatal(err)
		}
		rd := wire.DecoderFor(reply.Bytes()[4:])
		_ = rd.Uint8()
		_ = rd.Uint64()
		_ = rd.Uint8()
		if _, err := wire.Unmarshal(rd.RawBytesView()); err != nil {
			b.Fatal(err)
		}
		wire.PutEncoder(reply)
		wire.PutEncoder(call)
	}
}
