//go:build !race

package nettrans

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
