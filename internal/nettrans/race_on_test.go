//go:build race

package nettrans

// raceEnabled reports whether the race detector is compiled in. The
// race-mode runtime deliberately drops a fraction of sync.Pool puts, so
// allocation-ceiling tests are nondeterministic under it and skip.
const raceEnabled = true
