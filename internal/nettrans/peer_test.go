package nettrans_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// TestRuntimePeerEditing drives the transport.PeerEditor capability end to
// end: a node outside the boot-time peer set becomes reachable only after
// AddPeer, is unreachable again after RemovePeer, and re-adding an id at a
// new address (the replaced-process case) redials the replacement.
func TestRuntimePeerEditing(t *testing.T) {
	c := newCluster(t, 2)
	defer c.Close()

	// The capability must be discoverable through the interface.
	var tr transport.Transport = c.Transport(0)
	pe, ok := tr.(transport.PeerEditor)
	if !ok {
		t.Fatal("nettrans.Transport does not implement transport.PeerEditor")
	}

	// A third process boots outside everyone's peer set (it knows the
	// cluster; the cluster does not know it — the join direction).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	joiner, err := nettrans.New(sim.NewReal(9), nettrans.Config{
		Self: 2,
		Peers: []nettrans.Peer{
			{ID: 0, Site: "east", Addr: c.ts[0].Addr()},
			{ID: 1, Site: "east", Addr: c.ts[1].Addr()},
			{ID: 2, Site: "south", Addr: lis.Addr().String()},
		},
		Listener:   lis,
		RPCTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("nettrans.New: %v", err)
	}
	defer joiner.Close()
	joiner.Handle(2, "echo", func(from transport.NodeID, req any) (any, error) {
		return req, nil
	})

	if _, err := tr.CallTimeout(0, 2, "echo", conformance.Msg{Tag: "x"}, 200*time.Millisecond); err == nil {
		t.Fatal("call to an unknown peer succeeded before AddPeer")
	}
	if err := pe.AddPeer(2, "south", joiner.Addr()); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	resp, err := tr.Call(0, 2, "echo", conformance.Msg{Tag: "joined"})
	if err != nil || resp.(conformance.Msg).Tag != "joined" {
		t.Fatalf("post-AddPeer call: %v %v", resp, err)
	}
	if site := tr.SiteOf(2); site != "south" {
		t.Fatalf("SiteOf(2) = %q, want south", site)
	}
	if got := tr.NodesInSite("south"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("NodesInSite(south) = %v, want [2]", got)
	}

	if err := pe.RemovePeer(2); err != nil {
		t.Fatalf("RemovePeer: %v", err)
	}
	if _, err := tr.CallTimeout(0, 2, "echo", conformance.Msg{}, 200*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("call after RemovePeer: %v, want ErrTimeout", err)
	}
	if err := pe.RemovePeer(2); err == nil {
		t.Fatal("double RemovePeer succeeded")
	}
	if err := pe.RemovePeer(0); err == nil {
		t.Fatal("RemovePeer(self) succeeded")
	}

	// Replacement: the same id comes back at a different address, like a
	// respawned process on a new port. AddPeer must drop the stale route.
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	joiner.Close()
	replacement, err := nettrans.New(sim.NewReal(10), nettrans.Config{
		Self: 2,
		Peers: []nettrans.Peer{
			{ID: 0, Site: "east", Addr: c.ts[0].Addr()},
			{ID: 2, Site: "south", Addr: lis2.Addr().String()},
		},
		Listener:   lis2,
		RPCTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("nettrans.New: %v", err)
	}
	defer replacement.Close()
	replacement.Handle(2, "echo", func(from transport.NodeID, req any) (any, error) {
		return conformance.Msg{Tag: "reborn"}, nil
	})
	if err := pe.AddPeer(2, "south", replacement.Addr()); err != nil {
		t.Fatalf("AddPeer(replacement): %v", err)
	}
	resp, err = tr.Call(0, 2, "echo", conformance.Msg{})
	if err != nil || resp.(conformance.Msg).Tag != "reborn" {
		t.Fatalf("call to replacement: %v %v", resp, err)
	}

	peers := c.ts[0].Peers()
	if len(peers) != 3 || peers[2].ID != 2 || peers[2].Addr != replacement.Addr() {
		t.Fatalf("Peers() = %v, want 3 entries with n2 at %s", peers, replacement.Addr())
	}
}
