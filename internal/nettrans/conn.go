package nettrans

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Connection management. Each pair of processes uses (up to) two TCP
// connections, one per direction: the side issuing a call writes on the
// connection it dialed and reads replies off it, and the accepting side
// reads calls and writes replies back on the same socket. That keeps the
// multiplexing state simple — a connection's reader is either a pure
// client-side reply pump or a pure server-side request loop.

// peerConn is the lazily dialed outbound connection to one peer. The redial
// backoff is bounded by Config.BackoffFloor/BackoffCeil.
type peerConn struct {
	peer Peer

	mu       sync.Mutex
	conn     net.Conn
	backoff  time.Duration
	nextDial time.Time
}

func (pc *peerConn) close() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn != nil {
		_ = pc.conn.Close()
		pc.conn = nil
	}
}

// send writes one frame to the peer, dialing if needed. A write or dial
// failure drops the connection; the next send redials, gated by backoff.
func (t *Transport) send(to transport.NodeID, body []byte) error {
	pc := t.peerConnFor(to)
	if pc == nil {
		return fmt.Errorf("unknown peer n%d", to)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		if until := time.Until(pc.nextDial); until > 0 {
			return fmt.Errorf("peer %s in dial backoff for %v", pc.peer.Addr, until.Round(time.Millisecond))
		}
		conn, err := t.cfg.Dial(pc.peer, t.cfg.DialTimeout)
		if err != nil {
			pc.backoff = min(max(2*pc.backoff, t.cfg.BackoffFloor), t.cfg.BackoffCeil)
			pc.nextDial = time.Now().Add(pc.backoff)
			return err
		}
		pc.backoff = 0
		pc.conn = conn
		go t.readReplies(pc, conn)
	}
	if err := wire.WriteFrame(pc.conn, body); err != nil {
		_ = pc.conn.Close()
		pc.conn = nil
		return err
	}
	return nil
}

func (t *Transport) peerConnFor(to transport.NodeID) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if pc, ok := t.conns[to]; ok {
		return pc
	}
	p, ok := t.peers[to]
	if !ok {
		return nil
	}
	pc := &peerConn{peer: p}
	t.conns[to] = pc
	return pc
}

// readReplies is the client-side pump: it matches reply frames to pending
// calls until the connection dies, then lets outstanding calls time out.
func (t *Transport) readReplies(pc *peerConn, conn net.Conn) {
	for {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			pc.mu.Lock()
			if pc.conn == conn {
				_ = conn.Close()
				pc.conn = nil
			}
			pc.mu.Unlock()
			return
		}
		t.handleReply(body)
	}
}

func (t *Transport) handleReply(body []byte) {
	d := wire.NewDecoder(body)
	if d.Uint8() != kindReply {
		return // protocol violation; drop
	}
	id := d.Uint64()
	status := d.Uint8()
	var r reply
	switch status {
	case statusOK:
		payload := d.RawBytes()
		if d.Err() != nil {
			return
		}
		resp, err := wire.Unmarshal(payload)
		if err != nil {
			r = reply{err: fmt.Errorf("nettrans: reply decode: %w", err)}
		} else {
			r = reply{resp: resp}
		}
	case statusErr:
		r = reply{err: &transport.RemoteError{Err: wire.DecodeError(d)}}
	default:
		return
	}
	if ch, ok := t.pending.LoadAndDelete(id); ok {
		ch.(chan reply) <- r
	}
}

// acceptLoop is the server side: every inbound connection gets its own
// request-serving goroutine.
func (t *Transport) acceptLoop() {
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn reads call and one-way frames off one inbound connection,
// running each handler in its own goroutine so a slow request does not
// head-of-line block the stream. Replies are written back on the same
// connection under a per-connection write lock.
func (t *Transport) serveConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex
	for {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		d := wire.NewDecoder(body)
		kind := d.Uint8()
		id := d.Uint64()
		from := transport.NodeID(int32(d.Uint32()))
		svc := d.String()
		payload := d.RawBytes()
		if d.Err() != nil || (kind != kindCall && kind != kindOneway) {
			return // corrupt stream; drop the connection
		}
		go t.serveRequest(conn, &wmu, kind, id, from, svc, payload)
	}
}

func (t *Transport) serveRequest(conn net.Conn, wmu *sync.Mutex, kind byte, id uint64, from transport.NodeID, svc string, payload []byte) {
	resp, herr := t.dispatchLocal(from, svc, payload)
	if kind != kindCall {
		return
	}
	frame, err := replyFrame(id, resp, herr)
	if err != nil {
		// The handler returned an unregistered type; report that instead
		// of leaving the caller to time out.
		frame, _ = replyFrame(id, nil, fmt.Errorf("nettrans: %s reply: %v", svc, err))
	}
	wmu.Lock()
	werr := wire.WriteFrame(conn, frame)
	wmu.Unlock()
	if werr != nil {
		_ = conn.Close()
	}
}

// dispatchLocal decodes the payload and runs the registered handler,
// mirroring simnet's handler semantics (missing handler → ErrNoHandler).
func (t *Transport) dispatchLocal(from transport.NodeID, svc string, payload []byte) (any, error) {
	h, ok := t.handler(svc)
	if !ok {
		return nil, fmt.Errorf("%w: %q on node %d", transport.ErrNoHandler, svc, t.self)
	}
	req, err := wire.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("nettrans: %s request decode: %v", svc, err)
	}
	tr := t.obs.Tracer()
	sp := tr.Detached(tr.Current().Context(), "serve:"+svc, t.rt.Now())
	sp.Annotatef("route", "n%d → n%d", from, t.self)
	resp, herr := h(from, req)
	sp.EndErr(herr)
	return resp, herr
}
