package nettrans

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Connection management. Each pair of processes uses (up to) two TCP
// connections, one per direction: the side issuing a call writes on the
// connection it dialed and reads replies off it, and the accepting side
// reads calls and writes replies back on the same socket. That keeps the
// multiplexing state simple — a connection's reader is either a pure
// client-side reply pump or a pure server-side request loop.
//
// Outbound frames go through a per-peer send queue drained by a combining
// writer: whichever sender finds no writer active takes the role, and every
// sender that arrives while a write syscall is in flight just enqueues and
// returns. The active writer batches everything queued behind it into one
// writev-shaped net.Buffers write, so under load N concurrent callers share
// a syscall instead of serializing N writes — and nobody ever holds pc.mu
// across a syscall or a dial.

// peerConn is the lazily dialed outbound connection to one peer. The redial
// backoff is bounded by Config.BackoffFloor/BackoffCeil.
type peerConn struct {
	peer Peer

	mu       sync.Mutex
	conn     net.Conn
	backoff  time.Duration
	nextDial time.Time
	closed   bool

	// Single-flight dial: dialing marks one sender's dial in progress;
	// dialDone is closed when it resolves, so concurrent senders wait for
	// that outcome (bounded by DialTimeout) instead of stacking N dials.
	dialing  bool
	dialDone chan struct{}

	// Send queue. queue holds complete frames (length prefix included)
	// awaiting the writer; writing marks the combining writer active. batch
	// and bufs are the writer's scratch, reused across drains — they are
	// only touched by the sender currently holding the writing token.
	queue   []*wire.Encoder
	writing bool
	batch   []*wire.Encoder
	bufs    net.Buffers
}

func (pc *peerConn) close() {
	pc.mu.Lock()
	pc.closed = true
	if pc.conn != nil {
		_ = pc.conn.Close()
		pc.conn = nil
	}
	queue := pc.queue
	pc.queue = nil
	pc.mu.Unlock()
	for _, fr := range queue {
		wire.PutEncoder(fr)
	}
}

// send queues one complete frame for the peer, dialing if needed. On
// success the queue owns fr; on error the caller does (and returns it to
// the pool). A write failure detected by the drain loop drops the
// connection; the next send redials, gated by backoff.
func (t *Transport) send(to transport.NodeID, fr *wire.Encoder) error {
	pc := t.peerConnFor(to)
	if pc == nil {
		return fmt.Errorf("unknown peer n%d", to)
	}
	for {
		pc.mu.Lock()
		if pc.closed {
			pc.mu.Unlock()
			return fmt.Errorf("transport closed")
		}
		if pc.conn != nil {
			pc.queue = append(pc.queue, fr)
			if pc.writing {
				pc.mu.Unlock()
				return nil // the active writer will batch this frame
			}
			pc.writing = true
			pc.drain() // unlocks pc.mu
			return nil
		}
		if until := time.Until(pc.nextDial); until > 0 {
			pc.mu.Unlock()
			return fmt.Errorf("peer %s in dial backoff for %v", pc.peer.Addr, until.Round(time.Millisecond))
		}
		if pc.dialing {
			done := pc.dialDone
			pc.mu.Unlock()
			<-done
			continue // re-check: a live conn, a fresh backoff window, or a lost race
		}
		pc.dialing = true
		pc.dialDone = make(chan struct{})
		pc.mu.Unlock()

		// The dial happens outside pc.mu: concurrent senders during this
		// window wait on dialDone above rather than serializing behind a
		// mutex held for up to DialTimeout.
		conn, err := t.cfg.Dial(pc.peer, t.cfg.DialTimeout)

		pc.mu.Lock()
		pc.dialing = false
		close(pc.dialDone)
		if err != nil {
			pc.backoff = min(max(2*pc.backoff, t.cfg.BackoffFloor), t.cfg.BackoffCeil)
			pc.nextDial = time.Now().Add(pc.backoff)
			pc.mu.Unlock()
			return err
		}
		if pc.closed {
			pc.mu.Unlock()
			_ = conn.Close()
			return fmt.Errorf("transport closed")
		}
		pc.backoff = 0
		pc.conn = conn
		pc.mu.Unlock()
		go t.readReplies(pc, conn)
		// Loop: the next pass finds the live conn and enqueues.
	}
}

// drain is the combining writer. Called with pc.mu held and the writing
// token owned; it releases the mutex around every syscall, batching whatever
// queued up behind the previous write into a single net.Buffers write, and
// returns (unlocked) once the queue is empty or the connection died. Frames
// that cannot be written are dropped — to the caller a broken connection is
// indistinguishable from a lost message, and the reply timeout covers it.
func (pc *peerConn) drain() {
	conn := pc.conn
	for {
		pc.batch, pc.queue = pc.queue, pc.batch[:0]
		batch := pc.batch
		pc.mu.Unlock()

		var err error
		if len(batch) == 1 {
			_, err = conn.Write(batch[0].Bytes())
		} else {
			pc.bufs = pc.bufs[:0]
			for _, fr := range batch {
				pc.bufs = append(pc.bufs, fr.Bytes())
			}
			_, err = pc.bufs.WriteTo(conn)
		}
		for i, fr := range batch {
			wire.PutEncoder(fr)
			batch[i] = nil
		}

		pc.mu.Lock()
		if err != nil || pc.conn != conn || pc.closed {
			if err != nil && pc.conn == conn {
				_ = conn.Close()
				pc.conn = nil
			}
			queue := pc.queue
			pc.queue = nil
			pc.writing = false
			pc.mu.Unlock()
			for _, fr := range queue {
				wire.PutEncoder(fr)
			}
			return
		}
		if len(pc.queue) == 0 {
			pc.writing = false
			pc.mu.Unlock()
			return
		}
	}
}

// maxRetainedReadBuf caps the frame buffer a connection's read loop keeps
// between frames: a one-off multi-megabyte payload must not pin its buffer
// for the connection's lifetime.
const maxRetainedReadBuf = 1 << 20

func (t *Transport) peerConnFor(to transport.NodeID) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if pc, ok := t.conns[to]; ok {
		return pc
	}
	p, ok := t.peers[to]
	if !ok {
		return nil
	}
	pc := &peerConn{peer: p}
	t.conns[to] = pc
	return pc
}

// readBufSize is each connection's bufio read buffer: big enough that a
// frame header and body (and, under load, several pipelined frames) arrive
// in one read syscall instead of two per frame.
const readBufSize = 32 << 10

// readReplies is the client-side pump: it matches reply frames to pending
// calls until the connection dies, then lets outstanding calls time out.
// The frame buffer is reused across replies; handleReply consumes each
// frame fully before the next read overwrites it.
func (t *Transport) readReplies(pc *peerConn, conn net.Conn) {
	br := bufio.NewReaderSize(conn, readBufSize)
	var buf []byte
	for {
		body, err := wire.ReadFrameInto(br, buf)
		if err != nil {
			pc.mu.Lock()
			if pc.conn == conn {
				_ = conn.Close()
				pc.conn = nil
			}
			pc.mu.Unlock()
			return
		}
		buf = body
		t.handleReply(body)
		if cap(buf) > maxRetainedReadBuf {
			buf = nil
		}
	}
}

func (t *Transport) handleReply(body []byte) {
	d := wire.DecoderFor(body)
	if d.Uint8() != kindReply {
		return // protocol violation; drop
	}
	id := d.Uint64()
	status := d.Uint8()
	var resp any
	var rerr error
	switch status {
	case statusOK:
		// The payload view aliases the read buffer; Unmarshal's codecs copy
		// whatever the decoded value keeps, so nothing outlives this call.
		payload := d.RawBytesView()
		if d.Err() != nil {
			return
		}
		var err error
		if resp, err = wire.Unmarshal(payload); err != nil {
			resp, rerr = nil, fmt.Errorf("nettrans: reply decode: %w", err)
		}
	case statusErr:
		rerr = &transport.RemoteError{Err: wire.DecodeError(&d)}
	default:
		return
	}
	v, ok := t.pending.LoadAndDelete(id)
	if !ok {
		return // caller gave up (timeout or early quorum); drop the late reply
	}
	pc := v.(*pendingCall)
	ch, from := pc.ch, pc.to
	pc.to, pc.ch = 0, nil
	pendingCallPool.Put(pc)
	// Never blocks: the caller sized ch for every id it mapped to it, and
	// removing the pending entry above made this the only send for this id.
	ch <- transport.CallResult{From: from, Resp: resp, Err: rerr}
}

// acceptLoop is the server side: every inbound connection gets its own
// request-serving goroutine. Connections are tracked in a map so serveConn
// can untrack them as they die — under reconnect churn the tracked set stays
// bounded by the number of live peers instead of growing monotonically.
func (t *Transport) acceptLoop() {
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn reads call and one-way frames off one inbound connection. The
// frame header is parsed and the request payload decoded in the read loop
// (so the reused frame buffer is never shared with another goroutine), then
// each handler runs in its own goroutine so a slow request does not
// head-of-line block the stream. Replies are written back on the same
// connection under a per-connection write lock.
func (t *Transport) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var wmu sync.Mutex
	br := bufio.NewReaderSize(conn, readBufSize)
	var buf []byte
	for {
		body, err := wire.ReadFrameInto(br, buf)
		if err != nil {
			return
		}
		buf = body
		d := wire.DecoderFor(body)
		kind := d.Uint8()
		id := d.Uint64()
		from := transport.NodeID(int32(d.Uint32()))
		svcView := d.StringView() // aliases buf; resolved to a stable string below
		payload := d.RawBytesView()
		if d.Err() != nil || (kind != kindCall && kind != kindOneway) {
			return // corrupt stream; drop the connection
		}
		var req any
		var herr error
		var svc string
		e, ok := t.handlerForBytes(svcView)
		if !ok {
			svc = string(svcView) // rare path; materialize for the error
			herr = fmt.Errorf("%w: %q on node %d", transport.ErrNoHandler, svc, t.self)
		} else {
			svc = e.name // the canonical registration-time string, no alloc
			if req, err = wire.Unmarshal(payload); err != nil {
				herr = fmt.Errorf("nettrans: %s request decode: %v", svc, err)
			}
		}
		go t.serveRequest(conn, &wmu, kind, id, from, svc, e.fn, req, herr)
		if cap(buf) > maxRetainedReadBuf {
			buf = nil
		}
	}
}

func (t *Transport) serveRequest(conn net.Conn, wmu *sync.Mutex, kind byte, id uint64, from transport.NodeID, svc string, h transport.Handler, req any, herr error) {
	var resp any
	if herr == nil {
		resp, herr = t.runHandler(from, svc, h, req)
	}
	if kind != kindCall {
		return
	}
	fr := wire.GetEncoder()
	if err := appendReplyFrame(fr, id, resp, herr); err != nil {
		// The handler returned an unregistered type; report that instead
		// of leaving the caller to time out.
		_ = appendReplyFrame(fr, id, nil, fmt.Errorf("nettrans: %s reply: %v", svc, err))
	}
	wmu.Lock()
	_, werr := conn.Write(fr.Bytes())
	wmu.Unlock()
	wire.PutEncoder(fr)
	if werr != nil {
		_ = conn.Close()
	}
}

// runHandler runs the registered handler on an already decoded request,
// mirroring simnet's handler semantics. Span setup (including the name
// concat) is gated on an enabled tracer so the disabled-obs serve path
// stays allocation-free.
func (t *Transport) runHandler(from transport.NodeID, svc string, h transport.Handler, req any) (any, error) {
	tr := t.obs.Tracer()
	if tr == nil {
		return h(from, req)
	}
	sp := tr.Detached(tr.Current().Context(), "serve:"+svc, t.rt.Now())
	sp.Annotatef("route", "n%d → n%d", from, t.self)
	resp, herr := h(from, req)
	sp.EndErr(herr)
	return resp, herr
}
