package nettrans_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// netCluster adapts a set of in-process TCP transports — one per node, all
// on loopback — to the shared conformance suite. Every transport dials
// through a tracking hook so Disrupt can kill the live connections of a
// node pair, the mid-call TCP reset the ResetInFlight case drives.
type netCluster struct {
	ts map[transport.NodeID]*nettrans.Transport

	mu    sync.Mutex
	conns map[[2]transport.NodeID][]net.Conn
}

func (c *netCluster) Transport(node transport.NodeID) transport.Transport { return c.ts[node] }

func (c *netCluster) Run(t *testing.T, fn func()) { fn() }

func (c *netCluster) Close() {
	for _, tr := range c.ts {
		tr.Close()
	}
}

// track returns a dial hook that records every connection node self dials.
func (c *netCluster) track(self transport.NodeID) func(nettrans.Peer, time.Duration) (net.Conn, error) {
	return func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", peer.Addr, timeout)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.conns[[2]transport.NodeID{self, peer.ID}] = append(c.conns[[2]transport.NodeID{self, peer.ID}], conn)
		c.mu.Unlock()
		return conn, nil
	}
}

// Disrupt severs every live connection between the pair, both directions.
func (c *netCluster) Disrupt(from, to transport.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range [][2]transport.NodeID{{from, to}, {to, from}} {
		for _, conn := range c.conns[key] {
			_ = conn.Close()
		}
		c.conns[key] = nil
	}
}

// newCluster builds n loopback transports that know each other as peers,
// using port-0 listeners so tests never collide on addresses.
func newCluster(t testing.TB, n int) *netCluster {
	t.Helper()
	rt := sim.NewReal(1)
	sites := []string{"east", "east", "west", "west"}
	listeners := make([]net.Listener, n)
	peers := make([]nettrans.Peer, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: sites[i%len(sites)], Addr: lis.Addr().String()}
	}
	c := &netCluster{
		ts:    make(map[transport.NodeID]*nettrans.Transport, n),
		conns: make(map[[2]transport.NodeID][]net.Conn),
	}
	for i := 0; i < n; i++ {
		tr, err := nettrans.New(rt, nettrans.Config{
			Self:       transport.NodeID(i),
			Peers:      peers,
			Listener:   listeners[i],
			RPCTimeout: 2 * time.Second,
			Dial:       c.track(transport.NodeID(i)),
		})
		if err != nil {
			t.Fatalf("nettrans.New: %v", err)
		}
		c.ts[transport.NodeID(i)] = tr
	}
	return c
}

// TestTransportConformance runs the backend-independent contract against
// TCP transports on loopback.
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Cluster {
		return newCluster(t, 3)
	})
}
