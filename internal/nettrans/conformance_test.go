package nettrans_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// netCluster adapts a set of in-process TCP transports — one per node, all
// on loopback — to the shared conformance suite.
type netCluster struct {
	ts map[transport.NodeID]*nettrans.Transport
}

func (c *netCluster) Transport(node transport.NodeID) transport.Transport { return c.ts[node] }

func (c *netCluster) Run(t *testing.T, fn func()) { fn() }

func (c *netCluster) Close() {
	for _, tr := range c.ts {
		tr.Close()
	}
}

// newCluster builds n loopback transports that know each other as peers,
// using port-0 listeners so tests never collide on addresses.
func newCluster(t *testing.T, n int) *netCluster {
	t.Helper()
	rt := sim.NewReal(1)
	sites := []string{"east", "east", "west", "west"}
	listeners := make([]net.Listener, n)
	peers := make([]nettrans.Peer, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: sites[i%len(sites)], Addr: lis.Addr().String()}
	}
	c := &netCluster{ts: make(map[transport.NodeID]*nettrans.Transport, n)}
	for i := 0; i < n; i++ {
		tr, err := nettrans.New(rt, nettrans.Config{
			Self:       transport.NodeID(i),
			Peers:      peers,
			Listener:   listeners[i],
			RPCTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("nettrans.New: %v", err)
		}
		c.ts[transport.NodeID(i)] = tr
	}
	return c
}

// TestTransportConformance runs the backend-independent contract against
// TCP transports on loopback.
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Cluster {
		return newCluster(t, 3)
	})
}
