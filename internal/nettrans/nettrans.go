// Package nettrans carries the transport.Transport message plane over real
// TCP connections, so the protocol stack that runs against internal/simnet
// in tests runs unchanged between musicd processes.
//
// Every message travels as a length-prefixed frame (internal/wire) holding a
// small routing header plus the payload encoded by its registered wire
// codec. Each process owns one Transport: it listens on its own address,
// keeps one lazily dialed outbound connection per peer (with reconnect and
// exponential backoff), and multiplexes concurrent calls over it by request
// id. Transport failures — a dead peer, a refused dial, a broken pipe —
// surface as transport.ErrTimeout, and handler errors come back wrapped in
// transport.RemoteError with registered sentinels (wire.RegisterError)
// surviving the process boundary, so callers cannot tell this plane from
// the simulated one.
//
// The hot path is allocation- and goroutine-frugal: frames are assembled in
// pooled single buffers with back-patched length prefixes, each connection
// batches concurrent senders' frames through a combining write queue that
// never holds a lock across a syscall (or a dial — dials are single-flight),
// Multicast fans out and demultiplexes replies without spawning goroutines,
// and self-calls run synchronously through the codecs. DESIGN.md "The TCP
// hot path" tells the full story.
package nettrans

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Frame kinds, the first header byte inside each wire frame.
const (
	kindCall   = 1 // expects a reply with the same request id
	kindReply  = 2
	kindOneway = 3 // no reply
)

// Reply status byte.
const (
	statusOK  = 0
	statusErr = 1 // payload is a wire-encoded error
)

// Peer describes one node of the cluster, including this process's own.
type Peer struct {
	ID   transport.NodeID `json:"id"`
	Site string           `json:"site"`
	Addr string           `json:"addr"`
}

// Config describes this process's slot in the cluster.
type Config struct {
	// Self is this process's node id; Peers must contain it.
	Self transport.NodeID
	// Peers lists every node in the cluster.
	Peers []Peer
	// RPCTimeout is the default Call timeout. Defaults to 4s.
	RPCTimeout time.Duration
	// DialTimeout bounds one connection attempt. Defaults to 1s.
	DialTimeout time.Duration
	// BackoffFloor and BackoffCeil bound the exponential redial backoff
	// after a failed dial. Default to 50ms and 2s; chaos soaks tighten both
	// so a partitioned peer is re-probed quickly once the window heals.
	BackoffFloor time.Duration
	BackoffCeil  time.Duration
	// Dial, when set, replaces net.DialTimeout for outbound connections.
	// internal/chaosnet interposes here: the hook can refuse the dial (a
	// partitioned pair) or wrap the returned conn in a fault-injecting one.
	Dial func(peer Peer, timeout time.Duration) (net.Conn, error)
	// Listener, when set, is used instead of listening on Self's Addr —
	// tests pass a port-0 listener whose address the peer set then records.
	Listener net.Listener
	// Obs enables RPC spans and latency metrics. Nil disables both.
	Obs *obs.Obs
	// RTT optionally supplies inter-site round-trip estimates for
	// placement heuristics (store.byDistance). Missing pairs return 0,
	// which keeps placement stable but unordered.
	RTT map[[2]string]time.Duration
}

// Transport is the TCP message plane. It must be built on a real-time
// runtime (sim.NewReal) — sockets do not advance virtual clocks.
type Transport struct {
	rt    sim.Runtime
	cfg   Config
	obs   *obs.Obs
	self  transport.NodeID
	peers map[transport.NodeID]Peer

	lis net.Listener

	mu       sync.Mutex
	handlers map[string]handlerEntry
	conns    map[transport.NodeID]*peerConn
	inbound  map[net.Conn]struct{}
	closed   bool

	nextReq atomic.Uint64
	pending sync.Map // reqID uint64 → *pendingCall
}

// pendingCall is one in-flight request awaiting its reply. Several ids may
// share one result channel (a multicast round); the reply pump tags each
// result with the target it came from. Both the entry and the channel are
// pooled — steady-state RPC traffic reuses a handful of each.
type pendingCall struct {
	to transport.NodeID
	ch chan transport.CallResult
}

var pendingCallPool = sync.Pool{New: func() any { return new(pendingCall) }}

// maxPooledFanout caps the capacity of pooled result channels; it must be
// at least the widest multicast fan-out that shares one channel, so that
// every reply fits without blocking the reply pump.
const maxPooledFanout = 16

var resultChPool = sync.Pool{
	New: func() any { return make(chan transport.CallResult, maxPooledFanout) },
}

// acquireResultCh returns an empty result channel with capacity ≥ n.
func acquireResultCh(n int) chan transport.CallResult {
	if n > maxPooledFanout {
		return make(chan transport.CallResult, n)
	}
	return resultChPool.Get().(chan transport.CallResult)
}

// releaseResultCh returns ch to the pool. Callers must guarantee it is
// empty and no send can still be in flight (every pending id mapped to it
// reclaimed or its reply drained).
func releaseResultCh(ch chan transport.CallResult) {
	if cap(ch) == maxPooledFanout {
		resultChPool.Put(ch)
	}
}

type handlerEntry struct {
	fn transport.Handler
	// name is the canonical (registration-time) service string. serveConn
	// looks handlers up through a byte view of the read buffer and adopts
	// this stable string instead of materializing a fresh one per request.
	name string
}

var _ transport.Transport = (*Transport)(nil)
var _ transport.PeerEditor = (*Transport)(nil)
var _ transport.AddrReporter = (*Transport)(nil)

// New builds the transport and starts its accept loop. The returned
// Transport serves inbound calls immediately; outbound connections are
// dialed on first use.
func New(rt sim.Runtime, cfg Config) (*Transport, error) {
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 4 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.BackoffFloor == 0 {
		cfg.BackoffFloor = 50 * time.Millisecond
	}
	if cfg.BackoffCeil == 0 {
		cfg.BackoffCeil = 2 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(peer Peer, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", peer.Addr, timeout)
		}
	}
	t := &Transport{
		rt:       rt,
		cfg:      cfg,
		obs:      cfg.Obs,
		self:     cfg.Self,
		peers:    make(map[transport.NodeID]Peer, len(cfg.Peers)),
		handlers: make(map[string]handlerEntry),
		conns:    make(map[transport.NodeID]*peerConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	for _, p := range cfg.Peers {
		t.peers[p.ID] = p
	}
	self, ok := t.peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("nettrans: self node %d not in peer set", cfg.Self)
	}
	t.lis = cfg.Listener
	if t.lis == nil {
		lis, err := net.Listen("tcp", self.Addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen %s: %w", self.Addr, err)
		}
		t.lis = lis
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the transport is listening on.
func (t *Transport) Addr() string { return t.lis.Addr().String() }

// Self returns this process's node id.
func (t *Transport) Self() transport.NodeID { return t.self }

// Runtime returns the wall-clock runtime the transport was built on.
func (t *Transport) Runtime() sim.Runtime { return t.rt }

// Obs returns the observability sink (nil when disabled).
func (t *Transport) Obs() *obs.Obs { return t.obs }

// Tracer returns the shared tracer (nil-safe when observability is off).
func (t *Transport) Tracer() *obs.Tracer { return t.obs.Tracer() }

// Nodes returns every node id in the peer set, ascending.
func (t *Transport) Nodes() []transport.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]transport.NodeID, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SiteOf returns the site hosting id.
func (t *Transport) SiteOf(id transport.NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[id].Site
}

// NodesInSite returns the ids in the named site, ascending.
func (t *Transport) NodesInSite(site string) []transport.NodeID {
	var ids []transport.NodeID
	for _, id := range t.Nodes() {
		if t.SiteOf(id) == site {
			ids = append(ids, id)
		}
	}
	return ids
}

// AddrOf returns id's listen address (the transport.AddrReporter
// capability), or "" for a peer this process does not know.
func (t *Transport) AddrOf(id transport.NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[id].Addr
}

// Peers returns a snapshot of the current peer table, ascending by id.
func (t *Transport) Peers() []Peer {
	t.mu.Lock()
	out := make([]Peer, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, p)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddPeer makes id dialable at addr (the transport.PeerEditor capability —
// how a membership join reaches this process's message plane). Re-adding an
// existing id with a new address drops its cached connection so the next
// send dials the replacement process.
func (t *Transport) AddPeer(id transport.NodeID, site, addr string) error {
	if site == "" || addr == "" {
		return fmt.Errorf("nettrans: AddPeer n%d: empty site or addr", id)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("nettrans: transport closed")
	}
	prev, existed := t.peers[id]
	t.peers[id] = Peer{ID: id, Site: site, Addr: addr}
	var stale *peerConn
	if existed && prev.Addr != addr {
		stale = t.conns[id]
		delete(t.conns, id)
	}
	t.mu.Unlock()
	if stale != nil {
		stale.close()
	}
	return nil
}

// RemovePeer forgets id and closes any connection to it. In-flight calls to
// the removed peer fail with ErrTimeout like any lost message.
func (t *Transport) RemovePeer(id transport.NodeID) error {
	if id == t.self {
		return fmt.Errorf("nettrans: RemovePeer n%d: cannot remove self", id)
	}
	t.mu.Lock()
	if _, ok := t.peers[id]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("nettrans: RemovePeer n%d: unknown peer", id)
	}
	delete(t.peers, id)
	pc := t.conns[id]
	delete(t.conns, id)
	t.mu.Unlock()
	if pc != nil {
		pc.close()
	}
	return nil
}

// RTT returns the configured round-trip estimate for a site pair (0 when
// unknown — a real network measures, it does not model).
func (t *Transport) RTT(a, b string) time.Duration {
	if t.cfg.RTT == nil {
		return 0
	}
	if d, ok := t.cfg.RTT[[2]string{a, b}]; ok {
		return d
	}
	return t.cfg.RTT[[2]string{b, a}]
}

// RPCTimeout returns the default Call timeout.
func (t *Transport) RPCTimeout() time.Duration { return t.cfg.RPCTimeout }

// Handle registers h for svc on this process's node. Registering for a
// remote node is a programming error and panics.
func (t *Transport) Handle(node transport.NodeID, svc string, h transport.Handler) {
	if node != t.self {
		panic(fmt.Sprintf("nettrans: Handle(%q) for node %d on the transport of node %d", svc, node, t.self))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[svc] = handlerEntry{fn: h, name: svc}
}

// HandleWithCost is Handle; modeled CPU cost does not apply to real CPUs.
func (t *Transport) HandleWithCost(node transport.NodeID, svc string, h transport.Handler, base, perKB time.Duration) {
	t.Handle(node, svc, h)
}

// OnRestart is a no-op: a real process that crashes is a new process.
func (t *Transport) OnRestart(node transport.NodeID, fn func()) {}

// Work is a no-op: real handlers burn real CPU.
func (t *Transport) Work(node transport.NodeID, cost time.Duration) {}

// Call sends req to `to` for svc and waits for the reply using the default
// RPC timeout.
func (t *Transport) Call(from, to transport.NodeID, svc string, req any) (any, error) {
	return t.CallTimeout(from, to, svc, req, t.cfg.RPCTimeout)
}

// CallTimeout is Call with an explicit timeout. The from node must be this
// process's own (a process cannot originate traffic for another machine).
func (t *Transport) CallTimeout(from, to transport.NodeID, svc string, req any, timeout time.Duration) (resp any, err error) {
	// The span name concat and route annotation are gated on an enabled
	// tracer: with obs off (the default) the call path must not pay them.
	if tr := t.obs.Tracer(); tr != nil {
		rpc := tr.Detached(tr.Current().Context(), "rpc:"+svc, t.rt.Now())
		rpc.Annotatef("route", "n%d → n%d", from, to)
		start := t.rt.Now()
		defer func() {
			t.obs.Metrics().Histogram("nettrans_rpc_latency", obs.Labels{"svc": svc}).
				Observe(t.rt.Now() - start)
			rpc.EndErr(err)
		}()
	}

	if to == t.self {
		return t.callLocal(from, svc, req)
	}

	ch := acquireResultCh(1)
	id, err := t.startCall(to, svc, req, ch)
	if err != nil {
		releaseResultCh(ch)
		return nil, err
	}
	tm := acquireTimer(timeout)
	defer releaseTimer(tm)
	select {
	case r := <-ch:
		// The reply pump removed the pending entry before sending; the
		// channel is ours again and empty.
		releaseResultCh(ch)
		return r.Resp, r.Err
	case <-tm.C:
		if v, ok := t.pending.LoadAndDelete(id); ok {
			// We removed the entry, so no reply can ever be sent: pool it.
			pendingCallPool.Put(v)
			releaseResultCh(ch)
		} else {
			// The reply pump claimed the entry first; its (buffered, non-
			// blocking) send is imminent. Drain the late reply, then pool.
			<-ch
			releaseResultCh(ch)
		}
		return nil, fmt.Errorf("nettrans: %s to n%d: %w", svc, to, transport.ErrTimeout)
	}
}

// startCall encodes req as a call frame, registers id → ch in the pending
// table, and queues the frame for to's connection — the non-blocking half
// of an RPC, shared by CallTimeout and Multicast. It never waits for a
// reply; the reply pump delivers a tagged CallResult on ch. On error the
// pending entry is reclaimed and nothing will ever be sent on ch for it.
func (t *Transport) startCall(to transport.NodeID, svc string, req any, ch chan transport.CallResult) (uint64, error) {
	fr := wire.GetEncoder()
	id := t.nextReq.Add(1)
	if err := appendCallFrame(fr, kindCall, id, t.self, svc, req); err != nil {
		wire.PutEncoder(fr)
		return 0, fmt.Errorf("nettrans: %s request: %w", svc, err)
	}
	pc := pendingCallPool.Get().(*pendingCall)
	pc.to, pc.ch = to, ch
	t.pending.Store(id, pc)
	if err := t.send(to, fr); err != nil {
		wire.PutEncoder(fr)
		if v, ok := t.pending.LoadAndDelete(id); ok {
			pendingCallPool.Put(v)
		}
		// A peer we cannot reach looks exactly like a lost message.
		return 0, fmt.Errorf("nettrans: %s to n%d: %v: %w", svc, to, err, transport.ErrTimeout)
	}
	return id, nil
}

// callLocal dispatches a self-call without touching the socket, but still
// round-trips the payload through its codec so the handler gets the same
// isolated copy a remote caller's handler would. The handler runs
// synchronously on the caller's goroutine — a process cannot be partitioned
// from itself, so the call timeout (which models network loss) does not
// apply, and the self-leg of every quorum round costs two codec copies
// instead of a goroutine handoff, a timer and two channel operations.
func (t *Transport) callLocal(from transport.NodeID, svc string, req any) (any, error) {
	h, ok := t.handler(svc)
	if !ok {
		return nil, &transport.RemoteError{Err: fmt.Errorf("%w: %q on node %d", transport.ErrNoHandler, svc, t.self)}
	}
	reqCopy, err := codecCopy(req)
	if err != nil {
		return nil, fmt.Errorf("nettrans: %s request: %w", svc, err)
	}
	resp, herr := h(from, reqCopy)
	if herr != nil {
		return nil, &transport.RemoteError{Err: herr}
	}
	resp, err = codecCopy(resp)
	if err != nil {
		return nil, &transport.RemoteError{Err: err}
	}
	return resp, nil
}

// codecCopy moves v through its wire codec, yielding an independent copy.
// The encode buffer is pooled; Unmarshal's codecs copy whatever the decoded
// value retains.
func codecCopy(v any) (any, error) {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	if err := wire.MarshalTo(e, v); err != nil {
		return nil, err
	}
	return wire.Unmarshal(e.Bytes())
}

// Send delivers req without waiting for a reply, best effort: marshal or
// connection failures drop the message silently, like a lossy network.
func (t *Transport) Send(from, to transport.NodeID, svc string, req any) {
	if to == t.self {
		if h, ok := t.handler(svc); ok {
			if reqCopy, err := codecCopy(req); err == nil {
				go func() { _, _ = h(from, reqCopy) }()
			}
		}
		return
	}
	fr := wire.GetEncoder()
	if err := appendCallFrame(fr, kindOneway, 0, t.self, svc, req); err != nil {
		wire.PutEncoder(fr)
		return
	}
	if err := t.send(to, fr); err != nil {
		wire.PutEncoder(fr)
	}
}

// Multicast fans req out to every target and collects replies until need of
// them succeeded, everyone answered, or the timeout elapsed — without
// spawning a single goroutine. Each remote frame is encoded and queued
// inline from the caller, the self-leg runs synchronously after the remote
// frames are on their way, and all replies demultiplex onto one shared
// pooled result channel through the pending table (replies come back tagged
// with the sender, so out-of-order completion is fine). On early return the
// outstanding pending entries are reclaimed and any reply that raced the
// reclaim is drained before the channel is pooled: nothing — no goroutine,
// no stuck send, no pending-table entry — outlives the call.
func (t *Transport) Multicast(from transport.NodeID, targets []transport.NodeID, svc string, req any, need int, timeout time.Duration) []transport.CallResult {
	results := acquireResultCh(len(targets))
	collected := make([]transport.CallResult, 0, len(targets))
	var idbuf [8]uint64
	ids := idbuf[:0]
	successes, consumedRemote := 0, 0
	selfTarget := false
	for _, to := range targets {
		if to == t.self {
			selfTarget = true // run after the remote frames are queued
			continue
		}
		id, err := t.startCall(to, svc, req, results)
		if err != nil {
			collected = append(collected, transport.CallResult{From: to, Err: err})
			continue
		}
		ids = append(ids, id)
	}
	cleanup := func() []transport.CallResult {
		reclaimed := 0
		for _, id := range ids {
			if v, ok := t.pending.LoadAndDelete(id); ok {
				pendingCallPool.Put(v)
				reclaimed++
			}
		}
		// Every id neither consumed nor reclaimed was claimed by the reply
		// pump between our reclaim and its (buffered, non-blocking) send:
		// drain those so the channel is provably empty before pooling it.
		for imminent := len(ids) - consumedRemote - reclaimed; imminent > 0; imminent-- {
			<-results
		}
		releaseResultCh(results)
		return collected
	}
	if selfTarget {
		resp, err := t.callLocal(from, svc, req)
		collected = append(collected, transport.CallResult{From: t.self, Resp: resp, Err: err})
		if err == nil {
			successes++
			if need > 0 && successes >= need {
				return cleanup()
			}
		}
	}
	if len(collected) == len(targets) {
		return cleanup()
	}
	tm := acquireTimer(timeout)
	defer releaseTimer(tm)
	for len(collected) < len(targets) {
		select {
		case r := <-results:
			consumedRemote++
			collected = append(collected, r)
			if r.Err == nil {
				successes++
				if need > 0 && successes >= need {
					return cleanup()
				}
			}
		case <-tm.C:
			return cleanup()
		}
	}
	return cleanup()
}

// Close shuts the listener and every connection down. In-flight calls fail
// with ErrTimeout.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = map[transport.NodeID]*peerConn{}
	inbound := t.inbound
	t.inbound = map[net.Conn]struct{}{}
	t.mu.Unlock()

	_ = t.lis.Close()
	for _, pc := range conns {
		pc.close()
	}
	for c := range inbound {
		_ = c.Close()
	}
}

// InboundConns reports the number of live inbound connections currently
// tracked — a diagnostic for tests guarding the accept-side bookkeeping
// against leaking dead connections under reconnect churn.
func (t *Transport) InboundConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inbound)
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) handler(svc string) (transport.Handler, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.handlers[svc]
	return h.fn, ok
}

// handlerForBytes is handler keyed by a byte view of the service name. The
// string(svc) conversion inside the map index does not allocate, and the
// returned entry carries the canonical name string registered with Handle.
func (t *Transport) handlerForBytes(svc []byte) (handlerEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.handlers[string(svc)]
	return h, ok
}

// appendCallFrame appends the complete on-wire encoding of one call or
// one-way message to fr — frame length prefix included, so header, routing
// and payload leave in a single Write:
//
//	[u32 frame len][u8 kind][u64 reqID][u32 from][u32 len(svc)][svc][u32 len(payload)][payload]
//
// The payload is marshaled straight into fr (no intermediate buffer); both
// length prefixes are back-patched once their sections are in place. On a
// marshal error fr is restored to its prior length.
func appendCallFrame(fr *wire.Encoder, kind byte, id uint64, from transport.NodeID, svc string, req any) error {
	frameOff := fr.Len()
	fr.Uint32(0) // frame length, patched below
	fr.Uint8(kind)
	fr.Uint64(id)
	fr.Uint32(uint32(from))
	fr.String(svc)
	payOff := fr.Len()
	fr.Uint32(0) // payload length, patched below
	if err := wire.MarshalTo(fr, req); err != nil {
		fr.Truncate(frameOff)
		return err
	}
	fr.FixUint32(payOff, uint32(fr.Len()-payOff-4))
	fr.FixUint32(frameOff, uint32(fr.Len()-frameOff-4))
	return nil
}

// appendReplyFrame appends a complete reply frame to fr:
//
//	[u32 frame len][u8 kind=reply][u64 reqID][u8 status][payload|error]
//
// mirroring appendCallFrame's single-buffer, single-write layout. On a
// marshal error fr is restored to its prior length so the caller can append
// an error reply instead.
func appendReplyFrame(fr *wire.Encoder, id uint64, resp any, herr error) error {
	frameOff := fr.Len()
	fr.Uint32(0) // frame length, patched below
	fr.Uint8(kindReply)
	fr.Uint64(id)
	if herr != nil {
		fr.Uint8(statusErr)
		wire.EncodeError(fr, herr)
	} else {
		fr.Uint8(statusOK)
		payOff := fr.Len()
		fr.Uint32(0) // payload length, patched below
		if err := wire.MarshalTo(fr, resp); err != nil {
			fr.Truncate(frameOff)
			return err
		}
		fr.FixUint32(payOff, uint32(fr.Len()-payOff-4))
	}
	fr.FixUint32(frameOff, uint32(fr.Len()-frameOff-4))
	return nil
}
