// Package nettrans carries the transport.Transport message plane over real
// TCP connections, so the protocol stack that runs against internal/simnet
// in tests runs unchanged between musicd processes.
//
// Every message travels as a length-prefixed frame (internal/wire) holding a
// small routing header plus the payload encoded by its registered wire
// codec. Each process owns one Transport: it listens on its own address,
// keeps one lazily dialed outbound connection per peer (with reconnect and
// exponential backoff), and multiplexes concurrent calls over it by request
// id. Transport failures — a dead peer, a refused dial, a broken pipe —
// surface as transport.ErrTimeout, and handler errors come back wrapped in
// transport.RemoteError with registered sentinels (wire.RegisterError)
// surviving the process boundary, so callers cannot tell this plane from
// the simulated one.
package nettrans

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Frame kinds, the first header byte inside each wire frame.
const (
	kindCall   = 1 // expects a reply with the same request id
	kindReply  = 2
	kindOneway = 3 // no reply
)

// Reply status byte.
const (
	statusOK  = 0
	statusErr = 1 // payload is a wire-encoded error
)

// Peer describes one node of the cluster, including this process's own.
type Peer struct {
	ID   transport.NodeID `json:"id"`
	Site string           `json:"site"`
	Addr string           `json:"addr"`
}

// Config describes this process's slot in the cluster.
type Config struct {
	// Self is this process's node id; Peers must contain it.
	Self transport.NodeID
	// Peers lists every node in the cluster.
	Peers []Peer
	// RPCTimeout is the default Call timeout. Defaults to 4s.
	RPCTimeout time.Duration
	// DialTimeout bounds one connection attempt. Defaults to 1s.
	DialTimeout time.Duration
	// BackoffFloor and BackoffCeil bound the exponential redial backoff
	// after a failed dial. Default to 50ms and 2s; chaos soaks tighten both
	// so a partitioned peer is re-probed quickly once the window heals.
	BackoffFloor time.Duration
	BackoffCeil  time.Duration
	// Dial, when set, replaces net.DialTimeout for outbound connections.
	// internal/chaosnet interposes here: the hook can refuse the dial (a
	// partitioned pair) or wrap the returned conn in a fault-injecting one.
	Dial func(peer Peer, timeout time.Duration) (net.Conn, error)
	// Listener, when set, is used instead of listening on Self's Addr —
	// tests pass a port-0 listener whose address the peer set then records.
	Listener net.Listener
	// Obs enables RPC spans and latency metrics. Nil disables both.
	Obs *obs.Obs
	// RTT optionally supplies inter-site round-trip estimates for
	// placement heuristics (store.byDistance). Missing pairs return 0,
	// which keeps placement stable but unordered.
	RTT map[[2]string]time.Duration
}

// Transport is the TCP message plane. It must be built on a real-time
// runtime (sim.NewReal) — sockets do not advance virtual clocks.
type Transport struct {
	rt    sim.Runtime
	cfg   Config
	obs   *obs.Obs
	self  transport.NodeID
	peers map[transport.NodeID]Peer

	lis net.Listener

	mu       sync.Mutex
	handlers map[string]handlerEntry
	conns    map[transport.NodeID]*peerConn
	inbound  []net.Conn
	closed   bool

	nextReq atomic.Uint64
	pending sync.Map // reqID uint64 → chan reply
}

type handlerEntry struct {
	fn transport.Handler
}

type reply struct {
	resp any
	err  error
}

var _ transport.Transport = (*Transport)(nil)

// New builds the transport and starts its accept loop. The returned
// Transport serves inbound calls immediately; outbound connections are
// dialed on first use.
func New(rt sim.Runtime, cfg Config) (*Transport, error) {
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 4 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.BackoffFloor == 0 {
		cfg.BackoffFloor = 50 * time.Millisecond
	}
	if cfg.BackoffCeil == 0 {
		cfg.BackoffCeil = 2 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(peer Peer, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", peer.Addr, timeout)
		}
	}
	t := &Transport{
		rt:       rt,
		cfg:      cfg,
		obs:      cfg.Obs,
		self:     cfg.Self,
		peers:    make(map[transport.NodeID]Peer, len(cfg.Peers)),
		handlers: make(map[string]handlerEntry),
		conns:    make(map[transport.NodeID]*peerConn),
	}
	for _, p := range cfg.Peers {
		t.peers[p.ID] = p
	}
	self, ok := t.peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("nettrans: self node %d not in peer set", cfg.Self)
	}
	t.lis = cfg.Listener
	if t.lis == nil {
		lis, err := net.Listen("tcp", self.Addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen %s: %w", self.Addr, err)
		}
		t.lis = lis
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the transport is listening on.
func (t *Transport) Addr() string { return t.lis.Addr().String() }

// Self returns this process's node id.
func (t *Transport) Self() transport.NodeID { return t.self }

// Runtime returns the wall-clock runtime the transport was built on.
func (t *Transport) Runtime() sim.Runtime { return t.rt }

// Obs returns the observability sink (nil when disabled).
func (t *Transport) Obs() *obs.Obs { return t.obs }

// Tracer returns the shared tracer (nil-safe when observability is off).
func (t *Transport) Tracer() *obs.Tracer { return t.obs.Tracer() }

// Nodes returns every node id in the peer set, ascending.
func (t *Transport) Nodes() []transport.NodeID {
	ids := make([]transport.NodeID, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SiteOf returns the site hosting id.
func (t *Transport) SiteOf(id transport.NodeID) string { return t.peers[id].Site }

// NodesInSite returns the ids in the named site, ascending.
func (t *Transport) NodesInSite(site string) []transport.NodeID {
	var ids []transport.NodeID
	for _, id := range t.Nodes() {
		if t.peers[id].Site == site {
			ids = append(ids, id)
		}
	}
	return ids
}

// RTT returns the configured round-trip estimate for a site pair (0 when
// unknown — a real network measures, it does not model).
func (t *Transport) RTT(a, b string) time.Duration {
	if t.cfg.RTT == nil {
		return 0
	}
	if d, ok := t.cfg.RTT[[2]string{a, b}]; ok {
		return d
	}
	return t.cfg.RTT[[2]string{b, a}]
}

// RPCTimeout returns the default Call timeout.
func (t *Transport) RPCTimeout() time.Duration { return t.cfg.RPCTimeout }

// Handle registers h for svc on this process's node. Registering for a
// remote node is a programming error and panics.
func (t *Transport) Handle(node transport.NodeID, svc string, h transport.Handler) {
	if node != t.self {
		panic(fmt.Sprintf("nettrans: Handle(%q) for node %d on the transport of node %d", svc, node, t.self))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[svc] = handlerEntry{fn: h}
}

// HandleWithCost is Handle; modeled CPU cost does not apply to real CPUs.
func (t *Transport) HandleWithCost(node transport.NodeID, svc string, h transport.Handler, base, perKB time.Duration) {
	t.Handle(node, svc, h)
}

// OnRestart is a no-op: a real process that crashes is a new process.
func (t *Transport) OnRestart(node transport.NodeID, fn func()) {}

// Work is a no-op: real handlers burn real CPU.
func (t *Transport) Work(node transport.NodeID, cost time.Duration) {}

// Call sends req to `to` for svc and waits for the reply using the default
// RPC timeout.
func (t *Transport) Call(from, to transport.NodeID, svc string, req any) (any, error) {
	return t.CallTimeout(from, to, svc, req, t.cfg.RPCTimeout)
}

// CallTimeout is Call with an explicit timeout. The from node must be this
// process's own (a process cannot originate traffic for another machine).
func (t *Transport) CallTimeout(from, to transport.NodeID, svc string, req any, timeout time.Duration) (resp any, err error) {
	tr := t.obs.Tracer()
	rpc := tr.Detached(tr.Current().Context(), "rpc:"+svc, t.rt.Now())
	rpc.Annotatef("route", "n%d → n%d", from, to)
	if t.obs != nil {
		start := t.rt.Now()
		defer func() {
			t.obs.Metrics().Histogram("nettrans_rpc_latency", obs.Labels{"svc": svc}).
				Observe(t.rt.Now() - start)
		}()
	}
	defer func() { rpc.EndErr(err) }()

	if to == t.self {
		return t.callLocal(from, svc, req, timeout)
	}

	payload, merr := wire.Marshal(req)
	if merr != nil {
		return nil, fmt.Errorf("nettrans: %s request: %w", svc, merr)
	}
	id := t.nextReq.Add(1)
	ch := make(chan reply, 1)
	t.pending.Store(id, ch)
	defer t.pending.Delete(id)

	if err := t.send(to, callFrame(kindCall, id, t.self, svc, payload)); err != nil {
		// A peer we cannot reach looks exactly like a lost message.
		return nil, fmt.Errorf("nettrans: %s to n%d: %v: %w", svc, to, err, transport.ErrTimeout)
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("nettrans: %s to n%d: %w", svc, to, transport.ErrTimeout)
	}
}

// callLocal dispatches a self-call without touching the socket, but still
// round-trips the payload through its codec so the handler gets the same
// isolated copy a remote caller's handler would.
func (t *Transport) callLocal(from transport.NodeID, svc string, req any, timeout time.Duration) (any, error) {
	h, ok := t.handler(svc)
	if !ok {
		return nil, &transport.RemoteError{Err: fmt.Errorf("%w: %q on node %d", transport.ErrNoHandler, svc, t.self)}
	}
	reqCopy, err := codecCopy(req)
	if err != nil {
		return nil, fmt.Errorf("nettrans: %s request: %w", svc, err)
	}
	ch := make(chan reply, 1)
	go func() {
		resp, err := h(from, reqCopy)
		if err != nil {
			ch <- reply{err: &transport.RemoteError{Err: err}}
			return
		}
		resp, err = codecCopy(resp)
		if err != nil {
			ch <- reply{err: &transport.RemoteError{Err: err}}
			return
		}
		ch <- reply{resp: resp}
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("nettrans: %s loopback: %w", svc, transport.ErrTimeout)
	}
}

// codecCopy moves v through its wire codec, yielding an independent copy.
func codecCopy(v any) (any, error) {
	data, err := wire.Marshal(v)
	if err != nil {
		return nil, err
	}
	return wire.Unmarshal(data)
}

// Send delivers req without waiting for a reply, best effort: marshal or
// connection failures drop the message silently, like a lossy network.
func (t *Transport) Send(from, to transport.NodeID, svc string, req any) {
	if to == t.self {
		if h, ok := t.handler(svc); ok {
			if reqCopy, err := codecCopy(req); err == nil {
				go func() { _, _ = h(from, reqCopy) }()
			}
		}
		return
	}
	payload, err := wire.Marshal(req)
	if err != nil {
		return
	}
	_ = t.send(to, callFrame(kindOneway, 0, t.self, svc, payload))
}

// Multicast fans req out to every target and collects replies until need of
// them succeeded, everyone answered, or the timeout elapsed.
func (t *Transport) Multicast(from transport.NodeID, targets []transport.NodeID, svc string, req any, need int, timeout time.Duration) []transport.CallResult {
	results := make(chan transport.CallResult, len(targets))
	for _, to := range targets {
		to := to
		go func() {
			resp, err := t.CallTimeout(from, to, svc, req, timeout)
			results <- transport.CallResult{From: to, Resp: resp, Err: err}
		}()
	}
	deadline := time.After(timeout)
	collected := make([]transport.CallResult, 0, len(targets))
	successes := 0
	for len(collected) < len(targets) {
		select {
		case r := <-results:
			collected = append(collected, r)
			if r.Err == nil {
				successes++
				if need > 0 && successes >= need {
					return collected
				}
			}
		case <-deadline:
			return collected
		}
	}
	return collected
}

// Close shuts the listener and every connection down. In-flight calls fail
// with ErrTimeout.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = map[transport.NodeID]*peerConn{}
	inbound := t.inbound
	t.inbound = nil
	t.mu.Unlock()

	_ = t.lis.Close()
	for _, pc := range conns {
		pc.close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) handler(svc string) (transport.Handler, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.handlers[svc]
	return h.fn, ok
}

// callFrame assembles the frame body:
// [u8 kind][u64 reqID][u32 from][u32 len(svc)][svc][u32 len(payload)][payload].
func callFrame(kind byte, id uint64, from transport.NodeID, svc string, payload []byte) []byte {
	var e wire.Encoder
	e.Uint8(kind)
	e.Uint64(id)
	e.Uint32(uint32(from))
	e.String(svc)
	e.RawBytes(payload)
	return e.Bytes()
}

// replyFrame assembles [u8 kind=reply][u64 reqID][u8 status][payload|error].
func replyFrame(id uint64, resp any, herr error) ([]byte, error) {
	var e wire.Encoder
	e.Uint8(kindReply)
	e.Uint64(id)
	if herr != nil {
		e.Uint8(statusErr)
		wire.EncodeError(&e, herr)
		return e.Bytes(), nil
	}
	payload, err := wire.Marshal(resp)
	if err != nil {
		return nil, err
	}
	e.Uint8(statusOK)
	e.RawBytes(payload)
	return e.Bytes(), nil
}
