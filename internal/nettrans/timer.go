package nettrans

import (
	"sync"
	"time"
)

// timerPool recycles the timeout timers of the call hot path. time.After
// allocates a fresh timer per call and leaves it live until it fires — at
// transport rates that is a steady stream of garbage plus a timer heap full
// of dead entries — whereas a pooled timer is stopped, drained and reused.
var timerPool sync.Pool

// acquireTimer returns a timer that fires after d. Pair with releaseTimer.
func acquireTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		tm := v.(*time.Timer)
		tm.Reset(d)
		return tm
	}
	return time.NewTimer(d)
}

// releaseTimer stops tm, drains a pending fire, and returns it to the pool.
// The caller must be the only receiver on tm.C (true for the select-scoped
// timers this package creates), so the Reset in acquireTimer is race-free.
func releaseTimer(tm *time.Timer) {
	if !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
	timerPool.Put(tm)
}
