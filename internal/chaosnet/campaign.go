package chaosnet

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/music"
)

// CampaignSites are the three sites a campaign deployment spans — one
// single-node musicd-in-miniature per site, all on loopback TCP.
var CampaignSites = []string{"ohio", "ncalifornia", "oregon"}

// Outcome is the result of one campaign seed: the fault schedule it ran
// under, the recorded multi-site history, the checker verdict over it, and
// the injector's fault tally.
type Outcome struct {
	Schedule Schedule
	Ops      []history.Op
	Result   history.Result
	Counts   Counts
	// RunErr is non-nil when the workload itself wedged (never finished
	// within the hard deadline) — a liveness failure distinct from a
	// checker violation.
	RunErr error
}

// Violating reports whether the seed found anything: a safety violation
// flagged by the checkers, or a wedged run.
func (o Outcome) Violating() bool { return o.RunErr != nil || len(o.Result.Violations) > 0 }

// Repro renders everything needed to chase the outcome down: the schedule,
// the verdict, and the full history.
func (o Outcome) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaosnet repro: seed=%d\n\n%s\n", o.Schedule.Seed, o.Schedule)
	fmt.Fprintf(&b, "\nfaults injected: drops=%d resets=%d delays=%d refused-dials=%d\n",
		o.Counts.Drops, o.Counts.Resets, o.Counts.Delays, o.Counts.Refused)
	if o.RunErr != nil {
		fmt.Fprintf(&b, "\nrun error: %v\n", o.RunErr)
	}
	if len(o.Result.Violations) > 0 {
		b.WriteString("\nviolations:\n")
		for _, v := range o.Result.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	fmt.Fprintf(&b, "\nhistory (%d ops):\n", len(o.Ops))
	for _, op := range o.Ops {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	return b.String()
}

// RunSeed runs one campaign seed end to end: generate the fault schedule,
// deploy three single-node MUSIC clusters over real loopback TCP with every
// dial routed through the injector, drive one client per site through
// contended critical sections until the schedule has played out, then check
// the merged history against the ECF contract.
//
// All three transports share one wall-clock runtime and one history
// recorder, so the merged timeline checks as a single history. Individual
// section errors under faults are expected and fine — the checkers judge
// what the protocol admitted, not whether every attempt succeeded.
func RunSeed(seed int64) Outcome { return runCampaignSeed(seed, 1, "") }

// RunSeedSharded is RunSeed over a sharded deployment: each site runs
// `shards` single-node processes, every process hosting a full MUSIC
// replica with its plane partitioned by store.ShardOf, and the driving
// client routes each key to its site's owning shard process — so grant
// state, forced release and failover all play out per shard while the
// merged history still has to check as one ECF timeline. The key set is
// widened so sections land in more than one shard per site.
func RunSeedSharded(seed int64, shards int) Outcome { return runCampaignSeed(seed, shards, "") }

// RunSeedMode is RunSeed with an adaptive read plane switched on: mode
// "lease" turns on site-scoped holder leases, mode "adaptive" runs monitored
// ONE reads with one shared consistency monitor watching all three processes
// through the shared history recorder. Both modes also drive a plain-Get
// reader per site so the lease serve path and the weak read path are
// exercised while the fault schedule plays, and the merged history must
// check clean under the lease/monitor ECF rules.
func RunSeedMode(seed int64, mode string) Outcome { return runCampaignSeed(seed, 1, mode) }

func runCampaignSeed(seed int64, shards int, mode string) Outcome {
	if shards < 1 {
		shards = 1
	}
	sched := Generate(seed, CampaignSites)
	rt := sim.NewReal(seed)
	inj := NewInjector(rt, sched)
	rec := history.New(rt)

	// One single-node process per (site, shard); node IDs are dense in
	// site-major order so process si*shards+sh serves site si, shard sh.
	nProcs := len(CampaignSites) * shards
	clusters := make([]*music.Cluster, nProcs)

	// In adaptive mode one monitor spans the whole deployment, attached to
	// the shared recorder; its repair hook routes the quorum re-read through
	// the flagged site's owning shard process. The clusters slice is fully
	// populated before the workload (and thus any violation) can run.
	var mon *history.Monitor
	if mode == "adaptive" {
		mon = history.NewMonitor(history.MonitorConfig{
			OnViolation: func(site, key string) {
				for si, s := range CampaignSites {
					if s == site {
						rep := clusters[si*shards+store.ShardOf(key, shards)].Replica(site)
						rt.Go(func() { _ = rep.RepairRead(key) })
						return
					}
				}
			},
		})
		rec.Attach(mon)
	}

	listeners := make([]net.Listener, nProcs)
	peers := make([]nettrans.Peer, nProcs)
	for i := range peers {
		site := CampaignSites[i/shards]
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Outcome{Schedule: sched, RunErr: fmt.Errorf("listen: %w", err)}
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: site, Addr: lis.Addr().String()}
	}
	for i, p := range peers {
		tr, err := nettrans.New(rt, nettrans.Config{
			Self:         p.ID,
			Peers:        peers,
			Listener:     listeners[i],
			RPCTimeout:   500 * time.Millisecond,
			DialTimeout:  200 * time.Millisecond,
			BackoffFloor: 10 * time.Millisecond,
			BackoffCeil:  80 * time.Millisecond,
			Dial:         inj.Dial(p.Site),
		})
		if err != nil {
			return Outcome{Schedule: sched, RunErr: fmt.Errorf("nettrans: %w", err)}
		}
		c, err := music.NewOverTransport(tr, music.TransportConfig{
			T:             5 * time.Second,
			Shards:        shards,
			LocalNodes:    []transport.NodeID{p.ID},
			History:       rec,
			Leases:        mode == "lease",
			AdaptiveReads: mode == "adaptive",
			Monitor:       mon,
		})
		if err != nil {
			tr.Close()
			return Outcome{Schedule: sched, RunErr: fmt.Errorf("music: %w", err)}
		}
		clusters[i] = c
	}
	defer func() {
		for _, c := range clusters {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Two keys in the single-shard campaign (the historical workload);
	// four when sharded, so each site's sections hit multiple shards.
	keySpan := 2 * shards
	if keySpan > 4 {
		keySpan = 4
	}

	inj.Start()
	until := sched.End() + 200*time.Millisecond
	var wg sync.WaitGroup
	for ci := range CampaignSites {
		ci, site := ci, CampaignSites[ci]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := 0; inj.Elapsed() < until; si++ {
				key := fmt.Sprintf("cn-%c", 'a'+(ci+si)%keySpan)
				val := []byte(fmt.Sprintf("c%d-s%d", ci, si))
				// The client talks to the process owning the key's shard at
				// its site — the same routing a sharded front end would do.
				cl := clusters[ci*shards+store.ShardOf(key, shards)].Client(site)
				// Errors are the faults doing their job; the checkers decide
				// whether what did commit was admissible.
				_ = cl.RunCritical(key, func(cs *music.CriticalSection) error {
					if _, err := cs.Get(); err != nil {
						return err
					}
					if err := cs.Put(val); err != nil {
						return err
					}
					_, err := cs.Get()
					return err
				})
				rt.Sleep(10 * time.Millisecond)
			}
		}()
	}
	if mode != "" {
		// One plain-Get reader per site: in lease mode these land on the
		// site lease while its section is live, in adaptive mode they keep
		// the weak read plane busy while the fault schedule plays.
		for ci := range CampaignSites {
			ci, site := ci, CampaignSites[ci]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ri := 0; inj.Elapsed() < until; ri++ {
					key := fmt.Sprintf("cn-%c", 'a'+ri%keySpan)
					cl := clusters[ci*shards+store.ShardOf(key, shards)].Client(site)
					_, _ = cl.Get(key)
					rt.Sleep(15 * time.Millisecond)
				}
			}()
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var runErr error
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		runErr = fmt.Errorf("workload wedged: clients still running 20s after schedule end (%v)", sched.End())
	}

	out := Outcome{Schedule: sched, Ops: rec.Ops(), Counts: inj.Counts(), RunErr: runErr}
	out.Result = history.Check(out.Ops, history.CheckOptions{})
	return out
}
