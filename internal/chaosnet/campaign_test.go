package chaosnet

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// chaosnetSeeds resolves the campaign's seed batch. MUSIC_CHAOSNET_SEEDS
// pins an explicit comma-separated list (CI uses this for the fast gate);
// otherwise the default is seeds 1..50, trimmed to 8 under -short.
func chaosnetSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("MUSIC_CHAOSNET_SEEDS"); env != "" {
		var seeds []int64
		for _, f := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("MUSIC_CHAOSNET_SEEDS: bad seed %q: %v", f, err)
			}
			seeds = append(seeds, s)
		}
		return seeds
	}
	n := 50
	if testing.Short() {
		n = 8
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosnetCampaign runs the pinned-seed fault campaign: every seed
// deploys the full MUSIC stack over real loopback TCP, plays its generated
// fault schedule through the dial/conn interposition layer, and checks the
// recorded multi-site history against the ECF contract. Any violation dumps
// a full repro (schedule + verdict + history); set MUSIC_CHAOSNET_REPRO_DIR
// to also archive repro files (CI uploads them as artifacts).
func TestChaosnetCampaign(t *testing.T) {
	seeds := chaosnetSeeds(t)
	reproDir := os.Getenv("MUSIC_CHAOSNET_REPRO_DIR")

	type res struct {
		seed int64
		out  Outcome
	}
	results := make([]res, len(seeds))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = res{seed: seed, out: RunSeed(seed)}
		}()
	}
	wg.Wait()

	classes := map[Class]bool{}
	violations := 0
	for _, r := range results {
		for cl := range r.out.Schedule.Classes() {
			classes[cl] = true
		}
		if r.out.Violating() {
			violations++
			t.Errorf("seed %d: %d violations, run error %v",
				r.seed, len(r.out.Result.Violations), r.out.RunErr)
			repro := r.out.Repro()
			if len(repro) > 16<<10 {
				repro = repro[:16<<10] + "\n  ... (truncated)\n"
			}
			t.Log(repro)
			if reproDir != "" {
				path := filepath.Join(reproDir, fmt.Sprintf("chaosnet-seed-%d.txt", r.seed))
				if err := os.WriteFile(path, []byte(r.out.Repro()), 0o644); err != nil {
					t.Errorf("write repro: %v", err)
				} else {
					t.Logf("repro archived at %s", path)
				}
			}
		}
		if len(r.out.Ops) == 0 && r.out.RunErr == nil {
			t.Errorf("seed %d: empty history — the workload recorded nothing", r.seed)
		}
	}
	t.Logf("campaign: %d seeds, %d violating, classes drawn: %v", len(seeds), violations, classKeys(classes))

	// The default full batch must exercise every fault family; a pinned CI
	// subset only needs to run clean.
	if os.Getenv("MUSIC_CHAOSNET_SEEDS") == "" && !testing.Short() {
		for _, want := range []Class{ClassLoss, ClassPartition, ClassReset} {
			if !classes[want] {
				t.Errorf("default campaign batch never drew class %q", want)
			}
		}
		if !classes[ClassLatency] && !classes[ClassBandwidth] {
			t.Error("default campaign batch never drew a delay-family class")
		}
	}
}

// TestChaosnetCampaignSharded replays the fault campaign against a sharded
// deployment: two single-node processes per site, each site's MUSIC plane
// partitioned across them by store.ShardOf, clients routing every key to
// its owning shard process. The merged multi-site history must still check
// as one clean ECF timeline. Seeds come from MUSIC_CHAOSNET_SEEDS when
// pinned (CI runs 1..12), else 1..12 by default, 4 under -short.
func TestChaosnetCampaignSharded(t *testing.T) {
	seeds := chaosnetSeeds(t)
	if os.Getenv("MUSIC_CHAOSNET_SEEDS") == "" {
		n := 12
		if testing.Short() {
			n = 4
		}
		if len(seeds) > n {
			seeds = seeds[:n]
		}
	}
	reproDir := os.Getenv("MUSIC_CHAOSNET_REPRO_DIR")

	type res struct {
		seed int64
		out  Outcome
	}
	results := make([]res, len(seeds))
	// Each sharded seed runs 6 TCP processes; halve the seed concurrency.
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = res{seed: seed, out: RunSeedSharded(seed, 2)}
		}()
	}
	wg.Wait()

	violations := 0
	for _, r := range results {
		if r.out.Violating() {
			violations++
			t.Errorf("sharded seed %d: %d violations, run error %v",
				r.seed, len(r.out.Result.Violations), r.out.RunErr)
			repro := r.out.Repro()
			if len(repro) > 16<<10 {
				repro = repro[:16<<10] + "\n  ... (truncated)\n"
			}
			t.Log(repro)
			if reproDir != "" {
				path := filepath.Join(reproDir, fmt.Sprintf("chaosnet-sharded-seed-%d.txt", r.seed))
				if err := os.WriteFile(path, []byte(r.out.Repro()), 0o644); err != nil {
					t.Errorf("write repro: %v", err)
				} else {
					t.Logf("repro archived at %s", path)
				}
			}
		}
		if len(r.out.Ops) == 0 && r.out.RunErr == nil {
			t.Errorf("sharded seed %d: empty history — the workload recorded nothing", r.seed)
		}
	}
	t.Logf("sharded campaign: %d seeds, %d violating", len(seeds), violations)
}

// TestChaosnetCampaignModes replays the fault campaign with the adaptive
// read plane on — site-scoped holder leases, then monitored ONE reads — over
// the real loopback TCP transport, so the lease-window safety argument and
// the monitor-coverage accounting are certified against genuine network
// faults, not just the simnet. Seeds come from MUSIC_CHAOSNET_SEEDS when
// pinned, trimmed to 6 per mode (each seed spawns 2× the default batch's
// processes), else 1..6 by default, 2 under -short.
func TestChaosnetCampaignModes(t *testing.T) {
	seeds := chaosnetSeeds(t)
	n := 6
	if testing.Short() {
		n = 2
	}
	if len(seeds) > n {
		seeds = seeds[:n]
	}
	reproDir := os.Getenv("MUSIC_CHAOSNET_REPRO_DIR")

	type job struct {
		mode string
		seed int64
	}
	var jobs []job
	for _, mode := range []string{"lease", "adaptive"} {
		for _, seed := range seeds {
			jobs = append(jobs, job{mode, seed})
		}
	}
	outs := make([]Outcome, len(jobs))
	sem := make(chan struct{}, 6)
	var wg sync.WaitGroup
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i] = RunSeedMode(j.seed, j.mode)
		}()
	}
	wg.Wait()

	violations := 0
	for i, j := range jobs {
		out := outs[i]
		if out.Violating() {
			violations++
			t.Errorf("mode %s seed %d: %d violations, run error %v",
				j.mode, j.seed, len(out.Result.Violations), out.RunErr)
			repro := out.Repro()
			if len(repro) > 16<<10 {
				repro = repro[:16<<10] + "\n  ... (truncated)\n"
			}
			t.Log(repro)
			if reproDir != "" {
				path := filepath.Join(reproDir, fmt.Sprintf("chaosnet-%s-seed-%d.txt", j.mode, j.seed))
				if err := os.WriteFile(path, []byte(out.Repro()), 0o644); err != nil {
					t.Errorf("write repro: %v", err)
				} else {
					t.Logf("repro archived at %s", path)
				}
			}
		}
		if len(out.Ops) == 0 && out.RunErr == nil {
			t.Errorf("mode %s seed %d: empty history — the workload recorded nothing", j.mode, j.seed)
		}
	}
	t.Logf("mode campaign: %d jobs (%d seeds × 2 modes), %d violating", len(jobs), len(seeds), violations)
}

func classKeys(m map[Class]bool) []string {
	var out []string
	for c := range m {
		out = append(out, string(c))
	}
	return out
}
