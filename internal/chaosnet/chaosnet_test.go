package chaosnet_test

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

var testSites = []string{"ohio", "ncalifornia", "oregon"}

// TestScheduleDeterminism is the replayability contract: the same seed
// yields the identical fault timeline, byte for byte, and two injectors
// presented with the same probe sequence on a virtual clock hand out the
// identical verdict stream.
func TestScheduleDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		a := chaosnet.Generate(seed, testSites)
		b := chaosnet.Generate(seed, testSites)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a, b)
		}
	}

	// Verdict-stream equality: replay the same probes at the same virtual
	// instants against two fresh injectors.
	stream := func(seed int64) []chaosnet.Verdict {
		v := sim.New(1)
		inj := chaosnet.NewInjector(v, chaosnet.Generate(seed, testSites))
		var out []chaosnet.Verdict
		if err := v.Run(func() {
			inj.Start()
			end := inj.Schedule().End() + 20*time.Millisecond
			for v.Now() < end {
				v.Sleep(5 * time.Millisecond)
				for _, from := range testSites {
					for _, to := range testSites {
						if from != to {
							out = append(out, inj.Verdict(from, to, 700))
						}
					}
				}
			}
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return out
	}
	for seed := int64(1); seed <= 25; seed++ {
		a, b := stream(seed), stream(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: verdict streams diverge over %d probes", seed, len(a))
		}
	}
}

// TestGenerateCoversClasses checks the generator draws every fault class
// across a modest seed range — the class-coverage premise of the campaign.
func TestGenerateCoversClasses(t *testing.T) {
	got := make(map[chaosnet.Class]int)
	for seed := int64(1); seed <= 100; seed++ {
		for c := range chaosnet.Generate(seed, testSites).Classes() {
			got[c]++
		}
	}
	for _, c := range []chaosnet.Class{chaosnet.ClassLatency, chaosnet.ClassBandwidth,
		chaosnet.ClassLoss, chaosnet.ClassPartition, chaosnet.ClassReset} {
		if got[c] == 0 {
			t.Errorf("class %s never drawn across 100 seeds", c)
		}
	}
	t.Logf("class coverage over 100 seeds: %v", got)
}

// twoNodes builds a two-process nettrans pair on loopback, with node 0's
// outbound dials going through the injector's hook.
func twoNodes(t *testing.T, inj *chaosnet.Injector) (*nettrans.Transport, *nettrans.Transport) {
	t.Helper()
	lis := make([]net.Listener, 2)
	peers := make([]nettrans.Peer, 2)
	sites := []string{"ohio", "oregon"}
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis[i] = l
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: sites[i], Addr: l.Addr().String()}
	}
	mk := func(i int, dial func(nettrans.Peer, time.Duration) (net.Conn, error)) *nettrans.Transport {
		tr, err := nettrans.New(sim.NewReal(int64(i)+1), nettrans.Config{
			Self: transport.NodeID(i), Peers: peers, Listener: lis[i],
			RPCTimeout:   time.Second,
			DialTimeout:  200 * time.Millisecond,
			BackoffFloor: 5 * time.Millisecond,
			BackoffCeil:  40 * time.Millisecond,
			Dial:         dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t0 := mk(0, inj.Dial("ohio"))
	t1 := mk(1, nil)
	t.Cleanup(func() { t0.Close(); t1.Close() })
	t1.Handle(1, "echo", func(from transport.NodeID, req any) (any, error) { return req, nil })
	return t0, t1
}

// TestFaultConnTransparent proves the frame-level wrapper is invisible with
// an empty schedule: calls, large payloads, and handler errors round-trip
// exactly as without it.
func TestFaultConnTransparent(t *testing.T) {
	rt := sim.NewReal(7)
	inj := chaosnet.NewInjector(rt, chaosnet.Schedule{Seed: 7, Sites: []string{"ohio", "oregon"}})
	inj.Start()
	t0, _ := twoNodes(t, inj)
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("m-%d", i)
		resp, err := t0.Call(0, 1, "echo", conformance.Msg{Tag: want, Body: make([]byte, 8<<10)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := resp.(conformance.Msg).Tag; got != want {
			t.Fatalf("call %d: got %q", i, got)
		}
	}
	if c := inj.Counts(); c.Drops+c.Resets+c.Delays+c.Refused != 0 {
		t.Fatalf("empty schedule injected faults: %+v", c)
	}
}

// TestFaultConnInjectsFaults runs calls through a loss+reset window and
// checks that (a) faults actually fire, surfacing as the retryable
// ErrTimeout, and (b) the transport recovers to clean calls once the
// schedule heals.
func TestFaultConnInjectsFaults(t *testing.T) {
	rt := sim.NewReal(7)
	sched := chaosnet.Schedule{
		Seed:  7,
		Sites: []string{"ohio", "oregon"},
		Events: []chaosnet.Event{
			{At: 0, For: 400 * time.Millisecond, Class: chaosnet.ClassLoss, Rate: 0.5},
			{At: 0, For: 400 * time.Millisecond, Class: chaosnet.ClassReset, Rate: 0.2},
		},
	}
	inj := chaosnet.NewInjector(rt, sched)
	t0, _ := twoNodes(t, inj)
	inj.Start()

	failures := 0
	for !inj.Done() {
		_, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{Tag: "x"}, 60*time.Millisecond)
		if err != nil {
			failures++
			if !errors.Is(err, transport.ErrTimeout) {
				t.Fatalf("fault surfaced as %v, want ErrTimeout", err)
			}
		}
	}
	c := inj.Counts()
	if c.Drops == 0 && c.Resets == 0 {
		t.Fatalf("no faults fired during the window: %+v", c)
	}
	if failures == 0 {
		t.Fatal("every call succeeded through a 50% loss + 20% reset window")
	}

	// Healed: calls must succeed again (through redial backoff).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{Tag: "after"}, 300*time.Millisecond); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transport never recovered after the fault window healed")
		}
	}
	t.Logf("window stats: %+v, %d/%d calls failed", c, failures, failures)
}

// TestFaultConnLatency checks injected latency actually delays calls.
func TestFaultConnLatency(t *testing.T) {
	rt := sim.NewReal(7)
	sched := chaosnet.Schedule{
		Seed:  7,
		Sites: []string{"ohio", "oregon"},
		Events: []chaosnet.Event{
			{At: 0, For: 10 * time.Second, Class: chaosnet.ClassLatency, Delay: 30 * time.Millisecond},
		},
	}
	inj := chaosnet.NewInjector(rt, sched)
	t0, _ := twoNodes(t, inj)
	inj.Start()
	start := time.Now()
	if _, err := t0.Call(0, 1, "echo", conformance.Msg{Tag: "slow"}); err != nil {
		t.Fatalf("call: %v", err)
	}
	// Request and reply each cross one injected 30ms leg.
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("call took %v through a 30ms-per-leg latency window", elapsed)
	}
}

// TestPartitionRefusesDials checks the dial hook gates on partitions and
// that the pair heals when the window ends.
func TestPartitionRefusesDials(t *testing.T) {
	rt := sim.NewReal(7)
	sched := chaosnet.Schedule{
		Seed:  7,
		Sites: []string{"ohio", "oregon"},
		Events: []chaosnet.Event{
			{At: 0, For: 300 * time.Millisecond, Class: chaosnet.ClassPartition, A: "ohio", B: "oregon"},
		},
	}
	inj := chaosnet.NewInjector(rt, sched)
	t0, _ := twoNodes(t, inj)
	inj.Start()
	if _, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{}, 100*time.Millisecond); err == nil {
		t.Fatal("call across a partition succeeded")
	}
	if inj.Counts().Refused == 0 {
		t.Fatal("partitioned dial was not refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{}, 300*time.Millisecond); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pair never healed after the partition window")
		}
	}
}

// TestProxyInterposition runs calls through the in-path TCP proxy: clean
// with an empty schedule, faulty through a loss window, recovered after.
func TestProxyInterposition(t *testing.T) {
	rt := sim.NewReal(9)
	sched := chaosnet.Schedule{
		Seed:  9,
		Sites: []string{"ohio", "oregon"},
		Events: []chaosnet.Event{
			{At: 150 * time.Millisecond, For: 300 * time.Millisecond, Class: chaosnet.ClassLoss, Rate: 0.6},
		},
	}
	inj := chaosnet.NewInjector(rt, sched)

	// Real node 1 on its own listener; the proxy fronts it; node 0's peer
	// set points at the proxy. Node 0 dials plainly — the proxy is the only
	// interposition point.
	realLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxyLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosnet.NewProxy(inj, proxyLis, realLis.Addr().String(), "oregon",
		map[transport.NodeID]string{0: "ohio", 1: "oregon"})
	defer proxy.Close()

	peers0 := []nettrans.Peer{
		{ID: 0, Site: "ohio", Addr: lis0.Addr().String()},
		{ID: 1, Site: "oregon", Addr: proxy.Addr()}, // via proxy
	}
	peers1 := []nettrans.Peer{
		{ID: 0, Site: "ohio", Addr: lis0.Addr().String()},
		{ID: 1, Site: "oregon", Addr: realLis.Addr().String()},
	}
	t0, err := nettrans.New(sim.NewReal(1), nettrans.Config{
		Self: 0, Peers: peers0, Listener: lis0,
		RPCTimeout: time.Second, BackoffFloor: 5 * time.Millisecond, BackoffCeil: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := nettrans.New(sim.NewReal(2), nettrans.Config{Self: 1, Peers: peers1, Listener: realLis})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t1.Handle(1, "echo", func(from transport.NodeID, req any) (any, error) { return req, nil })

	// Before the window: transparent.
	inj.Start()
	for i := 0; i < 5; i++ {
		if _, err := t0.Call(0, 1, "echo", conformance.Msg{Tag: "pre"}); err != nil {
			t.Fatalf("pre-window call %d through proxy: %v", i, err)
		}
	}
	// Inside the window: failures appear.
	failures := 0
	for !inj.Done() {
		if _, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{Tag: "mid"}, 50*time.Millisecond); err != nil {
			failures++
		}
	}
	if inj.Counts().Drops == 0 {
		t.Fatal("proxy dropped nothing through a 60% loss window")
	}
	// After: recovered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := t0.CallTimeout(0, 1, "echo", conformance.Msg{Tag: "post"}, 300*time.Millisecond); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy path never recovered")
		}
	}
	t.Logf("proxy stats: %+v, %d mid-window failures", inj.Counts(), failures)
}
