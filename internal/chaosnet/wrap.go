package chaosnet

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Wrap interposes the injector above any transport.Transport at message
// granularity: each call, reply, and one-way send gets a verdict for the
// site pair it crosses. This is the backend-agnostic interposition point —
// it cannot shape individual TCP segments the way the dial hook and Proxy
// do, but it works over the simulated plane and any future backend
// unchanged, and an empty schedule is perfectly transparent (the
// conformance suite runs against a wrapped transport to prove it).
func Wrap(inner transport.Transport, in *Injector) transport.Transport {
	return &wrapped{Transport: inner, in: in}
}

type wrapped struct {
	transport.Transport
	in *Injector
}

// payloadSize estimates the frame bytes a message would occupy on the wire.
// Unregistered payloads (impossible on the real plane) charge a nominal
// frame.
func payloadSize(req any) int {
	if data, err := wire.Marshal(req); err == nil {
		return len(data) + wire.FrameOverhead
	}
	return 256
}

func (w *wrapped) rt() sim.Runtime { return w.Transport.Runtime() }

// Call uses the wrapper's CallTimeout so verdicts apply.
func (w *wrapped) Call(from, to transport.NodeID, svc string, req any) (any, error) {
	return w.CallTimeout(from, to, svc, req, w.Transport.RPCTimeout())
}

// CallTimeout judges the request leg and, on a clean reply, the reply leg.
func (w *wrapped) CallTimeout(from, to transport.NodeID, svc string, req any, timeout time.Duration) (any, error) {
	a, b := w.SiteOf(from), w.SiteOf(to)
	v := w.in.Verdict(a, b, payloadSize(req))
	switch {
	case v.Drop:
		// A swallowed request is indistinguishable from a dead peer: burn
		// the caller's patience, then time out.
		w.rt().Sleep(timeout)
		return nil, fmt.Errorf("chaosnet: %s %s→%s dropped: %w", svc, a, b, transport.ErrTimeout)
	case v.Reset:
		return nil, fmt.Errorf("chaosnet: %s %s→%s reset: %w", svc, a, b, transport.ErrTimeout)
	}
	if v.Delay > 0 {
		w.rt().Sleep(v.Delay)
	}
	resp, err := w.Transport.CallTimeout(from, to, svc, req, timeout)
	if err != nil {
		return resp, err
	}
	rv := w.in.Verdict(b, a, payloadSize(resp))
	switch {
	case rv.Drop:
		w.rt().Sleep(timeout)
		return nil, fmt.Errorf("chaosnet: %s reply %s→%s dropped: %w", svc, b, a, transport.ErrTimeout)
	case rv.Reset:
		return nil, fmt.Errorf("chaosnet: %s reply %s→%s reset: %w", svc, b, a, transport.ErrTimeout)
	}
	if rv.Delay > 0 {
		w.rt().Sleep(rv.Delay)
	}
	return resp, nil
}

// Send judges the one leg a one-way message has; delays reschedule the
// delivery without blocking the caller.
func (w *wrapped) Send(from, to transport.NodeID, svc string, req any) {
	v := w.in.Verdict(w.SiteOf(from), w.SiteOf(to), payloadSize(req))
	if v.Drop || v.Reset {
		return
	}
	if v.Delay > 0 {
		w.rt().Go(func() {
			w.rt().Sleep(v.Delay)
			w.Transport.Send(from, to, svc, req)
		})
		return
	}
	w.Transport.Send(from, to, svc, req)
}

// Multicast re-fans through the wrapper's CallTimeout so each leg is judged
// independently, mirroring the inner transports' collection semantics.
func (w *wrapped) Multicast(from transport.NodeID, targets []transport.NodeID, svc string, req any, need int, timeout time.Duration) []transport.CallResult {
	results := sim.NewMailbox[transport.CallResult](w.rt())
	for _, to := range targets {
		to := to
		w.rt().Go(func() {
			resp, err := w.CallTimeout(from, to, svc, req, timeout)
			results.Send(transport.CallResult{From: to, Resp: resp, Err: err})
		})
	}
	deadline := w.rt().Now() + timeout
	collected := make([]transport.CallResult, 0, len(targets))
	successes := 0
	for len(collected) < len(targets) {
		remaining := deadline - w.rt().Now()
		if remaining < 0 {
			remaining = 0
		}
		r, err := results.RecvTimeout(remaining)
		if err != nil {
			break
		}
		collected = append(collected, r)
		if r.Err == nil {
			successes++
			if need > 0 && successes >= need {
				break
			}
		}
	}
	return collected
}
