package chaosnet_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/nettrans"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// wrapCluster runs the full transport conformance suite through
// chaosnet.Wrap over real TCP transports with an empty schedule — the
// transparency proof: an idle injector must be invisible to protocol code,
// reset recovery included.
type wrapCluster struct {
	inj *chaosnet.Injector
	ts  map[transport.NodeID]transport.Transport

	mu    sync.Mutex
	conns map[[2]transport.NodeID][]net.Conn
}

func (c *wrapCluster) Transport(node transport.NodeID) transport.Transport { return c.ts[node] }

func (c *wrapCluster) Run(t *testing.T, fn func()) { fn() }

func (c *wrapCluster) Close() {
	for _, tr := range c.ts {
		tr.Close()
	}
}

func (c *wrapCluster) track(self transport.NodeID) func(nettrans.Peer, time.Duration) (net.Conn, error) {
	return func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", peer.Addr, timeout)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		key := [2]transport.NodeID{self, peer.ID}
		c.conns[key] = append(c.conns[key], conn)
		c.mu.Unlock()
		return conn, nil
	}
}

func (c *wrapCluster) Disrupt(from, to transport.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range [][2]transport.NodeID{{from, to}, {to, from}} {
		for _, conn := range c.conns[key] {
			_ = conn.Close()
		}
		c.conns[key] = nil
	}
}

func newWrapCluster(t *testing.T, n int) *wrapCluster {
	t.Helper()
	rt := sim.NewReal(1)
	sites := []string{"ohio", "ncalifornia", "oregon"}
	inj := chaosnet.NewInjector(rt, chaosnet.Schedule{Seed: 1, Sites: sites})
	inj.Start()
	listeners := make([]net.Listener, n)
	peers := make([]nettrans.Peer, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = lis
		peers[i] = nettrans.Peer{ID: transport.NodeID(i), Site: sites[i%len(sites)], Addr: lis.Addr().String()}
	}
	c := &wrapCluster{
		inj:   inj,
		ts:    make(map[transport.NodeID]transport.Transport, n),
		conns: make(map[[2]transport.NodeID][]net.Conn),
	}
	for i := 0; i < n; i++ {
		tr, err := nettrans.New(rt, nettrans.Config{
			Self:       transport.NodeID(i),
			Peers:      peers,
			Listener:   listeners[i],
			RPCTimeout: 2 * time.Second,
			Dial:       c.track(transport.NodeID(i)),
		})
		if err != nil {
			t.Fatalf("nettrans.New: %v", err)
		}
		c.ts[transport.NodeID(i)] = chaosnet.Wrap(tr, inj)
	}
	return c
}

// TestWrappedTransportConformance proves chaosnet.Wrap with an idle
// schedule passes the full behavioral contract over the real TCP backend.
func TestWrappedTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Cluster {
		return newWrapCluster(t, 3)
	})
}
