package chaosnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/nettrans"
	"repro/internal/wire"
)

// Dial returns a nettrans dial hook that interposes the injector on every
// outbound connection from the given site: dials across a partitioned pair
// are refused outright, and accepted connections are wrapped so every frame
// crossing them gets a verdict in each direction.
func (in *Injector) Dial(fromSite string) func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
	return func(peer nettrans.Peer, timeout time.Duration) (net.Conn, error) {
		if in.Partitioned(fromSite, peer.Site) {
			in.refused.Add(1)
			return nil, fmt.Errorf("chaosnet: %s↔%s partitioned", fromSite, peer.Site)
		}
		conn, err := net.DialTimeout("tcp", peer.Addr, timeout)
		if err != nil {
			return nil, err
		}
		return newFaultConn(in, conn, fromSite, peer.Site), nil
	}
}

// outFrame is one complete wire frame queued for delayed delivery.
type outFrame struct {
	buf     []byte
	release time.Duration // injector-elapsed instant it may hit the wire
}

// faultConn wraps one TCP connection, applying frame verdicts in both
// directions. The write side reassembles wire frames from arbitrary Write
// boundaries (nettrans's combining writer coalesces several frames into one
// batched write, and a writev fallback may split them again), so every
// verdict covers exactly one protocol frame; delayed frames drain through a
// single writer goroutine in FIFO order, keeping Write itself non-blocking
// for nettrans's drain loop. The read side applies verdicts per inbound
// frame with in-order (inline-sleep) delays.
type faultConn struct {
	net.Conn
	in       *Injector
	from, to string // this side dials from→to; reads carry to→from traffic

	mu    sync.Mutex
	cond  *sync.Cond
	queue []outFrame
	wbuf  []byte // write-side frame reassembly
	rbuf  []byte // read-side bytes already cleared for delivery
	dead  bool
	derr  error
}

func newFaultConn(in *Injector, conn net.Conn, from, to string) *faultConn {
	fc := &faultConn{Conn: conn, in: in, from: from, to: to}
	fc.cond = sync.NewCond(&fc.mu)
	go fc.writer()
	return fc
}

// fail marks the connection dead and tears the underlying socket down.
func (fc *faultConn) fail(err error) error {
	fc.mu.Lock()
	if !fc.dead {
		fc.dead = true
		fc.derr = err
		fc.queue = nil
		fc.cond.Broadcast()
	}
	err = fc.derr
	fc.mu.Unlock()
	_ = fc.Conn.Close()
	return err
}

// Close shuts the connection down and stops the writer.
func (fc *faultConn) Close() error {
	return fc.fail(net.ErrClosed)
}

// Write buffers b, slices complete frames out of the reassembly buffer, and
// gives each its verdict: dropped frames vanish (the write still reports
// success, like a lossy network), resets kill the connection, everything
// else queues for the writer goroutine at now+Delay.
func (fc *faultConn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	if fc.dead {
		err := fc.derr
		fc.mu.Unlock()
		return 0, err
	}
	fc.wbuf = append(fc.wbuf, b...)
	var frames [][]byte
	for {
		frame, rest, ok := splitFrame(fc.wbuf)
		if !ok {
			break
		}
		frames = append(frames, frame)
		fc.wbuf = rest
	}
	fc.mu.Unlock()

	for _, frame := range frames {
		v := fc.in.Verdict(fc.from, fc.to, len(frame))
		switch {
		case v.Drop:
			continue
		case v.Reset:
			return 0, fc.fail(fmt.Errorf("chaosnet: injected reset %s→%s", fc.from, fc.to))
		}
		fc.mu.Lock()
		if fc.dead {
			err := fc.derr
			fc.mu.Unlock()
			return 0, err
		}
		fc.queue = append(fc.queue, outFrame{buf: frame, release: fc.in.Elapsed() + v.Delay})
		fc.cond.Signal()
		fc.mu.Unlock()
	}
	return len(b), nil
}

// writer drains the delay queue in FIFO order onto the real socket.
func (fc *faultConn) writer() {
	for {
		fc.mu.Lock()
		for len(fc.queue) == 0 && !fc.dead {
			fc.cond.Wait()
		}
		if fc.dead {
			fc.mu.Unlock()
			return
		}
		item := fc.queue[0]
		fc.queue = fc.queue[1:]
		fc.mu.Unlock()
		if d := item.release - fc.in.Elapsed(); d > 0 {
			fc.in.rt.Sleep(d)
		}
		if _, err := fc.Conn.Write(item.buf); err != nil {
			fc.fail(err)
			return
		}
	}
}

// Read serves bytes from the cleared buffer, pulling (and judging) one
// inbound frame at a time off the underlying connection. Inbound delays
// sleep inline: the reply pump is a dedicated goroutine and in-order
// delivery is exactly what a slow link does.
func (fc *faultConn) Read(b []byte) (int, error) {
	for {
		fc.mu.Lock()
		if len(fc.rbuf) > 0 {
			n := copy(b, fc.rbuf)
			fc.rbuf = fc.rbuf[n:]
			fc.mu.Unlock()
			return n, nil
		}
		if fc.dead {
			err := fc.derr
			fc.mu.Unlock()
			return 0, err
		}
		fc.mu.Unlock()

		frame, err := wire.ReadFrame(fc.Conn)
		if err != nil {
			return 0, fc.fail(err)
		}
		// Inbound traffic flows to→from.
		v := fc.in.Verdict(fc.to, fc.from, len(frame)+wire.FrameOverhead)
		switch {
		case v.Drop:
			continue
		case v.Reset:
			return 0, fc.fail(fmt.Errorf("chaosnet: injected reset %s→%s", fc.to, fc.from))
		}
		if v.Delay > 0 {
			fc.in.rt.Sleep(v.Delay)
		}
		fc.mu.Lock()
		fc.rbuf = wire.AppendFrame(fc.rbuf, frame)
		fc.mu.Unlock()
	}
}

// splitFrame slices one complete length-prefixed frame (header included)
// off the front of buf.
func splitFrame(buf []byte) (frame, rest []byte, ok bool) {
	if len(buf) < wire.FrameOverhead {
		return nil, buf, false
	}
	n := int(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
	total := wire.FrameOverhead + n
	if len(buf) < total {
		return nil, buf, false
	}
	frame = append([]byte(nil), buf[:total]...)
	return frame, buf[total:], true
}
