package chaosnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Verdict is the injector's decision for one frame (or message).
type Verdict struct {
	// Drop discards the frame silently.
	Drop bool
	// Reset tears down the connection carrying the frame.
	Reset bool
	// Delay holds the frame back before delivery (latency and bandwidth
	// shaping fold into one release offset).
	Delay time.Duration
}

// Counts tallies what the injector actually did — a soak report includes
// them so "no faults fired" cannot masquerade as a passing run.
type Counts struct {
	Drops   int64 `json:"drops"`
	Resets  int64 `json:"resets"`
	Delays  int64 `json:"delays"`
	Refused int64 `json:"refused"` // dials refused across partitioned pairs
}

// pairState is the per-directed-site-pair decision state: a PRNG seeded
// from the schedule seed and the pair name (so decision streams are
// independent per pair and reproducible), plus the bandwidth-shaping cursor
// that serializes the pair's frames through the shaped pipe.
type pairState struct {
	rng    *rand.Rand
	cursor time.Duration
}

// Injector evaluates a Schedule against elapsed run time and hands out
// frame verdicts. One Injector serves a whole deployment: every faultConn,
// Proxy, and Wrap built from it shares the same timeline.
type Injector struct {
	rt    sim.Runtime
	sched Schedule

	mu      sync.Mutex
	started bool
	epoch   time.Duration
	pairs   map[string]*pairState

	drops   atomic.Int64
	resets  atomic.Int64
	delays  atomic.Int64
	refused atomic.Int64
}

// NewInjector builds an injector over the runtime's clock. Call Start when
// the workload begins; the schedule's windows are relative to that instant.
func NewInjector(rt sim.Runtime, sched Schedule) *Injector {
	return &Injector{rt: rt, sched: sched, pairs: make(map[string]*pairState)}
}

// Schedule returns the fault timeline the injector runs.
func (in *Injector) Schedule() Schedule { return in.sched }

// Start pins the schedule's time origin to now. Idempotent: the first call
// wins, so several components can all Start defensively.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.started {
		in.started = true
		in.epoch = in.rt.Now()
	}
}

// Elapsed returns time since Start (zero before it).
func (in *Injector) Elapsed() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.started {
		return 0
	}
	return in.rt.Now() - in.epoch
}

// Done reports whether every fault window has healed.
func (in *Injector) Done() bool { return in.Elapsed() >= in.sched.End() }

// Counts returns what the injector has done so far.
func (in *Injector) Counts() Counts {
	return Counts{
		Drops:   in.drops.Load(),
		Resets:  in.resets.Load(),
		Delays:  in.delays.Load(),
		Refused: in.refused.Load(),
	}
}

// fnv64 hashes a pair key into the per-pair PRNG seed.
func fnv64(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

func (in *Injector) pair(from, to string) *pairState {
	key := from + "→" + to
	ps, ok := in.pairs[key]
	if !ok {
		ps = &pairState{rng: rand.New(rand.NewSource(in.sched.Seed ^ fnv64(key)))}
		in.pairs[key] = ps
	}
	return ps
}

// Partitioned reports whether a partition window currently covers the pair
// — the dial hook refuses new connections across it.
func (in *Injector) Partitioned(from, to string) bool {
	now := in.Elapsed()
	for _, e := range in.sched.Events {
		if e.Class == ClassPartition && e.active(now) && e.matches(from, to) {
			return true
		}
	}
	return false
}

// Verdict decides the fate of one size-byte frame traveling from site
// `from` to site `to` right now. Active events apply in schedule order;
// drop and reset short-circuit (nothing to delay once the frame is gone).
func (in *Injector) Verdict(from, to string, size int) Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	var now time.Duration
	if in.started {
		now = in.rt.Now() - in.epoch
	}
	ps := in.pair(from, to)
	var v Verdict
	for _, e := range in.sched.Events {
		if !e.active(now) || !e.matches(from, to) {
			continue
		}
		switch e.Class {
		case ClassPartition:
			v = Verdict{Drop: true}
		case ClassLoss:
			if ps.rng.Float64() < e.Rate {
				v = Verdict{Drop: true}
			}
		case ClassReset:
			if ps.rng.Float64() < e.Rate {
				v = Verdict{Reset: true}
			}
		case ClassLatency:
			d := e.Delay
			if e.Jitter > 0 {
				d += time.Duration(ps.rng.Int63n(int64(e.Jitter)))
			}
			v.Delay += d
		case ClassBandwidth:
			if e.BytesPerSec > 0 {
				transmit := time.Duration(size) * time.Second / time.Duration(e.BytesPerSec)
				release := max(ps.cursor, now) + transmit
				ps.cursor = release
				v.Delay += release - now
			}
		}
		if v.Drop || v.Reset {
			v.Delay = 0
			break
		}
	}
	switch {
	case v.Drop:
		in.drops.Add(1)
	case v.Reset:
		in.resets.Add(1)
	case v.Delay > 0:
		in.delays.Add(1)
	}
	return v
}
