package chaosnet

import (
	"net"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Proxy is the in-path interposition point: it fronts one node's listener,
// forwarding length-prefixed frames between each inbound connection and the
// real node while applying the injector's verdicts in both directions. Use
// it when the dialing process cannot be instrumented (a stock musicd): point
// the peer set's Addr for the node at the proxy instead.
//
// The caller's site is learned from the first call frame on each connection
// (the frame header carries the sending node id); until it is seen,
// verdicts use the empty site, which only all-pair events match.
type Proxy struct {
	in         *Injector
	target     string
	targetSite string
	siteOf     map[transport.NodeID]string

	lis net.Listener

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
}

// NewProxy starts a proxy on lis forwarding to target (the real node's
// address). siteOf maps node ids to sites so the proxy can attribute each
// inbound connection's traffic to a site pair.
func NewProxy(in *Injector, lis net.Listener, target, targetSite string, siteOf map[transport.NodeID]string) *Proxy {
	p := &Proxy{in: in, target: target, targetSite: targetSite, siteOf: siteOf, lis: lis}
	go p.acceptLoop()
	return p
}

// Addr returns the address peers should dial instead of the real node.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Close stops accepting and severs every proxied connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	_ = p.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns = append(p.conns, c)
	return true
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		if !p.track(conn) {
			_ = conn.Close()
			return
		}
		go p.serve(conn)
	}
}

// pairSite is the per-connection caller-site cell shared by both pumps.
type pairSite struct {
	mu   sync.Mutex
	site string
}

func (ps *pairSite) get() string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.site
}

func (ps *pairSite) set(site string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.site == "" {
		ps.site = site
	}
}

// serve proxies one inbound connection: dial the real node, then pump
// frames both ways under verdicts. A reset verdict (or any socket error)
// severs both sides — exactly what a mid-call RST does.
func (p *Proxy) serve(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = client.Close()
		return
	}
	if !p.track(upstream) {
		_ = client.Close()
		_ = upstream.Close()
		return
	}
	caller := &pairSite{}
	sever := func() {
		_ = client.Close()
		_ = upstream.Close()
	}
	// client → node: call frames; learn the caller's site from the header.
	go p.pump(client, upstream, sever, func(frame []byte) string {
		if site, ok := p.callerSite(frame); ok {
			caller.set(site)
		}
		return caller.get()
	}, func(from string) (string, string) { return from, p.targetSite })
	// node → client: replies attributed to the reverse direction.
	go p.pump(upstream, client, sever, func([]byte) string { return caller.get() },
		func(from string) (string, string) { return p.targetSite, from })
}

// pump moves frames src→dst, asking the injector for a verdict on each.
func (p *Proxy) pump(src, dst net.Conn, sever func(), site func(frame []byte) string, dir func(callerSite string) (from, to string)) {
	for {
		frame, err := wire.ReadFrame(src)
		if err != nil {
			sever()
			return
		}
		from, to := dir(site(frame))
		v := p.in.Verdict(from, to, len(frame)+wire.FrameOverhead)
		switch {
		case v.Drop:
			continue
		case v.Reset:
			sever()
			return
		}
		if v.Delay > 0 {
			p.in.rt.Sleep(v.Delay)
		}
		if err := wire.WriteFrame(dst, frame); err != nil {
			sever()
			return
		}
	}
}

// callerSite extracts the sending node's site from a call/one-way frame:
// [u8 kind][u64 reqID][u32 from]... (the nettrans header layout).
func (p *Proxy) callerSite(frame []byte) (string, bool) {
	if len(frame) < 13 {
		return "", false
	}
	kind := frame[0]
	if kind != 1 && kind != 3 { // kindCall, kindOneway
		return "", false
	}
	id := transport.NodeID(int32(uint32(frame[9])<<24 | uint32(frame[10])<<16 | uint32(frame[11])<<8 | uint32(frame[12])))
	site, ok := p.siteOf[id]
	return site, ok
}
