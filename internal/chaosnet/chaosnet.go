// Package chaosnet injects deterministic, seed-driven faults into the real
// TCP message plane (internal/nettrans), closing the gap between the
// virtual-time chaos explorer (internal/history/explore) and the wire path
// actual deployments run on. The same Schedule drives three interposition
// points, from least to most invasive:
//
//   - a nettrans dial hook (Injector.Dial) that refuses dials across
//     partitioned site pairs and wraps every accepted connection in a
//     frame-level fault injector (latency, bandwidth shaping, loss, resets);
//   - an in-path TCP proxy (Proxy) that fronts one node's listener and
//     applies the same verdicts to frames flowing through it, for processes
//     whose dialing side cannot be instrumented;
//   - a transport.Transport wrapper (Wrap) that injects at message
//     granularity above any backend, simulated or real.
//
// Determinism contract: a Schedule is generated entirely from its seed
// before the run (same seed → same fault timeline, byte for byte), and every
// probabilistic verdict is drawn from a per-directed-site-pair PRNG seeded
// from the schedule seed — so a replay that presents the same frame sequence
// on a pair receives the same drop/reset/delay decisions. Wall-clock jitter
// can still reorder frames *between* pairs; what is pinned is the fault
// timeline and the per-pair decision stream, which is what a reproduction
// needs.
package chaosnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/history/explore"
)

// Class names one of chaosnet's fault classes.
type Class string

// The five fault classes a Schedule draws from.
const (
	// ClassLatency adds Delay±Jitter to every matching frame.
	ClassLatency Class = "latency"
	// ClassBandwidth serializes matching frames through a BytesPerSec pipe.
	ClassBandwidth Class = "bandwidth"
	// ClassLoss drops each matching frame independently with probability Rate.
	ClassLoss Class = "loss"
	// ClassPartition drops every frame between sites A and B and refuses
	// new dials across the pair until the window heals.
	ClassPartition Class = "partition"
	// ClassReset tears the connection down mid-stream with probability Rate
	// per frame — the mid-call connection reset a real network delivers.
	ClassReset Class = "reset"
)

// Event is one timed fault window: inject at At, heal at At+For. A, B scope
// the event to one site pair (either direction); both empty means every
// pair. Partitions always name a pair.
type Event struct {
	At  time.Duration
	For time.Duration

	Class Class
	A, B  string

	Delay       time.Duration // ClassLatency: base one-way delay per frame
	Jitter      time.Duration // ClassLatency: uniform extra in [0, Jitter)
	Rate        float64       // ClassLoss / ClassReset: per-frame probability
	BytesPerSec int           // ClassBandwidth: shaped pipe rate
}

// active reports whether the window covers elapsed time now.
func (e Event) active(now time.Duration) bool {
	return now >= e.At && now < e.At+e.For
}

// matches reports whether the event applies to traffic between sites a and
// b, in either direction.
func (e Event) matches(a, b string) bool {
	if e.A == "" && e.B == "" {
		return true
	}
	return (e.A == a && e.B == b) || (e.A == b && e.B == a)
}

// String renders the event as one fault-script line.
func (e Event) String() string {
	detail := ""
	switch e.Class {
	case ClassLatency:
		detail = fmt.Sprintf(" delay=%v jitter=%v", e.Delay, e.Jitter)
	case ClassBandwidth:
		detail = fmt.Sprintf(" rate=%dB/s", e.BytesPerSec)
	case ClassLoss, ClassReset:
		detail = fmt.Sprintf(" p=%.3f", e.Rate)
	}
	scope := "all-pairs"
	if e.A != "" || e.B != "" {
		scope = e.A + "↔" + e.B
	}
	return fmt.Sprintf("%-9s at=%-8v for=%-8v %s%s", e.Class, e.At, e.For, scope, detail)
}

// Schedule is a fully deterministic fault timeline over a set of sites.
type Schedule struct {
	Seed   int64
	Sites  []string
	Events []Event
}

// End returns the instant the last fault window heals.
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, e := range s.Events {
		if t := e.At + e.For; t > end {
			end = t
		}
	}
	return end
}

// Classes returns the set of fault classes the schedule exercises.
func (s Schedule) Classes() map[Class]bool {
	m := make(map[Class]bool, 5)
	for _, e := range s.Events {
		m[e.Class] = true
	}
	return m
}

// String renders the schedule as a replayable fault script.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaosnet schedule seed=%d sites=%v\n", s.Seed, s.Sites)
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Generate derives a Schedule from a seed: 1-3 non-overlapping fault
// windows (the explorer's window generator at a 50ms wall-clock scale, so a
// whole schedule heals within roughly a second) drawn from the five
// classes. Non-partition events scope to a random site pair half the time
// and to all pairs otherwise; partitions always isolate one pair.
func Generate(seed int64, sites []string) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Sites: append([]string(nil), sites...)}
	wins := explore.Windows(rng, 1+rng.Intn(3), 50*time.Millisecond)
	for _, w := range wins {
		e := Event{At: w.At, For: w.For}
		pair := func() {
			if len(sites) < 2 {
				return
			}
			i := rng.Intn(len(sites))
			j := rng.Intn(len(sites) - 1)
			if j >= i {
				j++
			}
			e.A, e.B = sites[i], sites[j]
		}
		switch rng.Intn(5) {
		case 0:
			e.Class = ClassLatency
			e.Delay = time.Duration(5+rng.Intn(20)) * time.Millisecond
			e.Jitter = e.Delay / 2
		case 1:
			e.Class = ClassBandwidth
			e.BytesPerSec = (64 + rng.Intn(193)) * 1024
		case 2:
			e.Class = ClassLoss
			e.Rate = 0.05 + 0.15*rng.Float64()
		case 3:
			e.Class = ClassPartition
			pair()
		default:
			e.Class = ClassReset
			e.Rate = 0.05 + 0.10*rng.Float64()
		}
		if e.Class != ClassPartition && rng.Intn(2) == 1 {
			pair()
		}
		s.Events = append(s.Events, e)
	}
	return s
}
