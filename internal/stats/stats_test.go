package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryMeanStddev(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got, want := s.Stddev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		sum := 0.0
		ok := true
		for _, x := range xs {
			// Constrain inputs to a sane range to avoid float blowups.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
			sum += x
		}
		if s.N() > 0 {
			mean := sum / float64(s.N())
			ok = math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean))
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond} {
		h.Observe(d)
	}
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileApproximation(t *testing.T) {
	h := NewHistogram()
	var samples []time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		h.Observe(d)
		samples = append(samples, d)
	}
	exact := Percentiles(samples, 0.5, 0.99)
	for i, q := range []float64{0.5, 0.99} {
		got := h.Quantile(q)
		want := exact[i]
		// Log buckets at 30/decade: ~8% resolution.
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("Quantile(%v) = %v, want ≈%v", q, got, want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(10 * time.Millisecond)
	if got := h.Quantile(0); got != 10*time.Millisecond {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := h.Quantile(1); got != 10*time.Millisecond {
		t.Fatalf("Quantile(1) = %v", got)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(1+i*i) * time.Microsecond)
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prev := CDFPoint{}
	for _, p := range cdf {
		if p.Latency < prev.Latency || p.Fraction < prev.Fraction {
			t.Fatalf("CDF not monotone at %+v after %+v", p, prev)
		}
		prev = p
	}
	if got := cdf[len(cdf)-1].Fraction; got != 1.0 {
		t.Fatalf("CDF ends at %v, want 1.0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(b)
	if a.N() != 3 || a.Mean() != 3*time.Millisecond {
		t.Fatalf("merged N=%d mean=%v", a.N(), a.Mean())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merged Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{500 * time.Nanosecond, "0.5µs"},
		{670 * time.Microsecond, "670.0µs"},
		{93 * time.Millisecond, "93.0ms"},
		{2300 * time.Millisecond, "2.30s"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.d); got != tt.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestRelStddev(t *testing.T) {
	var s Summary
	s.Add(100)
	s.Add(100)
	if got := s.RelStddev(); got != 0 {
		t.Fatalf("RelStddev of constant = %v", got)
	}
}
