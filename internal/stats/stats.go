// Package stats provides the streaming statistics the benchmark harness
// reports: Welford mean/stddev, log-bucketed latency histograms with
// quantiles, and CDF extraction (for the paper's Fig 8).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates a running mean and standard deviation (Welford).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds in one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// RelStddev returns stddev/mean (the paper reports stddev when >5%).
func (s *Summary) RelStddev() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Stddev() / s.mean
}

// Histogram is a latency histogram over log-spaced buckets from 1µs to
// ~17 minutes, retaining enough resolution for quantiles and CDFs.
type Histogram struct {
	counts []int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketsPerDecade controls resolution: 30 buckets per 10x of latency.
const bucketsPerDecade = 30

// numBuckets spans 1µs .. 10^9µs.
const numBuckets = 9 * bucketsPerDecade

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, numBuckets+1)}
}

func bucketOf(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	b := int(math.Log10(us) * bucketsPerDecade)
	if b > numBuckets {
		b = numBuckets
	}
	return b
}

// bucketValue returns the representative latency of bucket b.
func bucketValue(b int) time.Duration {
	us := math.Pow(10, (float64(b)+0.5)/bucketsPerDecade)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 {
		h.min, h.max = d, d
		return
	}
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact running mean.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min and Max return exact extremes.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the latency at quantile q in [0,1], approximated by the
// containing bucket (clamped to the exact extremes).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF extracts the empirical CDF (one point per non-empty bucket).
func (h *Histogram) CDF() []CDFPoint {
	if h.n == 0 {
		return nil
	}
	var out []CDFPoint
	var cum int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Latency: bucketValue(b), Fraction: float64(cum) / float64(h.n)})
	}
	return out
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
}

// FormatDuration renders a latency the way the experiment tables print it.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Percentiles is a convenience for reporting a sorted latency sample
// exactly (used by tests to cross-check the histogram approximation).
func Percentiles(samples []time.Duration, qs ...float64) []time.Duration {
	if len(samples) == 0 {
		return make([]time.Duration, len(qs))
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}
