// Package crdb implements a CockroachDB-like transactional key-value store
// over Raft — the paper's "highly optimized geo-distributed database"
// comparator (§VIII-d, §X-B3/B4). A read-write transaction costs two
// consensus rounds: one to begin (writing the transaction record and taking
// key locks, deterministically through the replicated log) and one to
// commit (applying the writes and releasing the locks). Reads are served by
// the leaseholder (the Raft leader). The cost analysis in §X-B4 — 2·x·C for
// x state updates in exclusive transactions versus MUSIC's 2C+(x+1)·Q —
// falls directly out of this structure.
package crdb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// Service names.
const (
	svcTxnWait = "crdb.txnWait"
	svcRead    = "crdb.read"
)

// Errors returned by transactions.
var (
	// ErrConflict means the transaction lost a lock race; retry.
	ErrConflict = errors.New("crdb: transaction conflict")
	// ErrUnavailable means consensus could not complete in time.
	ErrUnavailable = errors.New("crdb: consensus unavailable")
)

// KV is one write.
type KV struct {
	Key   string
	Value []byte
}

// Cond requires Key to currently equal Want (nil Want = absent).
type Cond struct {
	Key  string
	Want []byte
}

// Replicated log payloads.
type beginTxn struct {
	ID   uint64
	Keys []string // keys to lock, sorted
}

type commitTxn struct {
	ID     uint64
	Writes []KV
}

type abortTxn struct {
	ID uint64
}

type txnStatus int

const (
	statusLocked txnStatus = iota + 1
	statusRefused
	statusCommitted
	statusAborted
)

// Cluster is a crdb deployment: one replicated range over a Raft group.
type Cluster struct {
	net  *simnet.Network
	rc   *raft.Cluster
	sms  map[simnet.NodeID]*stateMachine
	mu   sync.Mutex
	next uint64 // txn id counter
}

// stateMachine is the deterministic per-replica KV + lock table.
type stateMachine struct {
	mu      sync.Mutex
	applied uint64
	kv      map[string][]byte
	locks   map[string]uint64    // key → txn holding its lock
	txns    map[uint64]txnStatus // txn outcomes
	txnKeys map[uint64][]string  // locked keys per txn
}

// New builds a crdb cluster on the given nodes.
func New(net *simnet.Network, nodes []simnet.NodeID) (*Cluster, error) {
	c := &Cluster{net: net, sms: make(map[simnet.NodeID]*stateMachine)}
	for _, id := range nodes {
		c.sms[id] = &stateMachine{
			kv:      make(map[string][]byte),
			locks:   make(map[string]uint64),
			txns:    make(map[uint64]txnStatus),
			txnKeys: make(map[uint64][]string),
		}
	}
	rc, err := raft.New(net, raft.Config{Nodes: nodes, Apply: c.apply})
	if err != nil {
		return nil, err
	}
	c.rc = rc
	for _, id := range nodes {
		id := id
		sm := c.sms[id]
		net.Node(id).HandleWithCost(svcTxnWait, func(from simnet.NodeID, req any) (any, error) {
			return sm.waitTxn(net, req.(waitReq))
		}, 80*time.Microsecond, 0)
		net.Node(id).HandleWithCost(svcRead, func(from simnet.NodeID, req any) (any, error) {
			return sm.read(req.(readReq)), nil
		}, 90*time.Microsecond, 0)
	}
	return c, nil
}

// Raft exposes the underlying consensus group (tests, warmup).
func (c *Cluster) Raft() *raft.Cluster { return c.rc }

// apply is the replicated state machine; identical order on every peer
// makes lock acquisition deterministic cluster-wide.
func (c *Cluster) apply(peer simnet.NodeID, index uint64, e raft.Entry) {
	sm := c.sms[peer]
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.applied = index
	switch op := e.Data.(type) {
	case beginTxn:
		for _, k := range op.Keys {
			if holder, locked := sm.locks[k]; locked && holder != op.ID {
				sm.txns[op.ID] = statusRefused
				return
			}
		}
		for _, k := range op.Keys {
			sm.locks[k] = op.ID
		}
		sm.txns[op.ID] = statusLocked
		sm.txnKeys[op.ID] = op.Keys
	case commitTxn:
		if sm.txns[op.ID] != statusLocked {
			return
		}
		for _, w := range op.Writes {
			if w.Value == nil {
				delete(sm.kv, w.Key)
			} else {
				sm.kv[w.Key] = w.Value
			}
		}
		sm.releaseLocked(op.ID)
		sm.txns[op.ID] = statusCommitted
	case abortTxn:
		if sm.txns[op.ID] == statusLocked {
			sm.releaseLocked(op.ID)
		}
		sm.txns[op.ID] = statusAborted
	}
}

// releaseLocked drops a txn's locks. Caller holds sm.mu.
func (sm *stateMachine) releaseLocked(id uint64) {
	for _, k := range sm.txnKeys[id] {
		if sm.locks[k] == id {
			delete(sm.locks, k)
		}
	}
	delete(sm.txnKeys, id)
}

// waitReq asks a replica for a txn's status once it has applied minIndex,
// along with the current values of the requested keys.
type waitReq struct {
	ID       uint64
	MinIndex uint64
	Keys     []string
}

type waitResp struct {
	Status txnStatus
	Values map[string][]byte
}

func (sm *stateMachine) waitTxn(net *simnet.Network, req waitReq) (waitResp, error) {
	rt := net.Runtime()
	for i := 0; i < 100000; i++ {
		sm.mu.Lock()
		if sm.applied >= req.MinIndex {
			resp := waitResp{Status: sm.txns[req.ID], Values: make(map[string][]byte, len(req.Keys))}
			for _, k := range req.Keys {
				if v, ok := sm.kv[k]; ok {
					resp.Values[k] = append([]byte(nil), v...)
				}
			}
			sm.mu.Unlock()
			return resp, nil
		}
		sm.mu.Unlock()
		rt.Sleep(200 * time.Microsecond)
	}
	return waitResp{}, fmt.Errorf("crdb: index %d never applied", req.MinIndex)
}

type readReq struct {
	Key string
}

type readResp struct {
	Value []byte
	Found bool
}

func (sm *stateMachine) read(req readReq) readResp {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	v, ok := sm.kv[req.Key]
	if !ok {
		return readResp{}
	}
	return readResp{Value: append([]byte(nil), v...), Found: true}
}

// Client issues transactions from one gateway node.
type Client struct {
	c    *Cluster
	node simnet.NodeID
}

// Client binds to a gateway node.
func (c *Cluster) Client(node simnet.NodeID) *Client { return &Client{c: c, node: node} }

func (c *Cluster) nextTxnID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	return c.next
}

// Txn runs one conditional read-write transaction: it locks the condition
// and write keys (consensus round 1), evaluates the conditions against the
// locked state, and on success applies the writes (consensus round 2).
// It reports whether the writes were applied, plus the observed values of
// the condition keys. Lock conflicts surface as ErrConflict (retry).
func (cl *Client) Txn(conds []Cond, writes []KV) (bool, map[string][]byte, error) {
	id := cl.c.nextTxnID()
	keySet := make(map[string]bool, len(conds)+len(writes))
	var condKeys []string
	for _, cond := range conds {
		keySet[cond.Key] = true
		condKeys = append(condKeys, cond.Key)
	}
	for _, w := range writes {
		keySet[w.Key] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sortStrings(keys)

	size := 0
	for _, w := range writes {
		size += len(w.Key) + len(w.Value)
	}

	// Consensus round 1: transaction record + locks.
	beginIdx, err := cl.c.rc.Propose(cl.node, beginTxn{ID: id, Keys: keys}, 64)
	if err != nil {
		return false, nil, fmt.Errorf("%w: begin: %v", ErrUnavailable, err)
	}
	status, err := cl.waitTxn(id, beginIdx, condKeys)
	if err != nil {
		return false, nil, err
	}
	if status.Status != statusLocked {
		return false, nil, ErrConflict
	}

	// Evaluate conditions against the locked state.
	for _, cond := range conds {
		got, ok := status.Values[cond.Key]
		if cond.Want == nil {
			if ok {
				cl.abort(id)
				return false, status.Values, nil
			}
			continue
		}
		if !ok || !bytes.Equal(got, cond.Want) {
			cl.abort(id)
			return false, status.Values, nil
		}
	}

	// Consensus round 2: commit record with the writes.
	if _, err := cl.c.rc.Propose(cl.node, commitTxn{ID: id, Writes: writes}, size); err != nil {
		return false, nil, fmt.Errorf("%w: commit: %v", ErrUnavailable, err)
	}
	return true, status.Values, nil
}

// waitTxn fetches the txn status from the leaseholder once it caught up.
func (cl *Client) waitTxn(id, minIndex uint64, keys []string) (waitResp, error) {
	lead := cl.c.rc.Leader()
	if lead < 0 {
		lead = cl.node
	}
	resp, err := cl.c.net.Call(cl.node, lead, svcTxnWait, waitReq{ID: id, MinIndex: minIndex, Keys: keys})
	if err != nil {
		return waitResp{}, fmt.Errorf("%w: status: %v", ErrUnavailable, err)
	}
	return resp.(waitResp), nil
}

// abort releases a txn's locks (consensus, fire-and-forget semantics but
// awaited here for determinism).
func (cl *Client) abort(id uint64) {
	_, _ = cl.c.rc.Propose(cl.node, abortTxn{ID: id}, 32)
}

// Put writes a key in its own (unconditional) transaction.
func (cl *Client) Put(key string, value []byte) error {
	ok, _, err := cl.Txn(nil, []KV{{Key: key, Value: value}})
	if err != nil {
		return err
	}
	if !ok {
		return ErrConflict
	}
	return nil
}

// Get reads a key at the leaseholder.
func (cl *Client) Get(key string) ([]byte, bool, error) {
	lead := cl.c.rc.Leader()
	if lead < 0 {
		lead = cl.node
	}
	resp, err := cl.c.net.Call(cl.node, lead, svcRead, readReq{Key: key})
	if err != nil {
		return nil, false, fmt.Errorf("%w: read: %v", ErrUnavailable, err)
	}
	r := resp.(readResp)
	return r.Value, r.Found, nil
}

// lockFree is the sentinel for an unheld critical-section lock row.
var lockFree = []byte("NONE")

// AcquireCS takes the §X-B3 critical-section lock row: a transaction that
// checks the lock row and upserts the owner, retried until it wins.
func (cl *Client) AcquireCS(lockKey, owner string) error {
	rt := cl.c.net.Runtime()
	for attempt := 0; attempt < 1000; attempt++ {
		// Free means: absent, or explicitly NONE.
		applied, vals, err := cl.Txn(
			[]Cond{{Key: lockKey, Want: lockFree}},
			[]KV{{Key: lockKey, Value: []byte(owner)}})
		if err == nil && applied {
			return nil
		}
		if err == nil && vals != nil {
			if _, exists := vals[lockKey]; !exists {
				applied, _, err = cl.Txn(
					[]Cond{{Key: lockKey, Want: nil}},
					[]KV{{Key: lockKey, Value: []byte(owner)}})
				if err == nil && applied {
					return nil
				}
			}
		}
		if err != nil && !errors.Is(err, ErrConflict) {
			return err
		}
		rt.Sleep(time.Duration(10+rt.Rand().Intn(40)) * time.Millisecond)
	}
	return fmt.Errorf("crdb: lock %s: %w", lockKey, ErrConflict)
}

// UpdateCS performs one state update inside the critical section — its own
// exclusive transaction (lock check + write), costing two consensus rounds
// like a Spanner read-write transaction (§X-B4).
func (cl *Client) UpdateCS(lockKey, owner, key string, value []byte) error {
	applied, _, err := cl.Txn(
		[]Cond{{Key: lockKey, Want: []byte(owner)}},
		[]KV{{Key: key, Value: value}})
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("crdb: lost cs lock %s", lockKey)
	}
	return nil
}

// ReleaseCS exits the critical section.
func (cl *Client) ReleaseCS(lockKey, owner string) error {
	applied, _, err := cl.Txn(
		[]Cond{{Key: lockKey, Want: []byte(owner)}},
		[]KV{{Key: lockKey, Value: lockFree}})
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("crdb: release: not the owner of %s", lockKey)
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
