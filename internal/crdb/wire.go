package crdb

import "repro/internal/wire"

// Wire codecs for the transaction commands crdb replicates through Raft.
// Raft's own message codecs marshal Entry.Data with a nested wire.Marshal,
// so every command type proposed into the log needs a codec of its own even
// when the group runs entirely over the simulated network.
const (
	idBeginTxn  = 64
	idCommitTxn = 65
	idAbortTxn  = 66
)

func init() {
	wire.Register(idBeginTxn, "crdb.beginTxn",
		func(e *wire.Encoder, v beginTxn) {
			e.Uint64(v.ID)
			e.Uint32(uint32(len(v.Keys)))
			for _, k := range v.Keys {
				e.String(k)
			}
		},
		func(d *wire.Decoder) beginTxn {
			v := beginTxn{ID: d.Uint64()}
			n := int(d.Uint32())
			if n > 0 && d.Err() == nil {
				v.Keys = make([]string, 0, n)
				for i := 0; i < n && d.Err() == nil; i++ {
					v.Keys = append(v.Keys, d.String())
				}
			}
			return v
		})
	wire.Register(idCommitTxn, "crdb.commitTxn",
		func(e *wire.Encoder, v commitTxn) {
			e.Uint64(v.ID)
			e.Uint32(uint32(len(v.Writes)))
			for _, w := range v.Writes {
				e.String(w.Key)
				e.RawBytes(w.Value)
			}
		},
		func(d *wire.Decoder) commitTxn {
			v := commitTxn{ID: d.Uint64()}
			n := int(d.Uint32())
			if n > 0 && d.Err() == nil {
				v.Writes = make([]KV, 0, n)
				for i := 0; i < n && d.Err() == nil; i++ {
					v.Writes = append(v.Writes, KV{Key: d.String(), Value: d.RawBytes()})
				}
			}
			return v
		})
	wire.Register(idAbortTxn, "crdb.abortTxn",
		func(e *wire.Encoder, v abortTxn) { e.Uint64(v.ID) },
		func(d *wire.Decoder) abortTxn { return abortTxn{ID: d.Uint64()} })
}
