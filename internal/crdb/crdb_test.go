package crdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func fixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster)) {
	t.Helper()
	rt := sim.New(13)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	c, err := New(net, net.Nodes())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Run(func() {
		if _, err := c.Raft().WaitForLeader(time.Minute); err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		fn(rt, net, c)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPutGet(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, found, err := cl.Get("k")
		if err != nil || !found || string(got) != "v" {
			t.Fatalf("Get = (%q, %v, %v)", got, found, err)
		}
	})
}

func TestGetMissing(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		_, found, err := c.Client(1).Get("nope")
		if err != nil || found {
			t.Fatalf("Get missing = (%v, %v)", found, err)
		}
	})
}

func TestConditionalTxn(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		// Insert-if-absent succeeds once.
		ok, _, err := cl.Txn([]Cond{{Key: "k", Want: nil}}, []KV{{Key: "k", Value: []byte("a")}})
		if err != nil || !ok {
			t.Fatalf("first insert = (%v, %v)", ok, err)
		}
		ok, vals, err := cl.Txn([]Cond{{Key: "k", Want: nil}}, []KV{{Key: "k", Value: []byte("b")}})
		if err != nil || ok {
			t.Fatalf("second insert = (%v, %v), want refused", ok, err)
		}
		if string(vals["k"]) != "a" {
			t.Fatalf("observed = %q, want a", vals["k"])
		}
		// Compare-and-set with the right expectation succeeds.
		ok, _, err = cl.Txn([]Cond{{Key: "k", Want: []byte("a")}}, []KV{{Key: "k", Value: []byte("b")}})
		if err != nil || !ok {
			t.Fatalf("cas = (%v, %v)", ok, err)
		}
		got, _, _ := cl.Get("k")
		if string(got) != "b" {
			t.Fatalf("final = %q", got)
		}
	})
}

func TestTxnReleasesLocksOnConditionFailure(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// Condition fails; locks must be released for the next txn.
		ok, _, err := cl.Txn([]Cond{{Key: "k", Want: []byte("wrong")}}, []KV{{Key: "k", Value: []byte("x")}})
		if err != nil || ok {
			t.Fatalf("failing txn = (%v, %v)", ok, err)
		}
		if err := cl.Put("k", []byte("after")); err != nil {
			t.Fatalf("Put after failed txn: %v", err)
		}
	})
}

func TestCriticalSectionRecipe(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.AcquireCS("lock", "me"); err != nil {
			t.Fatalf("AcquireCS: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := cl.UpdateCS("lock", "me", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Fatalf("UpdateCS %d: %v", i, err)
			}
		}
		if err := cl.ReleaseCS("lock", "me"); err != nil {
			t.Fatalf("ReleaseCS: %v", err)
		}
		// Reacquirable after release.
		if err := cl.AcquireCS("lock", "me2"); err != nil {
			t.Fatalf("reacquire: %v", err)
		}
		if err := cl.ReleaseCS("lock", "me2"); err != nil {
			t.Fatalf("release 2: %v", err)
		}
	})
}

func TestCSExcludesSecondOwner(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl1, cl2 := c.Client(0), c.Client(1)
		if err := cl1.AcquireCS("lock", "one"); err != nil {
			t.Fatalf("AcquireCS: %v", err)
		}
		// The second owner's updates are refused while one holds the lock.
		if err := cl2.UpdateCS("lock", "two", "k", []byte("v")); err == nil {
			t.Fatal("non-owner update succeeded")
		}
		done := sim.NewMailbox[error](rt)
		rt.Go(func() { done.Send(cl2.AcquireCS("lock", "two")) })
		rt.Sleep(2 * time.Second)
		if done.Len() != 0 {
			t.Fatal("second acquire completed while lock held")
		}
		if err := cl1.ReleaseCS("lock", "one"); err != nil {
			t.Fatalf("ReleaseCS: %v", err)
		}
		if err, recvErr := done.RecvTimeout(2 * time.Minute); recvErr != nil || err != nil {
			t.Fatalf("second acquire: %v / %v", err, recvErr)
		}
	})
}

func TestConcurrentTxnsOnSameKeyConflictAndRetrySucceeds(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		done := sim.NewMailbox[error](rt)
		for i := 0; i < 4; i++ {
			cl := c.Client(simnet.NodeID(i % 3))
			val := []byte{byte(i)}
			rt.Go(func() {
				for {
					err := cl.Put("hot", val)
					if err == nil {
						done.Send(nil)
						return
					}
					if !errors.Is(err, ErrConflict) {
						done.Send(err)
						return
					}
					rt.Sleep(20 * time.Millisecond)
				}
			})
		}
		for i := 0; i < 4; i++ {
			if err, recvErr := done.RecvTimeout(5 * time.Minute); recvErr != nil || err != nil {
				t.Fatalf("writer %d: %v / %v", i, err, recvErr)
			}
		}
		_, found, err := c.Client(0).Get("hot")
		if err != nil || !found {
			t.Fatalf("final Get = (%v, %v)", found, err)
		}
	})
}

func TestTxnCostIsTwoConsensusRounds(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		lead := c.Raft().Leader()
		cl := c.Client(lead)
		if err := cl.Put("warm", []byte("x")); err != nil {
			t.Fatalf("warm Put: %v", err)
		}
		start := rt.Now()
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		elapsed := rt.Now() - start
		// Two quorum rounds from the leader: each costs the RTT to its
		// nearest peer (the second ack is the leader's own).
		leadSite := net.SiteOf(lead)
		round := time.Duration(1<<62 - 1)
		for _, id := range net.Nodes() {
			if id == lead {
				continue
			}
			if rtt := simnet.ProfileIUs.RTT(leadSite, net.SiteOf(id)); rtt < round {
				round = rtt
			}
		}
		if elapsed < 2*round || elapsed > 2*round+round/2 {
			t.Fatalf("txn took %v, want ≈2×%v (2 consensus rounds)", elapsed, round)
		}
	})
}

func TestDeleteViaNilValue(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		ok, _, err := cl.Txn(nil, []KV{{Key: "k", Value: nil}})
		if err != nil || !ok {
			t.Fatalf("delete txn = (%v, %v)", ok, err)
		}
		_, found, _ := cl.Get("k")
		if found {
			t.Fatal("key survives delete")
		}
	})
}
