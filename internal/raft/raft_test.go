package raft

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// recorder collects applied entries per peer.
type recorder struct {
	mu      sync.Mutex
	applied map[simnet.NodeID][]any
}

func newRecorder() *recorder {
	return &recorder{applied: make(map[simnet.NodeID][]any)}
}

func (r *recorder) apply(peer simnet.NodeID, index uint64, e Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applied[peer] = append(r.applied[peer], e.Data)
}

func (r *recorder) log(peer simnet.NodeID) []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]any(nil), r.applied[peer]...)
}

func fixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder)) {
	t.Helper()
	rt := sim.New(9)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	rec := newRecorder()
	c, err := New(net, Config{Apply: rec.apply})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Run(func() { fn(rt, net, c, rec) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestElectsExactlyOneLeader(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		id, err := c.WaitForLeader(30 * time.Second)
		if err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		rt.Sleep(2 * time.Second)
		leaders := 0
		for _, p := range c.peers {
			p.mu.Lock()
			if p.role == leader {
				leaders++
			}
			p.mu.Unlock()
		}
		if leaders != 1 {
			t.Fatalf("leaders = %d, want 1 (first %d)", leaders, id)
		}
	})
}

func TestProposeCommitsAndApplies(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		if _, err := c.WaitForLeader(30 * time.Second); err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Propose(0, i, 10); err != nil {
				t.Fatalf("Propose %d: %v", i, err)
			}
		}
		rt.Sleep(2 * time.Second) // let followers apply
		for _, id := range net.Nodes() {
			got := rec.log(id)
			if len(got) != 5 {
				t.Fatalf("peer %d applied %d entries, want 5: %v", id, len(got), got)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("peer %d applied %v, want ordered 0..4", id, got)
				}
			}
		}
	})
}

func TestApplyOrderIdenticalAcrossPeers(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		if _, err := c.WaitForLeader(30 * time.Second); err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		done := sim.NewMailbox[error](rt)
		for i := 0; i < 3; i++ {
			from := simnet.NodeID(i)
			rt.Go(func() {
				for j := 0; j < 5; j++ {
					if _, err := c.Propose(from, int(from)*100+j, 10); err != nil {
						done.Send(err)
						return
					}
				}
				done.Send(nil)
			})
		}
		for i := 0; i < 3; i++ {
			if err, recvErr := done.RecvTimeout(2 * time.Minute); recvErr != nil || err != nil {
				t.Fatalf("proposer: %v / %v", err, recvErr)
			}
		}
		rt.Sleep(2 * time.Second)
		ref := rec.log(0)
		if len(ref) != 15 {
			t.Fatalf("peer 0 applied %d, want 15", len(ref))
		}
		for _, id := range net.Nodes()[1:] {
			got := rec.log(id)
			if len(got) != len(ref) {
				t.Fatalf("peer %d applied %d, want %d", id, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("peer %d diverges at %d: %v vs %v", id, i, got[i], ref[i])
				}
			}
		}
	})
}

func TestLeaderFailover(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		first, err := c.WaitForLeader(30 * time.Second)
		if err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		if _, err := c.Propose(first, "before", 10); err != nil {
			t.Fatalf("Propose before: %v", err)
		}
		net.Crash(first)
		// A new leader emerges among the remaining peers.
		var second simnet.NodeID = -1
		deadline := rt.Now() + time.Minute
		for rt.Now() < deadline {
			if id := c.Leader(); id >= 0 && id != first {
				second = id
				break
			}
			rt.Sleep(100 * time.Millisecond)
		}
		if second < 0 {
			t.Fatal("no new leader after crash")
		}
		if _, err := c.Propose(second, "after", 10); err != nil {
			t.Fatalf("Propose after failover: %v", err)
		}
		got := rec.log(second)
		if len(got) < 2 || got[len(got)-1] != "after" {
			t.Fatalf("new leader log = %v, want ...after", got)
		}

		// The old leader catches up on restart.
		net.Restart(first)
		rt.Sleep(5 * time.Second)
		old := rec.log(first)
		if len(old) != len(got) {
			t.Fatalf("restarted peer applied %d, want %d", len(old), len(got))
		}
	})
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		first, err := c.WaitForLeader(30 * time.Second)
		if err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		net.Isolate(first)
		// Proposals through the isolated old leader must not commit; the
		// majority side elects a new leader and commits there.
		var majority simnet.NodeID = -1
		deadline := rt.Now() + time.Minute
		for rt.Now() < deadline {
			for _, id := range net.Nodes() {
				if id == first {
					continue
				}
				p := c.peers[id]
				p.mu.Lock()
				isLeader := p.role == leader
				p.mu.Unlock()
				if isLeader {
					majority = id
				}
			}
			if majority >= 0 {
				break
			}
			rt.Sleep(100 * time.Millisecond)
		}
		if majority < 0 {
			t.Fatal("majority side never elected a leader")
		}
		if _, err := c.Propose(majority, "major", 10); err != nil {
			t.Fatalf("majority propose: %v", err)
		}
		if got := rec.log(first); len(got) != 0 {
			t.Fatalf("isolated peer applied %v", got)
		}
		net.Heal()
		rt.Sleep(5 * time.Second)
		if got := rec.log(first); len(got) != 1 || got[0] != "major" {
			t.Fatalf("healed peer log = %v, want [major]", got)
		}
	})
}

func TestProposalLatencyIsClientHopPlusQuorumRT(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, rec *recorder) {
		lead, err := c.WaitForLeader(30 * time.Second)
		if err != nil {
			t.Fatalf("WaitForLeader: %v", err)
		}
		// From the leader itself: one quorum round trip.
		start := rt.Now()
		if _, err := c.Propose(lead, "x", 10); err != nil {
			t.Fatalf("Propose: %v", err)
		}
		elapsed := rt.Now() - start
		if elapsed > 100*time.Millisecond {
			t.Fatalf("leader-local proposal took %v, want ≈1 quorum RTT", elapsed)
		}
	})
}
