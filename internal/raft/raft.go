// Package raft implements leader-based log replication after "In Search of
// an Understandable Consensus Algorithm" (Ongaro & Ousterhout): randomized
// election timeouts, RequestVote, AppendEntries with heartbeats, quorum
// commit and in-order apply. It is the consensus substrate for the
// CockroachDB-style transactional store (internal/crdb) that the paper
// compares MUSIC against (§VIII-d) and for the cluster-membership config
// log (internal/membership) that drives live reconfiguration.
//
// The group runs over any transport.Transport: the simulated network for
// single-process deployments and internal/nettrans for a group whose peers
// live in different OS processes. In the multi-process case each process
// passes the peers it hosts in Config.LocalNodes; message codecs are
// registered in wire.go so every RPC crosses the real wire.
//
// Log compaction and snapshot transfer are out of scope — the evaluation
// workloads never restart from a truncated log, and the config log stays
// tiny.
package raft

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Service names.
const (
	svcRequestVote   = "raft.requestVote"
	svcAppendEntries = "raft.appendEntries"
	svcPropose       = "raft.propose"
)

// Errors returned by Propose.
var (
	// ErrNotLeader reports the contacted peer is not the leader; the
	// response carries a hint when one is known.
	ErrNotLeader = errors.New("raft: not the leader")
	// ErrTimeout means the proposal was not committed in time (no leader,
	// partitioned minority, lost quorum).
	ErrTimeout = errors.New("raft: proposal timed out")
)

// Entry is one log entry.
type Entry struct {
	Term uint64
	Data any
	Size int
}

// Apply delivers committed entries, in log order, on every local peer.
type Apply func(peer transport.NodeID, index uint64, e Entry)

// Config describes a Raft group.
type Config struct {
	// Nodes is the full group membership (every process lists the same
	// set). Defaults to all transport nodes.
	Nodes []transport.NodeID
	// LocalNodes is the subset of Nodes hosted by this process; handlers
	// and tickers are only started for these. Defaults to Nodes (the
	// single-process case).
	LocalNodes []transport.NodeID
	Apply      Apply
	// ElectionTimeout is the base follower timeout (randomized 1x-2x).
	// Defaults to 1.5s (comfortably above WAN RTTs).
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's replication cadence. Defaults to
	// 300ms.
	HeartbeatInterval time.Duration
	// ProposeTimeout bounds one proposal. Defaults to the transport RPC
	// timeout.
	ProposeTimeout time.Duration
	// MsgCost is the per-message CPU cost. Defaults to 100µs.
	MsgCost time.Duration
	// PerKB is the added CPU cost per payload KiB. Defaults to 1.5µs.
	PerKB time.Duration
}

// Cluster is a Raft group over a transport.Transport. It holds peer state
// only for the nodes this process hosts (Config.LocalNodes).
type Cluster struct {
	tr    transport.Transport
	cfg   Config
	peers map[transport.NodeID]*peer

	mu      sync.Mutex
	stopped bool
}

// Stop halts the peers' background tickers (needed in real-time mode; the
// virtual runtime unwinds abandoned tasks itself).
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

func (c *Cluster) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

type role int

const (
	follower role = iota + 1
	candidate
	leader
)

type peer struct {
	c  *Cluster
	id transport.NodeID

	mu sync.Mutex
	// Persistent state (survives Crash/Restart, like disk).
	term     uint64
	votedFor transport.NodeID // -1 none
	log      []Entry          // log[0] is a sentinel

	// Volatile state.
	role        role
	leaderHint  transport.NodeID // -1 unknown
	commitIdx   uint64
	lastApplied uint64
	deadline    time.Duration // election deadline
	nextIndex   map[transport.NodeID]uint64
	matchIndex  map[transport.NodeID]uint64
	waiters     map[uint64]*waitEntry
}

type waitEntry struct {
	term uint64
	done *sim.Promise[bool]
}

// New builds and starts a Raft group over tr, hosting the peers named in
// cfg.LocalNodes (all of cfg.Nodes by default).
func New(tr transport.Transport, cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = tr.Nodes()
	}
	if len(cfg.LocalNodes) == 0 {
		cfg.LocalNodes = cfg.Nodes
	}
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 1500 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 300 * time.Millisecond
	}
	if cfg.ProposeTimeout == 0 {
		cfg.ProposeTimeout = tr.RPCTimeout()
	}
	if cfg.MsgCost == 0 {
		cfg.MsgCost = 100 * time.Microsecond
	}
	if cfg.PerKB == 0 {
		cfg.PerKB = 1500 * time.Nanosecond
	}

	c := &Cluster{tr: tr, cfg: cfg, peers: make(map[transport.NodeID]*peer, len(cfg.LocalNodes))}
	rt := tr.Runtime()
	for _, id := range cfg.LocalNodes {
		if !containsNode(cfg.Nodes, id) {
			return nil, fmt.Errorf("raft: local node %d not in group %v", id, cfg.Nodes)
		}
		p := &peer{
			c:          c,
			id:         id,
			votedFor:   -1,
			log:        make([]Entry, 1),
			role:       follower,
			leaderHint: -1,
			nextIndex:  make(map[transport.NodeID]uint64),
			matchIndex: make(map[transport.NodeID]uint64),
			waiters:    make(map[uint64]*waitEntry),
		}
		c.peers[id] = p
		tr.HandleWithCost(id, svcRequestVote, p.handleRequestVote, cfg.MsgCost, 0)
		tr.HandleWithCost(id, svcAppendEntries, p.handleAppendEntries, cfg.MsgCost, cfg.PerKB)
		tr.HandleWithCost(id, svcPropose, p.handlePropose, cfg.MsgCost, cfg.PerKB)
		tr.OnRestart(id, p.onRestart)
		p.resetDeadline()
		rt.Go(p.ticker)
	}
	return c, nil
}

func containsNode(ids []transport.NodeID, id transport.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Leader returns the local node currently believed to lead, or -1. In a
// multi-process group only a peer hosted here can be reported.
func (c *Cluster) Leader() transport.NodeID {
	for _, p := range c.peers {
		p.mu.Lock()
		isLeader := p.role == leader
		p.mu.Unlock()
		if isLeader {
			return p.id
		}
	}
	return -1
}

// WaitForLeader blocks until some local peer leads (tests, warmup).
func (c *Cluster) WaitForLeader(timeout time.Duration) (transport.NodeID, error) {
	rt := c.tr.Runtime()
	deadline := rt.Now() + timeout
	for rt.Now() < deadline {
		if id := c.Leader(); id >= 0 {
			return id, nil
		}
		rt.Sleep(20 * time.Millisecond)
	}
	return -1, fmt.Errorf("raft: no leader within %v", timeout)
}

// proposeReq carries a client proposal to the leader.
type proposeReq struct {
	Data any
	Size int
}

func (r proposeReq) WireSize() int { return r.Size + 16 }

type proposeResp struct {
	Index uint64
	Hint  transport.NodeID
	Err   string
}

// Propose submits data for replication via the peer at `from` (forwarding
// to the leader if needed) and returns the committed log index.
func (c *Cluster) Propose(from transport.NodeID, data any, size int) (index uint64, err error) {
	sp := c.tr.Tracer().Child("raft.propose")
	defer func() { sp.EndErr(err) }()
	target := from
	for attempt := 0; attempt < 8; attempt++ {
		resp, err := c.tr.CallTimeout(from, target, svcPropose,
			proposeReq{Data: data, Size: size}, c.cfg.ProposeTimeout)
		if err != nil {
			c.tr.Runtime().Sleep(100 * time.Millisecond)
			target = c.nextTarget(target)
			continue
		}
		pr := resp.(proposeResp)
		switch {
		case pr.Err == "":
			sp.Annotatef("leader", "n%d (attempt %d)", target, attempt)
			return pr.Index, nil
		case pr.Hint >= 0:
			target = pr.Hint
		default:
			c.tr.Runtime().Sleep(150 * time.Millisecond)
			target = c.nextTarget(target)
		}
	}
	return 0, ErrTimeout
}

func (c *Cluster) nextTarget(cur transport.NodeID) transport.NodeID {
	for i, id := range c.cfg.Nodes {
		if id == cur {
			return c.cfg.Nodes[(i+1)%len(c.cfg.Nodes)]
		}
	}
	return c.cfg.Nodes[0]
}

// handlePropose runs at any peer; only the leader appends and replicates.
func (p *peer) handlePropose(from transport.NodeID, req any) (any, error) {
	m := req.(proposeReq)
	p.mu.Lock()
	if p.role != leader {
		hint := p.leaderHint
		p.mu.Unlock()
		return proposeResp{Hint: hint, Err: ErrNotLeader.Error()}, nil
	}
	entry := Entry{Term: p.term, Data: m.Data, Size: m.Size}
	p.log = append(p.log, entry)
	index := uint64(len(p.log) - 1)
	p.matchIndex[p.id] = index
	done := sim.NewPromise[bool](p.c.tr.Runtime())
	p.waiters[index] = &waitEntry{term: p.term, done: done}
	p.mu.Unlock()

	// The append span covers replication fan-out plus the in-order commit
	// wait — the leader-pipeline residence time of this entry.
	ap := p.c.tr.Tracer().Child("raft.leader.append")
	ap.Annotatef("index", "%d", index)
	p.replicateAll()

	committed, err := done.AwaitTimeout(p.c.cfg.ProposeTimeout)
	if err != nil || !committed {
		ap.EndErr(ErrTimeout)
		return proposeResp{Hint: -1, Err: ErrTimeout.Error()}, nil
	}
	ap.End()
	return proposeResp{Index: index}, nil
}

// ticker drives elections (followers/candidates) and heartbeats (leader).
func (p *peer) ticker() {
	rt := p.c.tr.Runtime()
	for !p.c.isStopped() {
		rt.Sleep(p.c.cfg.HeartbeatInterval / 3)
		p.mu.Lock()
		r := p.role
		expired := rt.Now() >= p.deadline
		p.mu.Unlock()

		switch {
		case r == leader:
			p.replicateAll()
		case expired:
			p.startElection()
		}
	}
}

func (p *peer) resetDeadline() {
	rt := p.c.tr.Runtime()
	jitter := time.Duration(rt.Rand().Int63n(int64(p.c.cfg.ElectionTimeout)))
	p.deadline = rt.Now() + p.c.cfg.ElectionTimeout + jitter
}

// Vote RPCs.

type voteReq struct {
	Term         uint64
	Candidate    transport.NodeID
	LastLogIndex uint64
	LastLogTerm  uint64
}

type voteResp struct {
	Term    uint64
	Granted bool
}

func (p *peer) startElection() {
	rt := p.c.tr.Runtime()
	p.mu.Lock()
	p.role = candidate
	p.term++
	p.votedFor = p.id
	p.resetDeadline()
	req := voteReq{
		Term:         p.term,
		Candidate:    p.id,
		LastLogIndex: uint64(len(p.log) - 1),
		LastLogTerm:  p.log[len(p.log)-1].Term,
	}
	p.mu.Unlock()

	votes := 1
	quorum := len(p.c.cfg.Nodes)/2 + 1
	results := sim.NewMailbox[voteResp](rt)
	for _, id := range p.c.cfg.Nodes {
		if id == p.id {
			continue
		}
		id := id
		rt.Go(func() {
			resp, err := p.c.tr.CallTimeout(p.id, id, svcRequestVote, req, p.c.cfg.ElectionTimeout)
			if err != nil {
				return
			}
			results.Send(resp.(voteResp))
		})
	}
	deadline := rt.Now() + p.c.cfg.ElectionTimeout
	for votes < quorum {
		remaining := deadline - rt.Now()
		if remaining <= 0 {
			return // election failed; ticker will retry
		}
		r, err := results.RecvTimeout(remaining)
		if err != nil {
			return
		}
		p.mu.Lock()
		if r.Term > p.term {
			p.stepDown(r.Term)
			p.mu.Unlock()
			return
		}
		stillCandidate := p.role == candidate && p.term == req.Term
		p.mu.Unlock()
		if !stillCandidate {
			return
		}
		if r.Granted {
			votes++
		}
	}
	p.becomeLeader(req.Term)
}

func (p *peer) becomeLeader(term uint64) {
	p.mu.Lock()
	if p.role != candidate || p.term != term {
		p.mu.Unlock()
		return
	}
	p.role = leader
	p.leaderHint = p.id
	last := uint64(len(p.log) - 1)
	for _, id := range p.c.cfg.Nodes {
		p.nextIndex[id] = last + 1
		p.matchIndex[id] = 0
	}
	p.matchIndex[p.id] = last
	p.mu.Unlock()
	p.replicateAll()
}

// stepDown reverts to follower at a newer term. Caller holds p.mu.
func (p *peer) stepDown(term uint64) {
	if term > p.term {
		p.term = term
		p.votedFor = -1
	}
	p.role = follower
	p.resetDeadline()
	p.failWaitersLocked()
}

func (p *peer) failWaitersLocked() {
	for idx, w := range p.waiters {
		w.done.Resolve(false)
		delete(p.waiters, idx)
	}
}

func (p *peer) handleRequestVote(from transport.NodeID, req any) (any, error) {
	m := req.(voteReq)
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.Term > p.term {
		p.stepDown(m.Term)
	}
	if m.Term < p.term {
		return voteResp{Term: p.term}, nil
	}
	upToDate := m.LastLogTerm > p.log[len(p.log)-1].Term ||
		(m.LastLogTerm == p.log[len(p.log)-1].Term && m.LastLogIndex >= uint64(len(p.log)-1))
	if (p.votedFor == -1 || p.votedFor == m.Candidate) && upToDate {
		p.votedFor = m.Candidate
		p.resetDeadline()
		return voteResp{Term: p.term, Granted: true}, nil
	}
	return voteResp{Term: p.term}, nil
}

// Replication RPCs.

type appendReq struct {
	Term         uint64
	Leader       transport.NodeID
	PrevIndex    uint64
	PrevTerm     uint64
	Entries      []Entry
	LeaderCommit uint64
}

func (r appendReq) WireSize() int {
	n := 0
	for _, e := range r.Entries {
		n += e.Size + 24
	}
	return n
}

type appendResp struct {
	Term    uint64
	Success bool
	Match   uint64
}

// replicateAll pushes log suffixes (or heartbeats) to every follower.
func (p *peer) replicateAll() {
	rt := p.c.tr.Runtime()
	for _, id := range p.c.cfg.Nodes {
		if id == p.id {
			continue
		}
		id := id
		rt.Go(func() { p.replicateTo(id) })
	}
}

func (p *peer) replicateTo(id transport.NodeID) {
	p.mu.Lock()
	if p.role != leader {
		p.mu.Unlock()
		return
	}
	next := p.nextIndex[id]
	if next == 0 {
		next = 1
	}
	if next > uint64(len(p.log)) {
		next = uint64(len(p.log))
	}
	req := appendReq{
		Term:         p.term,
		Leader:       p.id,
		PrevIndex:    next - 1,
		PrevTerm:     p.log[next-1].Term,
		Entries:      append([]Entry(nil), p.log[next:]...),
		LeaderCommit: p.commitIdx,
	}
	p.mu.Unlock()

	resp, err := p.c.tr.CallTimeout(p.id, id, svcAppendEntries, req, p.c.cfg.ProposeTimeout)
	if err != nil {
		return
	}
	ar := resp.(appendResp)

	p.mu.Lock()
	defer p.mu.Unlock()
	if ar.Term > p.term {
		p.stepDown(ar.Term)
		return
	}
	if p.role != leader || ar.Term < p.term {
		return
	}
	if !ar.Success {
		if p.nextIndex[id] > 1 {
			p.nextIndex[id]--
		}
		return
	}
	p.matchIndex[id] = ar.Match
	p.nextIndex[id] = ar.Match + 1
	p.advanceCommitLocked()
}

// advanceCommitLocked moves commitIdx to the highest current-term index
// replicated on a quorum, resolving waiters and applying entries.
func (p *peer) advanceCommitLocked() {
	quorum := len(p.c.cfg.Nodes)/2 + 1
	for n := uint64(len(p.log) - 1); n > p.commitIdx; n-- {
		if p.log[n].Term != p.term {
			continue
		}
		count := 0
		for _, id := range p.c.cfg.Nodes {
			if p.matchIndex[id] >= n {
				count++
			}
		}
		if count >= quorum {
			p.commitIdx = n
			break
		}
	}
	for idx, w := range p.waiters {
		if idx <= p.commitIdx {
			ok := w.term == p.log[idx].Term
			w.done.Resolve(ok)
			delete(p.waiters, idx)
		}
	}
	p.applyLocked()
}

func (p *peer) applyLocked() {
	for p.lastApplied < p.commitIdx {
		p.lastApplied++
		if p.c.cfg.Apply != nil {
			idx, e := p.lastApplied, p.log[p.lastApplied]
			// Release the lock during user callbacks.
			p.mu.Unlock()
			p.c.cfg.Apply(p.id, idx, e)
			p.mu.Lock()
		}
	}
}

func (p *peer) handleAppendEntries(from transport.NodeID, req any) (any, error) {
	m := req.(appendReq)
	p.mu.Lock()
	if m.Term < p.term {
		resp := appendResp{Term: p.term}
		p.mu.Unlock()
		return resp, nil
	}
	if m.Term > p.term || p.role != follower {
		p.stepDown(m.Term)
	}
	p.leaderHint = m.Leader
	p.resetDeadline()

	if m.PrevIndex >= uint64(len(p.log)) || p.log[m.PrevIndex].Term != m.PrevTerm {
		resp := appendResp{Term: p.term}
		p.mu.Unlock()
		return resp, nil
	}
	// Append new entries, truncating conflicts.
	for i, e := range m.Entries {
		idx := m.PrevIndex + 1 + uint64(i)
		if idx < uint64(len(p.log)) {
			if p.log[idx].Term != e.Term {
				p.log = p.log[:idx]
				p.log = append(p.log, e)
			}
			continue
		}
		p.log = append(p.log, e)
	}
	match := m.PrevIndex + uint64(len(m.Entries))
	if m.LeaderCommit > p.commitIdx {
		last := uint64(len(p.log) - 1)
		p.commitIdx = min64(m.LeaderCommit, last)
	}
	p.applyLocked()
	resp := appendResp{Term: p.term, Success: true, Match: match}
	p.mu.Unlock()
	return resp, nil
}

// onRestart resets volatile state after a crash (persistent state —
// term, vote, log — survives, as if read back from disk).
func (p *peer) onRestart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.role = follower
	p.leaderHint = -1
	p.resetDeadline()
	p.failWaitersLocked()
}

// CommitIndex exposes a local peer's commit index (tests).
func (c *Cluster) CommitIndex(id transport.NodeID) uint64 {
	p, ok := c.peers[id]
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitIdx
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
