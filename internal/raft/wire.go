package raft

import (
	"fmt"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Wire codecs for the Raft RPCs, so a group can span OS processes over
// internal/nettrans (the membership config log) while the same messages
// keep flowing as marshaled bytes over the simulated network.
//
// Entry.Data is an `any`: committed commands are application-defined. The
// codec preserves the dynamic type for nil, []byte, string and int (the
// types tests and simple state machines propose) and routes everything
// else through a nested wire.Marshal — so struct commands (membership
// changes, crdb transactions) must register their own codecs.
const (
	idVoteReq     = 48
	idVoteResp    = 49
	idAppendReq   = 50
	idAppendResp  = 51
	idProposeReq  = 52
	idProposeResp = 53
)

const (
	dataNil uint8 = iota
	dataBytes
	dataString
	dataInt
	dataWire
)

func encodeData(e *wire.Encoder, data any) {
	switch v := data.(type) {
	case nil:
		e.Uint8(dataNil)
	case []byte:
		e.Uint8(dataBytes)
		e.RawBytes(v)
	case string:
		e.Uint8(dataString)
		e.String(v)
	case int:
		e.Uint8(dataInt)
		e.Int64(int64(v))
	default:
		b, err := wire.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("raft: log entry data %T has no wire codec", v))
		}
		e.Uint8(dataWire)
		e.RawBytes(b)
	}
}

func decodeData(d *wire.Decoder) any {
	switch d.Uint8() {
	case dataNil:
		return nil
	case dataBytes:
		return d.RawBytes()
	case dataString:
		return d.String()
	case dataInt:
		return int(d.Int64())
	default:
		b := d.RawBytesView()
		v, err := wire.Unmarshal(b)
		if err != nil {
			return nil
		}
		return v
	}
}

func encodeEntry(e *wire.Encoder, en Entry) {
	e.Uint64(en.Term)
	e.Int64(int64(en.Size))
	encodeData(e, en.Data)
}

func decodeEntry(d *wire.Decoder) Entry {
	var en Entry
	en.Term = d.Uint64()
	en.Size = int(d.Int64())
	en.Data = decodeData(d)
	return en
}

func init() {
	wire.Register(idVoteReq, "raft.voteReq",
		func(e *wire.Encoder, v voteReq) {
			e.Uint64(v.Term)
			e.Int32(int32(v.Candidate))
			e.Uint64(v.LastLogIndex)
			e.Uint64(v.LastLogTerm)
		},
		func(d *wire.Decoder) voteReq {
			return voteReq{
				Term:         d.Uint64(),
				Candidate:    transport.NodeID(d.Int32()),
				LastLogIndex: d.Uint64(),
				LastLogTerm:  d.Uint64(),
			}
		})
	wire.Register(idVoteResp, "raft.voteResp",
		func(e *wire.Encoder, v voteResp) {
			e.Uint64(v.Term)
			e.Bool(v.Granted)
		},
		func(d *wire.Decoder) voteResp {
			return voteResp{Term: d.Uint64(), Granted: d.Bool()}
		})
	wire.Register(idAppendReq, "raft.appendReq",
		func(e *wire.Encoder, v appendReq) {
			e.Uint64(v.Term)
			e.Int32(int32(v.Leader))
			e.Uint64(v.PrevIndex)
			e.Uint64(v.PrevTerm)
			e.Uint64(v.LeaderCommit)
			e.Uint32(uint32(len(v.Entries)))
			for _, en := range v.Entries {
				encodeEntry(e, en)
			}
		},
		func(d *wire.Decoder) appendReq {
			v := appendReq{
				Term:         d.Uint64(),
				Leader:       transport.NodeID(d.Int32()),
				PrevIndex:    d.Uint64(),
				PrevTerm:     d.Uint64(),
				LeaderCommit: d.Uint64(),
			}
			n := int(d.Uint32())
			if n > 0 && d.Err() == nil {
				v.Entries = make([]Entry, 0, n)
				for i := 0; i < n && d.Err() == nil; i++ {
					v.Entries = append(v.Entries, decodeEntry(d))
				}
			}
			return v
		})
	wire.Register(idAppendResp, "raft.appendResp",
		func(e *wire.Encoder, v appendResp) {
			e.Uint64(v.Term)
			e.Bool(v.Success)
			e.Uint64(v.Match)
		},
		func(d *wire.Decoder) appendResp {
			return appendResp{Term: d.Uint64(), Success: d.Bool(), Match: d.Uint64()}
		})
	wire.Register(idProposeReq, "raft.proposeReq",
		func(e *wire.Encoder, v proposeReq) {
			e.Int64(int64(v.Size))
			encodeData(e, v.Data)
		},
		func(d *wire.Decoder) proposeReq {
			v := proposeReq{Size: int(d.Int64())}
			v.Data = decodeData(d)
			return v
		})
	wire.Register(idProposeResp, "raft.proposeResp",
		func(e *wire.Encoder, v proposeResp) {
			e.Uint64(v.Index)
			e.Int32(int32(v.Hint))
			e.String(v.Err)
		},
		func(d *wire.Decoder) proposeResp {
			return proposeResp{
				Index: d.Uint64(),
				Hint:  transport.NodeID(d.Int32()),
				Err:   d.String(),
			}
		})
}
