package simnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

// codecMsg has a registered wire codec, so the network must move it through
// Marshal/Unmarshal rather than passing the Go value by reference.
type codecMsg struct {
	Tag  string
	Body []byte
}

func init() {
	wire.Register(901, "simnet.codecMsg",
		func(e *wire.Encoder, v codecMsg) {
			e.String(v.Tag)
			e.RawBytes(v.Body)
		},
		func(d *wire.Decoder) codecMsg {
			return codecMsg{Tag: d.String(), Body: d.RawBytes()}
		})
}

// TestRegisteredPayloadIsCopied verifies that a payload with a wire codec is
// encoded at the sender and decoded at the receiver: the handler sees an
// equal but distinct value, so mutating it cannot reach back into the
// caller's memory — the same isolation a process boundary gives.
func TestRegisteredPayloadIsCopied(t *testing.T) {
	rt, n := buildNet(t, Config{})
	sentBody := []byte{1, 2, 3}
	var gotReq codecMsg
	n.Node(1).Handle("copy", func(from NodeID, req any) (any, error) {
		gotReq = req.(codecMsg)
		gotReq.Body[0] = 99 // must not corrupt the sender's slice
		return codecMsg{Tag: "reply", Body: gotReq.Body}, nil
	})
	err := rt.Run(func() {
		resp, err := n.Call(0, 1, "copy", codecMsg{Tag: "req", Body: sentBody})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if sentBody[0] != 1 {
			t.Errorf("handler mutation reached the sender's slice: %v", sentBody)
		}
		got := resp.(codecMsg)
		if got.Tag != "reply" || !bytes.Equal(got.Body, []byte{99, 2, 3}) {
			t.Errorf("reply = %+v", got)
		}
		// The reply is decoded too: mutating it must not reach the handler's copy.
		got.Body[1] = 77
		if gotReq.Body[1] != 2 {
			t.Errorf("caller mutation reached the handler's slice: %v", gotReq.Body)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRegisteredPayloadChargedExactSize verifies that the bandwidth model
// charges the exact encoded byte count for codec-backed payloads rather than
// a Sizer guess: a 1 MiB body at 1 MB/s costs about a second each way.
func TestRegisteredPayloadChargedExactSize(t *testing.T) {
	rt, n := buildNet(t, Config{Bandwidth: 1e6, JitterFrac: -1})
	n.Node(1).Handle("sink", func(from NodeID, req any) (any, error) {
		return nil, nil
	})
	msg := codecMsg{Body: make([]byte, 1<<20)}
	size, ok := wire.Size(msg)
	if !ok || size < 1<<20 {
		t.Fatalf("wire.Size = %d, %t", size, ok)
	}
	err := rt.Run(func() {
		start := rt.Now()
		if _, err := n.CallTimeout(0, 1, "sink", msg, time.Minute); err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		elapsed := rt.Now() - start
		// Request pays ~1.05s of serialization; the nil reply is cheap.
		want := time.Duration(float64(size+n.Config().MsgOverhead) / 1e6 * float64(time.Second))
		if elapsed < want || elapsed > want+200*time.Millisecond {
			t.Errorf("1MiB codec payload at 1MB/s took %v, want ≥%v", elapsed, want)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestMulticastDrainsStragglers checks that a quorum-satisfied Multicast
// returns at the second-fastest reply and that the straggler tasks finish
// cleanly afterwards: the virtual run ends with every task complete (a
// leaked task blocked on a mailbox would deadlock the runtime).
func TestMulticastDrainsStragglers(t *testing.T) {
	rt, n := buildNet(t, Config{JitterFrac: -1, Bandwidth: -1})
	served := 0
	for _, id := range n.Nodes() {
		n.Node(id).Handle("echo", func(from NodeID, req any) (any, error) {
			served++
			return req, nil
		})
	}
	var returned, drained time.Duration
	err := rt.Run(func() {
		results := n.Multicast(0, []NodeID{0, 1, 2}, "echo", "q", 2, time.Second)
		returned = rt.Now()
		if got := len(Successes(results)); got < 2 {
			t.Errorf("successes = %d, want ≥2", got)
		}
		// Sleep past the slowest target (oregon, RTT 72.14ms) so its task has
		// delivered its straggler reply before the run ends.
		rt.Sleep(time.Second)
		drained = rt.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v (straggler task leaked?)", err)
	}
	if served != 3 {
		t.Errorf("served = %d, want all 3 targets handled", served)
	}
	// The caller came back at quorum (~54ms), not at the slowest reply.
	if returned > 60*time.Millisecond {
		t.Errorf("multicast returned at %v, want ≈54ms quorum time", returned)
	}
	if drained != returned+time.Second {
		t.Errorf("post-multicast sleep ended at %v, want %v", drained, returned+time.Second)
	}
}

// TestSendToMissingHandler: a one-way message to a node with no handler is
// dropped without constructing a reply or disturbing the caller.
func TestSendToMissingHandler(t *testing.T) {
	rt, n := buildNet(t, Config{})
	err := rt.Run(func() {
		n.Send(0, 1, "nobody-home", "x")
		rt.Sleep(time.Second) // let the message arrive and be discarded
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSendUnderPartition: one-way messages across a partition are dropped;
// after healing they flow again.
func TestSendUnderPartition(t *testing.T) {
	rt, n := buildNet(t, Config{})
	got := 0
	n.Node(1).Handle("cast", func(from NodeID, req any) (any, error) {
		got++
		return nil, nil
	})
	err := rt.Run(func() {
		n.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		n.Send(0, 1, "cast", "lost")
		rt.Sleep(time.Second)
		if got != 0 {
			t.Errorf("message crossed a partition: got = %d", got)
		}
		n.Heal()
		n.Send(0, 1, "cast", "delivered")
		rt.Sleep(time.Second)
		if got != 1 {
			t.Errorf("after heal got = %d, want 1", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSendCrashMidFlight: the destination crashes while a one-way message is
// in flight; delivery is suppressed at arrival, and a message sent after
// restart is delivered.
func TestSendCrashMidFlight(t *testing.T) {
	rt, n := buildNet(t, Config{JitterFrac: -1, Bandwidth: -1})
	got := 0
	n.Node(1).Handle("cast", func(from NodeID, req any) (any, error) {
		got++
		return nil, nil
	})
	err := rt.Run(func() {
		n.Send(0, 1, "cast", "doomed") // one-way ohio -> ncalifornia, ~27ms
		rt.Sleep(5 * time.Millisecond)
		n.Crash(1) // crash while the message is still on the wire
		rt.Sleep(time.Second)
		if got != 0 {
			t.Errorf("message delivered to crashed node: got = %d", got)
		}
		n.Restart(1)
		n.Send(0, 1, "cast", "ok")
		rt.Sleep(time.Second)
		if got != 1 {
			t.Errorf("after restart got = %d, want 1", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
