package simnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NodeID identifies a node within a Network. IDs are dense, site-major.
type NodeID = transport.NodeID

// Handler processes one inbound request on a node and returns the reply.
type Handler = transport.Handler

// Sizer lets a message without a wire codec declare its payload size in
// bytes so the network can still model NIC serialization and bandwidth.
// Messages with a registered codec (internal/wire) are charged their exact
// encoded size instead; Sizer is the fallback for protocol baselines (zab,
// raft, crdb) whose payloads never leave the process.
type Sizer interface {
	WireSize() int
}

// RemoteError wraps an application-level error returned by a remote
// handler, distinguishing it from transport failures such as timeouts.
type RemoteError = transport.RemoteError

// ErrTimeout is returned by Call when no reply arrives within the timeout
// (due to partitions, crashes, loss, or a down destination).
var ErrTimeout = transport.ErrTimeout

// ErrNoHandler is returned (as a RemoteError) when the destination has no
// handler registered for the service.
var ErrNoHandler = transport.ErrNoHandler

// Network implements the message plane contract; protocol code reaches it
// through the interface, tests and fault injection through the concrete
// type.
var _ transport.Transport = (*Network)(nil)

// Config describes the cluster to build.
type Config struct {
	// Profile supplies the inter-site latency matrix. Required.
	Profile *Profile
	// NodesPerSite is the number of nodes placed in each profile site.
	// Defaults to 1.
	NodesPerSite int
	// Workers is the per-node CPU worker count. Defaults to 8 (the paper's
	// testbed has eight cores per server).
	Workers int
	// Bandwidth is the per-node NIC egress rate in bytes/second. Defaults
	// to 125 MB/s (1 Gbit/s). Zero keeps the default; negative disables
	// bandwidth modeling.
	Bandwidth float64
	// JitterFrac adds uniform jitter of up to this fraction of the one-way
	// latency to each message. Defaults to 0.02.
	JitterFrac float64
	// MsgOverhead is the fixed per-message wire overhead in bytes added to
	// each message's payload size. Defaults to 256.
	MsgOverhead int
	// RPCTimeout is the default Call timeout. Defaults to 4s.
	RPCTimeout time.Duration
	// Seed seeds jitter and loss decisions (only used in virtual mode; the
	// runtime's own RNG is used regardless).
	Seed int64
	// Obs enables observability: RPCs made inside a traced operation emit
	// spans (rpc, NIC wait, link transit, CPU-queue wait, handler service
	// time) and the network keeps per-service counters and latency
	// histograms. Nil (the default) disables all of it at zero cost.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.NodesPerSite == 0 {
		c.NodesPerSite = 1
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 125e6
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.02
	}
	if c.MsgOverhead == 0 {
		c.MsgOverhead = 256
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 4 * time.Second
	}
	return c
}

// Network is the simulated (or live, depending on the runtime) multi-site
// cluster. All methods are safe to call from any task.
type Network struct {
	rt  sim.Runtime
	cfg Config
	obs *obs.Obs

	nodes []*Node

	mu      sync.Mutex
	loss    float64
	blocked map[[2]NodeID]bool
	closed  bool
}

// New builds a network of len(profile.Sites()) × NodesPerSite nodes over rt.
func New(rt sim.Runtime, cfg Config) *Network {
	cfg = cfg.withDefaults()
	if cfg.Profile == nil {
		panic("simnet: Config.Profile is required")
	}
	n := &Network{
		rt:      rt,
		cfg:     cfg,
		obs:     cfg.Obs,
		blocked: make(map[[2]NodeID]bool),
	}
	id := NodeID(0)
	for _, site := range cfg.Profile.Sites() {
		for i := 0; i < cfg.NodesPerSite; i++ {
			node := &Node{
				net:      n,
				id:       id,
				site:     site,
				up:       true,
				handlers: make(map[string]handlerSpec),
				exec:     newExecutor(rt, cfg.Workers),
			}
			n.nodes = append(n.nodes, node)
			id++
		}
	}
	return n
}

// Runtime returns the runtime the network was built on.
func (n *Network) Runtime() sim.Runtime { return n.rt }

// SetObs installs (or, with nil, removes) the observability sink after
// construction. Services built on the network reach the shared tracer and
// metrics registry through Obs.
func (n *Network) SetObs(o *obs.Obs) { n.obs = o }

// Obs returns the network's observability sink (nil when disabled).
func (n *Network) Obs() *obs.Obs { return n.obs }

// Tracer returns the network's tracer (nil when observability is disabled).
func (n *Network) Tracer() *obs.Tracer { return n.obs.Tracer() }

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns all node IDs.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, len(n.nodes))
	for i := range n.nodes {
		ids[i] = NodeID(i)
	}
	return ids
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node {
	return n.nodes[id]
}

// SiteOf returns the site name hosting id.
func (n *Network) SiteOf(id NodeID) string { return n.nodes[id].site }

// RTT returns the modeled round-trip time between two sites.
func (n *Network) RTT(a, b string) time.Duration { return n.cfg.Profile.RTT(a, b) }

// RPCTimeout returns the default Call timeout.
func (n *Network) RPCTimeout() time.Duration { return n.cfg.RPCTimeout }

// Handle registers h for service svc on node with zero modeled CPU cost.
func (n *Network) Handle(node NodeID, svc string, h Handler) {
	n.nodes[node].Handle(svc, h)
}

// HandleWithCost registers h for svc on node with a modeled CPU cost of
// base + perKB·(size/1KiB) per request.
func (n *Network) HandleWithCost(node NodeID, svc string, h Handler, base, perKB time.Duration) {
	n.nodes[node].HandleWithCost(svc, h, base, perKB)
}

// OnRestart registers a hook run when node restarts after a crash.
func (n *Network) OnRestart(node NodeID, fn func()) {
	n.nodes[node].OnRestart(fn)
}

// Work charges cost of modeled CPU time against node, blocking the caller
// until a worker has burned it.
func (n *Network) Work(node NodeID, cost time.Duration) {
	n.nodes[node].Work(cost)
}

// NodesInSite returns the IDs of all nodes in the named site.
func (n *Network) NodesInSite(site string) []NodeID {
	var ids []NodeID
	for _, node := range n.nodes {
		if node.site == site {
			ids = append(ids, node.id)
		}
	}
	return ids
}

// Close shuts down all node executors. Only needed in real-time mode; the
// virtual runtime unwinds abandoned tasks itself.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	for _, node := range n.nodes {
		node.exec.close()
	}
}

// Call sends req from -> to for service svc and waits for the reply using
// the default RPC timeout.
func (n *Network) Call(from, to NodeID, svc string, req any) (any, error) {
	return n.CallTimeout(from, to, svc, req, n.cfg.RPCTimeout)
}

// CallTimeout is Call with an explicit timeout. A transport failure
// (partition, loss, crash) surfaces as ErrTimeout; an error returned by the
// remote handler surfaces wrapped in RemoteError.
//
// When observability is enabled and the calling task is inside a traced
// operation, the call emits an rpc:<svc> span (always closed — a call into a
// crashed or partitioned node ends it failed at the timeout) with child
// spans for each modeled delay component.
func (n *Network) CallTimeout(from, to NodeID, svc string, req any, timeout time.Duration) (any, error) {
	tr := n.obs.Tracer()
	rpc := tr.Detached(tr.Current().Context(), "rpc:"+svc, n.rt.Now())
	rpc.Annotatef("route", "%s/n%d → %s/n%d", n.nodes[from].site, from, n.nodes[to].site, to)
	if n.obs != nil {
		start := n.rt.Now()
		defer func() {
			n.obs.Metrics().Histogram("simnet_rpc_latency", obs.Labels{"svc": svc, "site": n.nodes[from].site}).
				Observe(n.rt.Now() - start)
		}()
	}
	reply := sim.NewPromise[any](n.rt)
	n.dispatch(from, to, svc, req, reply, rpc.Context())
	resp, err := reply.AwaitTimeout(timeout)
	rpc.EndErr(err)
	return resp, err
}

// Send delivers req from -> to without waiting for a reply (best effort).
// Inside a traced operation the one-way message's components attach directly
// under the caller's current span.
func (n *Network) Send(from, to NodeID, svc string, req any) {
	tr := n.obs.Tracer()
	n.dispatch(from, to, svc, req, nil, tr.Current().Context())
}

// dispatch models the full path: sender NIC, propagation, receiver CPU
// admission, handler execution, and the reply trip back. parent is the span
// the delay-component spans hang off (zero when untraced).
//
// Payloads with a registered wire codec are marshaled at the sender and
// unmarshaled at the receiver, so the handler sees a decoded copy — every
// simulated RPC exercises the same encode/decode path the TCP transport
// uses, and the byte count charged to the NIC is the true encoded size.
func (n *Network) dispatch(from, to NodeID, svc string, req any, reply *sim.Promise[any], parent obs.SpanContext) {
	src, dst := n.nodes[from], n.nodes[to]
	tr := n.obs.Tracer()
	sent := n.rt.Now()
	encoded, size := n.encode(svc, req)
	nic, flight, ok := n.transit(src, dst, size)
	if !ok {
		n.countDrop(svc)
		return // lost; caller times out
	}
	if nic > 0 {
		tr.SpanAt(parent, "net.nic", sent, sent+nic)
	}
	tr.SpanAt(parent, "net.transit", sent+nic, sent+nic+flight)
	n.rt.After(nic+flight, func() {
		if !dst.isUp() {
			n.countDrop(svc)
			return
		}
		spec, ok := dst.handler(svc)
		if !ok {
			n.sendReply(dst, src, reply, nil, &RemoteError{Err: fmt.Errorf("%w: %q on node %d", ErrNoHandler, svc, to)}, parent)
			return
		}
		req := n.decode(svc, req, encoded)
		arrived := n.rt.Now()
		cost := spec.cost(size)
		dst.exec.admit(cost)
		if wait := n.rt.Now() - arrived - cost; wait > 0 {
			tr.SpanAt(parent, "net.cpuwait", arrived, arrived+wait)
		}
		if !dst.isUp() {
			n.countDrop(svc)
			return
		}
		// The serve span covers the modeled CPU burn plus the handler body,
		// and is installed task-current so nested RPCs the handler makes
		// parent under it.
		serve := tr.StartAt(parent, "serve:"+svc, n.rt.Now()-cost)
		serve.Annotatef("node", "%s/n%d", dst.site, dst.id)
		resp, err := spec.fn(from, req)
		serve.EndErr(err)
		if err != nil {
			err = &RemoteError{Err: err}
		}
		n.sendReply(dst, src, reply, resp, err, parent)
	})
}

// countDrop bumps the dropped-message counter (no-op when obs is disabled).
func (n *Network) countDrop(svc string) {
	if n.obs == nil {
		return
	}
	n.obs.Metrics().Counter("simnet_msgs_dropped_total", obs.Labels{"svc": svc}).Inc()
}

// sendReply models the reply trip; nil promise means a one-way Send.
// Successful replies go through the same encode/decode path as requests;
// errors stay in-process values (the TCP transport encodes them separately).
func (n *Network) sendReply(src, dst *Node, reply *sim.Promise[any], resp any, err error, parent obs.SpanContext) {
	if reply == nil {
		return
	}
	sent := n.rt.Now()
	var encoded []byte
	size := n.cfg.MsgOverhead
	if err == nil {
		encoded, size = n.encode("reply", resp)
	}
	nic, flight, ok := n.transit(src, dst, size)
	if !ok {
		return
	}
	tr := n.obs.Tracer()
	if nic > 0 {
		tr.SpanAt(parent, "net.nic", sent, sent+nic, obs.Annotation{Key: "dir", Value: "reply"})
	}
	tr.SpanAt(parent, "net.transit", sent+nic, sent+nic+flight, obs.Annotation{Key: "dir", Value: "reply"})
	n.rt.After(nic+flight, func() {
		if !dst.isUp() {
			return
		}
		if err != nil {
			reply.Reject(err)
			return
		}
		reply.Resolve(n.decode("reply", resp, encoded))
	})
}

// encode marshals msg through its registered wire codec, returning the
// encoded bytes and the modeled wire size (MsgOverhead plus the exact
// encoded length). Types without a codec — the in-process protocol
// baselines — fall back to their Sizer estimate and nil bytes.
func (n *Network) encode(svc string, msg any) (data []byte, size int) {
	if wire.Registered(msg) {
		data, err := wire.Marshal(msg)
		if err != nil {
			panic(fmt.Sprintf("simnet: marshal %q payload %T: %v", svc, msg, err))
		}
		return data, n.cfg.MsgOverhead + len(data)
	}
	size = n.cfg.MsgOverhead
	if s, ok := msg.(Sizer); ok {
		size += s.WireSize()
	}
	return nil, size
}

// decode reconstructs the receiver's copy of a payload produced by encode.
// Payloads without a codec pass through by reference. A decode failure is a
// codec bug (the bytes came straight from Marshal), so it panics loudly
// rather than dropping the message.
func (n *Network) decode(svc string, orig any, encoded []byte) any {
	if encoded == nil {
		return orig
	}
	msg, err := wire.Unmarshal(encoded)
	if err != nil {
		panic(fmt.Sprintf("simnet: unmarshal %q payload %T: %v", svc, orig, err))
	}
	return msg
}

// transit computes the one-way delivery delay from src to dst for a message
// of the given size, split into its two components: nic (sender NIC queueing
// plus serialization) and flight (propagation plus jitter), so tracing can
// report them as separate spans. ok is false if the message is dropped
// (either endpoint down, partitioned, or lost).
func (n *Network) transit(src, dst *Node, size int) (nic, flight time.Duration, ok bool) {
	if !src.isUp() || !dst.isUp() {
		return 0, 0, false
	}
	if src.id == dst.id {
		return 0, 20 * time.Microsecond, true // loopback: no NIC, no loss
	}

	n.mu.Lock()
	blocked := n.blocked[pairKey(src.id, dst.id)]
	loss := n.loss
	n.mu.Unlock()
	if blocked {
		return 0, 0, false
	}
	if loss > 0 && n.rt.Rand().Float64() < loss {
		return 0, 0, false
	}

	prop := n.cfg.Profile.OneWay(src.site, dst.site)
	jitter := time.Duration(0)
	if n.cfg.JitterFrac > 0 {
		jitter = time.Duration(n.rt.Rand().Float64() * n.cfg.JitterFrac * float64(prop))
	}
	return src.chargeNIC(n.rt.Now(), size, n.cfg.Bandwidth), prop + jitter, true
}

func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}
