package simnet

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Node is one machine in the network: a service registry, a CPU executor
// bounding how much work it can process per unit time, and a NIC whose
// egress serializes outbound bytes at the configured bandwidth.
type Node struct {
	net  *Network
	id   NodeID
	site string
	exec *executor

	mu        sync.Mutex
	up        bool
	handlers  map[string]handlerSpec
	onRestart []func()
	nicBusy   time.Duration
}

type handlerSpec struct {
	fn    Handler
	base  time.Duration
	perKB time.Duration
}

// cost returns the CPU time this request consumes on the node.
func (s handlerSpec) cost(size int) time.Duration {
	return s.base + time.Duration(float64(s.perKB)*float64(size)/1024)
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Site returns the node's site name.
func (n *Node) Site() string { return n.site }

// Handle registers h for service svc with zero modeled CPU cost.
func (n *Node) Handle(svc string, h Handler) {
	n.HandleWithCost(svc, h, 0, 0)
}

// HandleWithCost registers h for svc; each request consumes
// base + perKB·(size/1KiB) of one CPU worker before the handler runs, which
// is what bounds the node's saturation throughput.
func (n *Node) HandleWithCost(svc string, h Handler, base, perKB time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[svc] = handlerSpec{fn: h, base: base, perKB: perKB}
}

// OnRestart registers a hook run when the node restarts after a crash,
// letting services reset volatile state while keeping durable state.
func (n *Node) OnRestart(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onRestart = append(n.onRestart, fn)
}

func (n *Node) handler(svc string) (handlerSpec, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.handlers[svc]
	return s, ok
}

func (n *Node) isUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// Work charges cost of CPU time to this node's executor, blocking the
// caller until a worker has burned it. Coordinator-side logic (which runs
// in the client's task but "on" a node) uses this to model its CPU usage.
func (n *Node) Work(cost time.Duration) {
	if !n.isUp() {
		return
	}
	n.exec.admit(cost)
}

// chargeNIC reserves the sender NIC for size bytes and returns the total
// local delay (queueing behind earlier messages plus serialization).
func (n *Node) chargeNIC(now time.Duration, size int, bandwidth float64) time.Duration {
	if bandwidth <= 0 {
		return 0
	}
	ser := time.Duration(float64(size) / bandwidth * float64(time.Second))
	n.mu.Lock()
	defer n.mu.Unlock()
	start := now
	if n.nicBusy > start {
		start = n.nicBusy
	}
	n.nicBusy = start + ser
	return n.nicBusy - now
}

// Crash takes the node down: inbound and outbound messages drop and queued
// work is discarded on admission.
func (n *Network) Crash(id NodeID) {
	node := n.nodes[id]
	node.mu.Lock()
	node.up = false
	node.mu.Unlock()
}

// Restart brings a crashed node back up and runs its restart hooks.
func (n *Network) Restart(id NodeID) {
	node := n.nodes[id]
	node.mu.Lock()
	node.up = true
	hooks := append([]func(){}, node.onRestart...)
	node.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// SetLossRate drops each inter-node message independently with probability p.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = p
}

// PartitionNodes splits the cluster into the given groups; messages between
// nodes in different groups are dropped. Nodes absent from every group stay
// connected to all groups. Partitions replace any previous partition.
func (n *Network) PartitionNodes(groups ...[]NodeID) {
	group := make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			group[id] = gi + 1
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]NodeID]bool)
	for a := 0; a < len(n.nodes); a++ {
		for b := a + 1; b < len(n.nodes); b++ {
			ga, oka := group[NodeID(a)]
			gb, okb := group[NodeID(b)]
			if oka && okb && ga != gb {
				n.blocked[pairKey(NodeID(a), NodeID(b))] = true
			}
		}
	}
}

// PartitionSites partitions whole sites from each other.
func (n *Network) PartitionSites(groups ...[]string) {
	nodeGroups := make([][]NodeID, len(groups))
	for i, sites := range groups {
		for _, site := range sites {
			nodeGroups[i] = append(nodeGroups[i], n.NodesInSite(site)...)
		}
	}
	n.PartitionNodes(nodeGroups...)
}

// Isolate cuts a single node off from every other node.
func (n *Network) Isolate(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if NodeID(other) != id {
			n.blocked[pairKey(id, NodeID(other))] = true
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]NodeID]bool)
}

// executor is a node's CPU: a fixed pool of workers consuming admission
// requests in FIFO order. Handlers pay their modeled CPU cost here before
// running, so a node saturates at workers/servicetime requests per second.
type executor struct {
	rt sim.Runtime
	q  *sim.Mailbox[execJob]
}

type execJob struct {
	cost time.Duration
	done *sim.Promise[struct{}]
}

func newExecutor(rt sim.Runtime, workers int) *executor {
	e := &executor{rt: rt, q: sim.NewMailbox[execJob](rt)}
	for i := 0; i < workers; i++ {
		rt.Go(e.worker)
	}
	return e
}

func (e *executor) worker() {
	for {
		j, err := e.q.Recv()
		if err != nil {
			return
		}
		if j.cost > 0 {
			e.rt.Sleep(j.cost)
		}
		j.done.Resolve(struct{}{})
	}
}

// admit blocks until a worker has burned cost of CPU time for this request.
func (e *executor) admit(cost time.Duration) {
	if cost <= 0 {
		return
	}
	done := sim.NewPromise[struct{}](e.rt)
	e.q.Send(execJob{cost: cost, done: done})
	_, _ = done.Await()
}

func (e *executor) close() { e.q.Close() }
