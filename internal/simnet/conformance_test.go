package simnet

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// simCluster adapts the simulated network to the shared transport
// conformance suite: one fabric serves every node, and test bodies run
// inside the virtual scheduler.
type simCluster struct {
	rt *sim.Virtual
	n  *Network
}

func (c *simCluster) Transport(node transport.NodeID) transport.Transport { return c.n }

func (c *simCluster) Run(t *testing.T, fn func()) {
	t.Helper()
	if err := c.rt.Run(fn); err != nil {
		t.Fatalf("virtual run: %v", err)
	}
}

func (c *simCluster) Close() {}

// TestTransportConformance runs the backend-independent contract against the
// simulated network.
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Cluster {
		rt, n := buildNet(t, Config{})
		return &simCluster{rt: rt, n: n}
	})
}
