package simnet

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// simCluster adapts the simulated network to the shared transport
// conformance suite: one fabric serves every node, and test bodies run
// inside the virtual scheduler.
type simCluster struct {
	rt *sim.Virtual
	n  *Network
}

func (c *simCluster) Transport(node transport.NodeID) transport.Transport { return c.n }

func (c *simCluster) Run(t *testing.T, fn func()) {
	t.Helper()
	if err := c.rt.Run(fn); err != nil {
		t.Fatalf("virtual run: %v", err)
	}
}

func (c *simCluster) Close() {}

// Disrupt black-holes the whole fabric long enough to kill any in-flight
// exchange, then heals on its own — the simulated analogue of a TCP reset.
// It runs inside the scheduler (the suite calls it from a task).
func (c *simCluster) Disrupt(from, to transport.NodeID) {
	c.n.SetLossRate(1)
	c.rt.Go(func() {
		c.rt.Sleep(600 * time.Millisecond)
		c.n.SetLossRate(0)
	})
}

// TestTransportConformance runs the backend-independent contract against the
// simulated network.
func TestTransportConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Cluster {
		rt, n := buildNet(t, Config{})
		return &simCluster{rt: rt, n: n}
	})
}
