// Package simnet models a multi-site cluster on top of a sim.Runtime:
// sites connected by WAN links with configurable round-trip times (Table II
// of the paper), per-node NIC bandwidth with egress serialization, per-node
// CPU executors that bound throughput, and fault injection (partitions,
// message loss, crashes). All protocol traffic in this repository flows
// through a Network.
package simnet

import (
	"fmt"
	"time"
)

// Profile is a symmetric inter-site latency matrix. The paper's Table II
// profiles are predefined: Profile11, ProfileIUs and ProfileIUsEu.
type Profile struct {
	name  string
	sites []string
	rtt   map[sitePair]time.Duration
	local time.Duration // intra-site RTT between distinct nodes
}

type sitePair struct{ a, b string }

func orderedPair(a, b string) sitePair {
	if a > b {
		a, b = b, a
	}
	return sitePair{a, b}
}

// NewProfile creates an empty profile over the given sites with a default
// intra-site RTT of 200µs (the paper's same-metro figure).
func NewProfile(name string, sites ...string) *Profile {
	return &Profile{
		name:  name,
		sites: append([]string(nil), sites...),
		rtt:   make(map[sitePair]time.Duration),
		local: 200 * time.Microsecond,
	}
}

// Name returns the profile's display name.
func (p *Profile) Name() string { return p.name }

// Sites returns the site names in declaration order. The returned slice is
// a copy.
func (p *Profile) Sites() []string { return append([]string(nil), p.sites...) }

// SetRTT sets the symmetric round-trip time between sites a and b.
func (p *Profile) SetRTT(a, b string, rtt time.Duration) {
	p.rtt[orderedPair(a, b)] = rtt
}

// RTT returns the round-trip time between two sites. Same-site pairs use
// the intra-site RTT.
func (p *Profile) RTT(a, b string) time.Duration {
	if a == b {
		return p.local
	}
	if d, ok := p.rtt[orderedPair(a, b)]; ok {
		return d
	}
	panic(fmt.Sprintf("simnet: profile %q has no RTT for %s-%s", p.name, a, b))
}

// OneWay returns half the round-trip time between two sites.
func (p *Profile) OneWay(a, b string) time.Duration { return p.RTT(a, b) / 2 }

// Extend returns a copy of p (renamed to name) with additional sites
// appended — the substrate for live-membership scenarios, where a cluster
// starts on p's sites and spare sites join later. Every link touching a
// new site defaults to the worst inter-site RTT already in p (or the
// intra-site RTT when p has none); callers can override with SetRTT.
func (p *Profile) Extend(name string, spares ...string) *Profile {
	out := &Profile{
		name:  name,
		sites: append(p.Sites(), spares...),
		rtt:   make(map[sitePair]time.Duration, len(p.rtt)),
		local: p.local,
	}
	worst := p.local
	for k, d := range p.rtt {
		out.rtt[k] = d
		if d > worst {
			worst = d
		}
	}
	for _, s := range spares {
		for _, other := range out.sites {
			if other == s {
				continue
			}
			pair := orderedPair(s, other)
			if _, ok := out.rtt[pair]; !ok {
				out.rtt[pair] = worst
			}
		}
	}
	return out
}

// The paper's Table II latency profiles. RTTs are given in the order
// Site1-Site2, Site1-Site3, Site2-Site3 and mirror AWS inter-region
// measurements.
var (
	// Profile11 keeps all sites within one region (Ohio, Ohio, N. Virginia).
	Profile11 = tableII("11", "ohio-a", "ohio-b", "nvirginia",
		200*time.Microsecond, 15140*time.Microsecond, 15140*time.Microsecond)

	// ProfileIUs spans the continental US (Ohio, N. California, Oregon).
	ProfileIUs = tableII("IUs", "ohio", "ncalifornia", "oregon",
		53790*time.Microsecond, 72140*time.Microsecond, 24200*time.Microsecond)

	// ProfileIUsEu adds a transatlantic site (Ohio, N. California, Frankfurt).
	ProfileIUsEu = tableII("IUsEu", "ohio", "ncalifornia", "frankfurt",
		53790*time.Microsecond, 100560*time.Microsecond, 150740*time.Microsecond)

	// ProfileLocal is a fast three-site profile for examples and live demos.
	ProfileLocal = tableII("local", "site-a", "site-b", "site-c",
		2*time.Millisecond, 2*time.Millisecond, 2*time.Millisecond)
)

func tableII(name, s1, s2, s3 string, rtt12, rtt13, rtt23 time.Duration) *Profile {
	p := NewProfile(name, s1, s2, s3)
	p.SetRTT(s1, s2, rtt12)
	p.SetRTT(s1, s3, rtt13)
	p.SetRTT(s2, s3, rtt23)
	return p
}

// Profiles returns the paper's three evaluation profiles in Table II order.
func Profiles() []*Profile { return []*Profile{Profile11, ProfileIUs, ProfileIUsEu} }
