package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// echoMsg carries a payload size for bandwidth tests.
type echoMsg struct {
	Body string
	Size int
}

func (m echoMsg) WireSize() int { return m.Size }

// buildNet creates a 3-site network on a fresh virtual runtime.
func buildNet(t *testing.T, cfg Config) (*sim.Virtual, *Network) {
	t.Helper()
	rt := sim.New(1)
	if cfg.Profile == nil {
		cfg.Profile = ProfileIUs
	}
	return rt, New(rt, cfg)
}

func registerEcho(n *Network) {
	for _, id := range n.Nodes() {
		n.Node(id).Handle("echo", func(from NodeID, req any) (any, error) {
			return req, nil
		})
	}
}

func TestProfileRTTs(t *testing.T) {
	tests := []struct {
		profile *Profile
		a, b    string
		want    time.Duration
	}{
		{Profile11, "ohio-a", "ohio-b", 200 * time.Microsecond},
		{Profile11, "ohio-a", "nvirginia", 15140 * time.Microsecond},
		{ProfileIUs, "ohio", "ncalifornia", 53790 * time.Microsecond},
		{ProfileIUs, "ohio", "oregon", 72140 * time.Microsecond},
		{ProfileIUs, "ncalifornia", "oregon", 24200 * time.Microsecond},
		{ProfileIUsEu, "ncalifornia", "frankfurt", 150740 * time.Microsecond},
		{ProfileIUs, "ohio", "ohio", 200 * time.Microsecond},
	}
	for _, tt := range tests {
		if got := tt.profile.RTT(tt.a, tt.b); got != tt.want {
			t.Errorf("%s RTT(%s,%s) = %v, want %v", tt.profile.Name(), tt.a, tt.b, got, tt.want)
		}
		if got := tt.profile.RTT(tt.b, tt.a); got != tt.want {
			t.Errorf("%s RTT symmetric (%s,%s) = %v, want %v", tt.profile.Name(), tt.b, tt.a, got, tt.want)
		}
	}
}

func TestProfileUnknownPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown site pair")
		}
	}()
	ProfileIUs.RTT("ohio", "mars")
}

func TestCallRoundTripLatency(t *testing.T) {
	rt, n := buildNet(t, Config{JitterFrac: -1, Bandwidth: -1})
	registerEcho(n)
	err := rt.Run(func() {
		start := rt.Now()
		resp, err := n.Call(0, 1, "echo", "hi") // ohio -> ncalifornia
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if resp != "hi" {
			t.Errorf("resp = %v", resp)
		}
		rttWant := ProfileIUs.RTT("ohio", "ncalifornia")
		if got := rt.Now() - start; got != rttWant {
			t.Errorf("round trip = %v, want %v", got, rttWant)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCallSelfIsFast(t *testing.T) {
	rt, n := buildNet(t, Config{JitterFrac: -1})
	registerEcho(n)
	err := rt.Run(func() {
		start := rt.Now()
		if _, err := n.Call(0, 0, "echo", "x"); err != nil {
			t.Errorf("Call: %v", err)
		}
		if got := rt.Now() - start; got > time.Millisecond {
			t.Errorf("loopback call took %v", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCallNoHandler(t *testing.T) {
	rt, n := buildNet(t, Config{})
	err := rt.Run(func() {
		_, err := n.Call(0, 1, "nope", "x")
		var re *RemoteError
		if !errors.As(err, &re) || !errors.Is(err, ErrNoHandler) {
			t.Errorf("err = %v, want RemoteError wrapping ErrNoHandler", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCallRemoteApplicationError(t *testing.T) {
	rt, n := buildNet(t, Config{})
	boom := errors.New("boom")
	n.Node(1).Handle("fail", func(from NodeID, req any) (any, error) {
		return nil, boom
	})
	err := rt.Run(func() {
		_, err := n.Call(0, 1, "fail", "x")
		if !errors.Is(err, boom) {
			t.Errorf("err = %v, want wrapped boom", err)
		}
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Errorf("err %v is not a RemoteError", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCallToCrashedNodeTimesOut(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	n.Crash(2)
	err := rt.Run(func() {
		start := rt.Now()
		_, err := n.CallTimeout(0, 2, "echo", "x", time.Second)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if got := rt.Now() - start; got != time.Second {
			t.Errorf("timed out after %v, want 1s", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	restarted := false
	n.Node(2).OnRestart(func() { restarted = true })
	err := rt.Run(func() {
		n.Crash(2)
		if _, err := n.CallTimeout(0, 2, "echo", "x", 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("call to crashed node: err = %v, want timeout", err)
		}
		n.Restart(2)
		if _, err := n.Call(0, 2, "echo", "x"); err != nil {
			t.Errorf("call after restart: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !restarted {
		t.Fatal("restart hook did not run")
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	err := rt.Run(func() {
		n.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
		if _, err := n.CallTimeout(0, 1, "echo", "x", 200*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("cross-partition call: err = %v, want timeout", err)
		}
		if _, err := n.Call(1, 2, "echo", "x"); err != nil {
			t.Errorf("same-partition call: %v", err)
		}
		n.Heal()
		if _, err := n.Call(0, 1, "echo", "x"); err != nil {
			t.Errorf("call after heal: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestIsolate(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	err := rt.Run(func() {
		n.Isolate(1)
		if _, err := n.CallTimeout(0, 1, "echo", "x", 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("call to isolated node: err = %v, want timeout", err)
		}
		if _, err := n.Call(0, 2, "echo", "x"); err != nil {
			t.Errorf("call between connected nodes: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	n.SetLossRate(1.0)
	err := rt.Run(func() {
		if _, err := n.CallTimeout(0, 1, "echo", "x", 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want timeout under full loss", err)
		}
		n.SetLossRate(0)
		if _, err := n.Call(0, 1, "echo", "x"); err != nil {
			t.Errorf("call after loss cleared: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	// 1 MB at 1 MB/s should add about a second each way.
	rt, n := buildNet(t, Config{Bandwidth: 1e6, JitterFrac: -1})
	registerEcho(n)
	err := rt.Run(func() {
		start := rt.Now()
		if _, err := n.CallTimeout(0, 1, "echo", echoMsg{Size: 1 << 20}, time.Minute); err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		elapsed := rt.Now() - start
		if elapsed < 2*time.Second || elapsed > 3*time.Second {
			t.Errorf("1MB echo at 1MB/s took %v, want ~2.1s", elapsed)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNICQueueingSharedAcrossMessages(t *testing.T) {
	// Two large sends from the same node must serialize on its NIC.
	rt, n := buildNet(t, Config{Bandwidth: 1e6, JitterFrac: -1})
	registerEcho(n)
	err := rt.Run(func() {
		done := sim.NewMailbox[time.Duration](rt)
		for i := 0; i < 2; i++ {
			rt.Go(func() {
				if _, err := n.CallTimeout(0, 1, "echo", echoMsg{Size: 1 << 20}, time.Minute); err != nil {
					t.Errorf("Call: %v", err)
				}
				done.Send(rt.Now())
			})
		}
		var last time.Duration
		for i := 0; i < 2; i++ {
			at, err := done.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if at > last {
				last = at
			}
		}
		// Second message waits ~1s behind the first on egress.
		if last < 3*time.Second {
			t.Errorf("second transfer finished at %v, want >3s due to NIC queueing", last)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExecutorBoundsThroughput(t *testing.T) {
	// One worker, 10ms per op: 100 requests take about a second on the
	// destination regardless of client concurrency.
	rt, n := buildNet(t, Config{Workers: 1, JitterFrac: -1, Profile: ProfileLocal})
	n.Node(1).HandleWithCost("work", func(from NodeID, req any) (any, error) {
		return nil, nil
	}, 10*time.Millisecond, 0)
	err := rt.Run(func() {
		done := sim.NewMailbox[struct{}](rt)
		for i := 0; i < 100; i++ {
			rt.Go(func() {
				if _, err := n.CallTimeout(0, 1, "work", nil, time.Minute); err != nil {
					t.Errorf("Call: %v", err)
				}
				done.Send(struct{}{})
			})
		}
		for i := 0; i < 100; i++ {
			if _, err := done.Recv(); err != nil {
				t.Fatalf("Recv: %v", err)
			}
		}
		if rt.Now() < time.Second {
			t.Errorf("100 × 10ms ops on 1 worker finished in %v, want ≥1s", rt.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExecutorParallelWorkers(t *testing.T) {
	rt, n := buildNet(t, Config{Workers: 8, JitterFrac: -1, Profile: ProfileLocal})
	n.Node(1).HandleWithCost("work", func(from NodeID, req any) (any, error) {
		return nil, nil
	}, 10*time.Millisecond, 0)
	err := rt.Run(func() {
		done := sim.NewMailbox[struct{}](rt)
		for i := 0; i < 80; i++ {
			rt.Go(func() {
				if _, err := n.CallTimeout(0, 1, "work", nil, time.Minute); err != nil {
					t.Errorf("Call: %v", err)
				}
				done.Send(struct{}{})
			})
		}
		for i := 0; i < 80; i++ {
			if _, err := done.Recv(); err != nil {
				t.Fatalf("Recv: %v", err)
			}
		}
		// 80 ops / 8 workers = 10 serial slots of 10ms ≈ 100ms + RTTs.
		if rt.Now() > 200*time.Millisecond {
			t.Errorf("8-worker node took %v for 80 ops, want ~110ms", rt.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMulticastQuorum(t *testing.T) {
	rt, n := buildNet(t, Config{JitterFrac: -1})
	registerEcho(n)
	err := rt.Run(func() {
		start := rt.Now()
		results := n.Multicast(0, []NodeID{0, 1, 2}, "echo", "q", 2, time.Second)
		if got := len(Successes(results)); got < 2 {
			t.Errorf("successes = %d, want ≥2", got)
		}
		// Quorum of {self, ncal, oregon} from ohio: second-fastest is ncal
		// (RTT 53.79ms), so the call should return well before oregon's 72ms.
		if d := rt.Now() - start; d > 60*time.Millisecond {
			t.Errorf("quorum multicast took %v, want ≈54ms", d)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMulticastWithCrashedTarget(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	n.Crash(2)
	err := rt.Run(func() {
		results := n.Multicast(0, []NodeID{0, 1, 2}, "echo", "q", 2, time.Second)
		if got := len(Successes(results)); got != 2 {
			t.Errorf("successes = %d, want 2", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMulticastAllDownTimesOut(t *testing.T) {
	rt, n := buildNet(t, Config{})
	registerEcho(n)
	n.Crash(1)
	n.Crash(2)
	err := rt.Run(func() {
		start := rt.Now()
		results := n.Multicast(0, []NodeID{1, 2}, "echo", "q", 2, 300*time.Millisecond)
		if got := len(Successes(results)); got != 0 {
			t.Errorf("successes = %d, want 0", got)
		}
		if d := rt.Now() - start; d < 300*time.Millisecond {
			t.Errorf("returned after %v, want full 300ms timeout", d)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNodesAndSites(t *testing.T) {
	_, n := buildNet(t, Config{NodesPerSite: 3})
	if got := len(n.Nodes()); got != 9 {
		t.Fatalf("Nodes = %d, want 9", got)
	}
	if got := n.SiteOf(0); got != "ohio" {
		t.Errorf("SiteOf(0) = %q", got)
	}
	if got := n.SiteOf(8); got != "oregon" {
		t.Errorf("SiteOf(8) = %q", got)
	}
	if got := len(n.NodesInSite("ncalifornia")); got != 3 {
		t.Errorf("NodesInSite = %d, want 3", got)
	}
}

func TestSendOneWay(t *testing.T) {
	rt, n := buildNet(t, Config{})
	err := rt.Run(func() {
		got := sim.NewMailbox[any](rt)
		n.Node(1).Handle("cast", func(from NodeID, req any) (any, error) {
			got.Send(req)
			return nil, nil
		})
		n.Send(0, 1, "cast", "fire-and-forget")
		v, err := got.RecvTimeout(time.Second)
		if err != nil || v != "fire-and-forget" {
			t.Errorf("one-way message = (%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNetworkOnRealRuntime(t *testing.T) {
	rt := sim.NewReal(1)
	n := New(rt, Config{Profile: ProfileLocal, JitterFrac: -1})
	defer n.Close()
	registerEcho(n)
	resp, err := n.Call(0, 1, "echo", "live")
	if err != nil || resp != "live" {
		t.Fatalf("live Call = (%v, %v)", resp, err)
	}
}
