package simnet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// findSpans walks a span tree collecting every node with the given name.
func findSpans(roots []*obs.SpanNode, name string) []*obs.SpanNode {
	var out []*obs.SpanNode
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		if n.Span.Name == name {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// TestTracedCallSpanTree drives one traced RPC and checks the emitted span
// tree: rpc:echo under the root, with transit legs and a serve span under
// the rpc, all consistent with the modeled delays.
func TestTracedCallSpanTree(t *testing.T) {
	rt := sim.New(1)
	o := obs.New(rt, obs.Options{})
	n := New(rt, Config{Profile: ProfileIUs, Obs: o})
	registerEcho(n)

	var root *obs.Span
	err := rt.Run(func() {
		root = o.Tracer().StartRoot("op")
		if _, err := n.Call(0, 1, "echo", echoMsg{Body: "hi", Size: 4096}); err != nil {
			t.Errorf("Call: %v", err)
		}
		root.End()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	roots := o.Tracer().Trace(root.Trace)
	if len(roots) != 1 {
		t.Fatalf("want one root, got %d", len(roots))
	}
	rpcs := findSpans(roots, "rpc:echo")
	if len(rpcs) != 1 {
		t.Fatalf("want one rpc:echo span, got %d", len(rpcs))
	}
	rpc := rpcs[0]
	if rpc.Span.Failed {
		t.Errorf("rpc span failed: %+v", rpc.Span)
	}
	transits := findSpans([]*obs.SpanNode{rpc}, "net.transit")
	if len(transits) != 2 {
		t.Fatalf("want request+reply transit spans, got %d", len(transits))
	}
	if len(findSpans([]*obs.SpanNode{rpc}, "net.nic")) == 0 {
		t.Error("no net.nic span for a 4KB payload")
	}
	serves := findSpans([]*obs.SpanNode{rpc}, "serve:echo")
	if len(serves) != 1 {
		t.Fatalf("want one serve span, got %d", len(serves))
	}
	oneWay := ProfileIUs.OneWay("ohio", "ncalifornia")
	if d := transits[0].Span.Finish - transits[0].Span.Start; d < oneWay {
		t.Errorf("request transit %v shorter than one-way latency %v", d, oneWay)
	}

	// The RPC must also land in the latency histogram.
	var text strings.Builder
	o.Metrics().WriteText(&text)
	if !strings.Contains(text.String(), `simnet_rpc_latency_count{site="ohio",svc="echo"} 1`) {
		t.Errorf("rpc latency metric missing:\n%s", text.String())
	}
}

// TestTracedCallToCrashedNodeFailsSpan is the crash-path regression test: a
// traced Call into a node that crashes mid-flight must terminate (via the
// RPC timeout) and its span must be closed and marked failed — never left
// open or hanging.
func TestTracedCallToCrashedNodeFailsSpan(t *testing.T) {
	rt := sim.New(1)
	o := obs.New(rt, obs.Options{})
	n := New(rt, Config{Profile: ProfileIUs, RPCTimeout: 500 * time.Millisecond, Obs: o})
	registerEcho(n)

	var root *obs.Span
	err := rt.Run(func() {
		root = o.Tracer().StartRoot("op")
		n.Crash(1)
		start := rt.Now()
		_, callErr := n.Call(0, 1, "echo", "hi")
		if !errors.Is(callErr, ErrTimeout) {
			t.Errorf("Call to crashed node: err = %v, want timeout", callErr)
		}
		if rt.Now()-start != 500*time.Millisecond {
			t.Errorf("call terminated after %v, want exactly the 500ms timeout", rt.Now()-start)
		}
		root.End()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	rpcs := findSpans(o.Tracer().Trace(root.Trace), "rpc:echo")
	if len(rpcs) != 1 {
		t.Fatalf("want one rpc span, got %d", len(rpcs))
	}
	s := rpcs[0].Span
	if !s.Failed || !strings.Contains(s.Err, "timeout") {
		t.Errorf("rpc span into crashed node not marked failed: %+v", s)
	}
	if s.Finish == 0 {
		t.Error("rpc span never closed")
	}
}

// TestTracedCallCrashAfterDelivery covers the other drop point: the target
// crashes after the request is in flight but before the reply returns (the
// post-admit isUp check / reply transit drop). The caller must still
// terminate with a failed span.
func TestTracedCallCrashAfterDelivery(t *testing.T) {
	rt := sim.New(1)
	o := obs.New(rt, obs.Options{})
	n := New(rt, Config{Profile: ProfileIUs, RPCTimeout: 500 * time.Millisecond, Obs: o})
	// Handler crashes its own node, so the reply leg must be dropped.
	n.Node(1).Handle("boom", func(from NodeID, req any) (any, error) {
		n.Crash(1)
		return "never delivered", nil
	})

	var root *obs.Span
	err := rt.Run(func() {
		root = o.Tracer().StartRoot("op")
		_, callErr := n.Call(0, 1, "boom", "hi")
		if !errors.Is(callErr, ErrTimeout) {
			t.Errorf("err = %v, want timeout", callErr)
		}
		root.End()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rpcs := findSpans(o.Tracer().Trace(root.Trace), "rpc:boom")
	if len(rpcs) != 1 || !rpcs[0].Span.Failed {
		t.Fatalf("rpc span not failed after mid-flight crash: %+v", rpcs)
	}
}

// TestMulticastUmbrellaSpan checks the fan-out grouping: per-target rpc
// spans nest under one multicast span.
func TestMulticastUmbrellaSpan(t *testing.T) {
	rt := sim.New(1)
	o := obs.New(rt, obs.Options{})
	n := New(rt, Config{Profile: ProfileIUs, Obs: o})
	registerEcho(n)

	var root *obs.Span
	err := rt.Run(func() {
		root = o.Tracer().StartRoot("op")
		res := n.Multicast(0, []NodeID{1, 2}, "echo", "hi", 2, time.Second)
		if len(Successes(res)) != 2 {
			t.Errorf("multicast successes = %d, want 2", len(Successes(res)))
		}
		root.End()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	roots := o.Tracer().Trace(root.Trace)
	mcs := findSpans(roots, "multicast:echo")
	if len(mcs) != 1 {
		t.Fatalf("want one multicast span, got %d", len(mcs))
	}
	if got := len(findSpans(mcs, "rpc:echo")); got != 2 {
		t.Errorf("rpc spans under multicast = %d, want 2", got)
	}
}

// TestUntracedCallEmitsNoSpans: with obs enabled but no active trace, RPCs
// record metrics only — no spans (mid-stack instrumentation never roots).
func TestUntracedCallEmitsNoSpans(t *testing.T) {
	rt := sim.New(1)
	o := obs.New(rt, obs.Options{})
	n := New(rt, Config{Profile: ProfileIUs, Obs: o})
	registerEcho(n)
	err := rt.Run(func() {
		if _, err := n.Call(0, 1, "echo", "hi"); err != nil {
			t.Errorf("Call: %v", err)
		}
		n.Multicast(0, []NodeID{1, 2}, "echo", "hi", 2, time.Second)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ids := o.Tracer().TraceIDs(0); len(ids) != 0 {
		t.Fatalf("untraced traffic created traces: %v", ids)
	}
}
