package simnet

import (
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// CallResult is one target's outcome in a Multicast.
type CallResult = transport.CallResult

// Multicast sends req to every target in parallel and collects replies until
// `need` of them have succeeded, all targets have answered or failed, or the
// timeout elapses — whichever comes first. It returns the results gathered
// so far; callers count successes themselves. This is the primitive behind
// quorum reads/writes, Paxos rounds and log replication.
func (n *Network) Multicast(from NodeID, targets []NodeID, svc string, req any, need int, timeout time.Duration) []CallResult {
	// The umbrella span is installed task-current before the fan-out so the
	// per-target tasks (which inherit the spawner's task-local) parent their
	// rpc spans under it.
	mc := n.obs.Tracer().Child("multicast:" + svc)
	mc.Annotatef("fanout", "%d targets, need %d", len(targets), need)

	results := sim.NewMailbox[CallResult](n.rt)
	// Closing the mailbox on return turns straggler sends (targets that
	// answer after the quorum is satisfied) into dropped no-ops, so the
	// fan-out tasks finish without blocking on a reader that has moved on.
	defer results.Close()
	for _, to := range targets {
		to := to
		n.rt.Go(func() {
			resp, err := n.CallTimeout(from, to, svc, req, timeout)
			results.Send(CallResult{From: to, Resp: resp, Err: err})
		})
	}

	deadline := n.rt.Now() + timeout
	collected := make([]CallResult, 0, len(targets))
	successes := 0
	for len(collected) < len(targets) {
		remaining := deadline - n.rt.Now()
		if remaining <= 0 {
			break
		}
		r, err := results.RecvTimeout(remaining)
		if err != nil {
			break
		}
		collected = append(collected, r)
		if r.Err == nil {
			successes++
			if need > 0 && successes >= need {
				break
			}
		}
	}
	mc.Annotatef("got", "%d/%d ok", successes, len(targets))
	if need > 0 && successes < need {
		mc.Fail(nil)
	}
	mc.End()
	return collected
}

// Successes filters a Multicast result set down to successful replies.
func Successes(results []CallResult) []CallResult {
	return transport.Successes(results)
}
