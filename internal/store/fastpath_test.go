package store

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// fixtureObs is fixture with the observability subsystem on, so tests can
// assert on the fast path's counters, and with two nodes per site so a
// coordinator is not always a replica of every key.
func fixtureObs(t *testing.T, cfg Config, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster, ob *obs.Obs)) {
	t.Helper()
	rt := sim.New(7)
	ob := obs.New(rt, obs.Options{})
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, NodesPerSite: 2, Obs: ob})
	c := New(net, cfg)
	if err := rt.Run(func() { fn(rt, net, c, ob) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func counterTotal(ob *obs.Obs, name string) int64 {
	var total int64
	for _, p := range ob.Metrics().Snapshot() {
		if p.Name == name {
			total += int64(p.Value)
		}
	}
	return total
}

func TestDigestReadMatchesFullRead(t *testing.T) {
	fixtureObs(t, Config{DigestReads: true}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, ob *obs.Obs) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("hello"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got := string(row["v"].Value); got != "hello" {
			t.Fatalf("Get = %q, want hello", got)
		}
		if n := counterTotal(ob, "store_digest_mismatch_total"); n != 0 {
			t.Fatalf("digest mismatches on converged replicas = %d, want 0", n)
		}
		// A digest quorum read moves one full payload plus 8-byte digests to
		// the coordinator — strictly less than the `need` full payloads of
		// the ordinary quorum path (puts count no read bytes, so the counter
		// is the read alone).
		digestBytes := counterTotal(ob, "store_read_bytes_total")
		size := int64(rowSize(row))
		if digestBytes < size || digestBytes >= 2*size {
			t.Fatalf("digest read moved %d coordinator bytes, want [%d, %d) — one payload plus digests", digestBytes, size, 2*size)
		}
	})
}

func TestDigestMismatchFallsBackAndRepairs(t *testing.T) {
	fixtureObs(t, Config{DigestReads: true, NoHintedHandoff: true}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, ob *obs.Obs) {
		const key = "k"
		targets := c.ReplicasFor(key)
		stale := targets[0]
		var writer simnet.NodeID = targets[1]

		// Make targets[0] stale: it misses a quorum write while crashed
		// (hinted handoff disabled), then restarts with its old state.
		net.Crash(stale)
		if err := c.Client(writer).Put(tbl, key, val("v2"), Quorum); err != nil {
			t.Fatalf("Put during crash: %v", err)
		}
		net.Restart(stale)

		// Reading with the stale node as coordinator serves the full data
		// from itself (nearest); the fresh replicas' digests disagree, so
		// the read must fall back to the full quorum path and still return
		// the new value.
		row, err := c.Client(stale).Get(tbl, key, Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got := string(row["v"].Value); got != "v2" {
			t.Fatalf("Get after mismatch = %q, want v2", got)
		}
		if n := counterTotal(ob, "store_digest_mismatch_total"); n == 0 {
			t.Fatal("expected store_digest_mismatch_total > 0")
		}
		// The fallback's read repair must converge the stale replica.
		rt.Sleep(2 * time.Second)
		dumped := c.replicas[stale].dump(tbl, key)
		if got := string(dumped["v"].Value); got != "v2" {
			t.Fatalf("stale replica after repair = %q, want v2", got)
		}
	})
}

func TestOneReadFallsBackToNextNearest(t *testing.T) {
	fixtureObs(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, ob *obs.Obs) {
		const key = "k"
		// Coordinate from a node outside the replica set so crashing the
		// nearest replica doesn't take the caller down with it.
		coord := simnet.NodeID(0)
		for contains(c.ReplicasFor(key), coord) {
			coord++
		}
		cl := c.Client(coord)
		if err := cl.Put(tbl, key, val("hello"), All); err != nil {
			t.Fatalf("Put: %v", err)
		}
		nearest := cl.byDistance(c.ReplicasFor(key))[0]
		net.Crash(nearest)

		row, err := cl.Get(tbl, key, One)
		if err != nil {
			t.Fatalf("ONE read with nearest replica down: %v (want fallback to next replica)", err)
		}
		if got := string(row["v"].Value); got != "hello" {
			t.Fatalf("ONE read = %q, want hello", got)
		}
		if n := counterTotal(ob, "store_one_fallbacks_total"); n == 0 {
			t.Fatal("expected store_one_fallbacks_total > 0")
		}

		// All replicas down: the read must still fail with ErrUnavailable.
		for _, id := range c.ReplicasFor(key) {
			net.Crash(id)
		}
		if _, err := cl.Get(tbl, key, One); err == nil {
			t.Fatal("ONE read with all replicas down succeeded")
		}
	})
}

func TestPutAsyncSettlesAndLands(t *testing.T) {
	fixtureObs(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster, ob *obs.Obs) {
		cl := c.Client(0)
		issued := rt.Now()
		h1 := cl.PutAsync(tbl, "k", val("v1"), Quorum)
		h2 := cl.PutAsync(tbl, "k", val("v2"), Quorum)
		if d := rt.Now() - issued; d > 10*time.Millisecond {
			t.Fatalf("PutAsync blocked %v — must not wait for WAN acks", d)
		}
		if err := h1.Wait(); err != nil {
			t.Fatalf("Wait h1: %v", err)
		}
		if err := h2.Wait(); err != nil {
			t.Fatalf("Wait h2: %v", err)
		}
		if !h1.Settled() || !h2.Settled() {
			t.Fatal("handles not settled after Wait")
		}
		// Issue order fixed the timestamps: v2 (stamped later) wins.
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got := string(row["v"].Value); got != "v2" {
			t.Fatalf("Get = %q, want v2 (last issued write wins)", got)
		}

		// A write that cannot reach a quorum must settle with an error.
		for _, id := range c.ReplicasFor("k2") {
			net.Crash(id)
		}
		var coord simnet.NodeID
		for _, id := range c.Nodes() {
			crashed := false
			for _, r := range c.ReplicasFor("k2") {
				if id == r {
					crashed = true
				}
			}
			if !crashed {
				coord = id
				break
			}
		}
		h := c.Client(coord).PutAsync(tbl, "k2", val("x"), Quorum)
		if err := h.Wait(); err == nil {
			t.Fatal("PutAsync with all replicas down settled without error")
		}
	})
}

func TestResolvedPut(t *testing.T) {
	if err := ResolvedPut(nil).Wait(); err != nil {
		t.Fatalf("ResolvedPut(nil).Wait = %v", err)
	}
	if !ResolvedPut(nil).Settled() {
		t.Fatal("ResolvedPut not settled")
	}
	if err := ResolvedPut(ErrUnavailable).Wait(); err != ErrUnavailable {
		t.Fatalf("ResolvedPut(err).Wait = %v, want ErrUnavailable", err)
	}
}
