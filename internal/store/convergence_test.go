package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestEventualConvergenceUnderChaos is a property test over random
// schedules: clients write from every site while partitions come and go;
// after the network heals and anti-entropy (handoff + read repair) runs,
// every replica holds the identical winning cell for every key.
func TestEventualConvergenceUnderChaos(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rt := sim.New(seed)
			rt.SetScheduleShuffle(true)
			net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, Seed: seed})
			c := New(net, Config{Timeout: 500 * time.Millisecond})

			err := rt.Run(func() {
				// Chaos: flip partitions a few times while writers run.
				rt.Go(func() {
					sites := simnet.ProfileIUs.Sites()
					for i := 0; i < 4; i++ {
						rt.Sleep(time.Duration(200+rt.Rand().Intn(400)) * time.Millisecond)
						victim := sites[rt.Rand().Intn(len(sites))]
						others := make([]string, 0, 2)
						for _, s := range sites {
							if s != victim {
								others = append(others, s)
							}
						}
						net.PartitionSites([]string{victim}, others)
						rt.Sleep(time.Duration(200+rt.Rand().Intn(300)) * time.Millisecond)
						net.Heal()
					}
				})

				done := sim.NewMailbox[struct{}](rt)
				const writers, writes, keys = 3, 8, 4
				for wi := 0; wi < writers; wi++ {
					wi := wi
					cl := c.Client(simnet.NodeID(wi))
					rt.Go(func() {
						defer done.Send(struct{}{})
						for i := 0; i < writes; i++ {
							key := fmt.Sprintf("k%d", rt.Rand().Intn(keys))
							val := fmt.Sprintf("w%d-%d", wi, i)
							// Quorum writes may fail during partitions;
							// that's allowed — the write may still land on
							// a minority and must not corrupt convergence.
							_ = cl.Put(tbl, key, Row{"v": Cell{Value: []byte(val)}}, Quorum)
							rt.Sleep(time.Duration(50+rt.Rand().Intn(150)) * time.Millisecond)
						}
					})
				}
				for wi := 0; wi < writers; wi++ {
					if _, err := done.RecvTimeout(10 * time.Minute); err != nil {
						t.Fatalf("writer stuck: %v", err)
					}
				}
				net.Heal()
				// Let hinted handoff retries drain, then force read repair
				// with ALL-consistency reads.
				rt.Sleep(30 * time.Second)
				for k := 0; k < keys; k++ {
					_, _ = c.Client(0).Get(tbl, fmt.Sprintf("k%d", k), All)
				}
				rt.Sleep(5 * time.Second)

				// Convergence: all replicas of each key agree exactly.
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("k%d", k)
					var ref Row
					for i, id := range c.ReplicasFor(key) {
						got := c.replicas[id].dump(tbl, key)
						if i == 0 {
							ref = got
							continue
						}
						if !sameRow(ref, got) {
							t.Errorf("key %s: replica %d diverged: %v vs %v", key, id, ref, got)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

func sameRow(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for col, ca := range a {
		cb, ok := b[col]
		if !ok || ca.TS != cb.TS || ca.Deleted != cb.Deleted || string(ca.Value) != string(cb.Value) {
			return false
		}
	}
	return true
}
