package store

import (
	"fmt"

	"repro/internal/transport"
)

// State transfer: the pull-based catch-up path a node uses when it starts
// owning keys it has never seen — a site joining the cluster, a retire
// that widens the survivors' ranges, or a process restarting with an
// empty engine. The requester asks each peer for the rows whose *current*
// placement includes the requester and merges them through the same
// cell-wise LWW rules as a replicated write, so a transfer is just a bulk
// hinted handoff: idempotent, commutative and safe to repeat. Read repair
// and handoff then converge any rows written while the transfer ran.
//
// Paxos acceptor state is deliberately not transferred: a fresh acceptor
// can only make a CAS quorum more conservative (it promises from zero),
// and the epoch fence in internal/core keeps critical sections from
// spanning the placement change itself.
const svcTransfer = "store.transfer"

type transferReq struct {
	// Requester is the node asking; the responder filters its rows by the
	// requester's place in the responder's current ring.
	Requester transport.NodeID
}

type transferRow struct {
	Table, Key string
	Cells      Row
}

type transferResp struct {
	Epoch int64
	Rows  []transferRow
}

// registerTransfer installs the transfer responder for a local node.
func (c *Cluster) registerTransfer(id transport.NodeID, r *replica) {
	c.net.HandleWithCost(id, svcTransfer, func(from transport.NodeID, req any) (any, error) {
		m := req.(transferReq)
		resp := transferResp{Epoch: c.Epoch()}
		ring := c.ringNow()
		var buf [8]transport.NodeID
		for i := range r.stripes {
			s := &r.stripes[i]
			s.mu.Lock()
			for table, rows := range s.tables {
				for key, rs := range rows {
					replicas := buf[:0]
					ring.replicasInto(key, &replicas)
					if !contains(replicas, m.Requester) {
						continue
					}
					resp.Rows = append(resp.Rows, transferRow{Table: table, Key: key, Cells: rs.cells.clone()})
				}
			}
			s.mu.Unlock()
		}
		return resp, nil
	}, c.cfg.Costs.ReplicaRead, c.cfg.Costs.PerKB)
}

// mergeRow folds cells into the local engine (the receive half of a
// transfer), returning true if anything changed.
func (r *replica) mergeRow(table, key string, cells Row) bool {
	s := r.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(table, key, true)
	return mergeInto(rs.cells, cells)
}

// PullFrom asks peer for every row the local node should now hold and
// merges the responses locally. It returns the number of rows that
// changed local state.
func (c *Cluster) PullFrom(node, peer transport.NodeID) (int, error) {
	r, ok := c.replicas[node]
	if !ok {
		return 0, fmt.Errorf("store: node %d is not local", node)
	}
	resp, err := c.net.CallTimeout(node, peer, svcTransfer, transferReq{Requester: node}, 4*c.cfg.Timeout)
	if err != nil {
		return 0, err
	}
	m := resp.(transferResp)
	changed := 0
	for _, row := range m.Rows {
		if r.mergeRow(row.Table, row.Key, row.Cells) {
			changed++
		}
	}
	return changed, nil
}

// SyncLocal pulls state into every local node from the given peers (the
// current members by default). It is the catch-up step run after a
// membership change and at process startup after a crash-restart; errors
// from individual peers are tolerated as long as at least one peer per
// local node answered (quorum intersection plus read repair covers the
// rest). It returns the total number of rows changed.
func (c *Cluster) SyncLocal(peers []transport.NodeID) (int, error) {
	if len(peers) == 0 {
		peers = c.MemberNodes()
	}
	total := 0
	for node := range c.replicas {
		answered := 0
		var lastErr error
		for _, peer := range peers {
			if peer == node {
				continue
			}
			n, err := c.PullFrom(node, peer)
			if err != nil {
				lastErr = err
				continue
			}
			answered++
			total += n
		}
		if answered == 0 && lastErr != nil {
			return total, fmt.Errorf("store: transfer into node %d: %w", node, lastErr)
		}
	}
	return total, nil
}
