package store

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/paxos"
	"repro/internal/wire"
)

// randRow builds a random row, sometimes nil, sometimes empty, with random
// cells including tombstones and nil values.
func randRow(rng *rand.Rand) Row {
	switch rng.Intn(5) {
	case 0:
		return nil
	case 1:
		return Row{}
	}
	r := make(Row)
	for i := rng.Intn(4) + 1; i > 0; i-- {
		col := string(rune('a' + rng.Intn(26)))
		r[col] = randCell(rng)
	}
	return r
}

func randCell(rng *rand.Rand) Cell {
	c := Cell{TS: rng.Int63(), Deleted: rng.Intn(4) == 0}
	switch rng.Intn(3) {
	case 0:
		c.Value = nil
	case 1:
		c.Value = []byte{}
	default:
		c.Value = make([]byte, rng.Intn(64))
		rng.Read(c.Value)
	}
	return c
}

func randBallot(rng *rand.Rand) paxos.Ballot {
	return paxos.Ballot{Counter: rng.Uint64(), Node: int32(rng.Intn(16))}
}

func randCols(rng *rand.Rand) []string {
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		return []string{}
	}
	out := make([]string, rng.Intn(3)+1)
	for i := range out {
		out[i] = string(rune('a' + rng.Intn(26)))
	}
	return out
}

// TestStoreCodecsRoundTrip fuzzes every store RPC payload through its codec
// and requires exact reconstruction, including nil-vs-empty rows and slices.
func TestStoreCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	msgs := func() []any {
		var inProgressVal any
		if rng.Intn(2) == 0 {
			inProgressVal = randRow(rng)
			if inProgressVal.(Row) == nil {
				inProgressVal = Row(nil)
			}
		}
		return []any{
			applyReq{Table: "t", Key: "k", Cells: randRow(rng)},
			readReq{Table: "t", Key: "k", Cols: randCols(rng)},
			readResp{Cells: randRow(rng)},
			scanReq{Table: "t"},
			scanResp{Keys: randCols(rng)},
			prepareReq{Table: "t", Key: "k", B: randBallot(rng)},
			prepareResp{PrepareResponse: paxos.PrepareResponse{
				OK:              rng.Intn(2) == 0,
				RefusedBy:       randBallot(rng),
				InProgress:      randBallot(rng),
				InProgressValue: inProgressVal,
				Committed:       randBallot(rng),
			}},
			proposeReq{Table: "t", Key: "k", B: randBallot(rng), Update: randRow(rng)},
			proposeResp{OK: rng.Intn(2) == 0},
			commitReq{Table: "t", Key: "k", B: randBallot(rng), Update: randRow(rng)},
			digestReq{Table: "t", Key: "k", Cols: randCols(rng)},
			digestResp{Digest: rng.Uint64()},
			randRow(rng),
			randCell(rng),
			Cond{Col: "c", Want: []byte{1}},
			Cond{Col: "c", Want: nil},
			randBallot(rng),
		}
	}
	for iter := 0; iter < 200; iter++ {
		for _, in := range msgs() {
			data, err := wire.Marshal(in)
			if err != nil {
				t.Fatalf("Marshal(%#v): %v", in, err)
			}
			if size, ok := wire.Size(in); !ok || size != len(data) {
				t.Fatalf("Size(%T) = %d,%t; marshaled %d", in, size, ok, len(data))
			}
			out, err := wire.Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal(%T): %v", in, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip mismatch for %T:\n in: %#v\nout: %#v", in, in, out)
			}
		}
	}
}

// TestStoreCodecsCorrupt truncates each encoded payload at every boundary;
// Unmarshal must error, never panic or hang.
func TestStoreCodecsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := []any{
		applyReq{Table: "tbl", Key: "key", Cells: Row{"v": {Value: []byte("abc"), TS: 9}}},
		readResp{Cells: Row{"v": {Value: []byte{1, 2}, TS: 1, Deleted: true}}},
		prepareResp{PrepareResponse: paxos.PrepareResponse{OK: true, InProgress: randBallot(rng), InProgressValue: Row{"x": {TS: 3}}}},
		proposeReq{Table: "t", Key: "k", B: randBallot(rng), Update: Row{"q": {Value: []byte("zz")}}},
	}
	for _, in := range samples {
		data, err := wire.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			if _, err := wire.Unmarshal(data[:cut]); err == nil {
				t.Fatalf("%T: Unmarshal of %d/%d bytes succeeded", in, cut, len(data))
			}
		}
	}
}
