package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
)

// This file is the store half of the critical-section fast path: digest
// quorum reads (Cassandra's actual read path — full data from the nearest
// replica, digests from the rest), ONE-read failover to the next-nearest
// replica, and asynchronous quorum writes backing the music layer's
// write-behind pipelining.

const svcDigest = "store.digest"

type digestReq struct {
	Table, Key string
	Cols       []string // nil = all columns
}

type digestResp struct {
	Digest uint64
}

// digestRow hashes a replica's raw cells — tombstones included — for the
// requested columns. Two replicas produce the same digest iff a full read
// from either would contribute identical cells to the quorum merge, so a
// digest match proves the full-read payload already is the merged row.
func digestRow(r Row) uint64 {
	cols := make([]string, 0, len(r))
	for col := range r {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	h := fnv.New64a()
	var buf [8]byte
	for _, col := range cols {
		c := r[col]
		h.Write([]byte(col))
		h.Write([]byte{0})
		binary.BigEndian.PutUint64(buf[:], uint64(c.TS))
		h.Write(buf[:])
		if c.Deleted {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		h.Write(c.Value)
		h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

func (r *replica) handleDigest(from transport.NodeID, req any) (any, error) {
	m := req.(digestReq)
	full, _ := r.handleRead(from, readReq{Table: m.Table, Key: m.Key, Cols: m.Cols})
	return digestResp{Digest: digestRow(full.(readResp).Cells)}, nil
}

// byDistance orders targets by site RTT from the coordinator, self first —
// the preference order for ONE reads and for picking the digest path's one
// full-data replica.
func (cl *Client) byDistance(targets []transport.NodeID) []transport.NodeID {
	mySite := cl.c.net.SiteOf(cl.node)
	rtt := func(t transport.NodeID) time.Duration {
		if t == cl.node {
			return -1
		}
		return cl.c.net.RTT(mySite, cl.c.net.SiteOf(t))
	}
	out := append([]transport.NodeID(nil), targets...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rtt(out[i]), rtt(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}

// getOne serves a ONE-consistency read from the nearest live replica,
// falling outward through the remaining replicas rather than failing while
// RF-1 of them still hold the key.
func (cl *Client) getOne(req readReq, targets []transport.NodeID) (Row, error) {
	cfg := cl.c.cfg
	var lastErr error
	for i, to := range cl.byDistance(targets) {
		resp, err := cl.c.net.CallTimeout(cl.node, to, svcRead, req, cfg.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 {
			cl.counter("store_one_fallbacks_total")
		}
		cells := resp.(readResp).Cells
		cl.addReadBytes(rowSize(cells))
		return cells.live(), nil
	}
	return nil, fmt.Errorf("%w: read %s/%s: %v", ErrUnavailable, req.Table, req.Key, lastErr)
}

// digestGet runs a quorum read as one full read to the nearest replica plus
// digest reads to the rest. ok=false means the digests did not corroborate
// the full read — or too few replicas answered — and the caller must fall
// back to the full-payload quorum path (which also performs read repair).
func (cl *Client) digestGet(req readReq, targets []transport.NodeID, need int) (Row, bool) {
	cfg := cl.c.cfg
	rt := cl.c.net.Runtime()
	order := cl.byDistance(targets)

	sp := cl.tracer().Child("store.get.digest")
	sp.Annotatef("fanout", "1 full + %d digests, need %d", len(order)-1, need)

	type reply struct {
		full   bool
		cells  Row
		digest uint64
		err    error
	}
	mb := sim.NewMailbox[reply](rt)
	fullTarget := order[0]
	rt.Go(func() {
		resp, err := cl.c.net.CallTimeout(cl.node, fullTarget, svcRead, req, cfg.Timeout)
		if err != nil {
			mb.Send(reply{full: true, err: err})
			return
		}
		mb.Send(reply{full: true, cells: resp.(readResp).Cells})
	})
	dreq := digestReq{Table: req.Table, Key: req.Key, Cols: req.Cols}
	for _, to := range order[1:] {
		to := to
		rt.Go(func() {
			resp, err := cl.c.net.CallTimeout(cl.node, to, svcDigest, dreq, cfg.Timeout)
			if err != nil {
				mb.Send(reply{err: err})
				return
			}
			mb.Send(reply{digest: resp.(digestResp).Digest})
		})
	}

	deadline := rt.Now() + cfg.Timeout
	var fullCells Row
	haveFull := false
	var digests []uint64
	for answered := 0; answered < len(order); answered++ {
		remaining := deadline - rt.Now()
		if remaining <= 0 {
			break
		}
		r, err := mb.RecvTimeout(remaining)
		if err != nil {
			break
		}
		if r.err != nil {
			continue
		}
		if r.full {
			haveFull = true
			fullCells = r.cells
		} else {
			digests = append(digests, r.digest)
		}
		if haveFull && 1+len(digests) >= need {
			break
		}
	}
	if !haveFull || 1+len(digests) < need {
		sp.Fail(nil)
		sp.End()
		return nil, false
	}
	want := digestRow(fullCells)
	for _, d := range digests {
		if d != want {
			cl.counter("store_digest_mismatch_total")
			sp.Annotate("mismatch", "digest disagrees with full read")
			sp.Fail(nil)
			sp.End()
			return nil, false
		}
	}
	cl.addReadBytes(rowSize(fullCells) + 8*len(digests))
	sp.End()
	return fullCells.live(), true
}

// addReadBytes accounts payload bytes that reached this coordinator on the
// read path — the quantity digest reads exist to shrink.
func (cl *Client) addReadBytes(n int) {
	if o := cl.c.net.Obs(); o != nil {
		o.Metrics().Counter("store_read_bytes_total", obs.Labels{"site": cl.c.net.SiteOf(cl.node)}).Add(int64(n))
	}
}

// PendingPut is the handle on a write issued by PutAsync. Wait blocks until
// the write reaches its consistency level or definitively fails.
type PendingPut struct {
	err  error
	done *sim.Promise[struct{}]
}

// Wait blocks until the write settles and returns its outcome.
func (p *PendingPut) Wait() error {
	if p.done == nil {
		return p.err
	}
	_, err := p.done.Await()
	return err
}

// Settled reports whether the write has already completed.
func (p *PendingPut) Settled() bool { return p.done == nil || p.done.Done() }

// ResolvedPut returns an already-settled handle carrying err. Callers that
// must perform a write synchronously (e.g. LWT mode, where the CAS round
// cannot be pipelined) use it to satisfy an asynchronous interface.
func ResolvedPut(err error) *PendingPut { return &PendingPut{err: err} }

// PutAsync issues Put without waiting for replica acks: cells are stamped
// and the coordinator charged at issue time — so issue order fixes
// timestamp order — then replication proceeds in the background and the
// returned handle settles once the consistency level's acks arrive. The
// music layer pipelines critical-section writes with it; like Put, a failed
// write is not rolled back and may survive on some replicas.
func (cl *Client) PutAsync(table, key string, cells Row, cons Consistency) *PendingPut {
	cfg := cl.c.cfg
	rt := cl.c.net.Runtime()
	stamped := make(Row, len(cells))
	for col, c := range cells {
		if c.TS == 0 {
			c.TS = cl.c.nextWriteTS(key)
		}
		stamped[col] = c
	}
	req := applyReq{Table: table, Key: key, Cells: stamped}
	p := &PendingPut{done: sim.NewPromise[struct{}](rt)}
	start := rt.Now()
	var hc *history.Call
	if cfg.History != nil {
		hc = cfg.History.Begin(cl.c.net.SiteOf(cl.node), history.KindStorePut, table+"/"+key, 0).TS(maxTS(stamped)).Note("async " + cons.String())
	}
	rt.Go(func() {
		sp := cl.tracer().Child("store.put.async")
		if sp != nil {
			sp.Annotate("row", table+"/"+key)
			sp.Annotate("cons", cons.String())
		}
		cl.c.net.Work(cl.node, cfg.Costs.CoordWrite+perKBCost(cfg.Costs.PerKB, rowSize(req.Cells)))
		err := cl.replicate(req, cons)
		hc.End(err)
		cl.observeLatency("put", cons, rt.Now()-start)
		sp.EndErr(err)
		if err != nil {
			p.done.Reject(err)
		} else {
			p.done.Resolve(struct{}{})
		}
	})
	return p
}
