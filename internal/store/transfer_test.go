package store

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestTransferCatchUp drives the join path at the store layer: a cluster
// with a spare site outside the epoch-1 ring takes writes, membership
// advances to include the spare, and SyncLocal pulls exactly the rows the
// new placement assigns to the joiners. Reads served by the new replicas
// must return the pre-join values.
func TestTransferCatchUp(t *testing.T) {
	rt := sim.New(11)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs.Extend("ius+d", "site-d"), NodesPerSite: 1})
	// Nodes 0..2 are the founding sites; node 3 (site-d) runs services but
	// starts outside the ring.
	members := []RingNode{{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"}, {ID: 2, Site: "oregon"}}
	c := New(net, Config{RF: 3, Nodes: []simnet.NodeID{0, 1, 2, 3}, Members: members})

	if err := rt.Run(func() {
		cl := c.Client(0)
		const n = 200
		for i := 0; i < n; i++ {
			if err := cl.Put(tbl, fmt.Sprintf("key-%d", i), val(fmt.Sprintf("v%d", i)), Quorum); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if got := c.Epoch(); got != 1 {
			t.Fatalf("Epoch = %d, want 1", got)
		}

		// Epoch 2: site-d joins.
		grown := append(append([]RingNode{}, members...), RingNode{ID: 3, Site: "site-d"})
		c.ApplyMembership(2, grown)
		if got := c.Epoch(); got != 2 {
			t.Fatalf("Epoch after apply = %d, want 2", got)
		}
		// Stale epochs are ignored.
		c.ApplyMembership(1, members)
		if got := c.Epoch(); got != 2 {
			t.Fatalf("Epoch after stale apply = %d, want 2", got)
		}

		changed, err := c.SyncLocal(nil)
		if err != nil {
			t.Fatalf("SyncLocal: %v", err)
		}
		if changed == 0 {
			t.Fatal("SyncLocal moved no rows; the joiner received nothing")
		}

		// Every key the new placement puts on node 3 must now be readable
		// from node 3's local engine alone.
		owned := 0
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%d", i)
			if !contains(c.ReplicasFor(key), 3) {
				continue
			}
			owned++
			row := c.replicas[3].dump(tbl, key)
			if got := string(row["v"].Value); got != fmt.Sprintf("v%d", i) {
				t.Fatalf("joiner copy of %s = %q, want v%d", key, got, i)
			}
		}
		if owned == 0 {
			t.Fatal("no keys placed on the joining site; rebalance did nothing")
		}
		// A second sync is idempotent: everything already matches.
		changed, err = c.SyncLocal(nil)
		if err != nil {
			t.Fatalf("second SyncLocal: %v", err)
		}
		if changed != 0 {
			t.Fatalf("second SyncLocal changed %d rows, want 0 (transfer must be idempotent)", changed)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestTransferWireRoundTrip pins the transfer payload codecs (ids 32/33).
func TestTransferWireRoundTrip(t *testing.T) {
	rt := sim.New(1)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs.Extend("ius+d", "site-d"), NodesPerSite: 1})
	members := []RingNode{{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"}, {ID: 2, Site: "oregon"}}
	c := New(net, Config{RF: 3, Nodes: []simnet.NodeID{0, 1, 2, 3}, Members: members})

	if err := rt.Run(func() {
		if err := c.Client(0).Put(tbl, "k", val("x"), All); err != nil {
			t.Fatalf("Put: %v", err)
		}
		// PullFrom crosses the simulated network, which marshals through
		// the wire codecs; a decode mismatch would surface as an error or
		// a missing row.
		grown := append(append([]RingNode{}, members...), RingNode{ID: 3, Site: "site-d"})
		c.ApplyMembership(2, grown)
		if _, err := c.PullFrom(3, 0); err != nil {
			t.Fatalf("PullFrom: %v", err)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
