package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Client issues store operations through a fixed coordinator node, the way
// a MUSIC replica queries its nearby Cassandra node (Fig 1).
type Client struct {
	c    *Cluster
	node transport.NodeID
}

// Client returns a client coordinated by the given node.
func (c *Cluster) Client(node transport.NodeID) *Client {
	return &Client{c: c, node: node}
}

// Node returns the coordinator node ID.
func (cl *Client) Node() transport.NodeID { return cl.node }

// tracer returns the network's tracer (nil when observability is disabled).
func (cl *Client) tracer() *obs.Tracer { return cl.c.net.Tracer() }

// counter bumps a store counter, avoiding even the label allocation when
// observability is disabled.
func (cl *Client) counter(name string) {
	if o := cl.c.net.Obs(); o != nil {
		o.Metrics().Counter(name, obs.Labels{"site": cl.c.net.SiteOf(cl.node)}).Inc()
	}
}

// observeLatency records d into a store histogram keyed by operation and
// consistency level.
func (cl *Client) observeLatency(op string, cons Consistency, d time.Duration) {
	if o := cl.c.net.Obs(); o != nil {
		o.Metrics().Histogram("store_"+op+"_latency", obs.Labels{"cons": cons.String()}).Observe(d)
	}
}

// Cluster returns the owning cluster.
func (cl *Client) Cluster() *Cluster { return cl.c }

// Put writes cells to a row at the given consistency. Cells with TS == 0
// are stamped with the coordinator clock. A write that fails with
// ErrUnavailable is not rolled back — it may survive on some replicas.
func (cl *Client) Put(table, key string, cells Row, cons Consistency) error {
	cfg := cl.c.cfg
	sp := cl.tracer().Child("store.put")
	if sp != nil {
		sp.Annotate("row", table+"/"+key)
		sp.Annotate("cons", cons.String())
	}
	start := cl.c.net.Runtime().Now()
	stamped := make(Row, len(cells))
	for col, c := range cells {
		if c.TS == 0 {
			c.TS = cl.c.nextWriteTS(key)
		}
		stamped[col] = c
	}
	req := applyReq{Table: table, Key: key, Cells: stamped}
	var hc *history.Call
	if cfg.History != nil {
		hc = cfg.History.Begin(cl.c.net.SiteOf(cl.node), history.KindStorePut, table+"/"+key, 0).TS(maxTS(stamped)).Note(cons.String())
	}
	cl.c.net.Work(cl.node, cfg.Costs.CoordWrite+perKBCost(cfg.Costs.PerKB, rowSize(req.Cells)))
	err := cl.replicate(req, cons)
	hc.End(err)
	cl.observeLatency("put", cons, cl.c.net.Runtime().Now()-start)
	sp.EndErr(err)
	return err
}

// maxTS is the newest cell stamp in a row — the TS a store.put history op
// reports for a multi-cell write.
func maxTS(cells Row) int64 {
	var ts int64
	for _, c := range cells {
		if c.TS > ts {
			ts = c.TS
		}
	}
	return ts
}

// Delete tombstones the given columns (all current columns if cols is nil
// is not supported — callers name what they delete).
func (cl *Client) Delete(table, key string, cols []string, cons Consistency) error {
	now := cl.c.NowMicros()
	cells := make(Row, len(cols))
	for _, col := range cols {
		cells[col] = Cell{TS: now, Deleted: true}
	}
	return cl.Put(table, key, cells, cons)
}

// replicate sends an apply to every replica of the key and waits for the
// consistency level's ack count. Replicas that miss the write are caught up
// in the background (hinted handoff) unless disabled.
func (cl *Client) replicate(req applyReq, cons Consistency) error {
	cfg := cl.c.cfg
	rt := cl.c.net.Runtime()
	targets := cl.c.ringNow().replicasFor(req.Key)
	need := cons.need(len(targets))

	firstTry := sim.NewMailbox[error](rt)
	for _, to := range targets {
		to := to
		rt.Go(func() {
			_, err := cl.c.net.CallTimeout(cl.node, to, svcApply, req, cfg.Timeout)
			firstTry.Send(err)
			if err != nil && !cfg.NoHintedHandoff {
				cl.counter("store_handoffs_total")
				cl.handoff(to, req)
			}
		})
	}

	oks := 0
	for i := 0; i < len(targets); i++ {
		err, recvErr := firstTry.RecvTimeout(cfg.Timeout)
		if recvErr != nil {
			break
		}
		if err == nil {
			oks++
			if oks >= need {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %d/%d acks for %s/%s", ErrUnavailable, oks, need, req.Table, req.Key)
}

// handoff retries a failed replica write with backoff until it lands or the
// attempts run out.
func (cl *Client) handoff(to transport.NodeID, req applyReq) {
	rt := cl.c.net.Runtime()
	backoff := 200 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		rt.Sleep(backoff)
		if backoff < 5*time.Second {
			backoff *= 2
		}
		if _, err := cl.c.net.CallTimeout(cl.node, to, svcApply, req, cl.c.cfg.Timeout); err == nil {
			cl.counter("store_handoffs_delivered_total")
			return
		}
	}
}

// Get reads a row's live cells at the given consistency. A missing row
// yields an empty Row and no error. Quorum and All reads merge replica
// responses cell-wise and (unless disabled) repair stale replicas in the
// background.
func (cl *Client) Get(table, key string, cons Consistency) (Row, error) {
	return cl.get(table, key, nil, cons, true)
}

// GetCols is Get restricted to the named columns.
func (cl *Client) GetCols(table, key string, cols []string, cons Consistency) (Row, error) {
	return cl.get(table, key, cols, cons, true)
}

func (cl *Client) get(table, key string, cols []string, cons Consistency, chargeCoord bool) (row Row, err error) {
	cfg := cl.c.cfg
	sp := cl.tracer().Child("store.get")
	if sp != nil {
		sp.Annotate("row", table+"/"+key)
		sp.Annotate("cons", cons.String())
	}
	start := cl.c.net.Runtime().Now()
	var hc *history.Call
	if cfg.History != nil && cons != One {
		// ONE reads (lock-wait polling, eventual peeks) are noise; record
		// only quorum-level traffic.
		hc = cfg.History.Begin(cl.c.net.SiteOf(cl.node), history.KindStoreGet, table+"/"+key, 0).Note(cons.String())
	}
	defer func() {
		hc.End(err)
		cl.observeLatency("get", cons, cl.c.net.Runtime().Now()-start)
		sp.EndErr(err)
	}()
	if chargeCoord {
		cl.c.net.Work(cl.node, cfg.Costs.CoordRead)
	}
	req := readReq{Table: table, Key: key, Cols: cols}
	targets := cl.c.ringNow().replicasFor(key)

	if cons == One {
		return cl.getOne(req, targets)
	}

	need := cons.need(len(targets))
	if cfg.DigestReads && need > 1 {
		if row, ok := cl.digestGet(req, targets, need); ok {
			return row, nil
		}
		// Digest mismatch or too few digest replies: fall through to the
		// full-payload quorum read, whose merge + read repair reconciles
		// the replicas.
	}
	results := cl.c.net.Multicast(cl.node, targets, svcRead, req, need, cfg.Timeout)
	oks := transport.Successes(results)
	if len(oks) < need {
		return nil, fmt.Errorf("%w: %d/%d replies for %s/%s", ErrUnavailable, len(oks), need, table, key)
	}

	merged := make(Row)
	payload := 0
	for _, r := range oks {
		cells := r.Resp.(readResp).Cells
		payload += rowSize(cells)
		mergeInto(merged, cells)
	}
	cl.addReadBytes(payload)
	if !cfg.NoReadRepair {
		cl.readRepair(table, key, merged, oks)
	}
	return merged.live(), nil
}

// readRepair pushes the merged row back to any responder that returned
// stale cells, asynchronously.
func (cl *Client) readRepair(table, key string, merged Row, responders []transport.CallResult) {
	for _, r := range responders {
		theirs := r.Resp.(readResp).Cells
		stale := false
		for col, c := range merged {
			cur, ok := theirs[col]
			if !ok || c.wins(cur) {
				stale = true
				break
			}
		}
		if stale {
			cl.counter("store_read_repairs_total")
			cl.c.net.Send(cl.node, r.From, svcApply, applyReq{Table: table, Key: key, Cells: merged.clone()})
		}
	}
}

// AllKeys lists keys with at least one live cell, scanning every store node
// at eventual consistency (used by the homing service's getAllKeys, which
// tolerates staleness).
func (cl *Client) AllKeys(table string) ([]string, error) {
	cfg := cl.c.cfg
	cl.c.net.Work(cl.node, cfg.Costs.CoordRead)
	members := cl.c.MemberNodes()
	results := cl.c.net.Multicast(cl.node, members, svcScan, scanReq{Table: table}, len(members), cfg.Timeout)
	oks := transport.Successes(results)
	if len(oks) == 0 {
		return nil, fmt.Errorf("%w: scan %s", ErrUnavailable, table)
	}
	seen := make(map[string]bool)
	var keys []string
	for _, r := range oks {
		for _, k := range r.Resp.(scanResp).Keys {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func perKBCost(perKB time.Duration, size int) time.Duration {
	return time.Duration(float64(perKB) * float64(size) / 1024)
}
