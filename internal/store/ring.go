package store

import (
	"hash/fnv"
	"sort"

	"repro/internal/transport"
)

// ring places keys on replicas. Nodes are arranged in a site-interleaved
// walk (site1[0], site2[0], site3[0], site1[1], ...) so that taking RF
// consecutive entries spreads a key's replicas across sites — the paper's
// deployment keeps one copy of every key-value pair per site
// (NetworkTopologyStrategy in Cassandra terms).
type ring struct {
	walk []transport.NodeID
	rf   int
}

func buildRing(tr transport.Transport, nodes []transport.NodeID, rf int) ring {
	bySite := make(map[string][]transport.NodeID)
	var sites []string
	for _, id := range nodes {
		site := tr.SiteOf(id)
		if len(bySite[site]) == 0 {
			sites = append(sites, site)
		}
		bySite[site] = append(bySite[site], id)
	}
	sort.Strings(sites)
	for _, site := range sites {
		ids := bySite[site]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}

	var walk []transport.NodeID
	for i := 0; ; i++ {
		added := false
		for _, site := range sites {
			if i < len(bySite[site]) {
				walk = append(walk, bySite[site][i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if rf > len(walk) {
		rf = len(walk)
	}
	return ring{walk: walk, rf: rf}
}

// replicasFor returns the RF nodes responsible for key.
func (r ring) replicasFor(key string) []transport.NodeID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	pos := int(h.Sum64() % uint64(len(r.walk)))
	out := make([]transport.NodeID, 0, r.rf)
	for i := 0; i < r.rf; i++ {
		out = append(out, r.walk[(pos+i)%len(r.walk)])
	}
	return out
}

// contains reports whether id is one of the given replicas.
func contains(ids []transport.NodeID, id transport.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
