package store

import (
	"sort"

	"repro/internal/transport"
)

// fnv64a is hash/fnv's 64-bit FNV-1a inlined over a string so the hot
// paths (ring placement, shard routing) stay allocation-free.
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// ShardOf maps key to one of shards partitions. It is a pure function of
// the key bytes, so every site and every process routes a given key to the
// same shard index — the property the sharded lock/data plane relies on
// for cross-site grant adoption and failover. shards <= 1 short-circuits
// to 0 so unsharded deployments pay nothing.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(fnv64a(key) % uint64(shards))
}

// ring places keys on replicas. Nodes are arranged in a site-interleaved
// walk (site1[0], site2[0], site3[0], site1[1], ...) so that taking RF
// consecutive entries spreads a key's replicas across sites — the paper's
// deployment keeps one copy of every key-value pair per site
// (NetworkTopologyStrategy in Cassandra terms).
type ring struct {
	walk []transport.NodeID
	rf   int
}

func buildRing(tr transport.Transport, nodes []transport.NodeID, rf int) ring {
	bySite := make(map[string][]transport.NodeID)
	var sites []string
	for _, id := range nodes {
		site := tr.SiteOf(id)
		if len(bySite[site]) == 0 {
			sites = append(sites, site)
		}
		bySite[site] = append(bySite[site], id)
	}
	sort.Strings(sites)
	for _, site := range sites {
		ids := bySite[site]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}

	var walk []transport.NodeID
	for i := 0; ; i++ {
		added := false
		for _, site := range sites {
			if i < len(bySite[site]) {
				walk = append(walk, bySite[site][i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if rf > len(walk) {
		rf = len(walk)
	}
	return ring{walk: walk, rf: rf}
}

// replicasFor returns the RF nodes responsible for key.
func (r ring) replicasFor(key string) []transport.NodeID {
	pos := int(fnv64a(key) % uint64(len(r.walk)))
	out := make([]transport.NodeID, 0, r.rf)
	for i := 0; i < r.rf; i++ {
		out = append(out, r.walk[(pos+i)%len(r.walk)])
	}
	return out
}

// contains reports whether id is one of the given replicas.
func contains(ids []transport.NodeID, id transport.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
