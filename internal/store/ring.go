package store

import (
	"sort"

	"repro/internal/placement"
	"repro/internal/transport"
)

// fnv64a is hash/fnv's 64-bit FNV-1a inlined over a string so the hot
// paths (ring placement, shard routing) stay allocation-free.
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// ShardOf maps key to one of shards partitions. It is a pure function of
// the key bytes, so every site and every process routes a given key to the
// same shard index — the property the sharded lock/data plane relies on
// for cross-site grant adoption and failover. shards <= 1 short-circuits
// to 0 so unsharded deployments pay nothing.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(fnv64a(key) % uint64(shards))
}

// RingNode names one placement participant: a node and the site hosting
// it. It aliases placement.Node so membership can cross layer boundaries
// (store, history's epoch checker, admin tooling) without conversion.
type RingNode = placement.Node

// ring places keys on replicas. It has two modes:
//
// Static (walk != nil): nodes are arranged in a site-interleaved walk
// (site1[0], site2[0], site3[0], site1[1], ...) and a key takes RF
// consecutive entries starting at hash(key) mod len(walk), spreading its
// replicas across sites — the paper's deployment keeps one copy of every
// key-value pair per site (NetworkTopologyStrategy in Cassandra terms).
// This is the historical placement for fixed-membership clusters; every
// pinned fault/explorer seed was recorded against it, so it must stay
// byte-identical.
//
// Consistent-hash (cons != nil): placement delegates to a
// placement.Ring — the epoch-versioned dynamic-membership mode with
// bounded key movement on join/retire. See package placement.
type ring struct {
	walk   []transport.NodeID
	cons   *placement.Ring
	rf     int
	nsites int
	sites  map[transport.NodeID]string
}

// buildRing derives sites from the transport and builds a static
// (site-interleaved modulo) ring — the fixed-membership path.
func buildRing(tr transport.Transport, nodes []transport.NodeID, rf int) ring {
	bySite := make(map[string][]transport.NodeID)
	var sites []string
	r := ring{sites: make(map[transport.NodeID]string, len(nodes))}
	for _, id := range nodes {
		site := tr.SiteOf(id)
		r.sites[id] = site
		if len(bySite[site]) == 0 {
			sites = append(sites, site)
		}
		bySite[site] = append(bySite[site], id)
	}
	sort.Strings(sites)
	r.nsites = len(sites)
	for _, site := range sites {
		ids := bySite[site]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}

	for i := 0; ; i++ {
		added := false
		for _, site := range sites {
			if i < len(bySite[site]) {
				r.walk = append(r.walk, bySite[site][i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if rf > len(r.walk) {
		rf = len(r.walk)
	}
	r.rf = rf
	return r
}

// buildRingMembers builds a consistent-hash ring for an explicit member
// set — the dynamic-membership path. rf is clamped to the node count.
func buildRingMembers(members []RingNode, rf int) ring {
	cons := placement.New(members, rf)
	r := ring{
		cons:   cons,
		rf:     cons.RF(),
		nsites: cons.Sites(),
		sites:  make(map[transport.NodeID]string, len(members)),
	}
	for _, m := range members {
		r.sites[m.ID] = m.Site
	}
	return r
}

// replicasFor returns the RF nodes responsible for key.
func (r ring) replicasFor(key string) []transport.NodeID {
	out := make([]transport.NodeID, 0, r.rf)
	r.replicasInto(key, &out)
	return out
}

// replicasInto appends key's replicas to *out (reusable buffer form).
func (r ring) replicasInto(key string, out *[]transport.NodeID) {
	if r.cons != nil {
		r.cons.ReplicasInto(key, out)
		return
	}
	if len(r.walk) == 0 || r.rf == 0 {
		return
	}
	pos := int(fnv64a(key) % uint64(len(r.walk)))
	for i := 0; i < r.rf; i++ {
		*out = append(*out, r.walk[(pos+i)%len(r.walk)])
	}
}

// placesSite reports whether any replica of key lives in site.
func (r ring) placesSite(key, site string) bool {
	if r.cons != nil {
		return r.cons.PlacesSite(key, site)
	}
	var buf [8]transport.NodeID
	out := buf[:0]
	r.replicasInto(key, &out)
	for _, id := range out {
		if r.sites[id] == site {
			return true
		}
	}
	return false
}

// nodes returns the member node IDs in ascending order.
func (r ring) nodes() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(r.sites))
	for id := range r.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Placement is a standalone read-only view of one member set's
// consistent-hash placement — what a cluster's ring becomes after
// ApplyMembership with the same members. Admin tooling and tests use it to
// ask "where would this key live under that epoch?" without touching a
// live cluster.
type Placement struct{ r *placement.Ring }

// PreviewRing builds the placement for a prospective member set. rf is
// clamped to the member count, matching ApplyMembership.
func PreviewRing(members []RingNode, rf int) Placement {
	return Placement{r: placement.New(members, rf)}
}

// ReplicasFor returns the nodes that would hold key.
func (p Placement) ReplicasFor(key string) []transport.NodeID { return p.r.ReplicasFor(key) }

// PlacesSite reports whether any replica of key would live in site.
func (p Placement) PlacesSite(key, site string) bool { return p.r.PlacesSite(key, site) }

// contains reports whether id is one of the given replicas.
func contains(ids []transport.NodeID, id transport.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
