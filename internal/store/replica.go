package store

import (
	"sync"
	"time"

	"repro/internal/paxos"
	"repro/internal/transport"
)

// Service names registered by each replica.
const (
	svcApply   = "store.apply"
	svcRead    = "store.read"
	svcScan    = "store.scan"
	svcPrepare = "store.prepare"
	svcPropose = "store.propose"
	svcCommit  = "store.commit"
)

// Wire messages. Every one of them has a binary codec in wire.go, so the
// transport charges exact encoded sizes and can carry them across processes;
// none needs a Sizer estimate.

type applyReq struct {
	Table, Key string
	Cells      Row
}

type readReq struct {
	Table, Key string
	Cols       []string // nil = all columns
}

type readResp struct {
	Cells Row // nil when the row does not exist
}

type scanReq struct {
	Table string
}

type scanResp struct {
	Keys []string
}

type prepareReq struct {
	Table, Key string
	B          paxos.Ballot
}

type prepareResp struct {
	paxos.PrepareResponse
}

type proposeReq struct {
	Table, Key string
	B          paxos.Ballot
	Update     Row
}

type proposeResp struct {
	OK bool
}

type commitReq struct {
	Table, Key string
	B          paxos.Ballot
	Update     Row
}

// replica is the per-node storage engine: tables of rows plus per-row Paxos
// acceptor state. State survives Crash/Restart (it models durable storage).
// The engine is striped by key shard — each stripe has its own mutex and
// its own table maps — so concurrent operations on keys in different shards
// never contend.
type replica struct {
	stripes []engineStripe
}

type engineStripe struct {
	mu     sync.Mutex
	tables map[string]map[string]*rowState
}

type rowState struct {
	cells Row
	ax    paxos.Acceptor
}

func newReplica(shards int) *replica {
	if shards <= 0 {
		shards = 1
	}
	r := &replica{stripes: make([]engineStripe, shards)}
	for i := range r.stripes {
		r.stripes[i].tables = make(map[string]map[string]*rowState)
	}
	return r
}

// stripe returns the engine stripe owning key. The single-stripe fast path
// skips hashing so unsharded deployments pay nothing.
func (r *replica) stripe(key string) *engineStripe {
	if len(r.stripes) == 1 {
		return &r.stripes[0]
	}
	return &r.stripes[ShardOf(key, len(r.stripes))]
}

// register installs the replica's services on node with their CPU costs.
func (r *replica) register(tr transport.Transport, node transport.NodeID, costs CostModel) {
	cost := func(svc string, h transport.Handler, base, perKB time.Duration) {
		tr.HandleWithCost(node, svc, h, base, perKB)
	}
	cost(svcApply, r.handleApply, costs.ReplicaApply, costs.PerKB)
	cost(svcRead, r.handleRead, costs.ReplicaRead, costs.PerKB)
	cost(svcDigest, r.handleDigest, costs.ReplicaRead, 0)
	cost(svcScan, r.handleScan, costs.ReplicaRead, 0)
	cost(svcPrepare, r.handlePrepare, costs.PaxosMsg, 0)
	cost(svcPropose, r.handlePropose, costs.PaxosMsg, costs.PerKB)
	cost(svcCommit, r.handleCommit, costs.PaxosMsg, costs.PerKB)
}

// row returns the row state within a stripe, creating it when create is set.
// The caller must hold s.mu.
func (s *engineStripe) row(table, key string, create bool) *rowState {
	t, ok := s.tables[table]
	if !ok {
		if !create {
			return nil
		}
		t = make(map[string]*rowState)
		s.tables[table] = t
	}
	rs, ok := t[key]
	if !ok {
		if !create {
			return nil
		}
		rs = &rowState{cells: make(Row)}
		t[key] = rs
	}
	return rs
}

func (r *replica) handleApply(from transport.NodeID, req any) (any, error) {
	m := req.(applyReq)
	s := r.stripe(m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(m.Table, m.Key, true)
	mergeInto(rs.cells, m.Cells)
	return nil, nil
}

func (r *replica) handleRead(from transport.NodeID, req any) (any, error) {
	m := req.(readReq)
	s := r.stripe(m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(m.Table, m.Key, false)
	if rs == nil {
		return readResp{}, nil
	}
	if m.Cols == nil {
		return readResp{Cells: rs.cells.clone()}, nil
	}
	out := make(Row, len(m.Cols))
	for _, col := range m.Cols {
		if c, ok := rs.cells[col]; ok {
			out[col] = c
		}
	}
	return readResp{Cells: out}, nil
}

func (r *replica) handleScan(from transport.NodeID, req any) (any, error) {
	m := req.(scanReq)
	var keys []string
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for key, rs := range s.tables[m.Table] {
			for _, c := range rs.cells {
				if !c.Deleted {
					keys = append(keys, key)
					break
				}
			}
		}
		s.mu.Unlock()
	}
	return scanResp{Keys: keys}, nil
}

func (r *replica) handlePrepare(from transport.NodeID, req any) (any, error) {
	m := req.(prepareReq)
	s := r.stripe(m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(m.Table, m.Key, true)
	return prepareResp{rs.ax.HandlePrepare(m.B)}, nil
}

func (r *replica) handlePropose(from transport.NodeID, req any) (any, error) {
	m := req.(proposeReq)
	s := r.stripe(m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(m.Table, m.Key, true)
	return proposeResp{OK: rs.ax.HandlePropose(m.B, m.Update)}, nil
}

func (r *replica) handleCommit(from transport.NodeID, req any) (any, error) {
	m := req.(commitReq)
	s := r.stripe(m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(m.Table, m.Key, true)
	if rs.ax.HandleCommit(m.B) {
		// Cells arrive stamped by the coordinator (CAS stamps from the
		// ballot counter before propose, so every replica stores an
		// identical cell). The ballot-counter fallback only covers a value
		// that somehow reached commit unstamped; it must NOT consult local
		// state — per-replica bumps made one logical write carry divergent
		// stamps, which quorum LWW merges turned into row regressions.
		cells := make(Row, len(m.Update))
		for col, c := range m.Update {
			if c.TS == 0 {
				c.TS = int64(m.B.Counter)
			}
			cells[col] = c
		}
		mergeInto(rs.cells, cells)
	}
	return nil, nil
}

// dump returns a copy of a row's cells for tests.
func (r *replica) dump(table, key string) Row {
	s := r.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.row(table, key, false)
	if rs == nil {
		return nil
	}
	return rs.cells.clone()
}
