package store

import (
	"fmt"
	"sort"

	"repro/internal/paxos"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Binary codecs for every store RPC payload, in the 16–47 id range reserved
// for this package. These are the system's source of truth for message
// size — the simulated network charges its bandwidth model with the exact
// encoded byte counts, and the TCP transport writes the same bytes onto
// sockets — so the encoders must stay deterministic (rows encode their
// columns in sorted order).

// Error codes for sentinels that must survive a process boundary.
const (
	errCodeUnavailable = 10
	errCodeContention  = 11
)

// nilCount marks a nil map or slice in a length prefix, distinguishing it
// from an empty one (readResp uses nil cells for "row does not exist").
const nilCount = ^uint32(0)

func init() {
	wire.RegisterError(errCodeUnavailable, ErrUnavailable)
	wire.RegisterError(errCodeContention, ErrContention)

	wire.Register(16, "store.applyReq",
		func(e *wire.Encoder, m applyReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeRow(e, m.Cells)
		},
		func(d *wire.Decoder) applyReq {
			return applyReq{Table: d.String(), Key: d.String(), Cells: decodeRow(d)}
		})
	wire.Register(17, "store.readReq",
		func(e *wire.Encoder, m readReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeStrings(e, m.Cols)
		},
		func(d *wire.Decoder) readReq {
			return readReq{Table: d.String(), Key: d.String(), Cols: decodeStrings(d)}
		})
	wire.Register(18, "store.readResp",
		func(e *wire.Encoder, m readResp) { encodeRow(e, m.Cells) },
		func(d *wire.Decoder) readResp { return readResp{Cells: decodeRow(d)} })
	wire.Register(19, "store.scanReq",
		func(e *wire.Encoder, m scanReq) { e.String(m.Table) },
		func(d *wire.Decoder) scanReq { return scanReq{Table: d.String()} })
	wire.Register(20, "store.scanResp",
		func(e *wire.Encoder, m scanResp) { encodeStrings(e, m.Keys) },
		func(d *wire.Decoder) scanResp { return scanResp{Keys: decodeStrings(d)} })
	wire.Register(21, "store.prepareReq",
		func(e *wire.Encoder, m prepareReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeBallot(e, m.B)
		},
		func(d *wire.Decoder) prepareReq {
			return prepareReq{Table: d.String(), Key: d.String(), B: decodeBallot(d)}
		})
	wire.Register(22, "store.prepareResp",
		func(e *wire.Encoder, m prepareResp) {
			e.Bool(m.OK)
			encodeBallot(e, m.RefusedBy)
			encodeBallot(e, m.InProgress)
			encodeBallot(e, m.Committed)
			switch v := m.InProgressValue.(type) {
			case nil:
				e.Bool(false)
			case Row:
				e.Bool(true)
				encodeRow(e, v)
			default:
				panic(fmt.Sprintf("store: prepareResp.InProgressValue is %T, want Row", v))
			}
		},
		func(d *wire.Decoder) prepareResp {
			var m prepareResp
			m.OK = d.Bool()
			m.RefusedBy = decodeBallot(d)
			m.InProgress = decodeBallot(d)
			m.Committed = decodeBallot(d)
			if d.Bool() {
				m.InProgressValue = decodeRow(d)
			}
			return m
		})
	wire.Register(23, "store.proposeReq",
		func(e *wire.Encoder, m proposeReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeBallot(e, m.B)
			encodeRow(e, m.Update)
		},
		func(d *wire.Decoder) proposeReq {
			return proposeReq{Table: d.String(), Key: d.String(), B: decodeBallot(d), Update: decodeRow(d)}
		})
	wire.Register(24, "store.proposeResp",
		func(e *wire.Encoder, m proposeResp) { e.Bool(m.OK) },
		func(d *wire.Decoder) proposeResp { return proposeResp{OK: d.Bool()} })
	wire.Register(25, "store.commitReq",
		func(e *wire.Encoder, m commitReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeBallot(e, m.B)
			encodeRow(e, m.Update)
		},
		func(d *wire.Decoder) commitReq {
			return commitReq{Table: d.String(), Key: d.String(), B: decodeBallot(d), Update: decodeRow(d)}
		})
	wire.Register(26, "store.digestReq",
		func(e *wire.Encoder, m digestReq) {
			e.String(m.Table)
			e.String(m.Key)
			encodeStrings(e, m.Cols)
		},
		func(d *wire.Decoder) digestReq {
			return digestReq{Table: d.String(), Key: d.String(), Cols: decodeStrings(d)}
		})
	wire.Register(27, "store.digestResp",
		func(e *wire.Encoder, m digestResp) { e.Uint64(m.Digest) },
		func(d *wire.Decoder) digestResp { return digestResp{Digest: d.Uint64()} })

	// Building blocks as standalone payloads, for callers (tests, tools)
	// that move a bare row, cell, condition or ballot.
	wire.Register(28, "store.Row",
		func(e *wire.Encoder, r Row) { encodeRow(e, r) },
		func(d *wire.Decoder) Row { return decodeRow(d) })
	wire.Register(29, "store.Cell",
		func(e *wire.Encoder, c Cell) { encodeCell(e, c) },
		func(d *wire.Decoder) Cell { return decodeCell(d) })
	wire.Register(30, "store.Cond",
		func(e *wire.Encoder, c Cond) {
			e.String(c.Col)
			e.RawBytes(c.Want)
		},
		func(d *wire.Decoder) Cond { return Cond{Col: d.String(), Want: d.RawBytes()} })
	wire.Register(31, "paxos.Ballot",
		func(e *wire.Encoder, b paxos.Ballot) { encodeBallot(e, b) },
		func(d *wire.Decoder) paxos.Ballot { return decodeBallot(d) })
	wire.Register(32, "store.transferReq",
		func(e *wire.Encoder, m transferReq) { e.Int32(int32(m.Requester)) },
		func(d *wire.Decoder) transferReq { return transferReq{Requester: transport.NodeID(d.Int32())} })
	wire.Register(33, "store.transferResp",
		func(e *wire.Encoder, m transferResp) {
			e.Int64(m.Epoch)
			e.Uint32(uint32(len(m.Rows)))
			for _, r := range m.Rows {
				e.String(r.Table)
				e.String(r.Key)
				encodeRow(e, r.Cells)
			}
		},
		func(d *wire.Decoder) transferResp {
			var m transferResp
			m.Epoch = d.Int64()
			n := d.Uint32()
			for i := uint32(0); i < n && d.Err() == nil; i++ {
				m.Rows = append(m.Rows, transferRow{Table: d.String(), Key: d.String(), Cells: decodeRow(d)})
			}
			return m
		})
}

func encodeCell(e *wire.Encoder, c Cell) {
	e.RawBytes(c.Value)
	e.Int64(c.TS)
	e.Bool(c.Deleted)
}

func decodeCell(d *wire.Decoder) Cell {
	return Cell{Value: d.RawBytes(), TS: d.Int64(), Deleted: d.Bool()}
}

// encodeRow writes a row as [u32 count][sorted (col, cell)...], with
// nilCount marking a nil row.
func encodeRow(e *wire.Encoder, r Row) {
	if r == nil {
		e.Uint32(nilCount)
		return
	}
	e.Uint32(uint32(len(r)))
	cols := make([]string, 0, len(r))
	for col := range r {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		e.String(col)
		encodeCell(e, r[col])
	}
}

func decodeRow(d *wire.Decoder) Row {
	n := d.Uint32()
	if n == nilCount {
		return nil
	}
	r := make(Row)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		col := d.String()
		r[col] = decodeCell(d)
	}
	return r
}

// encodeStrings writes a string slice with nil preserved (readReq uses nil
// Cols for "all columns").
func encodeStrings(e *wire.Encoder, ss []string) {
	if ss == nil {
		e.Uint32(nilCount)
		return
	}
	e.Uint32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

func decodeStrings(d *wire.Decoder) []string {
	n := d.Uint32()
	if n == nilCount {
		return nil
	}
	ss := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		ss = append(ss, d.String())
	}
	return ss
}

func encodeBallot(e *wire.Encoder, b paxos.Ballot) {
	e.Uint64(b.Counter)
	e.Int32(b.Node)
}

func decodeBallot(d *wire.Decoder) paxos.Ballot {
	return paxos.Ballot{Counter: d.Uint64(), Node: d.Int32()}
}
