package store

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestShardOfMatchesFNV pins ShardOf to hash/fnv's 64-bit FNV-1a: the ring
// placement and the shard routing share one hash, and any change to it
// would silently re-home every key in every deployment.
func TestShardOfMatchesFNV(t *testing.T) {
	for _, key := range []string{"", "a", "user001234", "music_lock/x", "cn-a"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		for _, shards := range []int{1, 2, 4, 8, 13} {
			want := 0
			if shards > 1 {
				want = int(h.Sum64() % uint64(shards))
			}
			if got := ShardOf(key, shards); got != want {
				t.Fatalf("ShardOf(%q, %d) = %d, want %d", key, shards, got, want)
			}
		}
	}
}

// TestShardOfZeroAlloc guards the tentpole's "single-shard ops pay nothing"
// promise at its root: routing a key to a shard must not allocate.
func TestShardOfZeroAlloc(t *testing.T) {
	key := "user004217"
	if n := testing.AllocsPerRun(200, func() { _ = ShardOf(key, 8) }); n != 0 {
		t.Fatalf("ShardOf allocates %v times per call, want 0", n)
	}
}

// TestShardedEngineAndScan exercises a Shards > 1 cluster end to end: every
// key lands in its stripe, reads see writes, and a table scan merges keys
// across all stripes of every replica.
func TestShardedEngineAndScan(t *testing.T) {
	fixture(t, Config{Shards: 4}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		const n = 32
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("sk-%d", i)
			if err := cl.Put(tbl, key, val(key), Quorum); err != nil {
				t.Fatalf("Put %s: %v", key, err)
			}
		}
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("sk-%d", i)
			seen[ShardOf(key, 4)] = true
			row, err := cl.Get(tbl, key, Quorum)
			if err != nil || string(row["v"].Value) != key {
				t.Fatalf("Get %s = %v, %v", key, row, err)
			}
		}
		if len(seen) != 4 {
			t.Fatalf("32 keys hit %d/4 stripes", len(seen))
		}
		keys, err := cl.AllKeys(tbl)
		if err != nil {
			t.Fatalf("AllKeys: %v", err)
		}
		if len(keys) != n {
			t.Fatalf("AllKeys across stripes = %d keys, want %d", len(keys), n)
		}
	})
}

// TestShardedCASIndependentKeys checks the striped ballot/timestamp mints:
// CAS rounds on keys in different shards still linearize per key.
func TestShardedCASIndependentKeys(t *testing.T) {
	fixture(t, Config{Shards: 4}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("cas-%d", i)
			res, err := cl.CAS(tbl, key, []Cond{{Col: "v", Want: nil}}, val("first"))
			if err != nil || !res.Applied {
				t.Fatalf("CAS create %s: applied=%v err=%v", key, res.Applied, err)
			}
			res, err = cl.CAS(tbl, key, []Cond{{Col: "v", Want: []byte("first")}}, val("second"))
			if err != nil || !res.Applied {
				t.Fatalf("CAS update %s: applied=%v err=%v", key, res.Applied, err)
			}
			res, err = cl.CAS(tbl, key, []Cond{{Col: "v", Want: []byte("first")}}, val("third"))
			if err != nil || res.Applied {
				t.Fatalf("stale CAS %s: applied=%v err=%v, want condition failure", key, res.Applied, err)
			}
		}
	})
}

// TestCASVisibleToImmediateLocalRead is the regression test for the
// "fresh lockRef not granted" transport-bench flake: on a wall-clock
// runtime, a CAS's commit quorum can be satisfied by remote acks while the
// commit RPC to the coordinator's own replica is still in flight, so an
// immediately following ONE read — served self-first — used to miss the
// write. proposeCommit now applies the commit synchronously to the
// co-located replica before returning. The loop is the lock stack's exact
// shape (GenerateAndEnqueue's CAS followed by a local read-back) at the
// store level, on the same zero-RTT wall-clock simnet the bench uses.
func TestCASVisibleToImmediateLocalRead(t *testing.T) {
	sites := []string{"site-a", "site-b", "site-c"}
	p := simnet.NewProfile("loopback", sites...)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			p.SetRTT(a, b, 0)
		}
	}
	rt := sim.NewReal(1)
	net := simnet.New(rt, simnet.Config{Profile: p, Seed: 1, Bandwidth: -1, JitterFrac: -1})
	c := New(net, Config{RF: 3})
	defer net.Close()
	cl := c.Client(0)

	iters := 400
	if testing.Short() {
		iters = 80
	}
	for i := 0; i < iters; i++ {
		key := fmt.Sprintf("ryw-%d", i)
		res, err := cl.CAS(tbl, key, []Cond{{Col: "v", Want: nil}}, val("enq"))
		if err != nil || !res.Applied {
			t.Fatalf("CAS %s: applied=%v err=%v", key, res.Applied, err)
		}
		row, err := cl.Get(tbl, key, One)
		if err != nil {
			t.Fatalf("ONE read %s: %v", key, err)
		}
		if string(row["v"].Value) != "enq" {
			t.Fatalf("iteration %d: CAS invisible to immediate local ONE read (got %q)", i, row["v"].Value)
		}
	}
}
