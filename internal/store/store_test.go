package store

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/paxos"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const tbl = "t"

// fixture builds a 3-site, 1-node-per-site store cluster on a virtual
// runtime and runs fn inside it.
func fixture(t *testing.T, cfg Config, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster)) {
	t.Helper()
	rt := sim.New(7)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	c := New(net, cfg)
	if err := rt.Run(func() { fn(rt, net, c) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func val(s string) Row { return Row{"v": Cell{Value: []byte(s)}} }

func TestPutGetQuorum(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("hello"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got := string(row["v"].Value); got != "hello" {
			t.Fatalf("Get = %q, want hello", got)
		}
	})
}

func TestGetMissingRow(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		row, err := c.Client(0).Get(tbl, "nope", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if len(row) != 0 {
			t.Fatalf("missing row = %v, want empty", row)
		}
	})
}

func TestLastWriteWins(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", Row{"v": Cell{Value: []byte("new"), TS: 100}}, Quorum); err != nil {
			t.Fatalf("Put new: %v", err)
		}
		// A write carrying an older timestamp must not clobber it.
		if err := cl.Put(tbl, "k", Row{"v": Cell{Value: []byte("old"), TS: 50}}, Quorum); err != nil {
			t.Fatalf("Put old: %v", err)
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got := string(row["v"].Value); got != "new" {
			t.Fatalf("Get = %q, want new (LWW)", got)
		}
	})
}

func TestCellWinsProperties(t *testing.T) {
	// Antisymmetry of the merge order over distinct cells: exactly one of
	// a.wins(b), b.wins(a) holds unless the cells are identical.
	f := func(v1, v2 []byte, ts1, ts2 int64, d1, d2 bool) bool {
		a, b := Cell{Value: v1, TS: ts1, Deleted: d1}, Cell{Value: v2, TS: ts2, Deleted: d2}
		if a.wins(b) && b.wins(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotentAndCommutative(t *testing.T) {
	f := func(v1, v2 []byte, ts1, ts2 int64) bool {
		a := Row{"c": Cell{Value: v1, TS: ts1}}
		b := Row{"c": Cell{Value: v2, TS: ts2}}
		ab := a.clone()
		mergeInto(ab, b)
		ba := b.clone()
		mergeInto(ba, a)
		again := ab.clone()
		mergeInto(again, b)
		return string(ab["c"].Value) == string(ba["c"].Value) &&
			string(again["c"].Value) == string(ab["c"].Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTombstoneDeletes(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("x"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := cl.Delete(tbl, "k", []string{"v"}, Quorum); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if _, ok := row["v"]; ok {
			t.Fatalf("deleted cell still visible: %v", row)
		}
	})
}

func TestQuorumWriteSurvivesOneReplicaDown(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		net.Crash(2)
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("v1"), Quorum); err != nil {
			t.Fatalf("Put with 1 down: %v", err)
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil {
			t.Fatalf("Get with 1 down: %v", err)
		}
		if got := string(row["v"].Value); got != "v1" {
			t.Fatalf("Get = %q", got)
		}
	})
}

func TestQuorumWriteFailsWithTwoReplicasDown(t *testing.T) {
	fixture(t, Config{Timeout: 500 * time.Millisecond}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		net.Crash(1)
		net.Crash(2)
		err := c.Client(0).Put(tbl, "k", val("v1"), Quorum)
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("err = %v, want ErrUnavailable", err)
		}
	})
}

func TestHintedHandoffConvergesPartitionedReplica(t *testing.T) {
	fixture(t, Config{Timeout: 500 * time.Millisecond}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		net.Isolate(2)
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("v1"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if got := c.replicas[2].dump(tbl, "k"); got != nil {
			t.Fatalf("isolated replica has data: %v", got)
		}
		net.Heal()
		rt.Sleep(5 * time.Second) // handoff retries land
		got := c.replicas[2].dump(tbl, "k")
		if got == nil || string(got["v"].Value) != "v1" {
			t.Fatalf("replica 2 after heal = %v, want v1", got)
		}
	})
}

func TestNoHintedHandoffLeavesReplicaStale(t *testing.T) {
	fixture(t, Config{Timeout: 500 * time.Millisecond, NoHintedHandoff: true, NoReadRepair: true},
		func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
			net.Isolate(2)
			if err := c.Client(0).Put(tbl, "k", val("v1"), Quorum); err != nil {
				t.Fatalf("Put: %v", err)
			}
			net.Heal()
			rt.Sleep(10 * time.Second)
			if got := c.replicas[2].dump(tbl, "k"); got != nil {
				t.Fatalf("replica 2 converged without handoff/repair: %v", got)
			}
		})
}

func TestReadRepairFixesStaleReplica(t *testing.T) {
	fixture(t, Config{Timeout: 500 * time.Millisecond, NoHintedHandoff: true},
		func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
			net.Isolate(2)
			if err := c.Client(0).Put(tbl, "k", val("v1"), Quorum); err != nil {
				t.Fatalf("Put: %v", err)
			}
			net.Heal()
			// A quorum read including replica 2 repairs it in the background.
			for i := 0; i < 5; i++ {
				if _, err := c.Client(2).Get(tbl, "k", All); err == nil {
					break
				}
			}
			rt.Sleep(time.Second)
			got := c.replicas[2].dump(tbl, "k")
			if got == nil || string(got["v"].Value) != "v1" {
				t.Fatalf("replica 2 after read repair = %v, want v1", got)
			}
		})
}

func TestEventualReadCanBeStale(t *testing.T) {
	fixture(t, Config{Timeout: 500 * time.Millisecond, NoHintedHandoff: true, NoReadRepair: true},
		func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
			cl0 := c.Client(0)
			if err := cl0.Put(tbl, "k", Row{"v": Cell{Value: []byte("v1"), TS: 10}}, All); err != nil {
				t.Fatalf("Put v1: %v", err)
			}
			net.Isolate(2)
			if err := cl0.Put(tbl, "k", Row{"v": Cell{Value: []byte("v2"), TS: 20}}, Quorum); err != nil {
				t.Fatalf("Put v2: %v", err)
			}
			net.Heal()
			// Node 2 reads locally (CL ONE): still sees v1.
			row, err := c.Client(2).Get(tbl, "k", One)
			if err != nil {
				t.Fatalf("Get ONE: %v", err)
			}
			if got := string(row["v"].Value); got != "v1" {
				t.Fatalf("stale ONE read = %q, want v1", got)
			}
			// A quorum read from the same node sees the latest value.
			row, err = c.Client(2).Get(tbl, "k", Quorum)
			if err != nil {
				t.Fatalf("Get QUORUM: %v", err)
			}
			if got := string(row["v"].Value); got != "v2" {
				t.Fatalf("quorum read = %q, want v2", got)
			}
		})
}

func TestQuorumLatencyShape(t *testing.T) {
	// From ohio, a quorum write needs the coordinator's own replica plus the
	// fastest remote (ncalifornia, RTT 53.79ms): roughly one RTT.
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		start := rt.Now()
		if err := cl.Put(tbl, "k", val("x"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		elapsed := rt.Now() - start
		if elapsed < 50*time.Millisecond || elapsed > 70*time.Millisecond {
			t.Fatalf("quorum write took %v, want ≈54ms", elapsed)
		}
	})
}

func TestCASBasicApply(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		res, err := cl.CAS(tbl, "k", []Cond{{Col: "v", Want: nil}}, val("first"))
		if err != nil {
			t.Fatalf("CAS: %v", err)
		}
		if !res.Applied {
			t.Fatal("CAS on absent row not applied")
		}
		row, err := cl.Get(tbl, "k", Quorum)
		if err != nil || string(row["v"].Value) != "first" {
			t.Fatalf("after CAS: row = %v, err = %v", row, err)
		}
	})
}

func TestCASConditionFailureReturnsCurrent(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "k", val("existing"), Quorum); err != nil {
			t.Fatalf("Put: %v", err)
		}
		res, err := cl.CAS(tbl, "k", []Cond{{Col: "v", Want: nil}}, val("second"))
		if err != nil {
			t.Fatalf("CAS: %v", err)
		}
		if res.Applied {
			t.Fatal("CAS applied despite failing condition")
		}
		if got := string(res.Current["v"].Value); got != "existing" {
			t.Fatalf("Current = %q, want existing", got)
		}
	})
}

func TestCASLatencyIsFourRoundTrips(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		start := rt.Now()
		if _, err := cl.CAS(tbl, "k", nil, val("x")); err != nil {
			t.Fatalf("CAS: %v", err)
		}
		elapsed := rt.Now() - start
		// 4 quorum rounds from ohio ≈ 4 × 54ms.
		if elapsed < 190*time.Millisecond || elapsed > 280*time.Millisecond {
			t.Fatalf("LWT took %v, want ≈215ms (4 RTTs)", elapsed)
		}
	})
}

func TestCASCommitStampIsBallotPure(t *testing.T) {
	// Regression: commit-time stamping used to bump an unstamped cell above
	// the replica's own current cell (cur.TS+1), so one logical CAS write
	// carried different timestamps on different replicas depending on what
	// each had locally. A quorum read then LWW-merged a stale replica's
	// higher-stamped older cell over a newer commit — observed in the
	// chaosnet campaign as a lock-row guard regression that re-minted an
	// already-used lockRef, admitting two writers to one critical section.
	// The stamp must be a pure function of the ballot: identical on a
	// replica that has never seen the row and on one holding a cell stamped
	// above the ballot counter (where LWW rightly keeps the newer cell).
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		seeded, empty := c.replicas[0], c.replicas[1]
		const high = int64(1) << 50
		if _, err := seeded.handleApply(0, applyReq{Table: tbl, Key: "k",
			Cells: Row{"v": Cell{Value: []byte("old"), TS: high}}}); err != nil {
			t.Fatalf("seed apply: %v", err)
		}
		b := paxos.Ballot{Counter: 12345, Node: 1}
		req := commitReq{Table: tbl, Key: "k", B: b, Update: Row{"v": Cell{Value: []byte("new")}}}
		if _, err := seeded.handleCommit(1, req); err != nil {
			t.Fatalf("commit at seeded replica: %v", err)
		}
		if _, err := empty.handleCommit(1, req); err != nil {
			t.Fatalf("commit at empty replica: %v", err)
		}
		got := empty.dump(tbl, "k")["v"]
		if string(got.Value) != "new" || got.TS != int64(b.Counter) {
			t.Fatalf("empty replica cell = %q ts=%d, want \"new\" ts=%d", got.Value, got.TS, b.Counter)
		}
		kept := seeded.dump(tbl, "k")["v"]
		if string(kept.Value) != "old" || kept.TS != high {
			t.Fatalf("seeded replica cell = %q ts=%d, want the local \"old\" cell kept at ts=%d (no per-replica stamp bump)",
				kept.Value, kept.TS, high)
		}
	})
}

func TestCASLinearizesCounterIncrements(t *testing.T) {
	// The lock store's createLockRef pattern: read guard, CAS(guard==old,
	// guard=old+1). Under contention every increment must be distinct.
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		const clients, rounds = 3, 5
		type claim struct {
			client int
			value  int
		}
		claims := sim.NewMailbox[claim](rt)
		for ci := 0; ci < clients; ci++ {
			ci := ci
			cl := c.Client(simnet.NodeID(ci))
			rt.Go(func() {
				for r := 0; r < rounds; r++ {
					for {
						row, err := cl.Get(tbl, "ctr", Quorum)
						if err != nil {
							t.Errorf("Get: %v", err)
							return
						}
						cur := row["n"].Value
						next := len(cur) + 1 // unary counter keeps equality simple
						res, err := cl.CAS(tbl, "ctr",
							[]Cond{{Col: "n", Want: cur}},
							Row{"n": Cell{Value: bytesOfLen(next)}})
						if err != nil {
							t.Errorf("CAS: %v", err)
							return
						}
						if res.Applied {
							claims.Send(claim{ci, next})
							break
						}
					}
				}
			})
		}
		// Linearizability guarantee: no two applied CASes share a pre-image,
		// so every claimed value is distinct. (A beaten proposal can still
		// be completed by a competing proposer — Cassandra's "ghost" LWT —
		// so some counter values may go unclaimed; the lock store treats
		// those as orphan lockRefs, cleaned up by forcedRelease.)
		seen := make(map[int]bool)
		maxClaim := 0
		for i := 0; i < clients*rounds; i++ {
			cm, err := claims.RecvTimeout(5 * time.Minute)
			if err != nil {
				t.Fatalf("missing claims after %d: %v", i, err)
			}
			if seen[cm.value] {
				t.Fatalf("counter value %d claimed twice", cm.value)
			}
			seen[cm.value] = true
			if cm.value > maxClaim {
				maxClaim = cm.value
			}
		}
		row, err := c.Client(0).Get(tbl, "ctr", Quorum)
		if err != nil {
			t.Fatalf("final Get: %v", err)
		}
		if got := len(row["n"].Value); got < maxClaim {
			t.Fatalf("final counter %d below max claim %d", got, maxClaim)
		}
	})
}

func bytesOfLen(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'x'
	}
	return b
}

func TestCASUnavailableWithoutQuorum(t *testing.T) {
	fixture(t, Config{Timeout: 300 * time.Millisecond}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		net.Crash(1)
		net.Crash(2)
		_, err := c.Client(0).CAS(tbl, "k", nil, val("x"))
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("err = %v, want ErrUnavailable", err)
		}
	})
}

func TestCASSurvivesOneReplicaDown(t *testing.T) {
	fixture(t, Config{Timeout: 300 * time.Millisecond}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		net.Crash(2)
		res, err := c.Client(0).CAS(tbl, "k", nil, val("x"))
		if err != nil || !res.Applied {
			t.Fatalf("CAS with one down = (%+v, %v)", res, err)
		}
	})
}

func TestAllKeys(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		for i := 0; i < 5; i++ {
			if err := cl.Put(tbl, fmt.Sprintf("key-%d", i), val("x"), Quorum); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := cl.Delete(tbl, "key-3", []string{"v"}, Quorum); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		keys, err := cl.AllKeys(tbl)
		if err != nil {
			t.Fatalf("AllKeys: %v", err)
		}
		want := []string{"key-0", "key-1", "key-2", "key-4"}
		if len(keys) != len(want) {
			t.Fatalf("AllKeys = %v, want %v", keys, want)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("AllKeys = %v, want %v", keys, want)
			}
		}
	})
}

func TestRingSpreadsReplicasAcrossSites(t *testing.T) {
	rt := sim.New(1)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, NodesPerSite: 3})
	c := New(net, Config{RF: 3})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := c.ReplicasFor(key)
		if len(reps) != 3 {
			t.Fatalf("RF = %d", len(reps))
		}
		sites := make(map[string]bool)
		for _, r := range reps {
			sites[net.SiteOf(r)] = true
		}
		if len(sites) != 3 {
			t.Fatalf("key %s replicas %v span %d sites, want 3", key, reps, len(sites))
		}
	}
}

func TestRingShardsKeys(t *testing.T) {
	rt := sim.New(1)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, NodesPerSite: 3})
	c := New(net, Config{RF: 3})
	used := make(map[simnet.NodeID]bool)
	for i := 0; i < 200; i++ {
		for _, r := range c.ReplicasFor(fmt.Sprintf("key-%d", i)) {
			used[r] = true
		}
	}
	if len(used) != 9 {
		t.Fatalf("only %d/9 nodes used by sharding", len(used))
	}
}

func TestCondsMatch(t *testing.T) {
	row := Row{
		"a": Cell{Value: []byte("1")},
		"d": Cell{Value: []byte("x"), Deleted: true},
	}
	tests := []struct {
		conds []Cond
		want  bool
	}{
		{nil, true},
		{[]Cond{{Col: "a", Want: []byte("1")}}, true},
		{[]Cond{{Col: "a", Want: []byte("2")}}, false},
		{[]Cond{{Col: "b", Want: nil}}, true},
		{[]Cond{{Col: "a", Want: nil}}, false},
		{[]Cond{{Col: "d", Want: nil}}, true}, // deleted counts as absent
		{[]Cond{{Col: "d", Want: []byte("x")}}, false},
		{[]Cond{{Col: "a", Want: []byte("1")}, {Col: "b", Want: nil}}, true},
	}
	for i, tt := range tests {
		if got := condsMatch(tt.conds, row); got != tt.want {
			t.Errorf("case %d: condsMatch = %v, want %v", i, got, tt.want)
		}
	}
}
