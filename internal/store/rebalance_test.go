package store

import (
	"fmt"
	"testing"

	"repro/internal/transport"
)

// rebalanceSample is the key-sample size for the movement-bound property.
// 100k keys keeps the observed movement fraction within a fraction of a
// percent of its expectation, so the slack below is generous.
const rebalanceSample = 100_000

func replicaSets(r ring, n int) [][]transport.NodeID {
	out := make([][]transport.NodeID, n)
	for i := range out {
		out[i] = r.replicasFor(fmt.Sprintf("user-%d", i))
	}
	return out
}

// movement compares per-key replica sets across an epoch change and
// returns the number of new replica assignments (the rows that must
// transfer), plus the arrived/departed node sets per key for the caller's
// stronger structural assertions.
func movement(before, after [][]transport.NodeID) (movedSlots int, arrived, departed [][]transport.NodeID) {
	arrived = make([][]transport.NodeID, len(before))
	departed = make([][]transport.NodeID, len(before))
	for i := range before {
		for _, id := range after[i] {
			if !contains(before[i], id) {
				arrived[i] = append(arrived[i], id)
				movedSlots++
			}
		}
		for _, id := range before[i] {
			if !contains(after[i], id) {
				departed[i] = append(departed[i], id)
			}
		}
	}
	return
}

// TestRebalanceBound pins the property that makes live membership viable:
// a join or retire on the consistent-hash ring moves at most the
// consistent-hashing-bounded fraction of keys — RF·(changed nodes / total
// nodes) of the replica assignments in expectation — and every move
// involves the joining/retiring site. Keys the change doesn't touch keep
// byte-identical replica sets; nothing is gratuitously reshuffled. (The
// static modulo ring would move nearly every key on any size change,
// which is why dynamic membership switches placement modes.)
func TestRebalanceBound(t *testing.T) {
	three := []RingNode{
		{ID: 0, Site: "site-a"}, {ID: 1, Site: "site-a"},
		{ID: 2, Site: "site-b"}, {ID: 3, Site: "site-b"},
		{ID: 4, Site: "site-c"}, {ID: 5, Site: "site-c"},
	}
	four := append(append([]RingNode{}, three...), RingNode{ID: 6, Site: "site-d"}, RingNode{ID: 7, Site: "site-d"})
	const rf = 3

	siteOf := func(members []RingNode) map[transport.NodeID]string {
		m := make(map[transport.NodeID]string)
		for _, n := range members {
			m[n.ID] = n.Site
		}
		return m
	}

	t.Run("join", func(t *testing.T) {
		before := replicaSets(buildRingMembers(three, rf), rebalanceSample)
		after := replicaSets(buildRingMembers(four, rf), rebalanceSample)
		movedSlots, arrived, departed := movement(before, after)

		// The joining site owns 2 of 8 nodes' worth of the circle, so at
		// most ~1/4 of the RF·keys replica assignments should move; 1.5×
		// slack absorbs vnode-placement variance.
		bound := int(1.5 * 0.25 * float64(rebalanceSample*rf))
		if movedSlots > bound {
			t.Fatalf("join moved %d replica slots, want <= %d (2/8 of circle + slack)", movedSlots, bound)
		}
		if movedSlots == 0 {
			t.Fatal("join moved nothing; the new site holds no keys")
		}
		sites := siteOf(four)
		for i := range arrived {
			for _, id := range arrived[i] {
				if sites[id] != "site-d" {
					t.Fatalf("key %d gained replica on node %d (%s); a join may only add replicas on the joining site", i, id, sites[id])
				}
			}
			if len(arrived[i]) != len(departed[i]) {
				t.Fatalf("key %d: %d arrivals vs %d departures; RF must be conserved", i, len(arrived[i]), len(departed[i]))
			}
			if len(arrived[i]) == 0 && len(departed[i]) == 0 {
				for j, id := range before[i] {
					if after[i][j] != id {
						t.Fatalf("unmoved key %d changed replica order: %v -> %v", i, before[i], after[i])
					}
				}
			}
		}
	})

	t.Run("retire", func(t *testing.T) {
		before := replicaSets(buildRingMembers(four, rf), rebalanceSample)
		after := replicaSets(buildRingMembers(three, rf), rebalanceSample)
		movedSlots, arrived, departed := movement(before, after)

		bound := int(1.5 * 0.25 * float64(rebalanceSample*rf))
		if movedSlots > bound {
			t.Fatalf("retire moved %d replica slots, want <= %d", movedSlots, bound)
		}
		sites := siteOf(four)
		for i := range departed {
			for _, id := range departed[i] {
				if sites[id] != "site-d" {
					t.Fatalf("key %d lost replica on node %d (%s); a retire may only drop replicas on the retiring site", i, id, sites[id])
				}
			}
			if len(arrived[i]) == 0 && len(departed[i]) == 0 {
				for j, id := range before[i] {
					if after[i][j] != id {
						t.Fatalf("unmoved key %d changed replica order: %v -> %v", i, before[i], after[i])
					}
				}
			}
		}
	})

	t.Run("scale-out-one-site", func(t *testing.T) {
		// Adding one node to an existing site only re-elects that site's
		// representative for the keys whose walk now meets the new node
		// first — the other sites' replicas never move.
		grown := append(append([]RingNode{}, three...), RingNode{ID: 6, Site: "site-a"})
		before := replicaSets(buildRingMembers(three, rf), rebalanceSample)
		after := replicaSets(buildRingMembers(grown, rf), rebalanceSample)
		movedSlots, arrived, _ := movement(before, after)

		// Node 6 holds 1/3 of site-a's vnodes and each key has exactly one
		// site-a replica, so ~1/3 of keys move exactly one slot.
		bound := int(1.5 / 3.0 * float64(rebalanceSample))
		if movedSlots > bound {
			t.Fatalf("scale-out moved %d replica slots, want <= %d", movedSlots, bound)
		}
		for i := range arrived {
			for _, id := range arrived[i] {
				if id != 6 {
					t.Fatalf("key %d gained replica on node %d; only the new node may gain keys", i, id)
				}
			}
		}
	})
}
