// Package store implements the eventually consistent, replicated key-value
// store MUSIC is layered on — a from-scratch stand-in for Cassandra with
// the semantics the paper relies on (§III-B):
//
//   - tables of rows; each row is a set of named cells carrying a scalar
//     timestamp; replicas merge concurrent writes per cell, last write wins;
//   - a hash-ring partitioner with a configurable replication factor that
//     spreads each key's replicas across sites;
//   - coordinator-driven reads and writes at ONE / QUORUM / ALL consistency
//     (one round trip to the required number of replicas), with read repair
//     and hinted handoff providing eventual convergence;
//   - per-key compare-and-set ("light-weight transactions") built on Paxos,
//     costing four quorum round trips exactly like Cassandra's LWTs.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/paxos"
	"repro/internal/transport"
)

// Consistency selects how many replica acknowledgements an operation needs.
type Consistency int

// Consistency levels, mirroring Cassandra's ONE / QUORUM / ALL.
const (
	One Consistency = iota + 1
	Quorum
	All
)

// String names the level for logs and trace annotations.
func (c Consistency) String() string {
	switch c {
	case One:
		return "ONE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	}
	return fmt.Sprintf("Consistency(%d)", int(c))
}

// need translates a consistency level into an ack count for rf replicas.
func (c Consistency) need(rf int) int {
	switch c {
	case One:
		return 1
	case All:
		return rf
	default:
		return rf/2 + 1
	}
}

// Cell is one column value with its write timestamp. Deleted marks a
// tombstone. Higher timestamps win; on a timestamp tie a tombstone beats a
// live cell and otherwise the lexically larger value wins (Cassandra's
// tiebreak), so merging is commutative and idempotent.
type Cell struct {
	Value   []byte
	TS      int64
	Deleted bool
}

// Row maps column names to cells.
type Row map[string]Cell

// clone deep-copies a row (cell values are treated as immutable).
func (r Row) clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// live returns only the non-tombstone cells of r.
func (r Row) live() Row {
	out := make(Row, len(r))
	for k, v := range r {
		if !v.Deleted {
			out[k] = v
		}
	}
	return out
}

// wins reports whether cell a beats cell b under LWW rules.
func (a Cell) wins(b Cell) bool {
	if a.TS != b.TS {
		return a.TS > b.TS
	}
	if a.Deleted != b.Deleted {
		return a.Deleted
	}
	return bytes.Compare(a.Value, b.Value) > 0
}

// mergeInto folds src into dst cell-wise, returning true if dst changed.
func mergeInto(dst Row, src Row) bool {
	changed := false
	for col, c := range src {
		cur, ok := dst[col]
		if !ok || c.wins(cur) {
			dst[col] = c
			changed = true
		}
	}
	return changed
}

// rowSize approximates the wire size of a row in bytes.
func rowSize(r Row) int {
	n := 0
	for col, c := range r {
		n += len(col) + len(c.Value) + 16
	}
	return n
}

// Cond is one conjunct of a compare-and-set condition: the named column
// must currently equal Want; a nil Want requires the column to be absent
// (or deleted). An empty condition list always applies.
type Cond struct {
	Col  string
	Want []byte
}

// condsMatch evaluates conditions against the live cells of row.
func condsMatch(conds []Cond, row Row) bool {
	for _, c := range conds {
		cell, ok := row[c.Col]
		present := ok && !cell.Deleted
		if c.Want == nil {
			if present {
				return false
			}
			continue
		}
		if !present || !bytes.Equal(cell.Value, c.Want) {
			return false
		}
	}
	return true
}

// Errors reported by store clients.
var (
	// ErrUnavailable means too few replicas acknowledged in time. A failed
	// write is NOT rolled back: it may have reached some replicas (§III).
	ErrUnavailable = errors.New("store: not enough replicas responded")
	// ErrContention means a compare-and-set lost too many Paxos races.
	ErrContention = errors.New("store: cas contention, retries exhausted")
)

// CostModel sets the per-operation CPU costs that bound node throughput.
// The defaults are calibrated so a 3-node cluster sustains roughly the
// 41K eventual writes/s the paper measured for CassaEV (Fig 4a).
type CostModel struct {
	CoordWrite   time.Duration // coordinator work per write
	CoordRead    time.Duration // coordinator work per read
	ReplicaApply time.Duration // replica work applying a mutation
	ReplicaRead  time.Duration // replica work serving a read
	PaxosMsg     time.Duration // replica work per Paxos message
	PerKB        time.Duration // added work per KiB of payload
}

func defaultCosts() CostModel {
	return CostModel{
		CoordWrite:   300 * time.Microsecond,
		CoordRead:    250 * time.Microsecond,
		ReplicaApply: 90 * time.Microsecond,
		ReplicaRead:  90 * time.Microsecond,
		PaxosMsg:     80 * time.Microsecond,
		PerKB:        1500 * time.Nanosecond,
	}
}

// Config describes a store cluster.
type Config struct {
	// RF is the replication factor. Defaults to min(3, len(nodes)).
	RF int
	// Nodes lists the network nodes running store replicas. Defaults to
	// every node in the network.
	Nodes []transport.NodeID
	// LocalNodes lists the subset of Nodes hosted by this process: replica
	// services are registered only for them. Empty means all of Nodes are
	// local — the single-process (simulated or in-memory) deployment. The
	// ring always spans all of Nodes, so a multi-process cluster agrees on
	// placement while each musicd process serves only its own node.
	LocalNodes []transport.NodeID
	// NoReadRepair disables background repair of stale replicas on reads.
	NoReadRepair bool
	// DigestReads makes quorum/all reads fetch full data from the nearest
	// replica and digests from the rest (Cassandra's read path), falling
	// back to full reads plus repair on digest mismatch.
	DigestReads bool
	// NoHintedHandoff disables background write retries to failed replicas.
	NoHintedHandoff bool
	// Timeout bounds each replica round trip. Defaults to the network's
	// RPC timeout.
	Timeout time.Duration
	// MaxCASAttempts bounds Paxos retries under contention. Defaults to 16.
	MaxCASAttempts int
	// Shards stripes each replica's row engine and the coordinator's
	// timestamp/ballot mints by ShardOf(key, Shards), so operations on
	// keys in different shards never contend on a shared mutex. Placement
	// (the ring walk) is unaffected: sharding partitions lock state, not
	// replica sets. Defaults to 1 (the unsharded plane).
	Shards int
	// Costs overrides the CPU cost model; zero fields keep defaults.
	Costs CostModel
	// History, when non-nil, records every coordinator-level put and every
	// quorum-level get as store.put/store.get ops (diagnostics beneath the
	// MUSIC-level history; the ECF checkers ignore store kinds). ONE reads
	// — lock-wait polling and eventual peeks — are deliberately not
	// recorded to keep explorer histories readable.
	History *history.Recorder
}

// Cluster is a store deployment over a Transport. Build one with New, then
// obtain per-node Clients to issue operations.
type Cluster struct {
	net  transport.Transport
	cfg  Config
	ring ring

	replicas map[transport.NodeID]*replica

	// clocks stripes the monotonic timestamp/ballot mint by key shard so
	// writes to different shards never serialize on one mutex. Monotonicity
	// is only required per key (LWW merge and Paxos ballots are per-row
	// state), so independent stripes are safe.
	clocks []clockStripe
}

// clockStripe is one shard's timestamp/ballot mint.
type clockStripe struct {
	mu   sync.Mutex
	last uint64
	_    [40]byte // pad to a cache line so stripes don't false-share
}

// New builds a store cluster over tr and registers its replica services on
// every local node.
func New(tr transport.Transport, cfg Config) *Cluster {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = tr.Nodes()
	}
	if len(cfg.LocalNodes) == 0 {
		cfg.LocalNodes = cfg.Nodes
	}
	if cfg.RF == 0 {
		cfg.RF = 3
	}
	if cfg.RF > len(cfg.Nodes) {
		cfg.RF = len(cfg.Nodes)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = tr.RPCTimeout()
	}
	if cfg.MaxCASAttempts == 0 {
		cfg.MaxCASAttempts = 16
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	d := defaultCosts()
	if cfg.Costs.CoordWrite == 0 {
		cfg.Costs.CoordWrite = d.CoordWrite
	}
	if cfg.Costs.CoordRead == 0 {
		cfg.Costs.CoordRead = d.CoordRead
	}
	if cfg.Costs.ReplicaApply == 0 {
		cfg.Costs.ReplicaApply = d.ReplicaApply
	}
	if cfg.Costs.ReplicaRead == 0 {
		cfg.Costs.ReplicaRead = d.ReplicaRead
	}
	if cfg.Costs.PaxosMsg == 0 {
		cfg.Costs.PaxosMsg = d.PaxosMsg
	}
	if cfg.Costs.PerKB == 0 {
		cfg.Costs.PerKB = d.PerKB
	}

	c := &Cluster{
		net:      tr,
		cfg:      cfg,
		ring:     buildRing(tr, cfg.Nodes, cfg.RF),
		replicas: make(map[transport.NodeID]*replica, len(cfg.LocalNodes)),
		clocks:   make([]clockStripe, cfg.Shards),
	}
	for _, id := range cfg.LocalNodes {
		r := newReplica(cfg.Shards)
		c.replicas[id] = r
		r.register(tr, id, cfg.Costs)
	}
	return c
}

// Shards returns the configured shard count (≥ 1).
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Net returns the underlying transport.
func (c *Cluster) Net() transport.Transport { return c.net }

// Nodes returns the store nodes.
func (c *Cluster) Nodes() []transport.NodeID { return append([]transport.NodeID(nil), c.cfg.Nodes...) }

// RF returns the effective replication factor.
func (c *Cluster) RF() int { return c.ring.rf }

// ReplicasFor returns the nodes holding key (exposed for tests and for the
// lock store's local peek).
func (c *Cluster) ReplicasFor(key string) []transport.NodeID { return c.ring.replicasFor(key) }

// NowMicros returns the cluster clock in microseconds, used to timestamp
// plain writes.
func (c *Cluster) NowMicros() int64 { return int64(c.net.Runtime().Now() / time.Microsecond) }

// nextWriteTS returns a per-shard-monotonic microsecond timestamp for plain
// writes to key, so two back-to-back writes to the same key never tie on
// timestamp.
func (c *Cluster) nextWriteTS(key string) int64 {
	s := &c.clocks[ShardOf(key, len(c.clocks))]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(c.NowMicros())
	if n <= s.last {
		n = s.last + 1
	}
	s.last = n
	return int64(n)
}

// nextBallot mints a monotonically increasing ballot for a coordinator's
// CAS on key.
func (c *Cluster) nextBallot(key string, node transport.NodeID, atLeast uint64) paxos.Ballot {
	s := &c.clocks[ShardOf(key, len(c.clocks))]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(c.NowMicros())
	if n <= s.last {
		n = s.last + 1
	}
	if n <= atLeast {
		n = atLeast + 1
	}
	s.last = n
	return paxos.Ballot{Counter: n, Node: int32(node)}
}
