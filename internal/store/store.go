// Package store implements the eventually consistent, replicated key-value
// store MUSIC is layered on — a from-scratch stand-in for Cassandra with
// the semantics the paper relies on (§III-B):
//
//   - tables of rows; each row is a set of named cells carrying a scalar
//     timestamp; replicas merge concurrent writes per cell, last write wins;
//   - a hash-ring partitioner with a configurable replication factor that
//     spreads each key's replicas across sites;
//   - coordinator-driven reads and writes at ONE / QUORUM / ALL consistency
//     (one round trip to the required number of replicas), with read repair
//     and hinted handoff providing eventual convergence;
//   - per-key compare-and-set ("light-weight transactions") built on Paxos,
//     costing four quorum round trips exactly like Cassandra's LWTs.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/paxos"
	"repro/internal/transport"
)

// Consistency selects how many replica acknowledgements an operation needs.
type Consistency int

// Consistency levels, mirroring Cassandra's ONE / QUORUM / ALL.
const (
	One Consistency = iota + 1
	Quorum
	All
)

// String names the level for logs and trace annotations.
func (c Consistency) String() string {
	switch c {
	case One:
		return "ONE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	}
	return fmt.Sprintf("Consistency(%d)", int(c))
}

// need translates a consistency level into an ack count for rf replicas.
func (c Consistency) need(rf int) int {
	switch c {
	case One:
		return 1
	case All:
		return rf
	default:
		return rf/2 + 1
	}
}

// Cell is one column value with its write timestamp. Deleted marks a
// tombstone. Higher timestamps win; on a timestamp tie a tombstone beats a
// live cell and otherwise the lexically larger value wins (Cassandra's
// tiebreak), so merging is commutative and idempotent.
type Cell struct {
	Value   []byte
	TS      int64
	Deleted bool
}

// Row maps column names to cells.
type Row map[string]Cell

// clone deep-copies a row (cell values are treated as immutable).
func (r Row) clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// live returns only the non-tombstone cells of r.
func (r Row) live() Row {
	out := make(Row, len(r))
	for k, v := range r {
		if !v.Deleted {
			out[k] = v
		}
	}
	return out
}

// wins reports whether cell a beats cell b under LWW rules.
func (a Cell) wins(b Cell) bool {
	if a.TS != b.TS {
		return a.TS > b.TS
	}
	if a.Deleted != b.Deleted {
		return a.Deleted
	}
	return bytes.Compare(a.Value, b.Value) > 0
}

// mergeInto folds src into dst cell-wise, returning true if dst changed.
func mergeInto(dst Row, src Row) bool {
	changed := false
	for col, c := range src {
		cur, ok := dst[col]
		if !ok || c.wins(cur) {
			dst[col] = c
			changed = true
		}
	}
	return changed
}

// rowSize approximates the wire size of a row in bytes.
func rowSize(r Row) int {
	n := 0
	for col, c := range r {
		n += len(col) + len(c.Value) + 16
	}
	return n
}

// Cond is one conjunct of a compare-and-set condition: the named column
// must currently equal Want; a nil Want requires the column to be absent
// (or deleted). An empty condition list always applies.
type Cond struct {
	Col  string
	Want []byte
}

// condsMatch evaluates conditions against the live cells of row.
func condsMatch(conds []Cond, row Row) bool {
	for _, c := range conds {
		cell, ok := row[c.Col]
		present := ok && !cell.Deleted
		if c.Want == nil {
			if present {
				return false
			}
			continue
		}
		if !present || !bytes.Equal(cell.Value, c.Want) {
			return false
		}
	}
	return true
}

// Errors reported by store clients.
var (
	// ErrUnavailable means too few replicas acknowledged in time. A failed
	// write is NOT rolled back: it may have reached some replicas (§III).
	ErrUnavailable = errors.New("store: not enough replicas responded")
	// ErrContention means a compare-and-set lost too many Paxos races.
	ErrContention = errors.New("store: cas contention, retries exhausted")
)

// CostModel sets the per-operation CPU costs that bound node throughput.
// The defaults are calibrated so a 3-node cluster sustains roughly the
// 41K eventual writes/s the paper measured for CassaEV (Fig 4a).
type CostModel struct {
	CoordWrite   time.Duration // coordinator work per write
	CoordRead    time.Duration // coordinator work per read
	ReplicaApply time.Duration // replica work applying a mutation
	ReplicaRead  time.Duration // replica work serving a read
	PaxosMsg     time.Duration // replica work per Paxos message
	PerKB        time.Duration // added work per KiB of payload
}

func defaultCosts() CostModel {
	return CostModel{
		CoordWrite:   300 * time.Microsecond,
		CoordRead:    250 * time.Microsecond,
		ReplicaApply: 90 * time.Microsecond,
		ReplicaRead:  90 * time.Microsecond,
		PaxosMsg:     80 * time.Microsecond,
		PerKB:        1500 * time.Nanosecond,
	}
}

// Config describes a store cluster.
type Config struct {
	// RF is the replication factor. Defaults to min(3, len(nodes)).
	RF int
	// Nodes lists the network nodes running store replicas. Defaults to
	// every node in the network.
	Nodes []transport.NodeID
	// LocalNodes lists the subset of Nodes hosted by this process: replica
	// services are registered only for them. Empty means all of Nodes are
	// local — the single-process (simulated or in-memory) deployment. The
	// ring always spans all of Nodes, so a multi-process cluster agrees on
	// placement while each musicd process serves only its own node.
	LocalNodes []transport.NodeID
	// NoReadRepair disables background repair of stale replicas on reads.
	NoReadRepair bool
	// DigestReads makes quorum/all reads fetch full data from the nearest
	// replica and digests from the rest (Cassandra's read path), falling
	// back to full reads plus repair on digest mismatch.
	DigestReads bool
	// NoHintedHandoff disables background write retries to failed replicas.
	NoHintedHandoff bool
	// Timeout bounds each replica round trip. Defaults to the network's
	// RPC timeout.
	Timeout time.Duration
	// MaxCASAttempts bounds Paxos retries under contention. Defaults to 16.
	MaxCASAttempts int
	// Members, when set, seeds epoch-1 placement explicitly (node + site
	// pairs) instead of deriving it from Nodes and the transport's site
	// map. Dynamic deployments use it to start the ring on the member
	// sites while spare nodes (future joiners) already run services.
	Members []RingNode
	// Shards stripes each replica's row engine and the coordinator's
	// timestamp/ballot mints by ShardOf(key, Shards), so operations on
	// keys in different shards never contend on a shared mutex. Placement
	// (the ring walk) is unaffected: sharding partitions lock state, not
	// replica sets. Defaults to 1 (the unsharded plane).
	Shards int
	// Costs overrides the CPU cost model; zero fields keep defaults.
	Costs CostModel
	// History, when non-nil, records every coordinator-level put and every
	// quorum-level get as store.put/store.get ops (diagnostics beneath the
	// MUSIC-level history; the ECF checkers ignore store kinds). ONE reads
	// — lock-wait polling and eventual peeks — are deliberately not
	// recorded to keep explorer histories readable.
	History *history.Recorder
}

// placement is one epoch's immutable view of the ring. The cluster swaps
// the whole value atomically on a membership change, so readers on the hot
// path take no lock and an operation observes one consistent epoch.
type epochView struct {
	epoch int64
	ring  ring
}

// Cluster is a store deployment over a Transport. Build one with New, then
// obtain per-node Clients to issue operations.
type Cluster struct {
	net transport.Transport
	cfg Config
	// wantRF is the requested replication factor before clamping, so a
	// later epoch with more nodes can restore the full factor.
	wantRF int
	place  atomic.Pointer[epochView]

	// hist retains recent epochs' rings (including the current one) so a
	// replica adopting a grant issued under an older epoch can re-derive
	// that epoch's placement. Bounded to ringHistory entries —
	// reconfigurations are rare, and a grant old enough to fall off the
	// window is refused adoption conservatively.
	histMu sync.Mutex
	hist   map[int64]*ring
	// histSeeded marks the construction-time hist entry, which is labeled
	// epoch 1 on faith. A process built mid-life (a joiner fast-forwarding
	// straight to a later epoch) proves that label wrong on its first
	// non-consecutive apply, and the entry is dropped.
	histSeeded bool

	replicas map[transport.NodeID]*replica

	// clocks stripes the monotonic timestamp/ballot mint by key shard so
	// writes to different shards never serialize on one mutex. Monotonicity
	// is only required per key (LWW merge and Paxos ballots are per-row
	// state), so independent stripes are safe.
	clocks []clockStripe
}

// clockStripe is one shard's timestamp/ballot mint.
type clockStripe struct {
	mu   sync.Mutex
	last uint64
	_    [40]byte // pad to a cache line so stripes don't false-share
}

// New builds a store cluster over tr and registers its replica services on
// every local node.
func New(tr transport.Transport, cfg Config) *Cluster {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = tr.Nodes()
	}
	if len(cfg.LocalNodes) == 0 {
		cfg.LocalNodes = cfg.Nodes
	}
	if cfg.RF == 0 {
		cfg.RF = 3
	}
	wantRF := cfg.RF
	if cfg.RF > len(cfg.Nodes) {
		cfg.RF = len(cfg.Nodes)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = tr.RPCTimeout()
	}
	if cfg.MaxCASAttempts == 0 {
		cfg.MaxCASAttempts = 16
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	d := defaultCosts()
	if cfg.Costs.CoordWrite == 0 {
		cfg.Costs.CoordWrite = d.CoordWrite
	}
	if cfg.Costs.CoordRead == 0 {
		cfg.Costs.CoordRead = d.CoordRead
	}
	if cfg.Costs.ReplicaApply == 0 {
		cfg.Costs.ReplicaApply = d.ReplicaApply
	}
	if cfg.Costs.ReplicaRead == 0 {
		cfg.Costs.ReplicaRead = d.ReplicaRead
	}
	if cfg.Costs.PaxosMsg == 0 {
		cfg.Costs.PaxosMsg = d.PaxosMsg
	}
	if cfg.Costs.PerKB == 0 {
		cfg.Costs.PerKB = d.PerKB
	}

	c := &Cluster{
		net:      tr,
		cfg:      cfg,
		wantRF:   wantRF,
		replicas: make(map[transport.NodeID]*replica, len(cfg.LocalNodes)),
		clocks:   make([]clockStripe, cfg.Shards),
	}
	// Fixed-membership clusters (no cfg.Members) keep the historical
	// site-interleaved modulo placement, byte-identical to what every
	// pinned fault/explorer seed was recorded against. Dynamic clusters
	// seed epoch 1 from the explicit member list on the consistent-hash
	// circle so later epochs move a bounded key fraction.
	if len(cfg.Members) == 0 {
		c.place.Store(&epochView{epoch: 1, ring: buildRing(tr, cfg.Nodes, cfg.RF)})
	} else {
		rf := wantRF
		if rf > len(cfg.Members) {
			rf = len(cfg.Members)
		}
		c.place.Store(&epochView{epoch: 1, ring: buildRingMembers(cfg.Members, rf)})
	}
	c.hist = map[int64]*ring{1: &c.place.Load().ring}
	c.histSeeded = true
	for _, id := range cfg.LocalNodes {
		r := newReplica(cfg.Shards)
		c.replicas[id] = r
		r.register(tr, id, cfg.Costs)
		c.registerTransfer(id, r)
	}
	return c
}

// ringNow returns the current epoch's placement.
func (c *Cluster) ringNow() *ring { return &c.place.Load().ring }

// Epoch returns the membership epoch placement currently follows.
func (c *Cluster) Epoch() int64 { return c.place.Load().epoch }

// ApplyMembership recomputes placement for a new membership epoch. Stale
// or duplicate epochs are ignored, so delivery order across subscribers
// doesn't matter. Placement changes take effect atomically: in-flight
// operations finish under the ring they started with.
func (c *Cluster) ApplyMembership(epoch int64, members []RingNode) {
	rf := c.wantRF
	if rf > len(members) {
		rf = len(members)
	}
	for {
		cur := c.place.Load()
		if epoch <= cur.epoch {
			return
		}
		next := &epochView{epoch: epoch, ring: buildRingMembers(members, rf)}
		if c.place.CompareAndSwap(cur, next) {
			c.histMu.Lock()
			if c.histSeeded {
				c.histSeeded = false
				if epoch != 2 {
					delete(c.hist, 1)
				}
			}
			c.hist[epoch] = &next.ring
			for e := range c.hist {
				if e <= epoch-ringHistory {
					delete(c.hist, e)
				}
			}
			c.histMu.Unlock()
			return
		}
	}
}

// ringHistory bounds how many past epochs' rings ReplicasForAt can answer
// for.
const ringHistory = 16

// ReplicasForAt returns key's replica set under a specific (possibly past)
// membership epoch, with ok=false when the epoch predates this process or
// fell off the bounded ring history. Core uses it to certify adopting a
// grant issued under an older epoch: adoption is sound only if the key's
// replica set is unchanged between the grant's epoch and now.
func (c *Cluster) ReplicasForAt(key string, epoch int64) ([]transport.NodeID, bool) {
	c.histMu.Lock()
	r, ok := c.hist[epoch]
	c.histMu.Unlock()
	if !ok {
		return nil, false
	}
	return r.replicasFor(key), true
}

// SitePlaced reports whether the current epoch places a replica of key in
// site — the check core's epoch fence uses to decide whether a grant
// issued under an older epoch may keep running at its site.
func (c *Cluster) SitePlaced(key, site string) bool {
	return c.ringNow().placesSite(key, site)
}

// MemberSite reports whether the current epoch's membership includes any
// node in site. Retired (and not-yet-joined) sites must stop serving
// critical sections; core's epoch fence consults this.
func (c *Cluster) MemberSite(site string) bool {
	for _, s := range c.ringNow().sites {
		if s == site {
			return true
		}
	}
	return false
}

// Dynamic reports whether this cluster uses epoch-versioned consistent-hash
// placement (Config.Members / ApplyMembership) rather than the historical
// fixed-membership modulo walk. Epoch-sensitive checks in higher layers are
// inert on static clusters, whose epoch never leaves 1.
func (c *Cluster) Dynamic() bool { return c.ringNow().cons != nil }

// MemberNodes returns the node IDs in the current placement epoch.
func (c *Cluster) MemberNodes() []transport.NodeID { return c.ringNow().nodes() }

// Shards returns the configured shard count (≥ 1).
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Net returns the underlying transport.
func (c *Cluster) Net() transport.Transport { return c.net }

// Nodes returns the store nodes.
func (c *Cluster) Nodes() []transport.NodeID { return append([]transport.NodeID(nil), c.cfg.Nodes...) }

// RF returns the effective replication factor of the current epoch.
func (c *Cluster) RF() int { return c.ringNow().rf }

// ReplicasFor returns the nodes holding key (exposed for tests and for the
// lock store's local peek).
func (c *Cluster) ReplicasFor(key string) []transport.NodeID {
	return c.ringNow().replicasFor(key)
}

// NowMicros returns the cluster clock in microseconds, used to timestamp
// plain writes.
func (c *Cluster) NowMicros() int64 { return int64(c.net.Runtime().Now() / time.Microsecond) }

// nextWriteTS returns a per-shard-monotonic microsecond timestamp for plain
// writes to key, so two back-to-back writes to the same key never tie on
// timestamp.
func (c *Cluster) nextWriteTS(key string) int64 {
	s := &c.clocks[ShardOf(key, len(c.clocks))]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(c.NowMicros())
	if n <= s.last {
		n = s.last + 1
	}
	s.last = n
	return int64(n)
}

// nextBallot mints a monotonically increasing ballot for a coordinator's
// CAS on key.
func (c *Cluster) nextBallot(key string, node transport.NodeID, atLeast uint64) paxos.Ballot {
	s := &c.clocks[ShardOf(key, len(c.clocks))]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(c.NowMicros())
	if n <= s.last {
		n = s.last + 1
	}
	if n <= atLeast {
		n = atLeast + 1
	}
	s.last = n
	return paxos.Ballot{Counter: n, Node: int32(node)}
}
