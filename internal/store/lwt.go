package store

import (
	"fmt"
	"time"

	"repro/internal/paxos"
	"repro/internal/transport"
)

// CASResult reports the outcome of a light-weight transaction.
type CASResult struct {
	// Applied is true when the condition held and the update committed.
	Applied bool
	// Current is the row's live cells as read during the Paxos round —
	// the pre-image on success, the current state on condition failure.
	Current Row
}

// CAS atomically applies update to a row if every condition holds,
// Cassandra-LWT style: prepare → serial read → propose → commit, four
// quorum round trips among the key's replicas (§X-A1). Competing proposals
// are linearized by Paxos; in-progress proposals found during prepare are
// completed first. Update cells with TS == 0 are stamped by the committing
// replicas so later LWTs always supersede earlier ones.
func (cl *Client) CAS(table, key string, conds []Cond, update Row) (res CASResult, err error) {
	cfg := cl.c.cfg
	net := cl.c.net
	rt := net.Runtime()
	targets := cl.c.ringNow().replicasFor(key)
	quorum := len(targets)/2 + 1

	sp := cl.tracer().Child("store.cas")
	if sp != nil {
		sp.Annotate("row", table+"/"+key)
	}
	start := rt.Now()
	defer func() {
		cl.observeLatency("cas", Quorum, rt.Now()-start)
		if err == nil {
			sp.Annotatef("applied", "%t", res.Applied)
		}
		sp.EndErr(err)
	}()

	net.Work(cl.node, cfg.Costs.CoordWrite+perKBCost(cfg.Costs.PerKB, rowSize(update)))

	var observed uint64 // highest refusing ballot seen, to leapfrog it
	for attempt := 0; attempt < cfg.MaxCASAttempts; attempt++ {
		if attempt > 0 {
			// Randomized backoff keeps competing proposers from livelock.
			rt.Sleep(time.Duration(1+rt.Rand().Intn(20*(attempt+1))) * time.Millisecond)
		}
		b := cl.c.nextBallot(key, cl.node, observed)

		// Round 1: prepare.
		prep := cl.tracer().Child("paxos.prepare")
		prep.Annotatef("ballot", "%d.%d (attempt %d)", b.Counter, b.Node, attempt)
		prepResults := net.Multicast(cl.node, targets, svcPrepare,
			prepareReq{Table: table, Key: key, B: b}, quorum, cfg.Timeout)
		prep.End()
		promises := 0
		var inProgress paxos.Ballot
		var inProgressVal Row
		var committed paxos.Ballot
		refused := false
		for _, r := range transport.Successes(prepResults) {
			resp := r.Resp.(prepareResp)
			if resp.Committed.Compare(committed) > 0 {
				committed = resp.Committed
			}
			if !resp.OK {
				refused = true
				if resp.RefusedBy.Counter > observed {
					observed = resp.RefusedBy.Counter
				}
				continue
			}
			promises++
			if !resp.InProgress.IsZero() && resp.InProgress.Compare(inProgress) > 0 {
				inProgress = resp.InProgress
				if v, ok := resp.InProgressValue.(Row); ok {
					inProgressVal = v
				}
			}
		}
		if promises < quorum {
			if refused {
				continue // lost the ballot race; retry higher
			}
			return CASResult{}, fmt.Errorf("%w: cas prepare %s/%s", ErrUnavailable, table, key)
		}

		// Complete a stranded earlier proposal before our own, unless a
		// commit already covered it.
		if !inProgress.IsZero() && inProgress.Compare(committed) > 0 {
			err := cl.proposeCommit(table, key, targets, quorum, b, inProgressVal)
			if err != nil && err != errProposeRejected {
				return CASResult{}, err
			}
			continue // restart our own CAS from a fresh ballot
		}

		// Round 2: serial read of the current row.
		read := cl.tracer().Child("paxos.read")
		current, err := cl.get(table, key, nil, Quorum, false)
		read.EndErr(err)
		if err != nil {
			return CASResult{}, err
		}

		// Condition evaluation; a failed condition needs no more rounds.
		if !condsMatch(conds, current) {
			return CASResult{Applied: false, Current: current}, nil
		}

		// Rounds 3 and 4: propose and commit. Unstamped cells are stamped
		// here, once, from the ballot counter — every replica then stores an
		// identical cell. Stamping at commit time per replica (the old
		// scheme) let one logical CAS write carry different timestamps on
		// different replicas, and a later quorum read could merge a stale
		// replica's higher-stamped older cell over a newer commit — observed
		// as a lock-row guard regression re-minting an already-used lockRef.
		// Ballot counters give the order LWW needs: a later successful CAS
		// must out-prepare the quorum that promised this one, so its counter
		// (and stamp) is strictly higher.
		up := update.clone()
		for col, c := range up {
			if c.TS == 0 {
				c.TS = int64(b.Counter)
				up[col] = c
			}
		}
		if err := cl.proposeCommit(table, key, targets, quorum, b, up); err != nil {
			if err == errProposeRejected {
				continue // beaten by a higher ballot; retry
			}
			return CASResult{}, err
		}
		return CASResult{Applied: true, Current: current}, nil
	}
	return CASResult{}, fmt.Errorf("%w: cas %s/%s", ErrContention, table, key)
}

// errProposeRejected is an internal retry signal: a quorum refused the
// proposal because a higher ballot got there first.
var errProposeRejected = fmt.Errorf("store: propose rejected")

// proposeCommit runs the accept and commit rounds for (b, update).
func (cl *Client) proposeCommit(table, key string, targets []transport.NodeID, quorum int, b paxos.Ballot, update Row) error {
	cfg := cl.c.cfg
	net := cl.c.net

	prop := cl.tracer().Child("paxos.propose")
	propResults := net.Multicast(cl.node, targets, svcPropose,
		proposeReq{Table: table, Key: key, B: b, Update: update}, quorum, cfg.Timeout)
	prop.End()
	acks := 0
	for _, r := range transport.Successes(propResults) {
		if r.Resp.(proposeResp).OK {
			acks++
		}
	}
	if acks < quorum {
		if len(transport.Successes(propResults)) >= quorum {
			return errProposeRejected
		}
		return fmt.Errorf("%w: cas propose %s/%s", ErrUnavailable, table, key)
	}

	com := cl.tracer().Child("paxos.commit")
	commitResults := net.Multicast(cl.node, targets, svcCommit,
		commitReq{Table: table, Key: key, B: b, Update: update}, quorum, cfg.Timeout)
	com.End()
	if len(transport.Successes(commitResults)) < quorum {
		return fmt.Errorf("%w: cas commit %s/%s", ErrUnavailable, table, key)
	}
	// Read-your-CAS: the quorum above may have been satisfied entirely by
	// remote acks while the commit addressed to this coordinator's own
	// replica is still in flight (on the wall-clock transports delivery
	// order is goroutine scheduling). A caller that immediately issues a
	// ONE read — served self-first by getOne — would then miss its own
	// committed write; the lock stack does exactly that in
	// GenerateAndEnqueue's local read-back, which is how the "fresh lockRef
	// not granted" transport flake arose. Applying the commit directly to
	// the co-located replica closes the window; HandleCommit is idempotent
	// (it applies only when b advances Committed), so the in-flight RPC
	// copy is a no-op when it lands. A direct memory call, not an RPC: it
	// charges no modeled cost and adds no hop.
	if r, ok := cl.c.replicas[cl.node]; ok && contains(targets, cl.node) {
		_, _ = r.handleCommit(cl.node, commitReq{Table: table, Key: key, B: b, Update: update})
	}
	return nil
}
