package store

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Per-op allocation ceilings on the disabled-observability hot path,
// measured inside the deterministic virtual-time simulator (cooperative
// single-threaded scheduling makes AllocsPerRun exact, so these pin the
// whole coordinator+replica stack per op). The ceilings sit one alloc
// above the measured counts: reintroducing the unconditional
// `table+"/"+key` span/history concats that used to run with tracing off
// costs 2+ allocs per op and fails here by name.
const (
	putQuorumAllocCeiling = 185
	getQuorumAllocCeiling = 193
	getOneAllocCeiling    = 68
)

func TestAllocCeilingStoreOps(t *testing.T) {
	fixture(t, Config{}, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if err := cl.Put(tbl, "alloc-key", val("x"), Quorum); err != nil {
			t.Fatalf("warmup Put: %v", err)
		}
		put := testing.AllocsPerRun(50, func() {
			if err := cl.Put(tbl, "alloc-key", val("x"), Quorum); err != nil {
				panic(err)
			}
		})
		get := testing.AllocsPerRun(50, func() {
			if _, err := cl.Get(tbl, "alloc-key", Quorum); err != nil {
				panic(err)
			}
		})
		one := testing.AllocsPerRun(50, func() {
			if _, err := cl.Get(tbl, "alloc-key", One); err != nil {
				panic(err)
			}
		})
		check := func(op string, got float64, ceiling float64) {
			if got > ceiling {
				t.Errorf("%s allocates %v per op, ceiling %v — did a disabled-path span/history annotation lose its nil guard?", op, got, ceiling)
			}
		}
		check("Put(QUORUM)", put, putQuorumAllocCeiling)
		check("Get(QUORUM)", get, getQuorumAllocCeiling)
		check("Get(ONE)", one, getOneAllocCeiling)
	})
}
