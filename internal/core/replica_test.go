package core

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// world bundles a 3-site MUSIC deployment with one replica per site.
type world struct {
	rt  *sim.Virtual
	net *simnet.Network
	st  *store.Cluster
	rep [3]*Replica
}

func fixture(t *testing.T, cfg Config, fn func(w *world)) {
	t.Helper()
	fixtureSeed(t, cfg, 11, fn)
}

func fixtureSeed(t *testing.T, cfg Config, seed int64, fn func(w *world)) {
	t.Helper()
	rt := sim.New(seed)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	st := store.New(net, store.Config{})
	w := &world{rt: rt, net: net, st: st}
	for i := 0; i < 3; i++ {
		w.rep[i] = NewReplica(st.Client(simnet.NodeID(i)), cfg)
	}
	if err := rt.Run(func() { fn(w) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// awaitLock polls AcquireLock as clients do (Listing 1).
func awaitLock(t *testing.T, w *world, r *Replica, key string, ref int64) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		ok, err := r.AcquireLock(key, ref)
		if err != nil {
			t.Fatalf("AcquireLock(%s, %d): %v", key, ref, err)
		}
		if ok {
			return
		}
		w.rt.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("lock %s/%d never acquired", key, ref)
}

func TestListing1IncrementFlow(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		r := w.rep[0]
		ref, err := r.CreateLockRef("counter")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, r, "counter", ref)

		v1, err := r.CriticalGet("counter", ref)
		if err != nil {
			t.Fatalf("CriticalGet: %v", err)
		}
		n := 0
		if v1 != nil {
			n, _ = strconv.Atoi(string(v1))
		}
		if err := r.CriticalPut("counter", ref, []byte(strconv.Itoa(n+1))); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		got, err := r.CriticalGet("counter", ref)
		if err != nil || string(got) != "1" {
			t.Fatalf("CriticalGet after put = (%q, %v), want 1", got, err)
		}
		if err := r.ReleaseLock("counter", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}

func TestLockIsFIFOAcrossSites(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref1, err := w.rep[0].CreateLockRef("k")
		if err != nil {
			t.Fatalf("ref1: %v", err)
		}
		ref2, err := w.rep[1].CreateLockRef("k")
		if err != nil {
			t.Fatalf("ref2: %v", err)
		}
		if ref2 <= ref1 {
			t.Fatalf("refs not increasing: %d, %d", ref1, ref2)
		}

		awaitLock(t, w, w.rep[0], "k", ref1)
		// Client 2 cannot acquire while client 1 holds the lock.
		if ok, err := w.rep[1].AcquireLock("k", ref2); err != nil || ok {
			t.Fatalf("second client acquired concurrently: ok=%v err=%v", ok, err)
		}
		if err := w.rep[0].CriticalPut("k", ref1, []byte("from-1")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := w.rep[0].ReleaseLock("k", ref1); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}

		awaitLock(t, w, w.rep[1], "k", ref2)
		got, err := w.rep[1].CriticalGet("k", ref2)
		if err != nil || string(got) != "from-1" {
			t.Fatalf("second holder reads (%q, %v), want from-1", got, err)
		}
	})
}

func TestExclusivityNonHolderRejected(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)

		// ref2 is queued but not the holder: critical ops are refused.
		if err := w.rep[1].CriticalPut("k", ref2, []byte("x")); !errors.Is(err, ErrNotLockHolder) {
			t.Fatalf("queued client put err = %v, want ErrNotLockHolder", err)
		}
		if _, err := w.rep[1].CriticalGet("k", ref2); !errors.Is(err, ErrNotLockHolder) {
			t.Fatalf("queued client get err = %v, want ErrNotLockHolder", err)
		}
	})
}

func TestReleasedRefIsNoLongerHolder(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)
		if err := w.rep[0].ReleaseLock("k", ref1); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2)

		// The old ref now observes youAreNoLongerLockHolder.
		if err := w.rep[0].CriticalPut("k", ref1, []byte("stale")); !errors.Is(err, ErrNoLongerLockHolder) {
			t.Fatalf("stale put err = %v, want ErrNoLongerLockHolder", err)
		}
		if ok, err := w.rep[0].AcquireLock("k", ref1); ok || !errors.Is(err, ErrNoLongerLockHolder) {
			t.Fatalf("stale acquire = (%v, %v), want (false, ErrNoLongerLockHolder)", ok, err)
		}
	})
}

func TestFailoverPreservesLatestState(t *testing.T) {
	// A lockholder writes, crashes; the lock is force-released; the next
	// holder must read the latest state (the paper's latest-state
	// requirement for the homing service).
	fixture(t, Config{}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("job")
		awaitLock(t, w, w.rep[0], "job", ref1)
		if err := w.rep[0].CriticalPut("job", ref1, []byte("state-3")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		// Client 1 crashes silently. Another MUSIC replica preempts it.
		if err := w.rep[1].ForcedRelease("job", ref1); err != nil {
			t.Fatalf("ForcedRelease: %v", err)
		}

		ref2, _ := w.rep[1].CreateLockRef("job")
		awaitLock(t, w, w.rep[1], "job", ref2)
		got, err := w.rep[1].CriticalGet("job", ref2)
		if err != nil || string(got) != "state-3" {
			t.Fatalf("failover read = (%q, %v), want state-3", got, err)
		}
	})
}

func TestPreemptedStragglerWriteCannotWin(t *testing.T) {
	// The SynchFlag invariant (§IV-B b): after a forced release and the next
	// holder's synchronization, a straggling write stamped with the old
	// lockRef must not become the value seen in the new critical section.
	fixture(t, Config{T: time.Minute}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)
		if err := w.rep[0].CriticalPut("k", ref1, []byte("v1")); err != nil {
			t.Fatalf("CriticalPut v1: %v", err)
		}

		// False failure detection: replica 1 preempts the live holder.
		if err := w.rep[1].ForcedRelease("k", ref1); err != nil {
			t.Fatalf("ForcedRelease: %v", err)
		}
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2) // synchronizes the data store

		// The preempted client's write, still in flight with ref1's
		// timestamp, now lands at a quorum — directly via the data store,
		// bypassing MUSIC's guards (the worst case).
		stale := store.Cell{Value: []byte("straggler"), TS: v2s(ref1, 30*time.Second, time.Minute)}
		if err := w.st.Client(0).Put(DataTable, "k", store.Row{colValue: stale}, store.Quorum); err != nil {
			t.Fatalf("straggler put: %v", err)
		}

		got, err := w.rep[1].CriticalGet("k", ref2)
		if err != nil {
			t.Fatalf("CriticalGet: %v", err)
		}
		if string(got) == "straggler" {
			t.Fatal("straggler write with preempted lockRef became the true value")
		}
		if string(got) != "v1" {
			t.Fatalf("true value = %q, want v1 (the synchronized value)", got)
		}

		// And MUSIC's own guard also rejects the preempted client.
		if err := w.rep[0].CriticalPut("k", ref1, []byte("more")); !errors.Is(err, ErrNoLongerLockHolder) {
			t.Fatalf("preempted put err = %v, want ErrNoLongerLockHolder", err)
		}
	})
}

func TestForcedReleaseOfReleasedLockIsNoOp(t *testing.T) {
	// §IV-B: a forcedRelease targeting an already-released lockRef may
	// leave the synchFlag erroneously true; the only consequence is one
	// unnecessary synchronization.
	fixture(t, Config{}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)
		if err := w.rep[0].CriticalPut("k", ref1, []byte("v1")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := w.rep[0].ReleaseLock("k", ref1); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
		// Late, mistaken forced release of the now-gone ref.
		if err := w.rep[2].ForcedRelease("k", ref1); err != nil {
			t.Fatalf("late ForcedRelease: %v", err)
		}
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2)
		got, err := w.rep[1].CriticalGet("k", ref2)
		if err != nil || string(got) != "v1" {
			t.Fatalf("value after spurious forcedRelease = (%q, %v), want v1", got, err)
		}
	})
}

func TestExpiredHolderIsReapedAndRejected(t *testing.T) {
	fixture(t, Config{T: 500 * time.Millisecond}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)
		w.rt.Sleep(time.Second) // blow through T

		// The overrunning holder's own put is refused with ErrExpired.
		err := w.rep[0].CriticalPut("k", ref1, []byte("late"))
		if !errors.Is(err, ErrExpired) && !errors.Is(err, ErrNoLongerLockHolder) {
			t.Fatalf("expired put err = %v, want ErrExpired", err)
		}

		// A waiting client gets the lock via expiry reaping.
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2)
	})
}

func TestOrphanLockRefIsReaped(t *testing.T) {
	// A client creates a lockRef and dies before acquiring: when the orphan
	// reaches the head, other clients' acquire polls force-release it.
	fixture(t, Config{T: 500 * time.Millisecond}, func(w *world) {
		if _, err := w.rep[0].CreateLockRef("k"); err != nil { // orphan
			t.Fatalf("orphan ref: %v", err)
		}
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2)
	})
}

func TestGrantFailoverToAnotherReplica(t *testing.T) {
	// The client acquires at replica 0 but continues its critical section
	// at replica 2 (e.g. after replica 0 becomes unreachable); replica 2
	// recovers the grant time from the lock store.
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		w.rt.Sleep(time.Second) // let the grant record replicate

		if err := w.rep[2].CriticalPut("k", ref, []byte("via-2")); err != nil {
			t.Fatalf("failover CriticalPut: %v", err)
		}
		got, err := w.rep[2].CriticalGet("k", ref)
		if err != nil || string(got) != "via-2" {
			t.Fatalf("failover read = (%q, %v)", got, err)
		}
		if err := w.rep[2].ReleaseLock("k", ref); err != nil {
			t.Fatalf("failover release: %v", err)
		}
	})
}

func TestReleaseAfterForcedReleaseSucceeds(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref1, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref1)
		if err := w.rep[1].ForcedRelease("k", ref1); err != nil {
			t.Fatalf("ForcedRelease: %v", err)
		}
		ref2, _ := w.rep[1].CreateLockRef("k")
		awaitLock(t, w, w.rep[1], "k", ref2)
		// The preempted client's own release is a harmless no-op success.
		if err := w.rep[0].ReleaseLock("k", ref1); err != nil {
			t.Fatalf("release after preemption: %v", err)
		}
	})
}

func TestAcquireIdempotentAfterGrant(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		ok, err := w.rep[0].AcquireLock("k", ref)
		if err != nil || !ok {
			t.Fatalf("re-acquire = (%v, %v), want (true, nil)", ok, err)
		}
	})
}

func TestIndependentKeysDoNotInterfere(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		refA, _ := w.rep[0].CreateLockRef("a")
		refB, _ := w.rep[1].CreateLockRef("b")
		awaitLock(t, w, w.rep[0], "a", refA)
		awaitLock(t, w, w.rep[1], "b", refB)
		if err := w.rep[0].CriticalPut("a", refA, []byte("va")); err != nil {
			t.Fatalf("put a: %v", err)
		}
		if err := w.rep[1].CriticalPut("b", refB, []byte("vb")); err != nil {
			t.Fatalf("put b: %v", err)
		}
	})
}

func TestCriticalOpsUnavailableWithoutQuorum(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		w.net.Crash(1)
		w.net.Crash(2)
		if err := w.rep[0].CriticalPut("k", ref, []byte("x")); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("put err = %v, want ErrUnavailable", err)
		}
		if _, err := w.rep[0].CriticalGet("k", ref); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("get err = %v, want ErrUnavailable", err)
		}
	})
}

func TestCriticalOpsSurviveOneSiteDown(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		w.net.Crash(2)
		if err := w.rep[0].CriticalPut("k", ref, []byte("x")); err != nil {
			t.Fatalf("put with one site down: %v", err)
		}
		got, err := w.rep[0].CriticalGet("k", ref)
		if err != nil || string(got) != "x" {
			t.Fatalf("get with one site down = (%q, %v)", got, err)
		}
		if err := w.rep[0].ReleaseLock("k", ref); err != nil {
			t.Fatalf("release with one site down: %v", err)
		}
	})
}

func TestCriticalDelete(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		if err := w.rep[0].CriticalPut("k", ref, []byte("x")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := w.rep[0].CriticalDelete("k", ref); err != nil {
			t.Fatalf("delete: %v", err)
		}
		got, err := w.rep[0].CriticalGet("k", ref)
		if err != nil || got != nil {
			t.Fatalf("get after delete = (%q, %v), want nil", got, err)
		}
	})
}

func TestEventualPutGetAndAllKeys(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		if err := w.rep[0].Put("job-1", []byte("desc")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := w.rep[0].Get("job-1")
		if err != nil || string(got) != "desc" {
			t.Fatalf("Get = (%q, %v)", got, err)
		}
		w.rt.Sleep(500 * time.Millisecond) // propagate
		keys, err := w.rep[2].GetAllKeys()
		if err != nil || len(keys) != 1 || keys[0] != "job-1" {
			t.Fatalf("GetAllKeys = (%v, %v)", keys, err)
		}
	})
}

func TestCriticalValueDominatesPlainPut(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		if err := w.rep[0].Put("k", []byte("initial")); err != nil {
			t.Fatalf("plain Put: %v", err)
		}
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		v, err := w.rep[0].CriticalGet("k", ref)
		if err != nil || string(v) != "initial" {
			t.Fatalf("critical read of plain value = (%q, %v)", v, err)
		}
		if err := w.rep[0].CriticalPut("k", ref, []byte("critical")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		// A late plain put must not clobber the critical (true) value.
		if err := w.rep[1].Put("k", []byte("late-plain")); err != nil {
			t.Fatalf("late plain Put: %v", err)
		}
		got, err := w.rep[0].CriticalGet("k", ref)
		if err != nil || string(got) != "critical" {
			t.Fatalf("value = (%q, %v), want critical", got, err)
		}
	})
}

func TestRemoveRetiresKey(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		if err := w.rep[0].CriticalPut("k", ref, []byte("x")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := w.rep[0].ReleaseLock("k", ref); err != nil {
			t.Fatalf("release: %v", err)
		}
		if err := w.rep[0].Remove("k"); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		w.rt.Sleep(500 * time.Millisecond)
		keys, err := w.rep[0].GetAllKeys()
		if err != nil || len(keys) != 0 {
			t.Fatalf("keys after Remove = (%v, %v), want none", keys, err)
		}
	})
}

func TestMSCPModeUsesLWTPut(t *testing.T) {
	fixture(t, Config{Mode: ModeLWT}, func(w *world) {
		r := w.rep[0]
		ref, _ := r.CreateLockRef("k")
		awaitLock(t, w, r, "k", ref)

		start := w.rt.Now()
		if err := r.CriticalPut("k", ref, []byte("x")); err != nil {
			t.Fatalf("MSCP put: %v", err)
		}
		lwtPut := w.rt.Now() - start
		if lwtPut < 150*time.Millisecond {
			t.Fatalf("MSCP critical put took %v, want ≈4 RTTs (>150ms)", lwtPut)
		}
		got, err := r.CriticalGet("k", ref)
		if err != nil || string(got) != "x" {
			t.Fatalf("MSCP get = (%q, %v)", got, err)
		}
	})
}

func TestFig5bLatencyShape(t *testing.T) {
	// The paper's per-operation breakdown for IUs (§VIII-b): createLockRef
	// and releaseLock cost ≈4 RTTs; the acquire grant is one quorum read;
	// the MUSIC criticalPut is one quorum write; the peek is local.
	fixture(t, Config{}, func(w *world) {
		r := w.rep[0]
		measure := func(fn func()) time.Duration {
			start := w.rt.Now()
			fn()
			return w.rt.Now() - start
		}

		var ref int64
		create := measure(func() {
			var err error
			ref, err = r.CreateLockRef("k")
			if err != nil {
				t.Fatalf("create: %v", err)
			}
		})
		grant := measure(func() { awaitLock(t, w, r, "k", ref) })
		peek := measure(func() {
			if _, _, err := lockPeek(r, "k"); err != nil {
				t.Fatalf("peek: %v", err)
			}
		})
		put := measure(func() {
			if err := r.CriticalPut("k", ref, []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		})
		release := measure(func() {
			if err := r.ReleaseLock("k", ref); err != nil {
				t.Fatalf("release: %v", err)
			}
		})

		if create < 150*time.Millisecond || create > 400*time.Millisecond {
			t.Errorf("createLockRef = %v, want ≈215ms (4 RTTs)", create)
		}
		if grant < 40*time.Millisecond || grant > 150*time.Millisecond {
			t.Errorf("acquire grant = %v, want ≈55ms (synchFlag quorum read)", grant)
		}
		if peek > 2*time.Millisecond {
			t.Errorf("peek = %v, want sub-ms local read", peek)
		}
		if put < 40*time.Millisecond || put > 120*time.Millisecond {
			t.Errorf("criticalPut = %v, want ≈55ms (quorum write)", put)
		}
		if release < 150*time.Millisecond || release > 400*time.Millisecond {
			t.Errorf("releaseLock = %v, want ≈215ms (4 RTTs)", release)
		}
	})
}

// lockPeek exposes the lock store peek for the latency-shape test.
func lockPeek(r *Replica, key string) (int64, bool, error) {
	e, ok, err := r.shardFor(key).ls.Peek(key)
	return e.Ref, ok, err
}

func TestObserverSeesOperations(t *testing.T) {
	seen := make(map[Op]int)
	cfg := Config{Observer: func(op Op, d time.Duration) { seen[op]++ }}
	fixture(t, cfg, func(w *world) {
		r := w.rep[0]
		ref, _ := r.CreateLockRef("k")
		awaitLock(t, w, r, "k", ref)
		_ = r.CriticalPut("k", ref, []byte("v"))
		_, _ = r.CriticalGet("k", ref)
		_ = r.ReleaseLock("k", ref)
	})
	for _, op := range []Op{OpCreateLockRef, OpAcquirePeek, OpAcquireGrant, OpCriticalPut, OpCriticalGet, OpReleaseLock} {
		if seen[op] == 0 {
			t.Errorf("observer never saw %v", op)
		}
	}
}

func TestJanitorReapsExpiredLock(t *testing.T) {
	fixture(t, Config{T: 300 * time.Millisecond}, func(w *world) {
		stop := w.rep[2].StartJanitor(100 * time.Millisecond)
		defer stop()
		ref, _ := w.rep[0].CreateLockRef("k")
		awaitLock(t, w, w.rep[0], "k", ref)
		// Holder goes silent; the janitor cleans up without any competing
		// acquirer polls.
		w.rt.Sleep(3 * time.Second)
		if _, ok, err := lockPeek(w.rep[2], "k"); err != nil || ok {
			t.Fatalf("expired lock still queued: ok=%v err=%v", ok, err)
		}
	})
}

func TestManyClientsOneKeySequentialValues(t *testing.T) {
	// Six clients across three sites run increment critical sections; the
	// counter must end exactly at the number of successful sections, with
	// no lost updates (Exclusivity + Latest-State combined).
	fixture(t, Config{}, func(w *world) {
		done := sim.NewMailbox[error](w.rt)
		const clients = 6
		for i := 0; i < clients; i++ {
			r := w.rep[i%3]
			w.rt.Go(func() {
				ref, err := r.CreateLockRef("ctr")
				if err != nil {
					done.Send(err)
					return
				}
				for {
					ok, err := r.AcquireLock("ctr", ref)
					if err != nil {
						done.Send(err)
						return
					}
					if ok {
						break
					}
					w.rt.Sleep(5 * time.Millisecond)
				}
				v, err := r.CriticalGet("ctr", ref)
				if err != nil {
					done.Send(err)
					return
				}
				n := 0
				if v != nil {
					n, _ = strconv.Atoi(string(v))
				}
				if err := r.CriticalPut("ctr", ref, []byte(strconv.Itoa(n+1))); err != nil {
					done.Send(err)
					return
				}
				done.Send(r.ReleaseLock("ctr", ref))
			})
		}
		for i := 0; i < clients; i++ {
			if err, recvErr := done.RecvTimeout(10 * time.Minute); recvErr != nil || err != nil {
				t.Fatalf("client %d: %v / %v", i, err, recvErr)
			}
		}
		ref, _ := w.rep[0].CreateLockRef("ctr")
		awaitLock(t, w, w.rep[0], "ctr", ref)
		got, err := w.rep[0].CriticalGet("ctr", ref)
		if err != nil || string(got) != strconv.Itoa(clients) {
			t.Fatalf("final counter = (%q, %v), want %d", got, err, clients)
		}
	})
}

func TestV2SPreservesVectorOrder(t *testing.T) {
	// §X-A2's lemma, as a property test: v2s preserves the ordering of
	// vector timestamps for elapsed times within the T bound.
	tBound := time.Minute
	ticks := int64(tBound / time.Microsecond)
	f := func(ref1, ref2 uint32, e1, e2 uint32) bool {
		r1, r2 := int64(ref1%1e6)+1, int64(ref2%1e6)+1
		d1 := time.Duration(int64(e1)%(ticks-2)) * time.Microsecond
		d2 := time.Duration(int64(e2)%(ticks-2)) * time.Microsecond
		s1, s2 := v2s(r1, d1, tBound), v2s(r2, d2, tBound)
		switch {
		case r1 < r2:
			return s1 < s2
		case r1 > r2:
			return s1 > s2
		case d1 < d2:
			return s1 < s2
		case d1 > d2:
			return s1 > s2
		default:
			return s1 == s2
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestV2SForcedDelta(t *testing.T) {
	// The δ property (§IV-B): a forced-release stamp beats every in-section
	// stamp of the same lockRef and loses to every stamp of the next.
	tBound := time.Minute
	for _, ref := range []int64{1, 2, 10, 1 << 30} {
		forced := v2sForced(ref, tBound)
		if forced <= v2s(ref, tBound-2*time.Microsecond, tBound) {
			t.Errorf("forced(%d) does not beat max in-section stamp", ref)
		}
		if forced >= v2s(ref+1, 0, tBound) {
			t.Errorf("forced(%d) not below next lockRef's first stamp", ref)
		}
	}
}

func TestRefOfTS(t *testing.T) {
	tBound := time.Minute
	if got := refOfTS(v2s(7, time.Second, tBound), tBound); got != 7 {
		t.Errorf("refOfTS(v2s(7)) = %d", got)
	}
	if got := refOfTS(12345, tBound); got != 0 {
		t.Errorf("refOfTS(plain ts) = %d, want 0", got)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpCreateLockRef, OpAcquirePeek, OpAcquireGrant, OpCriticalPut,
		OpCriticalGet, OpReleaseLock, OpForcedRelease, OpEventualPut, OpEventualGet, Op(99)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty name for op %d", int(op))
		}
	}
}

func TestValuesSurviveAcrossManyCriticalSections(t *testing.T) {
	// Values written under successive lockRefs keep increasing timestamps,
	// so each section reads its predecessor's write.
	fixture(t, Config{}, func(w *world) {
		var prev []byte
		for i := 0; i < 4; i++ {
			r := w.rep[i%3]
			ref, err := r.CreateLockRef("k")
			if err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
			awaitLock(t, w, r, "k", ref)
			got, err := r.CriticalGet("k", ref)
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if !bytes.Equal(got, prev) {
				t.Fatalf("section %d read %q, want %q", i, got, prev)
			}
			prev = []byte(fmt.Sprintf("round-%d", i))
			if err := r.CriticalPut("k", ref, prev); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			if err := r.ReleaseLock("k", ref); err != nil {
				t.Fatalf("release %d: %v", i, err)
			}
		}
	})
}
