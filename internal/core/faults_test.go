package core

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/lockstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// This file is the deterministic fault-injection campaign behind the
// §III-A failure semantics: seeded scenarios crash the coordinator mid-CAS,
// partition the client's site during the grant, and drop quorum acks
// mid-criticalPut, then assert that retrying per the paper's client
// obligations — possibly at another MUSIC replica — completes the critical
// section after the fault heals with ECF intact: no lost acknowledged
// writes and no resurrected failed ones.

// faultSeeds returns the campaign's seed set: MUSIC_FAULT_SEEDS (a comma-
// separated list, how scripts/check.sh pins the campaign) or a fixed
// default, trimmed under -short.
func faultSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("MUSIC_FAULT_SEEDS"); env != "" {
		var seeds []int64
		for _, part := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("MUSIC_FAULT_SEEDS: bad seed %q: %v", part, err)
			}
			seeds = append(seeds, s)
		}
		return seeds
	}
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	return seeds
}

// faultWorld is one fresh 3-site deployment (one store node + MUSIC replica
// per site, IUs profile) with a short store timeout so unavailability
// surfaces quickly in virtual time.
type faultWorld struct {
	rt   *sim.Virtual
	net  *simnet.Network
	st   *store.Cluster
	reps []*Replica
}

func newFaultWorld(seed int64, cfg Config) *faultWorld {
	rt := sim.New(seed)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, Seed: seed})
	st := store.New(net, store.Config{Timeout: 500 * time.Millisecond})
	w := &faultWorld{rt: rt, net: net, st: st}
	for i := 0; i < 3; i++ {
		w.reps = append(w.reps, NewReplica(st.Client(simnet.NodeID(i)), cfg))
	}
	return w
}

// isTransient is the core-level retryability taxonomy (mirrored by
// music.IsRetryable for the public API).
func isTransient(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, store.ErrContention) ||
		errors.Is(err, lockstore.ErrContention) ||
		errors.Is(err, ErrNotLockHolder)
}

// awaitAt polls AcquireLock at one replica until granted or the deadline,
// treating transient errors as "not yet" — the client obligation of §III-A.
func awaitAt(rt *sim.Virtual, rep *Replica, key string, ref int64, timeout time.Duration) error {
	deadline := rt.Now() + timeout
	for {
		ok, err := rep.AcquireLock(key, ref)
		if err != nil && !isTransient(err) {
			return err
		}
		if ok {
			return nil
		}
		if rt.Now() >= deadline {
			return fmt.Errorf("await %s/%d: timed out after %v", key, ref, timeout)
		}
		rt.Sleep(10 * time.Millisecond)
	}
}

// retryTransient re-drives op with backoff while it fails transiently.
func retryTransient(rt *sim.Virtual, op func() error) error {
	var err error
	for i := 0; i < 60; i++ {
		if err = op(); err == nil || !isTransient(err) {
			return err
		}
		rt.Sleep(200 * time.Millisecond)
	}
	return err
}

// verifySection runs one more full critical section at rep and asserts the
// value it reads — the end-to-end ECF check that the campaign's surviving
// write is the true value and nothing older resurrected.
func verifySection(t *testing.T, w *faultWorld, rep *Replica, key, want string) {
	t.Helper()
	var ref int64
	if err := retryTransient(w.rt, func() error {
		r, err := rep.CreateLockRef(key)
		if err == nil {
			ref = r
		}
		return err
	}); err != nil {
		t.Fatalf("verify createLockRef: %v", err)
	}
	if err := awaitAt(w.rt, rep, key, ref, 5*time.Minute); err != nil {
		t.Fatalf("verify await: %v", err)
	}
	var got []byte
	if err := retryTransient(w.rt, func() error {
		v, err := rep.CriticalGet(key, ref)
		if err == nil {
			got = v
		}
		return err
	}); err != nil {
		t.Fatalf("verify criticalGet: %v", err)
	}
	if string(got) != want {
		t.Errorf("verify section read %q, want %q", got, want)
	}
	if err := retryTransient(w.rt, func() error { return rep.ReleaseLock(key, ref) }); err != nil {
		t.Fatalf("verify release: %v", err)
	}
}

// TestFaultCoordinatorCrashMidCreateLockRef crashes the client's
// coordinator at a seed-dependent phase of the enqueue LWT. Whatever the
// CAS's fate (never proposed, in-progress and completed by a competing
// proposer, or fully applied with the issuing client presumed dead), a
// retry at another site must eventually complete a full critical section:
// the potentially stranded head is reaped after OrphanTimeout and the next
// grant synchronizes (§IV-B a).
func TestFaultCoordinatorCrashMidCreateLockRef(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newFaultWorld(seed, Config{T: 30 * time.Second, OrphanTimeout: 2 * time.Second})
			const key = "crash-mid-cas"
			err := w.rt.Run(func() {
				delay := time.Duration(5+w.rt.Rand().Intn(250)) * time.Millisecond
				w.rt.After(delay, func() { w.net.Crash(0) })
				if _, err := w.reps[0].CreateLockRef(key); err != nil && !isTransient(err) {
					t.Errorf("crash-interrupted enqueue: terminal error %v, want transient", err)
				}

				// §III-A: the client retries at another MUSIC replica. Its
				// fresh reference queues behind any stranded head, which the
				// acquire poll reaps after OrphanTimeout.
				rep := w.reps[1]
				var ref int64
				if err := retryTransient(w.rt, func() error {
					r, err := rep.CreateLockRef(key)
					if err == nil {
						ref = r
					}
					return err
				}); err != nil {
					t.Fatalf("failover createLockRef: %v", err)
				}
				if err := awaitAt(w.rt, rep, key, ref, 5*time.Minute); err != nil {
					t.Fatalf("failover await: %v", err)
				}
				if err := retryTransient(w.rt, func() error {
					return rep.CriticalPut(key, ref, []byte("failover-write"))
				}); err != nil {
					t.Fatalf("failover criticalPut: %v", err)
				}
				if err := retryTransient(w.rt, func() error { return rep.ReleaseLock(key, ref) }); err != nil {
					t.Fatalf("failover release: %v", err)
				}

				// Heal and verify from the restarted site itself.
				w.net.Restart(0)
				w.rt.Sleep(5 * time.Second)
				verifySection(t, w, w.reps[0], key, "failover-write")
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestFaultPartitionDuringGrant isolates the client's site exactly when the
// grant-path synchFlag quorum read would run, so AcquireLock fails with
// ErrUnavailable at the minority site; retrying the same lockRef at a
// majority-side replica grants and completes the section, and after heal
// the write is the true value everywhere.
func TestFaultPartitionDuringGrant(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newFaultWorld(seed, Config{T: 30 * time.Second})
			const key = "partition-grant"
			err := w.rt.Run(func() {
				ref, err := w.reps[0].CreateLockRef(key)
				if err != nil {
					t.Fatalf("createLockRef: %v", err)
				}
				w.rt.Sleep(2 * time.Second) // let the enqueue replicate everywhere
				w.net.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})

				ok, err := w.reps[0].AcquireLock(key, ref)
				if ok || !errors.Is(err, ErrUnavailable) {
					t.Fatalf("minority-site grant = (%v, %v), want ErrUnavailable", ok, err)
				}

				// Same lockRef, another replica (§III-A).
				rep := w.reps[1]
				if err := awaitAt(w.rt, rep, key, ref, 5*time.Minute); err != nil {
					t.Fatalf("failover await: %v", err)
				}
				if err := retryTransient(w.rt, func() error {
					return rep.CriticalPut(key, ref, []byte("granted-elsewhere"))
				}); err != nil {
					t.Fatalf("failover criticalPut: %v", err)
				}
				if err := retryTransient(w.rt, func() error { return rep.ReleaseLock(key, ref) }); err != nil {
					t.Fatalf("failover release: %v", err)
				}

				w.net.Heal()
				w.rt.Sleep(2 * time.Second)
				verifySection(t, w, w.reps[0], key, "granted-elsewhere")
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestFaultAckLossMidCriticalPut drops quorum acks mid-criticalPut: under
// heavy message loss puts fail transiently (and may survive on a minority
// of replicas anyway — store.Put documents no rollback); after the heal the
// client re-drives its final put, and ECF requires the true value to be
// exactly that last acknowledged put, with no earlier failed attempt
// resurrecting.
func TestFaultAckLossMidCriticalPut(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newFaultWorld(seed, Config{T: 10 * time.Minute})
			const key = "lossy-puts"
			err := w.rt.Run(func() {
				rep := w.reps[0]
				ref, err := rep.CreateLockRef(key)
				if err != nil {
					t.Fatalf("createLockRef: %v", err)
				}
				if err := awaitAt(w.rt, rep, key, ref, time.Minute); err != nil {
					t.Fatalf("await: %v", err)
				}
				if err := rep.CriticalPut(key, ref, []byte("p0")); err != nil {
					t.Fatalf("healthy put: %v", err)
				}

				w.net.SetLossRate(0.5)
				for i := 1; i <= 3; i++ {
					err := rep.CriticalPut(key, ref, []byte(fmt.Sprintf("p%d", i)))
					if err != nil && !isTransient(err) {
						t.Fatalf("lossy put p%d: terminal error %v, want transient", i, err)
					}
					w.rt.Sleep(50 * time.Millisecond)
				}

				// Heal, re-drive the final put until acknowledged, release.
				w.net.SetLossRate(0)
				if err := retryTransient(w.rt, func() error {
					return rep.CriticalPut(key, ref, []byte("p4"))
				}); err != nil {
					t.Fatalf("post-heal criticalPut: %v", err)
				}
				if err := retryTransient(w.rt, func() error { return rep.ReleaseLock(key, ref) }); err != nil {
					t.Fatalf("release: %v", err)
				}

				w.rt.Sleep(2 * time.Second)
				verifySection(t, w, w.reps[2], key, "p4")
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestJanitorStopCancelsPendingSweep pins the StartJanitor contract: after
// stop() returns, no further sweep (with its quorum reads) may run — the
// already-scheduled timer is cancelled, not just future re-arms.
func TestJanitorStopCancelsPendingSweep(t *testing.T) {
	rt := sim.New(1)
	ob := obs.New(rt, obs.Options{})
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, Seed: 1, Obs: ob})
	st := store.New(net, store.Config{})
	rep := NewReplica(st.Client(0), Config{})
	sweeps := func() int64 {
		return ob.Metrics().Counter("music_janitor_sweeps_total", obs.Labels{"site": "ohio"}).Value()
	}
	err := rt.Run(func() {
		stop := rep.StartJanitor(100 * time.Millisecond)
		rt.Sleep(350 * time.Millisecond)
		if sweeps() == 0 {
			t.Fatal("janitor never swept while running")
		}
		stop()
		before := sweeps()
		rt.Sleep(2 * time.Second)
		if got := sweeps(); got != before {
			t.Fatalf("%d sweep(s) ran after stop()", got-before)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSetGrantRetriedSurvivesTransientLoss pins the grant-cell hardening:
// even when the quorum write behind SetGrant fails transiently at grant
// time, the background retry lands it, so a failover replica sees the head
// as granted (StartTime > 0) rather than misclassifying it as an orphan and
// stalling OrphanTimeout.
func TestSetGrantRetriedSurvivesTransientLoss(t *testing.T) {
	w := newFaultWorld(42, Config{T: 30 * time.Second})
	const key = "grant-cell"
	err := w.rt.Run(func() {
		rep := w.reps[0]
		ref, err := rep.CreateLockRef(key)
		if err != nil {
			t.Fatalf("createLockRef: %v", err)
		}
		// Heavy loss while the grant (and its async SetGrant) happens.
		w.net.SetLossRate(0.6)
		if err := awaitAt(w.rt, rep, key, ref, 2*time.Minute); err != nil {
			t.Fatalf("await under loss: %v", err)
		}
		w.net.SetLossRate(0)
		// The retried grant-cell write must land within the backoff budget.
		deadline := w.rt.Now() + time.Minute
		for {
			queue, err := w.reps[1].shardFor(key).ls.Queue(key)
			if err == nil && len(queue) > 0 && queue[0].Ref == ref && queue[0].StartTime > 0 {
				break
			}
			if w.rt.Now() >= deadline {
				t.Fatal("grant cell never replicated despite retries")
			}
			w.rt.Sleep(100 * time.Millisecond)
		}
		if err := retryTransient(w.rt, func() error { return rep.ReleaseLock(key, ref) }); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
