package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// shardWorld builds a 3-site virtual world whose site-0 replica runs with
// the given shard count (sharing one store client across shards, the
// NewReplica path) and runs fn inside the simulation.
func shardWorld(t *testing.T, shards int, fn func(rt *sim.Virtual, rep *Replica)) {
	t.Helper()
	rt := sim.New(11)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	st := store.New(net, store.Config{Shards: shards})
	rep := NewReplica(st.Client(0), Config{Shards: shards})
	if err := rt.Run(func() { fn(rt, rep) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// runSection drives one full critical section on key through rep.
func runSection(rep *Replica, key string) error {
	ref, err := rep.CreateLockRef(key)
	if err != nil {
		return err
	}
	for {
		ok, err := rep.AcquireLock(key, ref)
		if err != nil {
			return err
		}
		if ok {
			break
		}
	}
	if err := rep.CriticalPut(key, ref, []byte("v")); err != nil {
		return err
	}
	if _, err := rep.CriticalGet(key, ref); err != nil {
		return err
	}
	return rep.ReleaseLock(key, ref)
}

// TestShardedSectionsAcrossShards runs sections on keys landing in every
// shard of a 4-shard plane and checks the values stick.
func TestShardedSectionsAcrossShards(t *testing.T) {
	shardWorld(t, 4, func(rt *sim.Virtual, rep *Replica) {
		hit := make(map[int]bool)
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("shard-key-%d", i)
			hit[store.ShardOf(key, 4)] = true
			if err := runSection(rep, key); err != nil {
				t.Fatalf("section %s: %v", key, err)
			}
		}
		if len(hit) != 4 {
			t.Fatalf("16 keys hit %d/4 shards", len(hit))
		}
		if rep.Shards() != 4 {
			t.Fatalf("Shards() = %d, want 4", rep.Shards())
		}
	})
}

// TestShardedSingleKeyNoExtraAllocs is the tentpole's AllocsPerRun gate:
// a single-key critical operation on a sharded plane must allocate no more
// than on the unsharded plane — shard routing is an index computation, not
// a hop. Both measurements run in the deterministic virtual simulator, so
// the comparison is exact.
func TestShardedSingleKeyNoExtraAllocs(t *testing.T) {
	measure := func(shards int) (put, get float64) {
		shardWorld(t, shards, func(rt *sim.Virtual, rep *Replica) {
			key := "alloc-key"
			ref, err := rep.CreateLockRef(key)
			if err != nil {
				panic(err)
			}
			for {
				ok, err := rep.AcquireLock(key, ref)
				if err != nil {
					panic(err)
				}
				if ok {
					break
				}
			}
			if err := rep.CriticalPut(key, ref, []byte("v")); err != nil {
				panic(err)
			}
			put = testing.AllocsPerRun(30, func() {
				if err := rep.CriticalPut(key, ref, []byte("v")); err != nil {
					panic(err)
				}
			})
			get = testing.AllocsPerRun(30, func() {
				if _, err := rep.CriticalGet(key, ref); err != nil {
					panic(err)
				}
			})
		})
		return put, get
	}
	put1, get1 := measure(1)
	put8, get8 := measure(8)
	if put8 > put1 {
		t.Errorf("CriticalPut allocates %v per op with 8 shards vs %v with 1 — sharding must be free for single-key ops", put8, put1)
	}
	if get8 > get1 {
		t.Errorf("CriticalGet allocates %v per op with 8 shards vs %v with 1", get8, get1)
	}
}
