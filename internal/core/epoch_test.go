package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// dynamicWorld is a 3-site deployment on the consistent-hash ring with a
// spare 4th site (node 3, site-d) already running store services but
// outside the epoch-1 membership — the substrate for epoch-fence tests.
func dynamicFixture(t *testing.T, cfg Config, fn func(w *world, st *store.Cluster)) {
	t.Helper()
	rt := sim.New(11)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs.Extend("ius+d", "site-d")})
	members := []store.RingNode{{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"}, {ID: 2, Site: "oregon"}}
	st := store.New(net, store.Config{RF: 3, Nodes: []simnet.NodeID{0, 1, 2, 3}, Members: members})
	w := &world{rt: rt, net: net, st: st}
	for i := 0; i < 3; i++ {
		w.rep[i] = NewReplica(st.Client(simnet.NodeID(i)), cfg)
	}
	if err := rt.Run(func() { fn(w, st) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// movedKey finds a key whose replica set changes when members' ring grows
// by site-d, plus one whose placement is untouched.
func movedKey(t *testing.T, st *store.Cluster, grown []store.RingNode) (moved, unmoved string) {
	t.Helper()
	next := store.PreviewRing(grown, 3)
	for i := 0; i < 10000 && (moved == "" || unmoved == ""); i++ {
		key := fmt.Sprintf("fence-%d", i)
		before := st.ReplicasFor(key)
		after := next.ReplicasFor(key)
		if sameNodes(before, after) {
			if unmoved == "" {
				unmoved = key
			}
		} else if moved == "" {
			moved = key
		}
	}
	if moved == "" || unmoved == "" {
		t.Fatalf("no moved/unmoved key pair found (moved=%q unmoved=%q)", moved, unmoved)
	}
	return moved, unmoved
}

// TestEpochFencePreemptsMovedKey: a section granted in epoch 1 on a key the
// epoch-2 join moves must fail with ErrEpochFenced, be force-released, and
// leave the synchFlag set so the next grant synchronizes. A section on an
// unmoved key sails through the same epoch change.
func TestEpochFencePreemptsMovedKey(t *testing.T) {
	dynamicFixture(t, Config{T: time.Minute}, func(w *world, st *store.Cluster) {
		grown := []store.RingNode{
			{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"},
			{ID: 2, Site: "oregon"}, {ID: 3, Site: "site-d"},
		}
		moved, unmoved := movedKey(t, st, grown)

		refM, err := w.rep[0].CreateLockRef(moved)
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, w.rep[0], moved, refM)
		refU, err := w.rep[0].CreateLockRef(unmoved)
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, w.rep[0], unmoved, refU)
		if err := w.rep[0].CriticalPut(moved, refM, []byte("before")); err != nil {
			t.Fatalf("CriticalPut pre-change: %v", err)
		}

		st.ApplyMembership(2, grown)

		if err := w.rep[0].CriticalPut(moved, refM, []byte("after")); !errors.Is(err, ErrEpochFenced) {
			t.Fatalf("CriticalPut on moved key after epoch change: err=%v, want ErrEpochFenced", err)
		}
		// The fence force-released the lock: a fresh ref can be granted, and
		// its grant synchronizes (observable via the history-free path by the
		// grant succeeding and the ref becoming head).
		if err := w.rep[0].CriticalPut(unmoved, refU, []byte("fine")); err != nil {
			t.Fatalf("CriticalPut on unmoved key after epoch change: %v", err)
		}

		ref2, err := w.rep[0].CreateLockRef(moved)
		if err != nil {
			t.Fatalf("CreateLockRef after fence: %v", err)
		}
		awaitLock(t, w, w.rep[0], moved, ref2)
		v, err := w.rep[0].CriticalGet(moved, ref2)
		if err != nil {
			t.Fatalf("CriticalGet after fence: %v", err)
		}
		if string(v) != "before" {
			t.Fatalf("value after fence = %q, want the pre-change write %q", v, "before")
		}
		// The fenced op never landed: its write was rejected before issue.
		if err := w.rep[0].ReleaseLock(moved, ref2); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
		if err := w.rep[0].ReleaseLock(unmoved, refU); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}

// TestEpochFenceRefusesUnplacedAdoption: after a retire, a site the new
// epoch no longer places a key at must refuse to adopt that key's
// replicated grant (the §III-A failover path), failing with ErrEpochFenced
// instead of serving quorum ops that could miss the section's writes.
func TestEpochFenceRefusesUnplacedAdoption(t *testing.T) {
	dynamicFixture(t, Config{T: time.Minute}, func(w *world, st *store.Cluster) {
		grown := []store.RingNode{
			{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"},
			{ID: 2, Site: "oregon"}, {ID: 3, Site: "site-d"},
		}
		// Find a key that epoch 2 stops placing at ncalifornia (rf 3 over 4
		// sites leaves one site out per key).
		next := store.PreviewRing(grown, 3)
		key := ""
		for i := 0; i < 10000; i++ {
			k := fmt.Sprintf("adopt-%d", i)
			if !next.PlacesSite(k, "ncalifornia") {
				key = k
				break
			}
		}
		if key == "" {
			t.Fatal("no key displaced from ncalifornia found")
		}

		ref, err := w.rep[0].CreateLockRef(key)
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, w.rep[0], key, ref)
		// Let the replicated grant cell land so another site can see it.
		w.rt.Sleep(2 * time.Second)

		st.ApplyMembership(2, grown)

		// The failover client re-drives its acquire at ncalifornia (rep[1]);
		// adoption must be refused because epoch 2 does not place the key
		// there.
		_, err = w.rep[1].AcquireLock(key, ref)
		if !errors.Is(err, ErrEpochFenced) {
			t.Fatalf("adoption at unplaced site: err=%v, want ErrEpochFenced", err)
		}
	})
}

// TestEpochFenceRetiredSite: an epoch that drops a site entirely stops that
// site from serving sections — in-flight holders are preempted with a
// forced release, and new lockRefs and grants are refused outright. Spare
// sites that have not joined yet are refused the same way.
func TestEpochFenceRetiredSite(t *testing.T) {
	dynamicFixture(t, Config{T: time.Minute}, func(w *world, st *store.Cluster) {
		// Before any change: site-d's replica is a spare outside epoch 1 and
		// must refuse to open sections.
		repD := NewReplica(st.Client(simnet.NodeID(3)), Config{T: time.Minute})
		if _, err := repD.CreateLockRef("spare-k"); !errors.Is(err, ErrEpochFenced) {
			t.Fatalf("CreateLockRef at spare site: err=%v, want ErrEpochFenced", err)
		}

		ref, err := w.rep[2].CreateLockRef("retire-k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, w.rep[2], "retire-k", ref)
		if err := w.rep[2].CriticalPut("retire-k", ref, []byte("held")); err != nil {
			t.Fatalf("CriticalPut pre-retire: %v", err)
		}

		// Epoch 2 retires oregon (rep[2]'s site).
		st.ApplyMembership(2, []store.RingNode{
			{ID: 0, Site: "ohio"}, {ID: 1, Site: "ncalifornia"},
		})

		if err := w.rep[2].CriticalPut("retire-k", ref, []byte("after")); !errors.Is(err, ErrEpochFenced) {
			t.Fatalf("CriticalPut at retired site: err=%v, want ErrEpochFenced", err)
		}
		if _, err := w.rep[2].CreateLockRef("retire-k2"); !errors.Is(err, ErrEpochFenced) {
			t.Fatalf("CreateLockRef at retired site: err=%v, want ErrEpochFenced", err)
		}
		// The preemption force-released the lock: a surviving site grants a
		// fresh section and synchronize hides the dead holder's torn state.
		ref2, err := w.rep[0].CreateLockRef("retire-k")
		if err != nil {
			t.Fatalf("CreateLockRef at surviving site: %v", err)
		}
		awaitLock(t, w, w.rep[0], "retire-k", ref2)
		v, err := w.rep[0].CriticalGet("retire-k", ref2)
		if err != nil {
			t.Fatalf("CriticalGet after retire: %v", err)
		}
		if string(v) != "held" {
			t.Fatalf("value after retire = %q, want %q", v, "held")
		}
		if err := w.rep[0].ReleaseLock("retire-k", ref2); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}

// TestEpochFenceInertOnStaticClusters: fixed-membership clusters never see
// a fence — the epoch stays 1 and grants skip the placement snapshot.
func TestEpochFenceInertOnStaticClusters(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		if w.st.Dynamic() {
			t.Fatal("static fixture reports Dynamic()")
		}
		ref, err := w.rep[0].CreateLockRef("static-k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, w.rep[0], "static-k", ref)
		if err := w.rep[0].CriticalPut("static-k", ref, []byte("v")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := w.rep[0].ReleaseLock("static-k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}
