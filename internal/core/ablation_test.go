package core

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// ablationWorld builds one replica per site with the given config.
func ablationWorld(t *testing.T, cfg Config, fn func(rt *sim.Virtual, reps [3]*Replica)) {
	t.Helper()
	rt := sim.New(23)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	st := store.New(net, store.Config{})
	var reps [3]*Replica
	for i := range reps {
		reps[i] = NewReplica(st.Client(simnet.NodeID(i)), cfg)
	}
	if err := rt.Run(func() { fn(rt, reps) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAlwaysSynchronizeStillCorrectButSlower(t *testing.T) {
	// Correctness with the ablation on: values flow across sections.
	ablationWorld(t, Config{AlwaysSynchronize: true}, func(rt *sim.Virtual, reps [3]*Replica) {
		r := reps[0]
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		start := rt.Now()
		for {
			ok, err := r.AcquireLock("k", ref)
			if err != nil {
				t.Fatalf("acquire: %v", err)
			}
			if ok {
				break
			}
			rt.Sleep(2 * time.Millisecond)
		}
		grantCost := rt.Now() - start
		// Baseline grant is one quorum read (~54ms); the ablation adds a
		// quorum read of the value and two quorum writes (~160ms more).
		if grantCost < 150*time.Millisecond {
			t.Errorf("always-sync grant = %v, want ≳3 extra quorum ops", grantCost)
		}
		if err := r.CriticalPut("k", ref, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := r.ReleaseLock("k", ref); err != nil {
			t.Fatalf("release: %v", err)
		}
		// The next section still reads the latest value.
		ref2, _ := reps[1].CreateLockRef("k")
		for {
			ok, err := reps[1].AcquireLock("k", ref2)
			if err != nil {
				t.Fatalf("acquire 2: %v", err)
			}
			if ok {
				break
			}
			rt.Sleep(2 * time.Millisecond)
		}
		got, err := reps[1].CriticalGet("k", ref2)
		if err != nil || string(got) != "v" {
			t.Fatalf("get = (%q, %v)", got, err)
		}
	})
}

func TestQuorumPeekMakesPollsExpensive(t *testing.T) {
	ablationWorld(t, Config{QuorumPeek: true}, func(rt *sim.Virtual, reps [3]*Replica) {
		r := reps[0]
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		// A single acquire poll now costs a WAN quorum round trip.
		start := rt.Now()
		ok, err := r.AcquireLock("k", ref)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		pollCost := rt.Now() - start
		if !ok {
			t.Fatal("head ref not granted")
		}
		// Quorum peek (~54ms) + grant read (~54ms) ≫ local peek (~0.4ms).
		if pollCost < 90*time.Millisecond {
			t.Errorf("quorum-peek acquire = %v, want ≳2 quorum reads", pollCost)
		}
		if err := r.CriticalPut("k", ref, []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := r.ReleaseLock("k", ref); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
}

func TestQuorumPeekSeesFreshQueue(t *testing.T) {
	// The one thing quorum peeks buy: no stale-local-replica window. With a
	// partitioned local replica, the quorum peek still observes the queue.
	rt := sim.New(29)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	st := store.New(net, store.Config{Timeout: 500 * time.Millisecond})
	r2 := NewReplica(st.Client(2), Config{QuorumPeek: true})
	r0 := NewReplica(st.Client(0), Config{})
	err := rt.Run(func() {
		ref, err := r0.CreateLockRef("k")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		_ = ref
		// Cut node 2 off from ONE other node only: its local replica may be
		// stale but a quorum of {0,1} or {1,2}... here we isolate nothing
		// and simply verify the quorum peek observes the fresh enqueue
		// immediately, with no local-propagation wait.
		head, ok, err := r2.peek("k")
		if err != nil || !ok || head.Ref != ref {
			t.Fatalf("quorum peek = (%+v, %v, %v), want ref %d", head, ok, err, ref)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
