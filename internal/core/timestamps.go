// Package core implements the paper's primary contribution: the MUSIC
// replica algorithms providing critical sections with entry consistency
// under failures (ECF, §III-§IV). A Replica executes createLockRef,
// acquireLock, criticalPut, criticalGet, releaseLock and forcedRelease
// against a lock store (Paxos-backed FIFO lock queues) and a data store
// (quorum reads/writes over an eventually consistent replicated KV),
// ordering data-store cells with vector timestamps (lockRef, time) mapped
// to scalars by the order-preserving v2s function (§VI, §X-A2).
package core

import "time"

// lockEpoch offsets every critical-section timestamp above any plain
// (wall-clock microsecond) write timestamp, so the true value written under
// a lock always dominates unlocked puts on the same key (§VI "Additional
// Functions": plain get/put carry no ECF guarantees).
const lockEpoch = int64(1) << 62

// v2s maps the vector timestamp (lockRef, elapsed) to a scalar, preserving
// vector order (§X-A2): lockRef is most significant, and each lockRef owns a
// window of T ticks. The top tick of each window is reserved for the δ
// timestamp used by forcedRelease (§IV-B): it beats every in-section write
// of the same lockRef but loses to the next lockRef's first write.
func v2s(ref int64, elapsed time.Duration, t time.Duration) int64 {
	ticks := int64(t / time.Microsecond)
	e := int64(elapsed / time.Microsecond)
	if e < 0 {
		e = 0
	}
	if e > ticks-2 {
		e = ticks - 2
	}
	return lockEpoch + ref*ticks + e
}

// v2sForced is the δ timestamp forcedRelease stamps the synchFlag with:
// strictly above any v2s(ref, ·) and strictly below v2s(ref+1, 0).
func v2sForced(ref int64, t time.Duration) int64 {
	ticks := int64(t / time.Microsecond)
	return lockEpoch + ref*ticks + ticks - 1
}

// refOfTS recovers the lockRef component from a v2s scalar; zero for plain
// (non-critical) timestamps.
func refOfTS(ts int64, t time.Duration) int64 {
	if ts < lockEpoch {
		return 0
	}
	ticks := int64(t / time.Microsecond)
	return (ts - lockEpoch) / ticks
}
