package core

import (
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// leaseFixture is fixture with a config built after the runtime exists, so
// tests can attach a history recorder / monitor (both need the sim clock).
func leaseFixture(t *testing.T, mk func(rt *sim.Virtual) Config, fn func(w *world)) {
	t.Helper()
	rt := sim.New(11)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	st := store.New(net, store.Config{})
	w := &world{rt: rt, net: net, st: st}
	cfg := mk(rt)
	for i := 0; i < 3; i++ {
		w.rep[i] = NewReplica(st.Client(simnet.NodeID(i)), cfg)
	}
	if err := rt.Run(func() { fn(w) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// A granted section's writes fold into the site lease, and any read routed
// to the holder site — the section's own CriticalGet or a plain Get from an
// unrelated client — serves locally until release revokes the lease.
func TestLeaseServesSiteReadsLocally(t *testing.T) {
	fixture(t, Config{Leases: true}, func(w *world) {
		r := w.rep[0]
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, r, "k", ref)
		if err := r.CriticalPut("k", ref, []byte("v1")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}

		if v, present, ok := r.leasePeek("k", ref); !ok || !present || string(v) != "v1" {
			t.Fatalf("leasePeek = (%q, %v, %v), want (v1, true, true)", v, present, ok)
		}
		if v, err := r.CriticalGet("k", ref); err != nil || string(v) != "v1" {
			t.Fatalf("CriticalGet = (%q, %v), want v1", v, err)
		}
		if v, present, served := r.leaseServe("k"); !served || !present || string(v) != "v1" {
			t.Fatalf("leaseServe = (%q, %v, %v), want (v1, true, true)", v, present, served)
		}
		if v, err := r.Get("k"); err != nil || string(v) != "v1" {
			t.Fatalf("Get via lease = (%q, %v), want v1", v, err)
		}
		// Only the granting site holds the lease.
		if _, _, served := w.rep[1].leaseServe("k"); served {
			t.Fatal("non-holder site served from a lease it was never issued")
		}

		if err := r.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
		if _, _, served := r.leaseServe("k"); served {
			t.Fatal("lease served after release revoked it")
		}
		if _, _, ok := r.leasePeek("k", ref); ok {
			t.Fatal("leasePeek succeeded after release")
		}
		// The fallback eventual read still observes the committed value.
		if v, err := r.Get("k"); err != nil || string(v) != "v1" {
			t.Fatalf("Get after release = (%q, %v), want v1", v, err)
		}
	})
}

// A fresh grant seeds its lease from the grant-time quorum peek (clean
// synchFlag path), so the new holder's first read serves locally with no
// section write; a critical delete folds present=false into the lease.
func TestLeaseSeededFromGrant(t *testing.T) {
	fixture(t, Config{Leases: true}, func(w *world) {
		ref1, err := w.rep[0].CreateLockRef("k")
		if err != nil {
			t.Fatalf("ref1: %v", err)
		}
		awaitLock(t, w, w.rep[0], "k", ref1)
		if err := w.rep[0].CriticalPut("k", ref1, []byte("seeded")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := w.rep[0].ReleaseLock("k", ref1); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}

		ref2, err := w.rep[1].CreateLockRef("k")
		if err != nil {
			t.Fatalf("ref2: %v", err)
		}
		awaitLock(t, w, w.rep[1], "k", ref2)
		if v, present, ok := w.rep[1].leasePeek("k", ref2); !ok || !present || string(v) != "seeded" {
			t.Fatalf("seeded leasePeek = (%q, %v, %v), want (seeded, true, true)", v, present, ok)
		}
		if err := w.rep[1].CriticalDelete("k", ref2); err != nil {
			t.Fatalf("CriticalDelete: %v", err)
		}
		if v, present, ok := w.rep[1].leasePeek("k", ref2); !ok || present || v != nil {
			t.Fatalf("post-delete leasePeek = (%q, %v, %v), want (nil, false, true)", v, present, ok)
		}
		if v, err := w.rep[1].CriticalGet("k", ref2); err != nil || v != nil {
			t.Fatalf("post-delete CriticalGet = (%q, %v), want nil", v, err)
		}
		if err := w.rep[1].ReleaseLock("k", ref2); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}

// Past the effective TTL the lease stops serving (leaseLive) and the
// section's reads fall back to the quorum path, still within the T bound.
func TestLeaseWindowExpiry(t *testing.T) {
	// The TTL must dwarf the profile's WAN RTTs (~24–72ms) so the grant and
	// the put both land well inside the window.
	fixture(t, Config{Leases: true, LeaseTTL: time.Second, LeaseSkew: 50 * time.Millisecond}, func(w *world) {
		r := w.rep[0]
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, r, "k", ref)
		if err := r.CriticalPut("k", ref, []byte("v")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if _, _, served := r.leaseServe("k"); !served {
			t.Fatal("lease did not serve inside its window")
		}

		w.rt.Sleep(1200 * time.Millisecond)
		if _, _, served := r.leaseServe("k"); served {
			t.Fatal("lease served past its TTL")
		}
		if _, _, ok := r.leasePeek("k", ref); ok {
			t.Fatal("leasePeek succeeded past the TTL")
		}
		// The section is still within T: critical reads work via quorum.
		if v, err := r.CriticalGet("k", ref); err != nil || string(v) != "v" {
			t.Fatalf("CriticalGet after lease expiry = (%q, %v), want v", v, err)
		}
		if err := r.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}

// Window arithmetic: the TTL clamps to T − 2·LeaseSkew, a clamp at or below
// zero disables serving entirely, and the foreign wait extends one skew
// bound past the serve window. siteTag is never zero and separates sites.
func TestLeaseTTLClampAndSiteTag(t *testing.T) {
	r := &Replica{cfg: Config{T: 100 * time.Millisecond, LeaseTTL: 2 * time.Second, LeaseSkew: 30 * time.Millisecond}}
	if got := r.leaseTTL(); got != 40*time.Millisecond {
		t.Fatalf("leaseTTL clamp = %v, want 40ms", got)
	}

	dead := &Replica{cfg: Config{T: 50 * time.Millisecond, LeaseTTL: 2 * time.Second, LeaseSkew: 30 * time.Millisecond}}
	if dead.leaseLive(0, 0) {
		t.Fatal("lease live under a T too small for the skew margin")
	}
	if got := dead.leaseWaitMicros(123); got != 123 {
		t.Fatalf("disabled-lease wait = %d, want start unchanged", got)
	}

	full := &Replica{cfg: Config{T: time.Minute, LeaseTTL: 2 * time.Second, LeaseSkew: 250 * time.Millisecond}}
	if got := full.leaseTTL(); got != 2*time.Second {
		t.Fatalf("unclamped leaseTTL = %v, want 2s", got)
	}
	wantWait := int64((2*time.Second + 250*time.Millisecond) / time.Microsecond)
	if got := full.leaseWaitMicros(0); got != wantWait {
		t.Fatalf("leaseWaitMicros = %d, want %d", got, wantWait)
	}
	if full.leaseLive(0, wantWait) {
		t.Fatal("lease live at the foreign-wait boundary")
	}

	a, b := &Replica{site: "site-a"}, &Replica{site: "site-b"}
	if a.siteTag() == 0 || b.siteTag() == 0 {
		t.Fatal("siteTag produced the reserved zero tag")
	}
	if a.siteTag() != a.siteTag() || a.siteTag() == b.siteTag() {
		t.Fatal("siteTag not stable per site / not distinct across sites")
	}
}

// Safety re-check: a preemption driven at a *remote* site dequeues the ref
// without touching the holder site's in-memory lease record, so leaseServe
// must catch it via the full CriticalCheck guard it re-runs on every serve.
// A self-driven forced release revokes the record eagerly.
func TestLeaseServeRechecksGuardAfterPreemption(t *testing.T) {
	fixture(t, Config{Leases: true}, func(w *world) {
		r := w.rep[0]
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, r, "k", ref)
		if err := r.CriticalPut("k", ref, []byte("v1")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}

		// Remote preemption: rep[1] judges the holder dead and force-releases.
		if err := w.rep[1].ForcedRelease("k", ref); err != nil {
			t.Fatalf("remote ForcedRelease: %v", err)
		}
		// Let the dequeue replicate to rep[0]'s local lock replica (the
		// guard's peek is an eventual read; the window-vs-T margin, not
		// instant visibility, is what protects the replication gap).
		w.rt.Sleep(200 * time.Millisecond)
		// rep[0]'s lease record is still installed and inside its window,
		// but the guard sees the dequeued head and refuses the serve.
		if _, _, served := r.leaseServe("k"); served {
			t.Fatal("lease served after a remote preemption dequeued the ref")
		}
		if _, err := r.CriticalGet("k", ref); err == nil {
			t.Fatal("CriticalGet succeeded after preemption")
		}

		// The next holder synchronizes (forced release set the synchFlag)
		// and its lease seeds from the surviving value.
		ref2, err := w.rep[2].CreateLockRef("k")
		if err != nil {
			t.Fatalf("ref2: %v", err)
		}
		awaitLock(t, w, w.rep[2], "k", ref2)
		if v, present, ok := w.rep[2].leasePeek("k", ref2); !ok || !present || string(v) != "v1" {
			t.Fatalf("post-sync leasePeek = (%q, %v, %v), want (v1, true, true)", v, present, ok)
		}

		// Self-driven forced release revokes the local record eagerly.
		if err := w.rep[2].ForcedRelease("k", ref2); err != nil {
			t.Fatalf("self ForcedRelease: %v", err)
		}
		if _, _, served := w.rep[2].leaseServe("k"); served {
			t.Fatal("lease served after self forced release")
		}
	})
}

// Adaptive reads: with MutationStaleReads injected, a weak critical get
// serves one write behind, the monitor counts the staleness violation and
// flips the site to QUORUM, and post-flip reads are correct again.
func TestAdaptiveStaleReadFlipsMonitor(t *testing.T) {
	var rec *history.Recorder
	mon := history.NewMonitor(history.MonitorConfig{TripCount: 1, Window: 50})
	leaseFixture(t, func(rt *sim.Virtual) Config {
		rec = history.New(rt)
		rec.Attach(mon)
		return Config{AdaptiveReads: true, History: rec, Monitor: mon, Mutation: MutationStaleReads}
	}, func(w *world) {
		r := w.rep[0]
		site := r.site
		ref, err := r.CreateLockRef("k")
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		awaitLock(t, w, r, "k", ref)

		if err := r.CriticalPut("k", ref, []byte("a")); err != nil {
			t.Fatalf("CriticalPut a: %v", err)
		}
		// First weak read: the stale swap has nothing remembered, so it
		// serves the current row — no violation.
		if v, err := r.CriticalGet("k", ref); err != nil || string(v) != "a" {
			t.Fatalf("first weak get = (%q, %v), want a", v, err)
		}
		if err := r.CriticalPut("k", ref, []byte("b")); err != nil {
			t.Fatalf("CriticalPut b: %v", err)
		}
		// Second weak read serves the remembered previous row — stale.
		if v, err := r.CriticalGet("k", ref); err != nil || string(v) != "a" {
			t.Fatalf("stale weak get = (%q, %v), want the injected stale a", v, err)
		}
		if got := mon.Violations(site); got < 1 {
			t.Fatalf("monitor violations = %d, want >= 1", got)
		}
		if !mon.Flipped(site) {
			t.Fatal("monitor did not flip the site at TripCount=1")
		}
		// Flipped: the next read goes back over the quorum path and is fresh.
		if v, err := r.CriticalGet("k", ref); err != nil || string(v) != "b" {
			t.Fatalf("post-flip get = (%q, %v), want b", v, err)
		}
		if got := mon.PostFlipViolations(site); got != 0 {
			t.Fatalf("post-flip violations = %d, want 0", got)
		}
		// The repair hook's quorum read re-converges without error.
		if err := r.RepairRead("k"); err != nil {
			t.Fatalf("RepairRead: %v", err)
		}
		if err := r.ReleaseLock("k", ref); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}
	})
}
