package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// TestChaosECFUnderFalseDetection drives contending clients through
// critical sections while an adversarial "failure detector" forcibly
// releases the current lockholder at random moments (the paper's false
// failure detection) and the scheduler explores randomized interleavings.
// It then checks the end-to-end ECF consequences on the observed history:
//
//   - distinct lockRefs across successful sections (exclusivity of grants);
//   - no successful section reads state older than the newest fully
//     completed earlier section (latest state): every value read was
//     written under a lockRef no older than the last full section's, i.e.
//     committed-and-released updates are never lost;
//   - every value ever read was actually written by some section (no
//     corruption).
func TestChaosECFUnderFalseDetection(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// record is one client's attempt at a critical section.
type record struct {
	ref    int64
	read   string // value observed by criticalGet ("" = none)
	wrote  string // value attempted by criticalPut
	putAck bool   // put acknowledged
	full   bool   // get+put+release all succeeded, never preempted
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	rt := sim.New(seed)
	rt.SetScheduleShuffle(true)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, Seed: seed})
	st := store.New(net, store.Config{})
	reps := make([]*Replica, 3)
	for i := range reps {
		reps[i] = NewReplica(st.Client(simnet.NodeID(i)), Config{T: 30 * time.Second})
	}

	const key = "chaos"
	var records []*record

	err := rt.Run(func() {
		// The adversary: randomly preempts whatever lockRef is at the head,
		// regardless of whether its holder is alive (false detection).
		stopChaos := false
		rt.Go(func() {
			for !stopChaos {
				rt.Sleep(time.Duration(50+rt.Rand().Intn(400)) * time.Millisecond)
				if head, ok, err := reps[2].shardFor(key).ls.Peek(key); err == nil && ok {
					_ = reps[2].ForcedRelease(key, head.Ref)
				}
			}
		})

		done := sim.NewMailbox[struct{}](rt)
		const clients, rounds = 3, 3
		for ci := 0; ci < clients; ci++ {
			ci := ci
			rep := reps[ci]
			rt.Go(func() {
				defer done.Send(struct{}{})
				for round := 0; round < rounds; round++ {
					rec := &record{wrote: fmt.Sprintf("c%d-r%d", ci, round)}
					records = append(records, rec)

					ref, err := rep.CreateLockRef(key)
					if err != nil {
						continue
					}
					rec.ref = ref
					acquired := false
					for tries := 0; tries < 3000; tries++ {
						ok, err := rep.AcquireLock(key, ref)
						if err != nil {
							break // preempted while waiting
						}
						if ok {
							acquired = true
							break
						}
						rt.Sleep(5 * time.Millisecond)
					}
					if !acquired {
						_ = rep.ReleaseLock(key, ref) // evict our reference
						continue
					}

					v, err := rep.CriticalGet(key, ref)
					if err != nil {
						continue
					}
					rec.read = string(v)

					if err := rep.CriticalPut(key, ref, []byte(rec.wrote)); err != nil {
						continue
					}
					rec.putAck = true

					if err := rep.ReleaseLock(key, ref); err != nil {
						continue
					}
					// ReleaseLock succeeds silently even when the section
					// was forcibly preempted (§IV-A), so "full" also
					// requires our write to have survived as the true
					// value: a quorum read right after release. (A racing
					// next writer makes this check conservatively false.)
					row, err := st.Client(simnet.NodeID(ci)).GetCols(DataTable, key, []string{colValue}, store.Quorum)
					if err == nil {
						if c, ok := row[colValue]; ok && string(c.Value) == rec.wrote {
							rec.full = true
						}
					}
				}
			})
		}
		for i := 0; i < clients; i++ {
			if _, err := done.RecvTimeout(30 * time.Minute); err != nil {
				t.Errorf("client never finished: %v", err)
				return
			}
		}
		stopChaos = true
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	checkChaosHistory(t, records)
}

func checkChaosHistory(t *testing.T, records []*record) {
	t.Helper()
	// Index writes by value.
	writerRef := make(map[string]int64)
	refs := make(map[int64]bool)
	fullCount := 0
	for _, r := range records {
		if r.ref == 0 {
			continue
		}
		if r.wrote != "" {
			writerRef[r.wrote] = r.ref
		}
		if r.full {
			fullCount++
			if refs[r.ref] {
				t.Errorf("two full sections share lockRef %d", r.ref)
			}
			refs[r.ref] = true
		}
	}

	// Order successful sections by lockRef (the lock's serialization
	// order) and check the latest-state property against full sections.
	var ordered []*record
	for _, r := range records {
		if r.ref != 0 && r.read != "" || (r.ref != 0 && r.full) {
			ordered = append(ordered, r)
		}
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].ref < ordered[i].ref {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}

	lastFull := int64(0)
	for _, r := range ordered {
		if r.read != "" {
			wref, known := writerRef[r.read]
			if !known {
				t.Errorf("section ref %d read unwritten value %q", r.ref, r.read)
			} else if wref < lastFull {
				t.Errorf("section ref %d read %q (writer ref %d), older than last full section ref %d — lost update",
					r.ref, r.read, wref, lastFull)
			}
		} else if r.full && lastFull > 0 {
			t.Errorf("section ref %d read no value although full section ref %d wrote one", r.ref, lastFull)
		}
		if r.full {
			lastFull = r.ref
		}
	}

	if fullCount == 0 {
		t.Log("warning: chaos so aggressive that no section completed fully")
	}
}

// TestChaosPartitionMidSectionFailover partitions the lockholder's site in
// the middle of a critical section — after one acknowledged put, with a
// second put failing unacknowledged into the minority — and resumes the
// same lockRef at a majority-side replica. ECF requires the failover
// replica to read the last acknowledged put (latest state), accept new
// writes, and the section's final value to survive the heal with the
// minority straggler never resurrecting.
func TestChaosPartitionMidSectionFailover(t *testing.T) {
	for _, seed := range faultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newFaultWorld(seed, Config{T: 10 * time.Minute})
			const key = "midsection"
			err := w.rt.Run(func() {
				rep := w.reps[0]
				ref, err := rep.CreateLockRef(key)
				if err != nil {
					t.Fatalf("createLockRef: %v", err)
				}
				if err := awaitAt(w.rt, rep, key, ref, time.Minute); err != nil {
					t.Fatalf("await: %v", err)
				}
				if err := rep.CriticalPut(key, ref, []byte("acked-1")); err != nil {
					t.Fatalf("acked put: %v", err)
				}
				// Give the async grant-cell write a moment to replicate, then
				// cut the holder's site off mid-section.
				w.rt.Sleep(time.Second)
				w.net.PartitionSites([]string{"ohio"}, []string{"ncalifornia", "oregon"})
				if err := rep.CriticalPut(key, ref, []byte("straggler")); !errors.Is(err, ErrUnavailable) {
					t.Fatalf("minority put err = %v, want ErrUnavailable", err)
				}

				// Resume the same lockRef at a majority-side replica: it must
				// adopt the replicated grant (no fresh T window) and read the
				// last acknowledged put.
				rep2 := w.reps[1]
				if err := awaitAt(w.rt, rep2, key, ref, time.Minute); err != nil {
					t.Fatalf("failover await: %v", err)
				}
				v, err := rep2.CriticalGet(key, ref)
				if err != nil {
					t.Fatalf("failover criticalGet: %v", err)
				}
				if string(v) != "acked-1" {
					t.Fatalf("failover read %q, want acked-1 (last acknowledged put)", v)
				}
				if err := rep2.CriticalPut(key, ref, []byte("acked-2")); err != nil {
					t.Fatalf("failover criticalPut: %v", err)
				}
				if err := retryTransient(w.rt, func() error { return rep2.ReleaseLock(key, ref) }); err != nil {
					t.Fatalf("failover release: %v", err)
				}

				w.net.Heal()
				w.rt.Sleep(2 * time.Second)
				verifySection(t, w, w.reps[0], key, "acked-2")
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}

// TestCriticalSectionsSurviveMessageLoss exercises the §III-A failure
// semantics: with lossy links, individual quorum operations may fail with
// ErrUnavailable, and retrying (per the paper's client obligations) must
// eventually complete the critical section without violating exclusivity.
func TestCriticalSectionsSurviveMessageLoss(t *testing.T) {
	rt := sim.New(77)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs, Seed: 77})
	st := store.New(net, store.Config{Timeout: 800 * time.Millisecond})
	rep := NewReplica(st.Client(0), Config{T: time.Minute})
	net.SetLossRate(0.03)

	err := rt.Run(func() {
		retry := func(op func() error) error {
			var err error
			for i := 0; i < 25; i++ {
				err = op()
				if err == nil || !errors.Is(err, ErrUnavailable) {
					return err
				}
				rt.Sleep(100 * time.Millisecond)
			}
			return err
		}

		var ref int64
		if err := retry(func() error {
			r, err := rep.CreateLockRef("k")
			if err == nil {
				ref = r
			}
			return err
		}); err != nil {
			t.Fatalf("createLockRef under loss: %v", err)
		}
		for i := 0; i < 5000; i++ {
			ok, err := rep.AcquireLock("k", ref)
			if err != nil && !errors.Is(err, ErrUnavailable) {
				t.Fatalf("acquire: %v", err)
			}
			if ok {
				break
			}
			rt.Sleep(10 * time.Millisecond)
		}
		if err := retry(func() error { return rep.CriticalPut("k", ref, []byte("lossy")) }); err != nil {
			t.Fatalf("criticalPut under loss: %v", err)
		}
		var got []byte
		if err := retry(func() error {
			v, err := rep.CriticalGet("k", ref)
			if err == nil {
				got = v
			}
			return err
		}); err != nil {
			t.Fatalf("criticalGet under loss: %v", err)
		}
		if string(got) != "lossy" {
			t.Fatalf("read %q, want lossy", got)
		}
		if err := retry(func() error { return rep.ReleaseLock("k", ref) }); err != nil {
			t.Fatalf("release under loss: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
