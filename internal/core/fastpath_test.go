package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// awaitSeeded polls AcquireLockSeeded until granted, returning the seed of
// the granting call.
func awaitSeeded(t *testing.T, w *world, r *Replica, key string, ref int64) ValueSeed {
	t.Helper()
	for i := 0; i < 10000; i++ {
		ok, seed, err := r.AcquireLockSeeded(key, ref)
		if err != nil {
			t.Fatalf("AcquireLockSeeded(%s, %d): %v", key, ref, err)
		}
		if ok {
			return seed
		}
		w.rt.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("lock %s/%d never acquired", key, ref)
	return ValueSeed{}
}

func TestAcquireLockSeedsValue(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		const key = "seeded"

		// First-ever grant: the piggybacked read sees no value.
		ref1, err := w.rep[0].CreateLockRef(key)
		if err != nil {
			t.Fatalf("CreateLockRef: %v", err)
		}
		seed := awaitSeeded(t, w, w.rep[0], key, ref1)
		if !seed.Valid || seed.Present {
			t.Fatalf("fresh-key seed = %+v, want Valid && !Present", seed)
		}
		if err := w.rep[0].CriticalPut(key, ref1, []byte("v1")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		// Idempotent re-acquire performs no quorum read: no seed.
		ok, reseed, err := w.rep[0].AcquireLockSeeded(key, ref1)
		if err != nil || !ok {
			t.Fatalf("re-acquire = %v, %v", ok, err)
		}
		if reseed.Valid {
			t.Fatalf("re-acquire seed = %+v, want invalid (no quorum read ran)", reseed)
		}
		if err := w.rep[0].ReleaseLock(key, ref1); err != nil {
			t.Fatalf("ReleaseLock: %v", err)
		}

		// The next holder — at a different site — is seeded with the value
		// the previous section wrote, fetched by the grant quorum read.
		ref2, err := w.rep[1].CreateLockRef(key)
		if err != nil {
			t.Fatalf("CreateLockRef 2: %v", err)
		}
		seed = awaitSeeded(t, w, w.rep[1], key, ref2)
		if !seed.Valid || !seed.Present || !bytes.Equal(seed.Value, []byte("v1")) {
			t.Fatalf("seed after write = %+v, want Valid && Present && v1", seed)
		}
	})
}

func TestSeedAfterForcedReleaseSynchronization(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		const key = "sync-seed"
		ref1, _ := w.rep[0].CreateLockRef(key)
		awaitLock(t, w, w.rep[0], key, ref1)
		if err := w.rep[0].CriticalPut(key, ref1, []byte("preempted")); err != nil {
			t.Fatalf("CriticalPut: %v", err)
		}
		if err := w.rep[1].ForcedRelease(key, ref1); err != nil {
			t.Fatalf("ForcedRelease: %v", err)
		}

		// The grant after a forced release runs synchronize; its seed is the
		// value the synchronization re-stamped.
		ref2, _ := w.rep[2].CreateLockRef(key)
		seed := awaitSeeded(t, w, w.rep[2], key, ref2)
		if !seed.Valid || !seed.Present || !bytes.Equal(seed.Value, []byte("preempted")) {
			t.Fatalf("post-synchronize seed = %+v, want Valid && Present && preempted", seed)
		}
		got, err := w.rep[2].CriticalGet(key, ref2)
		if err != nil || !bytes.Equal(got, seed.Value) {
			t.Fatalf("CriticalGet = %q, %v; want seed value %q", got, err, seed.Value)
		}
	})
}

func TestCriticalCheckGuards(t *testing.T) {
	fixture(t, Config{T: 5 * time.Second}, func(w *world) {
		const key = "check"
		ref, _ := w.rep[0].CreateLockRef(key)
		awaitLock(t, w, w.rep[0], key, ref)
		if err := w.rep[0].CriticalCheck(key, ref); err != nil {
			t.Fatalf("holder CriticalCheck: %v", err)
		}
		// A contender queued behind the holder is not the lock holder.
		ref2, _ := w.rep[1].CreateLockRef(key)
		w.rt.Sleep(time.Second)
		if err := w.rep[1].CriticalCheck(key, ref2); !errors.Is(err, ErrNotLockHolder) {
			t.Fatalf("contender CriticalCheck = %v, want ErrNotLockHolder", err)
		}
		// Past T the check self-preempts, like every critical-op guard.
		w.rt.Sleep(5 * time.Second)
		if err := w.rep[0].CriticalCheck(key, ref); !errors.Is(err, ErrExpired) {
			t.Fatalf("expired CriticalCheck = %v, want ErrExpired", err)
		}
	})
}

func TestCriticalPutAsyncPipelines(t *testing.T) {
	fixture(t, Config{}, func(w *world) {
		const key = "pipelined"
		ref, _ := w.rep[0].CreateLockRef(key)
		awaitLock(t, w, w.rep[0], key, ref)

		issued := w.rt.Now()
		h1, err := w.rep[0].CriticalPutAsync(key, ref, []byte("w1"))
		if err != nil {
			t.Fatalf("CriticalPutAsync 1: %v", err)
		}
		h2, err := w.rep[0].CriticalPutAsync(key, ref, []byte("w2"))
		if err != nil {
			t.Fatalf("CriticalPutAsync 2: %v", err)
		}
		// Issue time is guard-only (local peeks): both writes' WAN round
		// trips overlap rather than serialize.
		if d := w.rt.Now() - issued; d > 20*time.Millisecond {
			t.Fatalf("two async puts took %v to issue — acks must not be awaited inline", d)
		}
		if err := h1.Wait(); err != nil {
			t.Fatalf("Wait 1: %v", err)
		}
		if err := h2.Wait(); err != nil {
			t.Fatalf("Wait 2: %v", err)
		}
		got, err := w.rep[0].CriticalGet(key, ref)
		if err != nil || string(got) != "w2" {
			t.Fatalf("CriticalGet = %q, %v; want w2", got, err)
		}

		// Non-holders are rejected at issue, not at flush.
		if _, err := w.rep[0].CriticalPutAsync(key, ref+999, []byte("x")); !errors.Is(err, ErrNotLockHolder) {
			t.Fatalf("non-holder CriticalPutAsync = %v, want ErrNotLockHolder", err)
		}
	})
}

func TestCriticalPutAsyncLWTFallsBackSync(t *testing.T) {
	fixture(t, Config{Mode: ModeLWT}, func(w *world) {
		const key = "lwt-async"
		ref, _ := w.rep[0].CreateLockRef(key)
		awaitLock(t, w, w.rep[0], key, ref)
		h, err := w.rep[0].CriticalPutAsync(key, ref, []byte("v"))
		if err != nil {
			t.Fatalf("CriticalPutAsync: %v", err)
		}
		if !h.Settled() {
			t.Fatal("LWT-mode async put returned an unsettled handle — the CAS must complete synchronously")
		}
		if err := h.Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		got, err := w.rep[0].CriticalGet(key, ref)
		if err != nil || string(got) != "v" {
			t.Fatalf("CriticalGet = %q, %v; want v", got, err)
		}
	})
}
