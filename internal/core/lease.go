package core

import (
	"hash/fnv"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/store"
)

// Site-scoped holder leases (per Keyspace, PAPERS.md): when this replica
// certifies a grant, the grant also issues the replica's *site* a
// clock-skew-bounded lease on the key, and any client routed to the site —
// not just the lockholder's session — serves Get locally for the lease
// window. The safety argument (DESIGN.md "Adaptive consistency"):
//
//   - The lease window is effTTL = min(LeaseTTL, T − 2·LeaseSkew), measured
//     on the granting site's clock from the grant instant. A remote replica
//     preempts a granted section only once elapsed > T on its own clock, so
//     with clock skew bounded by LeaseSkew the lease has provably stopped
//     serving before any preemption's dequeue can admit a new writer.
//   - In lease mode the grant cell is written with an LWT (SetGrantLWT)
//     conditioned on the queue bytes and on no existing grant cell, and the
//     orphan reap dequeues with DequeueIfUngranted, conditioned on the grant
//     cell's absence — both serialize through Paxos on the same lock row, so
//     a lease-issuing grant and an orphan reap of the same ref cannot both
//     win.
//   - A replica adopting a foreign grant (failover) refuses retryably until
//     the granting site's window has provably closed (effTTL + LeaseSkew
//     past the grant instant), and a voluntary release driven at a site that
//     never held the grant locally waits the same window out before
//     dequeuing — so no new writer can be admitted while a remote lease
//     still serves.
//   - Every lease serve re-runs the full CriticalCheck guard (head peek,
//     grant time, epoch fence, T bound), so a released, preempted, fenced,
//     or expired lease can never serve; release/forced-release/epoch-fence
//     paths also revoke the local lease record eagerly via forgetGrant.
type leaseState struct {
	ref         int64
	startMicros int64
	value       []byte
	present     bool
	haveValue   bool
}

// siteTag identifies this site in grant cells (SetGrantLWT): a granter whose
// CAS lost its ack — or a second local poll racing it — recognizes the cell
// as its own site's and re-owns the grant instead of waiting out its own
// lease window as if it were foreign. Never 0 (0 means "untagged cell").
func (r *Replica) siteTag() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.site))
	return h.Sum64() | 1
}

// leaseTTL returns the effective lease window: the configured TTL clamped to
// T − 2·LeaseSkew. A non-positive result disables serving entirely (the skew
// margin cannot be afforded under this T).
func (r *Replica) leaseTTL() time.Duration {
	ttl := r.cfg.LeaseTTL
	if bound := r.cfg.T - 2*r.cfg.LeaseSkew; ttl > bound {
		ttl = bound
	}
	return ttl
}

// leaseLive reports whether a lease issued at startMicros may still serve at
// nowMicros.
func (r *Replica) leaseLive(startMicros, nowMicros int64) bool {
	ttl := r.leaseTTL()
	return ttl > 0 && nowMicros-startMicros < int64(ttl/time.Microsecond)
}

// leaseWaitMicros returns how long past a grant instant a foreign replica
// must wait before it may act as (or admit) a new writer: the serve window
// plus one skew bound.
func (r *Replica) leaseWaitMicros(startMicros int64) int64 {
	ttl := r.leaseTTL()
	if ttl <= 0 {
		return startMicros
	}
	return startMicros + int64((ttl+r.cfg.LeaseSkew)/time.Microsecond)
}

// installLease records the site lease a certified grant issues. The value is
// seeded from the grant's piggybacked quorum read when available; without a
// seed the lease serves nothing until a critical op of the section fills it.
func (r *Replica) installLease(key string, ref, startMicros int64, seed ValueSeed) {
	if !r.cfg.Leases {
		return
	}
	l := &leaseState{ref: ref, startMicros: startMicros}
	if seed.Valid {
		l.haveValue, l.present = true, seed.Present
		if seed.Value != nil {
			l.value = append([]byte(nil), seed.Value...)
		}
	}
	s := r.shardFor(key)
	s.mu.Lock()
	s.leases[key] = l
	s.mu.Unlock()
}

// leaseUpdate folds a freshly stamped critical write into the lease value,
// so site-local reads observe the section's own writes immediately.
func (r *Replica) leaseUpdate(key string, ref int64, value []byte, present bool) {
	if !r.cfg.Leases {
		return
	}
	s := r.shardFor(key)
	s.mu.Lock()
	if l, ok := s.leases[key]; ok && l.ref == ref {
		l.haveValue, l.present = true, present
		l.value = nil
		if present {
			l.value = append([]byte(nil), value...)
		}
	}
	s.mu.Unlock()
}

// leasePeek serves a critical get of the section that holds the lease. The
// caller has already passed guardCritical for ref; only the lease window and
// value availability are checked here.
func (r *Replica) leasePeek(key string, ref int64) (value []byte, present, ok bool) {
	if !r.cfg.Leases {
		return nil, false, false
	}
	now := r.nowMicros()
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	l, exists := s.leases[key]
	if !exists || l.ref != ref || !l.haveValue || !r.leaseLive(l.startMicros, now) {
		return nil, false, false
	}
	return l.value, l.present, true
}

// leaseServe serves a plain Get from the site lease: any client routed to
// this site reads locally, gated by the full CriticalCheck guard of the
// leased section. served=false (lease absent, window closed, or guard
// refused) sends the caller to the ordinary eventual read.
func (r *Replica) leaseServe(key string) (value []byte, present, served bool) {
	if !r.cfg.Leases {
		return nil, false, false
	}
	s := r.shardFor(key)
	now := r.nowMicros()
	s.mu.Lock()
	l, exists := s.leases[key]
	var ref int64
	live := false
	if exists {
		ref = l.ref
		live = l.haveValue && r.leaseLive(l.startMicros, now)
	}
	s.mu.Unlock()
	if !live {
		return nil, false, false
	}
	sp := r.tracer().Start("music.get.lease")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	start := r.now()
	// Begin before the guard so the recorded interval covers it: the op
	// claims critical-read freshness and is checked like one.
	hc := r.cfg.History.Begin(r.site, history.KindGet, key, ref).Note(history.NoteLease)
	if _, err := r.guardCritical(key, ref); err != nil {
		// The guard revoked or refused (released, preempted, fenced, T
		// overrun): drop the record — the fallback read records its own op.
		sp.EndErr(err)
		r.leaseCount("miss")
		return nil, false, false
	}
	// Re-snapshot under the lock: the guard's peek yields, and a racing
	// release may have revoked the lease (or a section write moved its value).
	s.mu.Lock()
	if l2, ok2 := s.leases[key]; ok2 && l2.ref == ref && l2.haveValue {
		value, present, served = l2.value, l2.present, true
	}
	s.mu.Unlock()
	if !served {
		sp.End()
		r.leaseCount("miss")
		return nil, false, false
	}
	hc.Value(value, present).End(nil)
	sp.End()
	r.observe(OpLeaseGet, start)
	r.leaseCount("serve")
	return value, present, true
}

func (r *Replica) leaseCount(outcome string) {
	if o := r.ds0().Cluster().Net().Obs(); o != nil {
		o.Metrics().Counter("music_lease_reads_total", obs.Labels{"site": r.site, "outcome": outcome}).Inc()
	}
}

// RepairRead re-reads key at quorum through the shard's coordinator — the
// adaptive monitor's repair hook. The quorum read drives the store's
// digest-mismatch full-read reconciliation, re-converging whatever lagging
// replica served the stale weak read.
func (r *Replica) RepairRead(key string) error {
	_, err := r.shardFor(key).ds.GetCols(DataTable, key, []string{colValue}, store.Quorum)
	return err
}

// staleSwap is the MutationStaleReads injection: remember the row just read
// and serve the previous remembered row instead, making every weak read
// one write behind — deterministic staleness for monitor tests and the
// readpath bench.
func (r *Replica) staleSwap(key string, row store.Row) store.Row {
	s := r.shardFor(key)
	s.mu.Lock()
	prev, had := s.stale[key]
	s.stale[key] = row
	s.mu.Unlock()
	if had {
		return prev
	}
	return row
}
