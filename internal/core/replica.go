package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/lockstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// DataTable is the data-store table holding client key-value pairs.
const DataTable = "music_data"

// Data-table columns: the client value and the per-key synchFlag ("dirty
// bit", §IV-B), both carried as timestamped cells like Fig 2.
const (
	colValue = "value"
	colSynch = "synch"
)

// Mode selects how criticalPut updates the data store.
type Mode int

const (
	// ModeQuorum is MUSIC: critical puts are quorum writes (1 round trip).
	ModeQuorum Mode = iota + 1
	// ModeLWT is the paper's MSCP baseline: critical puts go through a
	// Paxos LWT (4 round trips) — identical guarantees, higher cost (§VIII-b).
	ModeLWT
)

// Errors returned by critical operations.
var (
	// ErrNoLongerLockHolder means the lock was released or forcibly
	// preempted; the client must abandon this lockRef (§III-A).
	ErrNoLongerLockHolder = errors.New("music: no longer lock holder")
	// ErrNotLockHolder means the lockRef is not (yet) first in the queue —
	// either another client holds the lock or the local lock-store replica
	// has not caught up. Retryable.
	ErrNotLockHolder = errors.New("music: not the lock holder")
	// ErrExpired means the critical section exceeded its T bound; the
	// replica force-releases the lock (§VI).
	ErrExpired = errors.New("music: critical section exceeded T")
	// ErrUnavailable mirrors store.ErrUnavailable: too few back-end
	// replicas responded; the client should retry, possibly at another
	// MUSIC replica (§III-A "Failure Semantics").
	ErrUnavailable = store.ErrUnavailable
	// ErrEpochFenced means a membership epoch change moved the key's
	// placement mid-section (or a failover site asked to adopt a grant for
	// a key the new epoch no longer places there). The section cannot
	// safely continue: its earlier quorum writes went to the old replica
	// set, so a quorum assembled under the new one might miss them. The
	// fencing replica force-releases the lock — marking the synchFlag, so
	// the next grant re-stamps the surviving value under the new placement
	// — and the client must run a new critical section. Terminal for the
	// lockRef, retryable at section granularity.
	ErrEpochFenced = errors.New("music: fenced by membership epoch change")
)

// Op identifies a MUSIC operation (or sub-phase) for latency observers —
// the granularity of the paper's Fig 5(b) breakdown.
type Op int

// Operations observed by Config.Observer.
const (
	OpCreateLockRef Op = iota + 1
	OpAcquirePeek      // the local lsPeek ("L" in Fig 5b)
	OpAcquireGrant     // the synchFlag quorum read on grant ("Q")
	OpCriticalPut      // quorum put ("Q") or LWT put ("P") depending on mode
	OpCriticalGet
	OpReleaseLock
	OpForcedRelease
	OpEventualPut
	OpEventualGet
	OpLeaseGet // a plain Get served locally from the site's holder lease
)

// String names the operation for reports.
func (o Op) String() string {
	switch o {
	case OpCreateLockRef:
		return "createLockRef"
	case OpAcquirePeek:
		return "acquireLock:peek"
	case OpAcquireGrant:
		return "acquireLock:grant"
	case OpCriticalPut:
		return "criticalPut"
	case OpCriticalGet:
		return "criticalGet"
	case OpReleaseLock:
		return "releaseLock"
	case OpForcedRelease:
		return "forcedRelease"
	case OpEventualPut:
		return "put"
	case OpEventualGet:
		return "get"
	case OpLeaseGet:
		return "leaseGet"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Config parameterizes a MUSIC replica.
type Config struct {
	// T bounds the duration of one critical section (§VI): critical
	// operations past T are rejected and the lock is force-released.
	// Defaults to 1 minute.
	T time.Duration
	// OrphanTimeout bounds how long an ungranted lockRef may sit at the
	// head of a queue before MUSIC replicas presume its client died after
	// createLockRef and reap it (§IV-B a). Defaults to T.
	OrphanTimeout time.Duration
	// Mode selects quorum (MUSIC) or LWT (MSCP) critical puts.
	// Defaults to ModeQuorum.
	Mode Mode
	// Observer, when set, receives the latency of every completed
	// operation (bench instrumentation for Fig 5b).
	Observer func(op Op, d time.Duration)

	// Ablations (benchmarking only — they disable MUSIC's optimizations
	// while preserving correctness):
	//
	// AlwaysSynchronize makes every grant run the full data-store
	// synchronization instead of consulting the synchFlag "dirty bit"
	// (§IV-B), costing one extra quorum read and two quorum writes per
	// critical section.
	AlwaysSynchronize bool
	// QuorumPeek makes lock-queue peeks quorum reads instead of local
	// eventual reads, turning every acquireLock poll and critical-op guard
	// into a WAN round trip (§III-A motivates the local peek).
	QuorumPeek bool

	// Leases turns on site-scoped holder leases (see lease.go): a certified
	// grant issues this replica's site a clock-skew-bounded lease on the
	// key, and any client routed to the site serves Get locally for the
	// lease window. Grant recording switches from an async plain write to a
	// synchronous LWT so grants and orphan reaps serialize.
	Leases bool
	// LeaseTTL is the nominal lease window, clamped to T − 2·LeaseSkew.
	// Defaults to 2s.
	LeaseTTL time.Duration
	// LeaseSkew bounds the assumed inter-site clock skew the lease window
	// must absorb. Defaults to 250ms.
	LeaseSkew time.Duration

	// AdaptiveReads serves critical gets at ONE consistency while the
	// attached Monitor judges the site safe (per Nguyen/Charapko/Kulkarni/
	// Demirbas): the monitor watches the recorded op stream for staleness
	// and flips the site back to QUORUM when violations trip its threshold.
	// Requires History and Monitor.
	AdaptiveReads bool
	// Monitor is the online consistency monitor adaptive reads consult; it
	// must be attached to the same History recorder.
	Monitor *history.Monitor

	// Shards partitions the replica's lock/data plane by
	// store.ShardOf(key, Shards): each shard owns its own lockstore
	// service, grant/seen/behind maps, and mutex, so operations on keys in
	// different shards never serialize on shared replica state. Defaults
	// to 1 (the unsharded plane). NewReplicaSharded overrides it with the
	// number of per-shard store clients it is given.
	Shards int

	// History, when set, records every MUSIC operation (grants, releases,
	// critical reads/writes, synchronizations, preemptions) with
	// invocation/response times and v2s stamps for the ECF checker
	// (internal/history). Nil disables recording at zero cost.
	History *history.Recorder
	// Mutation injects a protocol bug for checker validation (test flag
	// only). MutationNone for the correct protocol.
	Mutation Mutation
}

// Mutation selects a deliberately broken protocol variant, used to prove
// that the internal/history ECF checker detects real violations. Never set
// outside tests.
type Mutation int

const (
	// MutationNone runs the correct protocol.
	MutationNone Mutation = iota
	// MutationSkipSynchronize makes grants ignore a set synchFlag: after a
	// forced release the new holder proceeds without re-stamping the
	// surviving value, so a preempted holder's straggler write can win the
	// quorum merge inside the next critical section — the signature ECF
	// violation.
	MutationSkipSynchronize
	// MutationFrozenElapsed stamps every critical write at elapsed 0, as if
	// the section clock never advanced: a section's writes collide on one
	// v2s stamp and last-writer-wins order becomes value-dependent.
	MutationFrozenElapsed
	// MutationStaleReads serves every adaptive weak read one write behind
	// (the previously observed row instead of the current one) —
	// deterministic injected staleness proving the consistency monitor
	// detects violations and flips the site to QUORUM.
	MutationStaleReads
)

// String names the mutation for explorer repro headers.
func (m Mutation) String() string {
	switch m {
	case MutationNone:
		return "none"
	case MutationSkipSynchronize:
		return "skipSynchronize"
	case MutationFrozenElapsed:
		return "frozenElapsed"
	case MutationStaleReads:
		return "staleReads"
	default:
		return fmt.Sprintf("mutation(%d)", int(m))
	}
}

func (c Config) withDefaults() Config {
	if c.T == 0 {
		c.T = time.Minute
	}
	if c.Mode == 0 {
		c.Mode = ModeQuorum
	}
	if c.OrphanTimeout == 0 {
		c.OrphanTimeout = c.T
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.LeaseSkew == 0 {
		c.LeaseSkew = 250 * time.Millisecond
	}
	return c
}

// Replica is one MUSIC replica (Fig 1): clients send it operations, and it
// drives the back-end lock and data stores. A replica is colocated with a
// store coordinator node; its CPU work and message origins are that node's.
//
// The plane is partitioned across Config.Shards planeShards by
// store.ShardOf(key): each shard carries its own store client (its own
// coordinator node in a sharded deployment), lockstore service, and
// grant-tracking maps under a private mutex, so shard A's mutex is never
// contended by shard B's keys. With one shard — the default — shardFor
// short-circuits without hashing, so unsharded replicas pay nothing.
type Replica struct {
	cfg    Config
	node   simnet.NodeID
	site   string
	shards []*planeShard
}

// planeShard is one shard's slice of the MUSIC plane.
type planeShard struct {
	ds *store.Client
	ls *lockstore.Service

	mu     sync.Mutex
	grants map[string]grant       // key → local record of our granted head
	seen   map[string]headAge     // key → when we first saw the current head
	behind map[string]int64       // key/ref → when the local queue first hid it
	leases map[string]*leaseState // key → live site lease (lease mode only)
	stale  map[string]store.Row   // MutationStaleReads: last row served per key
}

type grant struct {
	ref         int64
	startMicros int64
	// epoch and replicas snapshot the key's placement when the grant was
	// recorded locally. guardCritical's epoch fence compares them against
	// the live placement: while the replica set is unchanged the section
	// proceeds (and silently adopts the new epoch); once membership moves
	// the key, the section is preempted (see ErrEpochFenced).
	epoch    int64
	replicas []simnet.NodeID
}

type headAge struct {
	ref         int64
	sinceMicros int64
}

// NewReplica builds a MUSIC replica issuing store operations through st
// (which fixes both the coordinator node and the site). Config.Shards > 1
// partitions the replica's lock-plane state while every shard keeps
// coordinating through st; use NewReplicaSharded to give each shard its
// own coordinator node.
func NewReplica(st *store.Client, cfg Config) *Replica {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	clients := make([]*store.Client, n)
	for i := range clients {
		clients[i] = st
	}
	return NewReplicaSharded(clients, cfg)
}

// NewReplicaSharded builds a MUSIC replica whose plane is partitioned
// across len(clients) shards: shard i issues its store operations through
// clients[i], so each shard can coordinate through its own node (its own
// simnet executor, its own TCP process). All clients must belong to the
// same site. Key routing is store.ShardOf(key, len(clients)) — a pure
// function of the key — so every site agrees on which shard owns a key.
func NewReplicaSharded(clients []*store.Client, cfg Config) *Replica {
	if len(clients) == 0 {
		panic("core: NewReplicaSharded needs at least one store client")
	}
	cfg.Shards = len(clients)
	r := &Replica{
		cfg:    cfg.withDefaults(),
		node:   clients[0].Node(),
		site:   clients[0].Cluster().Net().SiteOf(clients[0].Node()),
		shards: make([]*planeShard, len(clients)),
	}
	for i, cl := range clients {
		r.shards[i] = &planeShard{
			ds:     cl,
			ls:     lockstore.New(cl),
			grants: make(map[string]grant),
			seen:   make(map[string]headAge),
			behind: make(map[string]int64),
			leases: make(map[string]*leaseState),
			stale:  make(map[string]store.Row),
		}
	}
	return r
}

// shardFor routes key to its owning plane shard. The single-shard fast
// path skips hashing entirely.
func (r *Replica) shardFor(key string) *planeShard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.shards[store.ShardOf(key, len(r.shards))]
}

// ds0 is shard 0's store client — the replica's home coordinator, used for
// shard-independent work (clock, tracing, metrics, whole-table scans).
func (r *Replica) ds0() *store.Client { return r.shards[0].ds }

// Shards returns the number of plane shards (≥ 1).
func (r *Replica) Shards() int { return len(r.shards) }

// Node returns the store node this replica coordinates through.
func (r *Replica) Node() simnet.NodeID { return r.node }

// T returns the configured critical-section bound.
func (r *Replica) T() time.Duration { return r.cfg.T }

// Mode returns the critical-put mode.
func (r *Replica) Mode() Mode { return r.cfg.Mode }

func (r *Replica) nowMicros() int64 { return r.ds0().Cluster().NowMicros() }

func (r *Replica) observe(op Op, start time.Duration) {
	now := r.ds0().Cluster().Net().Runtime().Now()
	if r.cfg.Observer != nil {
		r.cfg.Observer(op, now-start)
	}
	if o := r.ds0().Cluster().Net().Obs(); o != nil {
		o.Metrics().Histogram("music_op_latency", obs.Labels{"op": op.String(), "site": r.site}).
			Observe(now - start)
	}
}

// tracer returns the shared tracer (nil when observability is disabled).
func (r *Replica) tracer() *obs.Tracer { return r.ds0().Cluster().Net().Tracer() }

// CreateLockRef enqueues and returns a new per-key unique increasing lock
// reference, good for one critical section. Cost: one consensus write (an
// LWT batching the guard increment with the enqueue, §VI).
func (r *Replica) CreateLockRef(key string) (int64, error) {
	sp := r.tracer().Start("music.createLockRef")
	sp.Annotate("key", key)
	if c := r.shardFor(key).ds.Cluster(); c.Dynamic() && !c.MemberSite(r.site) {
		err := fmt.Errorf("createLockRef %s at %s (epoch %d): site not in membership: %w",
			key, r.site, c.Epoch(), ErrEpochFenced)
		sp.EndErr(err)
		return 0, err
	}
	start := r.now()
	ref, err := r.shardFor(key).ls.GenerateAndEnqueue(key)
	sp.EndErr(err)
	if err != nil {
		return 0, fmt.Errorf("createLockRef %s: %w", key, err)
	}
	r.observe(OpCreateLockRef, start)
	return ref, nil
}

// ValueSeed is the key's data-row value piggybacked on the granting
// synchFlag quorum read: the grant round trip already consults the data row
// at quorum, so fetching colValue alongside colSynch seeds the new holder's
// first read for free. Valid means this acquire call performed that quorum
// read (it is false on idempotent re-acquires and on failover grant
// adoption, where no read happens); Present distinguishes "key has no
// value" from "no seed".
type ValueSeed struct {
	Valid   bool
	Present bool
	Value   []byte
}

// AcquireLock reports whether lockRef now holds the key's lock. False with
// a nil error means "not yet" — poll again (Listing 1). On the granting
// call the replica checks the synchFlag with a quorum read and, if a
// preemption left the data store unsynchronized, synchronizes it before
// admitting the new lockholder (§IV-B). Cost: a local peek while waiting;
// one synchFlag quorum read on grant; plus the synchronization writes only
// after a forced release.
func (r *Replica) AcquireLock(key string, ref int64) (bool, error) {
	acquired, _, err := r.AcquireLockSeeded(key, ref)
	return acquired, err
}

// AcquireLockSeeded is AcquireLock returning the value piggybacked on the
// grant-time quorum read (the critical-section fast path's cache seed).
func (r *Replica) AcquireLockSeeded(key string, ref int64) (acquired bool, seed ValueSeed, err error) {
	sp := r.tracer().Start("music.acquireLock")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	// "Not yet" polls are dropped (no End); grants and errors are history.
	hc := r.cfg.History.Begin(r.site, history.KindAcquire, key, ref)
	defer func() {
		if err != nil || acquired {
			if seed.Valid {
				hc.Value(seed.Value, seed.Present)
			}
			if acquired {
				// The grant's certification epoch is the one current now —
				// a contended acquire may have queued across an epoch change.
				hc.EpochNow()
			}
			hc.End(err)
		}
	}()

	// Under dynamic membership, a site outside the current epoch — retired,
	// or a spare that has not joined yet — must not issue or adopt grants:
	// its sections would be invisible to the membership the rest of the
	// cluster reconfigures around. Clients see ErrEpochFenced and fail over
	// to a member site.
	if c := r.shardFor(key).ds.Cluster(); c.Dynamic() && !c.MemberSite(r.site) {
		return false, ValueSeed{}, fmt.Errorf("acquire %s/%d at %s (epoch %d): site not in membership: %w",
			key, ref, r.site, c.Epoch(), ErrEpochFenced)
	}

	peekSp := r.tracer().Child("music.acquireLock.peek")
	peekStart := r.now()
	head, ok, err := r.peek(key)
	peekSp.EndErr(err)
	r.observe(OpAcquirePeek, peekStart)
	if err != nil {
		return false, ValueSeed{}, err
	}
	if !ok || ref > head.Ref {
		// lockRef not visible at the local replica: usually it just lags the
		// consensus enqueue, but a forcibly released ref with no contender
		// queued behind it looks exactly the same forever. Give the local
		// store OrphanTimeout to converge, then settle against the quorum
		// queue so a preempted waiter cannot poll a dead ref indefinitely.
		sp.Annotate("outcome", "not yet head")
		if ok {
			r.reapExpiredHead(key, head)
		}
		if dead, derr := r.settleBehindRef(key, ref); derr != nil {
			return false, ValueSeed{}, derr
		} else if dead {
			sp.Annotate("outcome", "dead ref")
			return false, ValueSeed{}, ErrNoLongerLockHolder
		}
		return false, ValueSeed{}, nil
	}
	r.clearBehind(key, ref)
	if ref < head.Ref {
		return false, ValueSeed{}, ErrNoLongerLockHolder // lock forcibly released
	}

	// ref is first in the queue. Idempotent re-acquire after a grant.
	s := r.shardFor(key)
	s.mu.Lock()
	g, granted := s.grants[key]
	s.mu.Unlock()
	if granted && g.ref == ref {
		hc.Note("reacquire")
		return true, ValueSeed{}, nil
	}
	if head.StartTime > 0 {
		if r.cfg.Leases && head.GrantTag == r.siteTag() {
			// Our own site's grant whose SetGrantLWT ack was lost: re-own it
			// with the recorded instant — no lease wait, the window is
			// measured on this site's own clock. No seed survives the lost
			// call, so the lease serves nothing until a section write.
			r.rememberGrant(key, ref, head.StartTime)
			r.installLease(key, ref, head.StartTime, ValueSeed{})
			sp.Annotate("outcome", "reowned grant")
			hc.Note("adopted")
			return true, ValueSeed{}, nil
		}
		// Another replica already granted this ref — the §III-A failover
		// case, where the client re-drives its acquire at this site. Adopt
		// the replicated grant time instead of re-granting: the original T
		// window keeps counting, and the section's elapsed-time timestamps
		// stay monotonic across sites, so a straggler write accepted before
		// the failover can never outrank writes issued after it.
		if err := r.adoptGrant(key, ref, head.StartTime, head.GrantEpoch); err != nil {
			return false, ValueSeed{}, err
		}
		sp.Annotate("outcome", "adopted grant")
		hc.Note("adopted")
		return true, ValueSeed{}, nil
	}

	grantSp := r.tracer().Child("music.acquireLock.grant")
	grantStart := r.now()
	needSync := r.cfg.AlwaysSynchronize
	if !needSync {
		sfRow, err := s.ds.GetCols(DataTable, key, []string{colSynch, colValue}, store.Quorum)
		if err != nil {
			grantSp.EndErr(err)
			return false, ValueSeed{}, fmt.Errorf("acquireLock %s: synchFlag: %w", key, err)
		}
		needSync = synchTrue(sfRow)
		if !needSync {
			seed = ValueSeed{Valid: true}
			if c, ok := sfRow[colValue]; ok {
				seed.Present, seed.Value = true, c.Value
			}
		}
	}
	if needSync && r.cfg.Mutation == MutationSkipSynchronize {
		// Injected bug under test: treat a set synchFlag as clean and skip
		// the data-store synchronization entirely.
		needSync = false
	}
	grantSp.Annotatef("synchronize", "%t", needSync)
	hc.Note("granted").Synchronized(needSync)
	if needSync {
		val, present, syncErr := r.synchronize(key, ref)
		if syncErr != nil {
			grantSp.EndErr(syncErr)
			return false, ValueSeed{}, fmt.Errorf("acquireLock %s: %w", key, syncErr)
		}
		// The rewritten value is, by construction, what a quorum read would
		// now return — seed from it.
		seed = ValueSeed{Valid: true, Present: present, Value: val}
	}
	grantSp.End()
	r.observe(OpAcquireGrant, grantStart)

	now := r.nowMicros()
	if r.cfg.Leases {
		// In lease mode the grant issues the site a lease, so the grant cell
		// must be recorded *synchronously and exclusively* before the holder
		// is admitted: an LWT conditioned on the queue bytes and on no
		// existing cell, serializing against competing granters and against
		// DequeueIfUngranted's orphan reap through the same Paxos row.
		epoch, _ := r.placeStamp(key)
		applied, curStart, curEpoch, gerr := s.ls.SetGrantLWT(key, ref, now, epoch, r.siteTag())
		if gerr != nil {
			return false, ValueSeed{}, fmt.Errorf("acquireLock %s: grant: %w", key, gerr)
		}
		if !applied {
			if curStart > 0 {
				// Another site recorded the grant first (concurrent failover
				// drive): adopt it. The adoption gate waits out that site's
				// lease window before admitting us.
				if aerr := r.adoptGrant(key, ref, curStart, curEpoch); aerr != nil {
					return false, ValueSeed{}, aerr
				}
				sp.Annotate("outcome", "adopted grant")
				hc.Note("adopted")
				return true, ValueSeed{}, nil
			}
			// The ref was reaped from the queue while we were granting.
			return false, ValueSeed{}, fmt.Errorf("%w: %s/%d reaped during grant", ErrNoLongerLockHolder, key, ref)
		}
		// applied: curStart/curEpoch are the authoritative cell contents —
		// this call's instant, or an earlier lost-ack call's that SetGrantLWT
		// recognized by tag. The lease window runs from the recorded instant.
		r.rememberGrant(key, ref, curStart)
		r.installLease(key, ref, curStart, seed)
		return true, seed, nil
	}
	r.rememberGrant(key, ref, now)
	// Record the grant time in the lock store so other MUSIC replicas can
	// detect expiry and serve failover clients. Off the critical path, but
	// not fire-and-forget: without the grant cell, failover replicas
	// misclassify a granted-but-crashed holder as an orphan and stall for
	// OrphanTimeout instead of T, so transient failures are retried.
	rt := r.ds0().Cluster().Net().Runtime()
	rt.Go(func() { r.setGrantRetried(key, ref, now) })
	return true, seed, nil
}

// setGrantRetried drives the replicated grant-cell write with bounded
// exponential backoff. It stops early when the grant has already been
// released or preempted (the cell no longer matters) and counts permanent
// failures as music_setgrant_abandoned_total.
func (r *Replica) setGrantRetried(key string, ref, startMicros int64) {
	rt := r.ds0().Cluster().Net().Runtime()
	s := r.shardFor(key)
	// The cell carries the epoch recorded at grant time (not the epoch at
	// write time — the async retry may straddle a reconfiguration, and the
	// cell must describe the placement the grant was actually issued under).
	s.mu.Lock()
	g, ok := s.grants[key]
	s.mu.Unlock()
	epoch := int64(0)
	if ok && g.ref == ref {
		epoch = g.epoch
	}
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			rt.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			s.mu.Lock()
			g, ok := s.grants[key]
			s.mu.Unlock()
			if !ok || g.ref != ref {
				return
			}
		}
		if err := s.ls.SetGrant(key, ref, startMicros, epoch); err == nil {
			return
		}
	}
	if o := r.ds0().Cluster().Net().Obs(); o != nil {
		o.Metrics().Counter("music_setgrant_abandoned_total", obs.Labels{"site": r.site}).Inc()
	}
}

// synchronize restores the "data store defined as the true value" invariant
// after a forced release: a quorum read followed by re-writing the result
// (or a tombstone if nothing was ever written) with the new lockholder's
// timestamp, then resetting the synchFlag (§IV-B). Whatever a preempted
// lockholder's straggling write contained, it can no longer win. The
// re-written value (and whether one exists) is returned so the grant can
// seed the new holder's cache from it.
func (r *Replica) synchronize(key string, ref int64) (value []byte, present bool, err error) {
	sp := r.tracer().Child("music.synchronize")
	defer func() { sp.EndErr(err) }()
	hc := r.cfg.History.Begin(r.site, history.KindSync, key, ref).TS(v2s(ref, 0, r.cfg.T))
	defer func() { hc.Value(value, present).End(err) }()
	s := r.shardFor(key)
	row, err := s.ds.GetCols(DataTable, key, []string{colValue}, store.Quorum)
	if err != nil {
		return nil, false, fmt.Errorf("synchronize read: %w", err)
	}
	valueCell := store.Cell{TS: v2s(ref, 0, r.cfg.T), Deleted: true}
	if c, ok := row[colValue]; ok {
		valueCell = store.Cell{Value: c.Value, TS: v2s(ref, 0, r.cfg.T)}
		value, present = c.Value, true
	}
	if err := s.ds.Put(DataTable, key, store.Row{colValue: valueCell}, store.Quorum); err != nil {
		return nil, false, fmt.Errorf("synchronize rewrite: %w", err)
	}
	reset := store.Row{colSynch: store.Cell{Value: synchFalse, TS: v2s(ref, time.Microsecond, r.cfg.T)}}
	if err := s.ds.Put(DataTable, key, reset, store.Quorum); err != nil {
		return nil, false, fmt.Errorf("synchronize reset: %w", err)
	}
	return value, present, nil
}

// CriticalPut writes the latest value of key for the current lockholder.
// Cost: one quorum write of the value (MUSIC) or one LWT (MSCP).
func (r *Replica) CriticalPut(key string, ref int64, value []byte) (err error) {
	sp := r.tracer().Start("music.criticalPut")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	hc := r.cfg.History.Begin(r.site, history.KindPut, key, ref).Value(value, true)
	defer func() { hc.End(err) }()
	start := r.now()
	elapsed, err := r.guardCritical(key, ref)
	if err != nil {
		return err
	}
	cell := store.Cell{Value: value, TS: v2s(ref, elapsed, r.cfg.T)}
	hc.TS(cell.TS)
	r.leaseUpdate(key, ref, value, true)
	s := r.shardFor(key)
	if r.cfg.Mode == ModeLWT {
		res, casErr := s.ds.CAS(DataTable, key, nil, store.Row{colValue: cell})
		if casErr != nil {
			return fmt.Errorf("criticalPut %s: %w", key, casErr)
		}
		if !res.Applied {
			return fmt.Errorf("criticalPut %s: lwt not applied", key)
		}
	} else {
		if putErr := s.ds.Put(DataTable, key, store.Row{colValue: cell}, store.Quorum); putErr != nil {
			return fmt.Errorf("criticalPut %s: %w", key, putErr)
		}
	}
	r.observe(OpCriticalPut, start)
	return nil
}

// CriticalDelete removes the key's value for the current lockholder (the
// delete counterpart the paper mentions in footnote 3).
func (r *Replica) CriticalDelete(key string, ref int64) (err error) {
	sp := r.tracer().Start("music.criticalDelete")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	hc := r.cfg.History.Begin(r.site, history.KindDelete, key, ref)
	defer func() { hc.End(err) }()
	elapsed, err := r.guardCritical(key, ref)
	if err != nil {
		return err
	}
	cell := store.Cell{TS: v2s(ref, elapsed, r.cfg.T), Deleted: true}
	hc.TS(cell.TS)
	r.leaseUpdate(key, ref, nil, false)
	if err := r.shardFor(key).ds.Put(DataTable, key, store.Row{colValue: cell}, store.Quorum); err != nil {
		return fmt.Errorf("criticalDelete %s: %w", key, err)
	}
	return nil
}

// CriticalGet reads the latest (true) value of key for the current
// lockholder. A nil value with nil error means the key has no value.
// Cost: one quorum read.
func (r *Replica) CriticalGet(key string, ref int64) (value []byte, err error) {
	sp := r.tracer().Start("music.criticalGet")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	hc := r.cfg.History.Begin(r.site, history.KindGet, key, ref)
	defer func() { hc.End(err) }()
	start := r.now()
	if _, err := r.guardCritical(key, ref); err != nil {
		return nil, err
	}
	if v, present, ok := r.leasePeek(key, ref); ok {
		// The site lease covers this section's key: serve locally. The guard
		// above already certified head, grant, epoch, and T.
		hc.Note(history.NoteLease)
		r.observe(OpCriticalGet, start)
		if present {
			hc.Value(v, true)
			return v, nil
		}
		return nil, nil
	}
	cons := store.Quorum
	if r.cfg.AdaptiveReads && r.cfg.Monitor.Weak(r.site) {
		// Adaptive mode: the monitor judges this site safe for weak reads,
		// so the data column is read at ONE (typically the local replica).
		// The op is noted so the monitor — and the offline checker's
		// adaptive rules — judge it as a weak read, not a quorum one.
		cons = store.One
		hc.Note(history.NoteWeak)
	}
	row, err := r.shardFor(key).ds.GetCols(DataTable, key, []string{colValue}, cons)
	if err != nil {
		return nil, fmt.Errorf("criticalGet %s: %w", key, err)
	}
	if cons == store.One && r.cfg.Mutation == MutationStaleReads {
		// Injected bug under test: serve the previously observed row.
		row = r.staleSwap(key, row)
	}
	r.observe(OpCriticalGet, start)
	if c, ok := row[colValue]; ok {
		hc.Value(c.Value, true)
		return c.Value, nil
	}
	return nil, nil
}

// CriticalCheck verifies that ref still holds key's lock within its T
// bound — the §IV-A Exclusivity guard alone, with no data-store round trip.
// The music session layer runs it before serving a Get from its holder
// cache, so a cached read is gated by exactly the same local peek as a
// quorum-backed critical op. Like any guard, an overrun section is
// self-preempted (ErrExpired).
func (r *Replica) CriticalCheck(key string, ref int64) error {
	_, err := r.guardCritical(key, ref)
	return err
}

// CriticalPutAsync is CriticalPut with the quorum write issued
// asynchronously: the guard runs and the write is stamped (fixing its v2s
// order) before returning, but replica acks are awaited through the handle.
// Backs the music layer's Pipelined write policy. In LWT mode the CAS round
// cannot be pipelined, so the write completes synchronously and the handle
// is returned already settled.
func (r *Replica) CriticalPutAsync(key string, ref int64, value []byte) (*store.PendingPut, error) {
	return r.criticalWriteAsync(key, ref, value, false)
}

// CriticalDeleteAsync is the tombstone counterpart of CriticalPutAsync.
func (r *Replica) CriticalDeleteAsync(key string, ref int64) (*store.PendingPut, error) {
	return r.criticalWriteAsync(key, ref, nil, true)
}

func (r *Replica) criticalWriteAsync(key string, ref int64, value []byte, deleted bool) (p *store.PendingPut, err error) {
	sp := r.tracer().Start("music.criticalPut.async")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	elapsed, err := r.guardCritical(key, ref)
	if err != nil {
		kind := history.KindPut
		if deleted {
			kind = history.KindDelete
		}
		r.cfg.History.Begin(r.site, kind, key, ref).Value(value, !deleted).End(err)
		return nil, err
	}
	if r.cfg.Mode == ModeLWT {
		// The synchronous delegate records its own history op.
		if deleted {
			return store.ResolvedPut(r.CriticalDelete(key, ref)), nil
		}
		return store.ResolvedPut(r.CriticalPut(key, ref, value)), nil
	}
	cell := store.Cell{Value: value, TS: v2s(ref, elapsed, r.cfg.T), Deleted: deleted}
	kind := history.KindPut
	if deleted {
		kind = history.KindDelete
	}
	hc := r.cfg.History.Begin(r.site, kind, key, ref).Value(value, !deleted).TS(cell.TS)
	r.leaseUpdate(key, ref, value, !deleted)
	pending := r.shardFor(key).ds.PutAsync(DataTable, key, store.Row{colValue: cell}, store.Quorum)
	if hc != nil {
		// Close the record at quorum-ack time: the op's response interval is
		// issue → settle, which is what the checker's overlap rules need.
		r.ds0().Cluster().Net().Runtime().Go(func() { hc.End(pending.Wait()) })
	}
	return pending, nil
}

// guardCritical enforces the Exclusivity guards of §IV-A: the lockRef must
// be first in the (locally peeked) queue, granted, and within its T bound.
// It returns the elapsed time within the critical section for v2s.
func (r *Replica) guardCritical(key string, ref int64) (time.Duration, error) {
	head, ok, err := r.peek(key)
	if err != nil {
		return 0, err
	}
	if !ok || ref > head.Ref {
		return 0, fmt.Errorf("%w: %s/%d", ErrNotLockHolder, key, ref)
	}
	if ref < head.Ref {
		return 0, fmt.Errorf("%w: %s/%d", ErrNoLongerLockHolder, key, ref)
	}

	start, err := r.grantTime(key, ref, head)
	if err != nil {
		return 0, err
	}
	if err := r.epochFence(key, ref); err != nil {
		return 0, err
	}
	elapsed := time.Duration(r.nowMicros()-start) * time.Microsecond
	if elapsed >= r.cfg.T {
		// The critical section overran its bound: preempt ourselves so the
		// next client can synchronize and proceed (§VI).
		_ = r.ForcedRelease(key, ref)
		return 0, fmt.Errorf("%w: %s/%d elapsed %v", ErrExpired, key, ref, elapsed)
	}
	if r.cfg.Mutation == MutationFrozenElapsed {
		// Injected bug under test: the section clock never advances, so
		// every write of the section stamps at v2s(ref, 0).
		elapsed = 0
	}
	return elapsed, nil
}

// peek reads the head of the key's lock queue: a local eventual read in
// standard MUSIC, or a quorum read under the QuorumPeek ablation.
func (r *Replica) peek(key string) (lockstore.Entry, bool, error) {
	s := r.shardFor(key)
	if !r.cfg.QuorumPeek {
		return s.ls.Peek(key)
	}
	queue, err := s.ls.Queue(key)
	if err != nil || len(queue) == 0 {
		return lockstore.Entry{}, false, err
	}
	return queue[0], true, nil
}

// grantTime finds when ref was granted: from this replica's local record,
// from the (replicated) grant cell, or — for failover to a replica that has
// seen neither — from a quorum read of the lock row.
func (r *Replica) grantTime(key string, ref int64, head lockstore.Entry) (int64, error) {
	s := r.shardFor(key)
	s.mu.Lock()
	g, ok := s.grants[key]
	s.mu.Unlock()
	if ok && g.ref == ref {
		return g.startMicros, nil
	}
	if head.StartTime > 0 {
		if err := r.adoptGrant(key, ref, head.StartTime, head.GrantEpoch); err != nil {
			return 0, err
		}
		return head.StartTime, nil
	}
	queue, err := s.ls.Queue(key)
	if err != nil {
		return 0, err
	}
	for _, e := range queue {
		if e.Ref == ref && e.StartTime > 0 {
			if err := r.adoptGrant(key, ref, e.StartTime, e.GrantEpoch); err != nil {
				return 0, err
			}
			return e.StartTime, nil
		}
	}
	return 0, fmt.Errorf("%w: %s/%d not granted", ErrNotLockHolder, key, ref)
}

// adoptGrant validates taking over a grant another replica issued (the
// failover path) before recording it locally. Under dynamic membership the
// adopted section keeps its ECF guarantee only if (a) the current epoch
// places the key at this site and (b) the key's replica set is unchanged
// since the epoch the grant was issued under — otherwise its earlier
// quorum writes may not intersect quorums assembled here. Grants whose
// epoch is unknown (cell written before the epoch extension, or older than
// the store's bounded ring history) are refused conservatively.
func (r *Replica) adoptGrant(key string, ref, startMicros, grantEpoch int64) error {
	if r.cfg.Leases {
		// The granting site's lease may still be serving reads of this key;
		// admitting a writer here before that window provably closed would
		// let those local reads miss our writes. Refuse retryably until
		// effTTL + skew past the grant instant.
		if now := r.nowMicros(); now < r.leaseWaitMicros(startMicros) {
			return fmt.Errorf("%w: %s/%d granting site's lease window still open", ErrNotLockHolder, key, ref)
		}
	}
	c := r.shardFor(key).ds.Cluster()
	if c.Dynamic() {
		if !c.SitePlaced(key, r.site) {
			return fmt.Errorf("adopt %s/%d at %s (epoch %d): key not placed here: %w",
				key, ref, r.site, c.Epoch(), ErrEpochFenced)
		}
		if epoch := c.Epoch(); grantEpoch != epoch {
			old, ok := c.ReplicasForAt(key, grantEpoch)
			if !ok || !sameNodes(old, c.ReplicasFor(key)) {
				return fmt.Errorf("adopt %s/%d at %s: granted under epoch %d, placement changed by epoch %d: %w",
					key, ref, r.site, grantEpoch, epoch, ErrEpochFenced)
			}
		}
	}
	r.rememberGrant(key, ref, startMicros)
	return nil
}

func (r *Replica) rememberGrant(key string, ref, startMicros int64) {
	s := r.shardFor(key)
	epoch, replicas := r.placeStamp(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[key] = grant{ref: ref, startMicros: startMicros, epoch: epoch, replicas: replicas}
}

// placeStamp snapshots the key's placement (epoch + replica set) for a
// grant record. On static clusters the replica set is not needed — the
// epoch never changes, so the fence can never fire — and skipping it keeps
// grants allocation-free there.
func (r *Replica) placeStamp(key string) (int64, []simnet.NodeID) {
	c := r.shardFor(key).ds.Cluster()
	if !c.Dynamic() {
		return c.Epoch(), nil
	}
	return c.Epoch(), c.ReplicasFor(key)
}

// epochFence enforces the cross-epoch rule on a granted section: a section
// granted under epoch N may keep operating only while the key's replica
// set is the one it was granted under. A membership change that leaves the
// key in place merely advances the grant's recorded epoch; one that moves
// the key preempts the section with a forced release (marking the
// synchFlag, so the next holder synchronizes under the new placement) and
// fails the operation with ErrEpochFenced.
func (r *Replica) epochFence(key string, ref int64) error {
	s := r.shardFor(key)
	c := s.ds.Cluster()
	epoch := c.Epoch()
	if c.Dynamic() && !c.MemberSite(r.site) {
		// The epoch retired this site outright: every section it still
		// holds is preempted, whether or not the key's replicas moved.
		_ = r.ForcedRelease(key, ref)
		return fmt.Errorf("%w: site %s retired at epoch %d", ErrEpochFenced, r.site, epoch)
	}
	s.mu.Lock()
	g, ok := s.grants[key]
	s.mu.Unlock()
	if !ok || g.ref != ref || g.epoch == epoch {
		return nil
	}
	cur := c.ReplicasFor(key)
	if sameNodes(cur, g.replicas) {
		s.mu.Lock()
		if g2, ok := s.grants[key]; ok && g2.ref == ref {
			g2.epoch, g2.replicas = epoch, cur
			s.grants[key] = g2
		}
		s.mu.Unlock()
		return nil
	}
	_ = r.ForcedRelease(key, ref)
	return fmt.Errorf("%w: %s/%d placement moved at epoch %d (granted under %d)",
		ErrEpochFenced, key, ref, epoch, g.epoch)
}

// sameNodes reports set equality of two small replica lists.
func sameNodes(a, b []simnet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ReleaseLock removes lockRef from the queue, making the lock available.
// Cost: one consensus write (an LWT delete).
func (r *Replica) ReleaseLock(key string, ref int64) (err error) {
	sp := r.tracer().Start("music.releaseLock")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	hc := r.cfg.History.Begin(r.site, history.KindRelease, key, ref)
	defer func() { hc.End(err) }()
	start := r.now()
	s := r.shardFor(key)
	held := r.forgetGrant(key, ref)
	head, ok, err := s.ls.Peek(key)
	if err != nil {
		return err
	}
	if ok && ref < head.Ref {
		return nil // lock was forcibly released already (§IV-A)
	}
	if r.cfg.Leases && !held && ok && head.Ref == ref && head.StartTime > 0 {
		// A release driven at a site that never held the grant locally (a
		// failover client releasing without re-acquiring here): the granting
		// site's lease may still be serving reads, and the dequeue would
		// admit the next writer under it. Wait the lease window out first.
		if wait := r.leaseWaitMicros(head.StartTime) - r.nowMicros(); wait > 0 {
			r.ds0().Cluster().Net().Runtime().Sleep(time.Duration(wait) * time.Microsecond)
		}
	}
	if err := s.ls.Dequeue(key, ref); err != nil {
		return fmt.Errorf("releaseLock %s/%d: %w", key, ref, err)
	}
	r.observe(OpReleaseLock, start)
	return nil
}

// ForcedRelease preempts lockRef, e.g. when its holder is presumed failed
// (§IV-B). It first marks the key's data store as needing synchronization —
// stamping the synchFlag with the δ timestamp so the mark survives a racing
// reset by the same lockRef but yields to the next lockholder's reset — and
// only then dequeues the reference, so the next grant is guaranteed to see
// the flag. Internal to MUSIC in the paper; exposed for ownership-stealing
// services like the Portal (§VII-b).
func (r *Replica) ForcedRelease(key string, ref int64) (err error) {
	sp := r.tracer().Start("music.forcedRelease")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	start := r.now()
	s := r.shardFor(key)
	head, ok, err := s.ls.Peek(key)
	if err != nil {
		return err
	}
	if ok && ref < head.Ref {
		return nil // previously released (not an effective preemption: no history op)
	}
	// Revoke any local grant/lease record before the dequeue: once the ref
	// leaves the queue a successor can be granted, and a still-installed
	// lease must not serve across that boundary.
	r.forgetGrant(key, ref)
	// Effective preemption: record it with the δ stamp the mark carries.
	hc := r.cfg.History.Begin(r.site, history.KindForcedRelease, key, ref).TS(v2sForced(ref, r.cfg.T))
	defer func() { hc.End(err) }()
	mark := store.Row{colSynch: store.Cell{Value: synchTrueVal, TS: v2sForced(ref, r.cfg.T)}}
	if err := s.ds.Put(DataTable, key, mark, store.Quorum); err != nil {
		return fmt.Errorf("forcedRelease %s/%d: synchFlag: %w", key, ref, err)
	}
	if err := s.ls.Dequeue(key, ref); err != nil {
		return fmt.Errorf("forcedRelease %s/%d: %w", key, ref, err)
	}
	r.observe(OpForcedRelease, start)
	return nil
}

// forcedReleaseIfUngranted is the lease-mode orphan reap: the δ mark
// followed by a dequeue conditioned on the grant cell's absence, so it can
// never race a SetGrantLWT that just issued a lease. If the grant won, the
// reap backs off (the mark stays — the next grant synchronizes, which is
// harmless) and the T expiry path handles a truly dead holder. The history
// op is recorded only when the preemption took effect.
func (r *Replica) forcedReleaseIfUngranted(key string, ref int64) (err error) {
	sp := r.tracer().Start("music.forcedRelease.orphan")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	start := r.now()
	s := r.shardFor(key)
	head, ok, err := s.ls.Peek(key)
	if err != nil {
		return err
	}
	if ok && ref < head.Ref {
		return nil
	}
	hc := r.cfg.History.Begin(r.site, history.KindForcedRelease, key, ref).TS(v2sForced(ref, r.cfg.T))
	mark := store.Row{colSynch: store.Cell{Value: synchTrueVal, TS: v2sForced(ref, r.cfg.T)}}
	if err := s.ds.Put(DataTable, key, mark, store.Quorum); err != nil {
		return fmt.Errorf("forcedRelease %s/%d: synchFlag: %w", key, ref, err)
	}
	dequeued, err := s.ls.DequeueIfUngranted(key, ref)
	if err != nil {
		return fmt.Errorf("forcedRelease %s/%d: %w", key, ref, err)
	}
	if !dequeued {
		sp.Annotate("outcome", "granted after all")
		return nil // hc dropped: no effective preemption happened
	}
	hc.End(nil)
	r.forgetGrant(key, ref)
	r.observe(OpForcedRelease, start)
	return nil
}

// forgetGrant drops the local grant record (and revokes the site lease it
// issued). held reports whether this replica actually had the grant.
func (r *Replica) forgetGrant(key string, ref int64) (held bool) {
	s := r.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.grants[key]; ok && g.ref == ref {
		delete(s.grants, key)
		held = true
	}
	if l, ok := s.leases[key]; ok && l.ref == ref {
		delete(s.leases, key)
	}
	return held
}

// reapExpiredHead force-releases a head lockRef whose holder appears failed:
// granted more than T ago, or never granted (orphaned by a client that died
// after createLockRef) for more than OrphanTimeout, which defaults to T
// (§IV-B a).
func (r *Replica) reapExpiredHead(key string, head lockstore.Entry) {
	now := r.nowMicros()
	tMicros := int64(r.cfg.T / time.Microsecond)
	if head.StartTime > 0 {
		if now-head.StartTime > tMicros {
			_ = r.ForcedRelease(key, head.Ref)
		}
		return
	}
	s := r.shardFor(key)
	s.mu.Lock()
	age, ok := s.seen[key]
	if !ok || age.ref != head.Ref {
		s.seen[key] = headAge{ref: head.Ref, sinceMicros: now}
		s.mu.Unlock()
		return
	}
	expired := now-age.sinceMicros > int64(r.cfg.OrphanTimeout/time.Microsecond)
	s.mu.Unlock()
	if expired {
		if r.cfg.Leases {
			// The "orphan" may be a grant racing us through SetGrantLWT; the
			// conditioned dequeue makes reap-vs-grant a Paxos-serialized
			// either/or instead of a lost lease.
			_ = r.forcedReleaseIfUngranted(key, head.Ref)
			return
		}
		_ = r.ForcedRelease(key, head.Ref)
	}
}

// settleBehindRef bounds how long an acquire may keep polling a lockRef the
// local queue does not show. The local store usually converges well within
// OrphanTimeout; past that, the quorum queue is consulted: a ref absent
// there was dequeued — released, or forcibly released with no contender
// queued behind it, a state the local "not yet" answer can never
// distinguish from replication lag — so its waiter must give up rather than
// poll forever. The quorum read fires at most once per OrphanTimeout per
// waiter, keeping the healthy polling path local.
func (r *Replica) settleBehindRef(key string, ref int64) (dead bool, err error) {
	s := r.shardFor(key)
	id := behindID(key, ref)
	now := r.nowMicros()
	s.mu.Lock()
	since, tracked := s.behind[id]
	if !tracked {
		s.behind[id] = now
	}
	s.mu.Unlock()
	if !tracked || time.Duration(now-since)*time.Microsecond < r.cfg.OrphanTimeout {
		return false, nil
	}
	queue, err := s.ls.Queue(key)
	if err != nil {
		return false, err
	}
	for _, e := range queue {
		if e.Ref == ref {
			// Genuinely pending; restart the convergence clock.
			s.mu.Lock()
			s.behind[id] = now
			s.mu.Unlock()
			return false, nil
		}
	}
	r.clearBehind(key, ref)
	return true, nil
}

func (r *Replica) clearBehind(key string, ref int64) {
	s := r.shardFor(key)
	s.mu.Lock()
	delete(s.behind, behindID(key, ref))
	s.mu.Unlock()
}

func behindID(key string, ref int64) string { return fmt.Sprintf("%s/%d", key, ref) }

// Put writes a key without locks at eventual consistency — for keys with no
// ECF expectations (§VI). A value written in any critical section dominates
// plain puts on the same key.
func (r *Replica) Put(key string, value []byte) error {
	sp := r.tracer().Start("music.put")
	sp.Annotate("key", key)
	hc := r.cfg.History.Begin(r.site, history.KindEventualPut, key, 0).Value(value, true)
	start := r.now()
	err := r.shardFor(key).ds.Put(DataTable, key, store.Row{colValue: store.Cell{Value: value}}, store.One)
	sp.EndErr(err)
	hc.End(err)
	if err != nil {
		return fmt.Errorf("put %s: %w", key, err)
	}
	r.observe(OpEventualPut, start)
	return nil
}

// Get reads a key without locks from the nearest replica; the result may be
// stale (§VI). In lease mode a live site lease upgrades the read for free:
// it is served locally from the leased value under the full critical-check
// guard, giving any client routed to this site a critical-grade read at
// local cost for the lease window.
func (r *Replica) Get(key string) ([]byte, error) {
	if v, present, served := r.leaseServe(key); served {
		if !present {
			return nil, nil
		}
		return v, nil
	}
	sp := r.tracer().Start("music.get")
	sp.Annotate("key", key)
	hc := r.cfg.History.Begin(r.site, history.KindEventualGet, key, 0)
	start := r.now()
	row, err := r.shardFor(key).ds.GetCols(DataTable, key, []string{colValue}, store.One)
	sp.EndErr(err)
	if err != nil {
		hc.End(err)
		return nil, fmt.Errorf("get %s: %w", key, err)
	}
	r.observe(OpEventualGet, start)
	if c, ok := row[colValue]; ok {
		hc.Value(c.Value, true).End(nil)
		return c.Value, nil
	}
	hc.End(nil)
	return nil, nil
}

// GetAllKeys lists keys with a live value, eventually consistent (the
// homing workers' job-discovery helper, §VII-a).
func (r *Replica) GetAllKeys() ([]string, error) {
	return r.ds0().AllKeys(DataTable)
}

// Remove retires a key entirely (tombstones that dominate even critical
// writes) — how the homing Client API deletes completed jobs. The key must
// not be reused afterwards.
func (r *Replica) Remove(key string) error {
	cell := store.Cell{TS: int64(1<<63 - 1), Deleted: true}
	if err := r.shardFor(key).ds.Put(DataTable, key, store.Row{colValue: cell}, store.Quorum); err != nil {
		return fmt.Errorf("remove %s: %w", key, err)
	}
	return nil
}

// StartJanitor runs a background sweeper that force-releases expired or
// orphaned head lockRefs across all lock keys every interval. The returned
// stop function cancels the pending timer, so no further sweep (with its
// quorum reads) runs after it returns — in real-time mode a stray sweep
// would outlive Cluster.Close.
func (r *Replica) StartJanitor(interval time.Duration) (stop func()) {
	rt := r.ds0().Cluster().Net().Runtime()
	var mu sync.Mutex
	stopped := false
	var timer *sim.Timer
	var loop func()
	loop = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		if o := r.ds0().Cluster().Net().Obs(); o != nil {
			o.Metrics().Counter("music_janitor_sweeps_total", obs.Labels{"site": r.site}).Inc()
		}
		keys, err := r.ds0().AllKeys(lockstore.Table)
		if err == nil {
			for _, key := range keys {
				// Peek through the key's owning shard so the sweep's reads
				// originate from that shard's coordinator.
				if head, ok, peekErr := r.shardFor(key).ls.Peek(key); peekErr == nil && ok {
					r.reapExpiredHead(key, head)
				}
			}
		}
		mu.Lock()
		if !stopped {
			timer = rt.After(interval, loop)
		}
		mu.Unlock()
	}
	mu.Lock()
	timer = rt.After(interval, loop)
	mu.Unlock()
	return func() {
		mu.Lock()
		stopped = true
		t := timer
		mu.Unlock()
		t.Stop()
	}
}

// now returns the runtime clock (for observers).
func (r *Replica) now() time.Duration { return r.ds0().Cluster().Net().Runtime().Now() }

// synchFlag encoding.
var (
	synchTrueVal = []byte{1}
	synchFalse   = []byte{0}
)

func synchTrue(row store.Row) bool {
	c, ok := row[colSynch]
	return ok && len(c.Value) == 1 && c.Value[0] == 1
}
