package membership

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

func threeSites() Membership {
	return New([]Member{
		{ID: 0, Site: "site-a"}, {ID: 1, Site: "site-a"},
		{ID: 2, Site: "site-b"}, {ID: 3, Site: "site-b"},
		{ID: 4, Site: "site-c"}, {ID: 5, Site: "site-c"},
	})
}

func TestApplyJoinRetireReplace(t *testing.T) {
	m := threeSites()
	if m.Epoch != 1 {
		t.Fatalf("initial epoch = %d, want 1", m.Epoch)
	}

	joined, err := m.Apply(Change{Op: OpJoin, Add: []Member{{ID: 6, Site: "site-d"}, {ID: 7, Site: "site-d"}}})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if joined.Epoch != 2 || !joined.HasSite("site-d") || len(joined.Members) != 8 {
		t.Fatalf("join result: %v", joined)
	}
	if !m.HasSite("site-a") || m.HasSite("site-d") || m.Epoch != 1 {
		t.Fatalf("join mutated the base membership: %v", m)
	}

	retired, err := joined.Apply(Change{Op: OpRetire, Site: "site-b"})
	if err != nil {
		t.Fatalf("retire: %v", err)
	}
	if retired.Epoch != 3 || retired.HasSite("site-b") || len(retired.Members) != 6 {
		t.Fatalf("retire result: %v", retired)
	}

	replaced, err := retired.Apply(Change{Op: OpReplace, Site: "site-c",
		Add: []Member{{ID: 8, Site: "site-e"}, {ID: 9, Site: "site-e"}}})
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if replaced.Epoch != 4 || replaced.HasSite("site-c") || !replaced.HasSite("site-e") {
		t.Fatalf("replace result: %v", replaced)
	}
	// Replacement may reuse the departing site's name (re-homing).
	if _, err := retired.Apply(Change{Op: OpReplace, Site: "site-c",
		Add: []Member{{ID: 8, Site: "site-c"}}}); err != nil {
		t.Fatalf("replace with same name: %v", err)
	}
}

func TestApplyValidation(t *testing.T) {
	m := threeSites()
	cases := []struct {
		name string
		ch   Change
		want error
	}{
		{"join existing site", Change{Op: OpJoin, Add: []Member{{ID: 9, Site: "site-a"}}}, ErrSiteExists},
		{"join empty", Change{Op: OpJoin}, ErrBadChange},
		{"join colliding id", Change{Op: OpJoin, Add: []Member{{ID: 0, Site: "site-d"}}}, ErrBadChange},
		{"join spanning sites", Change{Op: OpJoin, Add: []Member{{ID: 9, Site: "site-d"}, {ID: 10, Site: "site-e"}}}, ErrBadChange},
		{"retire unknown", Change{Op: OpRetire, Site: "nowhere"}, ErrUnknownSite},
		{"replace unknown", Change{Op: OpReplace, Site: "nowhere", Add: []Member{{ID: 9, Site: "site-d"}}}, ErrUnknownSite},
		{"bad op", Change{}, ErrBadChange},
	}
	for _, tc := range cases {
		if _, err := m.Apply(tc.ch); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Retiring down to one site is refused.
	two, err := m.Apply(Change{Op: OpRetire, Site: "site-c"})
	if err != nil {
		t.Fatalf("retire to two sites: %v", err)
	}
	if _, err := two.Apply(Change{Op: OpRetire, Site: "site-b"}); !errors.Is(err, ErrTooFewSites) {
		t.Fatalf("retire to one site: err = %v, want ErrTooFewSites", err)
	}
}

func TestViewMonotoneAndSubscriptions(t *testing.T) {
	v := NewView(threeSites())
	var epochs []int64
	v.Subscribe(func(m Membership) { epochs = append(epochs, m.Epoch) })

	next, _ := v.Current().Apply(Change{Op: OpJoin, Add: []Member{{ID: 6, Site: "site-d"}}})
	if !v.Set(next) {
		t.Fatal("Set(next) did not advance")
	}
	if v.Set(next) {
		t.Fatal("Set with equal epoch advanced")
	}
	if v.Set(threeSites()) {
		t.Fatal("Set with stale epoch advanced")
	}
	if v.Epoch() != 2 || !reflect.DeepEqual(epochs, []int64{2}) {
		t.Fatalf("epoch = %d, notifications = %v", v.Epoch(), epochs)
	}
}

func TestWireRoundTrip(t *testing.T) {
	m := threeSites()
	m.Members[0].Addr = "127.0.0.1:7001"
	for _, v := range []any{
		m,
		Change{Op: OpReplace, Site: "site-b", Add: []Member{{ID: 9, Site: "site-d", Addr: "x:1"}}},
		fetchReq{},
		proposeChangeReq{Change: Change{Op: OpRetire, Site: "site-c"}},
		proposeChangeResp{Membership: m, Err: "boom"},
	} {
		b, err := wire.Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", v, err)
		}
		got, err := wire.Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip %T: got %#v want %#v", v, got, v)
		}
	}
}

// logFixture runs fn on a virtual-time 3-site network (2 nodes per site)
// whose config group is one node per site.
func logFixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, l *Log)) {
	t.Helper()
	rt := sim.New(7)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileLocal, NodesPerSite: 2})
	l, err := NewLog(LogConfig{
		Transport: net,
		Group:     []transport.NodeID{0, 2, 4},
		Serve:     []transport.NodeID{1, 3, 5},
		Initial:   threeSites(),
	})
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	if err := rt.Run(func() { fn(rt, net, l) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLogProposeConvergesOnce(t *testing.T) {
	logFixture(t, func(rt *sim.Virtual, net *simnet.Network, l *Log) {
		var epochs []int64
		l.View().Subscribe(func(m Membership) { epochs = append(epochs, m.Epoch) })

		next, err := l.Propose(0, Change{Op: OpJoin, Add: []Member{{ID: 6, Site: "site-d"}}})
		if err != nil {
			t.Fatalf("Propose join: %v", err)
		}
		if next.Epoch != 2 || !next.HasSite("site-d") {
			t.Fatalf("join result: %v", next)
		}
		// Three local group peers apply the same entry; the view must
		// advance exactly once.
		rt.Sleep(2 * time.Second)
		if !reflect.DeepEqual(epochs, []int64{2}) {
			t.Fatalf("view notifications = %v, want [2]", epochs)
		}

		if _, err := l.Propose(0, Change{Op: OpJoin, Add: []Member{{ID: 7, Site: "site-d"}}}); !errors.Is(err, ErrSiteExists) {
			t.Fatalf("second join of site-d: err = %v, want ErrSiteExists", err)
		}
	})
}

func TestFetchAndProposeRemote(t *testing.T) {
	logFixture(t, func(rt *sim.Virtual, net *simnet.Network, l *Log) {
		// Node 1 is not in the config group but serves fetch/propose.
		m, err := Fetch(net, 5, 1)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		if m.Epoch != 1 {
			t.Fatalf("fetched epoch = %d, want 1", m.Epoch)
		}
		next, err := ProposeRemote(net, 5, 1, Change{Op: OpRetire, Site: "site-c"}, 0)
		if err != nil {
			t.Fatalf("ProposeRemote: %v", err)
		}
		if next.Epoch != 2 || next.HasSite("site-c") {
			t.Fatalf("retire result: %v", next)
		}
		if _, err := ProposeRemote(net, 5, 1, Change{Op: OpRetire, Site: "site-b"}, 0); err == nil {
			t.Fatal("retire to one site via RPC should fail")
		}
	})
}

func TestPollerFollowsEpochs(t *testing.T) {
	logFixture(t, func(rt *sim.Virtual, net *simnet.Network, l *Log) {
		// A follower view outside the config group tracks via polling.
		follower := NewView(threeSites())
		p := Poll(net, 5, []transport.NodeID{0, 2}, follower, 100*time.Millisecond)
		defer p.Stop()

		if _, err := l.Propose(0, Change{Op: OpJoin, Add: []Member{{ID: 6, Site: "site-d"}}}); err != nil {
			t.Fatalf("Propose: %v", err)
		}
		deadline := rt.Now() + 10*time.Second
		for rt.Now() < deadline && follower.Epoch() < 2 {
			rt.Sleep(50 * time.Millisecond)
		}
		if follower.Epoch() != 2 {
			t.Fatalf("follower epoch = %d, want 2", follower.Epoch())
		}
	})
}
