package membership

import (
	"repro/internal/transport"
	"repro/internal/wire"
)

// Wire codecs: Membership values and Changes cross processes both inside
// Raft log entries (nested in raft's Entry.Data encoding) and as the
// Fetch/Propose RPC payloads.
const (
	idMembership  = 56
	idChange      = 57
	idFetchReq    = 58
	idProposeReq  = 59
	idProposeResp = 60
)

func encodeMember(e *wire.Encoder, m Member) {
	e.Int32(int32(m.ID))
	e.String(m.Site)
	e.String(m.Addr)
}

func decodeMember(d *wire.Decoder) Member {
	return Member{
		ID:   transport.NodeID(d.Int32()),
		Site: d.String(),
		Addr: d.String(),
	}
}

func encodeMembership(e *wire.Encoder, m Membership) {
	e.Int64(m.Epoch)
	e.Uint32(uint32(len(m.Members)))
	for _, mem := range m.Members {
		encodeMember(e, mem)
	}
}

func decodeMembership(d *wire.Decoder) Membership {
	m := Membership{Epoch: d.Int64()}
	n := int(d.Uint32())
	if n > 0 && d.Err() == nil {
		m.Members = make([]Member, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			m.Members = append(m.Members, decodeMember(d))
		}
	}
	return m
}

func encodeChange(e *wire.Encoder, ch Change) {
	e.Uint8(uint8(ch.Op))
	e.String(ch.Site)
	e.Uint32(uint32(len(ch.Add)))
	for _, mem := range ch.Add {
		encodeMember(e, mem)
	}
}

func decodeChange(d *wire.Decoder) Change {
	ch := Change{Op: Op(d.Uint8()), Site: d.String()}
	n := int(d.Uint32())
	if n > 0 && d.Err() == nil {
		ch.Add = make([]Member, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			ch.Add = append(ch.Add, decodeMember(d))
		}
	}
	return ch
}

func init() {
	wire.Register(idMembership, "member.membership", encodeMembership, decodeMembership)
	wire.Register(idChange, "member.change", encodeChange, decodeChange)
	wire.Register(idFetchReq, "member.fetchReq",
		func(e *wire.Encoder, v fetchReq) {},
		func(d *wire.Decoder) fetchReq { return fetchReq{} })
	wire.Register(idProposeReq, "member.proposeReq",
		func(e *wire.Encoder, v proposeChangeReq) { encodeChange(e, v.Change) },
		func(d *wire.Decoder) proposeChangeReq {
			return proposeChangeReq{Change: decodeChange(d)}
		})
	wire.Register(idProposeResp, "member.proposeResp",
		func(e *wire.Encoder, v proposeChangeResp) {
			encodeMembership(e, v.Membership)
			e.String(v.Err)
		},
		func(d *wire.Decoder) proposeChangeResp {
			return proposeChangeResp{Membership: decodeMembership(d), Err: d.String()}
		})
}
