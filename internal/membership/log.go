package membership

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/raft"
	"repro/internal/transport"
)

// Service names for the RPC surface the config log exposes. Every serving
// node answers Fetch (current membership) and Propose (forward a change
// into the log) — that is how nodes outside the Raft config group, such as
// a site that is in the middle of joining, learn and drive membership.
const (
	svcFetch   = "member.fetch"
	svcPropose = "member.propose"
)

// LogConfig describes a replicated config log.
type LogConfig struct {
	Transport transport.Transport
	// Group is the Raft config group — the seed nodes that replicate the
	// log. Joining sites are *not* added to the group (Keyspace's
	// fixed-master-group pattern); they follow via Fetch.
	Group []transport.NodeID
	// Local is the subset of Group hosted by this process. Defaults to
	// Group (the single-process case).
	Local []transport.NodeID
	// Serve lists additional local non-group nodes that should answer
	// Fetch/Propose by forwarding to the group.
	Serve []transport.NodeID
	// Initial is the epoch-1 membership.
	Initial Membership
	// ElectionTimeout / HeartbeatInterval tune the underlying Raft group;
	// zero keeps raft's defaults.
	ElectionTimeout   time.Duration
	HeartbeatInterval time.Duration
	// ProposeTimeout bounds one proposal end to end. Defaults to 4x the
	// transport RPC timeout (a proposal may retry across peers).
	ProposeTimeout time.Duration
}

// Log replicates membership changes through Raft and feeds a View.
type Log struct {
	tr   transport.Transport
	cfg  LogConfig
	rc   *raft.Cluster
	view *View

	mu        sync.Mutex
	lastIndex uint64
	cur       Membership
	outcomes  map[uint64]error // per-index apply results for waiting proposers
}

type fetchReq struct{}

type proposeChangeReq struct {
	Change Change
}

type proposeChangeResp struct {
	Membership Membership
	Err        string
}

// NewLog builds the config log, starts its Raft group for the local
// peers, and registers the Fetch/Propose services.
func NewLog(cfg LogConfig) (*Log, error) {
	if cfg.Transport == nil {
		return nil, errors.New("membership: LogConfig.Transport is required")
	}
	if len(cfg.Group) == 0 {
		return nil, errors.New("membership: LogConfig.Group is required")
	}
	if cfg.Initial.Epoch == 0 {
		return nil, errors.New("membership: LogConfig.Initial must have epoch >= 1")
	}
	if len(cfg.Local) == 0 {
		cfg.Local = cfg.Group
	}
	if cfg.ProposeTimeout == 0 {
		cfg.ProposeTimeout = 4 * cfg.Transport.RPCTimeout()
	}
	l := &Log{
		tr:       cfg.Transport,
		cfg:      cfg,
		view:     NewView(cfg.Initial),
		cur:      cfg.Initial.Clone(),
		outcomes: make(map[uint64]error),
	}
	rc, err := raft.New(cfg.Transport, raft.Config{
		Nodes:             cfg.Group,
		LocalNodes:        cfg.Local,
		Apply:             l.apply,
		ElectionTimeout:   cfg.ElectionTimeout,
		HeartbeatInterval: cfg.HeartbeatInterval,
		ProposeTimeout:    cfg.ProposeTimeout,
	})
	if err != nil {
		return nil, err
	}
	l.rc = rc
	for _, id := range append(append([]transport.NodeID(nil), cfg.Local...), cfg.Serve...) {
		id := id
		cfg.Transport.Handle(id, svcFetch, func(from transport.NodeID, req any) (any, error) {
			return l.view.Current(), nil
		})
		cfg.Transport.Handle(id, svcPropose, func(from transport.NodeID, req any) (any, error) {
			m := req.(proposeChangeReq)
			next, err := l.Propose(id, m.Change)
			if err != nil {
				return proposeChangeResp{Err: err.Error()}, nil
			}
			return proposeChangeResp{Membership: next}, nil
		})
	}
	return l, nil
}

// apply consumes committed log entries. With several group peers hosted in
// one process the same index arrives once per peer; lastIndex dedups so
// the View advances exactly once per epoch. An invalid committed change
// (two racing proposals both won a log slot) is skipped deterministically:
// validation depends only on the membership state every peer agrees on.
func (l *Log) apply(peer transport.NodeID, index uint64, e raft.Entry) {
	ch, ok := e.Data.(Change)
	if !ok {
		return
	}
	l.mu.Lock()
	if index <= l.lastIndex {
		l.mu.Unlock()
		return
	}
	l.lastIndex = index
	next, err := l.cur.Apply(ch)
	l.outcomes[index] = err
	if err != nil {
		l.mu.Unlock()
		return
	}
	l.cur = next
	l.mu.Unlock()
	l.view.Set(next)
}

// View returns the view fed by this log.
func (l *Log) View() *View { return l.view }

// Stop halts the underlying Raft tickers (real-time deployments).
func (l *Log) Stop() { l.rc.Stop() }

// Current returns the latest membership this log has applied.
func (l *Log) Current() Membership {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur.Clone()
}

// Propose validates ch against the current membership, replicates it
// through the config group via the local node `from`, and blocks until the
// change has been applied locally. It returns the resulting membership.
//
// Propose retries through leader elections until ProposeTimeout and is
// idempotent against its own lost responses: a retry that finds the
// change's effect already in the membership (same members joined, same
// nodes departed) reports success instead of ErrStaleEpoch.
func (l *Log) Propose(from transport.NodeID, ch Change) (Membership, error) {
	base := l.Current()
	if _, err := base.Apply(ch); err != nil {
		return Membership{}, err
	}
	departing := base.SiteNodes(ch.Site)
	size := 16
	for _, mem := range ch.Add {
		size += 8 + len(mem.Site) + len(mem.Addr)
	}
	rt := l.tr.Runtime()
	deadline := rt.Now() + l.cfg.ProposeTimeout
	for {
		index, perr := l.rc.Propose(from, ch, size)
		if perr == nil {
			if m, err := l.awaitApplied(index, ch, departing, deadline); err == nil || !errors.Is(err, raft.ErrTimeout) {
				return m, err
			}
		}
		// The commit may have landed even though the response was lost.
		if cur := l.Current(); cur.Epoch > base.Epoch && changeSatisfied(cur, ch, departing) {
			return cur, nil
		}
		if rt.Now() >= deadline {
			return Membership{}, fmt.Errorf("membership: propose %s: %w", ch.Op, raft.ErrTimeout)
		}
		rt.Sleep(200 * time.Millisecond)
	}
}

// awaitApplied waits for the local apply of log index `index` (commit
// precedes apply by at most one heartbeat on the proposing peer) and
// translates the apply outcome.
func (l *Log) awaitApplied(index uint64, ch Change, departing []transport.NodeID, deadline time.Duration) (Membership, error) {
	rt := l.tr.Runtime()
	for rt.Now() < deadline {
		l.mu.Lock()
		applied, cur := l.lastIndex, l.cur.Clone()
		outcome, seen := l.outcomes[index]
		delete(l.outcomes, index)
		l.mu.Unlock()
		if applied >= index {
			// Our slot committed; apply may still have skipped it if a
			// racing change at an earlier index invalidated ours — unless
			// the racer did the very same thing.
			if seen && outcome != nil && !changeSatisfied(cur, ch, departing) {
				return Membership{}, fmt.Errorf("%w: %v", ErrStaleEpoch, outcome)
			}
			return cur, nil
		}
		rt.Sleep(10 * time.Millisecond)
	}
	return Membership{}, fmt.Errorf("membership: apply not observed: %w", raft.ErrTimeout)
}

// changeSatisfied reports whether m already reflects ch's effect: every
// arriving member is present and every departing node is gone.
func changeSatisfied(m Membership, ch Change, departing []transport.NodeID) bool {
	for _, mem := range ch.Add {
		found := false
		for _, cur := range m.Members {
			if cur == mem {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, id := range departing {
		if m.HasNode(id) {
			return false
		}
	}
	return true
}

// Fetch asks `to` for its current membership via RPC — how a node outside
// the config group (a joiner, an admin endpoint) reads the config.
func Fetch(tr transport.Transport, from, to transport.NodeID) (Membership, error) {
	resp, err := tr.Call(from, to, svcFetch, fetchReq{})
	if err != nil {
		return Membership{}, err
	}
	return resp.(Membership), nil
}

// ProposeRemote submits ch through the serving node `to` (which forwards
// into the config group) and returns the resulting membership.
func ProposeRemote(tr transport.Transport, from, to transport.NodeID, ch Change, timeout time.Duration) (Membership, error) {
	if timeout == 0 {
		timeout = 8 * tr.RPCTimeout()
	}
	resp, err := tr.CallTimeout(from, to, svcPropose, proposeChangeReq{Change: ch}, timeout)
	if err != nil {
		return Membership{}, err
	}
	m := resp.(proposeChangeResp)
	if m.Err != "" {
		return Membership{}, errors.New(m.Err)
	}
	return m.Membership, nil
}

// Poller keeps a View current by fetching from seed nodes — the follow
// path for processes outside the config group.
type Poller struct {
	mu      sync.Mutex
	stopped bool
}

// Stop ends the polling loop after its current sleep.
func (p *Poller) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
}

func (p *Poller) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

// Poll starts a background loop on tr's runtime that refreshes view from
// the first reachable seed every interval.
func Poll(tr transport.Transport, self transport.NodeID, seeds []transport.NodeID, view *View, interval time.Duration) *Poller {
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	p := &Poller{}
	rt := tr.Runtime()
	rt.Go(func() {
		for !p.isStopped() {
			for _, seed := range seeds {
				if seed == self {
					continue
				}
				m, err := Fetch(tr, self, seed)
				if err != nil {
					continue
				}
				view.Set(m)
				break
			}
			rt.Sleep(interval)
		}
	})
	return p
}
