// Package membership turns the cluster's site set from a build-time
// constant into a first-class, epoch-versioned value. A Membership names
// the member nodes (with their sites and, for real-wire deployments, TCP
// addresses) and carries a monotonically increasing Epoch; a Change (join,
// retire, replace) moves epoch N to N+1; a Log replicates changes through
// a Raft config group so every process observes the same sequence of
// epochs (Keyspace's master-configuration pattern, PAPERS.md); a View is
// the process-local subscription point the store ring, replicas, clients
// and daemons hang off.
//
// Epoch semantics, enforced by the layers that consume a View:
//
//   - Placement is a pure function of (epoch, key): internal/store
//     recomputes its consistent-hash ring per epoch, so two nodes that
//     agree on the epoch agree on every key's replica set.
//   - Grants are issued under an epoch. A critical section started in
//     epoch N either completes while N's placement still covers the
//     granting site, or fails retryably (internal/core's epoch fence).
//   - Failover preference tracks the live membership: clients drop
//     retired sites and learn joined ones (music.Client).
package membership

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/transport"
)

// Member is one node of the cluster.
type Member struct {
	ID   transport.NodeID
	Site string
	// Addr is the node's TCP listen address; empty on simulated
	// deployments where the transport routes by NodeID alone.
	Addr string
}

// Membership is the epoch-versioned site set. Members are kept sorted by
// node ID; the zero value (epoch 0) means "membership unknown".
type Membership struct {
	Epoch   int64
	Members []Member
}

// Op enumerates reconfiguration kinds.
type Op uint8

const (
	// OpJoin adds a brand-new site's nodes.
	OpJoin Op = iota + 1
	// OpRetire removes a site (planned decommission).
	OpRetire
	// OpReplace removes a site and adds a replacement in one epoch —
	// the recovery path for a crashed site.
	OpReplace
)

func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpRetire:
		return "retire"
	case OpReplace:
		return "replace"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp reads the REST/CLI spelling of an Op.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "join":
		return OpJoin, nil
	case "retire":
		return OpRetire, nil
	case "replace":
		return OpReplace, nil
	default:
		return 0, fmt.Errorf("membership: unknown action %q (want join, retire or replace)", s)
	}
}

// Change is one reconfiguration step: epoch N -> N+1.
type Change struct {
	Op Op
	// Site is the site leaving (retire, replace).
	Site string
	// Add holds the arriving members (join, replace); all must share one
	// site name.
	Add []Member
}

// Errors surfaced by Apply / Log.Propose.
var (
	ErrSiteExists    = errors.New("membership: site is already a member")
	ErrUnknownSite   = errors.New("membership: site is not a member")
	ErrTooFewSites   = errors.New("membership: change would leave fewer than two sites")
	ErrBadChange     = errors.New("membership: malformed change")
	ErrStaleEpoch    = errors.New("membership: proposal raced a newer epoch")
	ErrNotReplicated = errors.New("membership: no config log attached (static membership)")
)

// Clone deep-copies m.
func (m Membership) Clone() Membership {
	out := Membership{Epoch: m.Epoch, Members: make([]Member, len(m.Members))}
	copy(out.Members, m.Members)
	return out
}

// Sites lists the member sites, deduplicated, in node-ID order of first
// appearance — a stable order all processes agree on.
func (m Membership) Sites() []string {
	var sites []string
	seen := make(map[string]bool, 4)
	for _, mem := range m.Members {
		if !seen[mem.Site] {
			seen[mem.Site] = true
			sites = append(sites, mem.Site)
		}
	}
	return sites
}

// HasSite reports whether site is a member.
func (m Membership) HasSite(site string) bool {
	for _, mem := range m.Members {
		if mem.Site == site {
			return true
		}
	}
	return false
}

// HasNode reports whether id is a member node.
func (m Membership) HasNode(id transport.NodeID) bool {
	for _, mem := range m.Members {
		if mem.ID == id {
			return true
		}
	}
	return false
}

// SiteNodes returns the IDs of site's nodes, in ID order.
func (m Membership) SiteNodes(site string) []transport.NodeID {
	var ids []transport.NodeID
	for _, mem := range m.Members {
		if mem.Site == site {
			ids = append(ids, mem.ID)
		}
	}
	return ids
}

// NodeIDs returns all member node IDs, in ID order.
func (m Membership) NodeIDs() []transport.NodeID {
	ids := make([]transport.NodeID, len(m.Members))
	for i, mem := range m.Members {
		ids[i] = mem.ID
	}
	return ids
}

// String renders "epoch 3: site-a{0,1} site-b{2,3}".
func (m Membership) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d:", m.Epoch)
	for _, site := range m.Sites() {
		fmt.Fprintf(&b, " %s{", site)
		for i, id := range m.SiteNodes(site) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteByte('}')
	}
	return b.String()
}

func (m Membership) normalize() Membership {
	sort.Slice(m.Members, func(i, j int) bool { return m.Members[i].ID < m.Members[j].ID })
	return m
}

// New builds an epoch-1 membership from members.
func New(members []Member) Membership {
	return Membership{Epoch: 1, Members: append([]Member(nil), members...)}.normalize()
}

// Apply validates ch against m and returns the epoch-(m.Epoch+1)
// membership. m is not mutated. Validation is deterministic, so every
// config-log peer applying the same committed change computes the same
// next membership (or deterministically skips an invalid one).
func (m Membership) Apply(ch Change) (Membership, error) {
	switch ch.Op {
	case OpJoin:
		if err := validateAdd(m, ch.Add, ""); err != nil {
			return Membership{}, err
		}
		next := m.Clone()
		next.Members = append(next.Members, ch.Add...)
		next.Epoch++
		return next.normalize(), nil
	case OpRetire:
		if !m.HasSite(ch.Site) {
			return Membership{}, fmt.Errorf("%w: %q", ErrUnknownSite, ch.Site)
		}
		next := m.without(ch.Site)
		if len(next.Sites()) < 2 {
			return Membership{}, ErrTooFewSites
		}
		next.Epoch = m.Epoch + 1
		return next.normalize(), nil
	case OpReplace:
		if !m.HasSite(ch.Site) {
			return Membership{}, fmt.Errorf("%w: %q", ErrUnknownSite, ch.Site)
		}
		if err := validateAdd(m.without(ch.Site), ch.Add, ch.Site); err != nil {
			return Membership{}, err
		}
		next := m.without(ch.Site)
		next.Members = append(next.Members, ch.Add...)
		next.Epoch = m.Epoch + 1
		return next.normalize(), nil
	default:
		return Membership{}, fmt.Errorf("%w: op %d", ErrBadChange, ch.Op)
	}
}

func (m Membership) without(site string) Membership {
	out := Membership{Epoch: m.Epoch}
	for _, mem := range m.Members {
		if mem.Site != site {
			out.Members = append(out.Members, mem)
		}
	}
	return out
}

// validateAdd checks joining members: non-empty, one site, site not
// already present (unless it is the site being replaced), no node-ID
// collisions with the remaining membership.
func validateAdd(base Membership, add []Member, replacing string) error {
	if len(add) == 0 {
		return fmt.Errorf("%w: no members to add", ErrBadChange)
	}
	site := add[0].Site
	if site == "" {
		return fmt.Errorf("%w: empty site name", ErrBadChange)
	}
	seen := make(map[transport.NodeID]bool, len(add))
	for _, mem := range add {
		if mem.Site != site {
			return fmt.Errorf("%w: members span sites %q and %q", ErrBadChange, site, mem.Site)
		}
		if seen[mem.ID] {
			return fmt.Errorf("%w: duplicate node %d", ErrBadChange, mem.ID)
		}
		seen[mem.ID] = true
		if base.HasNode(mem.ID) {
			return fmt.Errorf("%w: node %d already a member", ErrBadChange, mem.ID)
		}
	}
	if site != replacing && base.HasSite(site) {
		return fmt.Errorf("%w: %q", ErrSiteExists, site)
	}
	return nil
}

// View is the process-local observation point for membership: the current
// value plus change subscriptions. Updates are monotone — a Set with a
// stale or equal epoch is ignored — so a lagging fetch can never roll a
// process back.
type View struct {
	mu   sync.Mutex
	cur  Membership
	subs []func(Membership)
}

// NewView starts a view at initial.
func NewView(initial Membership) *View {
	return &View{cur: initial.Clone()}
}

// Current returns the membership as of now.
func (v *View) Current() Membership {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cur.Clone()
}

// Epoch returns the current epoch.
func (v *View) Epoch() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cur.Epoch
}

// Subscribe registers fn to run (synchronously, in Set's caller) on every
// epoch advance. Subscribers appended earlier run earlier, so layered
// consumers (ring before clients) can rely on registration order.
func (v *View) Subscribe(fn func(Membership)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.subs = append(v.subs, fn)
}

// Set advances the view to m if m.Epoch is newer, notifying subscribers.
// It reports whether the view advanced.
func (v *View) Set(m Membership) bool {
	v.mu.Lock()
	if m.Epoch <= v.cur.Epoch {
		v.mu.Unlock()
		return false
	}
	v.cur = m.Clone()
	subs := make([]func(Membership), len(v.subs))
	copy(subs, v.subs)
	v.mu.Unlock()
	for _, fn := range subs {
		fn(m)
	}
	return true
}
