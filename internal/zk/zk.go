// Package zk implements a ZooKeeper-like coordination service — the
// paper's sequentially consistent baseline (§VIII-c) — as a znode tree
// replicated through the Zab-style atomic broadcast in internal/zab.
// Writes are totally ordered by the leader; reads are served locally by any
// server (sequential consistency, exactly ZooKeeper's contract). Versioned
// updates, sequential nodes, children listings and one-shot data watches
// are supported.
package zk

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/zab"
)

// Errors mirroring ZooKeeper's client errors.
var (
	ErrNoNode     = errors.New("zk: node does not exist")
	ErrNodeExists = errors.New("zk: node already exists")
	ErrBadVersion = errors.New("zk: version conflict")
	ErrNotEmpty   = errors.New("zk: node has children")
	// ErrUnavailable re-exports the broadcast failure.
	ErrUnavailable = zab.ErrUnavailable
)

// Stat carries a znode's metadata.
type Stat struct {
	Version  int32  // data version, bumped by SetData
	Czxid    uint64 // zxid that created the node
	Mzxid    uint64 // zxid of the last modification
	Cversion int32  // child-list version (drives sequential node names)
}

// WatchEvent reports a one-shot data watch firing.
type WatchEvent struct {
	Path    string
	Deleted bool
}

// Replicated operations (the Zab payloads).
type opCreate struct {
	Path       string
	Data       []byte
	Sequential bool
}

type opSet struct {
	Path    string
	Data    []byte
	Version int32 // -1 = unconditional
}

type opDelete struct {
	Path    string
	Version int32
}

// opResult is the deterministic outcome every server computes for an op.
type opResult struct {
	path string
	stat Stat
	err  error
}

// Cluster is a zk ensemble over a Zab group.
type Cluster struct {
	zb      *zab.Cluster
	net     *simnet.Network
	servers map[simnet.NodeID]*server
}

type server struct {
	c  *Cluster
	id simnet.NodeID

	mu      sync.Mutex
	nodes   map[string]*znode
	results map[uint64]opResult
	watches map[string][]*sim.Promise[WatchEvent]
}

type znode struct {
	data     []byte
	stat     Stat
	children map[string]bool
}

// New builds a zk ensemble on the given network nodes (first node leads).
func New(net *simnet.Network, nodes []simnet.NodeID) (*Cluster, error) {
	c := &Cluster{net: net, servers: make(map[simnet.NodeID]*server, len(nodes))}
	zb, err := zab.New(net, zab.Config{Nodes: nodes, Apply: c.apply})
	if err != nil {
		return nil, err
	}
	c.zb = zb
	for _, id := range nodes {
		c.servers[id] = &server{
			c:       c,
			id:      id,
			nodes:   map[string]*znode{"/": {children: make(map[string]bool)}},
			results: make(map[uint64]opResult),
			watches: make(map[string][]*sim.Promise[WatchEvent]),
		}
	}
	return c, nil
}

// Leader returns the ensemble leader.
func (c *Cluster) Leader() simnet.NodeID { return c.zb.Leader() }

// apply is the replicated state machine, identical on every server.
func (c *Cluster) apply(id simnet.NodeID, txn zab.Txn) {
	s := c.servers[id]
	var res opResult
	switch op := txn.Data.(type) {
	case opCreate:
		res = s.applyCreate(op, txn.Zxid)
	case opSet:
		res = s.applySet(op, txn.Zxid)
	case opDelete:
		res = s.applyDelete(op, txn.Zxid)
	default:
		res = opResult{err: fmt.Errorf("zk: unknown op %T", txn.Data)}
	}
	s.mu.Lock()
	s.results[txn.Zxid] = res
	// Trim ancient results so long benchmark runs stay bounded.
	if txn.Zxid > 50000 {
		delete(s.results, txn.Zxid-50000)
	}
	s.mu.Unlock()
}

func (s *server) applyCreate(op opCreate, zxid uint64) opResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	parentPath := path.Dir(op.Path)
	parent, ok := s.nodes[parentPath]
	if !ok {
		return opResult{err: fmt.Errorf("create %s: parent: %w", op.Path, ErrNoNode)}
	}
	name := op.Path
	if op.Sequential {
		name = fmt.Sprintf("%s%010d", op.Path, parent.stat.Cversion)
	}
	if _, exists := s.nodes[name]; exists {
		return opResult{err: fmt.Errorf("create %s: %w", name, ErrNodeExists)}
	}
	s.nodes[name] = &znode{
		data:     op.Data,
		stat:     Stat{Czxid: zxid, Mzxid: zxid},
		children: make(map[string]bool),
	}
	parent.children[name] = true
	parent.stat.Cversion++
	return opResult{path: name, stat: s.nodes[name].stat}
}

func (s *server) applySet(op opSet, zxid uint64) opResult {
	s.mu.Lock()
	n, ok := s.nodes[op.Path]
	if !ok {
		s.mu.Unlock()
		return opResult{err: fmt.Errorf("set %s: %w", op.Path, ErrNoNode)}
	}
	if op.Version >= 0 && op.Version != n.stat.Version {
		s.mu.Unlock()
		return opResult{err: fmt.Errorf("set %s: have %d want %d: %w", op.Path, n.stat.Version, op.Version, ErrBadVersion)}
	}
	n.data = op.Data
	n.stat.Version++
	n.stat.Mzxid = zxid
	stat := n.stat
	watches := s.watches[op.Path]
	delete(s.watches, op.Path)
	s.mu.Unlock()

	for _, w := range watches {
		w.Resolve(WatchEvent{Path: op.Path})
	}
	return opResult{path: op.Path, stat: stat}
}

func (s *server) applyDelete(op opDelete, zxid uint64) opResult {
	s.mu.Lock()
	n, ok := s.nodes[op.Path]
	if !ok {
		s.mu.Unlock()
		return opResult{err: fmt.Errorf("delete %s: %w", op.Path, ErrNoNode)}
	}
	if op.Version >= 0 && op.Version != n.stat.Version {
		s.mu.Unlock()
		return opResult{err: fmt.Errorf("delete %s: %w", op.Path, ErrBadVersion)}
	}
	if len(n.children) > 0 {
		s.mu.Unlock()
		return opResult{err: fmt.Errorf("delete %s: %w", op.Path, ErrNotEmpty)}
	}
	delete(s.nodes, op.Path)
	if parent, ok := s.nodes[path.Dir(op.Path)]; ok {
		delete(parent.children, op.Path)
		parent.stat.Cversion++
	}
	watches := s.watches[op.Path]
	delete(s.watches, op.Path)
	s.mu.Unlock()

	for _, w := range watches {
		w.Resolve(WatchEvent{Path: op.Path, Deleted: true})
	}
	return opResult{path: op.Path}
}

// Client issues zk operations through one ensemble server.
type Client struct {
	c   *Cluster
	srv simnet.NodeID
}

// Client binds to the server on the given node.
func (c *Cluster) Client(srv simnet.NodeID) *Client { return &Client{c: c, srv: srv} }

// submit totally orders op and returns the locally applied result.
func (cl *Client) submit(op any, size int) (opResult, error) {
	zxid, err := cl.c.zb.Submit(cl.srv, op, size)
	if err != nil {
		return opResult{}, err
	}
	// Wait until the local server has applied our zxid (ZooKeeper's
	// "read your own writes at your server" session guarantee).
	s := cl.c.servers[cl.srv]
	rt := cl.c.net.Runtime()
	for i := 0; i < 100000; i++ {
		s.mu.Lock()
		res, ok := s.results[zxid]
		if ok {
			delete(s.results, zxid)
		}
		applied := cl.c.zb.Applied(cl.srv)
		s.mu.Unlock()
		if ok {
			return res, nil
		}
		if applied >= zxid {
			return opResult{}, fmt.Errorf("zk: result for zxid %d lost", zxid)
		}
		rt.Sleep(200 * time.Microsecond)
	}
	return opResult{}, fmt.Errorf("zk: zxid %d never applied locally", zxid)
}

// Create makes a znode; with sequential set, a 10-digit monotonic suffix is
// appended to the name (ZooKeeper sequential nodes). Returns the real path.
func (cl *Client) Create(p string, data []byte, sequential bool) (string, error) {
	res, err := cl.submit(opCreate{Path: cleanPath(p), Data: data, Sequential: sequential}, len(data))
	if err != nil {
		return "", err
	}
	return res.path, res.err
}

// SetData overwrites a znode's data; version -1 skips the version check.
func (cl *Client) SetData(p string, data []byte, version int32) (Stat, error) {
	res, err := cl.submit(opSet{Path: cleanPath(p), Data: data, Version: version}, len(data))
	if err != nil {
		return Stat{}, err
	}
	return res.stat, res.err
}

// Delete removes a childless znode; version -1 skips the version check.
func (cl *Client) Delete(p string, version int32) error {
	res, err := cl.submit(opDelete{Path: cleanPath(p), Version: version}, 0)
	if err != nil {
		return err
	}
	return res.err
}

// GetData reads a znode from the local server (sequentially consistent,
// possibly behind the leader).
func (cl *Client) GetData(p string) ([]byte, Stat, error) {
	cl.c.zb.ReadWork(cl.srv)
	s := cl.c.servers[cl.srv]
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[cleanPath(p)]
	if !ok {
		return nil, Stat{}, fmt.Errorf("get %s: %w", p, ErrNoNode)
	}
	return append([]byte(nil), n.data...), n.stat, nil
}

// Exists reports whether a znode exists at the local server.
func (cl *Client) Exists(p string) (bool, Stat) {
	cl.c.zb.ReadWork(cl.srv)
	s := cl.c.servers[cl.srv]
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[cleanPath(p)]
	if !ok {
		return false, Stat{}
	}
	return true, n.stat
}

// Children lists a znode's children (sorted) at the local server.
func (cl *Client) Children(p string) ([]string, error) {
	cl.c.zb.ReadWork(cl.srv)
	s := cl.c.servers[cl.srv]
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[cleanPath(p)]
	if !ok {
		return nil, fmt.Errorf("children %s: %w", p, ErrNoNode)
	}
	out := make([]string, 0, len(n.children))
	for child := range n.children {
		out = append(out, child)
	}
	sort.Strings(out)
	return out, nil
}

// Watch registers a one-shot watch on the next change (set or delete) of p
// as observed by this client's server.
func (cl *Client) Watch(p string) *sim.Promise[WatchEvent] {
	s := cl.c.servers[cl.srv]
	w := sim.NewPromise[WatchEvent](cl.c.net.Runtime())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watches[cleanPath(p)] = append(s.watches[cleanPath(p)], w)
	return w
}

func cleanPath(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}
