package zk

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func fixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, c *Cluster)) {
	t.Helper()
	rt := sim.New(5)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	c, err := New(net, net.Nodes())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Run(func() { fn(rt, net, c) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCreateGetSetDelete(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		p, err := cl.Create("/app", []byte("v0"), false)
		if err != nil || p != "/app" {
			t.Fatalf("Create = (%q, %v)", p, err)
		}
		data, stat, err := cl.GetData("/app")
		if err != nil || string(data) != "v0" || stat.Version != 0 {
			t.Fatalf("GetData = (%q, %+v, %v)", data, stat, err)
		}
		if _, err := cl.SetData("/app", []byte("v1"), 0); err != nil {
			t.Fatalf("SetData: %v", err)
		}
		data, stat, err = cl.GetData("/app")
		if err != nil || string(data) != "v1" || stat.Version != 1 {
			t.Fatalf("after set: (%q, %+v, %v)", data, stat, err)
		}
		if err := cl.Delete("/app", -1); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, _, err := cl.GetData("/app"); !errors.Is(err, ErrNoNode) {
			t.Fatalf("get deleted err = %v, want ErrNoNode", err)
		}
	})
}

func TestVersionConflicts(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if _, err := cl.Create("/n", []byte("a"), false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := cl.SetData("/n", []byte("b"), 5); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("stale set err = %v, want ErrBadVersion", err)
		}
		if err := cl.Delete("/n", 9); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("stale delete err = %v, want ErrBadVersion", err)
		}
		if _, err := cl.Create("/n", nil, false); !errors.Is(err, ErrNodeExists) {
			t.Fatalf("duplicate create err = %v, want ErrNodeExists", err)
		}
	})
}

func TestParentRequiredAndNotEmpty(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if _, err := cl.Create("/a/b", nil, false); !errors.Is(err, ErrNoNode) {
			t.Fatalf("orphan create err = %v, want ErrNoNode", err)
		}
		if _, err := cl.Create("/a", nil, false); err != nil {
			t.Fatalf("Create /a: %v", err)
		}
		if _, err := cl.Create("/a/b", nil, false); err != nil {
			t.Fatalf("Create /a/b: %v", err)
		}
		if err := cl.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("delete non-empty err = %v, want ErrNotEmpty", err)
		}
		kids, err := cl.Children("/a")
		if err != nil || len(kids) != 1 || kids[0] != "/a/b" {
			t.Fatalf("Children = (%v, %v)", kids, err)
		}
	})
}

func TestSequentialNodes(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if _, err := cl.Create("/locks", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		var names []string
		for i := 0; i < 3; i++ {
			p, err := cl.Create("/locks/lock-", nil, true)
			if err != nil {
				t.Fatalf("sequential create: %v", err)
			}
			names = append(names, p)
		}
		for i, p := range names {
			if !strings.HasPrefix(p, "/locks/lock-") {
				t.Fatalf("name %q", p)
			}
			if i > 0 && p <= names[i-1] {
				t.Fatalf("sequential names not increasing: %v", names)
			}
		}
	})
}

func TestWritesVisibleOnAllServersEventually(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		if _, err := c.Client(1).Create("/x", []byte("v"), false); err != nil {
			t.Fatalf("Create via follower: %v", err)
		}
		rt.Sleep(time.Second)
		for srv := 0; srv < 3; srv++ {
			data, _, err := c.Client(simnet.NodeID(srv)).GetData("/x")
			if err != nil || string(data) != "v" {
				t.Fatalf("server %d: (%q, %v)", srv, data, err)
			}
		}
	})
}

func TestWritesAreTotallyOrdered(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		if _, err := c.Client(0).Create("/seq", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		done := sim.NewMailbox[error](rt)
		for i := 0; i < 3; i++ {
			srv := simnet.NodeID(i)
			rt.Go(func() {
				cl := c.Client(srv)
				for j := 0; j < 5; j++ {
					if _, err := cl.SetData("/seq", []byte{byte(j)}, -1); err != nil {
						done.Send(err)
						return
					}
				}
				done.Send(nil)
			})
		}
		for i := 0; i < 3; i++ {
			if err, recvErr := done.RecvTimeout(time.Minute); recvErr != nil || err != nil {
				t.Fatalf("writer: %v / %v", err, recvErr)
			}
		}
		rt.Sleep(2 * time.Second)
		// All servers converge to the same version: 15 total sets.
		for srv := 0; srv < 3; srv++ {
			_, stat, err := c.Client(simnet.NodeID(srv)).GetData("/seq")
			if err != nil || stat.Version != 15 {
				t.Fatalf("server %d version = %d (%v), want 15", srv, stat.Version, err)
			}
		}
	})
}

func TestWatchFiresOnSet(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(2)
		if _, err := c.Client(0).Create("/w", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		rt.Sleep(time.Second)
		w := cl.Watch("/w")
		if _, err := c.Client(0).SetData("/w", []byte("new"), -1); err != nil {
			t.Fatalf("SetData: %v", err)
		}
		ev, err := w.AwaitTimeout(5 * time.Second)
		if err != nil || ev.Path != "/w" || ev.Deleted {
			t.Fatalf("watch = (%+v, %v)", ev, err)
		}
	})
}

func TestWatchFiresOnDelete(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if _, err := cl.Create("/w", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		w := cl.Watch("/w")
		if err := cl.Delete("/w", -1); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		ev, err := w.AwaitTimeout(5 * time.Second)
		if err != nil || !ev.Deleted {
			t.Fatalf("watch = (%+v, %v), want deletion", ev, err)
		}
	})
}

func TestLocalReadIsFastWriteCostsQuorumRTT(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0) // node 0 is the leader
		if _, err := cl.Create("/perf", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		start := rt.Now()
		if _, err := cl.SetData("/perf", []byte("x"), -1); err != nil {
			t.Fatalf("SetData: %v", err)
		}
		writeLat := rt.Now() - start
		// Leader write: one quorum round trip (fastest follower, ncal 54ms).
		if writeLat < 40*time.Millisecond || writeLat > 90*time.Millisecond {
			t.Errorf("leader write = %v, want ≈54ms", writeLat)
		}

		start = rt.Now()
		if _, _, err := cl.GetData("/perf"); err != nil {
			t.Fatalf("GetData: %v", err)
		}
		if readLat := rt.Now() - start; readLat > 2*time.Millisecond {
			t.Errorf("local read = %v, want sub-ms", readLat)
		}

		// A follower write adds the forwarding hop to the leader.
		start = rt.Now()
		if _, err := c.Client(2).SetData("/perf", []byte("y"), -1); err != nil {
			t.Fatalf("follower SetData: %v", err)
		}
		fwdLat := rt.Now() - start
		if fwdLat <= writeLat {
			t.Errorf("follower write %v not slower than leader write %v", fwdLat, writeLat)
		}
	})
}

func TestPipelinedThroughputExceedsSerial(t *testing.T) {
	// 60 concurrent writes must take far less than 60 × one-RTT, proving
	// the leader pipelines proposals rather than serializing round trips.
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(0)
		if _, err := cl.Create("/p", nil, false); err != nil {
			t.Fatalf("Create: %v", err)
		}
		done := sim.NewMailbox[error](rt)
		start := rt.Now()
		const writes = 60
		for i := 0; i < writes; i++ {
			rt.Go(func() {
				_, err := cl.SetData("/p", []byte("x"), -1)
				done.Send(err)
			})
		}
		for i := 0; i < writes; i++ {
			if err, recvErr := done.RecvTimeout(time.Minute); recvErr != nil || err != nil {
				t.Fatalf("write %d: %v / %v", i, err, recvErr)
			}
		}
		elapsed := rt.Now() - start
		if elapsed > time.Second {
			t.Fatalf("60 pipelined writes took %v, want ≪ 60×54ms = 3.2s", elapsed)
		}
	})
}

func TestManyDistinctNodes(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *Cluster) {
		cl := c.Client(1)
		for i := 0; i < 20; i++ {
			if _, err := cl.Create(fmt.Sprintf("/n%02d", i), []byte{byte(i)}, false); err != nil {
				t.Fatalf("Create %d: %v", i, err)
			}
		}
		kids, err := cl.Children("/")
		if err != nil || len(kids) != 20 {
			t.Fatalf("Children = %d (%v), want 20", len(kids), err)
		}
	})
}
