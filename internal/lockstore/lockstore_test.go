package lockstore

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// fixture runs fn against a 3-site lock store on a virtual runtime.
func fixture(t *testing.T, fn func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster)) {
	t.Helper()
	rt := sim.New(3)
	net := simnet.New(rt, simnet.Config{Profile: simnet.ProfileIUs})
	c := store.New(net, store.Config{})
	if err := rt.Run(func() { fn(rt, net, c) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGenerateAndEnqueueIncreasing(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		var last int64
		for i := 0; i < 5; i++ {
			ref, err := svc.GenerateAndEnqueue("k")
			if err != nil {
				t.Fatalf("enqueue %d: %v", i, err)
			}
			if ref <= last {
				t.Fatalf("ref %d not increasing past %d", ref, last)
			}
			last = ref
		}
		queue, err := svc.Queue("k")
		if err != nil {
			t.Fatalf("Queue: %v", err)
		}
		if len(queue) != 5 {
			t.Fatalf("queue length = %d, want 5", len(queue))
		}
		for i := 1; i < len(queue); i++ {
			if queue[i].Ref <= queue[i-1].Ref {
				t.Fatalf("queue not FIFO-increasing: %+v", queue)
			}
		}
	})
}

func TestRefsUniqueAcrossKeys(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		r1, err := svc.GenerateAndEnqueue("a")
		if err != nil {
			t.Fatalf("enqueue a: %v", err)
		}
		r2, err := svc.GenerateAndEnqueue("b")
		if err != nil {
			t.Fatalf("enqueue b: %v", err)
		}
		// Guards are per key: both start at 1.
		if r1 != 1 || r2 != 1 {
			t.Fatalf("first refs = %d, %d, want 1, 1", r1, r2)
		}
	})
}

func TestPeekHeadAndDequeue(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		r1, _ := svc.GenerateAndEnqueue("k")
		r2, _ := svc.GenerateAndEnqueue("k")

		head, ok, err := svc.Peek("k")
		if err != nil || !ok {
			t.Fatalf("Peek = (%v, %v, %v)", head, ok, err)
		}
		if head.Ref != r1 {
			t.Fatalf("head = %d, want %d", head.Ref, r1)
		}

		if err := svc.Dequeue("k", r1); err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
		head, ok, err = svc.Peek("k")
		if err != nil || !ok || head.Ref != r2 {
			t.Fatalf("after dequeue: Peek = (%v, %v, %v), want head %d", head, ok, err, r2)
		}

		if err := svc.Dequeue("k", r2); err != nil {
			t.Fatalf("Dequeue r2: %v", err)
		}
		_, ok, err = svc.Peek("k")
		if err != nil || ok {
			t.Fatalf("empty queue: Peek ok = %v, err = %v", ok, err)
		}
	})
}

func TestDequeueMissingRefIsNoOp(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		r1, _ := svc.GenerateAndEnqueue("k")
		if err := svc.Dequeue("k", 999); err != nil {
			t.Fatalf("Dequeue missing: %v", err)
		}
		head, ok, _ := svc.Peek("k")
		if !ok || head.Ref != r1 {
			t.Fatalf("queue disturbed by missing dequeue: %+v ok=%v", head, ok)
		}
	})
}

func TestDequeueMiddleOfQueue(t *testing.T) {
	// A client that failed to win the lock evicts its reference from the
	// middle (the homing workers' removeLockReference pattern).
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		r1, _ := svc.GenerateAndEnqueue("k")
		r2, _ := svc.GenerateAndEnqueue("k")
		r3, _ := svc.GenerateAndEnqueue("k")
		if err := svc.Dequeue("k", r2); err != nil {
			t.Fatalf("Dequeue middle: %v", err)
		}
		queue, err := svc.Queue("k")
		if err != nil {
			t.Fatalf("Queue: %v", err)
		}
		if len(queue) != 2 || queue[0].Ref != r1 || queue[1].Ref != r3 {
			t.Fatalf("queue = %+v, want [%d %d]", queue, r1, r3)
		}
	})
}

func TestConcurrentEnqueuesDistinctRefs(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		refs := sim.NewMailbox[int64](rt)
		const n = 6
		for i := 0; i < n; i++ {
			node := simnet.NodeID(i % 3)
			svc := New(c.Client(node))
			rt.Go(func() {
				ref, err := svc.GenerateAndEnqueue("k")
				if err != nil {
					t.Errorf("enqueue: %v", err)
					refs.Send(-1)
					return
				}
				refs.Send(ref)
			})
		}
		seen := make(map[int64]bool)
		for i := 0; i < n; i++ {
			ref, err := refs.RecvTimeout(5 * time.Minute)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if ref < 0 {
				return
			}
			if seen[ref] {
				t.Fatalf("ref %d issued twice", ref)
			}
			seen[ref] = true
		}
		// Queue must contain every issued ref in increasing order (possibly
		// with orphan ghosts from completed-but-unreported CASes).
		svc := New(c.Client(0))
		queue, err := svc.Queue("k")
		if err != nil {
			t.Fatalf("Queue: %v", err)
		}
		inQueue := make(map[int64]bool, len(queue))
		for i, e := range queue {
			if i > 0 && e.Ref <= queue[i-1].Ref {
				t.Fatalf("queue out of order: %+v", queue)
			}
			inQueue[e.Ref] = true
		}
		for ref := range seen {
			if !inQueue[ref] {
				t.Fatalf("issued ref %d missing from queue %+v", ref, queue)
			}
		}
	})
}

func TestGrantTimeVisibleInPeek(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		ref, _ := svc.GenerateAndEnqueue("k")
		head, ok, _ := svc.Peek("k")
		if !ok || head.StartTime != 0 {
			t.Fatalf("ungranted head StartTime = %d, want 0", head.StartTime)
		}
		if err := svc.SetGrant("k", ref, 12345, 7); err != nil {
			t.Fatalf("SetGrant: %v", err)
		}
		head, ok, _ = svc.Peek("k")
		if !ok || head.StartTime != 12345 || head.GrantEpoch != 7 {
			t.Fatalf("granted head = %+v, want StartTime 12345 GrantEpoch 7", head)
		}
	})
}

func TestPeekIsLocalAndFast(t *testing.T) {
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc := New(c.Client(0))
		if _, err := svc.GenerateAndEnqueue("k"); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		start := rt.Now()
		if _, _, err := svc.Peek("k"); err != nil {
			t.Fatalf("Peek: %v", err)
		}
		if d := rt.Now() - start; d > 5*time.Millisecond {
			t.Fatalf("local peek took %v, want sub-ms", d)
		}
	})
}

func TestPeekSeesStaleLocalReplica(t *testing.T) {
	// A peek on a partitioned site must not see enqueues it missed —
	// acquireLock's "local store not yet updated" case.
	fixture(t, func(rt *sim.Virtual, net *simnet.Network, c *store.Cluster) {
		svc0 := New(c.Client(0))
		svc2 := New(c.Client(2))
		net.Isolate(2)
		if _, err := svc0.GenerateAndEnqueue("k"); err != nil {
			t.Fatalf("enqueue during partition: %v", err)
		}
		if _, ok, err := svc2.Peek("k"); err != nil || ok {
			t.Fatalf("isolated peek = ok %v err %v, want empty", ok, err)
		}
		net.Heal()
	})
}

func TestQueueCodecRoundTrip(t *testing.T) {
	queue := []Entry{{Ref: 1}, {Ref: 7}, {Ref: 1 << 40}}
	row := store.Row{colQueue: store.Cell{Value: encodeQueue(queue)}}
	got := decodeQueue(row)
	if len(got) != 3 || got[0].Ref != 1 || got[1].Ref != 7 || got[2].Ref != 1<<40 {
		t.Fatalf("round trip = %+v", got)
	}
	if decodeQueue(store.Row{}) != nil {
		t.Fatal("empty row decodes non-nil")
	}
	if g := decodeGuard(store.Row{colGuard: store.Cell{Value: encodeGuard(99)}}); g != 99 {
		t.Fatalf("guard round trip = %d", g)
	}
}
