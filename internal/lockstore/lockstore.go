// Package lockstore implements MUSIC's lock store (§III-B, §VI): a per-key
// FIFO queue of unique, increasing lock references, kept sequentially
// consistent through the data store's Paxos-based compare-and-set. Each key
// has a 64-bit guard counter whose atomic increment-and-enqueue realizes
// lsGenerateAndEnqueue with a single LWT, exactly like the paper's batched
// guard UPDATE + queue INSERT; lsDequeue is an LWT removal; lsPeek is an
// eventual read served by the local replica.
package lockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Table is the lock table name within the shared store cluster.
const Table = "music_locks"

// Column names within a lock row.
const (
	colGuard = "guard"
	colQueue = "queue"
)

// Entry is one queued lock reference. StartTime is the grant time in
// microseconds (0 until the reference reaches the head and is granted).
// Nonce identifies the enqueueing client: a compare-and-set that loses its
// Paxos race can still be completed by a competing proposer (a "ghost"
// application), and the nonce lets the issuer recognize its own enqueue in
// that case instead of abandoning an orphan lockRef.
type Entry struct {
	Ref       int64
	StartTime int64
	Nonce     uint64
	// GrantEpoch is the membership epoch the grant was issued under (0 on
	// fixed-membership clusters and on grants whose cell predates the
	// epoch extension). A replica adopting a foreign grant under dynamic
	// membership certifies the section against this epoch's placement.
	GrantEpoch int64
	// GrantTag identifies the granting site (0 on plain SetGrant cells).
	// Like Nonce for enqueues, it lets a granter whose SetGrantLWT lost its
	// Paxos ack recognize its own grant on the next poll instead of
	// treating it as foreign and waiting out the site-lease window.
	GrantTag uint64
}

// ErrContention is returned when the enqueue/dequeue CAS loop exhausts its
// retries against competing clients.
var ErrContention = errors.New("lockstore: contention, retries exhausted")

// Service issues lock-store operations through one store coordinator (the
// one colocated with the calling MUSIC replica).
type Service struct {
	st *store.Client
}

// New wraps a store client as a lock store.
func New(st *store.Client) *Service { return &Service{st: st} }

// tracer returns the shared tracer (nil when observability is disabled).
func (s *Service) tracer() *obs.Tracer { return s.st.Cluster().Net().Tracer() }

// GenerateAndEnqueue atomically mints the next lock reference for key and
// appends it to the key's queue. One LWT on the fast path: the expected
// guard and queue come from a cheap local read, and CAS failures retry from
// the authoritative row returned by the failed CAS.
func (s *Service) GenerateAndEnqueue(key string) (ref int64, err error) {
	sp := s.tracer().Child("lockstore.enqueue")
	sp.Annotate("key", key)
	defer func() { sp.EndErr(err) }()
	row, err := s.st.Get(Table, key, store.One)
	if err != nil {
		// A local read failure still allows CAS-driven discovery.
		row = store.Row{}
	}
	nonce := s.nonce()
	for attempt := 0; attempt < 24; attempt++ {
		s.backoff(attempt)
		guard := decodeGuard(row)
		queue := decodeQueue(row)
		next := guard + 1
		update := store.Row{
			colGuard: store.Cell{Value: encodeGuard(next)},
			colQueue: store.Cell{Value: encodeQueue(append(queue, Entry{Ref: next, Nonce: nonce}))},
		}
		res, err := s.st.CAS(Table, key, rowConds(row), update)
		if err != nil {
			return 0, fmt.Errorf("enqueue %s: %w", key, err)
		}
		if res.Applied {
			return next, nil
		}
		row = res.Current
		// A lost CAS may still have been applied on our behalf by the
		// proposer that completed our in-progress Paxos round; the nonce
		// tells us the resulting lockRef is really ours.
		for _, e := range decodeQueue(row) {
			if e.Nonce == nonce {
				return e.Ref, nil
			}
		}
	}
	return 0, fmt.Errorf("enqueue %s: %w", key, ErrContention)
}

// Dequeue removes ref from the key's queue (a no-op if absent, as required
// by forcedRelease). Its grant cell is tombstoned alongside.
func (s *Service) Dequeue(key string, ref int64) (err error) {
	sp := s.tracer().Child("lockstore.dequeue")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	row, err := s.st.Get(Table, key, store.One)
	if err != nil {
		row = store.Row{}
	}
	for attempt := 0; attempt < 24; attempt++ {
		s.backoff(attempt)
		queue := decodeQueue(row)
		trimmed := removeRef(queue, ref)
		if len(trimmed) == len(queue) {
			// Verify absence against a quorum before declaring the no-op:
			// the local replica may simply not have seen the enqueue yet.
			qrow, err := s.st.Get(Table, key, store.Quorum)
			if err != nil {
				return fmt.Errorf("dequeue %s/%d: %w", key, ref, err)
			}
			qqueue := decodeQueue(qrow)
			if len(removeRef(qqueue, ref)) == len(qqueue) {
				return nil
			}
			row = qrow
			continue
		}
		update := store.Row{
			colQueue:      store.Cell{Value: encodeQueue(trimmed)},
			grantCol(ref): store.Cell{Deleted: true},
		}
		res, err := s.st.CAS(Table, key, rowConds(row), update)
		if err != nil {
			return fmt.Errorf("dequeue %s/%d: %w", key, ref, err)
		}
		if res.Applied {
			return nil
		}
		row = res.Current
	}
	return fmt.Errorf("dequeue %s/%d: %w", key, ref, ErrContention)
}

// Peek returns the head of the key's queue as seen by the local (same-site)
// replica — an eventual read, so the result may lag the true queue, which
// acquireLock's retry loop tolerates by design.
func (s *Service) Peek(key string) (Entry, bool, error) {
	sp := s.tracer().Child("lockstore.peek")
	sp.Annotate("key", key)
	row, err := s.st.Get(Table, key, store.One)
	sp.EndErr(err)
	if err != nil {
		return Entry{}, false, fmt.Errorf("peek %s: %w", key, err)
	}
	queue := decodeQueue(row)
	if len(queue) == 0 {
		return Entry{}, false, nil
	}
	head := queue[0]
	head.StartTime, head.GrantEpoch = decodeGrant(row, head.Ref)
	head.GrantTag = decodeGrantTag(row, head.Ref)
	return head, true, nil
}

// Queue returns the full queue at quorum consistency (diagnostics, tests,
// and the lock janitor).
func (s *Service) Queue(key string) ([]Entry, error) {
	row, err := s.st.Get(Table, key, store.Quorum)
	if err != nil {
		return nil, fmt.Errorf("queue %s: %w", key, err)
	}
	queue := decodeQueue(row)
	for i := range queue {
		queue[i].StartTime, queue[i].GrantEpoch = decodeGrant(row, queue[i].Ref)
		queue[i].GrantTag = decodeGrantTag(row, queue[i].Ref)
	}
	return queue, nil
}

// SetGrant records the grant time — and, on dynamic clusters, the grant's
// membership epoch — for a head lock reference with a plain replicated
// write (not an LWT — the cell is uncontended, written once by the
// granting MUSIC replica, mirroring the paper's startTime column).
func (s *Service) SetGrant(key string, ref int64, startMicros, epoch int64) error {
	sp := s.tracer().Child("lockstore.setGrant")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	cell := store.Cell{Value: encodeGrantCell(startMicros, epoch, 0)}
	err := s.st.Put(Table, key, store.Row{grantCol(ref): cell}, store.Quorum)
	sp.EndErr(err)
	if err != nil {
		return fmt.Errorf("set grant %s/%d: %w", key, ref, err)
	}
	return nil
}

// SetGrantLWT records the grant time with a compare-and-set instead of a
// plain write: the CAS asserts the observed guard/queue bytes (ref still at
// the head) and that no grant cell exists yet. Lease mode needs this — the
// grant *issues a site lease*, so recording it must serialize against both
// competing granters and DequeueIfUngranted's orphan reap through the same
// Paxos row. tag identifies the granting site; a cell already carrying the
// same tag is this site's own earlier CAS whose ack was lost (or a racing
// local poll's), and is returned as applied with the recorded instant.
// Returns applied=true when this site's grant is recorded — curStart and
// curEpoch are then the authoritative cell contents. On applied=false:
// curStart > 0 means another site granted first (the caller adopts that
// grant); curStart == 0 means ref is no longer queued (reaped), so the
// caller must not treat itself as holder.
func (s *Service) SetGrantLWT(key string, ref int64, startMicros, epoch int64, tag uint64) (applied bool, curStart, curEpoch int64, err error) {
	sp := s.tracer().Child("lockstore.setGrantLWT")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	row, err := s.st.Get(Table, key, store.One)
	if err != nil {
		row = store.Row{}
	}
	for attempt := 0; attempt < 24; attempt++ {
		s.backoff(attempt)
		if st, ep := decodeGrant(row, ref); st != 0 {
			return tag != 0 && decodeGrantTag(row, ref) == tag, st, ep, nil
		}
		queue := decodeQueue(row)
		if len(queue) == 0 || queue[0].Ref != ref {
			// The local replica may lag the enqueue (or the reap): refresh
			// from a quorum before concluding ref left the queue.
			qrow, qerr := s.st.Get(Table, key, store.Quorum)
			if qerr != nil {
				return false, 0, 0, fmt.Errorf("set grant lwt %s/%d: %w", key, ref, qerr)
			}
			qq := decodeQueue(qrow)
			if len(qq) == 0 || qq[0].Ref != ref {
				st, ep := decodeGrant(qrow, ref)
				return tag != 0 && st != 0 && decodeGrantTag(qrow, ref) == tag, st, ep, nil
			}
			row = qrow
			continue
		}
		conds := append(rowConds(row), store.Cond{Col: grantCol(ref), Want: nil})
		update := store.Row{grantCol(ref): store.Cell{Value: encodeGrantCell(startMicros, epoch, tag)}}
		res, casErr := s.st.CAS(Table, key, conds, update)
		if casErr != nil {
			return false, 0, 0, fmt.Errorf("set grant lwt %s/%d: %w", key, ref, casErr)
		}
		if res.Applied {
			return true, startMicros, epoch, nil
		}
		row = res.Current
	}
	return false, 0, 0, fmt.Errorf("set grant lwt %s/%d: %w", key, ref, ErrContention)
}

// DequeueIfUngranted removes ref from the key's queue only if no grant cell
// has been recorded for it — the orphan-reap side of the SetGrantLWT
// serialization. Returns dequeued=false (and no error) when a grant cell is
// observed: the "orphan" was granted after all and must be left to the T
// expiry path.
func (s *Service) DequeueIfUngranted(key string, ref int64) (dequeued bool, err error) {
	sp := s.tracer().Child("lockstore.dequeueIfUngranted")
	sp.Annotatef("lockref", "%s/%d", key, ref)
	defer func() { sp.EndErr(err) }()
	row, err := s.st.Get(Table, key, store.Quorum)
	if err != nil {
		return false, fmt.Errorf("dequeue ungranted %s/%d: %w", key, ref, err)
	}
	for attempt := 0; attempt < 24; attempt++ {
		s.backoff(attempt)
		if st, _ := decodeGrant(row, ref); st != 0 {
			return false, nil
		}
		queue := decodeQueue(row)
		trimmed := removeRef(queue, ref)
		if len(trimmed) == len(queue) {
			return true, nil // already gone (quorum view)
		}
		conds := append(rowConds(row), store.Cond{Col: grantCol(ref), Want: nil})
		update := store.Row{
			colQueue:      store.Cell{Value: encodeQueue(trimmed)},
			grantCol(ref): store.Cell{Deleted: true},
		}
		res, casErr := s.st.CAS(Table, key, conds, update)
		if casErr != nil {
			return false, fmt.Errorf("dequeue ungranted %s/%d: %w", key, ref, casErr)
		}
		if res.Applied {
			return true, nil
		}
		row = res.Current
	}
	return false, fmt.Errorf("dequeue ungranted %s/%d: %w", key, ref, ErrContention)
}

// nonce mints a random enqueue identity.
func (s *Service) nonce() uint64 {
	rt := s.st.Cluster().Net().Runtime()
	return uint64(rt.Rand().Int63())<<1 | 1
}

// backoff sleeps a randomized, linearly growing delay before CAS retries,
// so clients hammering the same hot lock row (Zipfian workloads) do not
// collapse the Paxos path into livelock.
func (s *Service) backoff(attempt int) {
	if attempt == 0 {
		return
	}
	rt := s.st.Cluster().Net().Runtime()
	rt.Sleep(time.Duration(5+rt.Rand().Intn(25*attempt)) * time.Millisecond)
}

// grantCol names the per-reference grant-time column.
func grantCol(ref int64) string { return fmt.Sprintf("st:%d", ref) }

// rowConds builds the CAS condition asserting guard and queue are unchanged
// from the observed row.
func rowConds(row store.Row) []store.Cond {
	return []store.Cond{
		{Col: colGuard, Want: cellBytes(row, colGuard)},
		{Col: colQueue, Want: cellBytes(row, colQueue)},
	}
}

func cellBytes(row store.Row, col string) []byte {
	c, ok := row[col]
	if !ok || c.Deleted {
		return nil
	}
	return c.Value
}

func removeRef(queue []Entry, ref int64) []Entry {
	out := queue[:0:0]
	for _, e := range queue {
		if e.Ref != ref {
			out = append(out, e)
		}
	}
	return out
}

// encodeGuard encodes an int64 counter or timestamp.
func encodeGuard(v int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

func decodeGuard(row store.Row) int64 {
	b := cellBytes(row, colGuard)
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// encodeGrantCell packs (startMicros, grantEpoch) as two big-endian words,
// with the granter tag as an optional third (tag 0 keeps the 16-byte
// pre-tag format plain SetGrant still writes).
func encodeGrantCell(startMicros, epoch int64, tag uint64) []byte {
	n := 16
	if tag != 0 {
		n = 24
	}
	b := make([]byte, n)
	binary.BigEndian.PutUint64(b, uint64(startMicros))
	binary.BigEndian.PutUint64(b[8:], uint64(epoch))
	if tag != 0 {
		binary.BigEndian.PutUint64(b[16:], tag)
	}
	return b
}

// decodeGrant reads a grant cell. 8-byte cells (pre-epoch format) decode
// with epoch 0, meaning "epoch unknown"; 24-byte cells carry a granter tag.
func decodeGrant(row store.Row, ref int64) (startMicros, epoch int64) {
	b := cellBytes(row, grantCol(ref))
	switch len(b) {
	case 8:
		return int64(binary.BigEndian.Uint64(b)), 0
	case 16, 24:
		return int64(binary.BigEndian.Uint64(b)), int64(binary.BigEndian.Uint64(b[8:]))
	default:
		return 0, 0
	}
}

// decodeGrantTag reads the granter tag of a grant cell (0 on untagged cells).
func decodeGrantTag(row store.Row, ref int64) uint64 {
	if b := cellBytes(row, grantCol(ref)); len(b) == 24 {
		return binary.BigEndian.Uint64(b[16:])
	}
	return 0
}

// encodeQueue packs queue entries as big-endian (ref, nonce) word pairs.
func encodeQueue(queue []Entry) []byte {
	b := make([]byte, 16*len(queue))
	for i, e := range queue {
		binary.BigEndian.PutUint64(b[i*16:], uint64(e.Ref))
		binary.BigEndian.PutUint64(b[i*16+8:], e.Nonce)
	}
	return b
}

func decodeQueue(row store.Row) []Entry {
	b := cellBytes(row, colQueue)
	n := len(b) / 16
	if n == 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := 0; i < n; i++ {
		out[i] = Entry{
			Ref:   int64(binary.BigEndian.Uint64(b[i*16:])),
			Nonce: binary.BigEndian.Uint64(b[i*16+8:]),
		}
	}
	return out
}
