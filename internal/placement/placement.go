// Package placement is the pure consistent-hash placement function used by
// epoch-versioned dynamic membership: given a member set (nodes tagged with
// their sites) and a replication factor, it answers "which nodes hold this
// key?" deterministically, with no reference to any live cluster.
//
// It exists as a leaf package (importing only internal/transport for the
// NodeID type) so that every layer can agree on placement without import
// cycles: internal/store builds its dynamic ring on it, admin tooling
// previews the effect of a membership change before proposing it, and
// internal/history's epoch checker re-derives each epoch's placement from
// the membership recorded in the history to certify sections that span an
// epoch change — the checker must not trust the store it is checking.
//
// Placement is a pure function of (members, rf, key): every process that
// agrees on the membership epoch agrees on every key's replica set.
package placement

import (
	"sort"
	"strconv"

	"repro/internal/transport"
)

// Node names one placement participant: a node and the site hosting it.
type Node struct {
	ID   transport.NodeID
	Site string
}

// VnodesPerNode is the number of virtual points each node projects onto the
// hash circle. 64 keeps per-node load within a few percent of fair while
// bounding ring size (a 12-node cluster walks a 768-entry circle).
const VnodesPerNode = 64

// fnv64a is hash/fnv's 64-bit FNV-1a inlined over a string so key lookup
// stays allocation-free. internal/store carries its own copy for ShardOf;
// both are pinned by tests and must never diverge.
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is MurmurHash3's 64-bit avalanche finalizer. FNV-1a alone is a poor
// circle hash: near-identical short strings ("vn-3#17", "key-42") yield
// hashes that differ only in their low bits, so a node's 64 vnodes would
// cluster in one narrow arc and placement would degenerate to a handful of
// nodes. Finalizing spreads those hashes uniformly over the circle.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type vnode struct {
	hash uint64
	id   transport.NodeID
	site string
}

// Ring is one member set's consistent-hash circle. Each node projects
// VnodesPerNode points onto a 64-bit circle; a key's replicas are found by
// walking clockwise from the key's hash, preferring distinct sites until
// every site holds one copy, then distinct nodes. When a site joins or
// retires, only keys whose clockwise walk crosses one of the
// arriving/departing vnodes move — an RF·(nodes changed / nodes total)
// fraction in expectation — instead of a near-total reshuffle.
// store's TestRebalanceBound pins that property.
//
// A Ring is immutable after New; methods are safe for concurrent use.
type Ring struct {
	vnodes []vnode
	rf     int
	nsites int
	sites  map[transport.NodeID]string
}

// New builds the circle for a member set. rf is clamped to the node count.
func New(members []Node, rf int) *Ring {
	r := &Ring{
		vnodes: make([]vnode, 0, len(members)*VnodesPerNode),
		sites:  make(map[transport.NodeID]string, len(members)),
	}
	seen := make(map[string]bool, 4)
	for _, m := range members {
		r.sites[m.ID] = m.Site
		if !seen[m.Site] {
			seen[m.Site] = true
			r.nsites++
		}
		base := "vn-" + strconv.Itoa(int(m.ID)) + "#"
		for v := 0; v < VnodesPerNode; v++ {
			h := mix64(fnv64a(base + strconv.Itoa(v)))
			r.vnodes = append(r.vnodes, vnode{hash: h, id: m.ID, site: m.Site})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.id < b.id // deterministic tiebreak on (vanishingly rare) collisions
	})
	if rf > len(members) {
		rf = len(members)
	}
	r.rf = rf
	return r
}

// RF returns the effective (clamped) replication factor.
func (r *Ring) RF() int { return r.rf }

// Sites returns the number of distinct sites in the member set.
func (r *Ring) Sites() int { return r.nsites }

// SiteOf returns the site hosting id, or "" for a non-member.
func (r *Ring) SiteOf(id transport.NodeID) string { return r.sites[id] }

// Nodes returns the member node IDs in ascending order.
func (r *Ring) Nodes() []transport.NodeID {
	out := make([]transport.NodeID, 0, len(r.sites))
	for id := range r.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReplicasFor returns the RF nodes responsible for key.
func (r *Ring) ReplicasFor(key string) []transport.NodeID {
	out := make([]transport.NodeID, 0, r.rf)
	r.ReplicasInto(key, &out)
	return out
}

// ReplicasInto appends key's replicas to *out (reusable buffer form).
func (r *Ring) ReplicasInto(key string, out *[]transport.NodeID) {
	n := len(r.vnodes)
	if n == 0 || r.rf == 0 {
		return
	}
	h := mix64(fnv64a(key))
	start := sort.Search(n, func(i int) bool { return r.vnodes[i].hash >= h })
	if start == n {
		start = 0
	}
	// Pass 1: one node per distinct site, clockwise.
	var siteBuf [8]string
	sites := siteBuf[:0]
	for i := 0; i < n && len(*out) < r.rf && len(sites) < r.nsites; i++ {
		vn := &r.vnodes[(start+i)%n]
		if containsStr(sites, vn.site) {
			continue
		}
		sites = append(sites, vn.site)
		*out = append(*out, vn.id)
	}
	// Pass 2 (rf > #sites): continue with distinct nodes, same walk.
	for i := 0; i < n && len(*out) < r.rf; i++ {
		vn := &r.vnodes[(start+i)%n]
		if containsID(*out, vn.id) {
			continue
		}
		*out = append(*out, vn.id)
	}
}

// PlacesSite reports whether any replica of key lives in site.
func (r *Ring) PlacesSite(key, site string) bool {
	var buf [8]transport.NodeID
	out := buf[:0]
	r.ReplicasInto(key, &out)
	for _, id := range out {
		if r.sites[id] == site {
			return true
		}
	}
	return false
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func containsID(ids []transport.NodeID, id transport.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
