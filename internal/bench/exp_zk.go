package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// measureMUSICWriteThroughput measures critical-section *writes* per second
// with the locking cost amortized over `batch` puts per section: each
// worker holds a long-running stream of critical sections on its own key,
// paying createLockRef/acquire/release once per batch (the Fig 6 shape).
func measureMUSICWriteThroughput(mode core.Mode, workersPerSite, batch, valSize int, opts Options) tpResult {
	w := buildMUSIC(simnet.ProfileIUs, 1, mode, 43, nil)
	val := value(valSize)
	warm, window := throughputDurations(opts)

	type csState struct {
		ref   int64
		count int
		key   string
	}

	var res tpResult
	mustRun(w, func() {
		workers := workersPerSite * len(w.reps)
		states := make([]csState, workers)
		res = measureThroughput(w.rt, workers, warm, window, func(worker, iter int) error {
			s := &states[worker]
			rep := w.replicaFor(worker)
			if s.key == "" {
				s.key = fmt.Sprintf("key-%04d", worker)
			}
			if s.ref == 0 {
				ref, err := rep.CreateLockRef(s.key)
				if err != nil {
					return err
				}
				for {
					ok, err := rep.AcquireLock(s.key, ref)
					if err != nil {
						return err
					}
					if ok {
						break
					}
					w.rt.Sleep(time.Millisecond)
				}
				s.ref, s.count = ref, 0
			}
			if err := rep.CriticalPut(s.key, s.ref, val); err != nil {
				return err
			}
			s.count++
			if s.count >= batch {
				ref := s.ref
				s.ref = 0
				return rep.ReleaseLock(s.key, ref)
			}
			return nil
		})
	})
	return res
}

// measureZKWriteThroughput measures ZooKeeper setData throughput: every
// worker updates its own znode; all writes funnel through the Zab leader
// (no locking — ZooKeeper's writes are already sequentially consistent, so
// batch size does not change its per-write cost).
func measureZKWriteThroughput(workersPerSite, valSize int, opts Options) tpResult {
	w, err := buildZK(simnet.ProfileIUs, 43)
	if err != nil {
		panic(fmt.Sprintf("bench: zk build: %v", err))
	}
	val := value(valSize)
	warm, window := throughputDurations(opts)

	var res tpResult
	if err := w.rt.Run(func() {
		workers := workersPerSite * len(w.net.Nodes())
		// Pre-create the znodes.
		setup := w.c.Client(0)
		for i := 0; i < workers; i++ {
			if _, err := setup.Create(fmt.Sprintf("/key-%04d", i), nil, false); err != nil {
				panic(fmt.Sprintf("bench: zk create: %v", err))
			}
		}
		res = measureThroughput(w.rt, workers, warm, window, func(worker, iter int) error {
			cl := w.c.Client(simnet.NodeID(worker % len(w.net.Nodes())))
			_, err := cl.SetData(fmt.Sprintf("/key-%04d", worker), val, -1)
			return err
		})
	}); err != nil {
		panic(fmt.Sprintf("bench: zk throughput: %v", err))
	}
	return res
}

// runFig6a reproduces Fig 6(a): write throughput vs critical-section batch
// size for MUSIC, MSCP and ZooKeeper on IUs.
func runFig6a(opts Options) []Table {
	t := Table{
		ID:      "fig6a",
		Title:   "Write throughput (writes/s) vs batch size, IUs, 10B values",
		Columns: []string{"Batch", "MUSIC", "MSCP", "ZooKeeper", "MUSIC/ZK", "MUSIC/MSCP"},
		Notes: []string{
			"paper: ZK wins at batch 1 (~3K vs 885); locking amortizes with batch so MUSIC wins 1.4-2.3x by batch 10-1000 and 2-3.5x over MSCP",
		},
	}
	batches := []int{1, 10, 100, 1000}
	if opts.Quick {
		batches = []int{1, 10, 100}
	}
	// ZooKeeper's cost per write does not depend on the MUSIC batch size;
	// measure it once.
	opts.logf("  fig6a: zookeeper")
	zkRes := measureZKWriteThroughput(opts.workers(), 10, opts)
	for _, batch := range batches {
		opts.logf("  fig6a: batch %d", batch)
		music := measureMUSICWriteThroughput(core.ModeQuorum, opts.workers(), batch, 10, opts)
		mscp := measureMUSICWriteThroughput(core.ModeLWT, opts.workers(), batch, 10, opts)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch),
			fmtTP(music.PerSec), fmtTP(mscp.PerSec), fmtTP(zkRes.PerSec),
			fmtRatio(music.PerSec, zkRes.PerSec),
			fmtRatio(music.PerSec, mscp.PerSec),
		})
	}
	return []Table{t}
}

// runFig6b reproduces Fig 6(b): write throughput vs data size at batch 100.
func runFig6b(opts Options) []Table {
	t := Table{
		ID:      "fig6b",
		Title:   "Write throughput (writes/s) vs data size, IUs, batch 100",
		Columns: []string{"Data size", "MUSIC", "MSCP", "ZooKeeper", "MUSIC/ZK"},
		Notes: []string{
			"paper: MUSIC's lead over ZK grows with data size (2.45-17.17x); ZK's leader NIC and txn-log serialize every payload",
		},
	}
	sizes := []int{10, 1 << 10, 16 << 10, 256 << 10}
	if opts.Quick {
		sizes = []int{10, 16 << 10}
	}
	for _, size := range sizes {
		opts.logf("  fig6b: size %s", fmtBytes(size))
		music := measureMUSICWriteThroughput(core.ModeQuorum, opts.workers(), 100, size, opts)
		mscp := measureMUSICWriteThroughput(core.ModeLWT, opts.workers(), 100, size, opts)
		zkRes := measureZKWriteThroughput(opts.workers(), size, opts)
		t.Rows = append(t.Rows, []string{
			fmtBytes(size),
			fmtTP(music.PerSec), fmtTP(mscp.PerSec), fmtTP(zkRes.PerSec),
			fmtRatio(music.PerSec, zkRes.PerSec),
		})
	}
	return []Table{t}
}
