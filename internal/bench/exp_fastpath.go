package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/music"
)

// runFastpath measures the critical-section fast path against the
// paper-faithful baseline, one optimization at a time (IUs profile,
// single-threaded client at ohio, fresh key per section):
//
//   - 1-get/1-put sections: grant piggyback + holder-cached reads must
//     save the Get's full WAN quorum round trip;
//   - multi-put sections: Pipelined overlaps the writes' quorum round
//     trips, Buffered coalesces them into one;
//   - read-heavy sections over 4 KiB values: digest quorum reads shrink
//     the payload bytes arriving at the read coordinator.
//
// With -json the per-config numbers are also written as BENCH_fastpath.json
// so successive PRs have a machine-readable perf trajectory.
func runFastpath(opts Options) []Table {
	iters, discard := latencyIters(opts)
	var results []fastpathResult

	// Workload A: 1 get + 1 put per section.
	oneGetOnePut := func(cs *music.CriticalSection) error {
		if _, err := cs.Get(); err != nil {
			return err
		}
		return cs.Put(value(64))
	}
	tblA := Table{
		ID:      "fastpath",
		Title:   "1-get/1-put critical section: grant piggyback + holder cache (IUs)",
		Columns: []string{"Config", "Mean CS latency", "p99", "vs sync"},
		Notes: []string{
			"sync is the paper-faithful default: every Get is a quorum read, every Put a synchronous quorum write",
			"piggyback+cache serves the section's Get from the value fetched by the grant-time synchFlag quorum read — one full WAN quorum RTT saved",
		},
	}
	var baseA time.Duration
	for _, cfg := range []fastpathConfig{
		{name: "sync"},
		{name: "piggyback+cache", clientOpts: []music.ClientOption{music.WithHolderCache()}},
		{name: "cache+pipelined+digest",
			clusterOpts: []music.Option{music.WithDigestReads()},
			clientOpts:  []music.ClientOption{music.WithHolderCache(), music.WithWritePolicy(music.WritePipelined)}},
	} {
		opts.logf("  fastpath: 1get1put %s", cfg.name)
		m := fastpathMeasure(cfg, iters, discard, "a", oneGetOnePut)
		if baseA == 0 {
			baseA = m.hist.Mean()
		}
		tblA.Rows = append(tblA.Rows, []string{
			cfg.name,
			stats.FormatDuration(m.hist.Mean()),
			stats.FormatDuration(m.hist.Quantile(0.99)),
			fmtRatio(float64(baseA), float64(m.hist.Mean())),
		})
		results = append(results, m.result("1get1put", cfg.name))
	}

	// Workload B: 8 puts per section.
	const batchB = 8
	multiPut := func(cs *music.CriticalSection) error {
		for i := 0; i < batchB; i++ {
			if err := cs.Put(value(256)); err != nil {
				return err
			}
		}
		return nil
	}
	tblB := Table{
		ID:      "fastpath",
		Title:   fmt.Sprintf("%d-put critical section: write-behind pipelining (IUs)", batchB),
		Columns: []string{"Write policy", "Mean CS latency", "p99", "vs sync"},
		Notes: []string{
			"pipelined issues each quorum write asynchronously and awaits all acks at the pre-release flush, overlapping the WAN round trips",
			"buffered coalesces the section's writes client-side and issues one quorum write at flush",
		},
	}
	var baseB time.Duration
	for _, cfg := range []fastpathConfig{
		{name: "sync"},
		{name: "pipelined", clientOpts: []music.ClientOption{music.WithWritePolicy(music.WritePipelined)}},
		{name: "buffered", clientOpts: []music.ClientOption{music.WithWritePolicy(music.WriteBuffered)}},
	} {
		opts.logf("  fastpath: multiput %s", cfg.name)
		m := fastpathMeasure(cfg, iters, discard, "b", multiPut)
		if baseB == 0 {
			baseB = m.hist.Mean()
		}
		tblB.Rows = append(tblB.Rows, []string{
			cfg.name,
			stats.FormatDuration(m.hist.Mean()),
			stats.FormatDuration(m.hist.Quantile(0.99)),
			fmtRatio(float64(baseB), float64(m.hist.Mean())),
		})
		results = append(results, m.result("multiput8", cfg.name))
	}

	// Workload C: 6 quorum gets of a 4 KiB value per section (holder cache
	// off, so every Get pays a quorum read — the path digest reads shrink).
	const getsC, sizeC = 6, 4096
	multiGet := func(cs *music.CriticalSection) error {
		for i := 0; i < getsC; i++ {
			if _, err := cs.Get(); err != nil {
				return err
			}
		}
		return nil
	}
	seedC := func(cl *music.Client, key string) error {
		return cl.RunCritical(key, func(cs *music.CriticalSection) error {
			return cs.Put(value(sizeC))
		})
	}
	tblC := Table{
		ID:      "fastpath",
		Title:   fmt.Sprintf("%d-get critical section over %s values: digest quorum reads (IUs)", getsC, fmtBytes(sizeC)),
		Columns: []string{"Read path", "Mean CS latency", "Coordinator read bytes", "vs full"},
		Notes: []string{
			"coordinator read bytes = payload arriving at the read coordinator across the measured sections (store_read_bytes_total delta)",
			"digest reads fetch full data from the nearest replica only; the rest return 8-byte digests, with full-read + repair fallback on mismatch",
		},
	}
	var baseC int64
	for _, cfg := range []fastpathConfig{
		{name: "full reads"},
		{name: "digest reads", clusterOpts: []music.Option{music.WithDigestReads()}},
	} {
		opts.logf("  fastpath: digest %s", cfg.name)
		m := fastpathMeasureSeeded(cfg, iters, discard, "c", seedC, multiGet)
		if baseC == 0 {
			baseC = m.readBytes
		}
		tblC.Rows = append(tblC.Rows, []string{
			cfg.name,
			stats.FormatDuration(m.hist.Mean()),
			fmtBytes(int(m.readBytes)),
			fmtRatio(float64(m.readBytes), float64(baseC)),
		})
		results = append(results, m.result("multiget6-4k", cfg.name))
	}

	if opts.FastpathJSON != "" {
		writeFastpathJSON(opts, results)
	}
	return []Table{tblA, tblB, tblC}
}

// fastpathConfig names one cluster+client configuration under test.
type fastpathConfig struct {
	name        string
	clusterOpts []music.Option
	clientOpts  []music.ClientOption
}

// fastpathMeasurement is one config's latency histogram and the coordinator
// read bytes accumulated across the measured (post-discard) sections.
type fastpathMeasurement struct {
	hist      *stats.Histogram
	readBytes int64
}

func (m fastpathMeasurement) result(workload, config string) fastpathResult {
	return fastpathResult{
		Workload:       workload,
		Config:         config,
		MeanMicros:     int64(m.hist.Mean() / time.Microsecond),
		P99Micros:      int64(m.hist.Quantile(0.99) / time.Microsecond),
		CoordReadBytes: m.readBytes,
	}
}

func fastpathMeasure(cfg fastpathConfig, iters, discard int, prefix string, section func(*music.CriticalSection) error) fastpathMeasurement {
	return fastpathMeasureSeeded(cfg, iters, discard, prefix, nil, section)
}

// fastpathMeasureSeeded runs iters+discard sequential critical sections on
// fresh keys (the single-thread latency methodology), optionally priming
// each key with seed first, and reports the post-discard latency histogram
// and coordinator read-byte delta.
func fastpathMeasureSeeded(cfg fastpathConfig, iters, discard int, prefix string,
	seed func(*music.Client, string) error, section func(*music.CriticalSection) error) fastpathMeasurement {

	copts := append([]music.Option{music.WithSeed(7), music.WithObservability()}, cfg.clusterOpts...)
	c, err := music.New(copts...)
	if err != nil {
		panic(fmt.Sprintf("bench: fastpath %s: %v", cfg.name, err))
	}
	m := fastpathMeasurement{hist: stats.NewHistogram()}
	if err := c.Run(func() {
		cl := c.Client("ohio", cfg.clientOpts...)
		var bytesAtWarmup int64
		for i := 0; i < iters+discard; i++ {
			key := fmt.Sprintf("fp-%s-%d", prefix, i)
			if seed != nil {
				if err := seed(cl, key); err != nil {
					panic(fmt.Sprintf("bench: fastpath %s seed: %v", cfg.name, err))
				}
			}
			if i == discard {
				bytesAtWarmup = counterSum(c, "store_read_bytes_total")
			}
			start := c.Now()
			if err := cl.RunCritical(key, section); err != nil {
				panic(fmt.Sprintf("bench: fastpath %s: %v", cfg.name, err))
			}
			if i >= discard {
				m.hist.Observe(c.Now() - start)
			}
		}
		m.readBytes = counterSum(c, "store_read_bytes_total") - bytesAtWarmup
	}); err != nil {
		panic(fmt.Sprintf("bench: fastpath %s: %v", cfg.name, err))
	}
	return m
}

// counterSum totals a counter across all label sets.
func counterSum(c *music.Cluster, name string) int64 {
	var total int64
	for _, p := range c.Obs().Metrics().Snapshot() {
		if p.Name == name {
			total += int64(p.Value)
		}
	}
	return total
}

// fastpathResult is one row of the BENCH_fastpath.json perf-trajectory
// artifact.
type fastpathResult struct {
	Workload       string `json:"workload"`
	Config         string `json:"config"`
	MeanMicros     int64  `json:"mean_us"`
	P99Micros      int64  `json:"p99_us"`
	CoordReadBytes int64  `json:"coord_read_bytes"`
}

func writeFastpathJSON(opts Options, results []fastpathResult) {
	doc := struct {
		Experiment string           `json:"experiment"`
		Profile    string           `json:"profile"`
		Quick      bool             `json:"quick"`
		Results    []fastpathResult `json:"results"`
	}{Experiment: "fastpath", Profile: "IUs", Quick: opts.Quick, Results: results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: fastpath json: %v", err))
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.FastpathJSON, data, 0o644); err != nil {
		panic(fmt.Sprintf("bench: fastpath json: %v", err))
	}
	opts.logf("  fastpath: wrote %s", opts.FastpathJSON)
}
