package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/store"
)

// Observability overhead guards: the same operation with the obs subsystem
// disabled (the default, nil-receiver no-op path) and enabled (metrics +
// untraced spans recorded). Run on the local profile so virtual-time
// scheduling cost, not simulated WAN latency, dominates the measurement:
//
//	go test ./internal/bench -bench Overhead -benchmem
//
// The disabled variant must track the pre-obs baseline (and allocate
// nothing in the obs layer, see internal/obs TestDisabledPathZeroAlloc);
// results are recorded in EXPERIMENTS.md.

func overheadWorld(traced bool) *musicWorld {
	if traced {
		return buildMUSICTraced(simnet.ProfileLocal, 1, core.ModeQuorum, 1)
	}
	return buildMUSIC(simnet.ProfileLocal, 1, core.ModeQuorum, 1, nil)
}

func BenchmarkOverheadStoreQuorumPut(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("obs=%t", traced), func(b *testing.B) {
			w := overheadWorld(traced)
			cl := w.st.Client(w.net.Nodes()[0])
			row := store.Row{"v": {Value: []byte("x")}}
			b.ReportAllocs()
			b.ResetTimer()
			mustRun(w, func() {
				for i := 0; i < b.N; i++ {
					if err := cl.Put("bench", "k", row, store.Quorum); err != nil {
						b.Fatalf("put: %v", err)
					}
				}
			})
		})
	}
}

func BenchmarkOverheadCriticalPut(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("obs=%t", traced), func(b *testing.B) {
			w := overheadWorld(traced)
			rep := w.reps[0]
			val := value(10)
			b.ReportAllocs()
			mustRun(w, func() {
				ref, err := rep.CreateLockRef("bench")
				if err != nil {
					b.Fatalf("createLockRef: %v", err)
				}
				for {
					ok, err := rep.AcquireLock("bench", ref)
					if err != nil {
						b.Fatalf("acquireLock: %v", err)
					}
					if ok {
						break
					}
					w.rt.Sleep(time.Millisecond)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := rep.CriticalPut("bench", ref, val); err != nil {
						b.Fatalf("criticalPut: %v", err)
					}
				}
			})
		})
	}
}
